module noisyeval

go 1.24
