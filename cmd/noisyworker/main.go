// Command noisyworker is the worker daemon of a noisyeval cluster: it pulls
// bank-build shard jobs from a coordinator (noisyevald -cluster, or
// figures -cluster-addr), trains its config ranges with the exact code path
// a local build uses, and uploads byte-identical shards.
//
// Usage:
//
//	noisyworker -coordinator http://host:8723 -addr :8724
//
//	curl -s localhost:8724/healthz      # liveness + coordinator URL
//	curl -s localhost:8724/metrics      # Prometheus exposition (train histogram + counters)
//	curl -s localhost:8724/debug/vars   # lease/shard counters
//
// SIGINT/SIGTERM drain gracefully: the shard in flight finishes and uploads
// before the process exits, so its lease never has to expire.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"noisyeval/internal/dist"
	"noisyeval/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noisyworker: ")

	var (
		coordinator = flag.String("coordinator", "http://127.0.0.1:8723", "coordinator base URL")
		addr        = flag.String("addr", ":8724", "health/metrics listen address (empty = none)")
		name        = flag.String("name", "", "worker identity in leases and stats (default host-pid)")
		poll        = flag.Duration("poll", 500*time.Millisecond, "idle re-lease interval")
		jobs        = flag.Int("jobs", 0, "per-shard training parallelism (0 = GOMAXPROCS)")
		logLevel    = flag.String("log-level", "info", "structured log level: debug|info|warn|error")
		pprofAddr   = flag.String("pprof-addr", "", "listen address for net/http/pprof profiling endpoints (empty = disabled)")
	)
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := obs.NewLogger(os.Stderr, lvl)
	if *pprofAddr != "" {
		if _, err := obs.ServePprof(*pprofAddr, logger); err != nil {
			log.Fatal(err)
		}
	}

	metrics := obs.NewRegistry()
	w := dist.NewWorker(dist.WorkerOptions{
		Coordinator: *coordinator,
		Name:        *name,
		Poll:        *poll,
		Workers:     *jobs,
		Metrics:     metrics,
	})
	log.Printf("worker %s pulling from %s", w.Name(), *coordinator)

	start := time.Now()
	if *addr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			json.NewEncoder(rw).Encode(map[string]any{
				"status":      "ok",
				"worker":      w.Name(),
				"coordinator": *coordinator,
				"uptime":      time.Since(start).Round(time.Millisecond).String(),
			})
		})
		mux.HandleFunc("GET /debug/vars", func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			enc.Encode(w.Counters())
		})
		mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			metrics.WritePrometheus(rw)
		})
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("health/metrics on %s", ln.Addr())
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go srv.Serve(ln)
		defer srv.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = w.Run(ctx)
	c := w.Counters()
	log.Printf("drained: %d shards built, %d failed, %d leases, %s uploaded",
		c.ShardsBuilt, c.ShardsFailed, c.Leases, fmtBytes(c.BytesUploaded))
	if err != nil && err != context.Canceled {
		log.Fatal(err)
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
