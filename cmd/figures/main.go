// Command figures regenerates every table and figure of the paper's
// evaluation, writing a text rendering and a CSV per experiment into the
// output directory.
//
// Usage:
//
//	figures -quick                 # miniature banks, seconds
//	figures                        # figure-scale banks (minutes)
//	figures -only figure3,figure9  # subset
//	figures -banks results/banks   # reuse banks built by cmd/bank
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/exper"
	"noisyeval/internal/plot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	var (
		quick  = flag.Bool("quick", false, "miniature configuration (tests-scale)")
		outDir = flag.String("out", "results", "output directory")
		only   = flag.String("only", "", "comma-separated subset of experiment ids")
		banks  = flag.String("banks", "", "directory of pre-built <dataset>.bank files to reuse")
		seed   = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	cfg := exper.Default()
	if *quick {
		cfg = exper.Quick()
	}
	cfg.Seed = *seed
	suite := exper.NewSuite(cfg)

	if *banks != "" {
		for _, name := range exper.DatasetNames {
			path := filepath.Join(*banks, name+".bank")
			b, err := core.LoadBank(path)
			if err != nil {
				log.Printf("skipping %s: %v", path, err)
				continue
			}
			suite.SetBank(name, b)
			log.Printf("loaded %s (%d configs, %d clients)", path, len(b.Configs), b.NumClients())
		}
	}

	selected := exper.FigureOrder()
	if *only != "" {
		selected = strings.Split(*only, ",")
	}
	registry := exper.AllFigures()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, id := range selected {
		driver, ok := registry[strings.TrimSpace(id)]
		if !ok {
			log.Fatalf("unknown experiment %q (known: %s)", id, strings.Join(exper.FigureOrder(), ", "))
		}
		start := time.Now()
		res := driver(suite)
		txtPath := filepath.Join(*outDir, res.ID+".txt")
		if err := os.WriteFile(txtPath, []byte(res.Title+"\n\n"+res.Text()), 0o644); err != nil {
			log.Fatal(err)
		}
		csvPath := filepath.Join(*outDir, res.ID+".csv")
		if err := plot.WriteCSV(csvPath, res.CSVHeader, res.CSVRows); err != nil {
			log.Fatal(err)
		}
		log.Printf("%-9s -> %s, %s (%s)", res.ID, txtPath, csvPath, time.Since(start).Round(time.Millisecond))
		fmt.Println(res.Title)
		fmt.Println(res.Text())
	}
}
