// Command figures regenerates every table and figure of the paper's
// evaluation, writing a text rendering and a CSV per experiment into the
// output directory. Drivers run concurrently on a bounded worker pool; bank
// construction is deduplicated, demand-driven, and (with -cache-dir)
// content-addressed on disk, so repeated runs reuse banks instead of
// retraining.
//
// Usage:
//
//	figures -quick                       # miniature banks, seconds
//	figures                              # figure-scale banks (minutes)
//	figures -only figure3,figure9        # subset
//	figures -cache-dir .cache/banks      # content-addressed bank cache
//	figures -jobs 4                      # bound driver/bank concurrency
//	figures -banks results/banks         # reuse banks built by cmd/bank
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/dist"
	"noisyeval/internal/exper"
	"noisyeval/internal/obs"
	"noisyeval/internal/plot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	var (
		quick         = flag.Bool("quick", false, "miniature configuration (tests-scale)")
		outDir        = flag.String("out", "results", "output directory")
		only          = flag.String("only", "", "comma-separated subset of experiment ids")
		banks         = flag.String("banks", "", "directory of pre-built <dataset>.bank files to reuse")
		cacheDir      = flag.String("cache-dir", "", "content-addressed bank cache directory (reused across runs)")
		cacheMaxBytes = flag.Int64("cache-max-bytes", 0, "bank cache size bound: LRU entries are pruned past it (0 = unlimited)")
		jobs          = flag.Int("jobs", 0, "max concurrent drivers/bank builds (0 = GOMAXPROCS)")
		seed          = flag.Uint64("seed", 1, "RNG seed")
		verbose       = flag.Bool("v", false, "log per-task scheduler events")
		clusterAddr   = flag.String("cluster-addr", "", "listen address for an embedded dist coordinator: bank builds shard across noisyworker processes pulling from it")
		shardConfigs  = flag.Int("shard-configs", 8, "cluster mode: config indices per shard job")
		leaseTTL      = flag.Duration("lease-ttl", 2*time.Minute, "cluster mode: shard lease duration before requeue")
		selfBuild     = flag.Int("self-build", 1, "cluster mode: in-process shard builders (0 = rely entirely on external workers)")
		peersFlag     = flag.String("peers", "", "comma-separated warm-peer base URLs whose /v1/banks/{key} seeds the cache")
	)
	flag.Parse()

	cfg := exper.Default()
	if *quick {
		cfg = exper.Quick()
	}
	cfg.Seed = *seed
	suite := exper.NewSuite(cfg)

	var store *core.BankStore
	if *cacheDir != "" {
		var err error
		store, err = core.NewBankStore(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		store.Log = obs.NewLogger(os.Stderr, obs.LevelInfo).Named("bankstore")
		suite.SetStore(store)
		log.Printf("bank cache at %s", store.Dir())
		core.BoundCache(store, *cacheMaxBytes, log.Printf)
	}

	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	if *clusterAddr != "" {
		coord := dist.NewCoordinator(dist.CoordinatorOptions{
			Store:        store,
			ShardConfigs: *shardConfigs,
			LeaseTTL:     *leaseTTL,
			SelfBuild:    *selfBuild,
			Workers:      *jobs,
		})
		defer coord.Close()
		mux := http.NewServeMux()
		coord.Register(mux)
		ln, err := net.Listen("tcp", *clusterAddr)
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go srv.Serve(ln)
		defer srv.Close()
		suite.SetBuilder(&dist.Builder{Store: store, Peers: peers, Coord: coord})
		log.Printf("cluster coordinator on %s (shard-configs=%d self-build=%d)", ln.Addr(), *shardConfigs, *selfBuild)
	} else if len(peers) > 0 {
		suite.SetBuilder(&dist.Builder{Store: store, Peers: peers})
		log.Printf("peer read-through from %s", strings.Join(peers, ", "))
	}

	if *banks != "" {
		for _, name := range exper.DatasetNames {
			path := filepath.Join(*banks, name+".bank")
			b, err := core.LoadBank(path)
			if err != nil {
				log.Printf("skipping %s: %v", path, err)
				continue
			}
			suite.SetBank(name, b)
			log.Printf("loaded %s (%d configs, %d clients)", path, len(b.Configs), b.NumClients())
		}
	}

	selected := exper.FigureOrder()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			selected = append(selected, strings.TrimSpace(id))
		}
	}
	jobList, err := exper.JobsByID(selected)
	if err != nil {
		log.Fatalf("%v (known: %s)", err, strings.Join(exper.FigureOrder(), ", "))
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	sch := exper.Scheduler{Jobs: *jobs}
	if *verbose {
		sch.OnEvent = func(e exper.Event) {
			switch e.Kind {
			case exper.TaskStart:
				log.Printf("start %s", e.Task)
			case exper.TaskDone:
				log.Printf("done  %s (%s)", e.Task, e.Elapsed.Round(time.Millisecond))
			case exper.TaskError:
				log.Printf("FAIL  %s (%s): %v", e.Task, e.Elapsed.Round(time.Millisecond), e.Err)
			case exper.TaskSkip:
				log.Printf("skip  %s (cancelled)", e.Task)
			}
		}
	}

	start := time.Now()
	results, runErr := sch.Run(suite, jobList)

	// Write every experiment that completed, even when a later driver
	// failed — hours of finished figure-scale work must not be discarded
	// because one driver panicked. Cancelled drivers have a zero Result.
	wrote := 0
	for _, res := range results {
		if res.ID == "" {
			continue
		}
		wrote++
		txtPath := filepath.Join(*outDir, res.ID+".txt")
		if err := os.WriteFile(txtPath, []byte(res.Title+"\n\n"+res.Text()), 0o644); err != nil {
			log.Fatal(err)
		}
		csvPath := filepath.Join(*outDir, res.ID+".csv")
		if err := plot.WriteCSV(csvPath, res.CSVHeader, res.CSVRows); err != nil {
			log.Fatal(err)
		}
		log.Printf("%-9s -> %s, %s", res.ID, txtPath, csvPath)
		fmt.Println(res.Title)
		fmt.Println(res.Text())
	}

	log.Printf("%d/%d experiments in %s; banks trained: %d", wrote, len(results),
		time.Since(start).Round(time.Millisecond), suite.BankBuilds())
	if store != nil {
		st := store.Stats()
		log.Printf("bank cache: %d hits, %d misses, %d stored, %d evicted (corrupt or pruned)",
			st.Hits, st.Misses, st.Builds, st.Evicted)
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}
