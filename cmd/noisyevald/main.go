// Command noisyevald serves federated hyperparameter tuning as a service:
// submit tuning jobs (dataset × method × noise setting) over HTTP, watch
// per-trial progress, fetch summarized results. Identical submissions are
// deduplicated by a content-addressed run key, and all runs share one
// content-addressed bank cache, so the expensive train-once artifacts are
// built at most once per content address across the daemon's lifetime.
//
// Usage:
//
//	noisyevald -addr :8723 -cache-dir ~/.cache/noisyeval-banks
//
//	curl -s localhost:8723/healthz
//	curl -s -X POST localhost:8723/v1/runs -d '{"dataset":"cifar10","method":"rs","trials":8,"noise":{"sample_count":3}}'
//	curl -s localhost:8723/v1/runs/run-000001
//	curl -sN localhost:8723/v1/runs/run-000001/events
//	curl -s localhost:8723/v1/banks
//	curl -s localhost:8723/debug/vars
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight runs drain, queued
// runs are cancelled, then the listener closes.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noisyevald: ")

	var (
		addr         = flag.String("addr", ":8723", "listen address")
		cacheDir     = flag.String("cache-dir", os.Getenv("NOISYEVAL_CACHE_DIR"), "content-addressed bank cache directory (default $NOISYEVAL_CACHE_DIR)")
		workers      = flag.Int("workers", 2, "max concurrently executing runs")
		queueDepth   = flag.Int("queue", 64, "max queued runs before submissions get 503")
		runTTL       = flag.Duration("run-ttl", 15*time.Minute, "how long finished runs stay fetchable and dedupable (negative = forever)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for draining in-flight runs")
	)
	flag.Parse()

	var store *core.BankStore
	if *cacheDir != "" {
		var err error
		store, err = core.NewBankStore(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("bank cache at %s", store.Dir())
	} else {
		log.Printf("no -cache-dir: banks rebuilt per daemon lifetime (in-memory suite cache only)")
	}

	mgr := serve.NewManager(serve.Options{
		Store:      store,
		Workers:    *workers,
		QueueDepth: *queueDepth,
		TTL:        *runTTL,
	})
	daemon := serve.NewDaemon(*addr, mgr)
	bound, err := daemon.Listen()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (workers=%d queue=%d run-ttl=%s)", bound, *workers, *queueDepth, *runTTL)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- daemon.Serve() }()

	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining (budget %s)", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := daemon.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		log.Printf("drained cleanly")
	}
}
