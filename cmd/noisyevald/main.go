// Command noisyevald serves federated hyperparameter tuning as a service:
// submit tuning jobs (dataset × method × noise setting) over HTTP, watch
// per-trial progress, fetch summarized results. Identical submissions are
// deduplicated by a content-addressed run key, and all runs share one
// content-addressed bank cache, so the expensive train-once artifacts are
// built at most once per content address across the daemon's lifetime.
//
// Usage:
//
//	noisyevald -addr :8723 -cache-dir ~/.cache/noisyeval-banks
//	noisyevald -cluster -cache-dir ~/.cache/noisyeval-banks   # + noisyworker fleet
//
//	curl -s localhost:8723/healthz
//	curl -s -X POST localhost:8723/v1/runs -d '{"dataset":"cifar10","method":"rs","trials":8,"noise":{"sample_count":3}}'
//	curl -s localhost:8723/v1/runs/run-000001
//	curl -sN localhost:8723/v1/runs/run-000001/events
//	curl -s localhost:8723/v1/methods
//	curl -s -X POST localhost:8723/v1/sessions -d '{"dataset":"cifar10","method":"sha"}'
//	curl -s -X POST localhost:8723/v1/sessions/sess-000001/ask
//	curl -s -X POST localhost:8723/v1/sessions/sess-000001/tell -d '{"answers":[{"ask_id":0}]}'
//	curl -s localhost:8723/v1/banks
//	curl -s localhost:8723/v1/runs/run-000001/trace
//	curl -s localhost:8723/metrics
//	curl -s localhost:8723/debug/vars
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight runs drain, then the
// listener closes. With -journal-dir the run lifecycle is durable: queued
// runs are parked in the journal (re-admitted on the next boot) instead of
// cancelled, finished results survive restarts, and after a crash the daemon
// replays the journal — terminal runs serve their cached results, interrupted
// ones re-execute deterministically. Without a journal, queued runs are
// cancelled at shutdown as before.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/dist"
	"noisyeval/internal/obs"
	"noisyeval/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noisyevald: ")

	var (
		addr          = flag.String("addr", ":8723", "listen address")
		cacheDir      = flag.String("cache-dir", os.Getenv("NOISYEVAL_CACHE_DIR"), "content-addressed bank cache directory (default $NOISYEVAL_CACHE_DIR)")
		cacheMaxBytes = flag.Int64("cache-max-bytes", 0, "bank cache size bound: LRU entries are pruned past it (0 = unlimited)")
		workers       = flag.Int("workers", 2, "max concurrently executing runs")
		queueDepth    = flag.Int("queue", 64, "max queued runs before submissions get 503")
		runTTL        = flag.Duration("run-ttl", 15*time.Minute, "how long finished runs stay fetchable and dedupable (negative = forever)")
		sessionTTL    = flag.Duration("session-ttl", serve.DefaultSessionIdleTTL, "idle time before ask/tell sessions are reaped (negative = never)")
		maxSessions   = flag.Int("max-sessions", serve.DefaultMaxSessions, "max concurrently open ask/tell sessions")
		drainTimeout  = flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for draining in-flight runs")
		cluster       = flag.Bool("cluster", false, "mount dist coordinator endpoints and shard bank builds across noisyworker processes")
		shardConfigs  = flag.Int("shard-configs", 8, "cluster mode: config indices per shard job")
		leaseTTL      = flag.Duration("lease-ttl", 2*time.Minute, "cluster mode: shard lease duration before requeue")
		selfBuild     = flag.Int("self-build", 1, "cluster mode: in-process shard builders (0 = rely entirely on external workers)")
		peersFlag     = flag.String("peers", "", "comma-separated warm-peer base URLs whose /v1/banks/{key} seeds this daemon's cache")
		journalDir    = flag.String("journal-dir", os.Getenv("NOISYEVAL_JOURNAL_DIR"), "run journal directory: makes the run lifecycle durable across crashes and restarts (default $NOISYEVAL_JOURNAL_DIR; empty = no journal)")
		journalMax    = flag.Int64("journal-max-bytes", 0, "journal byte budget across snapshot+WAL; exhausted budget 503s new submissions (0 = 64 MiB, negative = unlimited)")
		journalComp   = flag.Int64("journal-compact-bytes", 0, "WAL size that triggers background compaction into a snapshot (0 = budget/4)")
		shedThreshold = flag.Float64("shed-threshold", 0, "shed cold-bank submissions once the queue holds this fraction of -queue (e.g. 0.5; <= 0 disables shedding)")
		execDelay     = flag.Duration("exec-delay", 0, "fault injection: pad every run's execution by this duration so crash/load harnesses can catch runs in flight (0 = off)")
		mmapBanks     = flag.Bool("mmap-banks", false, "serve cached banks zero-copy from mmap'd bankfmt/v4 files instead of decoding to heap (requires -cache-dir)")
		mmapWarm      = flag.Bool("mmap-warm", false, "pre-touch each mapped bank at open (madvise + page walk) so first-sweep reads pay no major faults (requires -mmap-banks)")
		blockedTrials = flag.Bool("blocked-trials", true, "run bootstrap trials through the blocked row-sweep scheduler; false falls back to the legacy goroutine-per-trial path (results are bit-identical)")
		logLevel      = flag.String("log-level", "info", "structured log level: debug|info|warn|error")
		pprofAddr     = flag.String("pprof-addr", "", "listen address for net/http/pprof profiling endpoints (empty = disabled)")
	)
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := obs.NewLogger(os.Stderr, lvl)

	if *pprofAddr != "" {
		if _, err := obs.ServePprof(*pprofAddr, logger); err != nil {
			log.Fatal(err)
		}
	}

	var store *core.BankStore
	if *cacheDir != "" {
		var err error
		store, err = core.NewBankStore(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		store.Log = logger.Named("bankstore")
		log.Printf("bank cache at %s", store.Dir())
		core.BoundCache(store, *cacheMaxBytes, obs.LogfSink(logger.Named("bankstore")))
		if *mmapBanks {
			store.SetMapped(true)
			store.SetMappedWarm(*mmapWarm)
			log.Printf("bank cache mmap mode: v4 banks served zero-copy, writes use bankfmt/v4 (warm=%v)", *mmapWarm)
		} else if *mmapWarm {
			log.Fatal("-mmap-warm requires -mmap-banks")
		}
	} else {
		if *mmapBanks {
			log.Fatal("-mmap-banks requires -cache-dir")
		}
		if *mmapWarm {
			log.Fatal("-mmap-warm requires -mmap-banks")
		}
		log.Printf("no -cache-dir: banks rebuilt per daemon lifetime (in-memory suite cache only)")
	}

	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}

	// Cluster mode: a coordinator shards every cold bank build into leased
	// jobs; the manager's suites build through the dist tier stack (store →
	// peers → fleet). Without -cluster but with -peers, the daemon still
	// read-throughs warm peers before training locally.
	var coord *dist.Coordinator
	var builder core.BankBuilder
	if *cluster {
		coord = dist.NewCoordinator(dist.CoordinatorOptions{
			Store:        store,
			ShardConfigs: *shardConfigs,
			LeaseTTL:     *leaseTTL,
			SelfBuild:    *selfBuild,
		})
		defer coord.Close()
		builder = &dist.Builder{Store: store, Peers: peers, Coord: coord}
		log.Printf("cluster mode: shard-configs=%d lease-ttl=%s self-build=%d peers=%d",
			*shardConfigs, *leaseTTL, *selfBuild, len(peers))
	} else if len(peers) > 0 {
		builder = &dist.Builder{Store: store, Peers: peers}
		log.Printf("peer read-through from %s", strings.Join(peers, ", "))
	}

	var journal *serve.RunJournal
	if *journalDir != "" {
		var err error
		journal, err = serve.OpenRunJournal(serve.JournalOptions{
			Dir:             *journalDir,
			MaxBytes:        *journalMax,
			CompactWALBytes: *journalComp,
			Logf:            obs.LogfSink(logger.Named("journal")),
		})
		if err != nil {
			log.Fatal(err)
		}
		st := journal.Stats()
		log.Printf("run journal at %s (replayed %d records, %d runs recovered, %d torn tails, %d dropped)",
			*journalDir, st.Replayed, len(journal.Recovered()), st.TornTails, journal.Dropped())
	} else {
		log.Printf("no -journal-dir: run lifecycle is in-memory only (queued runs are lost on crash or shutdown)")
	}

	mgr := serve.NewManager(serve.Options{
		Store:            store,
		Builder:          builder,
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		TTL:              *runTTL,
		SessionIdleTTL:   *sessionTTL,
		MaxSessions:      *maxSessions,
		Journal:          journal,
		ShedColdFraction: *shedThreshold,
		SequentialTrials: !*blockedTrials,
		ExecDelay:        *execDelay,
		Log:              logger,
	})
	daemon := serve.NewDaemon(*addr, mgr)
	if coord != nil {
		coord.Register(daemon.Server().Mux())
		daemon.Server().AddVars(func(set func(string, int64)) {
			st := coord.Stats()
			set("dist_builds_started", st.BuildsStarted)
			set("dist_builds_completed", st.BuildsCompleted)
			set("dist_shards_pending", st.ShardsPending)
			set("dist_shards_leased", st.ShardsLeased)
			set("dist_shards_completed", st.ShardsCompleted)
			set("dist_shards_requeued", st.ShardsRequeued)
			set("dist_shards_duplicate", st.ShardsDuplicate)
			set("dist_shards_self_built", st.ShardsSelfBuilt)
			set("dist_workers_seen", st.WorkersSeen)
		})
		// The same coordinator counters as Prometheus views, so one /metrics
		// scrape covers the fleet-build plane too.
		reg := mgr.Metrics()
		reg.CounterFunc("dist_builds_started_total", "Sharded bank builds started.",
			func() int64 { return coord.Stats().BuildsStarted })
		reg.CounterFunc("dist_builds_completed_total", "Sharded bank builds completed.",
			func() int64 { return coord.Stats().BuildsCompleted })
		reg.GaugeFunc("dist_shards_pending", "Shard jobs waiting for a lease.",
			func() int64 { return coord.Stats().ShardsPending })
		reg.GaugeFunc("dist_shards_leased", "Shard jobs currently leased.",
			func() int64 { return coord.Stats().ShardsLeased })
		reg.CounterFunc("dist_shards_completed_total", "Shard jobs accepted.",
			func() int64 { return coord.Stats().ShardsCompleted })
		reg.CounterFunc("dist_shards_requeued_total", "Shard leases expired and requeued.",
			func() int64 { return coord.Stats().ShardsRequeued })
		reg.CounterFunc("dist_shards_duplicate_total", "Duplicate shard uploads discarded.",
			func() int64 { return coord.Stats().ShardsDuplicate })
		reg.CounterFunc("dist_shards_self_built_total", "Shards built by the coordinator's own loop.",
			func() int64 { return coord.Stats().ShardsSelfBuilt })
		reg.GaugeFunc("dist_workers_seen", "Distinct workers that have ever leased.",
			func() int64 { return coord.Stats().WorkersSeen })
	}
	bound, err := daemon.Listen()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (workers=%d queue=%d run-ttl=%s)", bound, *workers, *queueDepth, *runTTL)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- daemon.Serve() }()

	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining (budget %s)", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := daemon.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		log.Printf("drained cleanly")
	}
}
