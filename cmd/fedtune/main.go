// Command fedtune runs one federated hyperparameter tuning job: pick a
// dataset, a method, and a noise setting; get back the chosen configuration
// and its true full-validation error.
//
// Usage:
//
//	fedtune -dataset cifar10 -method rs -sample-frac 0.01 -epsilon 100 -trials 8
//	fedtune -dataset femnist -method bohb -bank results/banks/femnist.bank
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/exper"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
	"noisyeval/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fedtune: ")

	var (
		dataset    = flag.String("dataset", "cifar10", "dataset: cifar10|femnist|stackoverflow|reddit")
		methodName = flag.String("method", "rs", "method: rs|grid|tpe|sha|hb|bohb|reeval|noisybo")
		bankPath   = flag.String("bank", "", "pre-built bank path (default: build a quick bank)")
		sampleN    = flag.Int("sample-count", 0, "eval clients per evaluation (0 = use -sample-frac)")
		sampleFrac = flag.Float64("sample-frac", 0, "eval client fraction (0 = full evaluation)")
		bias       = flag.Float64("bias", 0, "systems-heterogeneity exponent b")
		epsilon    = flag.Float64("epsilon", 0, "total DP budget (0 = non-private)")
		hetP       = flag.Float64("p", 0, "iid repartition fraction (bank must record it)")
		trials     = flag.Int("trials", 8, "bootstrap trials")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		quick      = flag.Bool("quick", true, "quick-scale bank when none is supplied")
	)
	flag.Parse()

	method, err := methodByName(*methodName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := exper.Default()
	if *quick {
		cfg = exper.Quick()
	}
	cfg.Seed = *seed
	suite := exper.NewSuite(cfg)

	var bank *core.Bank
	if *bankPath != "" {
		bank, err = core.LoadBank(*bankPath)
		if err != nil {
			log.Fatal(err)
		}
		suite.SetBank(bank.SpecName, bank)
		*dataset = bank.SpecName
	} else {
		log.Printf("building %s bank (quick=%v)...", *dataset, *quick)
		start := time.Now()
		bank = suite.Bank(*dataset)
		log.Printf("bank ready in %s", time.Since(start).Round(time.Millisecond))
	}

	noise := core.Noise{
		SampleCount:    *sampleN,
		SampleFraction: *sampleFrac,
		Bias:           *bias,
		Epsilon:        *epsilon,
		HeterogeneityP: *hetP,
	}
	oracle, err := core.NewBankOracle(bank, noise.HeterogeneityP, noise.Scheme(), *seed)
	if err != nil {
		log.Fatal(err)
	}

	settings := noise.Settings(hpo.Settings{Budget: cfg.Budget()})
	tn := core.Tuner{Method: method, Space: hpo.DefaultSpace(), Settings: settings}

	log.Printf("tuning %s on %s under [%s], %d trials, budget %d rounds",
		method.Name(), *dataset, noise, *trials, settings.Budget.TotalRounds)
	results := tn.RunTrials(oracle, *trials, rng.New(*seed).Split("fedtune"))
	finals := core.FinalErrors(results)
	sum := stats.Summarize(finals)

	fmt.Printf("\n%s on %s [%s]\n", method.Name(), *dataset, noise)
	fmt.Printf("final full-validation error over %d trials:\n", *trials)
	fmt.Printf("  median %.2f%%   q1 %.2f%%   q3 %.2f%%   mean %.2f%%\n",
		sum.Median*100, sum.Q1*100, sum.Q3*100, sum.Mean*100)
	if rec, ok := results[0].History.Recommend(); ok {
		fmt.Printf("trial-0 chosen config: server lr %.3g (b1 %.2f, b2 %.3f), client lr %.3g (mom %.2f), batch %d\n",
			rec.Config.ServerLR, rec.Config.Beta1, rec.Config.Beta2,
			rec.Config.ClientLR, rec.Config.ClientMomentum, rec.Config.BatchSize)
	}
}

func methodByName(name string) (hpo.Method, error) {
	switch strings.ToLower(name) {
	case "rs", "random":
		return hpo.RandomSearch{}, nil
	case "grid":
		return hpo.GridSearch{}, nil
	case "tpe":
		return hpo.TPE{}, nil
	case "sha":
		return hpo.SuccessiveHalving{}, nil
	case "hb", "hyperband":
		return hpo.Hyperband{}, nil
	case "bohb":
		return hpo.BOHB{}, nil
	case "reeval":
		return hpo.ResampledRS{}, nil
	case "noisybo":
		return hpo.NoisyBO{}, nil
	default:
		return nil, fmt.Errorf("unknown method %q", name)
	}
}
