// Command fedtune runs one federated hyperparameter tuning job: pick a
// dataset, a method, and a noise setting; get back the chosen configuration
// and its true full-validation error.
//
// Usage:
//
//	fedtune -dataset cifar10 -method rs -sample-frac 0.01 -epsilon 100 -trials 8
//	fedtune -dataset femnist -method bohb -bank results/banks/femnist.bank
//	fedtune -dataset cifar10 -method tpe -cache-dir ~/.cache/noisyeval-banks
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/exper"
	"noisyeval/internal/hpo"
	"noisyeval/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fedtune: ")

	var (
		dataset       = flag.String("dataset", "cifar10", "dataset: "+strings.Join(exper.DatasetNames, "|"))
		methodName    = flag.String("method", "rs", "method: "+strings.Join(hpo.Methods(), "|"))
		bankPath      = flag.String("bank", "", "pre-built bank path (default: build a quick bank)")
		cacheDir      = flag.String("cache-dir", "", "content-addressed bank cache directory (default $NOISYEVAL_CACHE_DIR)")
		cacheMaxBytes = flag.Int64("cache-max-bytes", 0, "bank cache size bound: LRU entries are pruned past it (0 = unlimited)")
		sampleN       = flag.Int("sample-count", 0, "eval clients per evaluation (0 = use -sample-frac)")
		sampleFrac    = flag.Float64("sample-frac", 0, "eval client fraction (0 = full evaluation)")
		bias          = flag.Float64("bias", 0, "systems-heterogeneity exponent b")
		epsilon       = flag.Float64("epsilon", 0, "total DP budget (0 = non-private)")
		hetP          = flag.Float64("p", 0, "iid repartition fraction (bank must record it)")
		trials        = flag.Int("trials", 8, "bootstrap trials")
		seed          = flag.Uint64("seed", 1, "RNG seed")
		quick         = flag.Bool("quick", true, "quick-scale bank when none is supplied")
		blockedTrials = flag.Bool("blocked-trials", true, "run bootstrap trials through the blocked row-sweep scheduler; false falls back to the legacy goroutine-per-trial path (results are bit-identical)")
	)
	flag.Parse()

	method, err := hpo.MethodByName(*methodName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := exper.Default()
	if *quick {
		cfg = exper.Quick()
	}
	cfg.Seed = *seed
	cfg.SequentialTrials = !*blockedTrials
	suite := exper.NewSuite(cfg)

	if dir := cacheDirOrEnv(*cacheDir); dir != "" {
		store, err := core.NewBankStore(dir)
		if err != nil {
			log.Fatal(err)
		}
		store.Log = obs.NewLogger(os.Stderr, obs.LevelInfo).Named("bankstore")
		suite.SetStore(store)
		log.Printf("bank cache at %s", store.Dir())
		core.BoundCache(store, *cacheMaxBytes, log.Printf)
	}

	runDataset := *dataset
	if *bankPath != "" {
		bank, err := core.LoadBank(*bankPath)
		if err != nil {
			log.Fatal(err)
		}
		// An explicit -dataset must agree with the bank's recorded dataset;
		// silently retargeting the run would tune against data the user did
		// not name.
		datasetSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "dataset" {
				datasetSet = true
			}
		})
		if datasetSet && *dataset != bank.SpecName {
			log.Fatalf("-dataset %s conflicts with -bank %s (bank records dataset %s); drop -dataset or pass the matching bank",
				*dataset, *bankPath, bank.SpecName)
		}
		runDataset = bank.SpecName
		suite.SetBank(bank.SpecName, bank)
	} else {
		log.Printf("building %s bank (quick=%v)...", runDataset, *quick)
	}

	noise := core.Noise{
		SampleCount:    *sampleN,
		SampleFraction: *sampleFrac,
		Bias:           *bias,
		Epsilon:        *epsilon,
		HeterogeneityP: *hetP,
	}
	req := exper.TuneRequest{
		Dataset: runDataset,
		Method:  method,
		Noise:   noise,
		Trials:  *trials,
		Seed:    *seed,
	}

	log.Printf("tuning %s on %s under [%s], %d trials, budget %d rounds",
		method.Name(), runDataset, noise, *trials, cfg.Budget().TotalRounds)
	start := time.Now()
	res, err := suite.RunTune(req, nil)
	if err != nil {
		log.Fatal(err)
	}
	if suite.BankBuilds() > 0 {
		log.Printf("bank trained in-run; total time %s", time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("\n%s on %s [%s]\n", res.Method, res.Dataset, res.Noise)
	fmt.Printf("final full-validation error over %d trials:\n", res.Trials)
	fmt.Printf("  median %.2f%%   q1 %.2f%%   q3 %.2f%%   mean %.2f%%\n",
		res.Summary.Median*100, res.Summary.Q1*100, res.Summary.Q3*100, res.Summary.Mean*100)
	if rec := res.Best; rec != nil {
		fmt.Printf("trial-0 chosen config: server lr %.3g (b1 %.2f, b2 %.3f), client lr %.3g (mom %.2f), batch %d\n",
			rec.Config.ServerLR, rec.Config.Beta1, rec.Config.Beta2,
			rec.Config.ClientLR, rec.Config.ClientMomentum, rec.Config.BatchSize)
	}
	fmt.Printf("run key %s\n", res.RunKey)
}

// cacheDirOrEnv resolves the cache directory: the explicit flag wins, then
// NOISYEVAL_CACHE_DIR (the same variable tests and CI use), else none.
func cacheDirOrEnv(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	return strings.TrimSpace(os.Getenv("NOISYEVAL_CACHE_DIR"))
}
