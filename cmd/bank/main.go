// Command bank builds a config bank (the study's reusable training
// artifact) for one dataset and writes it to disk for cmd/figures and
// cmd/fedtune to reuse. It can also inspect a bank file of any format
// generation and grow an existing bank in place with freshly trained
// configs.
//
// Usage:
//
//	bank -dataset cifar10 -out results/banks/cifar10.bank -scale 1.0 -configs 128 -rounds 405
//	bank -info results/banks/cifar10.bank
//	bank -grow 16 -dataset cifar10 -out results/banks/cifar10.bank -scale 1.0 -rounds 405
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/data"
	"noisyeval/internal/fl"
	"noisyeval/internal/obs"
	"noisyeval/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bank: ")

	var (
		dataset    = flag.String("dataset", "cifar10", "dataset: cifar10|femnist|stackoverflow|reddit")
		out        = flag.String("out", "", "output path (default results/banks/<dataset>.bank)")
		scale      = flag.Float64("scale", 1.0, "client-count scale factor")
		capEx      = flag.Int("cap", 500, "per-client example cap (0 = none)")
		configs    = flag.Int("configs", 128, "config pool size")
		rounds     = flag.Int("rounds", 405, "max training rounds per config")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		partitions = flag.String("partitions", "0.5,1", "extra iid-repartition fractions (comma-separated)")
		workers    = flag.Int("workers", 0, "build parallelism (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", "", "content-addressed bank cache directory (skip training on hit)")
		info       = flag.String("info", "", "inspect the bank file at this path and exit (no training)")
		grow       = flag.Int("grow", 0, "grow the existing bank at -out by N configs instead of building (pass the original build flags)")
	)
	flag.Parse()

	if *info != "" {
		if err := printInfo(*info); err != nil {
			log.Fatal(err)
		}
		return
	}

	spec, err := specByName(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scaled(*scale, *capEx)

	path := *out
	if path == "" {
		path = fmt.Sprintf("results/banks/%s.bank", *dataset)
	}

	var ps []float64
	for _, tok := range strings.Split(*partitions, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			log.Fatalf("bad partition %q: %v", tok, err)
		}
		ps = append(ps, v)
	}

	log.Printf("generating %s population (%d train / %d eval clients)...", spec.Name, spec.TrainClients, spec.EvalClients)
	pop := data.MustGenerate(spec, rng.New(*seed).Split("pop-"+spec.Name))

	opts := core.DefaultBuildOptions()
	opts.NumConfigs = *configs
	opts.MaxRounds = *rounds
	opts.Partitions = ps
	opts.Workers = *workers

	if *grow > 0 {
		if err := growBank(path, pop, opts, *seed, *grow, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}

	var store *core.BankStore
	if *cacheDir != "" {
		store, err = core.NewBankStore(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		store.Log = obs.NewLogger(os.Stderr, obs.LevelInfo).Named("bankstore")
		log.Printf("bank cache at %s (key %s)", store.Dir(), core.BankKeyForPopulation(pop, opts, *seed))
	}

	log.Printf("training %d configs x %d rounds (checkpoints at rungs, partitions %v)...", *configs, *rounds, append([]float64{0}, ps...))
	start := time.Now()
	bank, hit, err := core.BuildBankCached(context.Background(), store, pop, opts, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if hit {
		log.Printf("cache hit, skipped training (%s)", time.Since(start).Round(time.Millisecond))
	} else {
		log.Printf("built in %s", time.Since(start).Round(time.Second))
	}

	if err := core.SaveBank(bank, path); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	log.Printf("wrote %s (%d bytes)", path, fi.Size())
}

// printInfo renders an InspectBank report. A torn or corrupt file still
// prints whatever is intact before the error surfaces, so the report is
// usable for diagnosing exactly where a file went bad.
func printInfo(path string) error {
	bi, err := core.InspectBank(path)
	if bi == nil {
		return err
	}
	format := map[int]string{
		0: "legacy gob+gzip",
		3: "bankfmt/v3",
		4: "bankfmt/v4 (segmented, mmap-served)",
	}[bi.Version]
	if format == "" {
		format = fmt.Sprintf("unknown (version %d)", bi.Version)
	}
	fmt.Printf("bank:      %s\n", bi.Path)
	fmt.Printf("format:    %s\n", format)
	if len(bi.Flags) > 0 {
		fmt.Printf("flags:     %s\n", strings.Join(bi.Flags, ","))
	}
	if bi.SpecName != "" {
		fmt.Printf("spec:      %s (seed %d)\n", bi.SpecName, bi.Seed)
	}
	if bi.Dims != [4]int{} {
		fmt.Printf("dims:      %d partitions x %d configs x %d checkpoints x %d clients\n",
			bi.Dims[0], bi.Dims[1], bi.Dims[2], bi.Dims[3])
	}
	fmt.Printf("on disk:   %d bytes\n", bi.FileBytes)
	if bi.ArenaBytes > 0 {
		how := "decoded to heap on load"
		if bi.Version == 4 {
			how = "mapped zero-copy on open"
		}
		fmt.Printf("arena:     %d bytes (%s)\n", bi.ArenaBytes, how)
	}
	if bi.Version == 3 {
		fmt.Printf("metadata:  %d bytes; bulk %d floats\n", bi.MetaBytes, bi.FloatCount)
	}
	if len(bi.Segments) > 0 {
		fmt.Printf("segments:\n")
		for _, s := range bi.Segments {
			crc, live := "ok", ""
			if !s.CRCOK {
				crc = "BAD"
			}
			if s.Live {
				live = "  live"
			}
			span := ""
			if s.Kind == "arena" {
				span = fmt.Sprintf("  configs [%d,%d)", s.Lo, s.Hi)
			}
			fmt.Printf("  #%d %-7s seq %-3d off %-10d bytes %-12d crc %s%s%s\n",
				s.Index, s.Kind, s.Seq, s.Offset, s.Bytes, crc, span, live)
		}
	}
	if bi.Torn != "" {
		fmt.Printf("torn:      %s\n", bi.Torn)
	}
	return err
}

// growBank extends the bank at path by add freshly trained configs: exactly
// the new index range is trained, then appended in place as bankfmt/v4
// segments (a v3 file is rewritten as v4 first). The extra configs derive
// deterministically from the bank's own seed, spec, and pool size, so a
// retried grow converges to the same bytes and the grown bank matches a
// cold build over the union pool. The remaining flags must repeat the
// original build's inputs — Extend verifies them against the bank.
func growBank(path string, pop *data.Population, opts core.BuildOptions, seed uint64, add, workers int) error {
	old, err := core.LoadBank(path)
	if err != nil {
		return err
	}
	bi, err := core.InspectBank(path)
	if err != nil {
		return err
	}
	if bi.Version != 4 {
		log.Printf("rewriting %s as segmented bankfmt/v4 (was version %d)...", path, bi.Version)
		if err := core.SaveBankV4(old, path); err != nil {
			return err
		}
	}
	cur := old.Configs
	extra := opts.Space.SampleN(add, rng.New(old.Seed).Splitf("grow-%s-%d", old.SpecName, len(cur)))
	union := append(append([]fl.HParams{}, cur...), extra...)
	opts.Configs = union
	plan, err := core.NewBuildPlan(pop, opts, seed)
	if err != nil {
		return err
	}
	log.Printf("training %d new configs [%d,%d)...", add, len(cur), len(union))
	start := time.Now()
	shard, err := plan.TrainRange(len(cur), len(union), workers)
	if err != nil {
		return err
	}
	grown, err := core.ExtendBankV4(path, plan, []*core.BankShard{shard})
	if err != nil {
		return err
	}
	fi, _ := os.Stat(path)
	log.Printf("grew %s to %d configs (%d bytes, %s)", path, len(grown.Configs), fi.Size(), time.Since(start).Round(time.Millisecond))
	return nil
}

func specByName(name string) (data.Spec, error) {
	for _, s := range data.AllSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return data.Spec{}, fmt.Errorf("unknown dataset %q", name)
}
