// Command bank builds a config bank (the study's reusable training
// artifact) for one dataset and writes it to disk for cmd/figures and
// cmd/fedtune to reuse.
//
// Usage:
//
//	bank -dataset cifar10 -out results/banks/cifar10.bank -scale 1.0 -configs 128 -rounds 405
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/data"
	"noisyeval/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bank: ")

	var (
		dataset    = flag.String("dataset", "cifar10", "dataset: cifar10|femnist|stackoverflow|reddit")
		out        = flag.String("out", "", "output path (default results/banks/<dataset>.bank)")
		scale      = flag.Float64("scale", 1.0, "client-count scale factor")
		capEx      = flag.Int("cap", 500, "per-client example cap (0 = none)")
		configs    = flag.Int("configs", 128, "config pool size")
		rounds     = flag.Int("rounds", 405, "max training rounds per config")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		partitions = flag.String("partitions", "0.5,1", "extra iid-repartition fractions (comma-separated)")
		workers    = flag.Int("workers", 0, "build parallelism (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", "", "content-addressed bank cache directory (skip training on hit)")
	)
	flag.Parse()

	spec, err := specByName(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scaled(*scale, *capEx)

	path := *out
	if path == "" {
		path = fmt.Sprintf("results/banks/%s.bank", *dataset)
	}

	var ps []float64
	for _, tok := range strings.Split(*partitions, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			log.Fatalf("bad partition %q: %v", tok, err)
		}
		ps = append(ps, v)
	}

	log.Printf("generating %s population (%d train / %d eval clients)...", spec.Name, spec.TrainClients, spec.EvalClients)
	pop := data.MustGenerate(spec, rng.New(*seed).Split("pop-"+spec.Name))

	opts := core.DefaultBuildOptions()
	opts.NumConfigs = *configs
	opts.MaxRounds = *rounds
	opts.Partitions = ps
	opts.Workers = *workers

	var store *core.BankStore
	if *cacheDir != "" {
		store, err = core.NewBankStore(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		store.Logf = log.Printf
		log.Printf("bank cache at %s (key %s)", store.Dir(), core.BankKeyForPopulation(pop, opts, *seed))
	}

	log.Printf("training %d configs x %d rounds (checkpoints at rungs, partitions %v)...", *configs, *rounds, append([]float64{0}, ps...))
	start := time.Now()
	bank, hit, err := core.BuildBankCached(store, pop, opts, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if hit {
		log.Printf("cache hit, skipped training (%s)", time.Since(start).Round(time.Millisecond))
	} else {
		log.Printf("built in %s", time.Since(start).Round(time.Second))
	}

	if err := core.SaveBank(bank, path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	log.Printf("wrote %s (%d bytes)", path, info.Size())
}

func specByName(name string) (data.Spec, error) {
	for _, s := range data.AllSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return data.Spec{}, fmt.Errorf("unknown dataset %q", name)
}
