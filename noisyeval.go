// Package noisyeval is a Go reproduction of "On Noisy Evaluation in
// Federated Hyperparameter Tuning" (Kuo et al., MLSys 2023). It provides:
//
//   - a pure-Go cross-device federated learning simulator (FedAdam server
//     optimization over client SGD on synthetic populations mirroring
//     CIFAR10 / FEMNIST / StackOverflow / Reddit statistics),
//   - the paper's evaluation-noise models: client subsampling, data
//     heterogeneity (iid repartitioning), systems heterogeneity (biased
//     client selection), and differential privacy (Laplace releases and
//     one-shot top-k selection),
//   - the tuning methods compared in the study: random search, grid search,
//     TPE, successive halving, Hyperband, BOHB, re-evaluation-averaged RS,
//     and the paper's one-shot proxy RS, and
//   - the ConfigBank protocol (train once, bootstrap many trials) plus one
//     experiment driver per table/figure of the paper.
//
// Training runs on a batched engine by default (minibatch GEMM
// forward/backward, zero-copy in-place client steps, batched evaluation; see
// DESIGN.md §6). BuildOptions.BatchEval / TrainerOptions.BatchEval select
// it; setting them false reproduces the original per-sample engine bit for
// bit, and the flag participates in the BankStore cache key because batched
// summation order changes float results.
//
// This facade re-exports the library's primary types so downstream users
// interact with one import path; packages under internal/ hold the
// implementation. Start with Quickstart in examples/quickstart, or:
//
//	pop := noisyeval.MustGenerate(noisyeval.CIFAR10Like().Scaled(0.2, 0), noisyeval.NewRNG(1))
//	bank, _ := noisyeval.BuildBank(pop, noisyeval.DefaultBuildOptions(), 1)
//	oracle, _ := noisyeval.NewBankOracle(bank, 0, noisyeval.SchemeWithCount(10), 1)
//	hist := noisyeval.Tuner{Method: noisyeval.RandomSearch{}, Space: noisyeval.DefaultSpace(),
//		Settings: noisyeval.DefaultSettings()}.Run(oracle, noisyeval.NewRNG(2))
package noisyeval

import (
	"noisyeval/internal/core"
	"noisyeval/internal/data"
	"noisyeval/internal/dp"
	"noisyeval/internal/eval"
	"noisyeval/internal/fl"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// Federated learning simulator.
type (
	// HParams is one hyperparameter configuration θ (Appendix B).
	HParams = fl.HParams
	// TrainerOptions configures the federated round loop.
	TrainerOptions = fl.Options
	// Trainer runs federated training of one configuration.
	Trainer = fl.Trainer
)

// Datasets.
type (
	// DataSpec describes a synthetic federated population.
	DataSpec = data.Spec
	// Population is a generated train/validation client split.
	Population = data.Population
	// Client is one device with local data.
	Client = data.Client
	// Example is one labelled sample.
	Example = data.Example
)

// Evaluation noise.
type (
	// Scheme configures one evaluation call's noise pipeline.
	Scheme = eval.Scheme
	// Evaluator turns per-client error vectors into (noisy) evaluations.
	Evaluator = eval.Evaluator
	// DPParams configures Laplace perturbation budgets.
	DPParams = dp.Params
)

// Tuning methods and protocol.
type (
	// Space is the hyperparameter search space.
	Space = hpo.Space
	// Budget is the tuning resource budget in training rounds.
	Budget = hpo.Budget
	// Settings configures a tuning run.
	Settings = hpo.Settings
	// Method is one tuning algorithm.
	Method = hpo.Method
	// Oracle is what tuning methods query.
	Oracle = hpo.Oracle
	// History is a tuning run's observation log.
	History = hpo.History
	// Observation is one tuner-visible evaluation event.
	Observation = hpo.Observation

	// RandomSearch, GridSearch, TPE, SuccessiveHalving, Hyperband, BOHB,
	// ResampledRS, and OneShotProxyRS are the tuning methods of the study;
	// FedPop is the population-based evolutionary baseline.
	RandomSearch      = hpo.RandomSearch
	GridSearch        = hpo.GridSearch
	TPE               = hpo.TPE
	SuccessiveHalving = hpo.SuccessiveHalving
	Hyperband         = hpo.Hyperband
	BOHB              = hpo.BOHB
	ResampledRS       = hpo.ResampledRS
	NoisyBO           = hpo.NoisyBO
	OneShotProxyRS    = hpo.OneShotProxyRS
	FedPop            = hpo.FedPop

	// AskTellDriver inverts a Method's control flow: the caller pulls
	// evaluation requests (Ask) and answers them (Tell) instead of handing
	// the method a blocking oracle. EvalRequest is one pending ask.
	AskTellDriver = hpo.AskTellDriver
	EvalRequest   = hpo.EvalRequest
	// MethodInfo describes one registry entry (name, aliases, settings hints).
	MethodInfo = hpo.MethodInfo
)

// Bank protocol and orchestration.
type (
	// Bank is the train-once/bootstrap-many artifact of the study.
	Bank = core.Bank
	// BuildOptions configures bank construction.
	BuildOptions = core.BuildOptions
	// BankOracle serves tuning methods from a bank.
	BankOracle = core.BankOracle
	// LiveOracle trains configurations on demand.
	LiveOracle = core.LiveOracle
	// BankStore is the content-addressed on-disk bank cache (entries keyed
	// by BankKey, written atomically, corrupt entries evicted on load,
	// size-boundable via SetMaxBytes/Prune).
	BankStore = core.BankStore
	// StoreStats reports BankStore cache-effectiveness counters.
	StoreStats = core.StoreStats
	// BankBuilder abstracts how banks come into existence (local build,
	// cache, or the internal/dist coordinator/worker fleet).
	BankBuilder = core.BankBuilder
	// LocalBuilder is the single-process BankBuilder over an optional store.
	LocalBuilder = core.LocalBuilder
	// BuildPlan is the deterministic skeleton of one bank build; shards of
	// its config range train independently and assemble byte-identically.
	BuildPlan = core.BuildPlan
	// BankShard is the training output for one config index range.
	BankShard = core.BankShard
	// ErrMatrix is the bank's dense error tensor: one contiguous arena
	// with [partition][config][checkpoint][client] strides and
	// zero-allocation row views.
	ErrMatrix = core.ErrMatrix
	// Tuner couples a method, space, and settings.
	Tuner = core.Tuner
	// Noise describes a combined evaluation-noise setting.
	Noise = core.Noise
	// TrialResult is one bootstrap trial outcome.
	TrialResult = core.TrialResult
	// RNG is the deterministic splittable generator used everywhere.
	RNG = rng.RNG
)

// Dataset constructors (paper Table 1/2 statistics).
var (
	CIFAR10Like       = data.CIFAR10Like
	FEMNISTLike       = data.FEMNISTLike
	StackOverflowLike = data.StackOverflowLike
	RedditLike        = data.RedditLike
	AllSpecs          = data.AllSpecs
	Generate          = data.Generate
	MustGenerate      = data.MustGenerate
	RepartitionIID    = data.RepartitionIID
)

// Simulator constructors.
var (
	NewTrainer            = fl.NewTrainer
	DefaultTrainerOptions = fl.DefaultOptions
)

// Tuning constructors.
var (
	DefaultSpace    = hpo.DefaultSpace
	DefaultBudget   = hpo.DefaultBudget
	DefaultSettings = hpo.DefaultSettings
	RungRounds      = hpo.RungRounds
	// MethodByName resolves a method (canonical name or alias) from the
	// registry; MethodInfos lists the catalogue. NewAskTellDriver starts a
	// method under ask/tell control; NearestConfig snaps a raw vector to
	// its closest pool member under the space's geometry.
	MethodByName     = hpo.MethodByName
	MethodInfos      = hpo.MethodInfos
	NewAskTellDriver = hpo.NewAskTellDriver
	NearestConfig    = hpo.NearestConfig
	ErrDriverClosed  = hpo.ErrDriverClosed
)

// Bank/orchestration constructors.
var (
	DefaultBuildOptions   = core.DefaultBuildOptions
	BuildBank             = core.BuildBank
	BuildBankCached       = core.BuildBankCached
	NewBankStore          = core.NewBankStore
	BankKey               = core.BankKey
	BankKeyForPopulation  = core.BankKeyForPopulation
	PopulationFingerprint = core.PopulationFingerprint
	NewBuildPlan          = core.NewBuildPlan
	AssembleBank          = core.AssembleBank
	ShardRanges           = core.ShardRanges
	NewErrMatrix          = core.NewErrMatrix
	SaveBank              = core.SaveBank
	LoadBank              = core.LoadBank
	EncodeBank            = core.EncodeBank
	DecodeBank            = core.DecodeBank
	IsStaleBankFormat     = core.IsStaleBankFormat
	NewBankOracle         = core.NewBankOracle
	NewLiveOracle         = core.NewLiveOracle
	FinalErrors           = core.FinalErrors
	NoiselessSetting      = core.Noiseless
)

// TailError returns the q-th percentile per-client error (tail performance,
// paper §6).
func TailError(errs []float64, q float64) float64 { return eval.TailError(errs, q) }

// WorstClientError returns the maximum per-client error.
func WorstClientError(errs []float64) float64 { return eval.WorstClientError(errs) }

// NewRNG returns a deterministic root RNG.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NoiselessScheme is the paper's noise-free reference evaluation.
func NoiselessScheme() Scheme { return eval.Noiseless() }

// SchemeWithCount evaluates on a fixed number of sampled clients with the
// paper's default weighted aggregation.
func SchemeWithCount(count int) Scheme {
	return Scheme{Count: count, Weighted: true}
}
