// Package client is the Go client for the noisyevald v1 API: run
// submission with event streaming, and ask/tell tuner sessions that open the
// daemon's bank oracle to external optimizers.
//
// The wire types here mirror internal/serve's JSON shapes without importing
// it, so external programs depend only on this package. Every non-2xx
// response decodes into *APIError carrying the server's machine-readable
// error code ({"error":{"code","message"}} envelope).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// HParams mirrors the server's hyperparameter vector. Fields marshal under
// their Go names, matching the daemon's encoding of internal/fl.HParams.
type HParams struct {
	ServerLR       float64
	Beta1          float64
	Beta2          float64
	LRDecay        float64
	ClientLR       float64
	ClientMomentum float64
	WeightDecay    float64
	BatchSize      int
	Epochs         int
}

// Noise mirrors serve.NoiseRequest.
type Noise struct {
	SampleCount    int     `json:"sample_count,omitempty"`
	SampleFraction float64 `json:"sample_fraction,omitempty"`
	Bias           float64 `json:"bias,omitempty"`
	Epsilon        float64 `json:"epsilon,omitempty"`
	HeterogeneityP float64 `json:"heterogeneity_p,omitempty"`
	Uniform        bool    `json:"uniform,omitempty"`
}

// RunRequest mirrors serve.RunRequest (POST /v1/runs).
type RunRequest struct {
	Dataset string `json:"dataset"`
	Method  string `json:"method"`
	Scale   string `json:"scale,omitempty"`
	Trials  int    `json:"trials,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Noise   Noise  `json:"noise,omitempty"`
}

// BestConfig mirrors serve.BestConfig.
type BestConfig struct {
	Config  HParams `json:"config"`
	TrueErr float64 `json:"true_err"`
	Rounds  int     `json:"rounds"`
}

// RunResult mirrors serve.RunResult.
type RunResult struct {
	MedianErr    float64     `json:"median_err"`
	Q1Err        float64     `json:"q1_err"`
	Q3Err        float64     `json:"q3_err"`
	MeanErr      float64     `json:"mean_err"`
	Finals       []float64   `json:"finals"`
	BudgetRounds int         `json:"budget_rounds"`
	BankKey      string      `json:"bank_key"`
	Best         *BestConfig `json:"best,omitempty"`
}

// RunStatus mirrors serve.RunStatus (GET /v1/runs/{id}).
type RunStatus struct {
	ID          string     `json:"id"`
	Key         string     `json:"key"`
	State       string     `json:"state"`
	Request     RunRequest `json:"request"`
	CreatedAt   string     `json:"created_at"`
	StartedAt   string     `json:"started_at,omitempty"`
	FinishedAt  string     `json:"finished_at,omitempty"`
	TrialsDone  int        `json:"trials_done"`
	TrialsTotal int        `json:"trials_total"`
	Result      *RunResult `json:"result,omitempty"`
	Error       string     `json:"error,omitempty"`
}

// Terminal reports whether the run state admits no further transitions.
func (s RunStatus) Terminal() bool {
	return s.State == "done" || s.State == "failed" || s.State == "cancelled"
}

// TrialInfo mirrors serve.TrialInfo.
type TrialInfo struct {
	Index     int     `json:"index"`
	Completed int     `json:"completed"`
	Total     int     `json:"total"`
	FinalErr  float64 `json:"final_err"`
}

// Event mirrors serve.Event (one NDJSON line of the event stream).
type Event struct {
	Seq   int        `json:"seq"`
	Type  string     `json:"type"`
	State string     `json:"state,omitempty"`
	Trial *TrialInfo `json:"trial,omitempty"`
	Error string     `json:"error,omitempty"`
}

// RunListItem mirrors one row of GET /v1/runs.
type RunListItem struct {
	ID         string `json:"id"`
	Key        string `json:"key"`
	State      string `json:"state"`
	Dataset    string `json:"dataset"`
	Method     string `json:"method"`
	Scale      string `json:"scale"`
	TrialsDone int    `json:"trials_done"`
	Trials     int    `json:"trials_total"`
}

// RunPage is one page of ListRuns; a non-empty NextCursor resumes the walk.
type RunPage struct {
	Runs       []RunListItem `json:"runs"`
	NextCursor string        `json:"next_cursor"`
}

// ListRunsOptions filters and paginates ListRuns.
type ListRunsOptions struct {
	State  string
	Limit  int
	Cursor string
}

// MethodInfo mirrors one row of GET /v1/methods.
type MethodInfo struct {
	Name        string            `json:"name"`
	Display     string            `json:"display"`
	Aliases     []string          `json:"aliases,omitempty"`
	Description string            `json:"description"`
	Settings    map[string]string `json:"settings,omitempty"`
}

// SessionRequest mirrors serve.SessionRequest (POST /v1/sessions). An empty
// or "external" Method opens an externally driven session.
type SessionRequest struct {
	Dataset string `json:"dataset"`
	Method  string `json:"method,omitempty"`
	Scale   string `json:"scale,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Trial   int    `json:"trial,omitempty"`
	Noise   Noise  `json:"noise,omitempty"`
}

// SessionTrial mirrors serve.SessionTrial.
type SessionTrial struct {
	Index       int     `json:"index"`
	Source      string  `json:"source"`
	AskID       *int    `json:"ask_id,omitempty"`
	ConfigIndex int     `json:"config_index"`
	Config      HParams `json:"config"`
	Rounds      int     `json:"rounds"`
	Observed    float64 `json:"observed"`
	TrueErr     float64 `json:"true_err"`
	EvalID      string  `json:"eval_id"`
}

// SessionStatus mirrors serve.SessionStatus (GET /v1/sessions/{id}).
type SessionStatus struct {
	ID           string         `json:"id"`
	Key          string         `json:"key"`
	State        string         `json:"state"`
	Request      SessionRequest `json:"request"`
	CreatedAt    string         `json:"created_at"`
	External     bool           `json:"external"`
	Asked        int            `json:"asked"`
	Told         int            `json:"told"`
	Evals        int            `json:"evals"`
	SpentRounds  int            `json:"spent_rounds"`
	BudgetRounds int            `json:"budget_rounds"`
	BankKey      string         `json:"bank_key"`
	PoolSize     int            `json:"pool_size"`
	MaxRounds    int            `json:"max_rounds"`
	Checkpoints  []int          `json:"checkpoints"`
	Trials       []SessionTrial `json:"trials"`
	Best         *SessionTrial  `json:"best,omitempty"`
	Error        string         `json:"error,omitempty"`
}

// AskItem mirrors serve.AskItem.
type AskItem struct {
	ID          int     `json:"id"`
	ConfigIndex int     `json:"config_index"`
	Config      HParams `json:"config"`
	Rounds      int     `json:"rounds"`
	EvalID      string  `json:"eval_id"`
}

// AskResponse mirrors serve.AskResponse.
type AskResponse struct {
	Asks  []AskItem `json:"asks"`
	Done  bool      `json:"done"`
	State string    `json:"state"`
}

// TellAnswer answers one pending ask; nil Observed asks the server to
// evaluate the suggestion on its bank oracle.
type TellAnswer struct {
	AskID    int      `json:"ask_id"`
	Observed *float64 `json:"observed,omitempty"`
}

// TellEval proposes one evaluation by pool index or parameter vector.
type TellEval struct {
	ConfigIndex *int     `json:"config_index,omitempty"`
	Config      *HParams `json:"config,omitempty"`
	Rounds      int      `json:"rounds,omitempty"`
	EvalID      string   `json:"eval_id,omitempty"`
}

// TellRequest mirrors serve.TellRequest.
type TellRequest struct {
	Answers  []TellAnswer `json:"answers,omitempty"`
	Evaluate []TellEval   `json:"evaluate,omitempty"`
}

// TellResponse mirrors serve.TellResponse.
type TellResponse struct {
	Results     []SessionTrial `json:"results"`
	Done        bool           `json:"done"`
	State       string         `json:"state"`
	Best        *SessionTrial  `json:"best,omitempty"`
	SpentRounds int            `json:"spent_rounds"`
}

// HealthJournal mirrors the journal block of GET /healthz.
type HealthJournal struct {
	Enabled      bool   `json:"enabled"`
	Bytes        int64  `json:"bytes,omitempty"`
	MaxBytes     int64  `json:"max_bytes,omitempty"`
	LastSnapshot string `json:"last_snapshot,omitempty"`
}

// HealthBanks mirrors the banks block of GET /healthz: bank-store state,
// including how much of the cache is currently mmap-served.
type HealthBanks struct {
	Enabled        bool   `json:"enabled"`
	Dir            string `json:"dir,omitempty"`
	MappedFiles    int64  `json:"mapped_files,omitempty"`
	MappedBytes    int64  `json:"mapped_bytes,omitempty"`
	Grows          int64  `json:"grows,omitempty"`
	CorruptSegment int64  `json:"corrupt_segment,omitempty"`
}

// Health mirrors GET /healthz.
type Health struct {
	Status     string        `json:"status"`
	Uptime     string        `json:"uptime"`
	RunsActive int64         `json:"runs_active"`
	RunsQueued int64         `json:"runs_queued"`
	Journal    HealthJournal `json:"journal"`
	Banks      HealthBanks   `json:"banks"`
}

// GrowBankResult mirrors the response of POST /v1/banks/{key}/grow.
type GrowBankResult struct {
	Dataset string `json:"dataset"`
	OldKey  string `json:"old_key"`
	NewKey  string `json:"new_key"`
	Added   int    `json:"added"`
	Total   int    `json:"total"`
}

// TraceSpan mirrors one span of GET /v1/runs/{id}/trace (obs.SpanView).
type TraceSpan struct {
	Name       string            `json:"name"`
	Start      string            `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// RunTrace mirrors GET /v1/runs/{id}/trace (obs.TraceView): the run's span
// timeline under its trace ID. A journal-recovered run answers with an empty
// timeline — the run survived the crash, its spans did not.
type RunTrace struct {
	TraceID string      `json:"trace_id"`
	Spans   []TraceSpan `json:"spans"`
}

// Span returns the first span with the given name (nil when absent).
func (t RunTrace) Span(name string) *TraceSpan {
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			return &t.Spans[i]
		}
	}
	return nil
}

// APIError is a non-2xx response: the HTTP status plus the server's coded
// envelope. Branch on Code ("unknown_method", "budget_exhausted", ...).
type APIError struct {
	Status  int
	Code    string
	Message string
	// RetryAfter is the server's Retry-After hint in seconds (0 when the
	// response carried none). The client's RetryPolicy honors it.
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("noisyevald: %d %s: %s", e.Status, e.Code, e.Message)
}

// Client talks to one noisyevald.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry controls automatic retries on transient failures (429/503
	// rejections for every call; connection errors for idempotent ones).
	// nil = DefaultRetryPolicy. Use NoRetry() to disable.
	Retry *RetryPolicy
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) retry() *RetryPolicy {
	if c.Retry != nil {
		return c.Retry
	}
	return DefaultRetryPolicy()
}

// apiErrorFrom decodes a non-2xx response into *APIError, capturing the
// Retry-After hint for the retry policy.
func apiErrorFrom(resp *http.Response, raw []byte) *APIError {
	retryAfter := 0
	if s := resp.Header.Get("Retry-After"); s != "" {
		retryAfter, _ = strconv.Atoi(s)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
		return &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message, RetryAfter: retryAfter}
	}
	return &APIError{Status: resp.StatusCode, Code: "unknown", Message: strings.TrimSpace(string(raw)), RetryAfter: retryAfter}
}

// do issues one JSON call with automatic retries; non-2xx decodes into
// *APIError. 429/503 rejections retry for every call (the server did not
// process them); transport errors retry only for idempotent calls — GETs,
// and POST /v1/runs, which the daemon deduplicates by content-addressed run
// key, so a double submission is harmless.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var raw []byte
	if in != nil {
		var err error
		if raw, err = json.Marshal(in); err != nil {
			return err
		}
	}
	idempotent := method == http.MethodGet ||
		(method == http.MethodPost && path == "/v1/runs")
	pol := c.retry()
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, raw, out)
		if err == nil {
			return nil
		}
		delay, retry := pol.shouldRetry(ctx, err, attempt, idempotent)
		if !retry {
			return err
		}
		if serr := sleepCtx(ctx, delay); serr != nil {
			return err
		}
	}
}

// doOnce issues exactly one JSON round trip.
func (c *Client) doOnce(ctx context.Context, method, path string, rawIn []byte, out any) error {
	var body io.Reader
	if rawIn != nil {
		body = bytes.NewReader(rawIn)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if rawIn != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiErrorFrom(resp, raw)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// SubmitRun submits a tuning job. A dedup hit returns the absorbed run.
func (c *Client) SubmitRun(ctx context.Context, req RunRequest) (RunStatus, error) {
	var st RunStatus
	err := c.do(ctx, http.MethodPost, "/v1/runs", req, &st)
	return st, err
}

// GetRun fetches a run's status/result.
func (c *Client) GetRun(ctx context.Context, id string) (RunStatus, error) {
	var st RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// ListRuns fetches one page of runs.
func (c *Client) ListRuns(ctx context.Context, opts ListRunsOptions) (RunPage, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", opts.State)
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Cursor != "" {
		q.Set("cursor", opts.Cursor)
	}
	path := "/v1/runs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page RunPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// StreamEvents consumes a run's NDJSON event stream, calling fn per event
// until the stream ends (terminal event), fn returns an error, or ctx
// expires. afterSeq > -1 resumes after that sequence number via
// Last-Event-ID, exactly as a reconnecting SSE client would.
func (c *Client) StreamEvents(ctx context.Context, id string, afterSeq int, fn func(Event) error) error {
	// Only the connect phase retries: before the first byte of the stream,
	// reconnecting cannot duplicate events. Mid-stream failures return to
	// the caller, who resumes with afterSeq (Last-Event-ID) exactly as a
	// reconnecting SSE client would.
	pol := c.retry()
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/runs/"+url.PathEscape(id)+"/events", nil)
		if err != nil {
			return err
		}
		if afterSeq > -1 {
			req.Header.Set("Last-Event-ID", strconv.Itoa(afterSeq))
		}
		var connErr error
		resp, connErr = c.httpClient().Do(req)
		if connErr == nil && resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			connErr = apiErrorFrom(resp, raw)
		}
		if connErr == nil {
			break
		}
		delay, retry := pol.shouldRetry(ctx, connErr, attempt, true)
		if !retry {
			return connErr
		}
		if serr := sleepCtx(ctx, delay); serr != nil {
			return connErr
		}
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("bad event line %q: %w", sc.Text(), err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return sc.Err()
}

// WaitRun streams events until the run reaches a terminal state, then
// returns the final status.
func (c *Client) WaitRun(ctx context.Context, id string) (RunStatus, error) {
	if err := c.StreamEvents(ctx, id, -1, func(Event) error { return nil }); err != nil {
		return RunStatus{}, err
	}
	return c.GetRun(ctx, id)
}

// Trace fetches a run's span timeline (GET /v1/runs/{id}/trace).
func (c *Client) Trace(ctx context.Context, id string) (RunTrace, error) {
	var tr RunTrace
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id)+"/trace", nil, &tr)
	return tr, err
}

// Metrics fetches the daemon's Prometheus text exposition (GET /metrics),
// verbatim. Callers that only need one series can string-search it; anything
// richer should scrape with a real Prometheus client.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	pol := c.retry()
	for attempt := 0; ; attempt++ {
		body, err := c.metricsOnce(ctx)
		if err == nil {
			return body, nil
		}
		delay, retry := pol.shouldRetry(ctx, err, attempt, true)
		if !retry {
			return "", err
		}
		if serr := sleepCtx(ctx, delay); serr != nil {
			return "", err
		}
	}
}

func (c *Client) metricsOnce(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", apiErrorFrom(resp, raw)
	}
	return string(raw), nil
}

// Methods fetches the tuning-method catalogue.
func (c *Client) Methods(ctx context.Context) ([]MethodInfo, error) {
	var resp struct {
		Methods []MethodInfo `json:"methods"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/methods", nil, &resp)
	return resp.Methods, err
}

// OpenSession opens an ask/tell tuner session.
func (c *Client) OpenSession(ctx context.Context, req SessionRequest) (SessionStatus, error) {
	var st SessionStatus
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &st)
	return st, err
}

// GetSession fetches a session's state, trial log, and best-so-far.
func (c *Client) GetSession(ctx context.Context, id string) (SessionStatus, error) {
	var st SessionStatus
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Ask requests the session method's next suggested evaluation.
func (c *Client) Ask(ctx context.Context, id string) (AskResponse, error) {
	var resp AskResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/ask", nil, &resp)
	return resp, err
}

// Tell answers pending asks and/or evaluates caller-chosen configurations.
func (c *Client) Tell(ctx context.Context, id string, req TellRequest) (TellResponse, error) {
	var resp TellResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/tell", req, &resp)
	return resp, err
}

// CloseSession closes a session, returning its final status.
func (c *Client) CloseSession(ctx context.Context, id string) (SessionStatus, error) {
	var st SessionStatus
	err := c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, &st)
	return st, err
}

// DriveSession runs a driven session's full ask/tell loop, answering every
// ask with the server's own bank evaluation, and returns the completed
// status — the external-driver loop in one call. maxSteps bounds the loop
// (0 = 10000).
func (c *Client) DriveSession(ctx context.Context, id string, maxSteps int) (SessionStatus, error) {
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	for i := 0; i < maxSteps; i++ {
		ask, err := c.Ask(ctx, id)
		if err != nil {
			return SessionStatus{}, err
		}
		if ask.Done {
			return c.GetSession(ctx, id)
		}
		if _, err := c.Tell(ctx, id, TellRequest{Answers: []TellAnswer{{AskID: ask.Asks[0].ID}}}); err != nil {
			return SessionStatus{}, err
		}
	}
	return SessionStatus{}, fmt.Errorf("noisyevald: session %s did not finish in %d steps", id, maxSteps)
}

// GetHealth fetches /healthz.
func (c *Client) GetHealth(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// GrowBank asks the daemon to extend the bank addressed by key with add
// freshly trained configs (POST /v1/banks/{key}/grow). On success the
// bank's content address has advanced to NewKey; the old key keeps
// resolving through a store alias.
func (c *Client) GrowBank(ctx context.Context, key string, add int) (GrowBankResult, error) {
	var res GrowBankResult
	err := c.do(ctx, http.MethodPost, "/v1/banks/"+url.PathEscape(key)+"/grow", map[string]int{"add": add}, &res)
	return res, err
}
