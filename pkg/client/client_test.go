package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"noisyeval/internal/exper"
	"noisyeval/internal/serve"
)

// newDaemon boots an in-process noisyevald over a miniature suite — the
// same server main() serves, end to end over real HTTP.
func newDaemon(t *testing.T) *Client {
	t.Helper()
	cfg := exper.Config{
		Scales:        map[string]float64{"cifar10": 0.06, "femnist": 0.02, "stackoverflow": 0.002, "reddit": 0.0008},
		CapExamples:   30,
		BankConfigs:   6,
		MaxRounds:     9,
		K:             4,
		Trials:        4,
		MethodTrials:  2,
		Seed:          7,
		Fig13Datasets: []string{"cifar10"},
		Fig13Configs:  4,
	}
	mgr := serve.NewManager(serve.Options{Scales: map[string]exper.Config{"quick": cfg}})
	ts := httptest.NewServer(serve.NewServer(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	})
	return New(ts.URL)
}

func TestRunLifecycleAndEvents(t *testing.T) {
	c := newDaemon(t)
	ctx := context.Background()

	st, err := c.SubmitRun(ctx, RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 11, Noise: Noise{SampleCount: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := c.StreamEvents(ctx, st.ID, -1, func(e Event) error { events = append(events, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	// Resume after the first event: replay must skip it.
	var resumed []Event
	if err := c.StreamEvents(ctx, st.ID, events[0].Seq, func(e Event) error { resumed = append(resumed, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(events)-1 || (len(resumed) > 0 && resumed[0].Seq != events[1].Seq) {
		t.Errorf("resume replayed %d events from seq %d, want %d from %d",
			len(resumed), resumed[0].Seq, len(events)-1, events[1].Seq)
	}

	final, err := c.WaitRun(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Result == nil || final.Result.Best == nil {
		t.Fatalf("final = %+v", final)
	}

	page, err := c.ListRuns(ctx, ListRunsOptions{State: "done", Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Runs) != 1 || page.Runs[0].ID != st.ID {
		t.Errorf("list = %+v", page.Runs)
	}
}

// TestSessionParity is the end-to-end ask/tell parity pin through the public
// client: DriveSession over the wire reproduces the server-driven run's
// recommendation for the same (dataset, method, noise, seed, trial 0).
func TestSessionParity(t *testing.T) {
	c := newDaemon(t)
	ctx := context.Background()
	for _, method := range []string{"rs", "sha"} {
		st, err := c.SubmitRun(ctx, RunRequest{Dataset: "cifar10", Method: method, Trials: 1, Seed: 5, Noise: Noise{SampleCount: 2}})
		if err != nil {
			t.Fatal(err)
		}
		run, err := c.WaitRun(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := c.OpenSession(ctx, SessionRequest{Dataset: "cifar10", Method: method, Seed: 5, Noise: Noise{SampleCount: 2}})
		if err != nil {
			t.Fatal(err)
		}
		final, err := c.DriveSession(ctx, sess.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != "done" || final.Best == nil {
			t.Fatalf("%s: session final = %+v", method, final)
		}
		want := run.Result.Best
		if final.Best.Config != want.Config || final.Best.Rounds != want.Rounds || final.Best.TrueErr != want.TrueErr {
			t.Errorf("%s: session best %+v != run best %+v", method, *final.Best, *want)
		}
	}
}

func TestExternalSessionAndErrors(t *testing.T) {
	c := newDaemon(t)
	ctx := context.Background()

	sess, err := c.OpenSession(ctx, SessionRequest{Dataset: "cifar10", Seed: 2, Noise: Noise{SampleCount: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !sess.External || sess.PoolSize == 0 {
		t.Fatalf("session = %+v", sess)
	}
	idx := 1
	resp, err := c.Tell(ctx, sess.ID, TellRequest{Evaluate: []TellEval{{ConfigIndex: &idx, Rounds: sess.MaxRounds}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ConfigIndex != 1 || resp.SpentRounds == 0 {
		t.Errorf("tell = %+v", resp)
	}
	// Vector form snaps to the evaluated member's own index.
	cfg := resp.Results[0].Config
	resp2, err := c.Tell(ctx, sess.ID, TellRequest{Evaluate: []TellEval{{Config: &cfg}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Results[0].ConfigIndex != 1 {
		t.Errorf("vector snapped to %d, want 1", resp2.Results[0].ConfigIndex)
	}
	if _, err := c.CloseSession(ctx, sess.ID); err != nil {
		t.Fatal(err)
	}

	// Coded errors surface as APIError with the server's code.
	_, err = c.SubmitRun(ctx, RunRequest{Dataset: "cifar10", Method: "sgd"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "unknown_method" || ae.Status != 400 {
		t.Errorf("unknown method error = %v", err)
	}
	_, err = c.Ask(ctx, "sess-999999")
	if !errors.As(err, &ae) || ae.Code != "not_found" || ae.Status != 404 {
		t.Errorf("missing session error = %v", err)
	}
}

func TestMethodsCatalogue(t *testing.T) {
	c := newDaemon(t)
	methods, err := c.Methods(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, m := range methods {
		found[m.Name] = true
	}
	for _, want := range []string{"rs", "sha", "fedpop"} {
		if !found[want] {
			t.Errorf("catalogue missing %q", want)
		}
	}
}
