package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

func TestTraceRetriesThenDecodes(t *testing.T) {
	ts, calls := flakyServer(t, 2, reject503("queue_full", 0), func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/runs/run-000001/trace" {
			t.Errorf("path = %q", r.URL.Path)
		}
		fmt.Fprint(w, `{"trace_id":"abc123","spans":[
			{"name":"queue.wait","start":"2026-08-07T12:00:00Z","duration_ms":1.5},
			{"name":"shard.train","start":"2026-08-07T12:00:01Z","duration_ms":20,"attrs":{"worker":"w1","range":"0-2"}}]}`)
	})
	c := New(ts.URL)
	c.Retry = fastRetry(4)
	tr, err := c.Trace(context.Background(), "run-000001")
	if err != nil {
		t.Fatalf("Trace after flaky 503s: %v", err)
	}
	if tr.TraceID != "abc123" || len(tr.Spans) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	if sp := tr.Span("shard.train"); sp == nil || sp.Attrs["worker"] != "w1" {
		t.Errorf("Span(shard.train) = %+v", sp)
	}
	if tr.Span("missing") != nil {
		t.Error("Span(missing) != nil")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (two 503s + success)", got)
	}
}

func TestTrace404IsTerminal(t *testing.T) {
	ts, calls := flakyServer(t, 1000, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"not_found","message":"no run"}}`)
	}, healthOK)
	c := New(ts.URL)
	c.Retry = fastRetry(5)
	_, err := c.Trace(context.Background(), "run-999999")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "not_found" {
		t.Fatalf("err = %v, want not_found APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (404 is not retryable)", got)
	}
}

func TestMetricsRetriesAndReturnsRawText(t *testing.T) {
	const exposition = "# HELP runs_admitted_total Runs accepted.\n# TYPE runs_admitted_total counter\nruns_admitted_total 7\n"
	ts, calls := flakyServer(t, 2, reject503("shutting_down", 0), func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			t.Errorf("path = %q", r.URL.Path)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, exposition)
	})
	c := New(ts.URL)
	c.Retry = fastRetry(4)
	body, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics after flaky 503s: %v", err)
	}
	if body != exposition {
		t.Errorf("Metrics body = %q, want verbatim exposition", body)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
}

func TestMetricsRetryBudgetCapped(t *testing.T) {
	ts, calls := flakyServer(t, 1000, reject503("queue_full", 0), healthOK)
	c := New(ts.URL)
	c.Retry = fastRetry(3)
	_, err := c.Metrics(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want terminal 503 APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want exactly MaxAttempts=3", got)
	}
}
