package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry is a test policy with negligible delays so flaky-server tests
// stay fast, and no jitter so attempt counts are deterministic.
func fastRetry(attempts int) *RetryPolicy {
	return &RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, jitterless: true}
}

// flakyServer fails the first n requests per path with fail, then delegates
// to ok.
func flakyServer(t *testing.T, n int64, fail, ok http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			fail(w, r)
			return
		}
		ok(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func reject503(code string, retryAfter int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprint(retryAfter))
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"error":{"code":%q,"message":"try later"}}`, code)
	}
}

func healthOK(w http.ResponseWriter, r *http.Request) {
	fmt.Fprint(w, `{"status":"ok","uptime":"1s"}`)
}

func TestRetryOn503ThenSuccess(t *testing.T) {
	ts, calls := flakyServer(t, 2, reject503("queue_full", 0), healthOK)
	c := New(ts.URL)
	c.Retry = fastRetry(4)
	h, err := c.GetHealth(context.Background())
	if err != nil {
		t.Fatalf("GetHealth after flaky 503s: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (two 503s + success)", got)
	}
}

func TestRetryBudgetCapped(t *testing.T) {
	ts, calls := flakyServer(t, 1000, reject503("queue_full", 0), healthOK)
	c := New(ts.URL)
	c.Retry = fastRetry(3)
	_, err := c.GetHealth(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want terminal 503 APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want exactly MaxAttempts=3", got)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	// Retry-After: 1 (second) must dominate the 1ms base delay — but stays
	// capped at MaxDelay, so the test asserts a delay in between.
	ts, _ := flakyServer(t, 1, reject503("shed_cold_bank", 1), healthOK)
	c := New(ts.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 150 * time.Millisecond, jitterless: true}
	start := time.Now()
	if _, err := c.GetHealth(context.Background()); err != nil {
		t.Fatalf("GetHealth: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Errorf("retried after %s; Retry-After hint (capped at MaxDelay=150ms) not honored", elapsed)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	ts, calls := flakyServer(t, 1000, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"code":"bad_request","message":"nope"}}`)
	}, healthOK)
	c := New(ts.URL)
	c.Retry = fastRetry(5)
	_, err := c.GetHealth(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "bad_request" {
		t.Fatalf("err = %v, want bad_request APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (4xx is not retryable)", got)
	}
}

func TestTransportErrorRetriesIdempotentOnly(t *testing.T) {
	// A handler that hijacks and slams the connection produces the
	// connection-reset class of transport error on the client side.
	reset := func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Fatalf("hijack: %v", err)
		}
		conn.Close()
	}

	t.Run("GET retries", func(t *testing.T) {
		ts, calls := flakyServer(t, 2, reset, healthOK)
		c := New(ts.URL)
		c.Retry = fastRetry(4)
		if _, err := c.GetHealth(context.Background()); err != nil {
			t.Fatalf("GetHealth after connection resets: %v", err)
		}
		if got := calls.Load(); got != 3 {
			t.Errorf("server saw %d requests, want 3", got)
		}
	})

	t.Run("SubmitRun retries (dedup makes it idempotent)", func(t *testing.T) {
		ts, calls := flakyServer(t, 1, reset, func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"run-000001","state":"queued"}`)
		})
		c := New(ts.URL)
		c.Retry = fastRetry(4)
		st, err := c.SubmitRun(context.Background(), RunRequest{Dataset: "cifar10", Method: "rs"})
		if err != nil {
			t.Fatalf("SubmitRun after reset: %v", err)
		}
		if st.ID != "run-000001" || calls.Load() != 2 {
			t.Errorf("id=%q calls=%d, want run-000001 after 2 requests", st.ID, calls.Load())
		}
	})

	t.Run("ask/tell does not retry transport errors", func(t *testing.T) {
		ts, calls := flakyServer(t, 1000, reset, healthOK)
		c := New(ts.URL)
		c.Retry = fastRetry(5)
		_, err := c.Ask(context.Background(), "sess-000001")
		if err == nil {
			t.Fatal("Ask over a resetting connection succeeded")
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("server saw %d requests, want 1 (non-idempotent POST must not retry a transport error)", got)
		}
	})
}

func TestRetryStops503OnNonIdempotentToo(t *testing.T) {
	// A 503 rejection was never processed, so even ask/tell POSTs retry it.
	ts, calls := flakyServer(t, 1, reject503("too_many_sessions", 0), func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"asks":[],"done":true,"state":"done"}`)
	})
	c := New(ts.URL)
	c.Retry = fastRetry(3)
	resp, err := c.Ask(context.Background(), "sess-000001")
	if err != nil || !resp.Done {
		t.Fatalf("Ask = %+v, %v", resp, err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

func TestRetryRespectsContextCancel(t *testing.T) {
	ts, _ := flakyServer(t, 1000, reject503("queue_full", 30), healthOK)
	c := New(ts.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Minute, jitterless: true}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.GetHealth(ctx)
	if err == nil {
		t.Fatal("GetHealth succeeded against a permanently rejecting server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled call took %s; retries ignored the context", elapsed)
	}
}

func TestStreamEventsRetriesConnect(t *testing.T) {
	ts, calls := flakyServer(t, 2, reject503("shutting_down", 0), func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"seq":0,"type":"state","state":"queued"}`)
		fmt.Fprintln(w, `{"seq":1,"type":"state","state":"done"}`)
	})
	c := New(ts.URL)
	c.Retry = fastRetry(4)
	var seen []int
	err := c.StreamEvents(context.Background(), "run-000001", -1, func(e Event) error {
		seen = append(seen, e.Seq)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamEvents: %v", err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Errorf("events = %v, want [0 1]", seen)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond, jitterless: true}
	for i, want := range []time.Duration{10, 20, 40, 45, 45} {
		if got := p.backoff(i, 0); got != want*time.Millisecond {
			t.Errorf("backoff(%d) = %s, want %s", i, got, want*time.Millisecond)
		}
	}
	// A huge attempt index must not overflow the shift into a negative delay.
	if got := p.backoff(62, 0); got != 45*time.Millisecond {
		t.Errorf("backoff(62) = %s, want capped 45ms", got)
	}
}
