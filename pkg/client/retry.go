package client

import (
	"context"
	"math/rand"
	"net/http"
	"time"
)

// RetryPolicy controls the client's automatic retries. Retries engage in two
// situations, with different safety rules:
//
//   - Enveloped 429/503 responses (queue_full, journal_full, shed_cold_bank,
//     shutting_down, too_many_sessions, rate limits). The server rejected the
//     request without processing it, so retrying is safe for every call. A
//     Retry-After header is honored (capped at MaxDelay).
//   - Transport errors (connection reset, broken pipe, unexpected EOF). The
//     request may have been processed before the connection died, so only
//     idempotent calls retry: GETs, and SubmitRun — which is idempotent by
//     construction, since the daemon deduplicates submissions on their
//     content-addressed run key and an accidental double submission coalesces
//     onto the same run.
//
// Context cancellation and deadline expiry are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (0 = DefaultMaxAttempts; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; subsequent retries
	// double it (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps every backoff, including server-supplied Retry-After
	// hints (0 = 5s).
	MaxDelay time.Duration
	// jitterless pins the backoff to its full value instead of jittering
	// (tests only — deterministic timing assertions).
	jitterless bool
}

// DefaultMaxAttempts is the retry budget when RetryPolicy.MaxAttempts is 0:
// one initial try plus three retries.
const DefaultMaxAttempts = 4

// DefaultRetryPolicy returns the policy a zero Client uses.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: DefaultMaxAttempts, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
}

// NoRetry returns a policy that disables retries entirely.
func NoRetry() *RetryPolicy { return &RetryPolicy{MaxAttempts: 1} }

func (p *RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

func (p *RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p *RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 5 * time.Second
	}
	return p.MaxDelay
}

// retryableStatus reports whether an HTTP status signals a transient
// rejection the server did not process.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// backoff computes the delay before retry number attempt (0-based), folding
// in the server's Retry-After hint when present. Exponential in attempt with
// full jitter — uniformly drawn from [delay/2, delay] — so a thundering herd
// of rejected clients decorrelates instead of returning in lockstep.
func (p *RetryPolicy) backoff(attempt int, serverHint time.Duration) time.Duration {
	d := p.baseDelay() << attempt
	if d > p.maxDelay() || d <= 0 { // <= 0: shift overflow
		d = p.maxDelay()
	}
	if serverHint > d {
		d = serverHint
	}
	if d > p.maxDelay() {
		d = p.maxDelay()
	}
	if !p.jitterless {
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	}
	return d
}

// shouldRetry decides whether err (from attempt, 0-based) warrants another
// try, and with what delay.
func (p *RetryPolicy) shouldRetry(ctx context.Context, err error, attempt int, idempotent bool) (time.Duration, bool) {
	if attempt >= p.maxAttempts()-1 || ctx.Err() != nil {
		return 0, false
	}
	if ae, ok := err.(*APIError); ok {
		if !retryableStatus(ae.Status) {
			return 0, false
		}
		return p.backoff(attempt, time.Duration(ae.RetryAfter)*time.Second), true
	}
	// Anything that is not an APIError is a transport failure: the request
	// may or may not have reached the server, so only idempotent calls retry.
	if !idempotent {
		return 0, false
	}
	return p.backoff(attempt, 0), true
}

// sleepCtx waits for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
