package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"noisyeval/internal/exper"
)

// TestGracefulShutdownDrainsInFlightCancelsQueued pins the shutdown
// contract: the in-flight run completes with a real result, queued runs are
// cancelled without executing, and late submissions are rejected. The
// execGate hook holds the single worker at the head of run A until both
// queued runs are in place, making the schedule deterministic.
func TestGracefulShutdownDrainsInFlightCancelsQueued(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan *Run, 1)
	opts := Options{
		Workers: 1,
		Store:   nil,
		Scales:  map[string]exper.Config{"quick": tinyConfig()},
		execGate: func(r *Run) {
			entered <- r
			<-gate
		},
	}
	opts.Store = testStore(t)
	mgr := NewManager(opts)

	submit := func(seed uint64) *Run {
		t.Helper()
		run, created, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: seed})
		if err != nil || !created {
			t.Fatalf("submit seed %d: created=%v err=%v", seed, created, err)
		}
		return run
	}

	inflight := submit(1)
	select {
	case got := <-entered:
		if got != inflight {
			t.Fatalf("worker picked %s, want %s", got.ID, inflight.ID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the first run")
	}
	queuedA, queuedB := submit(2), submit(3)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- mgr.Shutdown(ctx)
	}()

	// Submissions during shutdown are rejected. Shutdown marks closed
	// synchronously before waiting, but give the goroutine a beat to run;
	// until then the probe (identical to queuedB) merely dedups, creating
	// no extra runs.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, created, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 3})
		if errors.Is(err, ErrShuttingDown) {
			break
		}
		if created || time.Now().After(deadline) {
			t.Fatalf("submission during shutdown not rejected (created=%v err=%v)", created, err)
		}
		time.Sleep(time.Millisecond)
	}

	close(gate) // release the in-flight run; drain proceeds
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if st := inflight.State(); st != StateDone {
		t.Errorf("in-flight run state = %q, want done (drained)", st)
	}
	if _, body, _ := inflight.Snapshot(); body == nil {
		t.Error("drained run has no result bytes")
	}
	for _, q := range []*Run{queuedA, queuedB} {
		if st := q.State(); st != StateCancelled {
			t.Errorf("queued run %s state = %q, want cancelled", q.ID, st)
		}
	}
	c := mgr.Counters()
	if c.RunsCompleted != 1 || c.RunsCancelled != 2 {
		t.Errorf("counters = %+v, want 1 completed / 2 cancelled", c)
	}

	// Idempotent.
	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestShutdownCancelledRunStreamsTerminate verifies a queued run's event
// stream ends with the cancelled state when shutdown drains the queue — a
// client watching /events is not left hanging.
func TestShutdownCancelledRunStreamsTerminate(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	opts := Options{
		Workers: 1,
		Store:   testStore(t),
		Scales:  map[string]exper.Config{"quick": tinyConfig()},
		execGate: func(*Run) {
			entered <- struct{}{}
			<-gate
		},
	}
	mgr := NewManager(opts)
	ts := &testServer{Server: httptest.NewServer(NewServer(mgr)), mgr: mgr}
	defer ts.Close()

	_, first := ts.submit(t, `{"dataset":"cifar10","method":"rs","trials":2,"seed":1}`)
	<-entered
	_, queued := ts.submit(t, `{"dataset":"cifar10","method":"rs","trials":2,"seed":2}`)

	type streamOut struct {
		events []Event
		err    error
	}
	got := make(chan streamOut, 1)
	go func() {
		events, err := ts.tryStreamEvents(queued.ID)
		got <- streamOut{events, err}
	}()

	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	}()
	// Wait until shutdown has registered (submissions rejected — the probe
	// is identical to the queued run, so until then it only dedups), then
	// release the in-flight run so draining can finish.
	for {
		_, _, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 2})
		if errors.Is(err, ErrShuttingDown) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	select {
	case out := <-got:
		if out.err != nil || len(out.events) == 0 {
			t.Fatalf("stream: events=%d err=%v", len(out.events), out.err)
		}
		last := out.events[len(out.events)-1]
		if last.State != StateCancelled || !strings.Contains(last.Error, "shutting down") {
			t.Fatalf("terminal event = %+v, want cancelled with reason", last)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("event stream of cancelled run never terminated")
	}
	_ = first
}

// TestShutdownTimeout: a wedged in-flight run makes Shutdown return the
// context error instead of hanging.
func TestShutdownTimeout(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	opts := Options{
		Workers: 1,
		Store:   testStore(t),
		Scales:  map[string]exper.Config{"quick": tinyConfig()},
		execGate: func(*Run) {
			entered <- struct{}{}
			<-gate
		},
	}
	mgr := NewManager(opts)
	defer close(gate)
	if _, _, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := mgr.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
}

// TestShutdownParksQueuedRunsWithJournal pins the journaled shutdown
// contract: the in-flight run drains, but queued runs are parked — left in
// the queued state, their submit records durable — instead of cancelled,
// and a subsequent manager on the same journal re-admits and completes
// them. Subscribers of a parked run see their stream end without a terminal
// event (the reconnect-and-resume signal), not a bogus cancellation.
func TestShutdownParksQueuedRunsWithJournal(t *testing.T) {
	dir := t.TempDir()
	store := testStore(t)
	scales := map[string]exper.Config{"quick": tinyConfig()}
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	mgr := NewManager(Options{
		Workers: 1, Store: store, Scales: scales,
		Journal: openTestJournal(t, dir),
		execGate: func(*Run) {
			entered <- struct{}{}
			<-gate
		},
	})

	submit := func(seed uint64) *Run {
		t.Helper()
		run, created, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: seed})
		if err != nil || !created {
			t.Fatalf("submit seed %d: created=%v err=%v", seed, created, err)
		}
		return run
	}
	inflight := submit(1)
	<-entered
	queuedA, queuedB := submit(2), submit(3)

	// A client watching a queued run must be released at park time.
	replay, ch, cancelSub := queuedA.Subscribe()
	defer cancelSub()
	if len(replay) != 1 || replay[0].State != StateQueued {
		t.Fatalf("queued run replay = %+v", replay)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- mgr.Shutdown(ctx)
	}()
	for {
		_, _, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 3})
		if errors.Is(err, ErrShuttingDown) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if st := inflight.State(); st != StateDone {
		t.Errorf("in-flight run state = %q, want done (drained)", st)
	}
	for _, q := range []*Run{queuedA, queuedB} {
		if st := q.State(); st != StateQueued {
			t.Errorf("parked run %s state = %q, want queued (not cancelled)", q.ID, st)
		}
	}
	select {
	case e, ok := <-ch:
		if ok {
			t.Errorf("parked run emitted event %+v; its channel should just close", e)
		}
	case <-time.After(5 * time.Second):
		t.Error("parked run's subscriber channel never closed")
	}
	if c := mgr.Counters(); c.RunsParked != 2 || c.RunsCancelled != 0 {
		t.Errorf("counters = parked %d / cancelled %d, want 2 / 0", c.RunsParked, c.RunsCancelled)
	}

	// Next boot: the parked runs are recovered and complete.
	jr2 := openTestJournal(t, dir)
	mgr2 := NewManager(Options{Workers: 2, Store: store, Scales: scales, Journal: jr2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr2.Shutdown(ctx)
	})
	if c := mgr2.Counters(); c.RunsRecovered != 2 {
		t.Fatalf("RunsRecovered = %d, want 2", c.RunsRecovered)
	}
	for _, id := range []string{queuedA.ID, queuedB.ID} {
		run, ok := mgr2.Registry().Get(id)
		if !ok {
			t.Fatalf("recovered manager is missing parked run %s", id)
		}
		waitState(t, run, StateDone)
	}
	// The terminal run recovered too — served from the snapshot.
	if run, ok := mgr2.Registry().Get(inflight.ID); !ok || run.State() != StateDone {
		t.Errorf("drained run %s not recovered as done", inflight.ID)
	}
}

// TestShutdownWithoutJournalStillCancels pins that the pre-journal shutdown
// behavior is preserved when no journal is configured: parked state would be
// a lie (nothing re-admits the runs), so they are cancelled visibly.
func TestShutdownWithoutJournalStillCancels(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	mgr := NewManager(Options{
		Workers: 1, Store: testStore(t),
		Scales: map[string]exper.Config{"quick": tinyConfig()},
		execGate: func(*Run) {
			entered <- struct{}{}
			<-gate
		},
	})
	if _, _, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-entered
	queued, _, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			_, _, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 2})
			if errors.Is(err, ErrShuttingDown) {
				close(gate)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StateCancelled {
		t.Errorf("queued run state = %q, want cancelled without a journal", st)
	}
}

func TestQueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	opts := Options{
		Workers:    1,
		QueueDepth: 1,
		Store:      testStore(t),
		Scales:     map[string]exper.Config{"quick": tinyConfig()},
		execGate: func(*Run) {
			entered <- struct{}{}
			<-gate
		},
	}
	mgr := NewManager(opts)
	defer func() {
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	}()

	if _, _, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-entered // worker busy; queue empty
	if _, _, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 2}); err != nil {
		t.Fatal(err) // fills the queue
	}
	_, _, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 3})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	// The rejected run must not linger in the registry (a retry after the
	// queue drains should be creatable).
	if n := mgr.Registry().Len(); n != 2 {
		t.Errorf("registry holds %d runs after rejection, want 2", n)
	}
}
