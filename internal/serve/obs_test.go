package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/dist"
	"noisyeval/internal/exper"
	"noisyeval/internal/obs"
)

// getTrace fetches GET /v1/runs/{id}/trace and decodes the timeline.
func (ts *testServer) getTrace(t *testing.T, id string) (int, obs.TraceView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tv obs.TraceView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, tv
}

// waitForSpan polls the trace endpoint until the named span appears: the
// terminal event is published a hair before the response.encode span lands,
// so tests that race the finish must wait, not assert once.
func (ts *testServer) waitForSpan(t *testing.T, id, name string) obs.TraceView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, tv := ts.getTrace(t, id)
		if code == http.StatusOK {
			for _, sp := range tv.Spans {
				if sp.Name == name {
					return tv
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("span %q never appeared in trace of %s (got %+v)", name, id, tv.Spans)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func spansNamed(tv obs.TraceView, name string) []obs.SpanView {
	var out []obs.SpanView
	for _, sp := range tv.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})
	_, st := ts.submit(t, `{"dataset":"cifar10","method":"rs","trials":2,"scale":"quick"}`)
	ts.streamEvents(t, st.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	// Exact values where this manager's traffic determines them.
	for _, want := range []string{
		"# TYPE runs_admitted_total counter",
		"runs_admitted_total 1",
		"runs_completed_total 1",
		"run_exec_seconds_count 1",
		"run_queue_wait_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Presence only for series shared beyond this manager: the core oracle
	// histograms are process-global, so their values depend on test order.
	for _, series := range []string{
		"# TYPE oracle_trial_seconds histogram",
		"oracle_trial_seconds_bucket",
		"oracle_trials_total",
		"# TYPE run_exec_seconds histogram",
		"bank_cache_hits_total",
		"http_requests_total",
		"runs_queued 0",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing series %q", series)
		}
	}
}

func TestRunTraceEndpoint(t *testing.T) {
	dir := t.TempDir()
	jr, err := OpenRunJournal(JournalOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Options{Journal: jr})
	_, st := ts.submit(t, `{"dataset":"cifar10","method":"rs","trials":2,"scale":"quick"}`)
	ts.streamEvents(t, st.ID)

	tv := ts.waitForSpan(t, st.ID, "response.encode")
	if tv.TraceID == "" {
		t.Fatal("trace has no trace_id")
	}
	for _, name := range []string{"journal.append", "queue.wait", "oracle.trials", "response.encode"} {
		if len(spansNamed(tv, name)) != 1 {
			t.Errorf("want exactly one %q span, got %d (spans %+v)", name, len(spansNamed(tv, name)), tv.Spans)
		}
	}
	ot := spansNamed(tv, "oracle.trials")[0]
	if ot.Attrs["dataset"] != "cifar10" || ot.Attrs["method"] != "RS" || ot.Attrs["trials"] != "2" {
		t.Errorf("oracle.trials attrs = %v", ot.Attrs)
	}
	// The bank was either looked up or built — one of the two spans exists.
	if len(spansNamed(tv, "bank.build"))+len(spansNamed(tv, "bank.lookup")) == 0 {
		t.Errorf("no bank.build or bank.lookup span: %+v", tv.Spans)
	}

	if code, _ := ts.getTrace(t, "run-999999"); code != http.StatusNotFound {
		t.Errorf("trace of unknown run = %d, want 404", code)
	}
}

// TestClusterTraceEndToEnd is the acceptance path: a cold run through a
// 2-worker cluster yields one trace holding the coordinator's fleet-build
// span and the workers' shard.train spans, all under the run's trace ID.
func TestClusterTraceEndToEnd(t *testing.T) {
	store, err := core.NewBankStore(t.TempDir()) // cold by construction
	if err != nil {
		t.Fatal(err)
	}
	coord := dist.NewCoordinator(dist.CoordinatorOptions{
		Store:        store,
		ShardConfigs: 2, // tinyConfig banks have 6 configs → 3 shard jobs
		LeaseTTL:     time.Minute,
		SelfBuild:    0, // all shards must come from the external workers
	})
	defer coord.Close()

	mgr := NewManager(Options{
		Store:   store,
		Builder: &dist.Builder{Store: store, Coord: coord},
		Scales:  map[string]exper.Config{"quick": tinyConfig()},
	})
	srv := NewServer(mgr)
	coord.Register(srv.Mux())
	hts := httptest.NewServer(srv)
	ts := &testServer{Server: hts, mgr: mgr}
	t.Cleanup(func() {
		hts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, name := range []string{"w1", "w2"} {
		w := dist.NewWorker(dist.WorkerOptions{
			Coordinator: hts.URL, Name: name, Poll: 5 * time.Millisecond,
		})
		go w.Run(ctx)
	}

	_, st := ts.submit(t, `{"dataset":"cifar10","method":"rs","trials":2,"scale":"quick"}`)
	ts.streamEvents(t, st.ID)
	tv := ts.waitForSpan(t, st.ID, "response.encode")

	if tv.TraceID == "" {
		t.Fatal("cluster trace has no trace_id")
	}
	builds := spansNamed(tv, "bank.build")
	if len(builds) != 1 || builds[0].Attrs["source"] != "fleet" {
		t.Fatalf("want one bank.build span with source=fleet, got %+v", builds)
	}
	shards := spansNamed(tv, "shard.train")
	if len(shards) != 3 {
		t.Fatalf("want 3 shard.train spans (6 configs / 2 per shard), got %d: %+v", len(shards), shards)
	}
	for _, sp := range shards {
		if w := sp.Attrs["worker"]; w != "w1" && w != "w2" {
			t.Errorf("shard.train from unexpected worker %q (self-build is off)", w)
		}
		if sp.Attrs["range"] == "" {
			t.Errorf("shard.train span missing range attr: %v", sp.Attrs)
		}
	}
}
