package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// SessionRegistry is the in-memory session store. Unlike runs — which are
// deduplicated by content key because identical submissions compute the same
// answer — sessions are stateful conversations, so every open creates a
// fresh one and the key is reported only for provenance. Sessions idle past
// ttl (no ask/tell/GET) are reaped: their driver goroutine is closed and the
// entry dropped, so abandoned external optimizers cannot pin memory or
// goroutines. The clock is injectable for deterministic reaping tests.
type SessionRegistry struct {
	ttl time.Duration
	max int
	now func() time.Time

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
	reaped   int64
	opened   int64
}

// NewSessionRegistry creates a registry reaping sessions idle for ttl
// (non-positive = never) holding at most max concurrently (non-positive =
// DefaultMaxSessions).
func NewSessionRegistry(ttl time.Duration, max int) *SessionRegistry {
	if max <= 0 {
		max = DefaultMaxSessions
	}
	return &SessionRegistry{
		ttl:      ttl,
		max:      max,
		now:      time.Now,
		sessions: map[string]*Session{},
	}
}

// Add registers a session, assigning its ID. A full table sweeps first, then
// rejects with too_many_sessions.
func (g *SessionRegistry) Add(s *Session) error {
	g.mu.Lock()
	if len(g.sessions) >= g.max {
		expired := g.collectExpiredLocked()
		g.mu.Unlock()
		g.closeAll(expired)
		g.mu.Lock()
	}
	defer g.mu.Unlock()
	if len(g.sessions) >= g.max {
		return codef(CodeTooManySessions, "session table full (%d); close or let idle sessions expire", g.max)
	}
	g.nextID++
	g.opened++
	s.ID = fmt.Sprintf("sess-%06d", g.nextID)
	g.sessions[s.ID] = s
	return nil
}

// Get returns the session with the given ID, touching its idle clock.
func (g *SessionRegistry) Get(id string) (*Session, bool) {
	g.mu.Lock()
	s, ok := g.sessions[id]
	g.mu.Unlock()
	if !ok {
		return nil, false
	}
	if g.ttl > 0 && g.now().Sub(s.LastUsed()) > g.ttl {
		g.Remove(id)
		s.Close()
		return nil, false
	}
	s.touch(g.now())
	return s, true
}

// Remove drops a session entry without closing it (callers close outside the
// registry lock).
func (g *SessionRegistry) Remove(id string) (*Session, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.sessions[id]
	if ok {
		delete(g.sessions, id)
	}
	return s, ok
}

// List returns retained sessions, oldest ID first.
func (g *SessionRegistry) List() []*Session {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Session, 0, len(g.sessions))
	for _, s := range g.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of retained sessions.
func (g *SessionRegistry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessions)
}

// Reaped returns how many sessions idle-reaping has closed.
func (g *SessionRegistry) Reaped() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reaped
}

// Opened returns how many sessions were ever opened.
func (g *SessionRegistry) Opened() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.opened
}

// Sweep reaps idle sessions. Expired entries are collected under the lock
// but closed outside it — Close waits for the driver goroutine, which must
// never happen while holding the registry lock.
func (g *SessionRegistry) Sweep() {
	g.mu.Lock()
	expired := g.collectExpiredLocked()
	g.mu.Unlock()
	g.closeAll(expired)
}

func (g *SessionRegistry) collectExpiredLocked() []*Session {
	if g.ttl <= 0 {
		return nil
	}
	cutoff := g.now().Add(-g.ttl)
	var expired []*Session
	for id, s := range g.sessions {
		if s.LastUsed().Before(cutoff) {
			delete(g.sessions, id)
			expired = append(expired, s)
			g.reaped++
		}
	}
	return expired
}

func (g *SessionRegistry) closeAll(sessions []*Session) {
	for _, s := range sessions {
		s.Close()
	}
}

// CloseAll drops and closes every session (daemon shutdown).
func (g *SessionRegistry) CloseAll() {
	g.mu.Lock()
	all := make([]*Session, 0, len(g.sessions))
	for id, s := range g.sessions {
		delete(g.sessions, id)
		all = append(all, s)
	}
	g.mu.Unlock()
	g.closeAll(all)
}
