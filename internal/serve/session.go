package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/exper"
	"noisyeval/internal/fl"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// Session defaults and limits.
const (
	// DefaultSessionIdleTTL reaps sessions untouched for this long.
	DefaultSessionIdleTTL = 10 * time.Minute
	// DefaultMaxSessions bounds concurrently retained sessions.
	DefaultMaxSessions = 64
	// ExternalMethod is the method name selecting an externally driven
	// session: no built-in tuner runs; the client proposes configurations
	// itself through tell/evaluate.
	ExternalMethod = "external"
)

// SessionState is a session's lifecycle state:
//
//	active ──▶ done     (the driven method finished its budget)
//	   │ ────▶ failed   (the driven method panicked)
//	   └─────▶ closed   (DELETE, idle reaping, or daemon shutdown)
//
// done, failed, and closed are terminal; terminal sessions answer GET until
// idle-reaped but reject ask/tell with session_terminal.
type SessionState string

const (
	SessionActive SessionState = "active"
	SessionDone   SessionState = "done"
	SessionFailed SessionState = "failed"
	SessionClosed SessionState = "closed"
)

// Terminal reports whether the state admits no further ask/tell.
func (s SessionState) Terminal() bool { return s != SessionActive }

// SessionRequest is the body of POST /v1/sessions: one tuner session bound
// to a (bank, noise model, seed, budget) tuple.
type SessionRequest struct {
	// Dataset is one of exper.DatasetNames.
	Dataset string `json:"dataset"`
	// Method is a tuning-method name from hpo.Methods() whose suggestions
	// the ask endpoint serves, or "external" (also the default when empty):
	// no built-in tuner, the caller proposes configurations via tell.
	Method string `json:"method,omitempty"`
	// Scale selects the suite configuration: "quick" (default) or "full".
	Scale string `json:"scale,omitempty"`
	// Seed drives oracle subsampling and the method's RNG stream
	// (default 1). A session with seed S and trial T evaluates exactly like
	// bootstrap trial T of a /v1/runs submission with seed S.
	Seed uint64 `json:"seed,omitempty"`
	// Trial selects which bootstrap trial's evaluation stream the session
	// replays (default 0, the trial whose recommendation /v1/runs reports
	// as "best").
	Trial int `json:"trial,omitempty"`
	// Noise is the evaluation-noise setting (zero = noiseless reference).
	Noise NoiseRequest `json:"noise,omitempty"`
}

// External reports whether the (normalized) request names no built-in tuner.
func (r SessionRequest) External() bool { return r.Method == ExternalMethod }

// Normalize mirrors RunRequest.Normalize for the session form.
func (r *SessionRequest) Normalize() {
	r.Dataset = strings.ToLower(strings.TrimSpace(r.Dataset))
	r.Method = strings.ToLower(strings.TrimSpace(r.Method))
	if r.Method == "" {
		r.Method = ExternalMethod
	}
	if canon, err := hpo.CanonicalMethodName(r.Method); err == nil {
		r.Method = canon
	}
	if r.Scale == "" {
		r.Scale = DefaultScale
	}
	r.Scale = strings.ToLower(strings.TrimSpace(r.Scale))
	if r.Seed == 0 {
		r.Seed = 1
	}
}

// Validate reports the first problem with a normalized request as a coded
// apiError.
func (r SessionRequest) Validate(scales []string) error {
	if !exper.KnownDataset(r.Dataset) {
		return codef(CodeUnknownDataset, "unknown dataset %q (valid: %s)", r.Dataset, strings.Join(exper.DatasetNames, ", "))
	}
	if !r.External() {
		if _, err := hpo.MethodByName(r.Method); err != nil {
			return codef(CodeUnknownMethod, "unknown method %q (valid: %s, or %q)", r.Method, strings.Join(hpo.Methods(), ", "), ExternalMethod)
		}
	}
	if !scaleKnown(r.Scale, scales) {
		return codef(CodeUnknownScale, "unknown scale %q (valid: %s)", r.Scale, strings.Join(scales, ", "))
	}
	if r.Trial < 0 || r.Trial >= MaxTrials {
		return codef(CodeInvalidTrials, "trial %d outside [0, %d)", r.Trial, MaxTrials)
	}
	return r.Noise.validate()
}

// SessionTrial is one completed evaluation in a session's history — the
// session-side analogue of hpo.Observation, addressed by pool index.
type SessionTrial struct {
	// Index is the position in the session's trial log.
	Index int `json:"index"`
	// Source is "ask" for answered method suggestions, "tell" for
	// caller-proposed evaluations.
	Source string `json:"source"`
	// AskID echoes the answered ask for Source == "ask".
	AskID *int `json:"ask_id,omitempty"`
	// ConfigIndex is the evaluated config's position in the bank pool.
	ConfigIndex int `json:"config_index"`
	// Config is the evaluated configuration.
	Config fl.HParams `json:"config"`
	// Rounds is the checkpoint fidelity actually evaluated.
	Rounds int `json:"rounds"`
	// Observed is the (pre-DP) noisy error the oracle returned — or, for an
	// ask answered with a caller-supplied value, that value.
	Observed float64 `json:"observed"`
	// TrueErr is the noise-free full validation error (reporting only).
	TrueErr float64 `json:"true_err"`
	// EvalID names the evaluation cohort used.
	EvalID string `json:"eval_id"`
}

// betterTrial mirrors hpo's recommendation order: higher fidelity first,
// then lower observed error.
func betterTrial(a, b SessionTrial) bool {
	if a.Rounds != b.Rounds {
		return a.Rounds > b.Rounds
	}
	return a.Observed < b.Observed
}

// AskItem is one suggested evaluation on the wire.
type AskItem struct {
	ID          int        `json:"id"`
	ConfigIndex int        `json:"config_index"`
	Config      fl.HParams `json:"config"`
	Rounds      int        `json:"rounds"`
	EvalID      string     `json:"eval_id"`
}

// AskResponse is the body of POST /v1/sessions/{id}/ask.
type AskResponse struct {
	// Asks holds the pending suggestion (empty when the method is done).
	// Asks are sequential: one pending at a time, re-asked idempotently.
	Asks  []AskItem    `json:"asks"`
	Done  bool         `json:"done"`
	State SessionState `json:"state"`
}

// TellAnswer answers one pending ask.
type TellAnswer struct {
	AskID int `json:"ask_id"`
	// Observed, when set, is the caller's own measurement fed back verbatim.
	// When omitted the server evaluates the pending ask's configuration on
	// the session's bank oracle (the common loop for parity with /v1/runs).
	Observed *float64 `json:"observed,omitempty"`
}

// TellEval is one caller-proposed evaluation: by pool index, or by parameter
// vector snapped to the bank's config pool (hpo.NearestConfig).
type TellEval struct {
	ConfigIndex *int        `json:"config_index,omitempty"`
	Config      *fl.HParams `json:"config,omitempty"`
	// Rounds is the requested fidelity (default: the bank's max; snapped
	// down to a recorded checkpoint).
	Rounds int `json:"rounds,omitempty"`
	// EvalID names the evaluation cohort (default "tell-<n>"; reuse an ID to
	// share a cohort across evaluations, as SHA rungs do).
	EvalID string `json:"eval_id,omitempty"`
}

// TellRequest is the body of POST /v1/sessions/{id}/tell.
type TellRequest struct {
	Answers  []TellAnswer `json:"answers,omitempty"`
	Evaluate []TellEval   `json:"evaluate,omitempty"`
}

// TellResponse reports what the tell accomplished.
type TellResponse struct {
	// Results holds one entry per evaluate item (answers echo no result:
	// their evaluations appear in the session trial log).
	Results []SessionTrial `json:"results"`
	// Done reports whether the driven method finished during this tell.
	Done  bool          `json:"done"`
	State SessionState  `json:"state"`
	Best  *SessionTrial `json:"best,omitempty"`
	// SpentRounds is the cumulative training-round cost of evaluate items
	// (incremental per config: re-reading a checkpoint already paid for is
	// free, matching the bank's checkpoint-reuse accounting).
	SpentRounds int `json:"spent_rounds"`
}

// SessionStatus is the wire form of GET /v1/sessions/{id}.
type SessionStatus struct {
	ID        string         `json:"id"`
	Key       string         `json:"key"`
	State     SessionState   `json:"state"`
	Request   SessionRequest `json:"request"`
	CreatedAt string         `json:"created_at"`
	// External reports whether the session is externally driven (no ask).
	External bool `json:"external"`
	// Asked / Told count protocol progress; Evals counts evaluate items.
	Asked int `json:"asked"`
	Told  int `json:"told"`
	Evals int `json:"evals"`
	// SpentRounds / BudgetRounds track the evaluate-path round budget.
	SpentRounds  int `json:"spent_rounds"`
	BudgetRounds int `json:"budget_rounds"`
	// Bank geometry an external tuner needs to drive the oracle.
	BankKey     string `json:"bank_key"`
	PoolSize    int    `json:"pool_size"`
	MaxRounds   int    `json:"max_rounds"`
	Checkpoints []int  `json:"checkpoints"`
	// Trials is the session's evaluation log, oldest first.
	Trials []SessionTrial `json:"trials"`
	// Best is the best-so-far: while active, the lowest-observed
	// highest-fidelity trial; once done, the driven method's own final
	// recommendation (identical to the /v1/runs best for the same inputs).
	Best  *SessionTrial `json:"best,omitempty"`
	Error string        `json:"error,omitempty"`
}

// Session is one stateful ask/tell tuner bound to a warm bank oracle. All
// oracle evaluations go through mu (the WithTrial scratch is single-owner);
// the driven method runs on the driver's goroutine and touches only
// TrueError/Pool/MaxRounds, which are scratch-free and safe concurrently.
type Session struct {
	ID  string
	Key string
	Req SessionRequest

	oracle   *core.BankOracle   // WithTrial(Req.Trial) copy
	driver   *hpo.AskTellDriver // nil for external sessions
	settings hpo.Settings
	bankKey  string
	created  time.Time

	// lastUsed is unix nanoseconds of the last API touch, atomically
	// readable so the reaper never contends with a blocked handler.
	lastUsed atomic.Int64

	mu      sync.Mutex
	state   SessionState
	trials  []SessionTrial
	best    *SessionTrial
	asked   int
	told    int
	evals   int
	spent   int         // evaluate-path rounds charged
	trained map[int]int // per-config high-water checkpoint already paid for
	errMsg  string
}

func newSession(key string, req SessionRequest, oracle *core.BankOracle,
	driver *hpo.AskTellDriver, settings hpo.Settings, bankKey string, now time.Time) *Session {

	s := &Session{
		Key: key, Req: req,
		oracle: oracle, driver: driver, settings: settings,
		bankKey: bankKey, created: now,
		state:   SessionActive,
		trained: map[int]int{},
	}
	s.lastUsed.Store(now.UnixNano())
	return s
}

// touch records API activity for idle reaping.
func (s *Session) touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

// LastUsed returns the last API touch.
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

// Ask returns the driven method's next suggestion. It blocks until the
// method posts one (methods compute between asks), finishes, or ctx expires.
func (s *Session) Ask(ctx context.Context) (AskResponse, error) {
	s.mu.Lock()
	if s.driver == nil {
		s.mu.Unlock()
		return AskResponse{}, codef(CodeExternalSession, "session %s is externally driven: it has no method to ask; propose configurations via tell", s.ID)
	}
	if s.state.Terminal() {
		resp := AskResponse{Asks: []AskItem{}, Done: true, State: s.state}
		s.mu.Unlock()
		if s.state == SessionDone {
			return resp, nil
		}
		return AskResponse{}, codef(CodeSessionTerminal, "session %s is %s", s.ID, s.state)
	}
	s.asked++
	s.mu.Unlock()

	// Block outside the lock: the method may need many TrueError reads
	// before its next Evaluate, and a concurrent tell must stay servable.
	req, ok, err := s.driver.Ask(ctx)
	if err != nil {
		if err == hpo.ErrDriverClosed {
			return AskResponse{}, codef(CodeSessionTerminal, "session %s is closed", s.ID)
		}
		return AskResponse{}, err
	}
	if !ok {
		s.finalize()
		s.mu.Lock()
		defer s.mu.Unlock()
		return AskResponse{Asks: []AskItem{}, Done: true, State: s.state}, nil
	}
	return AskResponse{
		Asks: []AskItem{{
			ID: req.ID, ConfigIndex: req.PoolIndex, Config: req.Config,
			Rounds: req.Rounds, EvalID: req.EvalID,
		}},
		Done: false, State: SessionActive,
	}, nil
}

// Tell answers pending asks and/or evaluates caller-proposed configurations.
func (s *Session) Tell(ctx context.Context, req TellRequest) (TellResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		return TellResponse{}, codef(CodeSessionTerminal, "session %s is %s", s.ID, s.state)
	}
	if len(req.Answers) > 0 && s.driver == nil {
		return TellResponse{}, codef(CodeExternalSession, "session %s is externally driven: there are no asks to answer", s.ID)
	}

	resp := TellResponse{Results: []SessionTrial{}}
	for _, a := range req.Answers {
		pending, ok := s.driver.Pending()
		if !ok {
			return TellResponse{}, codef(CodeNoPendingAsk, "tell %d: no pending ask (call ask first)", a.AskID)
		}
		if pending.ID != a.AskID {
			return TellResponse{}, codef(CodeAskMismatch, "tell %d: pending ask is %d", a.AskID, pending.ID)
		}
		trial := SessionTrial{
			Source: "ask", ConfigIndex: pending.PoolIndex, Config: pending.Config,
			Rounds: pending.Rounds, EvalID: pending.EvalID,
		}
		id := a.AskID
		trial.AskID = &id
		if a.Observed != nil {
			trial.Observed = *a.Observed
			trial.TrueErr = s.oracle.TrueError(pending.Config, pending.Rounds)
		} else if pending.PoolIndex >= 0 {
			ev, err := s.oracle.EvaluateIndex(pending.PoolIndex, pending.Rounds, pending.EvalID)
			if err != nil {
				return TellResponse{}, codef(CodeInternal, "evaluate ask %d: %v", a.AskID, err)
			}
			trial.Observed, trial.TrueErr, trial.Rounds = ev.Observed, ev.True, ev.Rounds
		} else {
			trial.Observed = s.oracle.Evaluate(pending.Config, pending.Rounds, pending.EvalID)
			trial.TrueErr = s.oracle.TrueError(pending.Config, pending.Rounds)
		}
		if err := s.driver.Tell(a.AskID, trial.Observed); err != nil {
			if err == hpo.ErrDriverClosed {
				return TellResponse{}, codef(CodeSessionTerminal, "session %s is closed", s.ID)
			}
			return TellResponse{}, codef(CodeInternal, "tell %d: %v", a.AskID, err)
		}
		s.told++
		s.recordLocked(trial)
	}

	for _, e := range req.Evaluate {
		trial, err := s.evaluateLocked(e)
		if err != nil {
			return TellResponse{}, err
		}
		resp.Results = append(resp.Results, trial)
	}

	// Let the method absorb the answers so the response reports an accurate
	// done/state. The driver parks the next suggestion for the next ask.
	if s.driver != nil && len(req.Answers) > 0 {
		s.mu.Unlock()
		_, ok, err := s.driver.Ask(ctx)
		if !ok && err == nil {
			s.finalize()
		}
		s.mu.Lock()
	}

	resp.State = s.state
	resp.Done = s.state == SessionDone
	resp.Best = s.bestLocked()
	resp.SpentRounds = s.spent
	if s.state == SessionFailed {
		return resp, codef(CodeInternal, "session %s failed: %s", s.ID, s.errMsg)
	}
	return resp, nil
}

// evaluateLocked serves one caller-proposed evaluation: resolve the config
// (by index, or by vector snapped to the pool), charge the incremental
// training cost against the budget, and read the oracle.
func (s *Session) evaluateLocked(e TellEval) (SessionTrial, error) {
	pool := s.oracle.Pool()
	var ci int
	switch {
	case e.ConfigIndex != nil && e.Config != nil:
		return SessionTrial{}, codef(CodeBadRequest, "evaluate: config_index and config are mutually exclusive")
	case e.ConfigIndex != nil:
		ci = *e.ConfigIndex
		if ci < 0 || ci >= len(pool) {
			return SessionTrial{}, codef(CodeBadRequest, "evaluate: config_index %d outside pool [0, %d)", ci, len(pool))
		}
	case e.Config != nil:
		ci = hpo.NearestConfig(pool, *e.Config, hpo.DefaultSpace())
	default:
		return SessionTrial{}, codef(CodeBadRequest, "evaluate: one of config_index or config is required")
	}
	rounds := e.Rounds
	if rounds == 0 {
		rounds = s.oracle.MaxRounds()
	}
	if rounds < 1 || rounds > s.oracle.MaxRounds() {
		return SessionTrial{}, codef(CodeBadRequest, "evaluate: rounds %d outside [1, %d]", rounds, s.oracle.MaxRounds())
	}
	evalID := e.EvalID
	if evalID == "" {
		evalID = fmt.Sprintf("tell-%d", s.evals)
	}

	// Incremental budget: advancing config ci to a checkpoint charges only
	// the rounds past its previous high-water mark, mirroring the
	// checkpoint-reuse accounting of SHA and the bank build itself.
	ev, err := s.oracle.EvaluateIndex(ci, rounds, evalID)
	if err != nil {
		return SessionTrial{}, codef(CodeBadRequest, "evaluate: %v", err)
	}
	cost := ev.Rounds - s.trained[ci]
	if cost < 0 {
		cost = 0
	}
	if s.spent+cost > s.settings.Budget.TotalRounds {
		return SessionTrial{}, codef(CodeBudgetExhausted,
			"evaluate: %d rounds would exceed the session budget (%d spent of %d)",
			cost, s.spent, s.settings.Budget.TotalRounds)
	}
	s.spent += cost
	if ev.Rounds > s.trained[ci] {
		s.trained[ci] = ev.Rounds
	}
	s.evals++

	trial := SessionTrial{
		Source: "tell", ConfigIndex: ci, Config: pool[ci],
		Rounds: ev.Rounds, Observed: ev.Observed, TrueErr: ev.True, EvalID: evalID,
	}
	s.recordLocked(trial)
	return trial, nil
}

// recordLocked appends to the trial log and updates the running best.
func (s *Session) recordLocked(t SessionTrial) {
	t.Index = len(s.trials)
	s.trials = append(s.trials, t)
	if s.best == nil || betterTrial(t, *s.best) {
		cp := t
		s.best = &cp
	}
}

// finalize collects the finished driver's history: state, error, and the
// method's own final recommendation (replacing the running best, so a
// completed session reports exactly what /v1/runs would).
func (s *Session) finalize() {
	if s.driver == nil || !s.driver.Done() {
		return
	}
	hist, err := s.driver.History()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		return
	}
	if err != nil || hist == nil {
		s.state = SessionFailed
		if err != nil {
			s.errMsg = err.Error()
		} else {
			s.errMsg = "method returned no history"
		}
		return
	}
	s.state = SessionDone
	if rec, ok := hist.Recommend(); ok {
		best := SessionTrial{
			Index: -1, Source: "ask", Config: rec.Config, ConfigIndex: -1,
			Rounds: rec.Rounds, Observed: rec.Observed, TrueErr: rec.True,
		}
		if pool := s.oracle.Pool(); len(pool) > 0 {
			for i, c := range pool {
				if c == rec.Config {
					best.ConfigIndex = i
					break
				}
			}
		}
		s.best = &best
	}
}

// bestLocked returns a copy of the current best.
func (s *Session) bestLocked() *SessionTrial {
	if s.best == nil {
		return nil
	}
	cp := *s.best
	return &cp
}

// Close terminates the session (DELETE, idle reaping, shutdown). The driver
// closes outside the session lock: a handler blocked in Ask holds no lock
// but only unblocks once the driver closes.
func (s *Session) Close() {
	if s.driver != nil {
		s.driver.Close()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.state.Terminal() {
		s.state = SessionClosed
	}
}

// Status snapshots the session for GET. finalize first, so a session whose
// method finished since the last ask reports done.
func (s *Session) Status() SessionStatus {
	s.finalize()
	s.mu.Lock()
	defer s.mu.Unlock()
	bank := s.oracle.Bank()
	st := SessionStatus{
		ID: s.ID, Key: s.Key, State: s.state, Request: s.Req,
		CreatedAt:    s.created.UTC().Format(time.RFC3339Nano),
		External:     s.driver == nil,
		Asked:        s.asked,
		Told:         s.told,
		Evals:        s.evals,
		SpentRounds:  s.spent,
		BudgetRounds: s.settings.Budget.TotalRounds,
		BankKey:      s.bankKey,
		PoolSize:     len(bank.Configs),
		MaxRounds:    bank.MaxRounds(),
		Checkpoints:  append([]int(nil), bank.Rounds...),
		Trials:       append([]SessionTrial(nil), s.trials...),
		Best:         s.bestLocked(),
		Error:        s.errMsg,
	}
	return st
}

// scaleKnown reports membership of scale in scales.
func scaleKnown(scale string, scales []string) bool {
	for _, s := range scales {
		if s == scale {
			return true
		}
	}
	return false
}

// sessionMethodKey renders the session's driving method for the session key
// (same shape as exper's run-key method component).
func sessionMethodKey(m hpo.Method) string {
	return fmt.Sprintf("%s %#v", m.Name(), m)
}

// OpenSession validates the request, warms the bank (building it on first
// use, exactly as a run would), and registers a new session. The oracle and
// RNG wiring mirrors exper.RunTune trial-for-trial: a session with
// (seed, trial) evaluates on the same cohorts and draws the same method
// stream as bootstrap trial `trial` of the equivalent /v1/runs submission —
// that equivalence is what the ask/tell parity tests pin.
func (m *Manager) OpenSession(req SessionRequest) (sess *Session, err error) {
	req.Normalize()
	if err := req.Validate(m.ScaleNames()); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	if m.draining() {
		return nil, ErrShuttingDown
	}
	suite, err := m.suiteFor(req.Scale)
	if err != nil {
		return nil, err
	}

	noise := req.Noise.Noise()
	settings := noise.Settings(hpo.Settings{Budget: suite.Cfg.Budget()})

	// Bank construction panics on internal failure; a serving layer needs an
	// error. The suite deduplicates concurrent builds internally.
	defer func() {
		if r := recover(); r != nil {
			sess, err = nil, fmt.Errorf("open session: %v", r)
		}
	}()
	bank := suite.Bank(req.Dataset)
	// Same address a run records (build inputs; fingerprint for installed
	// banks), so session and run provenance line up for one dataset.
	bankKey := suite.BankKeyFor(req.Dataset)

	oracle, err := core.NewBankOracle(bank, noise.HeterogeneityP, noise.Scheme(), req.Seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, codef(CodeInvalidNoise, "%v", err))
	}
	oracle = oracle.WithTrial(req.Trial)

	var driver *hpo.AskTellDriver
	methodDesc := ExternalMethod
	if !req.External() {
		method, err := hpo.MethodByName(req.Method)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadRequest, codef(CodeUnknownMethod, "%v", err))
		}
		methodDesc = sessionMethodKey(method)
		// The "fedtune" label and per-trial split reproduce the exact RNG
		// stream RunTrials hands trial Req.Trial (exper.RunTune).
		g := rng.New(req.Seed).Split("fedtune").Splitf("trial-%d", req.Trial)
		driver = hpo.NewAskTellDriver(method, oracle, hpo.DefaultSpace(), settings, g)
	}

	key := core.RunKey(bankKey, "session "+methodDesc, noise, settings, req.Trial+1, req.Seed)
	sess = newSession(key, req, oracle, driver, settings, bankKey, time.Now())
	if err := m.sessions.Add(sess); err != nil {
		if driver != nil {
			driver.Close()
		}
		return nil, err
	}
	return sess, nil
}
