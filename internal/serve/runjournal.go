// Durable run journal: the serve-layer semantics over the generic WAL in
// internal/serve/journal. Every run lifecycle transition appends one typed,
// CRC-framed record; on boot the manager folds snapshot+WAL back into its
// registry — terminal runs serve their cached results immediately, and
// non-terminal runs re-enter the queue (re-execution is deterministic by
// RunKey, so a recovered run reproduces the exact result and event sequence
// the lost process would have delivered). See DESIGN.md §11.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"noisyeval/internal/exper"
	"noisyeval/internal/serve/journal"
)

// Journal record kinds, one per lifecycle edge worth persisting.
// "submit" admits a run (state queued); "start" marks it running; "terminal"
// closes it. A run with a submit record and no terminal record is, by
// definition, work the daemon still owes its clients.
const (
	jkSubmit   = "submit"
	jkStart    = "start"
	jkTerminal = "terminal"
)

// submitRecord journals one admitted run. The full normalized RunRequest
// rides along so recovery can re-derive the exper.TuneRequest (method
// registry lookup included) through exactly the code path Submit used.
type submitRecord struct {
	ID        string     `json:"id"`
	Key       string     `json:"key"`
	Request   RunRequest `json:"request"`
	CreatedNs int64      `json:"created_ns"`
}

// startRecord journals the queued → running edge.
type startRecord struct {
	ID        string `json:"id"`
	StartedNs int64  `json:"started_ns"`
}

// terminalRecord journals a terminal transition with everything needed to
// reconstruct the run's cached response bytes: result, error, progress, and
// the timestamps that appear in the wire status. Timestamps are UnixNano so
// the RFC3339Nano strings in a recovered body match the original's exactly
// (JSON round-trips float64s losslessly, so the numeric payload matches
// too — recovery is byte-identical, which the replay tests pin).
type terminalRecord struct {
	ID         string            `json:"id"`
	State      State             `json:"state"`
	Error      string            `json:"error,omitempty"`
	Result     *exper.TuneResult `json:"result,omitempty"`
	TrialsDone int               `json:"trials_done"`
	StartedNs  int64             `json:"started_ns,omitempty"`
	FinishedNs int64             `json:"finished_ns"`
}

// RecoveredRun is the fold of one run's journal records: what the registry
// knew about it when the previous process died.
type RecoveredRun struct {
	ID         string
	Key        string
	Request    RunRequest
	Created    time.Time
	Started    time.Time // zero until a start or terminal record said otherwise
	State      State
	Error      string
	Result     *exper.TuneResult
	TrialsDone int
	Finished   time.Time
}

// JournalOptions configures OpenRunJournal.
type JournalOptions struct {
	// Dir is the journal directory (created if missing).
	Dir string
	// MaxBytes is the hard byte budget across snapshot+WAL. Appends past it
	// become 503 backpressure after an emergency compaction fails to make
	// room (0 = journal.DefaultMaxBytes).
	MaxBytes int64
	// CompactWALBytes triggers a background compaction once the WAL exceeds
	// it (0 = MaxBytes/4).
	CompactWALBytes int64
	// NoSync skips fsyncs (tests only).
	NoSync bool
	// Logf receives operational log lines.
	Logf func(format string, args ...any)
}

// RunJournal owns the journal files plus the replayed fold from boot. Its
// mutex orders appends against compaction so a terminal record can never
// slip into the doomed WAL while a compaction snapshot that predates it is
// being published.
type RunJournal struct {
	j          *journal.Journal
	compactWAL int64
	log        func(format string, args ...any)

	mu        sync.Mutex
	recovered []RecoveredRun
	dropped   int64 // malformed or orphaned records skipped at replay
}

// logf forwards to the configured logger (no-op when none).
func (rj *RunJournal) logf(format string, args ...any) {
	if rj.log != nil {
		rj.log(format, args...)
	}
}

// OpenRunJournal opens the journal directory and folds its records. The
// fold tolerates everything short of an unreadable directory: malformed
// JSON, orphaned records, and duplicate terminals are counted and skipped,
// never fatal — a journal exists to survive crashes, so boot must not be
// the fragile step.
func OpenRunJournal(opts JournalOptions) (*RunJournal, error) {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = journal.DefaultMaxBytes
	}
	if opts.CompactWALBytes == 0 {
		opts.CompactWALBytes = opts.MaxBytes / 4
	}
	j, records, err := journal.Open(journal.Options{
		Dir:      opts.Dir,
		MaxBytes: opts.MaxBytes,
		NoSync:   opts.NoSync,
		Logf:     opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	rj := &RunJournal{j: j, compactWAL: opts.CompactWALBytes, log: opts.Logf}
	rj.recovered = rj.fold(records)
	return rj, nil
}

// fold collapses the record sequence into per-run recovered state,
// preserving first-submission order. Rules: the first submit record for an
// ID creates it (later duplicates — a snapshot plus a stale WAL after a
// crash mid-compaction — are ignored); start and terminal records for
// unknown IDs are orphans; the first terminal record wins (terminal states
// admit no further transitions, crash or not).
func (rj *RunJournal) fold(records []journal.Record) []RecoveredRun {
	byID := map[string]*RecoveredRun{}
	var order []string
	for _, rec := range records {
		switch rec.Kind {
		case jkSubmit:
			var sr submitRecord
			if err := json.Unmarshal(rec.Data, &sr); err != nil || sr.ID == "" {
				rj.dropped++
				continue
			}
			if _, ok := byID[sr.ID]; ok {
				continue // duplicate from a crash between snapshot and WAL truncate
			}
			byID[sr.ID] = &RecoveredRun{
				ID: sr.ID, Key: sr.Key, Request: sr.Request,
				Created: time.Unix(0, sr.CreatedNs),
				State:   StateQueued,
			}
			order = append(order, sr.ID)
		case jkStart:
			var sr startRecord
			if err := json.Unmarshal(rec.Data, &sr); err != nil {
				rj.dropped++
				continue
			}
			r, ok := byID[sr.ID]
			if !ok {
				rj.dropped++
				continue
			}
			if r.State.Terminal() {
				continue
			}
			r.State = StateRunning
			r.Started = time.Unix(0, sr.StartedNs)
		case jkTerminal:
			var tr terminalRecord
			if err := json.Unmarshal(rec.Data, &tr); err != nil || !tr.State.Terminal() {
				rj.dropped++
				continue
			}
			r, ok := byID[tr.ID]
			if !ok {
				rj.dropped++
				continue
			}
			if r.State.Terminal() {
				continue
			}
			r.State = tr.State
			r.Error = tr.Error
			r.Result = tr.Result
			r.TrialsDone = tr.TrialsDone
			if tr.StartedNs != 0 {
				r.Started = time.Unix(0, tr.StartedNs)
			}
			r.Finished = time.Unix(0, tr.FinishedNs)
		default:
			rj.dropped++
		}
	}
	out := make([]RecoveredRun, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}

// Recovered returns the boot-time fold (what NewManager re-admits).
func (rj *RunJournal) Recovered() []RecoveredRun {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.recovered
}

// Dropped returns how many records the replay skipped as malformed/orphaned.
func (rj *RunJournal) Dropped() int64 {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.dropped
}

// Stats exposes the underlying journal counters.
func (rj *RunJournal) Stats() journal.Stats { return rj.j.Stats() }

// Bytes returns the journal's current on-disk footprint.
func (rj *RunJournal) Bytes() int64 { return rj.j.Bytes() }

// MaxBytes returns the configured byte budget.
func (rj *RunJournal) MaxBytes() int64 { return rj.j.MaxBytes() }

// append writes one record, and on budget exhaustion compacts against the
// registry and retries once. A second ErrBudget surfaces to the caller (the
// manager maps it to 503 backpressure); other errors are I/O failures.
func (rj *RunJournal) append(reg *Registry, kind string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: encode %s record: %w", kind, err)
	}
	rj.mu.Lock()
	defer rj.mu.Unlock()
	if err := rj.j.Append(kind, data); !errors.Is(err, journal.ErrBudget) {
		return err
	}
	if err := rj.compactLocked(reg); err != nil {
		return err
	}
	return rj.j.Append(kind, data)
}

// recordSubmit journals an admitted run.
func (rj *RunJournal) recordSubmit(reg *Registry, r *Run) error {
	return rj.append(reg, jkSubmit, submitRecord{
		ID: r.ID, Key: r.Key, Request: r.Req,
		CreatedNs: r.CreatedAt().UnixNano(),
	})
}

// recordStart journals the queued → running edge. Best-effort at the call
// site: losing it only costs the recovered run its "running" label, not its
// recoverability.
func (rj *RunJournal) recordStart(reg *Registry, r *Run, started time.Time) error {
	return rj.append(reg, jkStart, startRecord{ID: r.ID, StartedNs: started.UnixNano()})
}

// recordTerminal journals a terminal transition.
func (rj *RunJournal) recordTerminal(reg *Registry, r *Run) error {
	rr := r.recoveryState()
	rec := terminalRecord{
		ID: rr.ID, State: rr.State, Error: rr.Error, Result: rr.Result,
		TrialsDone: rr.TrialsDone, FinishedNs: rr.Finished.UnixNano(),
	}
	if !rr.Started.IsZero() {
		rec.StartedNs = rr.Started.UnixNano()
	}
	return rj.append(reg, jkTerminal, rec)
}

// maybeCompact compacts when the WAL has outgrown its trigger. The manager's
// janitor calls it periodically and execute() calls it after terminal
// appends, so journal growth is bounded by traffic, not uptime.
func (rj *RunJournal) maybeCompact(reg *Registry) error {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	if rj.j.WALBytes() < rj.compactWAL {
		return nil
	}
	return rj.compactLocked(reg)
}

// compactLocked snapshots the registry's current retained state — runs the
// registry has evicted (TTL) simply vanish from the journal, which is what
// reclaims space. Callers hold rj.mu, so no append lands between gathering
// the registry state and publishing the snapshot.
func (rj *RunJournal) compactLocked(reg *Registry) error {
	var records []journal.Record
	add := func(kind string, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		records = append(records, journal.Record{Kind: kind, Data: data})
		return nil
	}
	for _, run := range reg.List() {
		rr := run.recoveryState()
		if err := add(jkSubmit, submitRecord{
			ID: rr.ID, Key: rr.Key, Request: rr.Request, CreatedNs: rr.Created.UnixNano(),
		}); err != nil {
			return err
		}
		switch {
		case rr.State.Terminal():
			rec := terminalRecord{
				ID: rr.ID, State: rr.State, Error: rr.Error, Result: rr.Result,
				TrialsDone: rr.TrialsDone, FinishedNs: rr.Finished.UnixNano(),
			}
			if !rr.Started.IsZero() {
				rec.StartedNs = rr.Started.UnixNano()
			}
			if err := add(jkTerminal, rec); err != nil {
				return err
			}
		case rr.State == StateRunning:
			if err := add(jkStart, startRecord{ID: rr.ID, StartedNs: rr.Started.UnixNano()}); err != nil {
				return err
			}
		}
	}
	return rj.j.Compact(records)
}

// Close syncs and closes the journal files.
func (rj *RunJournal) Close() error { return rj.j.Close() }
