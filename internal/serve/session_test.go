package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// doJSON issues one request and decodes the response into out (when non-nil
// and the status is 2xx) or into an errorEnvelope returned alongside.
func (ts *testServer) doJSON(t *testing.T, method, path, body string, out any) (int, errorEnvelope) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		var env errorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("%s %s: status %d with non-envelope body %q", method, path, resp.StatusCode, raw)
		}
		return resp.StatusCode, env
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode, errorEnvelope{}
}

// driveSession asks and server-evaluates until the method finishes,
// returning the completed status. maxSteps guards against a method that
// never finishes.
func (ts *testServer) driveSession(t *testing.T, id string, maxSteps int) SessionStatus {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		var ask AskResponse
		if code, env := ts.doJSON(t, "POST", "/v1/sessions/"+id+"/ask", "", &ask); code != http.StatusOK {
			t.Fatalf("ask %d: status %d (%s: %s)", i, code, env.Error.Code, env.Error.Message)
		}
		if ask.Done {
			var st SessionStatus
			if code, env := ts.doJSON(t, "GET", "/v1/sessions/"+id, "", &st); code != http.StatusOK {
				t.Fatalf("get: status %d (%s)", code, env.Error.Code)
			}
			return st
		}
		body := fmt.Sprintf(`{"answers":[{"ask_id":%d}]}`, ask.Asks[0].ID)
		var tell TellResponse
		if code, env := ts.doJSON(t, "POST", "/v1/sessions/"+id+"/tell", body, &tell); code != http.StatusOK {
			t.Fatalf("tell %d: status %d (%s: %s)", i, code, env.Error.Code, env.Error.Message)
		}
	}
	t.Fatalf("session %s did not finish in %d steps", id, maxSteps)
	return SessionStatus{}
}

// TestSessionParityWithRun pins the tentpole contract: an external client
// driving a session's ask/tell loop — answering every ask with the server's
// own bank evaluation — lands on exactly the recommendation the server-driven
// /v1/runs path computes for the same (dataset, method, noise, seed, trial).
func TestSessionParityWithRun(t *testing.T) {
	ts := newTestServer(t, Options{})
	for _, method := range []string{"rs", "sha"} {
		t.Run(method, func(t *testing.T) {
			body := fmt.Sprintf(`{"dataset":"cifar10","method":%q,"trials":1,"seed":5,"noise":{"sample_count":2}}`, method)
			_, st := ts.submit(t, body)
			ts.streamEvents(t, st.ID)
			_, raw := ts.getRun(t, st.ID, nil)
			var runSt RunStatus
			if err := json.Unmarshal(raw, &runSt); err != nil {
				t.Fatal(err)
			}
			if runSt.State != StateDone || runSt.Result == nil || runSt.Result.Best == nil {
				t.Fatalf("run did not finish with a best: %+v", runSt)
			}

			var sess SessionStatus
			sbody := fmt.Sprintf(`{"dataset":"cifar10","method":%q,"seed":5,"noise":{"sample_count":2}}`, method)
			if code, env := ts.doJSON(t, "POST", "/v1/sessions", sbody, &sess); code != http.StatusCreated {
				t.Fatalf("open: status %d (%s: %s)", code, env.Error.Code, env.Error.Message)
			}
			final := ts.driveSession(t, sess.ID, 500)
			if final.State != SessionDone {
				t.Fatalf("session state = %s (error %q), want done", final.State, final.Error)
			}
			if final.Best == nil {
				t.Fatal("done session has no best")
			}
			want := runSt.Result.Best
			if final.Best.Config != want.Config || final.Best.Rounds != want.Rounds || final.Best.TrueErr != want.TrueErr {
				t.Errorf("session best = %+v, run best = %+v", *final.Best, *want)
			}
			if final.BankKey != runSt.Result.BankKey {
				t.Errorf("session bank key %q != run bank key %q", final.BankKey, runSt.Result.BankKey)
			}
		})
	}
}

// TestSessionExternalEvaluate pins the external-optimizer path: evaluation by
// pool index and by snapped parameter vector, cohort determinism, incremental
// budget accounting, and budget exhaustion.
func TestSessionExternalEvaluate(t *testing.T) {
	ts := newTestServer(t, Options{})
	var sess SessionStatus
	if code, env := ts.doJSON(t, "POST", "/v1/sessions", `{"dataset":"cifar10","seed":3,"noise":{"sample_count":2}}`, &sess); code != http.StatusCreated {
		t.Fatalf("open: status %d (%s)", code, env.Error.Code)
	}
	if !sess.External || sess.PoolSize == 0 || sess.MaxRounds == 0 {
		t.Fatalf("external session geometry: %+v", sess)
	}

	// Same (index, rounds, eval_id) twice → identical observation, but the
	// second evaluation is budget-free (the checkpoint is already paid for).
	eval := func(body string) TellResponse {
		t.Helper()
		var resp TellResponse
		if code, env := ts.doJSON(t, "POST", "/v1/sessions/"+sess.ID+"/tell", body, &resp); code != http.StatusOK {
			t.Fatalf("tell %s: status %d (%s: %s)", body, code, env.Error.Code, env.Error.Message)
		}
		return resp
	}
	r1 := eval(`{"evaluate":[{"config_index":0,"rounds":9,"eval_id":"c"}]}`)
	r2 := eval(`{"evaluate":[{"config_index":0,"rounds":9,"eval_id":"c"}]}`)
	if r1.Results[0].Observed != r2.Results[0].Observed {
		t.Errorf("same cohort observed %v then %v", r1.Results[0].Observed, r2.Results[0].Observed)
	}
	if r1.SpentRounds != 9 || r2.SpentRounds != 9 {
		t.Errorf("spent = %d then %d, want 9 then 9 (incremental)", r1.SpentRounds, r2.SpentRounds)
	}

	// A parameter vector equal to a pool member snaps to its index.
	cfg, _ := json.Marshal(r1.Results[0].Config)
	rv := eval(fmt.Sprintf(`{"evaluate":[{"config":%s,"rounds":9}]}`, cfg))
	if rv.Results[0].ConfigIndex != 0 {
		t.Errorf("vector snapped to index %d, want 0", rv.Results[0].ConfigIndex)
	}

	// Burn the remaining budget, then expect budget_exhausted.
	budget := sess.BudgetRounds
	for ci := 1; ; ci++ {
		var resp TellResponse
		code, env := ts.doJSON(t, "POST", "/v1/sessions/"+sess.ID+"/tell",
			fmt.Sprintf(`{"evaluate":[{"config_index":%d}]}`, ci%sess.PoolSize), &resp)
		if code == http.StatusOK {
			if resp.SpentRounds > budget {
				t.Fatalf("spent %d exceeded budget %d", resp.SpentRounds, budget)
			}
			continue
		}
		if code != http.StatusConflict || env.Error.Code != CodeBudgetExhausted {
			t.Fatalf("exhaustion: status %d code %s, want 409 %s", code, env.Error.Code, CodeBudgetExhausted)
		}
		break
	}
}

// TestSessionErrorPaths is the table-driven sweep over the session API's
// coded failures.
func TestSessionErrorPaths(t *testing.T) {
	ts := newTestServer(t, Options{})
	var ext SessionStatus
	if code, _ := ts.doJSON(t, "POST", "/v1/sessions", `{"dataset":"cifar10","noise":{"sample_count":2}}`, &ext); code != http.StatusCreated {
		t.Fatalf("open external: %d", code)
	}
	var driven SessionStatus
	if code, _ := ts.doJSON(t, "POST", "/v1/sessions", `{"dataset":"cifar10","method":"rs","noise":{"sample_count":2}}`, &driven); code != http.StatusCreated {
		t.Fatalf("open driven: %d", code)
	}

	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"unknown dataset", "POST", "/v1/sessions", `{"dataset":"mnist"}`, 400, CodeUnknownDataset},
		{"unknown method", "POST", "/v1/sessions", `{"dataset":"cifar10","method":"sgd"}`, 400, CodeUnknownMethod},
		{"unknown scale", "POST", "/v1/sessions", `{"dataset":"cifar10","scale":"galactic"}`, 400, CodeUnknownScale},
		{"negative trial", "POST", "/v1/sessions", `{"dataset":"cifar10","trial":-1}`, 400, CodeInvalidTrials},
		{"bad noise", "POST", "/v1/sessions", `{"dataset":"cifar10","noise":{"epsilon":-1}}`, 400, CodeInvalidNoise},
		{"malformed JSON", "POST", "/v1/sessions", `{"dataset":`, 400, CodeBadRequest},
		{"missing session", "GET", "/v1/sessions/sess-999999", "", 404, CodeNotFound},
		{"ask on external", "POST", "/v1/sessions/" + ext.ID + "/ask", "", 400, CodeExternalSession},
		{"answers on external", "POST", "/v1/sessions/" + ext.ID + "/tell", `{"answers":[{"ask_id":0}]}`, 400, CodeExternalSession},
		{"empty tell", "POST", "/v1/sessions/" + ext.ID + "/tell", `{}`, 400, CodeBadRequest},
		{"tell before ask", "POST", "/v1/sessions/" + driven.ID + "/tell", `{"answers":[{"ask_id":0}]}`, 400, CodeNoPendingAsk},
		{"index and vector", "POST", "/v1/sessions/" + ext.ID + "/tell", `{"evaluate":[{"config_index":0,"config":{}}]}`, 400, CodeBadRequest},
		{"index out of range", "POST", "/v1/sessions/" + ext.ID + "/tell", `{"evaluate":[{"config_index":9999}]}`, 400, CodeBadRequest},
		{"neither index nor vector", "POST", "/v1/sessions/" + ext.ID + "/tell", `{"evaluate":[{}]}`, 400, CodeBadRequest},
		{"rounds out of range", "POST", "/v1/sessions/" + ext.ID + "/tell", `{"evaluate":[{"config_index":0,"rounds":-3}]}`, 400, CodeBadRequest},
	}
	for _, tc := range cases {
		code, env := ts.doJSON(t, tc.method, tc.path, tc.body, nil)
		if code != tc.status || env.Error.Code != tc.code {
			t.Errorf("%s: got %d %q, want %d %q (%s)", tc.name, code, env.Error.Code, tc.status, tc.code, env.Error.Message)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}

	// ask_mismatch needs a live pending ask.
	var ask AskResponse
	if code, _ := ts.doJSON(t, "POST", "/v1/sessions/"+driven.ID+"/ask", "", &ask); code != 200 {
		t.Fatalf("ask: %d", code)
	}
	if code, env := ts.doJSON(t, "POST", "/v1/sessions/"+driven.ID+"/tell",
		fmt.Sprintf(`{"answers":[{"ask_id":%d}]}`, ask.Asks[0].ID+7), nil); code != 400 || env.Error.Code != CodeAskMismatch {
		t.Errorf("ask mismatch: got %d %q", code, env.Error.Code)
	}

	// Terminal sessions reject ask and tell with 409 session_terminal.
	if code, _ := ts.doJSON(t, "DELETE", "/v1/sessions/"+ext.ID, "", nil); code != 200 {
		t.Fatalf("close: %d", code)
	}
	if code, env := ts.doJSON(t, "GET", "/v1/sessions/"+ext.ID, "", nil); code != 404 || env.Error.Code != CodeNotFound {
		t.Errorf("closed session GET: %d %q", code, env.Error.Code)
	}
}

// TestSessionCloseAndCapacity covers DELETE semantics and the MaxSessions
// bound with its too_many_sessions rejection.
func TestSessionCloseAndCapacity(t *testing.T) {
	ts := newTestServer(t, Options{MaxSessions: 2})
	open := func() (SessionStatus, int, errorEnvelope) {
		var s SessionStatus
		code, env := ts.doJSON(t, "POST", "/v1/sessions", `{"dataset":"cifar10","method":"rs","noise":{"sample_count":2}}`, &s)
		return s, code, env
	}
	a, code, _ := open()
	if code != http.StatusCreated {
		t.Fatalf("open a: %d", code)
	}
	if _, code, _ = open(); code != http.StatusCreated {
		t.Fatalf("open b: %d", code)
	}
	if _, code, env := open(); code != http.StatusServiceUnavailable || env.Error.Code != CodeTooManySessions {
		t.Fatalf("open c: got %d %q, want 503 %s", code, env.Error.Code, CodeTooManySessions)
	}
	var closed SessionStatus
	if code, _ := ts.doJSON(t, "DELETE", "/v1/sessions/"+a.ID, "", &closed); code != 200 {
		t.Fatalf("close a: %d", code)
	}
	if closed.State != SessionClosed {
		t.Errorf("closed state = %s", closed.State)
	}
	if _, code, _ = open(); code != http.StatusCreated {
		t.Fatalf("open after close: %d", code)
	}
}

// TestSessionIdleReaping drives the reaper on an injected clock: a session
// idle past the TTL is swept — its driver goroutine shut down — while a
// recently touched one survives. A mid-run ask on the reaped session answers
// 404, and the sweep happens with the driver blocked in its channel
// handshake (the case -race guards).
func TestSessionIdleReaping(t *testing.T) {
	ts := newTestServer(t, Options{SessionIdleTTL: time.Minute})
	now := time.Now()
	ts.mgr.Sessions().now = func() time.Time { return now }

	var idle, busy SessionStatus
	if code, _ := ts.doJSON(t, "POST", "/v1/sessions", `{"dataset":"cifar10","method":"rs","noise":{"sample_count":2}}`, &idle); code != 201 {
		t.Fatalf("open idle: %d", code)
	}
	// Leave idle's method parked mid-handshake on a pending ask.
	var ask AskResponse
	if code, _ := ts.doJSON(t, "POST", "/v1/sessions/"+idle.ID+"/ask", "", &ask); code != 200 {
		t.Fatalf("ask: %d", code)
	}
	if code, _ := ts.doJSON(t, "POST", "/v1/sessions", `{"dataset":"cifar10","method":"sha","noise":{"sample_count":2}}`, &busy); code != 201 {
		t.Fatalf("open busy: %d", code)
	}

	now = now.Add(45 * time.Second)
	ts.mgr.Sessions().Get(busy.ID) // touch busy at +45s
	now = now.Add(30 * time.Second)
	ts.mgr.Sessions().Sweep() // idle last touched 75s ago, busy 30s ago

	if got := ts.mgr.Sessions().Len(); got != 1 {
		t.Fatalf("after sweep: %d sessions retained, want 1", got)
	}
	if got := ts.mgr.Sessions().Reaped(); got != 1 {
		t.Errorf("reaped = %d, want 1", got)
	}
	if code, env := ts.doJSON(t, "GET", "/v1/sessions/"+idle.ID, "", nil); code != 404 || env.Error.Code != CodeNotFound {
		t.Errorf("reaped session GET: %d %q", code, env.Error.Code)
	}
	if code, _ := ts.doJSON(t, "GET", "/v1/sessions/"+busy.ID, "", nil); code != 200 {
		t.Errorf("surviving session GET: %d", code)
	}

	// Expiry is also enforced on lookup, without a sweep.
	now = now.Add(2 * time.Minute)
	if code, _ := ts.doJSON(t, "GET", "/v1/sessions/"+busy.ID, "", nil); code != 404 {
		t.Errorf("expired-on-read session GET: %d", code)
	}
}

// TestSessionList covers GET /v1/sessions rows.
func TestSessionList(t *testing.T) {
	ts := newTestServer(t, Options{})
	var a SessionStatus
	if code, _ := ts.doJSON(t, "POST", "/v1/sessions", `{"dataset":"cifar10","method":"fedpop","noise":{"sample_count":2}}`, &a); code != 201 {
		t.Fatalf("open: %d", code)
	}
	var list struct {
		Sessions []sessionListItem `json:"sessions"`
	}
	if code, _ := ts.doJSON(t, "GET", "/v1/sessions", "", &list); code != 200 {
		t.Fatalf("list: %d", code)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].ID != a.ID || list.Sessions[0].Method != "fedpop" {
		t.Errorf("list = %+v", list.Sessions)
	}
}

// TestMethodsEndpoint pins the catalogue: every registered method appears
// with a display name, and fedpop — this PR's addition — is reachable.
func TestMethodsEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})
	var resp struct {
		Methods []struct {
			Name        string            `json:"name"`
			Display     string            `json:"display"`
			Aliases     []string          `json:"aliases,omitempty"`
			Description string            `json:"description"`
			Settings    map[string]string `json:"settings,omitempty"`
		} `json:"methods"`
	}
	if code, _ := ts.doJSON(t, "GET", "/v1/methods", "", &resp); code != 200 {
		t.Fatalf("methods: %d", code)
	}
	byName := map[string]bool{}
	for _, m := range resp.Methods {
		byName[m.Name] = true
		if m.Display == "" || m.Description == "" {
			t.Errorf("method %q missing display/description", m.Name)
		}
	}
	for _, want := range []string{"rs", "sha", "hb", "tpe", "fedpop"} {
		if !byName[want] {
			t.Errorf("catalogue missing %q", want)
		}
	}
}

// TestListPagination covers ?limit/?cursor/?state on GET /v1/runs.
func TestListPagination(t *testing.T) {
	ts := newTestServer(t, Options{})
	var ids []string
	for seed := 1; seed <= 5; seed++ {
		_, st := ts.submit(t, fmt.Sprintf(`{"dataset":"cifar10","method":"rs","trials":1,"seed":%d,"noise":{"sample_count":2}}`, seed))
		ts.streamEvents(t, st.ID)
		ids = append(ids, st.ID)
	}

	type listResp struct {
		Runs       []runListItem `json:"runs"`
		NextCursor string        `json:"next_cursor"`
	}
	var got []string
	cursor := ""
	for page := 0; ; page++ {
		path := "/v1/runs?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		var lr listResp
		if code, _ := ts.doJSON(t, "GET", path, "", &lr); code != 200 {
			t.Fatalf("page %d: %d", page, code)
		}
		if len(lr.Runs) > 2 {
			t.Fatalf("page %d: %d rows exceeds limit", page, len(lr.Runs))
		}
		for _, r := range lr.Runs {
			got = append(got, r.ID)
		}
		if lr.NextCursor == "" {
			break
		}
		cursor = lr.NextCursor
		if page > 5 {
			t.Fatal("cursor never terminated")
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(ids) {
		t.Errorf("paged walk = %v, want %v", got, ids)
	}

	var all listResp
	if code, _ := ts.doJSON(t, "GET", "/v1/runs?state=done", "", &all); code != 200 {
		t.Fatal("state filter failed")
	}
	if len(all.Runs) != 5 {
		t.Errorf("state=done rows = %d, want 5", len(all.Runs))
	}
	var none listResp
	if code, _ := ts.doJSON(t, "GET", "/v1/runs?state=failed", "", &none); code != 200 || len(none.Runs) != 0 {
		t.Errorf("state=failed rows = %d, want 0", len(none.Runs))
	}

	if code, env := ts.doJSON(t, "GET", "/v1/runs?state=bogus", "", nil); code != 400 || env.Error.Code != CodeInvalidState {
		t.Errorf("bad state: %d %q", code, env.Error.Code)
	}
	if code, env := ts.doJSON(t, "GET", "/v1/runs?cursor=%21%21", "", nil); code != 400 || env.Error.Code != CodeInvalidCursor {
		t.Errorf("bad cursor: %d %q", code, env.Error.Code)
	}
	if code, env := ts.doJSON(t, "GET", "/v1/runs?limit=0", "", nil); code != 400 || env.Error.Code != CodeBadRequest {
		t.Errorf("bad limit: %d %q", code, env.Error.Code)
	}
}
