package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// askWait bounds how long one ask blocks waiting for the driven method to
// post its next evaluation. Methods compute between asks (snapping, DP noise,
// evolution) in microseconds; the bound only guards a wedged method from
// pinning a handler goroutine forever.
const askWait = 30 * time.Second

// sessionListItem is one row of GET /v1/sessions.
type sessionListItem struct {
	ID       string       `json:"id"`
	State    SessionState `json:"state"`
	Dataset  string       `json:"dataset"`
	Method   string       `json:"method"`
	Scale    string       `json:"scale"`
	External bool         `json:"external"`
	Trials   int          `json:"trials"`
}

// handleSessionOpen implements POST /v1/sessions.
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decode request: %v", err)
		return
	}
	sess, err := s.mgr.OpenSession(req)
	if err != nil {
		s.writeAPIError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/sessions/"+sess.ID)
	writeJSON(w, http.StatusCreated, sess.Status())
}

// handleSessionList implements GET /v1/sessions.
func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	sessions := s.mgr.Sessions().List()
	out := make([]sessionListItem, 0, len(sessions))
	for _, sess := range sessions {
		st := sess.Status()
		out = append(out, sessionListItem{
			ID: st.ID, State: st.State,
			Dataset: st.Request.Dataset, Method: st.Request.Method, Scale: st.Request.Scale,
			External: st.External, Trials: len(st.Trials),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

// session resolves {id}, answering 404 for unknown or idle-expired sessions.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	sess, ok := s.mgr.Sessions().Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no session %q (expired or never opened)", r.PathValue("id"))
		return nil, false
	}
	return sess, true
}

// handleSessionGet implements GET /v1/sessions/{id}.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

// handleSessionAsk implements POST /v1/sessions/{id}/ask.
func (s *Server) handleSessionAsk(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), askWait)
	defer cancel()
	resp, err := sess.Ask(ctx)
	if err != nil {
		s.writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionTell implements POST /v1/sessions/{id}/tell.
func (s *Server) handleSessionTell(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req TellRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Answers) == 0 && len(req.Evaluate) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "tell with neither answers nor evaluate")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), askWait)
	defer cancel()
	resp, err := sess.Tell(ctx, req)
	if err != nil {
		s.writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionClose implements DELETE /v1/sessions/{id}.
func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.mgr.Sessions().Remove(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no session %q (expired or never opened)", r.PathValue("id"))
		return
	}
	sess.Close()
	writeJSON(w, http.StatusOK, sess.Status())
}
