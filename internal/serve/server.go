package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Daemon couples an http.Server with a Manager and owns graceful shutdown
// ordering: first the manager stops accepting and drains (queued runs are
// cancelled — which also terminates their event streams — while in-flight
// runs complete), then the HTTP listener shuts down, waiting for in-flight
// request handlers.
type Daemon struct {
	Manager *Manager
	srv     *Server
	http    *http.Server
	ln      net.Listener
}

// NewDaemon builds a daemon listening on addr.
func NewDaemon(addr string, m *Manager) *Daemon {
	srv := NewServer(m)
	return &Daemon{
		Manager: m,
		srv:     srv,
		http: &http.Server{
			Addr:              addr,
			Handler:           srv,
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
}

// Server returns the daemon's HTTP facade, so additional route families —
// the dist coordinator endpoints in cluster mode — can be mounted before
// serving.
func (d *Daemon) Server() *Server { return d.srv }

// Listen binds the address (split from Serve so callers can report the bound
// address — e.g. addr ":0" in tests — before serving).
func (d *Daemon) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", d.http.Addr)
	if err != nil {
		return nil, err
	}
	d.ln = ln
	return ln.Addr(), nil
}

// Serve blocks serving HTTP until Shutdown. A clean shutdown returns nil.
func (d *Daemon) Serve() error {
	if d.ln == nil {
		if _, err := d.Listen(); err != nil {
			return err
		}
	}
	err := d.http.Serve(d.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the daemon gracefully within ctx's deadline: manager
// first (cancel queued, drain in-flight runs), then the HTTP server.
func (d *Daemon) Shutdown(ctx context.Context) error {
	mgrErr := d.Manager.Shutdown(ctx)
	httpErr := d.http.Shutdown(ctx)
	if mgrErr != nil {
		return mgrErr
	}
	return httpErr
}
