package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/exper"
)

// tinyConfig mirrors exper's test miniature: banks build in tens of
// milliseconds so handler tests stay fast under -race without a warm cache.
func tinyConfig() exper.Config {
	return exper.Config{
		Scales:        map[string]float64{"cifar10": 0.06, "femnist": 0.02, "stackoverflow": 0.002, "reddit": 0.0008},
		CapExamples:   30,
		BankConfigs:   6,
		MaxRounds:     9,
		K:             4,
		Trials:        4,
		MethodTrials:  2,
		Seed:          7,
		Fig13Datasets: []string{"cifar10"},
		Fig13Configs:  4,
	}
}

// testStore returns a bank store rooted in the shared NOISYEVAL_CACHE_DIR
// when set (CI persists it), else in a per-test temp dir.
func testStore(t *testing.T) *core.BankStore {
	t.Helper()
	dir := os.Getenv("NOISYEVAL_CACHE_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	store, err := core.NewBankStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

type testServer struct {
	*httptest.Server
	mgr *Manager
}

func newTestServer(t *testing.T, opts Options) *testServer {
	t.Helper()
	if opts.Scales == nil {
		opts.Scales = map[string]exper.Config{"quick": tinyConfig()}
	}
	if opts.Store == nil {
		opts.Store = testStore(t)
	}
	mgr := NewManager(opts)
	ts := httptest.NewServer(NewServer(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	})
	return &testServer{Server: ts, mgr: mgr}
}

func (ts *testServer) submit(t *testing.T, body string) (*http.Response, RunStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RunStatus
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return resp, st
}

// tryStreamEvents consumes the NDJSON event stream until EOF (terminal
// event) and returns every event. Safe to call from any goroutine.
func (ts *testServer) tryStreamEvents(id string) ([]Event, error) {
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return nil, fmt.Errorf("events content-type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	return events, sc.Err()
}

// streamEvents is tryStreamEvents for the common main-goroutine case.
func (ts *testServer) streamEvents(t *testing.T, id string) []Event {
	t.Helper()
	events, err := ts.tryStreamEvents(id)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func (ts *testServer) getRun(t *testing.T, id string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, _ := http.NewRequest("GET", ts.URL+"/v1/runs/"+id, nil)
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

const runBody = `{"dataset":"cifar10","method":"rs","trials":3,"seed":11,"noise":{"sample_count":2}}`

func TestSubmitPollStreamResult(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2})

	resp, st := ts.submit(t, runBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/runs/"+st.ID {
		t.Errorf("Location = %q", loc)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Errorf("initial state = %q", st.State)
	}
	if st.Key == "" {
		t.Error("missing run key")
	}
	if st.Request.Method != "rs" || st.Request.Scale != "quick" || st.Request.Seed != 11 {
		t.Errorf("normalized request = %+v", st.Request)
	}

	// The stream replays history and ends at the terminal event.
	events := ts.streamEvents(t, st.ID)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if events[0].Type != "state" || events[0].State != StateQueued {
		t.Errorf("first event = %+v, want queued state", events[0])
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("last event = %+v, want done state", last)
	}
	trials := 0
	seenIdx := map[int]bool{}
	for i, e := range events {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.Type == "trial" {
			trials++
			if e.Trial == nil || e.Trial.Total != 3 {
				t.Fatalf("trial event payload = %+v", e.Trial)
			}
			// Index must serialize explicitly even for trial 0 (no
			// omitempty), so every index is distinct and accounted for.
			seenIdx[e.Trial.Index] = true
		}
	}
	if trials != 3 || len(seenIdx) != 3 {
		t.Errorf("saw %d trial events over %d distinct indices, want 3/3", trials, len(seenIdx))
	}

	// Poll: terminal snapshot carries the result and a strong ETag.
	resp2, body := ts.getRun(t, st.ID, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d", resp2.StatusCode)
	}
	etag := resp2.Header.Get("ETag")
	if etag == "" {
		t.Fatal("terminal run served no ETag")
	}
	var final RunStatus
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("final = %+v", final)
	}
	if final.TrialsDone != 3 || len(final.Result.Finals) != 3 {
		t.Errorf("trials_done=%d finals=%d", final.TrialsDone, len(final.Result.Finals))
	}
	if final.Result.MedianErr <= 0 || final.Result.MedianErr >= 1 {
		t.Errorf("median error %v outside (0,1)", final.Result.MedianErr)
	}
	if final.Result.BankKey == "" || final.Result.Best == nil {
		t.Errorf("result missing bank key or best config: %+v", final.Result)
	}

	// Conditional GET: 304 on a matching, wildcard, or list-member ETag;
	// 200 on a stale one.
	for _, match := range []string{etag, "*", `"stale-etag", ` + etag} {
		resp304, _ := ts.getRun(t, st.ID, map[string]string{"If-None-Match": match})
		if resp304.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q status = %d, want 304", match, resp304.StatusCode)
		}
	}
	respStale, _ := ts.getRun(t, st.ID, map[string]string{"If-None-Match": `"stale-etag"`})
	if respStale.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match status = %d, want 200", respStale.StatusCode)
	}
}

func TestDedupIdenticalSubmissions(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2})

	_, first := ts.submit(t, runBody)
	ts.streamEvents(t, first.ID) // wait for completion
	_, body1 := ts.getRun(t, first.ID, nil)

	// Identical request → same run, 200, byte-identical result.
	resp, second := ts.submit(t, runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dedup status = %d, want 200", resp.StatusCode)
	}
	if second.ID != first.ID {
		t.Fatalf("dedup created new run %s (first %s)", second.ID, first.ID)
	}
	dedupBytes, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(dedupBytes, body1) {
		t.Error("dedup response bytes differ from the original run's result bytes")
	}

	// Spelling variants of the same run dedup too (normalization + canonical
	// method name feed the key).
	variant := `{"dataset":"cifar10","method":"RANDOM","scale":"quick","trials":3,"seed":11,"noise":{"sample_count":2}}`
	_, third := ts.submit(t, variant)
	if third.ID != first.ID {
		t.Errorf("variant spelling created new run %s", third.ID)
	}

	// A different seed is a different run.
	other := `{"dataset":"cifar10","method":"rs","trials":3,"seed":12,"noise":{"sample_count":2}}`
	_, fourth := ts.submit(t, other)
	if fourth.ID == first.ID {
		t.Error("different seed deduped onto the same run")
	}
	ts.streamEvents(t, fourth.ID)

	// One dataset ⇒ one trained bank, regardless of how many runs consumed it.
	if n := ts.mgr.BankBuilds(); n > 1 {
		t.Errorf("trained %d banks, want ≤ 1 (store may satisfy all)", n)
	}
	if c := ts.mgr.Counters(); c.RunsDeduped < 2 {
		t.Errorf("runs_deduped = %d, want ≥ 2", c.RunsDeduped)
	}
}

func TestConcurrentIdenticalSubmissionsCollapse(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 4})
	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(runBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st RunStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got run %s, submission 0 got %s", i, ids[i], ids[0])
		}
	}
	ts.streamEvents(t, ids[0])
	if got := ts.mgr.Counters().RunsStarted; got != 1 {
		t.Errorf("runs_started = %d, want 1", got)
	}
	if n := ts.mgr.BankBuilds(); n > 1 {
		t.Errorf("trained %d banks, want ≤ 1", n)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, Options{})
	cases := []struct {
		name, body, code, want string
	}{
		{"malformed JSON", `{"dataset":`, CodeBadRequest, "decode"},
		{"unknown field", `{"dataset":"cifar10","method":"rs","nope":1}`, CodeBadRequest, "nope"},
		{"unknown dataset", `{"dataset":"mnist","method":"rs"}`, CodeUnknownDataset, "unknown dataset"},
		{"unknown method", `{"dataset":"cifar10","method":"sgd"}`, CodeUnknownMethod, "rs"},
		{"unknown scale", `{"dataset":"cifar10","method":"rs","scale":"galactic"}`, CodeUnknownScale, "unknown scale"},
		{"negative trials", `{"dataset":"cifar10","method":"rs","trials":-2}`, CodeInvalidTrials, "trials"},
		{"excess trials", fmt.Sprintf(`{"dataset":"cifar10","method":"rs","trials":%d}`, MaxTrials+1), CodeInvalidTrials, "trials"},
		{"bad fraction", `{"dataset":"cifar10","method":"rs","noise":{"sample_fraction":1.5}}`, CodeInvalidNoise, "sample_fraction"},
		{"bad partition", `{"dataset":"cifar10","method":"rs","noise":{"heterogeneity_p":0.3}}`, CodeBadRequest, "heterogeneity p=0.3"},
	}
	for _, tc := range cases {
		resp, _ := ts.submit(t, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		var eb errorEnvelope
		if err := json.Unmarshal(raw, &eb); err != nil || !strings.Contains(eb.Error.Message, tc.want) {
			t.Errorf("%s: error body %q does not mention %q", tc.name, raw, tc.want)
		}
		if eb.Error.Code != tc.code {
			t.Errorf("%s: error code = %q, want %q", tc.name, eb.Error.Code, tc.code)
		}
	}
	if got := ts.mgr.Counters().RunsStarted; got != 0 {
		t.Errorf("bad requests started %d runs", got)
	}
}

func TestNotFoundAndList(t *testing.T) {
	ts := newTestServer(t, Options{})
	resp, _ := ts.getRun(t, "run-999999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing run status = %d, want 404", resp.StatusCode)
	}

	_, st := ts.submit(t, runBody)
	ts.streamEvents(t, st.ID)
	listResp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list struct {
		Runs []runListItem `json:"runs"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 1 || list.Runs[0].ID != st.ID || list.Runs[0].State != StateDone {
		t.Errorf("list = %+v", list.Runs)
	}
}

func TestHealthVarsAndBanks(t *testing.T) {
	ts := newTestServer(t, Options{})
	_, st := ts.submit(t, runBody)
	ts.streamEvents(t, st.ID)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars map[string]int64
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars["runs_started"] != 1 || vars["runs_completed"] != 1 {
		t.Errorf("vars = %v", vars)
	}
	for _, key := range []string{"runs_failed", "runs_deduped", "bank_cache_hits", "bank_cache_misses", "http_requests_total"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("vars missing %q", key)
		}
	}

	bresp, err := http.Get(ts.URL + "/v1/banks")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var banks struct {
		Dir   string      `json:"dir"`
		Banks []bankEntry `json:"banks"`
	}
	if err := json.NewDecoder(bresp.Body).Decode(&banks); err != nil {
		t.Fatal(err)
	}
	if banks.Dir == "" || len(banks.Banks) < 1 {
		t.Errorf("banks = %+v, want ≥ 1 cached bank", banks)
	}
	for _, b := range banks.Banks {
		if b.Key == "" || b.Bytes <= 0 {
			t.Errorf("bad bank entry %+v", b)
		}
	}
}

func TestFailedRunReportsAndRetries(t *testing.T) {
	// A run whose oracle construction fails at execution time: SampleCount
	// larger than the validation pool passes static validation but the
	// evaluator rejects it — the run must land in failed with an error, and
	// an identical resubmission must not dedup onto the failure.
	ts := newTestServer(t, Options{})
	body := `{"dataset":"cifar10","method":"rs","trials":2,"noise":{"sample_count":1000000}}`
	resp, st := ts.submit(t, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	events := ts.streamEvents(t, st.ID)
	last := events[len(events)-1]
	if last.State != StateFailed || last.Error == "" {
		t.Fatalf("terminal event = %+v, want failed with error", last)
	}
	_, retry := ts.submit(t, body)
	if retry.ID == st.ID {
		t.Error("resubmission deduped onto a failed run")
	}
	ts.streamEvents(t, retry.ID)
	if got := ts.mgr.Counters().RunsFailed; got != 2 {
		t.Errorf("runs_failed = %d, want 2", got)
	}
}

func TestSSEFraming(t *testing.T) {
	ts := newTestServer(t, Options{})
	_, st := ts.submit(t, runBody)
	ts.streamEvents(t, st.ID) // complete first; SSE then replays history

	req, _ := http.NewRequest("GET", ts.URL+"/v1/runs/"+st.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "event: state\ndata: ") {
		t.Errorf("SSE framing missing, got %q", raw)
	}
}
