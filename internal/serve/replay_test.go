package serve

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/exper"
	"noisyeval/internal/serve/journal"
)

// jrec builds one journal record from a typed payload.
func jrec(t *testing.T, kind string, v any) journal.Record {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return journal.Record{Kind: kind, Data: data}
}

// TestFoldTransitionOrderings is the table-driven FSM test over the journal
// fold: every ordering of submit/start/terminal records — including the
// duplicates and orphans a crash mid-compaction can produce — folds to the
// documented recovered state.
func TestFoldTransitionOrderings(t *testing.T) {
	req := RunRequest{Dataset: "cifar10", Method: "rs", Scale: "quick", Trials: 2, Seed: 1}
	sub := func(id string) submitRecord {
		return submitRecord{ID: id, Key: "key-" + id, Request: req, CreatedNs: 1000}
	}
	start := func(id string) startRecord { return startRecord{ID: id, StartedNs: 2000} }
	done := func(id string) terminalRecord {
		return terminalRecord{ID: id, State: StateDone, TrialsDone: 2, StartedNs: 2000, FinishedNs: 3000}
	}

	cases := []struct {
		name    string
		records []journal.Record
		want    []RecoveredRun // ID/State/TrialsDone only; zero-length = nothing recovered
		dropped int64
	}{
		{
			name:    "submit only folds to queued",
			records: []journal.Record{jrec(t, jkSubmit, sub("run-000001"))},
			want:    []RecoveredRun{{ID: "run-000001", State: StateQueued}},
		},
		{
			name: "submit then start folds to running",
			records: []journal.Record{
				jrec(t, jkSubmit, sub("run-000001")), jrec(t, jkStart, start("run-000001")),
			},
			want: []RecoveredRun{{ID: "run-000001", State: StateRunning}},
		},
		{
			name: "full lifecycle folds to done",
			records: []journal.Record{
				jrec(t, jkSubmit, sub("run-000001")), jrec(t, jkStart, start("run-000001")),
				jrec(t, jkTerminal, done("run-000001")),
			},
			want: []RecoveredRun{{ID: "run-000001", State: StateDone, TrialsDone: 2}},
		},
		{
			name: "terminal without start still folds to done",
			records: []journal.Record{
				jrec(t, jkSubmit, sub("run-000001")), jrec(t, jkTerminal, done("run-000001")),
			},
			want: []RecoveredRun{{ID: "run-000001", State: StateDone, TrialsDone: 2}},
		},
		{
			name:    "orphan start is dropped",
			records: []journal.Record{jrec(t, jkStart, start("run-000009"))},
			want:    []RecoveredRun{},
			dropped: 1,
		},
		{
			name:    "orphan terminal is dropped",
			records: []journal.Record{jrec(t, jkTerminal, done("run-000009"))},
			want:    []RecoveredRun{},
			dropped: 1,
		},
		{
			name: "duplicate submit ignored (snapshot + stale WAL)",
			records: []journal.Record{
				jrec(t, jkSubmit, sub("run-000001")), jrec(t, jkTerminal, done("run-000001")),
				jrec(t, jkSubmit, sub("run-000001")),
			},
			want: []RecoveredRun{{ID: "run-000001", State: StateDone, TrialsDone: 2}},
		},
		{
			name: "start after terminal ignored",
			records: []journal.Record{
				jrec(t, jkSubmit, sub("run-000001")), jrec(t, jkTerminal, done("run-000001")),
				jrec(t, jkStart, start("run-000001")),
			},
			want: []RecoveredRun{{ID: "run-000001", State: StateDone, TrialsDone: 2}},
		},
		{
			name: "first terminal wins",
			records: []journal.Record{
				jrec(t, jkSubmit, sub("run-000001")),
				jrec(t, jkTerminal, terminalRecord{ID: "run-000001", State: StateFailed, Error: "boom", FinishedNs: 3000}),
				jrec(t, jkTerminal, done("run-000001")),
			},
			want: []RecoveredRun{{ID: "run-000001", State: StateFailed}},
		},
		{
			name: "terminal record with non-terminal state dropped",
			records: []journal.Record{
				jrec(t, jkSubmit, sub("run-000001")),
				jrec(t, jkTerminal, terminalRecord{ID: "run-000001", State: StateRunning, FinishedNs: 3000}),
			},
			want:    []RecoveredRun{{ID: "run-000001", State: StateQueued}},
			dropped: 1,
		},
		{
			name: "malformed and unknown records dropped around intact ones",
			records: []journal.Record{
				{Kind: jkSubmit, Data: []byte("{not json")},
				{Kind: "mystery", Data: []byte("{}")},
				jrec(t, jkSubmit, sub("run-000002")),
			},
			want:    []RecoveredRun{{ID: "run-000002", State: StateQueued}},
			dropped: 2,
		},
		{
			name: "submission order preserved across interleaved lifecycles",
			records: []journal.Record{
				jrec(t, jkSubmit, sub("run-000001")), jrec(t, jkSubmit, sub("run-000002")),
				jrec(t, jkStart, start("run-000002")), jrec(t, jkTerminal, done("run-000001")),
			},
			want: []RecoveredRun{
				{ID: "run-000001", State: StateDone, TrialsDone: 2},
				{ID: "run-000002", State: StateRunning},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rj := &RunJournal{}
			got := rj.fold(tc.records)
			if len(got) != len(tc.want) {
				t.Fatalf("recovered %d runs, want %d (%+v)", len(got), len(tc.want), got)
			}
			for i, w := range tc.want {
				g := got[i]
				if g.ID != w.ID || g.State != w.State || g.TrialsDone != w.TrialsDone {
					t.Errorf("run %d = {ID:%s State:%s Trials:%d}, want {ID:%s State:%s Trials:%d}",
						i, g.ID, g.State, g.TrialsDone, w.ID, w.State, w.TrialsDone)
				}
			}
			if rj.dropped != tc.dropped {
				t.Errorf("dropped = %d, want %d", rj.dropped, tc.dropped)
			}
		})
	}
}

// openTestJournal opens a RunJournal on dir with fsyncs disabled (tests).
func openTestJournal(t *testing.T, dir string) *RunJournal {
	t.Helper()
	jr, err := OpenRunJournal(JournalOptions{Dir: dir, NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return jr
}

// TestCrashRecoveryEndToEnd simulates a crash: manager 1 completes one run,
// wedges another in-flight, holds a third queued, and is then abandoned
// without shutdown (its journal never sees terminal records for the last
// two). A second manager on the same journal must serve the finished run's
// exact bytes from the snapshot and re-execute the other two to the same
// results an uninterrupted daemon would have produced.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store := testStore(t)
	scales := map[string]exper.Config{"quick": tinyConfig()}
	submitReq := func(seed uint64) RunRequest {
		return RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: seed}
	}

	// Manager 1: seed-3 completes; seed-1 wedges in execGate forever (the
	// "crash" leaves its goroutine blocked — never released); seed-2 queues.
	wedge := make(chan struct{}) // never closed: simulates the process dying mid-run
	mgr1 := NewManager(Options{
		Workers: 1, QueueDepth: 8, Store: store, Scales: scales,
		Journal: openTestJournal(t, dir),
		execGate: func(r *Run) {
			if r.Req.Seed == 1 {
				<-wedge
			}
		},
	})
	finished, _, err := mgr1.Submit(submitReq(3))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, finished, StateDone)
	_, origBody, origETag := finished.Snapshot()
	if origBody == nil {
		t.Fatal("finished run has no cached body")
	}
	if _, _, err := mgr1.Submit(submitReq(1)); err != nil { // wedges in-flight
		t.Fatal(err)
	}
	if _, _, err := mgr1.Submit(submitReq(2)); err != nil { // stays queued
		t.Fatal(err)
	}
	// Give the worker a moment to dequeue seed-1 into the gate, then abandon
	// mgr1 — no Shutdown, exactly like a kill -9.
	time.Sleep(50 * time.Millisecond)

	// Manager 2 on the same journal directory.
	jr2 := openTestJournal(t, dir)
	if got := len(jr2.Recovered()); got != 3 {
		t.Fatalf("recovered %d runs, want 3 (%+v)", got, jr2.Recovered())
	}
	mgr2 := NewManager(Options{Workers: 2, QueueDepth: 8, Store: store, Scales: scales, Journal: jr2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr2.Shutdown(ctx)
	})

	// The finished run is served from the journal byte-for-byte, without
	// re-execution.
	rec, ok := mgr2.Registry().Get(finished.ID)
	if !ok {
		t.Fatalf("recovered registry is missing terminal run %s", finished.ID)
	}
	if st := rec.State(); st != StateDone {
		t.Fatalf("recovered terminal run state = %q", st)
	}
	_, recBody, recETag := rec.Snapshot()
	if string(recBody) != string(origBody) {
		t.Errorf("recovered body differs from original:\n--- original\n%s\n--- recovered\n%s", origBody, recBody)
	}
	if recETag != origETag {
		t.Errorf("recovered etag %s != original %s", recETag, origETag)
	}

	// The interrupted runs re-execute to completion.
	if c := mgr2.Counters(); c.RunsRecovered != 2 {
		t.Errorf("RunsRecovered = %d, want 2", c.RunsRecovered)
	}
	for _, seed := range []uint64{1, 2} {
		// Resubmitting the identical request must dedup onto the recovering
		// run, not execute a duplicate.
		run, created, err := mgr2.Submit(submitReq(seed))
		if err != nil {
			t.Fatalf("resubmit seed %d: %v", seed, err)
		}
		if created {
			t.Errorf("resubmit seed %d created a fresh run instead of coalescing onto the recovered one", seed)
		}
		waitState(t, run, StateDone)

		// Deterministic re-execution: an uninterrupted run of the same
		// request (fresh manager, no journal) produces the same result.
		events := runEvents(run)
		if events[0].State != StateQueued || events[1].State != StateRunning {
			t.Errorf("seed %d recovered event prefix = %+v, want queued,running at seq 0,1", seed, events[:2])
		}
		for i, e := range events {
			if e.Seq != i {
				t.Errorf("seed %d event %d has seq %d — recovered streams must renumber from 0", seed, i, e.Seq)
			}
		}
		st, _, _ := run.Snapshot()
		ref := referenceResult(t, store, scales, submitReq(seed))
		if !reflect.DeepEqual(st.Result, ref.Result) {
			t.Errorf("seed %d recovered result %+v != uninterrupted reference %+v", seed, st.Result, ref.Result)
		}
	}

	if c := mgr2.Counters(); c.RunsDeduped != 2 {
		t.Errorf("RunsDeduped = %d, want 2 (both resubmissions coalesced)", c.RunsDeduped)
	}
}

// TestRecoveryTornTail injects a torn final WAL record before recovery: the
// journal truncates it, counts it, and the intact prefix still recovers.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	store := testStore(t)
	scales := map[string]exper.Config{"quick": tinyConfig()}

	mgr1 := NewManager(Options{
		Workers: 1, Store: store, Scales: scales, Journal: openTestJournal(t, dir),
	})
	run, _, err := mgr1.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, run, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Tear the WAL tail: half a frame of garbage, as if the process died
	// mid-write.
	walPath := filepath.Join(dir, "wal")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jr2 := openTestJournal(t, dir)
	if st := jr2.Stats(); st.TornTails != 1 {
		t.Errorf("torn tails = %d, want 1", st.TornTails)
	}
	if got := len(jr2.Recovered()); got != 1 {
		t.Fatalf("recovered %d runs, want the 1 intact one", got)
	}
	if jr2.Recovered()[0].State != StateDone {
		t.Errorf("recovered state = %q, want done", jr2.Recovered()[0].State)
	}
	jr2.Close()
}

// TestJournalFullBackpressure pins the admission behavior when the journal
// budget cannot be reclaimed: submissions fail with ErrJournalFull (a 503
// code) and leave no half-admitted run behind.
func TestJournalFullBackpressure(t *testing.T) {
	dir := t.TempDir()
	// Budget so small even one submit record (~300 bytes of JSON) cannot fit.
	jr, err := OpenRunJournal(JournalOptions{Dir: dir, MaxBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	defer close(gate)
	mgr := NewManager(Options{
		Workers: 1, Store: testStore(t),
		Scales:   map[string]exper.Config{"quick": tinyConfig()},
		Journal:  jr,
		execGate: func(*Run) { <-gate },
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	})
	_, _, err = mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 9})
	if !errors.Is(err, ErrJournalFull) {
		t.Fatalf("submit err = %v, want ErrJournalFull", err)
	}
	if n := mgr.Registry().Len(); n != 0 {
		t.Errorf("registry holds %d runs after a journal-full rejection, want 0", n)
	}
	if statusForCode(CodeJournalFull) != 503 {
		t.Errorf("journal_full must map to 503")
	}
}

// TestShedColdBankUnderPressure pins shed-by-class admission control: past
// the queue-load threshold, submissions needing a cold bank build are shed
// with ErrShedCold while warm-cache submissions keep flowing.
func TestShedColdBankUnderPressure(t *testing.T) {
	// A private store (not the CI-shared cache dir) so femnist is genuinely
	// cold regardless of what other tests have built.
	store, err := core.NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	mgr := NewManager(Options{
		Workers: 1, QueueDepth: 4, Store: store,
		Scales:           map[string]exper.Config{"quick": tinyConfig()},
		ShedColdFraction: 0.5,
		execGate: func(r *Run) {
			if r.Req.Seed == 99 {
				entered <- struct{}{}
				<-gate
			}
		},
	})
	t.Cleanup(func() {
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	})
	submit := func(dataset string, seed uint64) error {
		_, _, err := mgr.Submit(RunRequest{Dataset: dataset, Method: "rs", Trials: 2, Seed: seed})
		return err
	}

	// Warm cifar10 by completing one run, then wedge the only worker and
	// fill the queue to the shed threshold (0.5 × 4 = 2 queued).
	warm, _, err := mgr.Submit(RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, warm, StateDone)
	if err := submit("cifar10", 99); err != nil {
		t.Fatal(err)
	}
	<-entered
	for seed := uint64(2); seed <= 3; seed++ {
		if err := submit("cifar10", seed); err != nil {
			t.Fatalf("warm submit below threshold: %v", err)
		}
	}

	// At the threshold: cold femnist sheds, warm cifar10 still flows.
	if err := submit("femnist", 4); !errors.Is(err, ErrShedCold) {
		t.Fatalf("cold submit under pressure err = %v, want ErrShedCold", err)
	}
	if err := submit("cifar10", 5); err != nil {
		t.Errorf("warm submit under pressure rejected: %v", err)
	}
	if c := mgr.Counters(); c.RunsShedCold != 1 {
		t.Errorf("RunsShedCold = %d, want 1", c.RunsShedCold)
	}
	if statusForCode(CodeShedCold) != 503 {
		t.Error("shed_cold_bank must map to 503")
	}
}

// waitState polls a run until it reaches want (or fails the test after 30s).
func waitState(t *testing.T, r *Run, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := r.State(); st == want {
			return
		} else if st.Terminal() {
			status, _, _ := r.Snapshot()
			t.Fatalf("run %s reached %q (error %q), want %q", r.ID, st, status.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %q (state %q)", r.ID, want, r.State())
}

// runEvents snapshots a run's full event history.
func runEvents(r *Run) []Event {
	replay, _, cancel := r.Subscribe()
	cancel()
	return replay
}

// referenceResult executes req on a fresh journal-less manager and returns
// the terminal status — the uninterrupted result a recovered run must match.
func referenceResult(t *testing.T, store *core.BankStore, scales map[string]exper.Config, req RunRequest) RunStatus {
	t.Helper()
	mgr := NewManager(Options{Workers: 1, Store: store, Scales: scales})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	})
	run, _, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, run, StateDone)
	st, _, _ := run.Snapshot()
	return st
}
