package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Machine-readable error codes of the v1 error envelope. Every non-2xx
// response on /v1/* carries {"error":{"code","message"}} with one of these
// codes, so clients branch on the code and humans read the message.
const (
	CodeBadRequest      = "bad_request"       // malformed JSON or invalid field
	CodeUnknownMethod   = "unknown_method"    // method not in hpo.Methods()
	CodeUnknownDataset  = "unknown_dataset"   // dataset not in exper.DatasetNames
	CodeUnknownScale    = "unknown_scale"     // scale the manager does not serve
	CodeInvalidTrials   = "invalid_trials"    // trial count outside [1, MaxTrials]
	CodeInvalidNoise    = "invalid_noise"     // noise parameter out of range
	CodeInvalidCursor   = "invalid_cursor"    // unparseable pagination cursor
	CodeInvalidState    = "invalid_state"     // unknown ?state= filter value
	CodeNotFound        = "not_found"         // no such run/session (or expired)
	CodeQueueFull       = "queue_full"        // run queue at capacity (503)
	CodeJournalFull     = "journal_full"      // durability journal budget exhausted (503)
	CodeShedCold        = "shed_cold_bank"    // cold-bank submission shed under load (503)
	CodeShuttingDown    = "shutting_down"     // graceful drain in progress (503)
	CodeTooManySessions = "too_many_sessions" // session table at capacity (503)
	CodeSessionTerminal = "session_terminal"  // ask/tell on a finished session (409)
	CodeExternalSession = "external_session"  // ask (or answers) on a session with no method
	CodeNoPendingAsk    = "no_pending_ask"    // tell with nothing asked
	CodeAskMismatch     = "ask_mismatch"      // tell answering the wrong ask ID
	CodeBudgetExhausted = "budget_exhausted"  // evaluation would exceed the round budget (409)
	CodeInternal        = "internal"          // unexpected server-side failure (500)
)

// apiError is an error carrying its envelope code. Validation and session
// logic return these; writeAPIError recovers the code through errors.As even
// after wrapping (Manager.Submit wraps with ErrBadRequest via %w).
type apiError struct {
	code string
	msg  string
}

func (e *apiError) Error() string { return e.msg }

// codef builds an apiError.
func codef(code, format string, args ...any) *apiError {
	return &apiError{code: code, msg: fmt.Sprintf(format, args...)}
}

// errorInfo is the envelope payload.
type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorEnvelope is every non-2xx JSON response body on /v1/*.
type errorEnvelope struct {
	Error errorInfo `json:"error"`
}

// statusForCode maps envelope codes to HTTP status.
func statusForCode(code string) int {
	switch code {
	case CodeNotFound:
		return http.StatusNotFound
	case CodeQueueFull, CodeJournalFull, CodeShedCold, CodeShuttingDown, CodeTooManySessions:
		return http.StatusServiceUnavailable
	case CodeSessionTerminal, CodeBudgetExhausted:
		return http.StatusConflict
	case CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// writeError emits one enveloped error with an explicit code.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: errorInfo{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// writeAPIError maps a manager/session-layer error onto the wire: coded
// errors keep their code (and its status), the manager's sentinel errors map
// to their family code, and anything else is an internal 500. 503s carry
// Retry-After from the manager's live state.
func (s *Server) writeAPIError(w http.ResponseWriter, err error) {
	code := CodeInternal
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		code = ae.code
	case errors.Is(err, ErrBadRequest):
		code = CodeBadRequest
	case errors.Is(err, ErrQueueFull):
		code = CodeQueueFull
	case errors.Is(err, ErrJournalFull):
		code = CodeJournalFull
	case errors.Is(err, ErrShedCold):
		code = CodeShedCold
	case errors.Is(err, ErrShuttingDown):
		code = CodeShuttingDown
	}
	status := statusForCode(code)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.mgr.RetryAfterSeconds()))
	}
	writeError(w, status, code, "%s", err.Error())
}
