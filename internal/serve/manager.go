package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/exper"
)

// Submission outcomes the HTTP layer maps to status codes.
var (
	// ErrBadRequest wraps request validation failures (HTTP 400).
	ErrBadRequest = errors.New("bad request")
	// ErrQueueFull signals backpressure: the bounded queue is at capacity
	// (HTTP 503 + Retry-After).
	ErrQueueFull = errors.New("run queue full")
	// ErrShuttingDown rejects submissions during graceful shutdown (503).
	ErrShuttingDown = errors.New("server shutting down")
)

// Options configures a Manager. The zero value works: quick/full scales, a
// nil (always-miss) bank store, and small defaults for pool and queue.
type Options struct {
	// Store is the shared content-addressed bank cache (nil = no cache).
	Store *core.BankStore
	// Builder, when set, overrides how suites build banks (cluster mode
	// hands the dist.Builder tier stack here: local store → warm peers →
	// coordinator-sharded fleet build). nil preserves the local path over
	// Store.
	Builder core.BankBuilder
	// Workers bounds concurrently executing runs (default 2).
	Workers int
	// QueueDepth bounds queued-but-not-running runs; a full queue rejects
	// submissions with ErrQueueFull (default 64).
	QueueDepth int
	// TTL is how long terminal runs stay fetchable and dedupable
	// (0 = default 15m; negative = retain forever).
	TTL time.Duration
	// SessionIdleTTL reaps ask/tell sessions untouched for this long
	// (0 = DefaultSessionIdleTTL; negative = never reap).
	SessionIdleTTL time.Duration
	// MaxSessions bounds concurrently retained sessions
	// (0 = DefaultMaxSessions).
	MaxSessions int
	// Scales maps scale name → suite configuration
	// (default {"quick": exper.Quick(), "full": exper.Default()}).
	Scales map[string]exper.Config

	// execGate, when set, is called by a worker immediately before a run
	// executes. Test hook: lets shutdown tests hold a run in-flight
	// deterministically.
	execGate func(*Run)
}

// Counters is a snapshot of the manager's operational counters, surfaced at
// /debug/vars.
type Counters struct {
	RunsStarted   int64 `json:"runs_started"`
	RunsCompleted int64 `json:"runs_completed"`
	RunsFailed    int64 `json:"runs_failed"`
	RunsCancelled int64 `json:"runs_cancelled"`
	RunsDeduped   int64 `json:"runs_deduped"`
	RunsActive    int64 `json:"runs_active"`
	RunsQueued    int64 `json:"runs_queued"`
	RunsRetained  int64 `json:"runs_retained"`

	SessionsOpen   int64 `json:"sessions_open"`
	SessionsOpened int64 `json:"sessions_opened"`
	SessionsReaped int64 `json:"sessions_reaped"`
}

// Manager owns the run lifecycle: it validates and keys submissions,
// deduplicates them through the registry, and executes them on a bounded
// worker pool. All runs of one scale share one exper.Suite, so populations,
// the shared config pool, and banks are built once and reused; the suites in
// turn share Options.Store, whose singleflight GetOrBuild collapses
// concurrent bank builds across runs.
type Manager struct {
	opts     Options
	reg      *Registry
	sessions *SessionRegistry

	queue chan *Run
	wg    sync.WaitGroup // worker goroutines

	mu        sync.Mutex
	suites    map[string]*exper.Suite
	closed    bool
	drainDone chan struct{} // created by the first Shutdown, closed when drained

	janitorStop chan struct{}

	started, completed, failed, cancelled, deduped, active, queued atomic.Int64
}

// NewManager starts a manager (worker pool and TTL janitor included).
func NewManager(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.TTL == 0 {
		opts.TTL = 15 * time.Minute
	}
	if opts.SessionIdleTTL == 0 {
		opts.SessionIdleTTL = DefaultSessionIdleTTL
	}
	if opts.Scales == nil {
		opts.Scales = map[string]exper.Config{
			"quick": exper.Quick(),
			"full":  exper.Default(),
		}
	}
	m := &Manager{
		opts:        opts,
		reg:         NewRegistry(opts.TTL),
		sessions:    NewSessionRegistry(opts.SessionIdleTTL, opts.MaxSessions),
		queue:       make(chan *Run, opts.QueueDepth),
		suites:      map[string]*exper.Suite{},
		janitorStop: make(chan struct{}),
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	go m.janitor()
	return m
}

// Registry exposes the run store (handlers read it).
func (m *Manager) Registry() *Registry { return m.reg }

// Sessions exposes the session store (handlers read it).
func (m *Manager) Sessions() *SessionRegistry { return m.sessions }

// Store returns the shared bank cache (nil when none).
func (m *Manager) Store() *core.BankStore { return m.opts.Store }

// ScaleNames returns the accepted scale names, sorted small-to-large by
// convention ("quick" before "full" when both exist).
func (m *Manager) ScaleNames() []string {
	names := make([]string, 0, len(m.opts.Scales))
	if _, ok := m.opts.Scales["quick"]; ok {
		names = append(names, "quick")
	}
	for name := range m.opts.Scales {
		if name != "quick" {
			names = append(names, name)
		}
	}
	return names
}

// suiteFor lazily creates the shared suite for a scale.
func (m *Manager) suiteFor(scale string) (*exper.Suite, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.suites[scale]; ok {
		return s, nil
	}
	cfg, ok := m.opts.Scales[scale]
	if !ok {
		return nil, fmt.Errorf("%w: unknown scale %q", ErrBadRequest, scale)
	}
	s := exper.NewSuite(cfg)
	s.SetStore(m.opts.Store)
	if m.opts.Builder != nil {
		s.SetBuilder(m.opts.Builder)
	}
	m.suites[scale] = s
	return s, nil
}

// RetryAfterSeconds derives the Retry-After value for 503 responses from
// the manager's actual state instead of a constant: during drain the answer
// is "come back after a restart window"; under backpressure it estimates
// how long the backlog needs to clear one slot, assuming runs take on the
// order of a second each (quick-scale warm runs are much faster, cold
// full-scale ones slower — the estimate only needs the right magnitude for
// a polite client backoff).
func (m *Manager) RetryAfterSeconds() int {
	if m.draining() {
		return 30
	}
	sec := 1 + int(m.queued.Load())/m.opts.Workers
	if sec > 60 {
		sec = 60
	}
	return sec
}

// Submit validates, keys, and enqueues one run request. created is false
// when an identical live or retained run absorbed the submission (the dedup
// path — no new work is scheduled). Errors wrap ErrBadRequest, ErrQueueFull,
// or ErrShuttingDown.
func (m *Manager) Submit(req RunRequest) (run *Run, created bool, err error) {
	req.Normalize()
	// %w on both operands: the HTTP layer branches on ErrBadRequest for the
	// status family and on the inner apiError for the envelope code.
	if err := req.Validate(m.ScaleNames()); err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	treq, err := req.TuneRequest()
	if err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrBadRequest, codef(CodeUnknownMethod, "%v", err))
	}
	suite, err := m.suiteFor(req.Scale)
	if err != nil {
		return nil, false, err
	}
	key, err := suite.RunKeyFor(treq)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrShuttingDown
	}
	run, created = m.reg.GetOrCreate(key, req, treq)
	if !created {
		m.deduped.Add(1)
		return run, false, nil
	}
	select {
	case m.queue <- run:
		m.queued.Add(1)
	default:
		m.reg.Remove(run)
		return nil, false, ErrQueueFull
	}
	return run, true, nil
}

// worker executes queued runs until the queue closes. During shutdown the
// remaining queued runs are cancelled instead of executed — in-flight runs
// drain, queued ones don't start.
func (m *Manager) worker() {
	defer m.wg.Done()
	for run := range m.queue {
		m.queued.Add(-1)
		if m.draining() {
			m.cancelled.Add(1)
			run.finish(StateCancelled, nil, "server shutting down before run started", time.Now())
			continue
		}
		m.execute(run)
	}
}

func (m *Manager) draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// execute runs one job end to end. RunTune recovers driver panics into
// errors, so a poisoned request fails its own run instead of killing the
// worker.
func (m *Manager) execute(run *Run) {
	if gate := m.opts.execGate; gate != nil {
		gate(run)
	}
	m.started.Add(1)
	m.active.Add(1)
	defer m.active.Add(-1)
	run.start(time.Now())

	suite, err := m.suiteFor(run.Req.Scale)
	if err != nil {
		m.failed.Add(1)
		run.finish(StateFailed, nil, err.Error(), time.Now())
		return
	}
	res, err := suite.RunTune(run.treq, run.trial)
	if err != nil {
		m.failed.Add(1)
		run.finish(StateFailed, nil, err.Error(), time.Now())
		return
	}
	m.completed.Add(1)
	run.finish(StateDone, res, "", time.Now())
}

// janitor sweeps the registry so TTL eviction happens even on an idle
// daemon (accesses also sweep; this bounds retention between accesses).
func (m *Manager) janitor() {
	interval := m.opts.TTL / 4
	if interval <= 0 {
		return
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.reg.Sweep()
			m.sessions.Sweep()
		case <-m.janitorStop:
			return
		}
	}
}

// Counters snapshots the operational counters.
func (m *Manager) Counters() Counters {
	return Counters{
		RunsStarted:   m.started.Load(),
		RunsCompleted: m.completed.Load(),
		RunsFailed:    m.failed.Load(),
		RunsCancelled: m.cancelled.Load(),
		RunsDeduped:   m.deduped.Load(),
		RunsActive:    m.active.Load(),
		RunsQueued:    m.queued.Load(),
		RunsRetained:  int64(m.reg.Len()),

		SessionsOpen:   int64(m.sessions.Len()),
		SessionsOpened: m.sessions.Opened(),
		SessionsReaped: m.sessions.Reaped(),
	}
}

// BankBuilds reports how many banks the manager's suites actually trained
// (cache hits excluded) — the number the dedup/caching tests pin to 1.
func (m *Manager) BankBuilds() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.suites {
		n += s.BankBuilds()
	}
	return n
}

// Shutdown drains the manager gracefully: no new submissions are accepted,
// queued runs are cancelled, and in-flight runs are given until ctx expires
// to complete. It returns ctx.Err() if draining did not finish in time (the
// affected runs keep executing; their results are simply not awaited).
// Concurrent and repeated calls all wait on the same drain — nil is only
// ever returned once draining has actually finished.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
		close(m.janitorStop)
		m.drainDone = make(chan struct{})
		go func(done chan struct{}) {
			// Sessions close first: each Close waits for its driver
			// goroutine, so after drain nothing references the suites.
			m.sessions.CloseAll()
			m.wg.Wait()
			close(done)
		}(m.drainDone)
	}
	done := m.drainDone
	m.mu.Unlock()

	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
