package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/exper"
	"noisyeval/internal/obs"
	"noisyeval/internal/serve/journal"
)

// Submission outcomes the HTTP layer maps to status codes.
var (
	// ErrBadRequest wraps request validation failures (HTTP 400).
	ErrBadRequest = errors.New("bad request")
	// ErrQueueFull signals backpressure: the bounded queue is at capacity
	// (HTTP 503 + Retry-After).
	ErrQueueFull = errors.New("run queue full")
	// ErrShuttingDown rejects submissions during graceful shutdown (503).
	ErrShuttingDown = errors.New("server shutting down")
	// ErrJournalFull rejects submissions when the durability journal's byte
	// budget is exhausted even after compaction — admission without a
	// durable record would silently downgrade the crash-safety contract
	// (503 + Retry-After).
	ErrJournalFull = errors.New("run journal full")
	// ErrShedCold sheds submissions that need a cold bank build while the
	// queue is under pressure, preserving capacity for warm-cache work that
	// clears quickly (503 + Retry-After).
	ErrShedCold = errors.New("queue under pressure: cold-bank submission shed")
	// ErrUnknownBank rejects a grow request whose key matches no bank any
	// scale's suite has resolved (HTTP 404).
	ErrUnknownBank = errors.New("unknown bank key")
)

// Options configures a Manager. The zero value works: quick/full scales, a
// nil (always-miss) bank store, and small defaults for pool and queue.
type Options struct {
	// Store is the shared content-addressed bank cache (nil = no cache).
	Store *core.BankStore
	// Builder, when set, overrides how suites build banks (cluster mode
	// hands the dist.Builder tier stack here: local store → warm peers →
	// coordinator-sharded fleet build). nil preserves the local path over
	// Store.
	Builder core.BankBuilder
	// Workers bounds concurrently executing runs (default 2).
	Workers int
	// QueueDepth bounds queued-but-not-running runs; a full queue rejects
	// submissions with ErrQueueFull (default 64).
	QueueDepth int
	// TTL is how long terminal runs stay fetchable and dedupable
	// (0 = default 15m; negative = retain forever).
	TTL time.Duration
	// SessionIdleTTL reaps ask/tell sessions untouched for this long
	// (0 = DefaultSessionIdleTTL; negative = never reap).
	SessionIdleTTL time.Duration
	// MaxSessions bounds concurrently retained sessions
	// (0 = DefaultMaxSessions).
	MaxSessions int
	// Scales maps scale name → suite configuration
	// (default {"quick": exper.Quick(), "full": exper.Default()}).
	Scales map[string]exper.Config

	// Journal, when set, makes the run lifecycle durable: admissions,
	// starts, and terminal transitions are journaled, recovered runs are
	// re-admitted by NewManager, and graceful shutdown parks queued runs
	// (still journaled as queued) instead of cancelling them. The manager
	// takes ownership and closes it after Shutdown drains.
	Journal *RunJournal
	// ShedColdFraction enables shed-by-class admission control: once the
	// queue holds at least ShedColdFraction × QueueDepth runs, submissions
	// that would require a cold bank build are rejected with ErrShedCold
	// while warm-cache submissions keep flowing. <= 0 disables shedding.
	ShedColdFraction float64

	// SequentialTrials disables the blocked trial scheduler for every suite
	// this manager creates (the -blocked-trials=false escape hatch).
	// Results are bit-identical either way; this only changes execution.
	SequentialTrials bool

	// ExecDelay is a fault-injection hook: each run's execution is padded
	// by this duration before the tuner starts. Oracle-backed runs finish
	// in microseconds, so crash/load harnesses (tools/crash_smoke.sh) set
	// this to hold a realistic mix of done/running/queued runs in flight
	// at kill time. Zero (the default) adds nothing.
	ExecDelay time.Duration

	// Log receives run-lifecycle events as structured lines (nil = silent).
	Log *obs.Logger
	// TraceCap bounds how many finished-run traces the manager retains for
	// GET /v1/runs/{id}/trace (0 = 1024).
	TraceCap int

	// execGate, when set, is called by a worker immediately before a run
	// executes. Test hook: lets shutdown tests hold a run in-flight
	// deterministically.
	execGate func(*Run)
}

// Counters is a snapshot of the manager's operational counters, surfaced at
// /debug/vars.
type Counters struct {
	RunsStarted   int64 `json:"runs_started"`
	RunsCompleted int64 `json:"runs_completed"`
	RunsFailed    int64 `json:"runs_failed"`
	RunsCancelled int64 `json:"runs_cancelled"`
	RunsDeduped   int64 `json:"runs_deduped"`
	RunsActive    int64 `json:"runs_active"`
	RunsQueued    int64 `json:"runs_queued"`
	RunsRetained  int64 `json:"runs_retained"`
	RunsRecovered int64 `json:"runs_recovered"` // non-terminal runs re-admitted from the journal
	RunsParked    int64 `json:"runs_parked"`    // queued runs parked (not cancelled) at shutdown
	RunsShedCold  int64 `json:"runs_shed_cold"` // cold-bank submissions shed under pressure

	SessionsOpen   int64 `json:"sessions_open"`
	SessionsOpened int64 `json:"sessions_opened"`
	SessionsReaped int64 `json:"sessions_reaped"`

	BankGrows int64 `json:"bank_grows"` // successful POST /v1/banks/{key}/grow calls
}

// Manager owns the run lifecycle: it validates and keys submissions,
// deduplicates them through the registry, and executes them on a bounded
// worker pool. All runs of one scale share one exper.Suite, so populations,
// the shared config pool, and banks are built once and reused; the suites in
// turn share Options.Store, whose singleflight GetOrBuild collapses
// concurrent bank builds across runs.
type Manager struct {
	opts     Options
	reg      *Registry
	sessions *SessionRegistry
	log      *obs.Logger

	// metrics is this manager's registry (per-manager, not process-global:
	// tests run several managers per process). NewServer's /metrics endpoint
	// serves it; the core package registry is attached so oracle trial
	// series appear alongside the serving ones.
	metrics      *obs.Registry
	admitted     *obs.Counter
	queueWaitSec *obs.Histogram
	execSec      *obs.Histogram
	journalSec   *obs.Histogram

	// traces retains run timelines for GET /v1/runs/{id}/trace, keyed by
	// run ID, bounded FIFO.
	traces *obs.TraceStore

	queue chan *Run
	wg    sync.WaitGroup // worker goroutines

	mu        sync.Mutex
	suites    map[string]*exper.Suite
	closed    bool
	drainDone chan struct{} // created by the first Shutdown, closed when drained

	janitorStop chan struct{}

	started, completed, failed, cancelled, deduped, active, queued atomic.Int64
	recovered, parked, shed, grows                                 atomic.Int64
}

// NewManager starts a manager (worker pool and TTL janitor included).
func NewManager(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.TTL == 0 {
		opts.TTL = 15 * time.Minute
	}
	if opts.SessionIdleTTL == 0 {
		opts.SessionIdleTTL = DefaultSessionIdleTTL
	}
	if opts.Scales == nil {
		opts.Scales = map[string]exper.Config{
			"quick": exper.Quick(),
			"full":  exper.Default(),
		}
	}
	m := &Manager{
		opts:        opts,
		reg:         NewRegistry(opts.TTL),
		sessions:    NewSessionRegistry(opts.SessionIdleTTL, opts.MaxSessions),
		log:         opts.Log.Named("serve"),
		metrics:     obs.NewRegistry(),
		traces:      obs.NewTraceStore(opts.TraceCap),
		suites:      map[string]*exper.Suite{},
		janitorStop: make(chan struct{}),
	}
	m.admitted = m.metrics.Counter("runs_admitted_total",
		"Runs accepted past admission control (dedups, sheds, and rejections excluded).")
	m.queueWaitSec = m.metrics.Histogram("run_queue_wait_seconds",
		"Seconds a run waited between admission and execution start.", nil)
	m.execSec = m.metrics.Histogram("run_exec_seconds",
		"Seconds executing one run (bank acquisition + trial loop + encode).", nil)
	m.journalSec = m.metrics.Histogram("journal_append_seconds",
		"Seconds appending one durable submit record.", nil)
	// Fold in the core package's oracle trial instruments so one scrape of
	// this manager's server answers both serving and hot-path questions.
	m.metrics.Attach(core.Metrics())
	// Replay the journal before anything executes: terminal runs come back
	// with their cached response bytes, non-terminal ones re-enter the queue.
	// The queue is sized to hold every recovered run on top of QueueDepth, so
	// re-admission can never block or shed work the daemon already accepted.
	pending := m.restoreFromJournal()
	m.queue = make(chan *Run, opts.QueueDepth+len(pending))
	for _, run := range pending {
		m.queue <- run
		m.queued.Add(1)
		m.recovered.Add(1)
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	go m.janitor()
	return m
}

// restoreFromJournal folds the journal's recovered runs into the registry
// and returns the non-terminal ones in submission order for re-admission.
// A recovered run whose method no longer resolves (the binary changed
// between boots) fails visibly instead of disappearing.
func (m *Manager) restoreFromJournal() []*Run {
	jr := m.opts.Journal
	if jr == nil {
		return nil
	}
	var pending []*Run
	for _, rr := range jr.Recovered() {
		treq, terr := rr.Request.TuneRequest()
		run := recoverRun(rr, treq)
		m.reg.Restore(run)
		switch {
		case rr.State.Terminal():
			// Fully reconstructed; nothing to do.
		case terr != nil:
			m.failed.Add(1)
			run.finish(StateFailed, nil, fmt.Sprintf("recovery: %v", terr), time.Now())
			m.journalTerminal(run)
		default:
			pending = append(pending, run)
		}
	}
	return pending
}

// Registry exposes the run store (handlers read it).
func (m *Manager) Registry() *Registry { return m.reg }

// Sessions exposes the session store (handlers read it).
func (m *Manager) Sessions() *SessionRegistry { return m.sessions }

// Store returns the shared bank cache (nil when none).
func (m *Manager) Store() *core.BankStore { return m.opts.Store }

// Journal returns the durability journal (nil when the daemon runs without
// one); handlers surface its stats at /debug/vars and /healthz.
func (m *Manager) Journal() *RunJournal { return m.opts.Journal }

// ScaleNames returns the accepted scale names, sorted small-to-large by
// convention ("quick" before "full" when both exist).
func (m *Manager) ScaleNames() []string {
	names := make([]string, 0, len(m.opts.Scales))
	if _, ok := m.opts.Scales["quick"]; ok {
		names = append(names, "quick")
	}
	for name := range m.opts.Scales {
		if name != "quick" {
			names = append(names, name)
		}
	}
	return names
}

// suiteFor lazily creates the shared suite for a scale.
func (m *Manager) suiteFor(scale string) (*exper.Suite, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.suites[scale]; ok {
		return s, nil
	}
	cfg, ok := m.opts.Scales[scale]
	if !ok {
		return nil, fmt.Errorf("%w: unknown scale %q", ErrBadRequest, scale)
	}
	if m.opts.SequentialTrials {
		cfg.SequentialTrials = true
	}
	s := exper.NewSuite(cfg)
	s.SetStore(m.opts.Store)
	if m.opts.Builder != nil {
		s.SetBuilder(m.opts.Builder)
	}
	m.suites[scale] = s
	return s, nil
}

// RetryAfterSeconds derives the Retry-After value for 503 responses from
// the manager's actual state instead of a constant: during drain the answer
// is "come back after a restart window"; under backpressure it estimates
// how long the backlog needs to clear one slot, assuming runs take on the
// order of a second each (quick-scale warm runs are much faster, cold
// full-scale ones slower — the estimate only needs the right magnitude for
// a polite client backoff).
func (m *Manager) RetryAfterSeconds() int {
	if m.draining() {
		return 30
	}
	sec := 1 + int(m.queued.Load())/m.opts.Workers
	if sec > 60 {
		sec = 60
	}
	return sec
}

// Submit validates, keys, and enqueues one run request. created is false
// when an identical live or retained run absorbed the submission (the dedup
// path — no new work is scheduled). Errors wrap ErrBadRequest, ErrQueueFull,
// or ErrShuttingDown.
func (m *Manager) Submit(req RunRequest) (run *Run, created bool, err error) {
	req.Normalize()
	// %w on both operands: the HTTP layer branches on ErrBadRequest for the
	// status family and on the inner apiError for the envelope code.
	if err := req.Validate(m.ScaleNames()); err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	treq, err := req.TuneRequest()
	if err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrBadRequest, codef(CodeUnknownMethod, "%v", err))
	}
	suite, err := m.suiteFor(req.Scale)
	if err != nil {
		return nil, false, err
	}
	key, err := suite.RunKeyFor(treq)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrShuttingDown
	}
	// Dedup before admission control: an identical live or retained run
	// absorbs the submission without consuming queue capacity or a journal
	// record, so retrying clients coalesce even while new work is being shed.
	if r, ok := m.reg.Lookup(key); ok {
		m.deduped.Add(1)
		return r, false, nil
	}
	// Shed by class under pressure: reject the expensive cold-bank class
	// before the warm one. A warm submission clears its worker in roughly a
	// trial's time; a cold one pins it through an entire bank build.
	if f := m.opts.ShedColdFraction; f > 0 &&
		float64(m.queued.Load()) >= f*float64(m.opts.QueueDepth) &&
		m.coldBank(suite, req.Dataset) {
		m.shed.Add(1)
		return nil, false, ErrShedCold
	}
	// Capacity check on the counter, not the channel: the channel is
	// over-sized to absorb journal-recovered runs, but new admissions are
	// still bounded by QueueDepth.
	if int(m.queued.Load()) >= m.opts.QueueDepth {
		return nil, false, ErrQueueFull
	}
	run, created = m.reg.GetOrCreate(key, req, treq)
	if !created {
		m.deduped.Add(1)
		return run, false, nil
	}
	// Admission is where a run's trace is born: every later span (queue
	// wait, bank tiers, trials, encode) lands on this timeline, retained
	// under the run ID for GET /v1/runs/{id}/trace.
	run.trace = obs.NewTrace(obs.NewTraceID())
	m.traces.Put(run.ID, run.trace)
	// Durability point: the submit record is on disk before the run is
	// queued or acknowledged — once a client holds a 202, a crash cannot
	// lose the run. Capacity was checked above under m.mu (which serializes
	// every enqueuer), so this send cannot block.
	if jr := m.opts.Journal; jr != nil {
		jstart := time.Now()
		err := jr.recordSubmit(m.reg, run)
		jdur := time.Since(jstart)
		m.journalSec.Observe(jdur.Seconds())
		run.trace.AddSpan("journal.append", jstart, jdur)
		if err != nil {
			m.reg.Remove(run)
			if errors.Is(err, journal.ErrBudget) {
				return nil, false, ErrJournalFull
			}
			return nil, false, fmt.Errorf("journal submit: %w", err)
		}
	}
	m.queue <- run
	m.queued.Add(1)
	m.admitted.Inc()
	m.log.Debug("run admitted", "run", run.ID, "trace", run.trace.ID(),
		"dataset", req.Dataset, "method", req.Method, "scale", req.Scale)
	return run, true, nil
}

// Metrics returns the manager's metrics registry (the /metrics endpoint
// source, core package series attached).
func (m *Manager) Metrics() *obs.Registry { return m.metrics }

// TraceFor returns the retained trace for a run ID, if any.
func (m *Manager) TraceFor(runID string) (*obs.Trace, bool) { return m.traces.Get(runID) }

// coldBank reports whether executing a run against dataset would require
// training a bank: not yet resolved in the suite and not present in the
// shared store. Both probes are cheap (a map lookup and a stat) — neither
// triggers a build.
func (m *Manager) coldBank(suite *exper.Suite, dataset string) bool {
	if suite.BankReady(dataset) {
		return false
	}
	return !m.opts.Store.Has(suite.BankKeyFor(dataset))
}

// worker executes queued runs until the queue closes. During shutdown the
// remaining queued runs drain without executing: with a journal they are
// parked — still queued on disk, re-admitted next boot — and without one
// they are cancelled (the pre-journal behavior, since nothing would ever
// pick them up again).
func (m *Manager) worker() {
	defer m.wg.Done()
	for run := range m.queue {
		m.queued.Add(-1)
		if m.draining() {
			if m.opts.Journal != nil {
				m.parked.Add(1)
				run.park()
				continue
			}
			m.cancelled.Add(1)
			run.finish(StateCancelled, nil, "server shutting down before run started", time.Now())
			continue
		}
		m.execute(run)
	}
}

func (m *Manager) draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// execute runs one job end to end. RunTune recovers driver panics into
// errors, so a poisoned request fails its own run instead of killing the
// worker.
func (m *Manager) execute(run *Run) {
	if gate := m.opts.execGate; gate != nil {
		gate(run)
	}
	m.started.Add(1)
	m.active.Add(1)
	defer m.active.Add(-1)
	now := time.Now()
	// Queue wait spans admission to execution start. Recovered runs keep
	// their original created time, so after a crash this honestly includes
	// the outage (their trace, though, died with the old process).
	wait := now.Sub(run.created)
	m.queueWaitSec.Observe(wait.Seconds())
	run.trace.AddSpan("queue.wait", run.created, wait)
	run.start(now)
	// Best-effort: losing a start record only costs the recovered run its
	// "running" label — it is re-admitted as queued either way.
	if jr := m.opts.Journal; jr != nil {
		_ = jr.recordStart(m.reg, run, now)
	}

	if d := m.opts.ExecDelay; d > 0 {
		time.Sleep(d)
	}

	suite, err := m.suiteFor(run.Req.Scale)
	if err != nil {
		m.finishRun(run, StateFailed, nil, err.Error(), now)
		return
	}
	ctx := obs.WithTrace(context.Background(), run.trace)
	res, err := suite.RunTuneCtx(ctx, run.treq, run.trial)
	if err != nil {
		m.finishRun(run, StateFailed, nil, err.Error(), now)
		return
	}
	m.finishRun(run, StateDone, res, "", now)
}

// finishRun drives a run to its terminal state, recording the response.encode
// span (finish marshals the terminal body exactly once), the execution
// histogram, and the terminal journal record.
func (m *Manager) finishRun(run *Run, state State, res *exper.TuneResult, errMsg string, started time.Time) {
	if state == StateDone {
		m.completed.Add(1)
	} else {
		m.failed.Add(1)
	}
	encStart := time.Now()
	run.finish(state, res, errMsg, encStart)
	run.trace.AddSpan("response.encode", encStart, time.Since(encStart))
	m.execSec.Observe(time.Since(started).Seconds())
	m.journalTerminal(run)
	if state == StateFailed {
		m.log.Warn("run failed", "run", run.ID, "err", errMsg)
	} else {
		m.log.Debug("run done", "run", run.ID, "wall", time.Since(started))
	}
}

// journalTerminal records a terminal transition and opportunistically
// compacts. Best-effort: a lost terminal record means the run re-executes
// after a crash — wasteful but correct, since re-execution is deterministic
// and the client-visible result is identical.
func (m *Manager) journalTerminal(run *Run) {
	jr := m.opts.Journal
	if jr == nil {
		return
	}
	if err := jr.recordTerminal(m.reg, run); err != nil {
		jr.logf("journal: terminal record for %s: %v", run.ID, err)
	}
	if err := jr.maybeCompact(m.reg); err != nil {
		jr.logf("journal: compact: %v", err)
	}
}

// janitor sweeps the registry so TTL eviction happens even on an idle
// daemon (accesses also sweep; this bounds retention between accesses).
func (m *Manager) janitor() {
	interval := m.opts.TTL / 4
	if interval <= 0 {
		return
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.reg.Sweep()
			m.sessions.Sweep()
			if jr := m.opts.Journal; jr != nil {
				// Compact after the sweep so evicted runs leave the
				// snapshot too — journal growth tracks retention, not
				// lifetime traffic.
				if err := jr.maybeCompact(m.reg); err != nil {
					jr.logf("journal: janitor compact: %v", err)
				}
			}
		case <-m.janitorStop:
			return
		}
	}
}

// Counters snapshots the operational counters.
func (m *Manager) Counters() Counters {
	return Counters{
		RunsStarted:   m.started.Load(),
		RunsCompleted: m.completed.Load(),
		RunsFailed:    m.failed.Load(),
		RunsCancelled: m.cancelled.Load(),
		RunsDeduped:   m.deduped.Load(),
		RunsActive:    m.active.Load(),
		RunsQueued:    m.queued.Load(),
		RunsRetained:  int64(m.reg.Len()),
		RunsRecovered: m.recovered.Load(),
		RunsParked:    m.parked.Load(),
		RunsShedCold:  m.shed.Load(),

		SessionsOpen:   int64(m.sessions.Len()),
		SessionsOpened: m.sessions.Opened(),
		SessionsReaped: m.sessions.Reaped(),

		BankGrows: m.grows.Load(),
	}
}

// GrowBank extends the served bank whose spec-level content address is key
// by add freshly sampled configs (exper.Suite.GrowBank) and reports the
// advanced address. The key must belong to a bank some scale's suite has
// already resolved — growing a bank that was never built would have to
// cold-build it first, which is the run path's job, not the grow endpoint's.
// A key matching no resolved bank wraps ErrUnknownBank.
func (m *Manager) GrowBank(key string, add int) (exper.GrowResult, error) {
	m.mu.Lock()
	suites := make([]*exper.Suite, 0, len(m.suites))
	for _, s := range m.suites {
		suites = append(suites, s)
	}
	m.mu.Unlock()
	for _, s := range suites {
		for _, ds := range exper.DatasetNames {
			if !s.BankReady(ds) || s.BankKeyFor(ds) != key {
				continue
			}
			_, res, err := s.GrowBank(ds, add)
			if err != nil {
				return exper.GrowResult{}, err
			}
			m.grows.Add(1)
			return res, nil
		}
	}
	return exper.GrowResult{}, fmt.Errorf("%w: %q", ErrUnknownBank, key)
}

// BankBuilds reports how many banks the manager's suites actually trained
// (cache hits excluded) — the number the dedup/caching tests pin to 1.
func (m *Manager) BankBuilds() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.suites {
		n += s.BankBuilds()
	}
	return n
}

// Shutdown drains the manager gracefully: no new submissions are accepted,
// queued runs are cancelled, and in-flight runs are given until ctx expires
// to complete. It returns ctx.Err() if draining did not finish in time (the
// affected runs keep executing; their results are simply not awaited).
// Concurrent and repeated calls all wait on the same drain — nil is only
// ever returned once draining has actually finished.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
		close(m.janitorStop)
		m.drainDone = make(chan struct{})
		go func(done chan struct{}) {
			// Sessions close first: each Close waits for its driver
			// goroutine, so after drain nothing references the suites.
			m.sessions.CloseAll()
			m.wg.Wait()
			// Workers are gone, so no more appends: compact the journal to
			// a tidy snapshot (terminal results plus parked queued runs)
			// and close it. The parked runs are re-admitted next boot.
			if jr := m.opts.Journal; jr != nil {
				if err := jr.maybeCompact(m.reg); err != nil {
					jr.logf("journal: shutdown compact: %v", err)
				}
				if err := jr.Close(); err != nil {
					jr.logf("journal: close: %v", err)
				}
			}
			close(done)
		}(m.drainDone)
	}
	done := m.drainDone
	m.mu.Unlock()

	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
