package serve

import (
	"sync"
	"testing"
	"time"

	"noisyeval/internal/exper"
)

// fakeClock is an injectable registry clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestRegistry(ttl time.Duration) (*Registry, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	reg := NewRegistry(ttl)
	reg.now = clk.now
	return reg, clk
}

func testReq(seed uint64) (RunRequest, exper.TuneRequest) {
	req := RunRequest{Dataset: "cifar10", Method: "rs", Trials: 2, Seed: seed, Scale: "quick"}
	treq, err := req.TuneRequest()
	if err != nil {
		panic(err)
	}
	return req, treq
}

func TestRegistryDedupAndIDs(t *testing.T) {
	reg, _ := newTestRegistry(time.Minute)
	req, treq := testReq(1)

	a, created := reg.GetOrCreate("key-a", req, treq)
	if !created || a.ID == "" {
		t.Fatalf("first GetOrCreate: created=%v id=%q", created, a.ID)
	}
	b, created := reg.GetOrCreate("key-a", req, treq)
	if created || b != a {
		t.Fatal("identical key did not dedup onto the live run")
	}
	c, created := reg.GetOrCreate("key-b", req, treq)
	if !created || c == a || c.ID == a.ID {
		t.Fatal("distinct key shared a run")
	}
	if got, ok := reg.Get(a.ID); !ok || got != a {
		t.Fatal("Get by ID failed")
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", reg.Len())
	}
}

func TestRegistryTTLEviction(t *testing.T) {
	const ttl = time.Minute
	reg, clk := newTestRegistry(ttl)
	req, treq := testReq(1)

	run, _ := reg.GetOrCreate("key", req, treq)
	run.start(clk.now())

	// Live runs are never evicted, no matter how old.
	clk.advance(100 * ttl)
	reg.Sweep()
	if _, ok := reg.Get(run.ID); !ok {
		t.Fatal("live run evicted")
	}

	// Terminal runs survive until TTL, then disappear from both indexes.
	run.finish(StateDone, nil, "", clk.now())
	clk.advance(ttl / 2)
	reg.Sweep()
	if _, ok := reg.Get(run.ID); !ok {
		t.Fatal("terminal run evicted before TTL")
	}
	if r, created := reg.GetOrCreate("key", req, treq); created || r != run {
		t.Fatal("retained terminal run did not satisfy dedup")
	}

	clk.advance(ttl)
	reg.Sweep()
	if _, ok := reg.Get(run.ID); ok {
		t.Fatal("terminal run not evicted after TTL")
	}
	if reg.Len() != 0 {
		t.Fatalf("Len = %d after eviction", reg.Len())
	}
	fresh, created := reg.GetOrCreate("key", req, treq)
	if !created || fresh == run {
		t.Fatal("evicted key did not create a fresh run")
	}
}

func TestRegistryEvictionIsLazyToo(t *testing.T) {
	// Lookups expire the run they touch on their own — eviction must not
	// depend on the janitor having fired.
	const ttl = time.Minute
	reg, clk := newTestRegistry(ttl)
	req, treq := testReq(1)
	run, _ := reg.GetOrCreate("key", req, treq)
	run.finish(StateDone, nil, "", clk.now())
	clk.advance(2 * ttl)
	if _, ok := reg.Get(run.ID); ok {
		t.Fatal("Get did not sweep the expired run")
	}
}

func TestRegistryFailedRunsDoNotDedup(t *testing.T) {
	reg, clk := newTestRegistry(time.Minute)
	req, treq := testReq(1)
	run, _ := reg.GetOrCreate("key", req, treq)
	run.finish(StateFailed, nil, "boom", clk.now())
	retry, created := reg.GetOrCreate("key", req, treq)
	if !created || retry == run {
		t.Fatal("failed run absorbed a resubmission")
	}
	if reg.Len() < 1 {
		t.Fatal("retry missing from registry")
	}
}

func TestRegistryZeroTTLRetainsForever(t *testing.T) {
	reg, clk := newTestRegistry(0)
	req, treq := testReq(1)
	run, _ := reg.GetOrCreate("key", req, treq)
	run.finish(StateDone, nil, "", clk.now())
	clk.advance(1000 * time.Hour)
	reg.Sweep()
	if _, ok := reg.Get(run.ID); !ok {
		t.Fatal("ttl ≤ 0 must retain forever")
	}
}
