package serve

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"noisyeval/internal/hpo"
)

// Server is the HTTP facade over a Manager. Routes:
//
//	POST   /v1/runs                submit a tuning job (202; 200 on a dedup hit)
//	GET    /v1/runs                list retained runs (?state=, ?limit=, ?cursor=)
//	GET    /v1/runs/{id}           run status/result (ETag + If-None-Match → 304)
//	GET    /v1/runs/{id}/events    per-trial progress stream (NDJSON; SSE via
//	                               Accept: text/event-stream)
//	GET    /v1/methods             tuning-method catalogue (names, aliases, settings)
//	POST   /v1/sessions            open an ask/tell tuner session (201)
//	GET    /v1/sessions            list open sessions
//	GET    /v1/sessions/{id}       session state, trial log, best-so-far
//	POST   /v1/sessions/{id}/ask   next suggested evaluation from the method
//	POST   /v1/sessions/{id}/tell  answer asks / evaluate caller-chosen configs
//	DELETE /v1/sessions/{id}       close a session
//	GET    /v1/banks               cached banks in the shared store
//	POST   /v1/banks/{key}/grow    extend a served bank with freshly trained
//	                               configs; the content address advances and
//	                               the old key stays valid as a store alias
//	GET    /v1/runs/{id}/trace     per-run span timeline (trace ID, queue wait,
//	                               bank tiers, worker shards, trials, encode)
//	GET    /metrics                Prometheus text exposition (counters, gauges,
//	                               latency histograms; expvar names kept as views)
//	GET    /healthz                liveness + queue depth + bank-store state
//	GET    /debug/vars             expvar counters (runs, sessions, bank cache, HTTP)
//
// Every non-2xx response carries the {"error":{"code","message"}} envelope
// (errors.go holds the code table).
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	start   time.Time
	vars    *expvar.Map // runs_*/bank_cache_*/http_* counters, JSON at /debug/vars
	inFl    atomic.Int64
	total   atomic.Int64
	maxBody int64

	varsMu    sync.Mutex
	extraVars []func(set func(name string, v int64))
}

// NewServer wires the routes for a manager.
func NewServer(m *Manager) *Server {
	s := &Server{
		mgr:     m,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		vars:    new(expvar.Map).Init(),
		maxBody: 1 << 20,
	}
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	s.mux.HandleFunc("GET /v1/methods", s.handleMethods)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionOpen)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/sessions/{id}/ask", s.handleSessionAsk)
	s.mux.HandleFunc("POST /v1/sessions/{id}/tell", s.handleSessionTell)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionClose)
	s.mux.HandleFunc("GET /v1/banks", s.handleBanks)
	s.mux.HandleFunc("POST /v1/banks/{key}/grow", s.handleBankGrow)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.registerMetricViews()
	return s
}

// registerMetricViews folds the pre-obs operational counters into the
// manager's metrics registry as read-only views: the atomics stay the single
// source of truth (expvar at /debug/vars reads the same ones), and /metrics
// renders them in Prometheus form with conventional _total suffixes.
// Registration is idempotent by name, so a second server over one manager is
// harmless.
func (s *Server) registerMetricViews() {
	reg := s.mgr.Metrics()
	m := s.mgr
	reg.CounterFunc("runs_started_total", "Runs whose execution started.", func() int64 { return m.started.Load() })
	reg.CounterFunc("runs_completed_total", "Runs finished in state done.", func() int64 { return m.completed.Load() })
	reg.CounterFunc("runs_failed_total", "Runs finished in state failed.", func() int64 { return m.failed.Load() })
	reg.CounterFunc("runs_cancelled_total", "Runs cancelled at shutdown.", func() int64 { return m.cancelled.Load() })
	reg.CounterFunc("runs_deduped_total", "Submissions absorbed by an identical run.", func() int64 { return m.deduped.Load() })
	reg.CounterFunc("runs_recovered_total", "Non-terminal runs re-admitted from the journal.", func() int64 { return m.recovered.Load() })
	reg.CounterFunc("runs_parked_total", "Queued runs parked at shutdown.", func() int64 { return m.parked.Load() })
	reg.CounterFunc("runs_shed_cold_total", "Cold-bank submissions shed under pressure.", func() int64 { return m.shed.Load() })
	reg.GaugeFunc("runs_active", "Runs currently executing.", func() int64 { return m.active.Load() })
	reg.GaugeFunc("runs_queued", "Runs waiting for a worker.", func() int64 { return m.queued.Load() })
	reg.GaugeFunc("runs_retained", "Terminal runs retained for dedup and fetch.", func() int64 { return int64(m.reg.Len()) })
	reg.GaugeFunc("sessions_open", "Ask/tell sessions currently open.", func() int64 { return int64(m.sessions.Len()) })
	reg.CounterFunc("sessions_opened_total", "Ask/tell sessions ever opened.", m.sessions.Opened)
	reg.CounterFunc("sessions_reaped_total", "Idle ask/tell sessions reaped.", m.sessions.Reaped)
	reg.CounterFunc("bank_cache_hits_total", "Bank store lookups served from disk.", func() int64 { return m.Store().Stats().Hits })
	reg.CounterFunc("bank_cache_misses_total", "Bank store lookups that missed.", func() int64 { return m.Store().Stats().Misses })
	reg.CounterFunc("bank_cache_builds_total", "Banks built and written through the store.", func() int64 { return m.Store().Stats().Builds })
	reg.CounterFunc("bank_cache_evicted_total", "Bank store entries evicted.", func() int64 { return m.Store().Stats().Evicted })
	reg.CounterFunc("bank_cache_stale_format_total", "Evictions caused by a stale on-disk format.", func() int64 { return m.Store().Stats().StaleFormat })
	reg.CounterFunc("bank_cache_corrupt_segment_total", "Evictions caused by located corruption.", func() int64 { return m.Store().Stats().CorruptSegment })
	reg.CounterFunc("bank_builds_trained_total", "Banks the suites actually trained.", m.BankBuilds)
	reg.GaugeFunc("bank_mapped_files", "Bank entries currently served via mmap.", func() int64 { return m.Store().Mapped().Files })
	reg.GaugeFunc("bank_mapped_bytes", "Total mmap-resident bank bytes.", func() int64 { return m.Store().Mapped().Bytes })
	reg.CounterFunc("bank_grow_total", "Successful bank grow operations.", func() int64 { return m.grows.Load() })
	if jr := m.Journal(); jr != nil {
		reg.GaugeFunc("journal_enabled", "1 when the run journal is active.", func() int64 { return 1 })
		reg.CounterFunc("journal_appends_total", "Journal records appended.", func() int64 { return jr.Stats().Appends })
		reg.CounterFunc("journal_compactions_total", "Journal compactions performed.", func() int64 { return jr.Stats().Compactions })
		reg.CounterFunc("journal_replayed_total", "Journal records replayed at boot.", func() int64 { return jr.Stats().Replayed })
		reg.CounterFunc("journal_torn_tail_total", "Torn WAL tails tolerated at boot.", func() int64 { return jr.Stats().TornTails })
		reg.CounterFunc("journal_dropped_records_total", "Journal records dropped over budget.", jr.Dropped)
		reg.GaugeFunc("journal_bytes", "Snapshot plus WAL bytes on disk.", func() int64 { st := jr.Stats(); return st.SnapshotBytes + st.WALBytes })
		reg.GaugeFunc("journal_snapshot_bytes", "Snapshot bytes on disk.", func() int64 { return jr.Stats().SnapshotBytes })
	} else {
		reg.GaugeFunc("journal_enabled", "1 when the run journal is active.", func() int64 { return 0 })
	}
	reg.GaugeFunc("http_requests_in_flight", "API requests currently being served.", s.inFl.Load)
	reg.CounterFunc("http_requests_total", "API requests served.", s.total.Load)
}

// handleMetrics implements GET /metrics: the manager registry (admission
// counter, latency histograms, counter views, attached core oracle series)
// in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mgr.Metrics().WritePrometheus(w)
}

// handleRunTrace implements GET /v1/runs/{id}/trace: the run's span
// timeline. A live run answers with the spans recorded so far; a recovered
// run (whose trace died with the previous process) answers an empty
// timeline rather than 404 — the run exists, its observability doesn't.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.mgr.Registry().Get(id); !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no run %q (expired or never submitted)", id)
		return
	}
	tr, _ := s.mgr.TraceFor(id) // nil Trace snapshots to an empty timeline
	writeJSON(w, http.StatusOK, tr.Snapshot())
}

// Mux exposes the server's route table so extra endpoint families (the
// dist coordinator's /v1/work/* and /v1/banks/{key} in cluster mode) can be
// mounted alongside the run API; mount before serving traffic.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// AddVars registers a counter source folded into /debug/vars on every
// request (cluster mode adds the dist coordinator's shard counters this
// way). fn receives a setter and must be safe for concurrent use.
func (s *Server) AddVars(fn func(set func(name string, v int64))) {
	s.varsMu.Lock()
	defer s.varsMu.Unlock()
	s.extraVars = append(s.extraVars, fn)
}

// ServeHTTP implements http.Handler with in-flight/total accounting.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inFl.Add(1)
	s.total.Add(1)
	defer s.inFl.Add(-1)
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // the status line is already out; nothing to do on error
}

// handleSubmit implements POST /v1/runs: decode, submit (dedup +
// backpressure live in the manager), answer with the run snapshot. A fresh
// run answers 202 + Location; a dedup hit answers 200 — with the cached
// terminal bytes when the absorbed run already finished, so identical
// submissions observe identical result bytes.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decode request: %v", err)
		return
	}
	run, created, err := s.mgr.Submit(req)
	if err != nil {
		// writeAPIError recovers the envelope code (unknown_method, queue_full,
		// …) from the wrapped error; 503s carry a state-derived Retry-After.
		s.writeAPIError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+run.ID)
	if created {
		st, _, _ := run.Snapshot()
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	st, body, etag := run.Snapshot()
	if body != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// etagMatches implements If-None-Match per RFC 9110 §13.1.2: a
// comma-separated list of entity tags (weak prefixes compare equal for GET)
// or the wildcard "*".
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// runListItem is one row of GET /v1/runs.
type runListItem struct {
	ID         string `json:"id"`
	Key        string `json:"key"`
	State      State  `json:"state"`
	Dataset    string `json:"dataset"`
	Method     string `json:"method"`
	Scale      string `json:"scale"`
	TrialsDone int    `json:"trials_done"`
	Trials     int    `json:"trials_total"`
}

// List pagination bounds.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
	cursorPrefix     = "v1:" // versioned so a future cursor shape can coexist
)

// encodeCursor renders the opaque resume cursor: the last delivered run ID,
// versioned and base64-wrapped so clients treat it as a token, not a format.
func encodeCursor(lastID string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + lastID))
}

// decodeCursor inverts encodeCursor.
func decodeCursor(c string) (lastID string, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(c)
	if err != nil || !strings.HasPrefix(string(raw), cursorPrefix) {
		return "", codef(CodeInvalidCursor, "invalid cursor %q", c)
	}
	return strings.TrimPrefix(string(raw), cursorPrefix), nil
}

// handleList implements GET /v1/runs with filtering and keyset pagination:
// ?state= keeps one lifecycle state, ?limit= bounds the page (default 100,
// cap 1000), ?cursor= resumes after the previous page's last run. Run IDs
// are assigned in increasing order and List returns them sorted, so the
// cursor is a stable keyset position: runs finishing or expiring between
// pages never shift the window, and next_cursor appears only when more
// matching runs remain.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var stateFilter State
	if v := strings.ToLower(strings.TrimSpace(q.Get("state"))); v != "" {
		switch st := State(v); st {
		case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
			stateFilter = st
		default:
			writeError(w, http.StatusBadRequest, CodeInvalidState,
				"unknown state %q (valid: queued, running, done, failed, cancelled)", v)
			return
		}
	}
	limit := defaultListLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "limit %q must be a positive integer", v)
			return
		}
		limit = min(n, maxListLimit)
	}
	after := ""
	if v := q.Get("cursor"); v != "" {
		id, err := decodeCursor(v)
		if err != nil {
			s.writeAPIError(w, err)
			return
		}
		after = id
	}

	out := make([]runListItem, 0, limit)
	more := false
	for _, run := range s.mgr.Registry().List() {
		if run.ID <= after {
			continue
		}
		st, _, _ := run.Snapshot()
		if stateFilter != "" && st.State != stateFilter {
			continue
		}
		if len(out) == limit {
			more = true
			break
		}
		out = append(out, runListItem{
			ID: st.ID, Key: st.Key, State: st.State,
			Dataset: st.Request.Dataset, Method: st.Request.Method, Scale: st.Request.Scale,
			TrialsDone: st.TrialsDone, Trials: st.TrialsTotal,
		})
	}
	resp := map[string]any{"runs": out}
	if more {
		resp["next_cursor"] = encodeCursor(out[len(out)-1].ID)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMethods implements GET /v1/methods: the canonical method catalogue —
// names, aliases, descriptions, and which Settings knobs each method reads —
// so external drivers discover what they can put in a session or run request
// without hardcoding the registry.
func (s *Server) handleMethods(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"methods": hpo.MethodInfos()})
}

// handleRun implements GET /v1/runs/{id}. Terminal runs serve their cached
// bytes under a strong ETag; If-None-Match short-circuits to 304.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.mgr.Registry().Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no run %q (expired or never submitted)", r.PathValue("id"))
		return
	}
	st, body, etag := run.Snapshot()
	if body == nil {
		writeJSON(w, http.StatusOK, st)
		return
	}
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handleEvents streams a run's event history plus live events until the
// terminal event. Default framing is NDJSON (one JSON event per line);
// Accept: text/event-stream switches to SSE. Every SSE frame carries a
// monotonically increasing "id:" line (the event's Seq), and a reconnecting
// client that sends Last-Event-ID resumes after that sequence number instead
// of replaying the whole history — the event log is append-only, so
// filtering the replay by Seq is exact. The header is honored for NDJSON
// clients too.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.mgr.Registry().Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no run %q (expired or never submitted)", r.PathValue("id"))
		return
	}
	// Resume cursor: replay only events with Seq > Last-Event-ID. Absent or
	// malformed headers replay from the start (afterSeq -1).
	afterSeq := -1
	if v := strings.TrimSpace(r.Header.Get("Last-Event-ID")); v != "" {
		if id, err := strconv.Atoi(v); err == nil && id >= 0 {
			afterSeq = id
		}
	}
	flusher, _ := w.(http.Flusher)
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)

	writeEvent := func(e Event) bool {
		if e.Seq <= afterSeq {
			return true // already delivered on a previous connection
		}
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if sse {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
		} else {
			w.Write(data)
			io.WriteString(w, "\n")
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	replay, live, cancel := run.Subscribe()
	defer cancel()
	for _, e := range replay {
		if !writeEvent(e) {
			return
		}
	}
	for {
		select {
		case e, ok := <-live:
			if !ok {
				return // terminal event delivered; stream complete
			}
			if !writeEvent(e) {
				return
			}
		case <-r.Context().Done():
			return // client went away
		}
	}
}

// bankEntry is one row of GET /v1/banks.
type bankEntry struct {
	Key     string `json:"key"`
	Bytes   int64  `json:"bytes"`
	ModTime string `json:"mod_time"`
}

func (s *Server) handleBanks(w http.ResponseWriter, r *http.Request) {
	store := s.mgr.Store()
	if store == nil {
		writeJSON(w, http.StatusOK, map[string]any{"dir": "", "banks": []bankEntry{}})
		return
	}
	entries, err := store.Entries()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "list banks: %v", err)
		return
	}
	out := make([]bankEntry, 0, len(entries))
	for _, e := range entries {
		out = append(out, bankEntry{
			Key: e.Key, Bytes: e.Bytes,
			ModTime: time.Unix(e.ModTime, 0).UTC().Format(time.RFC3339),
		})
	}
	st := store.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":   store.Dir(),
		"banks": out,
		"stats": map[string]int64{
			"hits": st.Hits, "misses": st.Misses, "builds": st.Builds,
			"evicted": st.Evicted, "stale_format": st.StaleFormat,
			"corrupt_segment": st.CorruptSegment,
		},
	})
}

// handleBankGrow implements POST /v1/banks/{key}/grow: extend the served
// bank addressed by key with {"add": n} freshly sampled configs. The grown
// bank's content address advances (returned as new_key); the old key keeps
// resolving through a store alias, so peers and clients holding it are
// unaffected. Answers 404 when no suite serves a bank under that key —
// growth never cold-builds.
func (s *Server) handleBankGrow(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Add int `json:"add"`
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decode request: %v", err)
		return
	}
	if req.Add < 1 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "add %d must be >= 1", req.Add)
		return
	}
	res, err := s.mgr.GrowBank(r.PathValue("key"), req.Add)
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownBank):
		writeError(w, http.StatusNotFound, CodeNotFound, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, "grow bank: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": res.Dataset,
		"old_key": res.OldKey,
		"new_key": res.NewKey,
		"added":   res.Added,
		"total":   res.Total,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	c := s.mgr.Counters()
	payload := map[string]any{
		"status":      "ok",
		"uptime":      time.Since(s.start).Round(time.Millisecond).String(),
		"runs_active": c.RunsActive,
		"runs_queued": c.RunsQueued,
	}
	journal := map[string]any{"enabled": false}
	if jr := s.mgr.Journal(); jr != nil {
		st := jr.Stats()
		journal["enabled"] = true
		journal["bytes"] = jr.Bytes()
		journal["max_bytes"] = jr.MaxBytes()
		if !st.LastCompact.IsZero() {
			journal["last_snapshot"] = st.LastCompact.UTC().Format(time.RFC3339Nano)
		}
	}
	payload["journal"] = journal
	banks := map[string]any{"enabled": false}
	if store := s.mgr.Store(); store != nil {
		st := store.Stats()
		ms := store.Mapped()
		banks["enabled"] = true
		banks["dir"] = store.Dir()
		banks["mapped_files"] = ms.Files
		banks["mapped_bytes"] = ms.Bytes
		banks["grows"] = c.BankGrows
		banks["corrupt_segment"] = st.CorruptSegment
	}
	payload["banks"] = banks
	writeJSON(w, http.StatusOK, payload)
}

// handleVars serves the expvar counter map. Counters are refreshed into the
// map on each request (the map is per-server, not the process-global expvar
// registry, so multiple servers — e.g. in tests — never collide).
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	c := s.mgr.Counters()
	setInt := func(name string, v int64) {
		n := new(expvar.Int)
		n.Set(v)
		s.vars.Set(name, n)
	}
	setInt("runs_started", c.RunsStarted)
	setInt("runs_completed", c.RunsCompleted)
	setInt("runs_failed", c.RunsFailed)
	setInt("runs_cancelled", c.RunsCancelled)
	setInt("runs_deduped", c.RunsDeduped)
	setInt("runs_active", c.RunsActive)
	setInt("runs_queued", c.RunsQueued)
	setInt("runs_retained", c.RunsRetained)
	setInt("runs_recovered", c.RunsRecovered)
	setInt("runs_parked", c.RunsParked)
	setInt("runs_shed_cold", c.RunsShedCold)
	if jr := s.mgr.Journal(); jr != nil {
		jst := jr.Stats()
		setInt("journal_enabled", 1)
		setInt("journal_replayed", jst.Replayed)
		setInt("journal_torn_tail", jst.TornTails)
		setInt("journal_appends", jst.Appends)
		setInt("journal_compactions", jst.Compactions)
		setInt("journal_bytes", jst.SnapshotBytes+jst.WALBytes)
		setInt("journal_snapshot_bytes", jst.SnapshotBytes)
		setInt("journal_dropped_records", jr.Dropped())
	} else {
		setInt("journal_enabled", 0)
	}
	setInt("sessions_open", c.SessionsOpen)
	setInt("sessions_opened", c.SessionsOpened)
	setInt("sessions_reaped", c.SessionsReaped)
	st := s.mgr.Store().Stats() // nil-safe: zero stats without a store
	setInt("bank_cache_hits", st.Hits)
	setInt("bank_cache_misses", st.Misses)
	setInt("bank_cache_builds", st.Builds)
	setInt("bank_cache_evicted", st.Evicted)
	setInt("bank_cache_stale_format", st.StaleFormat)
	setInt("bank_cache_corrupt_segment", st.CorruptSegment)
	setInt("bank_builds_trained", s.mgr.BankBuilds())
	ms := s.mgr.Store().Mapped() // nil-safe: zero stats without a store
	setInt("bank_mapped_files", ms.Files)
	setInt("bank_mapped_bytes", ms.Bytes)
	setInt("bank_grow_total", c.BankGrows)
	setInt("http_requests_in_flight", s.inFl.Load())
	setInt("http_requests_total", s.total.Load())
	s.varsMu.Lock()
	extra := append([]func(func(string, int64)){}, s.extraVars...)
	s.varsMu.Unlock()
	for _, fn := range extra {
		fn(setInt)
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.vars.String())
}
