package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Server is the HTTP facade over a Manager. Routes:
//
//	POST /v1/runs             submit a tuning job (202; 200 on a dedup hit)
//	GET  /v1/runs             list retained runs
//	GET  /v1/runs/{id}        run status/result (ETag + If-None-Match → 304)
//	GET  /v1/runs/{id}/events per-trial progress stream (NDJSON; SSE via
//	                          Accept: text/event-stream)
//	GET  /v1/banks            cached banks in the shared store
//	GET  /healthz             liveness + queue depth
//	GET  /debug/vars          expvar counters (runs, bank cache, HTTP)
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	start   time.Time
	vars    *expvar.Map // runs_*/bank_cache_*/http_* counters, JSON at /debug/vars
	inFl    atomic.Int64
	total   atomic.Int64
	maxBody int64

	varsMu    sync.Mutex
	extraVars []func(set func(name string, v int64))
}

// NewServer wires the routes for a manager.
func NewServer(m *Manager) *Server {
	s := &Server{
		mgr:     m,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		vars:    new(expvar.Map).Init(),
		maxBody: 1 << 20,
	}
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/banks", s.handleBanks)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	return s
}

// Mux exposes the server's route table so extra endpoint families (the
// dist coordinator's /v1/work/* and /v1/banks/{key} in cluster mode) can be
// mounted alongside the run API; mount before serving traffic.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// AddVars registers a counter source folded into /debug/vars on every
// request (cluster mode adds the dist coordinator's shard counters this
// way). fn receives a setter and must be safe for concurrent use.
func (s *Server) AddVars(fn func(set func(name string, v int64))) {
	s.varsMu.Lock()
	defer s.varsMu.Unlock()
	s.extraVars = append(s.extraVars, fn)
}

// ServeHTTP implements http.Handler with in-flight/total accounting.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inFl.Add(1)
	s.total.Add(1)
	defer s.inFl.Add(-1)
	s.mux.ServeHTTP(w, r)
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // the status line is already out; nothing to do on error
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit implements POST /v1/runs: decode, submit (dedup +
// backpressure live in the manager), answer with the run snapshot. A fresh
// run answers 202 + Location; a dedup hit answers 200 — with the cached
// terminal bytes when the absorbed run already finished, so identical
// submissions observe identical result bytes.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	run, created, err := s.mgr.Submit(req)
	switch {
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		// Retry-After tracks reality: queue-depth-derived while serving,
		// a restart window while draining (Manager.RetryAfterSeconds).
		w.Header().Set("Retry-After", strconv.Itoa(s.mgr.RetryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+run.ID)
	if created {
		st, _, _ := run.Snapshot()
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	st, body, etag := run.Snapshot()
	if body != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// etagMatches implements If-None-Match per RFC 9110 §13.1.2: a
// comma-separated list of entity tags (weak prefixes compare equal for GET)
// or the wildcard "*".
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// runListItem is one row of GET /v1/runs.
type runListItem struct {
	ID         string `json:"id"`
	Key        string `json:"key"`
	State      State  `json:"state"`
	Dataset    string `json:"dataset"`
	Method     string `json:"method"`
	Scale      string `json:"scale"`
	TrialsDone int    `json:"trials_done"`
	Trials     int    `json:"trials_total"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	runs := s.mgr.Registry().List()
	out := make([]runListItem, 0, len(runs))
	for _, run := range runs {
		st, _, _ := run.Snapshot()
		out = append(out, runListItem{
			ID: st.ID, Key: st.Key, State: st.State,
			Dataset: st.Request.Dataset, Method: st.Request.Method, Scale: st.Request.Scale,
			TrialsDone: st.TrialsDone, Trials: st.TrialsTotal,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

// handleRun implements GET /v1/runs/{id}. Terminal runs serve their cached
// bytes under a strong ETag; If-None-Match short-circuits to 304.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.mgr.Registry().Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q (expired or never submitted)", r.PathValue("id"))
		return
	}
	st, body, etag := run.Snapshot()
	if body == nil {
		writeJSON(w, http.StatusOK, st)
		return
	}
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handleEvents streams a run's event history plus live events until the
// terminal event. Default framing is NDJSON (one JSON event per line);
// Accept: text/event-stream switches to SSE. Every SSE frame carries a
// monotonically increasing "id:" line (the event's Seq), and a reconnecting
// client that sends Last-Event-ID resumes after that sequence number instead
// of replaying the whole history — the event log is append-only, so
// filtering the replay by Seq is exact. The header is honored for NDJSON
// clients too.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.mgr.Registry().Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q (expired or never submitted)", r.PathValue("id"))
		return
	}
	// Resume cursor: replay only events with Seq > Last-Event-ID. Absent or
	// malformed headers replay from the start (afterSeq -1).
	afterSeq := -1
	if v := strings.TrimSpace(r.Header.Get("Last-Event-ID")); v != "" {
		if id, err := strconv.Atoi(v); err == nil && id >= 0 {
			afterSeq = id
		}
	}
	flusher, _ := w.(http.Flusher)
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)

	writeEvent := func(e Event) bool {
		if e.Seq <= afterSeq {
			return true // already delivered on a previous connection
		}
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if sse {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
		} else {
			w.Write(data)
			io.WriteString(w, "\n")
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	replay, live, cancel := run.Subscribe()
	defer cancel()
	for _, e := range replay {
		if !writeEvent(e) {
			return
		}
	}
	for {
		select {
		case e, ok := <-live:
			if !ok {
				return // terminal event delivered; stream complete
			}
			if !writeEvent(e) {
				return
			}
		case <-r.Context().Done():
			return // client went away
		}
	}
}

// bankEntry is one row of GET /v1/banks.
type bankEntry struct {
	Key     string `json:"key"`
	Bytes   int64  `json:"bytes"`
	ModTime string `json:"mod_time"`
}

func (s *Server) handleBanks(w http.ResponseWriter, r *http.Request) {
	store := s.mgr.Store()
	if store == nil {
		writeJSON(w, http.StatusOK, map[string]any{"dir": "", "banks": []bankEntry{}})
		return
	}
	entries, err := store.Entries()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "list banks: %v", err)
		return
	}
	out := make([]bankEntry, 0, len(entries))
	for _, e := range entries {
		out = append(out, bankEntry{
			Key: e.Key, Bytes: e.Bytes,
			ModTime: time.Unix(e.ModTime, 0).UTC().Format(time.RFC3339),
		})
	}
	st := store.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":   store.Dir(),
		"banks": out,
		"stats": map[string]int64{
			"hits": st.Hits, "misses": st.Misses, "builds": st.Builds,
			"evicted": st.Evicted, "stale_format": st.StaleFormat,
		},
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	c := s.mgr.Counters()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"uptime":      time.Since(s.start).Round(time.Millisecond).String(),
		"runs_active": c.RunsActive,
		"runs_queued": c.RunsQueued,
	})
}

// handleVars serves the expvar counter map. Counters are refreshed into the
// map on each request (the map is per-server, not the process-global expvar
// registry, so multiple servers — e.g. in tests — never collide).
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	c := s.mgr.Counters()
	setInt := func(name string, v int64) {
		n := new(expvar.Int)
		n.Set(v)
		s.vars.Set(name, n)
	}
	setInt("runs_started", c.RunsStarted)
	setInt("runs_completed", c.RunsCompleted)
	setInt("runs_failed", c.RunsFailed)
	setInt("runs_cancelled", c.RunsCancelled)
	setInt("runs_deduped", c.RunsDeduped)
	setInt("runs_active", c.RunsActive)
	setInt("runs_queued", c.RunsQueued)
	setInt("runs_retained", c.RunsRetained)
	st := s.mgr.Store().Stats() // nil-safe: zero stats without a store
	setInt("bank_cache_hits", st.Hits)
	setInt("bank_cache_misses", st.Misses)
	setInt("bank_cache_builds", st.Builds)
	setInt("bank_cache_evicted", st.Evicted)
	setInt("bank_cache_stale_format", st.StaleFormat)
	setInt("bank_builds_trained", s.mgr.BankBuilds())
	setInt("http_requests_in_flight", s.inFl.Load())
	setInt("http_requests_total", s.total.Load())
	s.varsMu.Lock()
	extra := append([]func(func(string, int64)){}, s.extraVars...)
	s.varsMu.Unlock()
	for _, fn := range extra {
		fn(setInt)
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.vars.String())
}
