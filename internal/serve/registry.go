package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"noisyeval/internal/exper"
)

// Registry is the in-memory run store: runs by ID plus a dedup index by
// content-addressed run key. Terminal runs are retained for ttl after they
// finish (so clients can fetch results and identical submissions keep
// hitting the cached run), then evicted — the daemon's memory stays bounded
// under sustained traffic. Live runs are never evicted.
type Registry struct {
	ttl time.Duration
	now func() time.Time // injectable clock (tests)

	mu     sync.Mutex
	runs   map[string]*Run // by ID
	byKey  map[string]*Run // dedup index by run key
	nextID int
}

// NewRegistry creates a registry retaining terminal runs for ttl
// (non-positive ttl means retain forever).
func NewRegistry(ttl time.Duration) *Registry {
	return &Registry{
		ttl:   ttl,
		now:   time.Now,
		runs:  map[string]*Run{},
		byKey: map[string]*Run{},
	}
}

// Lookup returns the run that would absorb a submission for key — the dedup
// probe of GetOrCreate without the create half. Failed and cancelled runs do
// not satisfy it, matching GetOrCreate's retry semantics.
func (g *Registry) Lookup(key string) (*Run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.byKey[key]; ok {
		if g.expiredLocked(r) {
			g.removeLocked(r)
		} else if st := r.State(); st != StateFailed && st != StateCancelled {
			return r, true
		}
	}
	return nil, false
}

// GetOrCreate returns the live or retained run for key, or creates a fresh
// queued one. created reports whether the caller must schedule the returned
// run. Failed and cancelled runs do not satisfy dedup — an identical
// resubmission retries instead of being pinned to a stale failure.
func (g *Registry) GetOrCreate(key string, req RunRequest, treq exper.TuneRequest) (run *Run, created bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.byKey[key]; ok {
		if g.expiredLocked(r) {
			g.removeLocked(r)
		} else if st := r.State(); st != StateFailed && st != StateCancelled {
			return r, false
		}
	}
	g.nextID++
	r := newRun(fmt.Sprintf("run-%06d", g.nextID), key, req, treq, g.now())
	g.runs[r.ID] = r
	g.byKey[key] = r
	return r, true
}

// Restore re-inserts a recovered run under its original ID and bumps the ID
// counter past its numeric suffix, so fresh submissions after a restart
// never collide with recovered IDs. Called in journal order, so when two
// recovered runs share a key (a failed run plus its retry) the later one
// wins the dedup index — the same state live traffic would have left.
func (g *Registry) Restore(r *Run) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.runs[r.ID] = r
	g.byKey[r.Key] = r
	var n int
	if _, err := fmt.Sscanf(r.ID, "run-%d", &n); err == nil && n > g.nextID {
		g.nextID = n
	}
}

// Get returns the run with the given ID. An expired run is evicted on the
// spot and reported missing — TTL holds without waiting for the janitor,
// at O(1) per lookup rather than a full sweep on the read path.
func (g *Registry) Get(id string) (*Run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	if !ok {
		return nil, false
	}
	if g.expiredLocked(r) {
		g.removeLocked(r)
		return nil, false
	}
	return r, true
}

// List returns all retained runs, oldest ID first.
func (g *Registry) List() []*Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sweepLocked()
	out := make([]*Run, 0, len(g.runs))
	for _, r := range g.runs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Remove drops a run unconditionally (Submit rolls back a run it could not
// enqueue).
func (g *Registry) Remove(r *Run) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.removeLocked(r)
}

// Len returns the number of retained runs. It does not sweep — counters may
// briefly include expired runs between janitor passes.
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.runs)
}

// Sweep evicts terminal runs past their TTL. The manager's janitor calls
// this periodically; Get and GetOrCreate additionally expire the individual
// run they touch, so TTL correctness on lookups does not depend on the
// janitor cadence while reads stay O(1).
func (g *Registry) Sweep() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sweepLocked()
}

func (g *Registry) sweepLocked() {
	if g.ttl <= 0 {
		return
	}
	for _, r := range g.runs {
		if g.expiredLocked(r) {
			g.removeLocked(r)
		}
	}
}

// expiredLocked reports whether r is terminal and past its retention TTL.
func (g *Registry) expiredLocked(r *Run) bool {
	if g.ttl <= 0 {
		return false
	}
	fin := r.FinishedAt()
	return !fin.IsZero() && fin.Before(g.now().Add(-g.ttl))
}

func (g *Registry) removeLocked(r *Run) {
	delete(g.runs, r.ID)
	if g.byKey[r.Key] == r {
		delete(g.byKey, r.Key)
	}
}
