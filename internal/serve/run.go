package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"noisyeval/internal/exper"
	"noisyeval/internal/fl"
)

// State is a run's lifecycle state. Transitions form a small FSM:
//
//	queued ──▶ running ──▶ done
//	   │           └─────▶ failed
//	   └─────────────────▶ cancelled   (shutdown drains the queue)
//
// done, failed, and cancelled are terminal.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state admits no further transitions.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// TrialInfo is the payload of a "trial" event. It is a nested object (not
// flattened into Event) so its fields never carry omitempty: trial index 0
// and a 0.0 final error serialize explicitly instead of vanishing.
type TrialInfo struct {
	Index     int     `json:"index"` // which bootstrap trial finished (0-based)
	Completed int     `json:"completed"`
	Total     int     `json:"total"`
	FinalErr  float64 `json:"final_err"`
}

// Event is one progress notification on a run's event stream
// (GET /v1/runs/{id}/events, NDJSON or SSE). Streams replay the full history
// from event 0 and end after the terminal event.
type Event struct {
	Seq   int        `json:"seq"`
	Type  string     `json:"type"` // "state" | "trial"
	State State      `json:"state,omitempty"`
	Trial *TrialInfo `json:"trial,omitempty"` // set when Type == "trial"
	// Error carries the failure reason on the terminal "state" event of a
	// failed or cancelled run.
	Error string `json:"error,omitempty"`
}

// BestConfig is the wire form of a recommended configuration.
type BestConfig struct {
	Config  fl.HParams `json:"config"`
	TrueErr float64    `json:"true_err"`
	Rounds  int        `json:"rounds"`
}

// RunResult is the wire form of a completed run's outcome.
type RunResult struct {
	MedianErr    float64     `json:"median_err"`
	Q1Err        float64     `json:"q1_err"`
	Q3Err        float64     `json:"q3_err"`
	MeanErr      float64     `json:"mean_err"`
	Finals       []float64   `json:"finals"`
	BudgetRounds int         `json:"budget_rounds"`
	BankKey      string      `json:"bank_key"`
	Best         *BestConfig `json:"best,omitempty"`
}

// RunStatus is the wire form of GET /v1/runs/{id}.
type RunStatus struct {
	ID          string     `json:"id"`
	Key         string     `json:"key"`
	State       State      `json:"state"`
	Request     RunRequest `json:"request"`
	CreatedAt   string     `json:"created_at"`
	StartedAt   string     `json:"started_at,omitempty"`
	FinishedAt  string     `json:"finished_at,omitempty"`
	TrialsDone  int        `json:"trials_done"`
	TrialsTotal int        `json:"trials_total"`
	Result      *RunResult `json:"result,omitempty"`
	Error       string     `json:"error,omitempty"`
}

// Run is one submitted tuning job moving through the lifecycle FSM. All
// mutation goes through the manager; readers use Snapshot / Subscribe.
type Run struct {
	ID  string
	Key string
	Req RunRequest

	treq exper.TuneRequest // resolved at submit time

	mu         sync.Mutex
	state      State
	events     []Event
	subs       map[chan Event]struct{}
	trialsDone int
	result     *exper.TuneResult
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time
	body       []byte // terminal response bytes, marshaled exactly once
	etag       string // strong ETag over body
}

func newRun(id, key string, req RunRequest, treq exper.TuneRequest, now time.Time) *Run {
	r := &Run{
		ID: id, Key: key, Req: req, treq: treq,
		state:   StateQueued,
		subs:    map[chan Event]struct{}{},
		created: now,
	}
	r.appendEventLocked(Event{Type: "state", State: StateQueued})
	return r
}

// State returns the current lifecycle state.
func (r *Run) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// FinishedAt returns when the run reached a terminal state (zero if it has
// not); the registry's TTL eviction measures retention from this instant.
func (r *Run) FinishedAt() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finished
}

// appendEventLocked stamps, records, and broadcasts one event. Callers hold
// r.mu (newRun runs before the Run escapes its constructor). Subscriber
// channels are buffered for the run's worst-case event count, so sends never
// block; a terminal event closes every subscriber channel.
func (r *Run) appendEventLocked(e Event) {
	e.Seq = len(r.events)
	r.events = append(r.events, e)
	for ch := range r.subs {
		select {
		case ch <- e:
		default: // subscriber gave up its buffer; it still has the replay
		}
	}
	if e.Type == "state" && e.State.Terminal() {
		for ch := range r.subs {
			close(ch)
		}
		r.subs = map[chan Event]struct{}{}
	}
}

// Subscribe returns the full event history so far plus a channel of
// subsequent events; the channel is closed after the terminal event (already
// closed when the run is already terminal). cancel detaches early.
func (r *Run) Subscribe() (replay []Event, ch <-chan Event, cancel func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	replay = append([]Event(nil), r.events...)
	c := make(chan Event, r.Req.Trials+8)
	if r.state.Terminal() {
		close(c)
		return replay, c, func() {}
	}
	r.subs[c] = struct{}{}
	return replay, c, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.subs[c]; ok {
			delete(r.subs, c)
			close(c)
		}
	}
}

// start transitions queued → running.
func (r *Run) start(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = StateRunning
	r.started = now
	r.appendEventLocked(Event{Type: "state", State: StateRunning})
}

// trial records one finished bootstrap trial.
func (r *Run) trial(u exper.TrialUpdate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trialsDone = u.Completed
	r.appendEventLocked(Event{Type: "trial", Trial: &TrialInfo{
		Index: u.Trial, Completed: u.Completed, Total: u.Total, FinalErr: u.FinalTrue,
	}})
}

// finish transitions to a terminal state, marshals the response body exactly
// once, and derives the strong ETag — every later GET of this run serves
// these exact bytes, which is what makes "same result bytes" checkable for
// deduplicated submissions.
func (r *Run) finish(state State, res *exper.TuneResult, errMsg string, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state.Terminal() {
		return
	}
	r.state = state
	r.result = res
	r.errMsg = errMsg
	r.finished = now
	r.appendEventLocked(Event{Type: "state", State: state, Error: errMsg})
	// Same encoding as writeJSON (indented + newline), so live and cached
	// snapshots of one run render identically on the wire.
	body, err := json.MarshalIndent(r.statusLocked(), "", "  ")
	if err != nil { // fl.HParams and floats always marshal; defensive only
		body = []byte(fmt.Sprintf(`{"id":%q,"state":"failed","error":"encode: %v"}`, r.ID, err))
	}
	r.body = append(body, '\n')
	sum := sha256.Sum256(body)
	r.etag = `"` + hex.EncodeToString(sum[:16]) + `"`
}

// Snapshot returns the run's wire status plus, for terminal runs, the cached
// response bytes and strong ETag (nil bytes while the run is live — live
// snapshots are marshaled per request because they still change).
func (r *Run) Snapshot() (st RunStatus, body []byte, etag string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusLocked(), r.body, r.etag
}

func (r *Run) statusLocked() RunStatus {
	st := RunStatus{
		ID: r.ID, Key: r.Key, State: r.state, Request: r.Req,
		CreatedAt:   r.created.UTC().Format(time.RFC3339Nano),
		TrialsDone:  r.trialsDone,
		TrialsTotal: r.Req.Trials,
		Error:       r.errMsg,
	}
	if !r.started.IsZero() {
		st.StartedAt = r.started.UTC().Format(time.RFC3339Nano)
	}
	if !r.finished.IsZero() {
		st.FinishedAt = r.finished.UTC().Format(time.RFC3339Nano)
	}
	if res := r.result; res != nil {
		rr := &RunResult{
			MedianErr:    res.Summary.Median,
			Q1Err:        res.Summary.Q1,
			Q3Err:        res.Summary.Q3,
			MeanErr:      res.Summary.Mean,
			Finals:       res.Finals,
			BudgetRounds: res.BudgetRounds,
			BankKey:      res.BankKey,
		}
		if res.Best != nil {
			rr.Best = &BestConfig{Config: res.Best.Config, TrueErr: res.Best.True, Rounds: res.Best.Rounds}
		}
		st.Result = rr
	}
	return st
}
