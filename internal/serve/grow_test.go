package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func postGrow(t *testing.T, ts *testServer, key, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/banks/"+key+"/grow", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

func TestBankGrowEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})

	// A run resolves the dataset's bank, making it growable.
	resp, st := ts.submit(t, runBody)
	resp.Body.Close()
	ts.streamEvents(t, st.ID)

	suite, err := ts.mgr.suiteFor("quick")
	if err != nil {
		t.Fatal(err)
	}
	oldKey := suite.BankKeyFor("cifar10")

	// Validation first: a zero add and an unknown key must not grow.
	if resp, _ := postGrow(t, ts, oldKey, `{"add":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("add=0: status %d", resp.StatusCode)
	}
	if resp, _ := postGrow(t, ts, "no-such-bank", `{"add":1}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: status %d", resp.StatusCode)
	}

	resp2, raw := postGrow(t, ts, oldKey, `{"add":2}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("grow: status %d: %s", resp2.StatusCode, raw)
	}
	var res struct {
		Dataset string `json:"dataset"`
		OldKey  string `json:"old_key"`
		NewKey  string `json:"new_key"`
		Added   int    `json:"added"`
		Total   int    `json:"total"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	if res.Dataset != "cifar10" || res.Added != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.OldKey != oldKey || res.NewKey == oldKey || res.NewKey == "" {
		t.Fatalf("content address did not advance: %+v", res)
	}
	if got := suite.BankKeyFor("cifar10"); got != res.NewKey {
		t.Fatalf("suite serves key %s, grow reported %s", got, res.NewKey)
	}
	if got := len(suite.Bank("cifar10").Configs); got != res.Total {
		t.Fatalf("served bank has %d configs, grow reported %d", got, res.Total)
	}

	// The old address is spent: a second grow must use the new one.
	if resp, _ := postGrow(t, ts, oldKey, `{"add":1}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("grow via old key: status %d", resp.StatusCode)
	}
	if resp, _ := postGrow(t, ts, res.NewKey, `{"add":1}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("grow via new key: status %d", resp.StatusCode)
	}

	// Counters and health surface the growth.
	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if got, _ := vars["bank_grow_total"].(float64); got != 2 {
		t.Errorf("bank_grow_total = %v, want 2", vars["bank_grow_total"])
	}
	for _, name := range []string{"bank_mapped_files", "bank_mapped_bytes", "bank_cache_corrupt_segment"} {
		if _, ok := vars[name]; !ok {
			t.Errorf("/debug/vars missing %s", name)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Banks struct {
			Enabled bool  `json:"enabled"`
			Grows   int64 `json:"grows"`
		} `json:"banks"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.Banks.Enabled || health.Banks.Grows != 2 {
		t.Errorf("healthz banks block = %+v", health.Banks)
	}
}
