package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalReplay pins Decode's contract on arbitrary bytes: it never
// panics, the consumed length is consistent with the records it returned
// (re-encoding the intact prefix reproduces exactly the consumed bytes), and
// decoding is prefix-stable — truncating anywhere yields a prefix of the
// same record sequence. These are the properties boot-time recovery relies
// on when the WAL tail is torn by a crash. The seed corpus in
// testdata/fuzz/FuzzJournalReplay covers an intact log, torn tails at frame
// and payload boundaries, CRC flips, and pathological length fields
// (mirroring core's FuzzBankDecode corpus layout).
func FuzzJournalReplay(f *testing.F) {
	frame := func(kind string, data []byte) []byte {
		fr, err := encodeFrame(Record{Kind: kind, Data: data})
		if err != nil {
			f.Fatal(err)
		}
		return fr
	}
	valid := append(frame("submit", []byte(`{"id":"run-000001"}`)), frame("terminal", []byte(`{"state":"done"}`))...)

	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])            // torn payload
	f.Add(valid[:5])                       // torn frame header
	f.Add(append(valid, 0xFF, 0x00, 0x01)) // garbage tail
	corrupted := append([]byte(nil), valid...)
	corrupted[10] ^= 0x80 // flip a bit inside the first payload
	f.Add(corrupted)
	huge := append([]byte(nil), valid...)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F // length field past the buffer
	f.Add(huge)
	f.Add(frame("", nil)) // empty kind and payload is a legal record

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, torn := Decode(data)
		if consumed < 0 || consumed > int64(len(data)) {
			t.Fatalf("consumed %d outside [0, %d]", consumed, len(data))
		}
		if torn == (consumed == int64(len(data))) {
			t.Fatalf("torn=%v but consumed %d of %d bytes", torn, consumed, len(data))
		}
		// Re-encoding the decoded records must reproduce the consumed prefix
		// byte for byte — decode loses nothing and invents nothing.
		var re bytes.Buffer
		for _, r := range recs {
			fr, err := encodeFrame(r)
			if err != nil {
				t.Fatalf("re-encode %+v: %v", r, err)
			}
			re.Write(fr)
		}
		if !bytes.Equal(re.Bytes(), data[:consumed]) {
			t.Fatalf("re-encoded prefix differs from consumed bytes")
		}
		// Prefix stability: any truncation decodes to a prefix of recs.
		if len(data) > 0 {
			cut := len(data) / 2
			prefixRecs, prefixConsumed, _ := Decode(data[:cut])
			if prefixConsumed > int64(cut) {
				t.Fatalf("prefix consumed %d > %d", prefixConsumed, cut)
			}
			if len(prefixRecs) > len(recs) {
				t.Fatalf("prefix decoded MORE records (%d) than the full input (%d)", len(prefixRecs), len(recs))
			}
			for i := range prefixRecs {
				if prefixRecs[i].Kind != recs[i].Kind || !bytes.Equal(prefixRecs[i].Data, recs[i].Data) {
					t.Fatalf("prefix record %d diverges", i)
				}
			}
		}
	})
}
