package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs := openT(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Kind: "submit", Data: []byte(`{"id":"run-000001"}`)},
		{Kind: "start", Data: []byte(`{"id":"run-000001"}`)},
		{Kind: "terminal", Data: []byte(`{"id":"run-000001","state":"done"}`)},
		{Kind: "submit", Data: []byte{}}, // empty payloads round-trip too
	}
	for _, r := range want {
		if err := j.Append(r.Kind, r.Data); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Appends != 4 || st.Replayed != 0 {
		t.Errorf("stats = %+v", st)
	}
	j.Close()

	j2, got := openT(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if st := j2.Stats(); st.Replayed != 4 || st.TornTails != 0 {
		t.Errorf("reopen stats = %+v", st)
	}
}

func TestTornTailTruncates(t *testing.T) {
	// Three flavors of torn tail: a partial frame header, a frame whose
	// payload is cut short, and a frame whose CRC mismatches (bit rot or a
	// torn sector rewrite). Each must truncate back to the intact prefix and
	// count one torn tail — never fail the open.
	appendGarbage := []struct {
		name string
		tail func(valid []byte) []byte
	}{
		{"partial header", func(v []byte) []byte { return append(v, 0x03, 0x00) }},
		{"cut payload", func(v []byte) []byte {
			frame, _ := encodeFrame(Record{Kind: "submit", Data: []byte("payload")})
			return append(v, frame[:len(frame)-3]...)
		}},
		{"crc mismatch", func(v []byte) []byte {
			frame, _ := encodeFrame(Record{Kind: "submit", Data: []byte("payload")})
			frame[len(frame)-1] ^= 0xFF
			return append(v, frame...)
		}},
	}
	for _, tc := range appendGarbage {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := openT(t, dir)
			for i := 0; i < 3; i++ {
				if err := j.Append("submit", []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			j.Close()

			walPath := filepath.Join(dir, "wal")
			valid, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, tc.tail(valid), 0o644); err != nil {
				t.Fatal(err)
			}

			j2, recs := openT(t, dir)
			if len(recs) != 3 {
				t.Fatalf("replayed %d records, want the 3 intact ones", len(recs))
			}
			if st := j2.Stats(); st.TornTails != 1 {
				t.Errorf("torn tails = %d, want 1", st.TornTails)
			}
			// The file was physically truncated: appending and reopening
			// yields 4 clean records and no further torn tail.
			if err := j2.Append("submit", []byte{9}); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			j3, recs3 := openT(t, dir)
			if len(recs3) != 4 {
				t.Errorf("after truncate+append replayed %d, want 4", len(recs3))
			}
			if st := j3.Stats(); st.TornTails != 0 {
				t.Errorf("clean reopen counted %d torn tails", st.TornTails)
			}
		})
	}
}

func TestForeignFileRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal"), []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("open of a foreign file succeeded; want bad-magic error")
	}
}

func TestCompactShrinksAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	for i := 0; i < 100; i++ {
		if err := j.Append("submit", bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	before := j.Bytes()
	compacted := []Record{
		{Kind: "submit", Data: []byte("a")},
		{Kind: "terminal", Data: []byte("b")},
	}
	if err := j.Compact(compacted); err != nil {
		t.Fatal(err)
	}
	if after := j.Bytes(); after >= before {
		t.Errorf("compact did not shrink: %d -> %d bytes", before, after)
	}
	if st := j.Stats(); st.Compactions != 1 || st.LastCompact.IsZero() {
		t.Errorf("stats = %+v", st)
	}
	// Post-compaction appends land in the fresh WAL; replay = snapshot+WAL.
	if err := j.Append("start", []byte("c")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs := openT(t, dir)
	if len(recs) != 3 || recs[0].Kind != "submit" || recs[1].Kind != "terminal" || recs[2].Kind != "start" {
		t.Fatalf("replay after compact = %+v", recs)
	}
}

func TestBudgetBackpressure(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Options{Dir: dir, MaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var appended int
	for i := 0; i < 100; i++ {
		if err := j.Append("submit", bytes.Repeat([]byte("x"), 32)); err != nil {
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("append %d: %v", i, err)
			}
			break
		}
		appended++
	}
	if appended == 0 || appended == 100 {
		t.Fatalf("budget never engaged sensibly (appended %d)", appended)
	}
	// Compacting away the bulk restores headroom.
	if err := j.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("submit", []byte("y")); err != nil {
		t.Errorf("append after compact: %v", err)
	}
}

func TestSnapshotCrashBeforeWALTruncateDuplicates(t *testing.T) {
	// A crash between snapshot rename and WAL truncate leaves both files
	// populated. Replay must surface snapshot records first, then the stale
	// WAL records — consumers fold idempotently. Simulate by writing the
	// snapshot by hand next to a live WAL.
	dir := t.TempDir()
	j, _ := openT(t, dir)
	if err := j.Append("submit", []byte("wal-copy")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	var snap bytes.Buffer
	snap.Write(fileMagic)
	frame, _ := encodeFrame(Record{Kind: "submit", Data: []byte("snap-copy")})
	snap.Write(frame)
	if err := os.WriteFile(filepath.Join(dir, "snapshot"), snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs := openT(t, dir)
	if len(recs) != 2 || string(recs[0].Data) != "snap-copy" || string(recs[1].Data) != "wal-copy" {
		t.Fatalf("replay = %+v, want snapshot record then WAL record", recs)
	}
}
