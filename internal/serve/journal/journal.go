// Package journal is a durable, CRC-checked record log with periodic
// compacted snapshots — the persistence substrate under noisyevald's run
// registry. It is deliberately generic: records are opaque (kind, payload)
// pairs, and the serve layer owns their semantics (internal/serve's
// RunJournal folds them into run lifecycle state).
//
// Durability discipline matches core.SaveBank: snapshots are written to a
// temp file in the destination directory, fsynced, and atomically renamed;
// WAL appends are fsynced before returning (disable with Options.NoSync in
// tests). Every record frame carries a CRC-32C over its content, so a torn
// tail — a crash mid-append — is detected on open, truncated away, and
// counted, instead of poisoning the boot. Records after the first bad frame
// are discarded with it: a WAL is a prefix log, and anything past a corrupt
// frame has no trustworthy framing.
//
// On disk a journal directory holds two files:
//
//	snapshot   compacted fold of the log at the last Compact (may be absent)
//	wal        records appended since that snapshot
//
// Replay order is snapshot records then WAL records; Compact writes the new
// snapshot before truncating the WAL, so a crash between the two leaves
// both — replay then sees some records twice, which is why consumers must
// fold records idempotently (last write wins per key).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrBudget reports an append that would push the journal past
// Options.MaxBytes. The caller decides whether to compact and retry or to
// shed the work that needed the record (noisyevald turns it into 503
// backpressure).
var ErrBudget = errors.New("journal: byte budget exhausted")

// File names inside a journal directory.
const (
	snapshotName = "snapshot"
	walName      = "wal"
)

// fileMagic opens both journal files; a version byte follows so a future
// format can coexist. Files with a foreign magic are refused (not truncated:
// an operator pointing -journal-dir at the wrong directory should get an
// error, not silent data loss).
var fileMagic = []byte("NEVJRNL\x01")

// Frame layout after the file header, per record:
//
//	u32  length of kind+payload (little endian)
//	u32  CRC-32C (Castagnoli) of kind length byte + kind + payload
//	u8   kind length
//	...  kind bytes
//	...  payload bytes
const frameHeader = 4 + 4 + 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journal entry: an opaque payload tagged with a small kind
// string (the serve layer uses "submit", "start", "terminal").
type Record struct {
	Kind string
	Data []byte
}

// Options configures Open.
type Options struct {
	// Dir is the journal directory (created if missing).
	Dir string
	// MaxBytes is the hard byte budget across snapshot+WAL; appends that
	// would exceed it fail with ErrBudget (0 = 64 MiB, negative = unlimited).
	MaxBytes int64
	// NoSync skips fsync on appends and snapshots. Tests only: a kill -9
	// under NoSync may lose acknowledged records.
	NoSync bool
	// Logf, when set, receives operational log lines (torn-tail truncation,
	// compactions).
	Logf func(format string, args ...any)
}

// DefaultMaxBytes is the journal byte budget when Options.MaxBytes is 0.
const DefaultMaxBytes = 64 << 20

// Stats is a snapshot of the journal's operational counters.
type Stats struct {
	// Replayed counts records recovered at Open (snapshot + WAL).
	Replayed int64
	// TornTails counts corrupt or truncated tails dropped at Open (0 or 1
	// per file; a reopened journal starts its own count).
	TornTails int64
	// Appends counts records durably appended this process lifetime.
	Appends int64
	// Compactions counts successful Compact calls.
	Compactions int64
	// SnapshotBytes and WALBytes are the current on-disk sizes.
	SnapshotBytes int64
	WALBytes      int64
	// LastCompact is when the current snapshot was written (zero when the
	// journal has never compacted in this process and no snapshot exists).
	LastCompact time.Time
}

// Journal is an open journal directory. All methods are safe for concurrent
// use; Append ordering across goroutines is the lock-acquisition order.
type Journal struct {
	opts Options

	mu            sync.Mutex
	wal           *os.File
	walBytes      int64
	snapshotBytes int64
	appends       int64
	compactions   int64
	replayed      int64
	tornTails     int64
	lastCompact   time.Time
	closed        bool
}

func (j *Journal) logf(format string, args ...any) {
	if j.opts.Logf != nil {
		j.opts.Logf(format, args...)
	}
}

// Open opens (creating if necessary) the journal in opts.Dir and replays it:
// the returned records are the snapshot's followed by the WAL's, with any
// torn tail truncated off the files on disk before returning.
func Open(opts Options) (*Journal, []Record, error) {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{opts: opts}

	var records []Record
	for _, name := range []string{snapshotName, walName} {
		path := filepath.Join(opts.Dir, name)
		recs, goodLen, torn, err := readFile(path)
		if err != nil {
			return nil, nil, err
		}
		if torn {
			j.tornTails++
			j.logf("journal: %s: torn tail truncated to %d bytes (%d records kept)", name, goodLen, len(recs))
			if err := os.Truncate(path, goodLen); err != nil {
				return nil, nil, fmt.Errorf("journal: truncate torn %s: %w", name, err)
			}
		}
		records = append(records, recs...)
		if name == snapshotName {
			j.snapshotBytes = goodLen
		} else {
			j.walBytes = goodLen
		}
	}
	j.replayed = int64(len(records))
	if fi, err := os.Stat(filepath.Join(opts.Dir, snapshotName)); err == nil {
		j.lastCompact = fi.ModTime()
	}

	fresh := j.walBytes == 0
	wal, err := openAppend(filepath.Join(opts.Dir, walName), fresh)
	if err != nil {
		return nil, nil, err
	}
	if fresh {
		j.walBytes = int64(len(fileMagic))
	}
	j.wal = wal
	return j, records, nil
}

// openAppend opens a journal file for appending, writing the header when the
// file is empty (fresh means the readable prefix was empty — the header, if
// any, was consumed by truncation or never written).
func openAppend(path string, fresh bool) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if fresh {
		// Start over: a truncated-to-zero WAL must begin with a header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
		if _, err := f.Write(fileMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: write header: %w", err)
		}
	}
	return f, nil
}

// readFile decodes one journal file. A missing file is an empty journal.
// goodLen is the byte offset of the last intact frame's end (file header
// included); torn reports whether bytes past goodLen were dropped.
func readFile(path string) (recs []Record, goodLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("journal: %w", err)
	}
	if len(data) > 0 && len(data) < len(fileMagic) {
		// Shorter than a header: a crash during file creation. Treat the
		// whole file as a torn tail.
		return nil, 0, true, nil
	}
	if len(data) == 0 {
		return nil, 0, false, nil
	}
	if string(data[:len(fileMagic)]) != string(fileMagic) {
		return nil, 0, false, fmt.Errorf("journal: %s: not a journal file (bad magic)", path)
	}
	recs, consumed, torn := Decode(data[len(fileMagic):])
	return recs, int64(len(fileMagic)) + consumed, torn, nil
}

// Decode parses a sequence of record frames (no file header). It never
// fails: decoding stops at the first truncated or CRC-mismatching frame,
// returning the intact prefix, the number of bytes it spans, and whether
// trailing bytes were dropped. FuzzJournalReplay pins that this holds for
// arbitrary input.
func Decode(data []byte) (recs []Record, consumed int64, torn bool) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeader {
			return recs, int64(off), true
		}
		n := int(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if n < 1 || n > len(rest)-8 {
			return recs, int64(off), true
		}
		body := rest[8 : 8+n]
		if crc32.Checksum(body, castagnoli) != crc {
			return recs, int64(off), true
		}
		kindLen := int(body[0])
		if kindLen > n-1 {
			return recs, int64(off), true
		}
		recs = append(recs, Record{
			Kind: string(body[1 : 1+kindLen]),
			Data: append([]byte(nil), body[1+kindLen:]...),
		})
		off += 8 + n
	}
	return recs, int64(off), false
}

// encodeFrame renders one record frame.
func encodeFrame(r Record) ([]byte, error) {
	if len(r.Kind) > 255 {
		return nil, fmt.Errorf("journal: kind %q too long", r.Kind)
	}
	body := make([]byte, 1+len(r.Kind)+len(r.Data))
	body[0] = byte(len(r.Kind))
	copy(body[1:], r.Kind)
	copy(body[1+len(r.Kind):], r.Data)
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(body, castagnoli))
	copy(frame[8:], body)
	return frame, nil
}

// Append durably adds one record to the WAL. It returns ErrBudget when the
// journal would exceed its byte budget — the record is not written; the
// caller may Compact and retry.
func (j *Journal) Append(kind string, data []byte) error {
	frame, err := encodeFrame(Record{Kind: kind, Data: data})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if j.opts.MaxBytes > 0 && j.snapshotBytes+j.walBytes+int64(len(frame)) > j.opts.MaxBytes {
		return fmt.Errorf("%w (%d+%d bytes, budget %d)", ErrBudget, j.snapshotBytes, j.walBytes, j.opts.MaxBytes)
	}
	if _, err := j.wal.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.wal.Sync(); err != nil {
			return fmt.Errorf("journal: append sync: %w", err)
		}
	}
	j.walBytes += int64(len(frame))
	j.appends++
	return nil
}

// Compact atomically replaces the snapshot with the given records (the
// caller's compacted fold of current state) and truncates the WAL. Write
// order is snapshot-then-WAL: a crash in between leaves the old WAL records
// alongside the new snapshot, and idempotent replay absorbs the duplicates.
func (j *Journal) Compact(records []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}

	tmp, err := os.CreateTemp(j.opts.Dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	tmpPath := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if _, err := tmp.Write(fileMagic); err != nil {
		return fail(fmt.Errorf("journal: compact: %w", err))
	}
	var snapBytes = int64(len(fileMagic))
	for _, r := range records {
		frame, err := encodeFrame(r)
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(frame); err != nil {
			return fail(fmt.Errorf("journal: compact: %w", err))
		}
		snapBytes += int64(len(frame))
	}
	if !j.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			return fail(fmt.Errorf("journal: compact sync: %w", err))
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: compact: %w", err)
	}
	snapPath := filepath.Join(j.opts.Dir, snapshotName)
	if err := os.Rename(tmpPath, snapPath); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: compact: %w", err)
	}
	syncDir(j.opts.Dir, j.opts.NoSync)

	// Snapshot is durable; start a fresh WAL. Closing before reopening with
	// O_TRUNC keeps exactly one descriptor on the file.
	if err := j.wal.Close(); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	wal, err := openAppend(filepath.Join(j.opts.Dir, walName), true)
	if err != nil {
		return err
	}
	j.wal = wal
	j.walBytes = int64(len(fileMagic))
	j.snapshotBytes = snapBytes
	j.compactions++
	j.lastCompact = time.Now()
	j.logf("journal: compacted to %d records (%d snapshot bytes)", len(records), snapBytes)
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable (best effort — some filesystems refuse directory fsync).
func syncDir(dir string, noSync bool) {
	if noSync {
		return
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Bytes returns the current on-disk footprint (snapshot + WAL).
func (j *Journal) Bytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotBytes + j.walBytes
}

// WALBytes returns the WAL's current size (the compaction trigger input).
func (j *Journal) WALBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.walBytes
}

// MaxBytes returns the configured byte budget.
func (j *Journal) MaxBytes() int64 { return j.opts.MaxBytes }

// Stats snapshots the operational counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Replayed:      j.replayed,
		TornTails:     j.tornTails,
		Appends:       j.appends,
		Compactions:   j.compactions,
		SnapshotBytes: j.snapshotBytes,
		WALBytes:      j.walBytes,
		LastCompact:   j.lastCompact,
	}
}

// Close syncs and closes the WAL. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if !j.opts.NoSync {
		j.wal.Sync()
	}
	return j.wal.Close()
}
