package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	ID    int
	Event string
	Data  Event
}

// streamSSE reads the full SSE stream for a run, optionally resuming from
// lastEventID (-1 = fresh connection).
func (ts *testServer) streamSSE(t *testing.T, id string, lastEventID int) []sseFrame {
	t.Helper()
	req, _ := http.NewRequest("GET", ts.URL+"/v1/runs/"+id+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q, want text/event-stream", ct)
	}
	var frames []sseFrame
	frame := sseFrame{ID: -1}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if frame.Event != "" {
				frames = append(frames, frame)
			}
			frame = sseFrame{ID: -1}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			frame.ID = n
		case strings.HasPrefix(line, "event: "):
			frame.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &frame.Data); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames
}

// TestSSEResume pins the reconnect contract: frames carry monotonically
// increasing id: lines, and a client reconnecting with Last-Event-ID
// replays exactly the events it missed — no duplicates, no gaps.
func TestSSEResume(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	_, st := ts.submit(t, `{"dataset":"cifar10","method":"rs","trials":3,"seed":41,"noise":{"sample_count":2}}`)
	ts.streamEvents(t, st.ID) // drive to terminal

	full := ts.streamSSE(t, st.ID, -1)
	if len(full) < 3 { // queued, running, trials…, done
		t.Fatalf("only %d SSE frames", len(full))
	}
	for i, f := range full {
		if f.ID != i {
			t.Fatalf("frame %d has id %d; ids must be the event sequence", i, f.ID)
		}
		if f.Data.Seq != f.ID {
			t.Fatalf("frame %d: id %d != payload seq %d", i, f.ID, f.Data.Seq)
		}
	}
	if last := full[len(full)-1]; last.Event != "state" || !last.Data.State.Terminal() {
		t.Fatalf("stream did not end on a terminal state event: %+v", last)
	}

	// Reconnect mid-stream: everything after event 1, exactly once.
	resumed := ts.streamSSE(t, st.ID, 1)
	if want := len(full) - 2; len(resumed) != want {
		t.Fatalf("resume from id 1 replayed %d frames, want %d", len(resumed), want)
	}
	if resumed[0].ID != 2 {
		t.Fatalf("resume from id 1 started at id %d, want 2", resumed[0].ID)
	}
	for i, f := range resumed {
		if f.ID != i+2 {
			t.Fatalf("resumed frame %d has id %d, want %d", i, f.ID, i+2)
		}
	}

	// Resuming past the end yields an empty (but well-formed) stream.
	if tail := ts.streamSSE(t, st.ID, full[len(full)-1].ID); len(tail) != 0 {
		t.Fatalf("resume past terminal replayed %d frames, want 0", len(tail))
	}

	// NDJSON honors the header too.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/runs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Seq <= 1 {
			t.Fatalf("NDJSON resume replayed already-delivered seq %d", e.Seq)
		}
		n++
	}
	if want := len(full) - 2; n != want {
		t.Fatalf("NDJSON resume replayed %d events, want %d", n, want)
	}
}

// TestRetryAfterDerivedFromQueue covers the 503 backpressure path: the
// Retry-After header scales with queue depth instead of the old constant 1,
// and the draining path advertises a restart window.
func TestRetryAfterDerivedFromQueue(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 3,
		execGate:   func(*Run) { <-release },
	})
	defer once.Do(func() { close(release) })

	// Occupy the single worker first (wait for it to dequeue into the
	// gate), then fill the whole queue with distinct runs.
	resp0, _ := ts.submit(t, `{"dataset":"cifar10","method":"rs","trials":2,"seed":1}`)
	if resp0.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", resp0.StatusCode)
	}
	for deadline := time.Now().Add(5 * time.Second); ts.mgr.Counters().RunsQueued != 0; time.Sleep(time.Millisecond) {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the gated run")
		}
	}
	for seed := 2; seed <= 4; seed++ {
		resp, _ := ts.submit(t, fmt.Sprintf(`{"dataset":"cifar10","method":"rs","trials":2,"seed":%d}`, seed))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d status = %d", seed, resp.StatusCode)
		}
	}

	resp, _ := ts.submit(t, `{"dataset":"cifar10","method":"rs","trials":2,"seed":99}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit status = %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	// 3 queued runs on 1 worker → 1 + 3/1 = 4 seconds.
	if ra != 4 {
		t.Errorf("Retry-After = %d with 3 queued on 1 worker, want 4", ra)
	}

	// Drain: release the gate and shut down in the background; submissions
	// during the drain answer 503 with the restart window.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		ts.mgr.Shutdown(ctx)
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if ts.mgr.draining() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("manager never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	once.Do(func() { close(release) })

	resp2, _ := ts.submit(t, `{"dataset":"cifar10","method":"rs","trials":2,"seed":100}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status = %d, want 503", resp2.StatusCode)
	}
	if got := resp2.Header.Get("Retry-After"); got != "30" {
		t.Errorf("draining Retry-After = %q, want 30", got)
	}
}
