// Package serve turns the reproduction into a long-running tuning service:
// an HTTP/JSON API (POST /v1/runs, GET /v1/runs/{id}, streamed per-trial
// events, bank listings, health and counters) over a run manager that
// executes tuning jobs on a bounded worker pool. All runs of one scale share
// one exper.Suite — and through it one content-addressed core.BankStore — so
// bank construction is deduplicated and demand-driven, and identical run
// submissions collapse onto one run via the content-addressed run key
// (core.RunKey, the same discipline as core.BankKey).
//
// See DESIGN.md §7 for the run lifecycle, key, and backpressure model.
package serve

import (
	"strings"

	"noisyeval/internal/core"
	"noisyeval/internal/exper"
	"noisyeval/internal/hpo"
)

// Default and limit values for submitted runs.
const (
	DefaultTrials = 8
	MaxTrials     = 512
	DefaultScale  = "quick"
)

// NoiseRequest is the wire form of core.Noise.
type NoiseRequest struct {
	// SampleCount is the raw number of validation clients per evaluation
	// (0 = use SampleFraction; both 0 = full pool).
	SampleCount int `json:"sample_count,omitempty"`
	// SampleFraction is the evaluated client fraction in [0, 1].
	SampleFraction float64 `json:"sample_fraction,omitempty"`
	// Bias is the systems-heterogeneity exponent b (≥ 0).
	Bias float64 `json:"bias,omitempty"`
	// Epsilon is the total DP budget (0 = non-private).
	Epsilon float64 `json:"epsilon,omitempty"`
	// HeterogeneityP selects the bank's iid-repartition fraction p
	// (recorded partitions: 0, 0.5, 1).
	HeterogeneityP float64 `json:"heterogeneity_p,omitempty"`
	// Uniform forces uniform (non-weighted) aggregation.
	Uniform bool `json:"uniform,omitempty"`
}

// Noise converts to the experiment-facing setting.
func (n NoiseRequest) Noise() core.Noise {
	return core.Noise{
		SampleCount:    n.SampleCount,
		SampleFraction: n.SampleFraction,
		Bias:           n.Bias,
		Epsilon:        n.Epsilon,
		HeterogeneityP: n.HeterogeneityP,
		Uniform:        n.Uniform,
	}
}

// validate reports the first out-of-range noise field as a coded apiError
// (shared by run and session validation).
func (n NoiseRequest) validate() error {
	if n.SampleCount < 0 {
		return codef(CodeInvalidNoise, "noise.sample_count %d must be ≥ 0", n.SampleCount)
	}
	if n.SampleFraction < 0 || n.SampleFraction > 1 {
		return codef(CodeInvalidNoise, "noise.sample_fraction %g outside [0, 1]", n.SampleFraction)
	}
	if n.Bias < 0 {
		return codef(CodeInvalidNoise, "noise.bias %g must be ≥ 0", n.Bias)
	}
	if n.Epsilon < 0 {
		return codef(CodeInvalidNoise, "noise.epsilon %g must be ≥ 0", n.Epsilon)
	}
	// HeterogeneityP is validated downstream against the partitions the
	// suite's banks actually record — one source of truth; the manager
	// surfaces that failure as a 400 too.
	return nil
}

// RunRequest is the body of POST /v1/runs: one tuning job.
type RunRequest struct {
	// Dataset is one of exper.DatasetNames.
	Dataset string `json:"dataset"`
	// Method is a tuning-method name from hpo.Methods() (aliases accepted,
	// canonicalized before keying).
	Method string `json:"method"`
	// Scale selects the suite configuration: "quick" (default) or "full".
	Scale string `json:"scale,omitempty"`
	// Trials is the bootstrap trial count (default DefaultTrials, capped at
	// MaxTrials).
	Trials int `json:"trials,omitempty"`
	// Seed drives oracle subsampling and trial RNG streams (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Noise is the evaluation-noise setting (zero = noiseless reference).
	Noise NoiseRequest `json:"noise,omitempty"`
}

// Normalize lower-cases and canonicalizes the request in place (unknown
// names are left for Validate to report) and fills defaults. Two requests
// describing the same run normalize to the same value, which is what lets
// the run key deduplicate spelling variants ("HB" vs "hyperband").
func (r *RunRequest) Normalize() {
	r.Dataset = strings.ToLower(strings.TrimSpace(r.Dataset))
	r.Method = strings.ToLower(strings.TrimSpace(r.Method))
	if canon, err := hpo.CanonicalMethodName(r.Method); err == nil {
		r.Method = canon
	}
	if r.Scale == "" {
		r.Scale = DefaultScale
	}
	r.Scale = strings.ToLower(strings.TrimSpace(r.Scale))
	if r.Trials == 0 {
		r.Trials = DefaultTrials
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
}

// Validate reports the first problem with a normalized request as a coded
// apiError; scales lists the scale names the serving manager accepts. A nil
// error means the request can be keyed and executed.
func (r RunRequest) Validate(scales []string) error {
	if !exper.KnownDataset(r.Dataset) {
		return codef(CodeUnknownDataset, "unknown dataset %q (valid: %s)", r.Dataset, strings.Join(exper.DatasetNames, ", "))
	}
	if _, err := hpo.MethodByName(r.Method); err != nil {
		return codef(CodeUnknownMethod, "unknown method %q (valid: %s)", r.Method, strings.Join(hpo.Methods(), ", "))
	}
	if !scaleKnown(r.Scale, scales) {
		return codef(CodeUnknownScale, "unknown scale %q (valid: %s)", r.Scale, strings.Join(scales, ", "))
	}
	if r.Trials < 1 || r.Trials > MaxTrials {
		return codef(CodeInvalidTrials, "trials %d outside [1, %d]", r.Trials, MaxTrials)
	}
	return r.Noise.validate()
}

// TuneRequest converts the (normalized, validated) request to the exper
// entry-point form.
func (r RunRequest) TuneRequest() (exper.TuneRequest, error) {
	method, err := hpo.MethodByName(r.Method)
	if err != nil {
		return exper.TuneRequest{}, err
	}
	return exper.TuneRequest{
		Dataset: r.Dataset,
		Method:  method,
		Noise:   r.Noise.Noise(),
		Trials:  r.Trials,
		Seed:    r.Seed,
	}, nil
}
