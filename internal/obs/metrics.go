package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and renders them in Prometheus text
// exposition format (version 0.0.4). Registration is idempotent by name:
// asking twice for the same counter returns the same instrument, so layers
// can share a registry without coordinating init order. Kind or help
// mismatches on an existing name panic — that is a programming error, not a
// runtime condition.
type Registry struct {
	mu       sync.Mutex
	order    []metric
	byName   map[string]metric
	attached []*Registry
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

type metric interface {
	metricName() string
	writeProm(w io.Writer)
}

// Attach merges another registry into this one's exposition: the attached
// registry's metrics render after this registry's own, in attach order.
// Attaching the same registry twice is a no-op. This is how the per-process
// /metrics endpoint folds in the core-package registry and per-subsystem
// registries without a process-global.
func (r *Registry) Attach(other *Registry) {
	if r == nil || other == nil || other == r {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, a := range r.attached {
		if a == other {
			return
		}
	}
	r.attached = append(r.attached, other)
}

// register implements idempotent-by-name registration.
func (r *Registry) register(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := mk()
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// WritePrometheus renders every metric (own first, then attached
// registries) in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	own := append([]metric(nil), r.order...)
	attached := append([]*Registry(nil), r.attached...)
	r.mu.Unlock()
	for _, m := range own {
		m.writeProm(w)
	}
	for _, a := range attached {
		a.WritePrometheus(w)
	}
}

// Counter is a monotonically increasing int64. Inc/Add are a single atomic
// op — safe and cheap on hot paths.
type Counter struct {
	nm, help string
	v        atomic.Int64
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{nm: name, help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.nm }

func (c *Counter) writeProm(w io.Writer) {
	writeHeader(w, c.nm, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
}

// Gauge is a settable int64 level.
type Gauge struct {
	nm, help string
	v        atomic.Int64
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{nm: name, help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.nm }

func (g *Gauge) writeProm(w io.Writer) {
	writeHeader(w, g.nm, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.nm, g.v.Load())
}

// funcMetric exposes an externally owned value (an existing atomic counter,
// a cache stat) without copying it into the registry. This is how the
// pre-obs expvar counters become Prometheus series while staying the single
// source of truth.
type funcMetric struct {
	nm, help, kind string
	fn             func() int64
}

// CounterFunc registers a read-only counter view over fn.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	m := r.register(name, func() metric { return &funcMetric{nm: name, help: help, kind: "counter", fn: fn} })
	if _, ok := m.(*funcMetric); !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
}

// GaugeFunc registers a read-only gauge view over fn.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	m := r.register(name, func() metric { return &funcMetric{nm: name, help: help, kind: "gauge", fn: fn} })
	if _, ok := m.(*funcMetric); !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
}

// DefBuckets are latency bounds in seconds spanning warm oracle evaluations
// (tens of microseconds) through cold sharded bank builds (tens of seconds).
var DefBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free and
// allocation-free: one bucket index scan over a small bounds slice, two
// atomic adds, and a CAS loop for the float64 sum — cheap enough for the
// oracle trial loop, which the BenchmarkObsOverhead gate holds to 0
// allocs/op.
type Histogram struct {
	nm, help string
	bounds   []float64      // upper bounds, ascending; +Inf implicit
	buckets  []atomic.Int64 // len(bounds)+1, non-cumulative; cumulated at expose time
	count    atomic.Int64
	sum      atomic.Uint64 // math.Float64bits
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (nil means DefBuckets). Bounds must be
// sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, func() metric {
		bs := bounds
		if len(bs) == 0 {
			bs = DefBuckets
		}
		if !sort.Float64sAreSorted(bs) {
			panic(fmt.Sprintf("obs: histogram %q bounds not sorted", name))
		}
		own := append([]float64(nil), bs...)
		return &Histogram{nm: name, help: help, bounds: own, buckets: make([]atomic.Int64, len(own)+1)}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return h
}

// Observe records one value (typically seconds of latency).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) metricName() string { return h.nm }

func (h *Histogram) writeProm(w io.Writer) {
	writeHeader(w, h.nm, h.help, "histogram")
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.nm, formatFloat(b), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", h.nm, h.count.Load())
}

func writeHeader(w io.Writer, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (f *funcMetric) metricName() string { return f.nm }

func (f *funcMetric) writeProm(w io.Writer) {
	writeHeader(w, f.nm, f.help, f.kind)
	fmt.Fprintf(w, "%s %d\n", f.nm, f.fn())
}
