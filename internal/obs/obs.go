// Package obs is the observability core of the reproduction-turned-service:
// structured key=value logging, a metrics registry with counters, gauges, and
// fixed-bucket latency histograms exported in Prometheus text format, and
// per-run tracing with spans that propagate across the dist lease wire.
//
// The package is zero-dependency (stdlib only) and deliberately small: every
// layer of the system — core, exper, dist, serve, the cmd daemons — emits
// through it, so one grep over one line format finds any event, one /metrics
// scrape sees every counter, and one trace shows where a run spent its time.
//
// Nil-safety is a design rule, not an accident: a nil *Logger, nil *Trace,
// and nil *SpanTimer are all valid no-op receivers, so instrumented code
// paths (the bank store, the coordinator, the tuner hot loop) never branch on
// "is observability configured".
//
// See DESIGN.md §13 for the architecture, metric naming conventions, and the
// trace span inventory.
package obs
