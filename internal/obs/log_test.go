package obs

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 7, 12, 0, 0, 123456000, time.UTC)
}

func TestLoggerLineFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.setClock(fixedClock)

	l.Named("serve").Info("run admitted", "run", "run-000001", "class", "cold")
	got := buf.String()
	want := `ts=2026-08-07T12:00:00.123456Z level=info component=serve msg="run admitted" run=run-000001 class=cold` + "\n"
	if got != want {
		t.Fatalf("line mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestLoggerQuotingAndValueKinds(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.setClock(fixedClock)

	l.Error("bad things", "err", errors.New("open /tmp/x: no such file"), "count", 3, "empty", "", "eq", "a=b")
	got := buf.String()
	for _, want := range []string{
		`level=error`,
		`msg="bad things"`,
		`err="open /tmp/x: no such file"`,
		`count=3`,
		`empty=""`,
		`eq="a=b"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q missing %q", got, want)
		}
	}
}

func TestLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	if buf.Len() != 0 {
		t.Fatalf("info/debug leaked through warn gate: %q", buf.String())
	}
	l.Warn("yes")
	l.Error("yes")
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("want 2 lines, got %d: %q", n, buf.String())
	}
	// SetLevel affects derived loggers too (shared sink).
	child := l.Named("x")
	l.SetLevel(LevelDebug)
	buf.Reset()
	child.Debug("now visible")
	if !strings.Contains(buf.String(), "msg="+`"now visible"`) {
		t.Fatalf("SetLevel did not propagate to child: %q", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("ignored", "k", "v")
	l.Warn("ignored")
	l.Logf("ignored %d", 1)
	if got := l.Named("x"); got != nil {
		t.Fatalf("Named on nil = %v, want nil", got)
	}
	if got := l.With("k", "v"); got != nil {
		t.Fatalf("With on nil = %v, want nil", got)
	}
	sink := LogfSink(nil)
	sink("still callable %d", 1)
}

func TestLoggerNamedNestingAndWith(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.setClock(fixedClock)

	l.Named("serve").Named("journal").With("node", "a").Info("compacted", "bytes", 512)
	got := buf.String()
	for _, want := range []string{"component=serve.journal", "node=a", "bytes=512"} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q missing %q", got, want)
		}
	}
}

func TestLoggerOddPairs(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.Info("msg", "dangling")
	if !strings.Contains(buf.String(), "!badkey=dangling") {
		t.Fatalf("dangling key not marked: %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "WARNING": LevelWarn, "Error": LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should error")
	}
}

func TestLoggerConcurrentLinesAtomic(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Info("tick", "goroutine", n, "j", j)
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 16*50 {
		t.Fatalf("want %d lines, got %d", 16*50, len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "ts=") || !strings.Contains(ln, "msg=tick") {
			t.Fatalf("torn line: %q", ln)
		}
	}
}
