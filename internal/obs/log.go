package obs

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. The zero value is LevelInfo, so a
// zero-configured logger does the right thing.
type Level int32

const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level as it appears in log lines.
func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "debug"
	case l == LevelInfo:
		return "info"
	case l == LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel resolves a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "", "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (valid: debug, info, warn, error)", s)
}

// output is the shared sink behind a logger family: every Named/With child
// writes through the same writer, lock, and level gate.
type output struct {
	mu    sync.Mutex
	w     io.Writer
	lvl   atomic.Int32
	clock func() time.Time
}

// Logger emits structured key=value lines:
//
//	ts=2026-08-07T12:00:00.000000Z level=info component=serve msg="run admitted" run=run-000001
//
// Loggers are immutable handles over a shared sink; Named and With derive
// children cheaply. A nil *Logger is a valid no-op, so optional logging needs
// no branches at call sites.
type Logger struct {
	out       *output
	component string
	kv        []any // pre-bound alternating key/value pairs
}

// NewLogger creates a logger family writing to w at the given minimum level.
func NewLogger(w io.Writer, lvl Level) *Logger {
	out := &output{w: w, clock: time.Now}
	out.lvl.Store(int32(lvl))
	return &Logger{out: out}
}

// Nop returns a logger that discards everything (nil works too; Nop is for
// struct fields that are ranged over or compared).
func Nop() *Logger { return nil }

// SetLevel changes the family's minimum level (affects every derived logger).
func (l *Logger) SetLevel(lvl Level) {
	if l == nil || l.out == nil {
		return
	}
	l.out.lvl.Store(int32(lvl))
}

// setClock injects a deterministic time source (tests only).
func (l *Logger) setClock(clock func() time.Time) {
	if l != nil && l.out != nil {
		l.out.clock = clock
	}
}

// Named derives a child tagged with a component name; nested names join with
// a dot ("serve.journal").
func (l *Logger) Named(name string) *Logger {
	if l == nil || l.out == nil {
		return nil
	}
	c := name
	if l.component != "" {
		c = l.component + "." + name
	}
	return &Logger{out: l.out, component: c, kv: l.kv}
}

// With derives a child carrying extra key/value pairs on every line.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || l.out == nil {
		return nil
	}
	merged := append(append([]any{}, l.kv...), kv...)
	return &Logger{out: l.out, component: l.component, kv: merged}
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// Logf is the printf bridge for legacy injectable sinks (journal Logf,
// BoundCache): the formatted string becomes the msg of an info-level line.
// A nil logger's Logf is still callable as a method value would not be, so
// call sites pass l.Logf only when l is non-nil (use LogfSink for fields).
func (l *Logger) Logf(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

// LogfSink adapts a logger to the log.Printf-shaped func sinks older layers
// inject (journal Options.Logf, core.BoundCache). A nil logger yields a
// discard sink, never a nil func.
func LogfSink(l *Logger) func(format string, args ...any) {
	if l == nil || l.out == nil {
		return func(string, ...any) {}
	}
	return l.Logf
}

func (l *Logger) log(lvl Level, msg string, kv []any) {
	if l == nil || l.out == nil || lvl < Level(l.out.lvl.Load()) {
		return
	}
	var buf bytes.Buffer
	buf.WriteString("ts=")
	buf.WriteString(l.out.clock().UTC().Format("2006-01-02T15:04:05.000000Z"))
	buf.WriteString(" level=")
	buf.WriteString(lvl.String())
	if l.component != "" {
		buf.WriteString(" component=")
		writeValue(&buf, l.component)
	}
	buf.WriteString(" msg=")
	writeValue(&buf, msg)
	writePairs(&buf, l.kv)
	writePairs(&buf, kv)
	buf.WriteByte('\n')
	l.out.mu.Lock()
	l.out.w.Write(buf.Bytes())
	l.out.mu.Unlock()
}

// writePairs renders alternating key/value pairs; a dangling key gets an
// explicit marker instead of silently vanishing.
func writePairs(buf *bytes.Buffer, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		buf.WriteByte(' ')
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprintf("%v", kv[i])
		}
		buf.WriteString(key)
		buf.WriteByte('=')
		writeValue(buf, kv[i+1])
	}
	if len(kv)%2 == 1 {
		buf.WriteString(" !badkey=")
		writeValue(buf, kv[len(kv)-1])
	}
}

// writeValue renders one value, quoting strings that would break the
// key=value grammar (spaces, quotes, equals, empties).
func writeValue(buf *bytes.Buffer, v any) {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case error:
		s = x.Error()
	case fmt.Stringer:
		s = x.String()
	default:
		s = fmt.Sprintf("%v", v)
	}
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		buf.WriteString(strconv.Quote(s))
		return
	}
	buf.WriteString(s)
}
