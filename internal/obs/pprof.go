package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns a mux serving the standard net/http/pprof endpoints
// under /debug/pprof/. It is mounted on a dedicated listener (the daemons'
// -pprof-addr flag) rather than the API mux, so profiling exposure is an
// explicit operator decision.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServePprof starts the pprof handler on addr in a background goroutine and
// returns the bound address (useful with ":0").
func ServePprof(addr string, log *Logger) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	log.Info("pprof listening", "addr", ln.Addr().String())
	go func() {
		if err := http.Serve(ln, PprofHandler()); err != nil {
			log.Warn("pprof server exited", "err", err)
		}
	}()
	return ln.Addr().String(), nil
}
