package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestTraceSpansAndSnapshot(t *testing.T) {
	tr := NewTrace("abc123")
	base := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	tr.AddSpan("queue.wait", base, 5*time.Millisecond)
	tr.AddSpan("bank.lookup", base.Add(5*time.Millisecond), time.Millisecond, "key", "k1", "hit", "true")
	// Out-of-order insert: snapshot must sort by start.
	tr.AddSpan("admit", base.Add(-time.Millisecond), 100*time.Microsecond)

	v := tr.Snapshot()
	if v.TraceID != "abc123" {
		t.Fatalf("trace id = %q", v.TraceID)
	}
	if len(v.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(v.Spans))
	}
	if v.Spans[0].Name != "admit" || v.Spans[1].Name != "queue.wait" || v.Spans[2].Name != "bank.lookup" {
		t.Fatalf("span order wrong: %v %v %v", v.Spans[0].Name, v.Spans[1].Name, v.Spans[2].Name)
	}
	if v.Spans[1].DurationMS != 5 {
		t.Fatalf("queue.wait duration_ms = %v, want 5", v.Spans[1].DurationMS)
	}
	if v.Spans[2].Attrs["key"] != "k1" || v.Spans[2].Attrs["hit"] != "true" {
		t.Fatalf("attrs not folded: %v", v.Spans[2].Attrs)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.AddSpan("x", time.Now(), time.Second)
	tr.Append(Span{Name: "y"})
	tr.StartSpan("z").End()
	if tr.ID() != "" {
		t.Fatal("nil trace ID should be empty")
	}
	v := tr.Snapshot()
	if v.Spans == nil || len(v.Spans) != 0 {
		t.Fatalf("nil trace snapshot = %+v, want empty non-nil spans", v)
	}
}

func TestSpanTimer(t *testing.T) {
	tr := NewTrace("t1")
	sp := tr.StartSpan("work", "shard", "0-8")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	v := tr.Snapshot()
	if len(v.Spans) != 1 || v.Spans[0].Name != "work" {
		t.Fatalf("snapshot = %+v", v)
	}
	if v.Spans[0].DurationMS < 1 {
		t.Fatalf("duration_ms = %v, want >= 1", v.Spans[0].DurationMS)
	}
	if v.Spans[0].Attrs["shard"] != "0-8" {
		t.Fatalf("attrs = %v", v.Spans[0].Attrs)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("capped")
	for i := 0; i < maxSpansPerTrace+100; i++ {
		tr.AddSpan("s", time.Now(), 0)
	}
	if n := len(tr.Snapshot().Spans); n != maxSpansPerTrace {
		t.Fatalf("spans = %d, want capped at %d", n, maxSpansPerTrace)
	}
}

func TestWireSpansRoundTrip(t *testing.T) {
	start := time.Unix(0, 1722945600123456789)
	in := []Span{
		{Name: "shard.train", Start: start, Dur: 42 * time.Millisecond, Attrs: []string{"worker", "w1", "range", "0-32"}},
		{Name: "pop.fetch", Start: start.Add(time.Second), Dur: time.Millisecond},
	}
	enc, err := MarshalSpans(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalSpans(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("round trip lost spans: %d", len(out))
	}
	if out[0].Name != "shard.train" || !out[0].Start.Equal(start) || out[0].Dur != 42*time.Millisecond {
		t.Fatalf("span 0 mismatch: %+v", out[0])
	}
	want := map[string]string{"worker": "w1", "range": "0-32"}
	got := map[string]string{}
	for i := 0; i+1 < len(out[0].Attrs); i += 2 {
		got[out[0].Attrs[i]] = out[0].Attrs[i+1]
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("attr %s = %q, want %q", k, got[k], v)
		}
	}
	if spans, err := UnmarshalSpans(""); err != nil || spans != nil {
		t.Fatalf("empty header: %v, %v", spans, err)
	}
	if _, err := UnmarshalSpans("{notjson"); err == nil {
		t.Fatal("garbage header should error")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTrace("ctx1")
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("empty ctx yielded %v", got)
	}
	if got := TraceFrom(nil); got != nil { //nolint:staticcheck // nil ctx tolerance is the point
		t.Fatalf("nil ctx yielded %v", got)
	}
	if ctx2 := WithTrace(context.Background(), nil); TraceFrom(ctx2) != nil {
		t.Fatal("nil trace should not be stored")
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || a == b {
		t.Fatalf("trace IDs: %q, %q", a, b)
	}
}

func TestTraceStore(t *testing.T) {
	s := NewTraceStore(3)
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("run-%d", i), NewTrace(fmt.Sprintf("t%d", i)))
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	if _, ok := s.Get("run-0"); ok {
		t.Fatal("run-0 should have been evicted")
	}
	if tr, ok := s.Get("run-4"); !ok || tr.ID() != "t4" {
		t.Fatalf("run-4 missing or wrong: %v %v", tr, ok)
	}
	// Re-put refreshes position: run-2 survives the next eviction.
	tr2, _ := s.Get("run-2")
	s.Put("run-2", tr2)
	s.Put("run-5", NewTrace("t5"))
	if _, ok := s.Get("run-2"); !ok {
		t.Fatal("refreshed run-2 evicted")
	}
	if _, ok := s.Get("run-3"); ok {
		t.Fatal("run-3 should have been evicted after refresh")
	}

	var nilStore *TraceStore
	nilStore.Put("x", NewTrace("x"))
	if _, ok := nilStore.Get("x"); ok || nilStore.Len() != 0 {
		t.Fatal("nil store should be inert")
	}
}
