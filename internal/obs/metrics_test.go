package obs

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition: metric names,
// HELP/TYPE lines, ordering, histogram bucket rendering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_admitted_total", "Runs accepted past admission control.")
	c.Add(3)
	g := r.Gauge("runs_active", "Runs currently executing.")
	g.Set(2)
	r.GaugeFunc("queue_depth", "Queued runs.", func() int64 { return 7 })
	h := r.Histogram("op_seconds", "Operation latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // le=0.01
	h.Observe(0.05)  // le=0.1
	h.Observe(0.05)  // le=0.1
	h.Observe(5)     // +Inf

	var buf bytes.Buffer
	r.WritePrometheus(&buf)

	want := strings.Join([]string{
		"# HELP runs_admitted_total Runs accepted past admission control.",
		"# TYPE runs_admitted_total counter",
		"runs_admitted_total 3",
		"# HELP runs_active Runs currently executing.",
		"# TYPE runs_active gauge",
		"runs_active 2",
		"# HELP queue_depth Queued runs.",
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"# HELP op_seconds Operation latency.",
		"# TYPE op_seconds histogram",
		`op_seconds_bucket{le="0.01"} 1`,
		`op_seconds_bucket{le="0.1"} 3`,
		`op_seconds_bucket{le="1"} 3`,
		`op_seconds_bucket{le="+Inf"} 4`,
		"op_seconds_sum 5.105",
		"op_seconds_count 4",
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketMonotonicity checks cumulative buckets never decrease
// and the +Inf bucket equals the count, across a spread of observations.
func TestHistogramBucketMonotonicity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", nil) // DefBuckets
	vals := []float64{1e-7, 3e-5, 0.0007, 0.004, 0.09, 0.9, 3, 42}
	for _, v := range vals {
		h.Observe(v)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)

	var prev, inf int64 = -1, -1
	count := int64(-1)
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "lat_seconds_bucket"):
			f := strings.Fields(line)
			n, err := strconv.ParseInt(f[len(f)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if n < prev {
				t.Fatalf("bucket count decreased: %q after %d", line, prev)
			}
			prev = n
			if strings.Contains(line, `le="+Inf"`) {
				inf = n
			}
		case strings.HasPrefix(line, "lat_seconds_count"):
			f := strings.Fields(line)
			count, _ = strconv.ParseInt(f[len(f)-1], 10, 64)
		}
	}
	if inf != int64(len(vals)) || count != int64(len(vals)) {
		t.Fatalf("+Inf bucket %d / count %d, want both %d", inf, count, len(vals))
	}
	if h.Sum() < 45.9 || h.Sum() > 46.1 {
		t.Fatalf("sum = %v, want ~45.99", h.Sum())
	}
}

// TestRegistryIdempotentAndAttach: same-name registration returns the same
// instrument; Attach folds another registry into exposition exactly once.
func TestRegistryIdempotentAndAttach(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "different help ignored")
	if a != b {
		t.Fatal("same-name Counter returned distinct instruments")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments not shared")
	}

	other := NewRegistry()
	other.Counter("y_total", "y").Add(5)
	r.Attach(other)
	r.Attach(other) // idempotent
	r.Attach(r)     // self-attach ignored
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if got := strings.Count(buf.String(), "y_total 5"); got != 1 {
		t.Fatalf("attached metric rendered %d times, want 1:\n%s", got, buf.String())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("Gauge over existing Counter name should panic")
		}
	}()
	r.Gauge("m", "")
}

// TestMetricsConcurrent hammers counters and histograms from 64 goroutines;
// run under -race this is the data-race gate, and the totals check catches
// lost updates.
func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("lat_seconds", "", nil)

	const goroutines = 64
	const perG = 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j%100) * 1e-4)
				if j%50 == 0 {
					var buf bytes.Buffer
					r.WritePrometheus(&buf) // concurrent scrape
				}
			}
		}(i)
	}
	wg.Wait()

	if c.Value() != goroutines*perG {
		t.Fatalf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	// Sum of j%100 * 1e-4 over perG iterations, per goroutine.
	var per float64
	for j := 0; j < perG; j++ {
		per += float64(j%100) * 1e-4
	}
	want := per * goroutines
	if diff := h.Sum() - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("histogram sum = %v, want %v (lost CAS updates?)", h.Sum(), want)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", nil)
	c := r.Counter("n_total", "")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.0123)
		c.Inc()
	})
	if allocs != 0 {
		t.Fatalf("Observe+Inc allocates %v/op, want 0", allocs)
	}
}
