package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// HTTP header names carrying trace context across the dist lease wire: the
// coordinator hands workers the trace ID with each leased job, and workers
// return their shard spans on completion so they attach to the build's
// trace on the coordinator.
const (
	TraceIDHeader    = "X-Trace-Id"
	TraceSpansHeader = "X-Trace-Spans"
)

// Span is one timed phase of a run or build. Attrs alternate key, value —
// the same convention as Logger pairs — so recording a span on the hot path
// allocates nothing beyond the variadic slice the caller already builds.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration
	Attrs []string
}

// Trace accumulates the spans of one run under a single trace ID. All
// methods are safe for concurrent use and nil-safe: instrumented paths that
// sometimes run without a trace (recovered runs, CLI tools) need no guards.
type Trace struct {
	id string

	mu    sync.Mutex
	spans []Span
}

// maxSpansPerTrace bounds a single trace's memory; past it, spans drop.
const maxSpansPerTrace = 512

// NewTrace creates a trace with the given ID (NewTraceID() for a fresh one).
func NewTrace(id string) *Trace { return &Trace{id: id} }

// NewTraceID returns a 16-byte random hex trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure means the process is in a bad way; a
		// constant ID keeps tracing functional rather than panicking.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace ID ("" for nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// AddSpan records a completed span.
func (t *Trace) AddSpan(name string, start time.Time, dur time.Duration, attrs ...string) {
	if t == nil {
		return
	}
	t.append(Span{Name: name, Start: start, Dur: dur, Attrs: attrs})
}

// Append attaches already-built spans (e.g. spans unmarshalled from a
// worker's X-Trace-Spans header).
func (t *Trace) Append(spans ...Span) {
	if t == nil {
		return
	}
	for _, s := range spans {
		t.append(s)
	}
}

func (t *Trace) append(s Span) {
	t.mu.Lock()
	if len(t.spans) < maxSpansPerTrace {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// SpanTimer is an in-progress span; End records it. A nil timer's End is a
// no-op, so `defer t.StartSpan("x").End()` works with a nil trace.
type SpanTimer struct {
	t     *Trace
	name  string
	start time.Time
	attrs []string
}

// StartSpan begins a span now; call End on the returned timer.
func (t *Trace) StartSpan(name string, attrs ...string) *SpanTimer {
	if t == nil {
		return nil
	}
	return &SpanTimer{t: t, name: name, start: time.Now(), attrs: attrs}
}

// End completes the span and records it on the trace.
func (s *SpanTimer) End() {
	if s == nil {
		return
	}
	s.t.AddSpan(s.name, s.start, time.Since(s.start), s.attrs...)
}

// SpanView is the JSON shape of one span as served by /v1/runs/{id}/trace.
type SpanView struct {
	Name       string            `json:"name"`
	Start      string            `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceView is the JSON shape of a full trace timeline.
type TraceView struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanView `json:"spans"`
}

// Snapshot renders the trace for serving: spans sorted by start time,
// attrs folded into maps. Safe on nil (empty view).
func (t *Trace) Snapshot() TraceView {
	v := TraceView{Spans: []SpanView{}}
	if t == nil {
		return v
	}
	v.TraceID = t.id
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	for _, s := range spans {
		sv := SpanView{
			Name:       s.Name,
			Start:      s.Start.UTC().Format(time.RFC3339Nano),
			DurationMS: float64(s.Dur) / float64(time.Millisecond),
		}
		if len(s.Attrs) >= 2 {
			sv.Attrs = make(map[string]string, len(s.Attrs)/2)
			for i := 0; i+1 < len(s.Attrs); i += 2 {
				sv.Attrs[s.Attrs[i]] = s.Attrs[i+1]
			}
		}
		v.Spans = append(v.Spans, sv)
	}
	return v
}

// wireSpan is the JSON encoding of a span inside the X-Trace-Spans header.
type wireSpan struct {
	Name      string            `json:"name"`
	StartUnix int64             `json:"start_unix_nano"`
	DurNanos  int64             `json:"dur_nanos"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// MarshalSpans encodes spans for the X-Trace-Spans header (compact JSON —
// header-safe because JSON strings escape control characters).
func MarshalSpans(spans []Span) (string, error) {
	ws := make([]wireSpan, 0, len(spans))
	for _, s := range spans {
		w := wireSpan{Name: s.Name, StartUnix: s.Start.UnixNano(), DurNanos: int64(s.Dur)}
		if len(s.Attrs) >= 2 {
			w.Attrs = make(map[string]string, len(s.Attrs)/2)
			for i := 0; i+1 < len(s.Attrs); i += 2 {
				w.Attrs[s.Attrs[i]] = s.Attrs[i+1]
			}
		}
		ws = append(ws, w)
	}
	b, err := json.Marshal(ws)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// UnmarshalSpans decodes an X-Trace-Spans header value.
func UnmarshalSpans(s string) ([]Span, error) {
	if s == "" {
		return nil, nil
	}
	var ws []wireSpan
	if err := json.Unmarshal([]byte(s), &ws); err != nil {
		return nil, err
	}
	spans := make([]Span, 0, len(ws))
	for _, w := range ws {
		sp := Span{Name: w.Name, Start: time.Unix(0, w.StartUnix), Dur: time.Duration(w.DurNanos)}
		if len(w.Attrs) > 0 {
			keys := make([]string, 0, len(w.Attrs))
			for k := range w.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				sp.Attrs = append(sp.Attrs, k, w.Attrs[k])
			}
		}
		spans = append(spans, sp)
	}
	return spans, nil
}

// ctxKey is the context key for trace propagation.
type ctxKey struct{}

// WithTrace returns a context carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom extracts the trace from ctx (nil when absent — every Trace
// method tolerates that).
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// TraceStore retains finished-run traces FIFO up to a cap, so
// /v1/runs/{id}/trace can serve timelines after runs complete without
// unbounded growth.
type TraceStore struct {
	mu    sync.Mutex
	max   int
	m     map[string]*Trace
	order []string
}

// NewTraceStore creates a store bounded to max traces (<=0 means 1024).
func NewTraceStore(max int) *TraceStore {
	if max <= 0 {
		max = 1024
	}
	return &TraceStore{max: max, m: make(map[string]*Trace)}
}

// Put stores t under key, evicting the oldest entries past the cap.
// Re-putting an existing key refreshes its position.
func (s *TraceStore) Put(key string, t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		for i, k := range s.order {
			if k == key {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.m[key] = t
	s.order = append(s.order, key)
	for len(s.order) > s.max {
		delete(s.m, s.order[0])
		s.order = s.order[1:]
	}
}

// Get returns the trace stored under key, if any.
func (s *TraceStore) Get(key string) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.m[key]
	return t, ok
}

// Len returns the number of retained traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
