package eval

import (
	"testing"

	"noisyeval/internal/dp"
	"noisyeval/internal/rng"
)

// multiSchemes spans every kernel path: full pool, uniform subsample, biased
// subsample, DP over each, weighted and unweighted aggregation.
func multiSchemes() map[string]Scheme {
	return map[string]Scheme{
		"full":          {Weighted: true},
		"full-unw":      {},
		"uniform":       {Count: 10, Weighted: true},
		"uniform-unw":   {Count: 10},
		"fraction":      {Fraction: 0.25, Weighted: true},
		"biased":        {Count: 10, Bias: 2, Weighted: true},
		"biased-full-k": {Count: 0, Bias: 0.5},
		"dp-uniform":    {Count: 10, DP: dp.Params{Epsilon: 1, TotalEvals: 50}},
		"dp-biased":     {Count: 10, Bias: 1, DP: dp.Params{Epsilon: 1, TotalEvals: 50}},
		"dp-full":       {DP: dp.Params{Epsilon: 1, TotalEvals: 50}},
	}
}

func multiRow(n int, g *rng.RNG) []float64 {
	errs := make([]float64, n)
	for i := range errs {
		errs[i] = g.Float64()
	}
	return errs
}

// TestEvaluateMultiMatchesEvaluate pins the tentpole parity claim at the
// kernel level: EvaluateMulti over a seed batch is bit-identical to one
// Evaluate per seed on a freshly seeded stream, for every sampling scheme.
func TestEvaluateMultiMatchesEvaluate(t *testing.T) {
	const n = 40
	cnt := counts(n, 7)
	for name, scheme := range multiSchemes() {
		t.Run(name, func(t *testing.T) {
			e, err := New(cnt, scheme)
			if err != nil {
				t.Fatal(err)
			}
			errs := multiRow(n, rng.New(7).Split("row"))
			seeds := make([]uint64, 33)
			for i := range seeds {
				seeds[i] = uint64(1000 + i*i*7919)
			}
			var ms MultiScratch
			got := e.EvaluateMulti(errs, seeds, &ms)
			if len(got) != len(seeds) {
				t.Fatalf("got %d results, want %d", len(got), len(seeds))
			}
			for c, seed := range seeds {
				want := e.Evaluate(errs, rng.New(seed))
				if got[c].Observed != want.Observed || got[c].Sampled != want.Sampled {
					t.Fatalf("cohort %d (seed %d): got (%v, %v), want (%v, %v)",
						c, seed, got[c].Observed, got[c].Sampled, want.Observed, want.Sampled)
				}
			}
			// A second sweep through the same scratch must see the restored
			// identity permutation, not the residue of the first.
			again := e.EvaluateMulti(errs, seeds[:5], &ms)
			for c := range again {
				want := e.Evaluate(errs, rng.New(seeds[c]))
				if again[c].Observed != want.Observed {
					t.Fatalf("reused scratch cohort %d: got %v, want %v", c, again[c].Observed, want.Observed)
				}
			}
		})
	}
}

// TestEvaluateMultiNilScratch covers the allocate-per-call form.
func TestEvaluateMultiNilScratch(t *testing.T) {
	e := MustNew(counts(20, 3), Scheme{Count: 5})
	errs := multiRow(20, rng.New(3))
	got := e.EvaluateMulti(errs, []uint64{11, 12}, nil)
	for c, seed := range []uint64{11, 12} {
		want := e.Evaluate(errs, rng.New(seed))
		if got[c].Observed != want.Observed {
			t.Fatalf("cohort %d: got %v, want %v", c, got[c].Observed, want.Observed)
		}
	}
}

// TestEvaluateMultiAllocationFree pins the steady-state allocation contract
// of the row-sweep kernel for the schemes the bank oracle serves.
func TestEvaluateMultiAllocationFree(t *testing.T) {
	const n = 100
	cnt := counts(n, 5)
	seeds := make([]uint64, 64)
	for i := range seeds {
		seeds[i] = uint64(i * 2654435761)
	}
	for name, scheme := range map[string]Scheme{
		"uniform": {Count: 10, Weighted: true},
		"full":    {Weighted: true},
		"biased":  {Count: 10, Bias: 2, Weighted: true},
	} {
		t.Run(name, func(t *testing.T) {
			e := MustNew(cnt, scheme)
			errs := multiRow(n, rng.New(9))
			var ms MultiScratch
			e.EvaluateMulti(errs, seeds, &ms) // warm the buffers
			allocs := testing.AllocsPerRun(20, func() {
				e.EvaluateMulti(errs, seeds, &ms)
			})
			if allocs != 0 {
				t.Fatalf("EvaluateMulti allocated %v times per sweep, want 0", allocs)
			}
		})
	}
}
