package eval

import (
	"fmt"
	"math"

	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// MultiScratch holds the reusable state of a blocked evaluation sweep:
// repeated EvaluateMulti calls through the same scratch allocate nothing once
// the buffers have grown to the pool size. A scratch belongs to one goroutine
// at a time (the block scheduler gives each worker its own). The zero value
// is ready to use.
type MultiScratch struct {
	g       *rng.RNG  // reseeded once per cohort
	results []Result  // returned slice, reused across calls
	idx     []int     // persistent identity permutation (uniform sampling)
	idxN    int       // prefix of idx currently holding the identity
	undo    []int     // swap partners of the last partial shuffle (uniform)
	bias    []float64 // per-row bias weights, shared by all cohorts (biased)
	keys    []float64 // Efraimidis-Spirakis key buffer (biased)
	bidx    []int     // subset buffer (biased)
}

// ensureIdentity makes idx[:n] the identity permutation. The uniform path
// keeps this as an invariant between cohorts (swaps are undone after each
// draw), so the fill runs only when the pool size changes.
func (s *MultiScratch) ensureIdentity(n int) {
	s.idx = growInts(s.idx, n)
	if s.idxN == n {
		return
	}
	for i := range s.idx[:n] {
		s.idx[i] = i
	}
	s.idxN = n
}

// EvaluateMulti walks one per-client error row once and produces the
// evaluation release for many independent cohorts, one per seed. Cohort c is
// bit-identical to
//
//	g := rng.New(seeds[c]); e.Evaluate(errs, g)
//
// (equivalently EvaluateScratch on a Reseed'd stream): each cohort's draws
// come from its own reseeded stream, so batching changes neither randomness
// consumption nor the released values. The row-invariant work is hoisted out
// of the per-cohort loop: full-pool aggregates are computed once and shared,
// bias weights (accuracy+δ)^b are computed once per row, and the uniform
// sampler reuses a persistent identity permutation with undo records instead
// of refilling a pool-sized buffer per cohort.
//
// The returned slice and any buffers it references are owned by the scratch
// and valid until its next use. Unlike Evaluate, Result.Subset is nil: the
// blocked path only consumes the released scalars, and retaining per-cohort
// subsets would force a pool-sized allocation per cohort.
func (e *Evaluator) EvaluateMulti(errs []float64, seeds []uint64, s *MultiScratch) []Result {
	if len(errs) != len(e.weights) {
		panic(fmt.Sprintf("eval: error vector length %d, want %d clients", len(errs), len(e.weights)))
	}
	if s == nil {
		s = &MultiScratch{}
	}
	if s.g == nil {
		s.g = rng.New(0)
	}
	if cap(s.results) < len(seeds) {
		s.results = make([]Result, len(seeds))
	}
	out := s.results[:len(seeds)]
	n := len(errs)
	k := e.scheme.Count
	private := e.scheme.DP.Private()
	switch {
	case k >= n && e.scheme.Bias == 0:
		// Full pool: the subset is the identity for every cohort and
		// sampling consumes no randomness, so the aggregate is shared.
		sampled := fl.WeightedError(errs, e.weights, nil)
		for c, seed := range seeds {
			observed := sampled
			if private {
				s.g.Reseed(seed)
				observed = e.scheme.DP.Release(sampled, n, s.g)
			}
			out[c] = Result{Observed: observed, Sampled: sampled}
		}
	case e.scheme.Bias == 0:
		s.ensureIdentity(n)
		s.undo = growInts(s.undo, k)
		idx, undo := s.idx, s.undo
		for c, seed := range seeds {
			s.g.Reseed(seed)
			// Partial Fisher-Yates over the persistent identity: the same
			// swaps SampleWithoutReplacementInto performs on a fresh fill,
			// so idx[:k] matches the sequential subset draw exactly.
			for i := 0; i < k; i++ {
				j := i + s.g.IntN(n-i)
				undo[i] = j
				idx[i], idx[j] = idx[j], idx[i]
			}
			sampled := fl.WeightedError(errs, e.weights, idx[:k])
			observed := sampled
			if private {
				observed = e.scheme.DP.Release(sampled, k, s.g)
			}
			for i := k - 1; i >= 0; i-- {
				j := undo[i]
				idx[i], idx[j] = idx[j], idx[i]
			}
			out[c] = Result{Observed: observed, Sampled: sampled}
		}
	default:
		// Biased sampling: the (accuracy+δ)^b weights depend only on the
		// row, not the cohort — compute them once for the whole block.
		s.bias = growFloats(s.bias, n)
		s.keys = growFloats(s.keys, n)
		s.bidx = growInts(s.bidx, n)
		w := s.bias
		for i, err := range errs {
			acc := 1 - err
			if acc < 0 {
				acc = 0
			}
			w[i] = math.Pow(acc+e.scheme.BiasDelta, e.scheme.Bias)
		}
		for c, seed := range seeds {
			s.g.Reseed(seed)
			subset := s.g.WeightedSampleWithoutReplacementInto(w, k, s.keys, s.bidx)
			sampled := fl.WeightedError(errs, e.weights, subset)
			observed := sampled
			if private {
				observed = e.scheme.DP.Release(sampled, len(subset), s.g)
			}
			out[c] = Result{Observed: observed, Sampled: sampled}
		}
	}
	return out
}
