// Package eval implements the study's federated evaluation pipeline (Eq. 2
// and Figure 2 of the paper): a hyperparameter configuration's per-client
// error vector is reduced to a scalar through client subsampling (uniform or
// biased by systems heterogeneity), weighted aggregation, and optional
// differential-privacy perturbation.
//
// The per-client error vectors come from fl.Trainer.EvalClients (live mode)
// or core.ConfigBank (bank mode); this package only deals with turning a
// vector into a (noisy) evaluation.
package eval

import (
	"fmt"
	"math"
	"sort"

	"noisyeval/internal/dp"
	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// DefaultBiasDelta is the paper's δ = 1e-4 in the systems-heterogeneity
// sampling weight (a_k + δ)^b.
const DefaultBiasDelta = 1e-4

// Scheme describes how one evaluation call observes the client population.
type Scheme struct {
	// Count is the raw number of validation clients sampled per evaluation
	// (|S|). Zero means evaluate the full pool. If both Count and Fraction
	// are set, Count wins.
	Count int
	// Fraction samples ceil(Fraction * Nval) clients when Count == 0.
	Fraction float64
	// Weighted selects p_val,k = client example count (true, the paper's
	// default) or p_val,k = 1 (false; required under DP, footnote 1).
	Weighted bool
	// Bias is the systems-heterogeneity exponent b >= 0: clients are sampled
	// with probability proportional to (accuracy + BiasDelta)^Bias.
	// Zero means uniform sampling.
	Bias float64
	// BiasDelta is δ; zero defaults to DefaultBiasDelta.
	BiasDelta float64
	// DP configures Laplace perturbation of released evaluations.
	// A zero value (Epsilon == 0) is treated as non-private.
	DP dp.Params
}

// Noiseless returns the paper's noise-free reference scheme: full weighted
// evaluation without privacy.
func Noiseless() Scheme {
	return Scheme{Weighted: true, DP: dp.Params{Epsilon: dp.InfEpsilon}}
}

// Normalize fills defaults and validates, returning the effective scheme.
func (s Scheme) Normalize(nClients int) (Scheme, error) {
	if nClients <= 0 {
		return s, fmt.Errorf("eval: population has no validation clients")
	}
	if s.DP.Epsilon == 0 {
		s.DP.Epsilon = dp.InfEpsilon
	}
	if s.BiasDelta == 0 {
		s.BiasDelta = DefaultBiasDelta
	}
	if s.Bias < 0 {
		return s, fmt.Errorf("eval: bias exponent %g must be non-negative", s.Bias)
	}
	if s.Count < 0 || s.Count > nClients {
		return s, fmt.Errorf("eval: sample count %d outside [0, %d]", s.Count, nClients)
	}
	if s.Fraction < 0 || s.Fraction > 1 {
		return s, fmt.Errorf("eval: fraction %g outside [0, 1]", s.Fraction)
	}
	if s.Count == 0 {
		if s.Fraction == 0 || s.Fraction == 1 {
			s.Count = nClients
		} else {
			s.Count = int(math.Ceil(s.Fraction * float64(nClients)))
			if s.Count < 1 {
				s.Count = 1
			}
		}
	}
	if s.DP.Private() {
		// Uniform weighting is required to bound sensitivity independently
		// of any client's local dataset size (paper footnote 1).
		s.Weighted = false
	}
	if err := s.DP.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// SampleSize returns |S| for a pool of nClients under this scheme.
func (s Scheme) SampleSize(nClients int) int {
	n, err := s.Normalize(nClients)
	if err != nil {
		panic(err)
	}
	return n.Count
}

// IsFull reports whether the scheme evaluates the entire pool without bias
// or privacy noise (subsampling noise absent).
func (s Scheme) IsFull(nClients int) bool {
	n, err := s.Normalize(nClients)
	if err != nil {
		return false
	}
	return n.Count == nClients && n.Bias == 0 && !n.DP.Private()
}

// Evaluator applies a Scheme to per-client error vectors. Construct with
// New; the evaluator is immutable and safe for concurrent use as long as
// each goroutine passes its own RNG.
type Evaluator struct {
	scheme  Scheme
	weights []float64 // p_val,k under the scheme's weighting
}

// New builds an evaluator for a validation pool described by its per-client
// example counts (used for weighted aggregation).
func New(exampleCounts []int, scheme Scheme) (*Evaluator, error) {
	norm, err := scheme.Normalize(len(exampleCounts))
	if err != nil {
		return nil, err
	}
	w := make([]float64, len(exampleCounts))
	for i, n := range exampleCounts {
		if norm.Weighted {
			if n <= 0 {
				return nil, fmt.Errorf("eval: client %d has no examples but weighted aggregation requested", i)
			}
			w[i] = float64(n)
		} else {
			w[i] = 1
		}
	}
	return &Evaluator{scheme: norm, weights: w}, nil
}

// MustNew is New that panics on error.
func MustNew(exampleCounts []int, scheme Scheme) *Evaluator {
	e, err := New(exampleCounts, scheme)
	if err != nil {
		panic(err)
	}
	return e
}

// Scheme returns the normalized scheme in effect.
func (e *Evaluator) Scheme() Scheme { return e.scheme }

// SampleSize returns |S| per evaluation call.
func (e *Evaluator) SampleSize() int { return e.scheme.Count }

// NumClients returns the validation pool size.
func (e *Evaluator) NumClients() int { return len(e.weights) }

// Result is one evaluation release.
type Result struct {
	// Observed is the released (noisy) error the tuner sees: subsampled,
	// possibly biased, possibly DP-perturbed (may fall outside [0, 1]).
	Observed float64
	// Sampled is the subsample aggregate before DP noise.
	Sampled float64
	// Subset holds the sampled client indices. When the evaluation ran
	// through EvaluateScratch, it aliases the scratch's buffers and is only
	// valid until the scratch's next use.
	Subset []int
}

// Scratch holds the reusable buffers of one evaluation stream: repeated
// EvaluateScratch calls through the same scratch allocate nothing. A scratch
// belongs to one goroutine at a time (the bank oracle gives each bootstrap
// trial its own). The zero value is ready to use; buffers grow on first use
// and are reused afterwards.
type Scratch struct {
	idx  []int     // subset sample buffer (len >= pool size)
	bias []float64 // per-client bias weights (biased sampling only)
	keys []float64 // Efraimidis-Spirakis key buffer (biased sampling only)
}

// Evaluate produces one noisy evaluation of the per-client error vector
// errs. The caller provides the RNG stream; pass distinct streams for
// distinct evaluation calls to model independent evaluation rounds.
func (e *Evaluator) Evaluate(errs []float64, g *rng.RNG) Result {
	return e.EvaluateScratch(errs, g, nil)
}

// EvaluateScratch is Evaluate with caller-owned scratch buffers (nil scratch
// allocates per call, exactly like Evaluate). Randomness consumption and the
// released values are identical to Evaluate; only the allocation profile
// differs, so the two forms are interchangeable without perturbing
// reproducibility. This is the hot-path form RunTrials drives: hundreds of
// bootstrap trials evaluating thousands of contiguous bank rows with zero
// steady-state allocations.
func (e *Evaluator) EvaluateScratch(errs []float64, g *rng.RNG, s *Scratch) Result {
	if len(errs) != len(e.weights) {
		panic(fmt.Sprintf("eval: error vector length %d, want %d clients", len(errs), len(e.weights)))
	}
	subset := e.sampleSubset(errs, g, s)
	sampled := fl.WeightedError(errs, e.weights, subset)
	observed := sampled
	if e.scheme.DP.Private() {
		// Accuracy has sensitivity 1/|S|; error = 1 - accuracy has the same
		// sensitivity, so the Laplace release applies directly.
		observed = e.scheme.DP.Release(sampled, len(subset), g)
	}
	return Result{Observed: observed, Sampled: sampled, Subset: subset}
}

// FullError aggregates the whole pool with the scheme's weights and no
// noise. This is the paper's reporting metric ("full validation error").
func (e *Evaluator) FullError(errs []float64) float64 {
	if len(errs) != len(e.weights) {
		panic(fmt.Sprintf("eval: error vector length %d, want %d clients", len(errs), len(e.weights)))
	}
	return fl.WeightedError(errs, e.weights, nil)
}

// TailError returns the error at the q-th percentile of the per-client
// error distribution (q=0.9 → the level the worst 10% of clients exceed).
// The paper's §6 calls for examining tail performance alongside the average
// when heterogeneity corrupts evaluation; this is that metric.
func TailError(errs []float64, q float64) float64 {
	if len(errs) == 0 {
		panic("eval: TailError of empty vector")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("eval: tail quantile %g outside [0, 1]", q))
	}
	s := append([]float64(nil), errs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// WorstClientError returns the maximum per-client error (the 100th
// percentile tail).
func WorstClientError(errs []float64) float64 { return TailError(errs, 1) }

// sampleSubset draws |S| clients: uniformly when Bias == 0, otherwise with
// probability proportional to (accuracy + δ)^b — the paper's model of
// systems heterogeneity where well-performing (fast, well-connected) devices
// participate more often. A non-nil scratch supplies every buffer.
func (e *Evaluator) sampleSubset(errs []float64, g *rng.RNG, s *Scratch) []int {
	n := len(errs)
	k := e.scheme.Count
	var idx []int
	if s != nil {
		s.idx = growInts(s.idx, n)
		idx = s.idx
	} else {
		idx = make([]int, n)
	}
	if k >= n && e.scheme.Bias == 0 {
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	if e.scheme.Bias == 0 {
		return g.SampleWithoutReplacementInto(n, k, idx)
	}
	var w, keys []float64
	if s != nil {
		s.bias = growFloats(s.bias, n)
		s.keys = growFloats(s.keys, n)
		w, keys = s.bias, s.keys
	} else {
		w, keys = make([]float64, n), make([]float64, n)
	}
	for i, err := range errs {
		acc := 1 - err
		if acc < 0 {
			acc = 0
		}
		w[i] = math.Pow(acc+e.scheme.BiasDelta, e.scheme.Bias)
	}
	return g.WeightedSampleWithoutReplacementInto(w, k, keys, idx)
}

// growInts returns b resized to length n, reallocating only on growth.
func growInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

// growFloats returns b resized to length n, reallocating only on growth.
func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}
