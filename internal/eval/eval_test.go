package eval

import (
	"math"
	"testing"

	"noisyeval/internal/dp"
	"noisyeval/internal/rng"
)

func counts(n, per int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = per
	}
	return out
}

func TestNoiselessScheme(t *testing.T) {
	s := Noiseless()
	n, err := s.Normalize(10)
	if err != nil {
		t.Fatal(err)
	}
	if n.Count != 10 || !n.Weighted || n.DP.Private() {
		t.Errorf("normalized = %+v", n)
	}
	if !s.IsFull(10) {
		t.Error("noiseless scheme should be full")
	}
}

func TestNormalizeFraction(t *testing.T) {
	s := Scheme{Fraction: 0.01}
	n, err := s.Normalize(360)
	if err != nil {
		t.Fatal(err)
	}
	if n.Count != 4 { // ceil(3.6)
		t.Errorf("count = %d, want 4", n.Count)
	}
	// A tiny fraction still samples at least one client.
	n2, _ := Scheme{Fraction: 1e-9}.Normalize(100)
	if n2.Count != 1 {
		t.Errorf("count = %d, want 1", n2.Count)
	}
}

func TestNormalizeCountWins(t *testing.T) {
	n, err := Scheme{Count: 3, Fraction: 0.9}.Normalize(100)
	if err != nil {
		t.Fatal(err)
	}
	if n.Count != 3 {
		t.Errorf("count = %d, want 3", n.Count)
	}
}

func TestNormalizeErrors(t *testing.T) {
	for name, s := range map[string]Scheme{
		"neg bias":      {Bias: -1},
		"count too big": {Count: 11},
		"bad fraction":  {Fraction: 2},
	} {
		if _, err := s.Normalize(10); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := (Scheme{}).Normalize(0); err == nil {
		t.Error("empty pool: expected error")
	}
}

func TestDPForcesUniformWeights(t *testing.T) {
	s := Scheme{Weighted: true, DP: dp.Params{Epsilon: 1, TotalEvals: 4}}
	n, err := s.Normalize(10)
	if err != nil {
		t.Fatal(err)
	}
	if n.Weighted {
		t.Error("DP evaluation must use uniform weights (paper footnote 1)")
	}
}

func TestFullEvaluationExact(t *testing.T) {
	e := MustNew(counts(4, 10), Noiseless())
	errs := []float64{0.1, 0.2, 0.3, 0.4}
	r := e.Evaluate(errs, rng.New(1))
	if math.Abs(r.Observed-0.25) > 1e-12 || r.Observed != r.Sampled {
		t.Errorf("full eval = %+v", r)
	}
	if len(r.Subset) != 4 {
		t.Errorf("subset = %v", r.Subset)
	}
}

func TestWeightedAggregation(t *testing.T) {
	e := MustNew([]int{10, 30}, Noiseless())
	errs := []float64{0.0, 1.0}
	r := e.Evaluate(errs, rng.New(1))
	if math.Abs(r.Observed-0.75) > 1e-12 {
		t.Errorf("weighted = %v, want 0.75", r.Observed)
	}
	if got := e.FullError(errs); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("FullError = %v", got)
	}
}

func TestSubsamplingVariance(t *testing.T) {
	// 1-client subsamples must vary across calls; full evals must not.
	e1 := MustNew(counts(50, 10), Scheme{Count: 1, Weighted: true})
	full := MustNew(counts(50, 10), Noiseless())
	errs := make([]float64, 50)
	for i := range errs {
		errs[i] = float64(i) / 50
	}
	g := rng.New(2)
	seen := map[float64]bool{}
	for i := 0; i < 30; i++ {
		seen[e1.Evaluate(errs, g.Splitf("call-%d", i)).Observed] = true
	}
	if len(seen) < 10 {
		t.Errorf("1-client eval produced only %d distinct values", len(seen))
	}
	a := full.Evaluate(errs, g.Split("f1")).Observed
	b := full.Evaluate(errs, g.Split("f2")).Observed
	if a != b {
		t.Error("full evaluation must be deterministic")
	}
}

func TestSubsampleUnbiased(t *testing.T) {
	// Mean of many uniform subsample evals approximates the full error
	// (uniform weights).
	e := MustNew(counts(20, 1), Scheme{Count: 5})
	errs := make([]float64, 20)
	for i := range errs {
		errs[i] = float64(i%4) / 4
	}
	g := rng.New(3)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += e.Evaluate(errs, g.Splitf("c%d", i)).Observed
	}
	fullErr := e.FullError(errs)
	if math.Abs(sum/n-fullErr) > 0.01 {
		t.Errorf("subsample mean %.4f vs full %.4f", sum/n, fullErr)
	}
}

func TestBiasedSamplingPrefersAccurateClients(t *testing.T) {
	// With b=3, clients with low error must be selected far more often.
	e := MustNew(counts(10, 1), Scheme{Count: 1, Bias: 3})
	errs := []float64{0.05, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9}
	g := rng.New(4)
	hits := 0
	const n = 5000
	for i := 0; i < n; i++ {
		r := e.Evaluate(errs, g.Splitf("c%d", i))
		if r.Subset[0] == 0 {
			hits++
		}
	}
	// Weight ratio ≈ (0.95/0.1)^3 ≈ 857; selection should be near-always 0.
	if float64(hits)/n < 0.9 {
		t.Errorf("accurate client selected only %d/%d times under b=3", hits, n)
	}
}

func TestBiasMakesEvaluationOptimistic(t *testing.T) {
	// Biased evaluation should underestimate error on heterogeneous vectors.
	errs := []float64{0.0, 0.1, 0.8, 0.9, 0.95, 0.9, 0.85, 0.8, 0.9, 0.99}
	unbiased := MustNew(counts(10, 1), Scheme{Count: 3})
	biased := MustNew(counts(10, 1), Scheme{Count: 3, Bias: 3})
	g := rng.New(5)
	var sumU, sumB float64
	const n = 3000
	for i := 0; i < n; i++ {
		sumU += unbiased.Evaluate(errs, g.Splitf("u%d", i)).Observed
		sumB += biased.Evaluate(errs, g.Splitf("b%d", i)).Observed
	}
	if sumB >= sumU {
		t.Errorf("biased mean %.3f should be optimistic vs uniform %.3f", sumB/n, sumU/n)
	}
}

func TestBiasWithFullCountStillBiases(t *testing.T) {
	// Bias > 0 with Count == n still reorders via weighted sampling; the
	// aggregate over all clients is unchanged, but the path exercises the
	// weighted sampler for k == n.
	e := MustNew(counts(5, 1), Scheme{Count: 5, Bias: 2})
	errs := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	r := e.Evaluate(errs, rng.New(6))
	if math.Abs(r.Observed-0.3) > 1e-12 {
		t.Errorf("full biased eval = %v, want mean 0.3", r.Observed)
	}
}

func TestDPNoiseApplied(t *testing.T) {
	s := Scheme{Count: 5, DP: dp.Params{Epsilon: 1, TotalEvals: 16}}
	e := MustNew(counts(10, 1), s)
	errs := make([]float64, 10)
	for i := range errs {
		errs[i] = 0.5
	}
	g := rng.New(7)
	// Sampled is exactly 0.5 every time; Observed must differ and vary.
	distinct := map[float64]bool{}
	for i := 0; i < 20; i++ {
		r := e.Evaluate(errs, g.Splitf("c%d", i))
		if r.Sampled != 0.5 {
			t.Fatalf("sampled = %v", r.Sampled)
		}
		distinct[r.Observed] = true
	}
	if len(distinct) < 15 {
		t.Errorf("DP observed values not varying: %d distinct", len(distinct))
	}
}

func TestDPNoiseScaleShrinksWithClients(t *testing.T) {
	// Empirical spread of observed errors at |S|=50 should be far smaller
	// than at |S|=2 under the same epsilon (Observation 5 mechanism).
	errs := make([]float64, 100)
	for i := range errs {
		errs[i] = 0.5
	}
	spread := func(count int) float64 {
		s := Scheme{Count: count, DP: dp.Params{Epsilon: 10, TotalEvals: 16}}
		e := MustNew(counts(100, 1), s)
		g := rng.New(8)
		sum := 0.0
		const n = 4000
		for i := 0; i < n; i++ {
			sum += math.Abs(e.Evaluate(errs, g.Splitf("c%d", i)).Observed - 0.5)
		}
		return sum / n
	}
	if spread(50) >= spread(2) {
		t.Error("more sampled clients should mean less DP noise")
	}
}

func TestEvaluateLengthMismatchPanics(t *testing.T) {
	e := MustNew(counts(3, 1), Noiseless())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Evaluate([]float64{0.1}, rng.New(1))
}

func TestNewRejectsZeroWeightClient(t *testing.T) {
	if _, err := New([]int{5, 0}, Scheme{Weighted: true}); err == nil {
		t.Error("expected error for zero-example client under weighted aggregation")
	}
	// Uniform weighting accepts empty clients.
	if _, err := New([]int{5, 0}, Scheme{}); err != nil {
		t.Errorf("uniform weighting should accept: %v", err)
	}
}

func TestSampleSizeAccessors(t *testing.T) {
	e := MustNew(counts(100, 1), Scheme{Fraction: 0.27, Weighted: true})
	if e.SampleSize() != 27 {
		t.Errorf("SampleSize = %d", e.SampleSize())
	}
	if e.NumClients() != 100 {
		t.Errorf("NumClients = %d", e.NumClients())
	}
	if (Scheme{Count: 9}).SampleSize(100) != 9 {
		t.Error("Scheme.SampleSize")
	}
}

func TestTailError(t *testing.T) {
	errs := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if got := TailError(errs, 1); got != 0.5 {
		t.Errorf("max tail = %v", got)
	}
	if got := TailError(errs, 0); got != 0.1 {
		t.Errorf("min tail = %v", got)
	}
	if got := TailError(errs, 0.5); got != 0.3 {
		t.Errorf("median tail = %v", got)
	}
	if got := WorstClientError(errs); got != 0.5 {
		t.Errorf("worst = %v", got)
	}
	// Input must not be mutated.
	if errs[0] != 0.1 || errs[4] != 0.5 {
		t.Error("TailError mutated input")
	}
}

func TestTailErrorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { TailError(nil, 0.5) },
		"q>1":   func() { TailError([]float64{1}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTailExceedsMeanOnSkewedVectors(t *testing.T) {
	// The §6 motivation: a config can look fine on average while its tail
	// clients are catastrophically bad.
	errs := []float64{0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.9, 0.95}
	e := MustNew(counts(10, 1), Noiseless())
	mean := e.FullError(errs)
	tail := TailError(errs, 0.9)
	if tail <= mean*2 {
		t.Errorf("tail %.2f should dwarf mean %.2f on skewed vectors", tail, mean)
	}
}

// TestEvaluateScratchMatchesEvaluate pins the scratch fast path to the
// allocating path: identical RNG consumption, identical releases, across
// every scheme family — the contract that lets the bank oracle swap paths
// without perturbing any recorded experiment.
func TestEvaluateScratchMatchesEvaluate(t *testing.T) {
	g := rng.New(5)
	errs := make([]float64, 40)
	for i := range errs {
		errs[i] = g.Float64()
	}
	schemes := map[string]Scheme{
		"full":      Noiseless(),
		"subsample": {Count: 7, Weighted: true},
		"biased":    {Count: 5, Weighted: true, Bias: 2.5},
		"dp":        {Count: 6, DP: dp.Params{Epsilon: 1, TotalEvals: 4}},
	}
	for name, scheme := range schemes {
		t.Run(name, func(t *testing.T) {
			e := MustNew(counts(40, 3), scheme)
			var s Scratch
			for i := 0; i < 10; i++ {
				seed := uint64(100 + i)
				a := e.Evaluate(errs, rng.New(seed))
				b := e.EvaluateScratch(errs, rng.New(seed), &s)
				if a.Observed != b.Observed || a.Sampled != b.Sampled {
					t.Fatalf("iteration %d: scratch (%v, %v) != allocating (%v, %v)",
						i, b.Observed, b.Sampled, a.Observed, a.Sampled)
				}
				if len(a.Subset) != len(b.Subset) {
					t.Fatalf("subset lengths differ: %d vs %d", len(a.Subset), len(b.Subset))
				}
				for k := range a.Subset {
					if a.Subset[k] != b.Subset[k] {
						t.Fatalf("subsets differ at %d", k)
					}
				}
			}
		})
	}
}

// TestEvaluateScratchAllocationFree pins the warm-scratch allocation profile
// for the non-DP schemes the oracle hot path drives.
func TestEvaluateScratchAllocationFree(t *testing.T) {
	errs := make([]float64, 30)
	for i := range errs {
		errs[i] = float64(i) / 40
	}
	for name, scheme := range map[string]Scheme{
		"full":      Noiseless(),
		"subsample": {Count: 5, Weighted: true},
		"biased":    {Count: 5, Weighted: true, Bias: 1.5},
	} {
		t.Run(name, func(t *testing.T) {
			e := MustNew(counts(30, 2), scheme)
			var s Scratch
			g := rng.New(3)
			e.EvaluateScratch(errs, g, &s) // warm buffers
			allocs := testing.AllocsPerRun(100, func() {
				e.EvaluateScratch(errs, g, &s)
			})
			if allocs != 0 {
				t.Errorf("warm EvaluateScratch allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}
