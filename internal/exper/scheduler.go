package exper

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Deps declares the expensive artifacts one driver consumes, so the
// Scheduler can build each artifact exactly once, on demand, pipelined with
// the drivers that are already runnable.
type Deps struct {
	// Populations lists datasets whose generated population is needed
	// (table1 reads populations without training banks).
	Populations []string
	// Banks lists datasets whose shared-pool config bank is needed.
	Banks []string
	// DecadeBanks lists the Figure-13 per-decade banks needed.
	DecadeBanks []DecadeDep
}

// DecadeDep names one (dataset, server-lr decades) Figure-13 bank.
type DecadeDep struct {
	Dataset string
	Decades int
}

// Job is one schedulable figure/table driver: its id, the artifacts it
// needs (as a function of the suite config, since e.g. Figure 13's decade
// banks depend on Config.Fig13Datasets), and the driver itself.
type Job struct {
	ID   string
	Deps func(Config) Deps
	Run  func(*Suite) Result
}

// EventKind classifies scheduler progress events.
type EventKind int

const (
	// TaskStart fires when a task begins executing on a worker.
	TaskStart EventKind = iota
	// TaskDone fires when a task completes successfully.
	TaskDone
	// TaskError fires when a task fails (the run is being cancelled).
	TaskError
	// TaskSkip fires when a task is abandoned because the run was
	// cancelled by an earlier failure.
	TaskSkip
)

// Event is one scheduler progress notification. Task is either a driver id
// ("figure3") or an artifact key ("bank:cifar10", "pop:reddit",
// "decades:cifar10:3").
type Event struct {
	Task    string
	Kind    EventKind
	Elapsed time.Duration
	Err     error
}

// Scheduler runs figure/table drivers concurrently on a bounded worker
// pool. Every declared artifact (bank, population) becomes its own task,
// deduplicated across drivers, so bank construction is demand-driven and
// overlaps driver execution: a driver starts the moment its own deps are
// ready, regardless of other banks still training. Bank tasks execute
// through the suite's core.BankBuilder, so in cluster mode (cmd/figures
// -cluster-addr) each "bank:*" task fans out into dist shard jobs while
// the scheduler's own pool keeps other drivers moving. The first failing
// task cancels everything not yet started; in-flight tasks finish. Results
// are independent of the worker count — every driver derives its
// randomness from the suite seed, never from execution order.
type Scheduler struct {
	// Jobs bounds concurrent tasks (0 = GOMAXPROCS). Note bank builds are
	// additionally parallel internally (Config.Workers).
	Jobs int
	// OnEvent, when set, receives progress events (called from worker
	// goroutines; must be safe for concurrent use).
	OnEvent func(Event)
}

// task is one node of the dependency graph: artifacts have no
// prerequisites, drivers wait on their artifacts.
type task struct {
	key        string
	run        func() error
	pending    atomic.Int32
	dependents []*task
}

// Run executes jobs against the suite, returning results in job order.
// On failure the first error is returned; results of drivers that completed
// before cancellation are still populated (use the error to decide whether
// the slice is complete).
func (sch Scheduler) Run(s *Suite, jobs []Job) ([]Result, error) {
	workers := sch.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var tasks []*task
	artifacts := map[string]*task{}
	artifactTask := func(key string, build func()) *task {
		if t, ok := artifacts[key]; ok {
			return t
		}
		t := &task{key: key, run: func() error { return capturePanic(key, build) }}
		artifacts[key] = t
		tasks = append(tasks, t)
		return t
	}

	results := make([]Result, len(jobs))
	for i, j := range jobs {
		jt := &task{key: j.ID, run: func() error {
			return capturePanic(j.ID, func() { results[i] = j.Run(s) })
		}}
		var deps Deps
		if j.Deps != nil {
			deps = j.Deps(s.Cfg)
		}
		seen := map[string]bool{}
		link := func(dt *task) {
			if seen[dt.key] {
				return
			}
			seen[dt.key] = true
			dt.dependents = append(dt.dependents, jt)
			jt.pending.Add(1)
		}
		for _, name := range deps.Populations {
			link(artifactTask("pop:"+name, func() { s.Population(name) }))
		}
		for _, name := range deps.Banks {
			link(artifactTask("bank:"+name, func() { s.Bank(name) }))
		}
		for _, dd := range deps.DecadeBanks {
			key := fmt.Sprintf("decades:%s:%d", dd.Dataset, dd.Decades)
			link(artifactTask(key, func() { s.DecadeBank(dd.Dataset, dd.Decades) }))
		}
		tasks = append(tasks, jt)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	// Buffered to the full graph so finishing a task never blocks on the
	// queue (a worker enqueues newly unblocked dependents inline).
	ready := make(chan *task, len(tasks))
	wg.Add(len(tasks))
	finish := func(t *task, err error) {
		if err != nil {
			errOnce.Do(func() {
				firstErr = err
				cancel()
			})
		}
		for _, d := range t.dependents {
			if d.pending.Add(-1) == 0 {
				ready <- d
			}
		}
		wg.Done()
	}
	emit := func(e Event) {
		if sch.OnEvent != nil {
			sch.OnEvent(e)
		}
	}

	for w := 0; w < workers; w++ {
		go func() {
			for t := range ready {
				if ctx.Err() != nil {
					// Cancelled: drain without running so dependents
					// unblock and the graph empties.
					emit(Event{Task: t.key, Kind: TaskSkip})
					finish(t, nil)
					continue
				}
				emit(Event{Task: t.key, Kind: TaskStart})
				start := time.Now()
				err := t.run()
				elapsed := time.Since(start)
				if err != nil {
					emit(Event{Task: t.key, Kind: TaskError, Elapsed: elapsed, Err: err})
				} else {
					emit(Event{Task: t.key, Kind: TaskDone, Elapsed: elapsed})
				}
				finish(t, err)
			}
		}()
	}

	for _, t := range tasks {
		if t.pending.Load() == 0 {
			ready <- t
		}
	}
	wg.Wait()
	close(ready)
	return results, firstErr
}

// capturePanic runs fn, converting a panic (how drivers and Suite accessors
// report bank failures) into an error the scheduler can cancel on.
func capturePanic(key string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exper: task %s: %v", key, r)
		}
	}()
	fn()
	return nil
}
