package exper

import (
	"os"
	"testing"

	"noisyeval/internal/core"
)

func TestSuiteGrowBank(t *testing.T) {
	st, err := core.NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuite(tinyConfig())
	s.SetStore(st)

	oldBank := s.Bank("cifar10")
	oldN := len(oldBank.Configs)
	oldKey := s.BankKeyFor("cifar10")
	femnistKey := s.BankKeyFor("femnist")
	pop := s.Population("cifar10")
	_, oldOpts, seed := s.BankBuildInputs("cifar10")
	oldPopKey := core.BankKeyForPopulation(pop, oldOpts, seed)

	grown, res, err := s.GrowBank("cifar10", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "cifar10" || res.Added != 2 || res.Total != oldN+2 {
		t.Fatalf("result = %+v", res)
	}
	if res.OldKey != oldKey || res.NewKey == oldKey {
		t.Fatalf("content address did not advance: %+v", res)
	}
	if len(grown.Configs) != oldN+2 {
		t.Fatalf("grown bank has %d configs", len(grown.Configs))
	}
	for i := 0; i < oldN; i++ {
		if grown.Configs[i] != oldBank.Configs[i] {
			t.Fatal("growth reordered the existing pool")
		}
	}

	// The suite now serves the grown bank under the advanced address; the
	// in-flight reader's old bank is untouched.
	if s.BankKeyFor("cifar10") != res.NewKey {
		t.Fatal("BankKeyFor does not report the new address")
	}
	if s.Bank("cifar10") != grown {
		t.Fatal("suite does not serve the grown bank")
	}
	if len(oldBank.Configs) != oldN {
		t.Fatal("growth mutated the old bank")
	}
	// Other datasets keep the shared pool and their addresses.
	if s.BankKeyFor("femnist") != femnistKey {
		t.Fatal("growth of cifar10 changed femnist's address")
	}

	// Persistence: the grown bank landed under its new population-level
	// address, and the old address aliases to it.
	_, newOpts, _ := s.BankBuildInputs("cifar10")
	newPopKey := core.BankKeyForPopulation(pop, newOpts, seed)
	if !st.Has(newPopKey) {
		t.Fatal("grown bank not persisted under its new address")
	}
	// While the old entry survives, the old address still serves the exact
	// bank it promises (concrete beats alias); once it is evicted, the alias
	// forwards readers to the grown superset.
	if got := st.Resolve(oldPopKey); got != oldPopKey {
		t.Fatalf("old address with live entry resolves to %s, want itself", got)
	}
	if err := os.Remove(st.Path(oldPopKey)); err != nil {
		t.Fatal(err)
	}
	if got := st.Resolve(oldPopKey); got != newPopKey {
		t.Fatalf("evicted old address resolves to %s, want %s", got, newPopKey)
	}

	// Validation.
	if _, _, err := s.GrowBank("nope", 1); err == nil {
		t.Error("grew an unknown dataset")
	}
	if _, _, err := s.GrowBank("cifar10", 0); err == nil {
		t.Error("grew by zero")
	}

	// Growth composes: a second grow advances the address again.
	_, res2, err := s.GrowBank("cifar10", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.OldKey != res.NewKey || res2.NewKey == res.NewKey || res2.Total != oldN+3 {
		t.Fatalf("second grow = %+v", res2)
	}
}
