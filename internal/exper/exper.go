// Package exper contains one driver per table and figure of the paper's
// evaluation. Every driver consumes a Suite (the four dataset banks built
// with a shared config pool) and returns a Result holding the series the
// paper reports plus a text rendering; cmd/figures writes these to disk.
//
// See DESIGN.md §4 for the experiment index.
package exper

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"noisyeval/internal/core"
	"noisyeval/internal/data"
	"noisyeval/internal/fl"
	"noisyeval/internal/hpo"
	"noisyeval/internal/plot"
	"noisyeval/internal/rng"
)

// DatasetNames lists the study's datasets in the paper's order.
var DatasetNames = []string{"cifar10", "femnist", "stackoverflow", "reddit"}

// Config scales the reproduction. Defaults reproduce every figure at
// "figure scale" (client populations scaled to keep the full pipeline
// tractable on a laptop; subsample percentages preserved); Quick() is the
// miniature used by tests and benchmarks.
type Config struct {
	// Scales maps dataset name -> client-count scale factor.
	Scales map[string]float64
	// CapExamples truncates the per-client example tail (text datasets).
	CapExamples int
	// BankConfigs is the candidate pool size (paper: 128).
	BankConfigs int
	// MaxRounds is the per-config training budget (paper: 405).
	MaxRounds int
	// K is the RS/TPE config count (paper: 16).
	K int
	// Trials is the number of bootstrap RS trials per point (paper: 100).
	Trials int
	// MethodTrials is the number of tuning-run trials for the method
	// comparison figures (paper: 8).
	MethodTrials int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds bank-build parallelism (0 = GOMAXPROCS).
	Workers int
	// Fig13Datasets lists datasets for the search-space-width experiment
	// (each needs its own per-decade banks; default cifar10 only).
	Fig13Datasets []string
	// Fig13Configs is the pool size per decade bank (paper: 128).
	Fig13Configs int
	// SequentialTrials disables the blocked trial scheduler (the
	// -blocked-trials=false escape hatch): tuning runs fall back to the
	// legacy goroutine-per-trial path. Pure execution knob — results are
	// bit-identical either way, so it is not part of any run key.
	SequentialTrials bool
}

// Default returns figure-scale configuration.
func Default() Config {
	return Config{
		Scales: map[string]float64{
			"cifar10":       1.0,
			"femnist":       0.25,
			"stackoverflow": 0.1,
			"reddit":        0.05,
		},
		CapExamples:   500,
		BankConfigs:   128,
		MaxRounds:     405,
		K:             16,
		Trials:        100,
		MethodTrials:  8,
		Seed:          1,
		Fig13Datasets: []string{"cifar10"},
		Fig13Configs:  64,
	}
}

// Quick returns the miniature configuration used by tests and benchmarks:
// tiny populations, short training, few trials — every driver still runs
// end-to-end through the same code paths.
func Quick() Config {
	return Config{
		Scales: map[string]float64{
			"cifar10":       0.12,
			"femnist":       0.04,
			"stackoverflow": 0.004,
			"reddit":        0.0012,
		},
		CapExamples:   60,
		BankConfigs:   16,
		MaxRounds:     27,
		K:             8,
		Trials:        12,
		MethodTrials:  3,
		Seed:          1,
		Fig13Datasets: []string{"cifar10"},
		Fig13Configs:  12,
	}
}

// Budget returns the tuning budget implied by the config (paper: 16 × 405 =
// 6480 rounds).
func (c Config) Budget() hpo.Budget {
	return hpo.Budget{TotalRounds: c.K * c.MaxRounds, MaxPerConfig: c.MaxRounds, K: c.K}
}

// Settings returns baseline tuning settings (no DP).
func (c Config) Settings() hpo.Settings {
	return hpo.Settings{Budget: c.Budget(), Epsilon: math.Inf(1), Eta: 3, Brackets: 5}
}

// spec returns the scaled dataset spec.
func (c Config) spec(name string) data.Spec {
	var s data.Spec
	switch name {
	case "cifar10":
		s = data.CIFAR10Like()
	case "femnist":
		s = data.FEMNISTLike()
	case "stackoverflow":
		s = data.StackOverflowLike()
	case "reddit":
		s = data.RedditLike()
	default:
		panic(fmt.Sprintf("exper: unknown dataset %q", name))
	}
	scale, ok := c.Scales[name]
	if !ok {
		scale = 1
	}
	return s.Scaled(scale, c.CapExamples)
}

// Suite holds the populations and banks every figure driver consumes. Build
// it once (NewSuite) and reuse it across drivers; banks are built lazily and
// cached. Accessors are safe for concurrent use, and distinct banks build
// concurrently (the Scheduler relies on this to pipeline bank construction
// with driver execution): the suite mutex only guards map bookkeeping, while
// each population/bank carries its own once-guarded build slot.
type Suite struct {
	Cfg Config

	// store, when set, is consulted before building any bank and receives
	// every freshly built bank (content-addressed by core.BankKey).
	store *core.BankStore
	// bankBuilder, when set, overrides how banks come into existence (the
	// dist.Builder tier stack in cluster mode); nil means a LocalBuilder
	// over store. Every bank access — figure drivers, the scheduler's bank
	// tasks, RunTune — routes through it.
	bankBuilder core.BankBuilder

	mu    sync.Mutex
	pops  map[string]*popEntry
	banks map[string]*bankEntry
	// installed marks banks supplied via SetBank (external artifacts whose
	// build inputs are unknown; run keys fingerprint their content instead).
	installed map[string]bool
	// ready marks bank slots whose build has completed (BankReady reads it;
	// bankEntry.bank itself is only synchronized by the entry's once).
	ready map[string]bool
	pool  []fl.HParams // shared config pool across datasets
	// grownPools overrides the shared pool per dataset once GrowBank has
	// extended its bank (the union pool defines the new content address).
	grownPools map[string][]fl.HParams

	// growMu serializes GrowBank per suite (growth is train-then-swap).
	growMu sync.Mutex

	builds atomic.Int64 // banks actually trained (cache hits excluded)
}

type popEntry struct {
	once sync.Once
	pop  *data.Population
}

type bankEntry struct {
	once sync.Once
	bank *core.Bank
}

// NewSuite prepares a suite (populations and banks are created on demand).
func NewSuite(cfg Config) *Suite {
	return &Suite{
		Cfg:        cfg,
		pops:       map[string]*popEntry{},
		banks:      map[string]*bankEntry{},
		installed:  map[string]bool{},
		ready:      map[string]bool{},
		grownPools: map[string][]fl.HParams{},
	}
}

// BankReady reports whether the bank slot for key is already resolved in
// this suite — built, loaded, or installed — without triggering a build.
// noisyevald's admission control uses it (together with the store) to
// classify a submission as warm or cold before deciding to shed it.
func (s *Suite) BankReady(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ready[key]
}

// SetStore attaches a content-addressed bank cache: Bank and DecadeBank
// consult it before training and write every fresh bank through it. Attach
// before the first bank access.
func (s *Suite) SetStore(st *core.BankStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = st
}

// Store returns the attached bank cache (nil when none).
func (s *Suite) Store() *core.BankStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// SetBuilder attaches a bank builder (e.g. dist.Builder for cluster mode):
// all bank construction routes through it instead of the default
// local-store path. Attach before the first bank access.
func (s *Suite) SetBuilder(b core.BankBuilder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bankBuilder = b
}

// builder resolves the effective bank builder: the attached one, else a
// LocalBuilder over the attached store (which may be nil — an always-miss
// cache, preserving pre-dist behavior exactly).
func (s *Suite) builder() core.BankBuilder {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bankBuilder != nil {
		return s.bankBuilder
	}
	return core.LocalBuilder{Store: s.store}
}

// BankBuilds returns how many banks this suite actually trained (loads from
// the store or banks installed via SetBank do not count). cmd/figures uses
// it to prove a warm-cache run did zero training.
func (s *Suite) BankBuilds() int64 { return s.builds.Load() }

// SharedPool returns the config pool shared by all dataset banks.
func (s *Suite) SharedPool() []fl.HParams {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sharedPoolLocked()
}

func (s *Suite) sharedPoolLocked() []fl.HParams {
	if s.pool == nil {
		s.pool = hpo.DefaultSpace().SampleN(s.Cfg.BankConfigs, rng.New(s.Cfg.Seed).Split("shared-pool"))
	}
	return s.pool
}

// Population returns (building if needed) the dataset population.
func (s *Suite) Population(name string) *data.Population {
	s.mu.Lock()
	e, ok := s.pops[name]
	if !ok {
		e = &popEntry{}
		s.pops[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.pop = data.MustGenerate(s.Cfg.spec(name), rng.New(s.Cfg.Seed).Split("pop-"+name))
	})
	return e.pop
}

// bankFor resolves the once-guarded slot for key, running build inside the
// slot's once. Distinct keys build concurrently; duplicate requests block on
// the first builder.
func (s *Suite) bankFor(key string, build func() *core.Bank) *core.Bank {
	s.mu.Lock()
	e, ok := s.banks[key]
	if !ok {
		e = &bankEntry{}
		s.banks[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.bank = build() })
	s.mu.Lock()
	s.ready[key] = true
	s.mu.Unlock()
	return e.bank
}

// buildCached routes one bank build through the suite's builder (local
// store by default, the dist tier stack in cluster mode), counting only
// actual training against BankBuilds. ctx carries the requesting run's
// trace, if any, so builders can record lookup/build spans.
func (s *Suite) buildCached(ctx context.Context, label string, pop *data.Population, opts core.BuildOptions, seed uint64) *core.Bank {
	b, hit, err := s.builder().BuildBank(ctx, pop, opts, seed)
	if err != nil {
		panic(fmt.Sprintf("exper: bank %s: %v", label, err))
	}
	if !hit {
		s.builds.Add(1)
	}
	return b
}

// BankBuildInputs returns the exact inputs Bank(name) hands to the bank
// builder: the scaled dataset spec, the build options (the dataset's
// effective config pool included — the shared pool, or the grown union once
// GrowBank has extended it), and the seed. Exposed so callers can compute the bank's content address
// (core.BankKey) — and from it a run key — without forcing the build; the
// population itself is deterministic in (spec, Cfg.Seed), so the
// spec/options/seed triple fully determines bank content.
func (s *Suite) BankBuildInputs(name string) (data.Spec, core.BuildOptions, uint64) {
	opts := core.DefaultBuildOptions()
	opts.NumConfigs = s.Cfg.BankConfigs
	opts.MaxRounds = s.Cfg.MaxRounds
	opts.Partitions = []float64{0.5, 1}
	opts.Workers = s.Cfg.Workers
	opts.Configs = s.poolFor(name)
	return s.Cfg.spec(name), opts, s.Cfg.Seed + uint64(len(name))
}

// Bank returns (building if needed) the dataset's config bank with
// partitions p ∈ {0, 0.5, 1} and the shared pool.
func (s *Suite) Bank(name string) *core.Bank {
	return s.BankCtx(context.Background(), name)
}

// BankCtx is Bank with a caller context: the ctx's obs.Trace (when present)
// receives the bank.lookup / bank.build spans of a cold build. Note the
// once-guarded slot means only the first caller's ctx observes the build;
// concurrent duplicates block and get no spans, which is the honest
// timeline (they didn't do the work).
func (s *Suite) BankCtx(ctx context.Context, name string) *core.Bank {
	return s.bankFor(name, func() *core.Bank {
		pop := s.Population(name)
		_, opts, seed := s.BankBuildInputs(name)
		return s.buildCached(ctx, name, pop, opts, seed)
	})
}

// KnownDataset reports whether name is one of the study's datasets.
func KnownDataset(name string) bool {
	for _, d := range DatasetNames {
		if d == name {
			return true
		}
	}
	return false
}

// SetBank installs a pre-built bank (cmd/figures loads banks built by
// cmd/bank). The bank's pool becomes the shared pool if none is set yet.
func (s *Suite) SetBank(name string, b *core.Bank) {
	e := &bankEntry{bank: b}
	e.once.Do(func() {}) // mark resolved
	s.mu.Lock()
	defer s.mu.Unlock()
	s.banks[name] = e
	s.installed[name] = true
	s.ready[name] = true
	if s.pool == nil {
		s.pool = b.Configs
	}
}

// installedBank returns the bank SetBank supplied for name, if any.
func (s *Suite) installedBank(name string) (*core.Bank, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.installed[name] {
		return nil, false
	}
	return s.banks[name].bank, true
}

// DecadeBank returns the Figure-13 bank for (dataset, decades): its own pool
// sampled from the nested server-lr space.
func (s *Suite) DecadeBank(name string, decades int) *core.Bank {
	key := fmt.Sprintf("%s-d%d", name, decades)
	return s.bankFor(key, func() *core.Bank {
		pop := s.Population(name)
		opts := core.DefaultBuildOptions()
		opts.NumConfigs = s.Cfg.Fig13Configs
		opts.MaxRounds = s.Cfg.MaxRounds
		opts.Workers = s.Cfg.Workers
		opts.Space = hpo.DefaultSpace().WithServerLRDecades(float64(decades))
		return s.buildCached(context.Background(), key, pop, opts, s.Cfg.Seed+uint64(100+decades))
	})
}

// Result is a rendered experiment outcome.
type Result struct {
	ID    string // "figure3", "table1", ...
	Title string
	// Lines is the text rendering (charts + numbers).
	Lines []string
	// CSVHeader/CSVRows hold the underlying numbers for results/<id>.csv.
	CSVHeader []string
	CSVRows   [][]string
}

// Text returns the rendering as one string.
func (r Result) Text() string {
	out := ""
	for _, l := range r.Lines {
		out += l + "\n"
	}
	return out
}

// subsampleCounts returns the paper's per-dataset raw evaluation-client
// counts scaled to the suite's pool size (deduplicated, ascending, always
// ending at the full pool).
func subsampleCounts(name string, nVal int) []int {
	paper := map[string][]int{
		"cifar10":       {1, 3, 9, 27, 100},
		"femnist":       {1, 3, 9, 27, 81, 360},
		"stackoverflow": {1, 9, 81, 729, 3678},
		"reddit":        {1, 9, 81, 729, 10000},
	}
	full := map[string]int{"cifar10": 100, "femnist": 360, "stackoverflow": 3678, "reddit": 10000}
	counts, ok := paper[name]
	if !ok {
		counts = []int{1, 3, 9, nVal}
	}
	scale := float64(nVal) / float64(full[name])
	var out []int
	seen := map[int]bool{}
	for _, c := range counts {
		v := int(math.Round(float64(c) * scale))
		if v < 1 {
			v = 1
		}
		if v > nVal {
			v = nVal
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	if !seen[nVal] {
		out = append(out, nVal)
	}
	return out
}

// rsTuner builds the paper's RS tuner for the config.
func (c Config) rsTuner() core.Tuner {
	return core.Tuner{Method: hpo.RandomSearch{}, Space: hpo.DefaultSpace(), Settings: c.Settings(),
		SequentialTrials: c.SequentialTrials}
}

// runRSOnBank runs bootstrap RS trials against a bank under the noise
// setting and returns per-trial final true errors.
func (s *Suite) runRSOnBank(name string, noise core.Noise, trials int, seedLabel string) []float64 {
	bank := s.Bank(name)
	oracle, err := core.NewBankOracle(bank, noise.HeterogeneityP, noise.Scheme(), s.Cfg.Seed)
	if err != nil {
		panic(fmt.Sprintf("exper: %s: %v", name, err))
	}
	tn := s.Cfg.rsTuner()
	tn.Settings = noise.Settings(tn.Settings)
	results := tn.RunTrials(oracle, trials, rng.New(s.Cfg.Seed).Split(seedLabel))
	return core.FinalErrors(results)
}

// bestPoolError returns the lowest full-validation error over the pool at
// max fidelity ("Best HPs" reference line in Figure 3).
func bestPoolError(b *core.Bank, weighted bool) float64 {
	best := math.Inf(1)
	for ci := range b.Configs {
		errs, err := b.ClientErrors(0, ci, b.MaxRounds())
		if err != nil {
			panic(err)
		}
		e := weightedMean(errs, b.ExampleCounts[0], weighted)
		if e < best {
			best = e
		}
	}
	return best
}

func weightedMean(errs []float64, counts []int, weighted bool) float64 {
	num, den := 0.0, 0.0
	for i, e := range errs {
		w := 1.0
		if weighted {
			w = float64(counts[i])
		}
		num += w * e
		den += w
	}
	return num / den
}

// pct formats an error as percent.
func pct(x float64) string { return fmt.Sprintf("%.2f", 100*x) }

// renderSeriesTable builds the numeric table under a chart.
func renderSeriesTable(title string, xName string, series []plot.Series) ([]string, []string, [][]string) {
	cols := []string{xName, "series", "median_err_pct", "q1_pct", "q3_pct"}
	var rows [][]string
	for _, ser := range series {
		for i := range ser.X {
			lo, hi := ser.Y[i], ser.Y[i]
			if ser.YLo != nil {
				lo, hi = ser.YLo[i], ser.YHi[i]
			}
			xCell := fmt.Sprintf("%g", ser.X[i])
			if ser.XTickLabel != nil {
				xCell = ser.XTickLabel[i]
			}
			rows = append(rows, []string{xCell, ser.Label, plot.F(ser.Y[i] * 100), plot.F(lo * 100), plot.F(hi * 100)})
		}
	}
	tbl := plot.Table{Title: title, Columns: cols, Rows: rows}
	return tbl.Render(), cols, rows
}
