package exper

import (
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noisyeval/internal/core"
)

// schedConfig is a sub-Quick miniature so scheduler tests can afford to
// build fresh suites repeatedly (determinism needs independent runs).
func schedConfig() Config {
	cfg := Quick()
	cfg.Scales = map[string]float64{
		"cifar10":       0.06,
		"femnist":       0.02,
		"stackoverflow": 0.002,
		"reddit":        0.0008,
	}
	cfg.BankConfigs = 6
	cfg.MaxRounds = 9
	cfg.K = 4
	cfg.Trials = 4
	cfg.MethodTrials = 2
	cfg.Fig13Configs = 4
	return cfg
}

// schedJobs is the scheduler-test workload: populations only (table1),
// shared-pool banks (figure3/figure7), and decade banks (figure13).
func schedJobs(t *testing.T) []Job {
	t.Helper()
	jobs, err := JobsByID([]string{"table1", "figure3", "figure7", "figure13"})
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func runScheduler(t *testing.T, workers int, store *core.BankStore) (*Suite, []Result) {
	t.Helper()
	s := NewSuite(schedConfig())
	if store != nil {
		s.SetStore(store)
	}
	results, err := Scheduler{Jobs: workers}.Run(s, schedJobs(t))
	if err != nil {
		t.Fatal(err)
	}
	return s, results
}

func TestSchedulerDeterministicAcrossWorkerCounts(t *testing.T) {
	_, serial := runScheduler(t, 1, nil)
	_, parallel := runScheduler(t, 8, nil)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("result %d: id %q vs %q", i, serial[i].ID, parallel[i].ID)
		}
		if serial[i].Text() != parallel[i].Text() {
			t.Errorf("%s: rendering depends on worker count", serial[i].ID)
		}
		if !reflect.DeepEqual(serial[i].CSVRows, parallel[i].CSVRows) {
			t.Errorf("%s: CSV depends on worker count", serial[i].ID)
		}
	}
}

func TestSchedulerDedupsBankBuilds(t *testing.T) {
	s, results := runScheduler(t, 8, nil)
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	// figure3 and figure7 share the four dataset banks; figure13 adds four
	// cifar10 decade banks. No bank may build twice.
	want := int64(len(DatasetNames) + len(fig13Decades))
	if got := s.BankBuilds(); got != want {
		t.Errorf("banks trained = %d, want %d", got, want)
	}
}

func TestSchedulerWarmStoreBuildsNothing(t *testing.T) {
	store, err := core.NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, cold := runScheduler(t, 4, store)
	warmSuite, warm := runScheduler(t, 4, store)
	if got := warmSuite.BankBuilds(); got != 0 {
		t.Errorf("warm run trained %d banks, want 0", got)
	}
	for i := range cold {
		if cold[i].Text() != warm[i].Text() {
			t.Errorf("%s: warm-cache rendering differs from cold", cold[i].ID)
		}
		if !reflect.DeepEqual(cold[i].CSVRows, warm[i].CSVRows) {
			t.Errorf("%s: warm-cache CSV differs from cold", cold[i].ID)
		}
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Errorf("store stats = %+v, expected hits on the warm run", st)
	}
}

func TestSchedulerCancelsOnFirstError(t *testing.T) {
	var executed atomic.Int32
	fail := Job{ID: "boom", Run: func(*Suite) Result {
		executed.Add(1)
		panic("driver exploded")
	}}
	jobs := []Job{fail}
	for i := 0; i < 5; i++ {
		jobs = append(jobs, Job{ID: "slow", Run: func(*Suite) Result {
			executed.Add(1)
			time.Sleep(20 * time.Millisecond)
			return Result{ID: "slow"}
		}})
	}

	var mu sync.Mutex
	skipped := 0
	sch := Scheduler{Jobs: 1, OnEvent: func(e Event) {
		if e.Kind == TaskSkip {
			mu.Lock()
			skipped++
			mu.Unlock()
		}
	}}
	_, err := sch.Run(NewSuite(schedConfig()), jobs)
	if err == nil {
		t.Fatal("scheduler swallowed the driver failure")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "driver exploded") {
		t.Errorf("error %q does not identify the failing task", err)
	}
	// One worker: the failing job runs first, every pending job is skipped.
	if got := executed.Load(); got != 1 {
		t.Errorf("executed %d jobs after failure, want 1", got)
	}
	if skipped != 5 {
		t.Errorf("skipped %d jobs, want 5", skipped)
	}
}

func TestSchedulerEmitsLifecycleEvents(t *testing.T) {
	var mu sync.Mutex
	kinds := map[string][]EventKind{}
	sch := Scheduler{Jobs: 2, OnEvent: func(e Event) {
		mu.Lock()
		kinds[e.Task] = append(kinds[e.Task], e.Kind)
		mu.Unlock()
	}}
	s := NewSuite(schedConfig())
	jobs, err := JobsByID([]string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sch.Run(s, jobs); err != nil {
		t.Fatal(err)
	}
	// table1 plus its four population artifacts.
	wantTasks := []string{"table1", "pop:cifar10", "pop:femnist", "pop:stackoverflow", "pop:reddit"}
	for _, task := range wantTasks {
		got := kinds[task]
		if len(got) != 2 || got[0] != TaskStart || got[1] != TaskDone {
			t.Errorf("task %s events = %v, want [start done]", task, got)
		}
	}
	if len(kinds) != len(wantTasks) {
		t.Errorf("saw %d tasks, want %d (%v)", len(kinds), len(wantTasks), kinds)
	}
}

func TestSchedulerRunsDriversWithUndeclaredDepsToo(t *testing.T) {
	// A job with no declaration still works: the suite builds banks
	// lazily inside the driver (just without pipelining).
	s := NewSuite(schedConfig())
	jobs := []Job{{ID: "table1", Run: TableDatasets}}
	results, err := Scheduler{Jobs: 2}.Run(s, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != "table1" {
		t.Fatalf("results = %+v", results)
	}
}
