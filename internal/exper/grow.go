package exper

import (
	"fmt"

	"noisyeval/internal/core"
	"noisyeval/internal/fl"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// GrowResult reports one bank growth: the dataset, the serve-visible
// content addresses before and after (BankKeyFor — the address runs and
// sessions record), and the pool sizes.
type GrowResult struct {
	Dataset string
	OldKey  string // content address before growth (kept as a store alias)
	NewKey  string // content address after growth
	Added   int    // configs trained by this growth
	Total   int    // pool size after growth
}

// GrowBank extends the dataset's bank by add freshly sampled configs: it
// trains exactly the new index range [len(pool), len(pool)+add) with the
// same TrainRange unit a dist fleet worker runs, appends it onto the
// existing bank (core.Bank.Extend), and installs the grown bank as the
// dataset's bank — from then on BankBuildInputs reports the union pool, so
// the bank's content address (and every run key derived from it) advances.
// The extra configs are sampled deterministically from (suite seed, dataset,
// current pool size), making the grown bank byte-identical to a cold build
// over the union pool with the same seed.
//
// With a store attached, the grown bank is persisted under its new
// population-level content address and the old address is kept as an alias
// (BankStore.WriteAlias), so peers and clients holding the pre-growth key
// still resolve the bank. Growths are serialized per suite; in-flight
// readers of the old bank keep their consistent (smaller) view.
//
// Banks installed via SetBank cannot grow: their build inputs are unknown,
// so there is no plan to extend against.
func (s *Suite) GrowBank(name string, add int) (*core.Bank, GrowResult, error) {
	if !KnownDataset(name) {
		return nil, GrowResult{}, fmt.Errorf("exper: grow bank: unknown dataset %q", name)
	}
	if add < 1 {
		return nil, GrowResult{}, fmt.Errorf("exper: grow bank: add %d must be >= 1", add)
	}
	if _, ok := s.installedBank(name); ok {
		return nil, GrowResult{}, fmt.Errorf("exper: grow bank: %s uses an installed bank (unknown build inputs)", name)
	}
	s.growMu.Lock()
	defer s.growMu.Unlock()

	oldKey := s.bankKeyFor(name)
	old := s.Bank(name)
	pop := s.Population(name)
	_, oldOpts, seed := s.BankBuildInputs(name)

	cur := old.Configs
	extra := hpo.DefaultSpace().SampleN(add, rng.New(s.Cfg.Seed).Splitf("grow-%s-%d", name, len(cur)))
	union := make([]fl.HParams, 0, len(cur)+add)
	union = append(append(union, cur...), extra...)

	opts := oldOpts
	opts.Configs = union
	plan, err := core.NewBuildPlan(pop, opts, seed)
	if err != nil {
		return nil, GrowResult{}, fmt.Errorf("exper: grow bank %s: %w", name, err)
	}
	shard, err := plan.TrainRange(len(cur), len(union), s.Cfg.Workers)
	if err != nil {
		return nil, GrowResult{}, fmt.Errorf("exper: grow bank %s: %w", name, err)
	}
	grown, err := old.Extend(plan, []*core.BankShard{shard})
	if err != nil {
		return nil, GrowResult{}, fmt.Errorf("exper: grow bank %s: %w", name, err)
	}
	s.builds.Add(1)

	if st := s.Store(); st != nil {
		oldPopKey := core.BankKeyForPopulation(pop, oldOpts, seed)
		newPopKey := core.BankKeyForPopulation(pop, opts, seed)
		if err := st.Put(newPopKey, grown); err != nil {
			return nil, GrowResult{}, fmt.Errorf("exper: grow bank %s: %w", name, err)
		}
		if err := st.WriteAlias(oldPopKey, newPopKey); err != nil {
			return nil, GrowResult{}, fmt.Errorf("exper: grow bank %s: %w", name, err)
		}
	}

	// Install the grown bank and the union pool atomically: from here on
	// Bank(name) serves the grown bank and BankBuildInputs reports the
	// union pool, advancing the content address.
	e := &bankEntry{bank: grown}
	e.once.Do(func() {})
	s.mu.Lock()
	s.grownPools[name] = union
	s.banks[name] = e
	s.ready[name] = true
	s.mu.Unlock()

	return grown, GrowResult{
		Dataset: name,
		OldKey:  oldKey,
		NewKey:  s.bankKeyFor(name),
		Added:   add,
		Total:   len(union),
	}, nil
}

// poolFor returns the dataset's effective config pool: the grown union once
// GrowBank has run, the shared pool otherwise.
func (s *Suite) poolFor(name string) []fl.HParams {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.grownPools[name]; ok {
		return p
	}
	return s.sharedPoolLocked()
}
