package exper

import (
	"fmt"
	"math"

	"noisyeval/internal/core"
	"noisyeval/internal/hpo"
	"noisyeval/internal/plot"
	"noisyeval/internal/rng"
	"noisyeval/internal/stats"
)

// Figure7 reproduces the client-heterogeneity scatter: each pool config at
// (x = full validation error, y = minimum client error). Datasets whose
// configs reach near-zero client error while performing poorly globally
// (CIFAR10, Reddit) are the ones where biased selection is catastrophic.
func Figure7(s *Suite) Result {
	res := Result{ID: "figure7", Title: "Figure 7: full error vs minimum client error (128 configs)"}
	res.CSVHeader = []string{"dataset", "config", "full_err_pct", "min_client_err_pct"}
	for _, name := range DatasetNames {
		bank := s.Bank(name)
		var points []plot.ScatterPoint
		for ci := range bank.Configs {
			errs, err := bank.ClientErrors(0, ci, bank.MaxRounds())
			if err != nil {
				panic(err)
			}
			full := weightedMean(errs, bank.ExampleCounts[0], true)
			minC := stats.Min(errs)
			points = append(points, plot.ScatterPoint{X: full * 100, Y: minC * 100})
			res.CSVRows = append(res.CSVRows, []string{
				name, fmt.Sprintf("%d", ci), plot.F(full * 100), plot.F(minC * 100),
			})
		}
		sc := plot.Scatter{
			Title:  name,
			XLabel: "full validation error (%)", YLabel: "min client error (%)",
			Points: points,
		}
		res.Lines = append(res.Lines, sc.Render()...)
		res.Lines = append(res.Lines, "")
	}
	return res
}

// transferPairs returns the dataset pairs of Figure 10 (matched task types)
// and Figure 14 (mismatched).
func transferPairs(figure string) [][2]string {
	if figure == "figure10" {
		return [][2]string{{"cifar10", "femnist"}, {"stackoverflow", "reddit"}}
	}
	return [][2]string{{"cifar10", "reddit"}, {"femnist", "stackoverflow"}}
}

// transferScatter renders config error pairs across two datasets (the banks
// share one config pool, so point i is the same configuration trained
// separately on each dataset).
func (s *Suite) transferScatter(id, title string, pairs [][2]string) Result {
	res := Result{ID: id, Title: title}
	res.CSVHeader = []string{"dataset_x", "dataset_y", "config", "err_x_pct", "err_y_pct"}
	for _, pair := range pairs {
		bx, by := s.Bank(pair[0]), s.Bank(pair[1])
		var points []plot.ScatterPoint
		var xs, ys []float64
		n := minIntE(len(bx.Configs), len(by.Configs))
		for ci := 0; ci < n; ci++ {
			ex, err := bx.ClientErrors(0, ci, bx.MaxRounds())
			if err != nil {
				panic(err)
			}
			ey, err := by.ClientErrors(0, ci, by.MaxRounds())
			if err != nil {
				panic(err)
			}
			fx := weightedMean(ex, bx.ExampleCounts[0], true)
			fy := weightedMean(ey, by.ExampleCounts[0], true)
			points = append(points, plot.ScatterPoint{X: fx * 100, Y: fy * 100})
			xs = append(xs, fx)
			ys = append(ys, fy)
			res.CSVRows = append(res.CSVRows, []string{
				pair[0], pair[1], fmt.Sprintf("%d", ci), plot.F(fx * 100), plot.F(fy * 100),
			})
		}
		rho := stats.Spearman(xs, ys)
		sc := plot.Scatter{
			Title:  fmt.Sprintf("%s vs %s (Spearman %.2f)", pair[0], pair[1], rho),
			XLabel: pair[0] + " error (%)", YLabel: pair[1] + " error (%)",
			Points: points,
		}
		res.Lines = append(res.Lines, sc.Render()...)
		res.Lines = append(res.Lines, "")
	}
	return res
}

// Figure10 reproduces the matched-pair HP transfer scatter.
func Figure10(s *Suite) Result {
	return s.transferScatter("figure10", "Figure 10: HP transfer across matched dataset pairs", transferPairs("figure10"))
}

// Figure14 reproduces the mismatched-pair transfer scatter (Appendix C).
func Figure14(s *Suite) Result {
	return s.transferScatter("figure14", "Figure 14: HP transfer across mismatched pairs", transferPairs("figure14"))
}

// Figure11 reproduces the one-shot proxy RS matrix: for every (proxy,
// client) dataset pair, the median client error of configs selected purely
// on the proxy.
func Figure11(s *Suite) Result {
	res := Result{ID: "figure11", Title: "Figure 11: one-shot proxy RS across dataset pairs"}
	res.CSVHeader = []string{"client", "proxy", "median_err_pct", "q1_pct", "q3_pct", "self_tuned_pct"}
	for _, client := range DatasetNames {
		var bars []plot.Bar
		selfTuned := stats.Median(s.runRSOnBank(client, core.Noiseless(), s.Cfg.Trials, "fig11-self-"+client))
		for _, proxy := range DatasetNames {
			finals := s.proxyTrialFinals(proxy, client, "fig11-"+proxy+"-"+client)
			sum := stats.Summarize(finals)
			bars = append(bars, plot.Bar{Label: proxy, Value: sum.Median * 100})
			res.CSVRows = append(res.CSVRows, []string{
				client, proxy, plot.F(sum.Median * 100), plot.F(sum.Q1 * 100), plot.F(sum.Q3 * 100), plot.F(selfTuned * 100),
			})
		}
		bc := plot.BarChart{
			Title: fmt.Sprintf("client=%s (self-tuned noiseless RS: %s%%)", client, pct(selfTuned)),
			Unit:  "%", Bars: bars,
		}
		res.Lines = append(res.Lines, bc.Render()...)
		res.Lines = append(res.Lines, "")
	}
	return res
}

// proxyTrialFinals runs bootstrap one-shot proxy RS trials.
func (s *Suite) proxyTrialFinals(proxyName, clientName, seedLabel string) []float64 {
	proxyOracle, err := core.NewBankOracle(s.Bank(proxyName), 0, core.Noiseless().Scheme(), s.Cfg.Seed)
	if err != nil {
		panic(err)
	}
	clientOracle, err := core.NewBankOracle(s.Bank(clientName), 0, core.Noiseless().Scheme(), s.Cfg.Seed)
	if err != nil {
		panic(err)
	}
	m := hpo.OneShotProxyRS{Proxy: proxyOracle}
	g := rng.New(s.Cfg.Seed).Split(seedLabel)
	finals := make([]float64, s.Cfg.Trials)
	for t := range finals {
		h := m.Run(clientOracle, hpo.DefaultSpace(), s.Cfg.Settings(), g.Splitf("trial-%d", t))
		if rec, ok := h.Recommend(); ok {
			finals[t] = rec.True
		} else {
			finals[t] = 1
		}
	}
	return finals
}

// Figure12 reproduces the proxy-vs-noisy-evaluation comparison: RS budget
// curves at 1% subsampling under ε ∈ {1, 10, ∞}, against the one-shot proxy
// baselines from every proxy dataset.
func Figure12(s *Suite) Result {
	res := Result{ID: "figure12", Title: "Figure 12: noisy tuning vs one-shot proxy RS"}
	res.CSVHeader = []string{"client", "series", "budget_rounds", "median_err_pct"}
	budgets := budgetGrid(s.Cfg)
	epsilons := []float64{1, 10, math.Inf(1)}
	for _, client := range DatasetNames {
		var series []plot.Series
		// Noisy-evaluation RS curves.
		for _, eps := range epsilons {
			label := fmt.Sprintf("RS eps=%g", eps)
			if math.IsInf(eps, 1) {
				label = "RS eps=inf"
			}
			noise := core.Noise{SampleFraction: 0.01, Epsilon: eps}
			oracle, err := core.NewBankOracle(s.Bank(client), 0, noise.Scheme(), s.Cfg.Seed)
			if err != nil {
				panic(err)
			}
			tn := core.Tuner{Method: hpo.RandomSearch{}, Space: hpo.DefaultSpace(), Settings: noise.Settings(s.Cfg.Settings()),
				SequentialTrials: s.Cfg.SequentialTrials}
			results := tn.RunTrials(oracle, s.Cfg.Trials, rng.New(s.Cfg.Seed).Splitf("fig12-%s-%v", client, eps))
			ser := plot.Series{Label: label}
			for _, b := range budgets {
				med := stats.Median(core.CurveAt(results, b))
				ser.X = append(ser.X, float64(b))
				ser.Y = append(ser.Y, med)
				res.CSVRows = append(res.CSVRows, []string{client, label, fmt.Sprintf("%d", b), plot.F(med * 100)})
			}
			series = append(series, ser)
		}
		// Proxy baselines: flat lines at the proxy-chosen config's final
		// error (a single model trained with the chosen HPs).
		for _, proxy := range DatasetNames {
			finals := s.proxyTrialFinals(proxy, client, "fig12-proxy-"+proxy+"-"+client)
			med := stats.Median(finals)
			ser := plot.Series{Label: "proxy=" + proxy}
			for _, b := range budgets {
				ser.X = append(ser.X, float64(b))
				ser.Y = append(ser.Y, med)
			}
			res.CSVRows = append(res.CSVRows, []string{client, "proxy=" + proxy, "final", plot.F(med * 100)})
			series = append(series, ser)
		}
		ch := plot.Chart{
			Title:  client,
			XLabel: "total training rounds", YLabel: "full validation error",
			Series: series,
		}
		res.Lines = append(res.Lines, ch.Render()...)
		res.Lines = append(res.Lines, "")
	}
	return res
}

func minIntE(a, b int) int {
	if a < b {
		return a
	}
	return b
}
