// This file holds the one-off tuning run entry point: the reusable,
// non-figure path behind cmd/fedtune and the noisyevald serving layer. A
// TuneRequest names a dataset, a method, a noise setting, and a trial count;
// RunTune executes the paper's bootstrap protocol against the suite's
// (cached) bank and returns a summarized TuneResult tagged with
// content-addressed bank and run keys.

package exper

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"noisyeval/internal/core"
	"noisyeval/internal/hpo"
	"noisyeval/internal/obs"
	"noisyeval/internal/rng"
	"noisyeval/internal/stats"
)

// TuneRequest describes one tuning run.
type TuneRequest struct {
	// Dataset is one of DatasetNames.
	Dataset string
	// Method is the tuning algorithm (see hpo.MethodByName).
	Method hpo.Method
	// Noise is the evaluation-noise setting; its HeterogeneityP must be a
	// partition the suite's banks record (0, 0.5, or 1).
	Noise core.Noise
	// Trials is the number of bootstrap trials (≥ 1).
	Trials int
	// Seed drives the oracle's evaluation subsampling and the trial RNG
	// streams. It does not affect bank content (the suite's Config.Seed
	// does), so runs with different seeds share one bank.
	Seed uint64
}

// TrialUpdate is one per-trial progress notification from RunTune.
type TrialUpdate struct {
	Trial     int     // which bootstrap trial finished (0-based)
	Completed int     // trials completed so far (1..Total)
	Total     int     // total trials in the run
	FinalTrue float64 // the trial's final true full-validation error
}

// TuneResult is the outcome of one tuning run.
type TuneResult struct {
	Dataset string
	Method  string // method display name (RS, TPE, ...)
	Noise   core.Noise
	Trials  int
	// BudgetRounds is the per-trial training-round budget.
	BudgetRounds int
	// BankKey is the content address of the bank the run consumed
	// (core.BankKey over the suite's build inputs).
	BankKey string
	// RunKey is the content address of the run itself (core.RunKey); equal
	// keys mean identical results.
	RunKey string
	// Finals holds the per-trial final true errors; Summary summarizes them.
	Finals  []float64
	Summary stats.Summary
	// Best is trial 0's recommendation (nil when the budget admitted no
	// observation).
	Best *hpo.Observation
}

// RunKeyFor returns the content-addressed run key RunTune would assign the
// request, without executing anything (and without forcing a bank build).
// noisyevald deduplicates submissions on this key before queueing them.
func (s *Suite) RunKeyFor(req TuneRequest) (string, error) {
	_, runKey, err := s.tuneKeys(req)
	return runKey, err
}

// tuneKeys validates the request and computes both content addresses: the
// bank the run will consume and the run itself. RunKeyFor and RunTune share
// it, so the two keys are computed (and hashed) exactly once per call and
// can never drift apart.
func (s *Suite) tuneKeys(req TuneRequest) (bankKey, runKey string, err error) {
	if err := s.validateTune(req); err != nil {
		return "", "", err
	}
	bankKey = s.bankKeyFor(req.Dataset)
	settings := req.Noise.Settings(hpo.Settings{Budget: s.Cfg.Budget()})
	return bankKey, core.RunKey(bankKey, methodKey(req.Method), req.Noise, settings, req.Trials, req.Seed), nil
}

// bankKeyFor returns the content address of the bank Bank(name) will hand a
// run: normally core.BankKey over the build inputs, but for a bank installed
// via SetBank — an external artifact whose build inputs are unknown — the
// fingerprint of the installed content. Without the distinction, two runs
// against different -bank files of one dataset would share a run key while
// producing different results.
func (s *Suite) bankKeyFor(name string) string {
	if b, ok := s.installedBank(name); ok {
		return "installed-" + core.BankFingerprint(b)
	}
	spec, opts, seed := s.BankBuildInputs(name)
	return core.BankKey(spec, opts, seed)
}

// BankKeyFor exposes the bank content address a run against name records —
// the serve layer's session API reports it so external drivers can correlate
// a session with /v1/runs results and /v1/banks entries for the same bank.
func (s *Suite) BankKeyFor(name string) string { return s.bankKeyFor(name) }

// methodKey renders a method for run-key hashing: the display name plus the
// value's full configuration, so parameterized variants (e.g. ResampledRS
// with different Reps) hash distinctly.
func methodKey(m hpo.Method) string {
	return fmt.Sprintf("%s %#v", m.Name(), m)
}

// validateTune rejects requests RunTune cannot execute, before any expensive
// work (in particular before a bank build).
func (s *Suite) validateTune(req TuneRequest) error {
	if req.Method == nil {
		return fmt.Errorf("exper: tune request needs a method")
	}
	if !KnownDataset(req.Dataset) {
		return fmt.Errorf("exper: unknown dataset %q (valid: %s)",
			req.Dataset, strings.Join(DatasetNames, ", "))
	}
	if req.Trials < 1 {
		return fmt.Errorf("exper: trials %d must be ≥ 1", req.Trials)
	}
	if p := req.Noise.HeterogeneityP; p != 0 {
		var recorded []float64
		if b, ok := s.installedBank(req.Dataset); ok {
			recorded = b.Partitions // always includes 0 at index 0
		} else {
			_, opts, _ := s.BankBuildInputs(req.Dataset)
			recorded = append([]float64{0}, opts.Partitions...)
		}
		ok := false
		for _, rec := range recorded {
			if rec == p {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("exper: heterogeneity p=%g not recorded by the bank (valid: %v)",
				p, recorded)
		}
	}
	return nil
}

// RunTune executes one tuning run against the suite's bank for the dataset,
// building (or loading from the attached store) the bank on first use.
// onTrial, when non-nil, receives one serialized TrialUpdate per finished
// bootstrap trial. The result is deterministic in (suite config, request):
// repeated identical requests produce identical results, which is what makes
// RunKey a sound dedup address.
func (s *Suite) RunTune(req TuneRequest, onTrial func(TrialUpdate)) (result *TuneResult, err error) {
	return s.RunTuneCtx(context.Background(), req, onTrial)
}

// RunTuneCtx is RunTune with a caller context. When ctx carries an
// obs.Trace (serve.Manager admission attaches one), the run's timeline
// gains bank.lookup / bank.build spans from the builder tiers and an
// oracle.trials span around the bootstrap trial loop. Tracing never
// perturbs results — spans only observe wall clock.
func (s *Suite) RunTuneCtx(ctx context.Context, req TuneRequest, onTrial func(TrialUpdate)) (result *TuneResult, err error) {
	bankKey, runKey, err := s.tuneKeys(req)
	if err != nil {
		return nil, err
	}
	// Bank construction panics on internal failure (exper drivers are
	// panic-based); a serving layer needs an error instead.
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, fmt.Errorf("exper: tuning run: %v", r)
		}
	}()

	bank := s.BankCtx(ctx, req.Dataset)

	oracle, err := core.NewBankOracle(bank, req.Noise.HeterogeneityP, req.Noise.Scheme(), req.Seed)
	if err != nil {
		return nil, err
	}
	settings := req.Noise.Settings(hpo.Settings{Budget: s.Cfg.Budget()})
	tn := core.Tuner{Method: req.Method, Space: hpo.DefaultSpace(), Settings: settings,
		SequentialTrials: s.Cfg.SequentialTrials}

	var progress func(core.TrialResult, int)
	if onTrial != nil {
		progress = func(res core.TrialResult, completed int) {
			onTrial(TrialUpdate{
				Trial:     res.Trial,
				Completed: completed,
				Total:     req.Trials,
				FinalTrue: res.FinalTrue,
			})
		}
	}
	// The trial stream label predates this entry point (cmd/fedtune used
	// "fedtune" directly); keeping it preserves byte-identical results.
	sp := obs.TraceFrom(ctx).StartSpan("oracle.trials",
		"dataset", req.Dataset, "method", req.Method.Name(), "trials", strconv.Itoa(req.Trials))
	results := tn.RunTrialsProgress(oracle, req.Trials, rng.New(req.Seed).Split("fedtune"), progress)
	sp.End()

	finals := core.FinalErrors(results)
	out := &TuneResult{
		Dataset:      req.Dataset,
		Method:       req.Method.Name(),
		Noise:        req.Noise,
		Trials:       req.Trials,
		BudgetRounds: settings.Budget.TotalRounds,
		BankKey:      bankKey,
		RunKey:       runKey,
		Finals:       finals,
		Summary:      stats.Summarize(finals),
	}
	if rec, ok := results[0].History.Recommend(); ok {
		out.Best = &rec
	}
	return out, nil
}
