package exper

import (
	"strings"
	"testing"

	"noisyeval/internal/core"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// tinyConfig is a miniature of Quick(): banks build in tens of
// milliseconds, so run tests stay fast without a warm cache.
func tinyConfig() Config {
	return Config{
		Scales:        map[string]float64{"cifar10": 0.06, "femnist": 0.02, "stackoverflow": 0.002, "reddit": 0.0008},
		CapExamples:   30,
		BankConfigs:   6,
		MaxRounds:     9,
		K:             4,
		Trials:        4,
		MethodTrials:  2,
		Seed:          7,
		Fig13Datasets: []string{"cifar10"},
		Fig13Configs:  4,
	}
}

func TestRunTuneDeterministicAndKeyed(t *testing.T) {
	s := NewSuite(tinyConfig())
	req := TuneRequest{
		Dataset: "cifar10",
		Method:  hpo.RandomSearch{},
		Noise:   core.Noise{SampleCount: 2},
		Trials:  3,
		Seed:    11,
	}
	a, err := s.RunTune(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunTune(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.RunKey == "" || a.BankKey == "" {
		t.Fatal("missing content keys")
	}
	if a.RunKey != b.RunKey {
		t.Error("identical requests produced different run keys")
	}
	if len(a.Finals) != 3 || len(b.Finals) != 3 {
		t.Fatalf("finals = %d/%d, want 3", len(a.Finals), len(b.Finals))
	}
	for i := range a.Finals {
		if a.Finals[i] != b.Finals[i] {
			t.Fatalf("trial %d: %v vs %v (run not deterministic)", i, a.Finals[i], b.Finals[i])
		}
	}

	req.Seed = 12
	c, err := s.RunTune(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.RunKey == a.RunKey {
		t.Error("different seeds share a run key")
	}

	if got, err := s.RunKeyFor(req); err != nil || got != c.RunKey {
		t.Errorf("RunKeyFor = %q, %v; want %q", got, err, c.RunKey)
	}
}

// TestRunTuneMatchesDirectPath pins the extraction: RunTune must reproduce
// exactly what cmd/fedtune's inline code produced (same oracle construction,
// settings, and trial RNG stream).
func TestRunTuneMatchesDirectPath(t *testing.T) {
	cfg := tinyConfig()
	s := NewSuite(cfg)
	noise := core.Noise{SampleCount: 2, Bias: 0.5}
	const seed, trials = 3, 3

	res, err := s.RunTune(TuneRequest{
		Dataset: "cifar10", Method: hpo.TPE{}, Noise: noise, Trials: trials, Seed: seed,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	bank := s.Bank("cifar10")
	oracle, err := core.NewBankOracle(bank, noise.HeterogeneityP, noise.Scheme(), seed)
	if err != nil {
		t.Fatal(err)
	}
	settings := noise.Settings(hpo.Settings{Budget: cfg.Budget()})
	tn := core.Tuner{Method: hpo.TPE{}, Space: hpo.DefaultSpace(), Settings: settings}
	want := core.FinalErrors(tn.RunTrials(oracle, trials, rng.New(seed).Split("fedtune")))

	for i := range want {
		if res.Finals[i] != want[i] {
			t.Fatalf("trial %d: RunTune %v vs direct %v", i, res.Finals[i], want[i])
		}
	}
}

func TestRunTuneProgress(t *testing.T) {
	s := NewSuite(tinyConfig())
	const trials = 4
	var updates []TrialUpdate
	res, err := s.RunTune(TuneRequest{
		Dataset: "femnist", Method: hpo.RandomSearch{}, Trials: trials, Seed: 1,
	}, func(u TrialUpdate) { updates = append(updates, u) })
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != trials {
		t.Fatalf("got %d updates, want %d", len(updates), trials)
	}
	seen := map[int]bool{}
	for i, u := range updates {
		if u.Completed != i+1 || u.Total != trials {
			t.Errorf("update %d: completed=%d total=%d", i, u.Completed, u.Total)
		}
		if seen[u.Trial] {
			t.Errorf("trial %d reported twice", u.Trial)
		}
		seen[u.Trial] = true
		if u.FinalTrue != res.Finals[u.Trial] {
			t.Errorf("trial %d: update error %v != result %v", u.Trial, u.FinalTrue, res.Finals[u.Trial])
		}
	}
}

func TestRunTuneValidation(t *testing.T) {
	s := NewSuite(tinyConfig())
	cases := []struct {
		name string
		req  TuneRequest
		want string
	}{
		{"unknown dataset", TuneRequest{Dataset: "mnist", Method: hpo.RandomSearch{}, Trials: 1}, "unknown dataset"},
		{"nil method", TuneRequest{Dataset: "cifar10", Trials: 1}, "method"},
		{"zero trials", TuneRequest{Dataset: "cifar10", Method: hpo.RandomSearch{}}, "trials"},
		{"bad partition", TuneRequest{Dataset: "cifar10", Method: hpo.RandomSearch{}, Trials: 1,
			Noise: core.Noise{HeterogeneityP: 0.25}}, "p=0.25"},
	}
	for _, tc := range cases {
		if _, err := s.RunTune(tc.req, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if s.BankBuilds() != 0 {
		t.Errorf("validation failures trained %d banks", s.BankBuilds())
	}
}

// TestRunTuneInstalledBankKeys pins the "equal keys mean identical results"
// invariant for banks installed via SetBank: a run against an external
// artifact must key on the artifact's content, not on the bank the suite
// would have built — two different installed banks must not share a run key.
func TestRunTuneInstalledBankKeys(t *testing.T) {
	cfg := tinyConfig()
	req := TuneRequest{Dataset: "cifar10", Method: hpo.RandomSearch{}, Trials: 2, Seed: 1}

	builtSuite := NewSuite(cfg)
	builtKey, err := builtSuite.RunKeyFor(req)
	if err != nil {
		t.Fatal(err)
	}

	// Two banks with different content for the same dataset name.
	keys := make([]string, 2)
	for i, nc := range []int{4, 5} {
		s := NewSuite(cfg)
		pop := s.Population("cifar10")
		opts := core.DefaultBuildOptions()
		opts.NumConfigs = nc
		opts.MaxRounds = 9
		bank, err := core.BuildBank(pop, opts, 99)
		if err != nil {
			t.Fatal(err)
		}
		s2 := NewSuite(cfg)
		s2.SetBank("cifar10", bank)
		res, err := s2.RunTune(req, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(res.BankKey, "installed-") {
			t.Errorf("installed bank key = %q, want installed- prefix", res.BankKey)
		}
		if res.RunKey == builtKey {
			t.Error("installed bank shares a run key with the suite-built bank")
		}
		if got, err := s2.RunKeyFor(req); err != nil || got != res.RunKey {
			t.Errorf("RunKeyFor = %q, %v; want %q", got, err, res.RunKey)
		}
		keys[i] = res.RunKey
	}
	if keys[0] == keys[1] {
		t.Error("two different installed banks share a run key")
	}
}

func TestRunKeyForDoesNotBuildBanks(t *testing.T) {
	s := NewSuite(tinyConfig())
	if _, err := s.RunKeyFor(TuneRequest{
		Dataset: "reddit", Method: hpo.BOHB{}, Trials: 2, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	if s.BankBuilds() != 0 {
		t.Errorf("RunKeyFor trained %d banks", s.BankBuilds())
	}
}
