package exper

import (
	"fmt"

	"noisyeval/internal/data"
	"noisyeval/internal/plot"
)

// TableDatasets reproduces Tables 1 and 2: the per-dataset client counts and
// example statistics of the generated populations (at the suite's scale),
// side by side with the paper's full-scale numbers.
func TableDatasets(s *Suite) Result {
	res := Result{ID: "table1", Title: "Tables 1/2: dataset statistics (generated vs paper full-scale)"}
	res.CSVHeader = []string{
		"dataset", "task",
		"train_clients", "eval_clients", "mean_examples", "min_examples", "max_examples", "total_examples",
		"paper_train_clients", "paper_eval_clients", "paper_mean", "paper_min", "paper_max",
	}
	paper := map[string][5]int{
		"cifar10":       {400, 100, 100, 83, 131},
		"femnist":       {3507, 360, 203, 19, 393},
		"stackoverflow": {10815, 3678, 391, 1, 194167},
		"reddit":        {40000, 9928, 19, 1, 14440},
	}
	tbl := plot.Table{
		Title: res.Title,
		Columns: []string{
			"dataset", "task", "train", "eval", "mean", "min", "max", "total",
			"paper(train/eval/mean/min/max)",
		},
	}
	for _, name := range DatasetNames {
		pop := s.Population(name)
		all := append(append([]*data.Client{}, pop.Train...), pop.Val...)
		st := data.PoolStats(all)
		p := paper[name]
		row := []string{
			name, pop.Spec.Kind.String(),
			fmt.Sprintf("%d", len(pop.Train)), fmt.Sprintf("%d", len(pop.Val)),
			fmt.Sprintf("%.0f", st.MeanExamples), fmt.Sprintf("%d", st.MinExamples),
			fmt.Sprintf("%d", st.MaxExamples), fmt.Sprintf("%d", st.TotalExamples),
			fmt.Sprintf("%d/%d/%d/%d/%d", p[0], p[1], p[2], p[3], p[4]),
		}
		tbl.Rows = append(tbl.Rows, row)
		res.CSVRows = append(res.CSVRows, []string{
			name, pop.Spec.Kind.String(),
			fmt.Sprintf("%d", len(pop.Train)), fmt.Sprintf("%d", len(pop.Val)),
			fmt.Sprintf("%.0f", st.MeanExamples), fmt.Sprintf("%d", st.MinExamples),
			fmt.Sprintf("%d", st.MaxExamples), fmt.Sprintf("%d", st.TotalExamples),
			fmt.Sprintf("%d", p[0]), fmt.Sprintf("%d", p[1]), fmt.Sprintf("%d", p[2]),
			fmt.Sprintf("%d", p[3]), fmt.Sprintf("%d", p[4]),
		})
	}
	res.Lines = tbl.Render()
	return res
}
