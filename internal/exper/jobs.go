package exper

import "fmt"

// fig13Decades is the server-lr range grid of the Appendix C experiment,
// shared by the Figure13 driver and its dependency declaration.
var fig13Decades = []int{1, 2, 3, 4}

// depsAllBanks declares the four dataset banks (the common case: most
// drivers sweep every dataset).
func depsAllBanks(Config) Deps { return Deps{Banks: DatasetNames} }

// AllJobs returns every figure/table driver as a declared-dependency job,
// in presentation order. The Scheduler uses the declarations to build each
// bank exactly once and to start drivers the moment their banks are ready.
func AllJobs() []Job {
	return []Job{
		{ID: "table1", Run: TableDatasets,
			Deps: func(Config) Deps { return Deps{Populations: DatasetNames} }},
		{ID: "figure1", Run: Figure1,
			// CIFAR10 methods plus the FEMNIST-proxy baseline.
			Deps: func(Config) Deps { return Deps{Banks: []string{"cifar10", "femnist"}} }},
		{ID: "figure3", Run: Figure3, Deps: depsAllBanks},
		{ID: "figure4", Run: Figure4, Deps: depsAllBanks},
		{ID: "figure5", Run: Figure5, Deps: depsAllBanks},
		{ID: "figure6", Run: Figure6, Deps: depsAllBanks},
		{ID: "figure7", Run: Figure7, Deps: depsAllBanks},
		{ID: "figure8", Run: Figure8, Deps: depsAllBanks},
		{ID: "figure9", Run: Figure9, Deps: depsAllBanks},
		{ID: "figure10", Run: Figure10, Deps: depsAllBanks},
		{ID: "figure11", Run: Figure11, Deps: depsAllBanks},
		{ID: "figure12", Run: Figure12, Deps: depsAllBanks},
		{ID: "figure13", Run: Figure13,
			Deps: func(cfg Config) Deps {
				var d Deps
				for _, name := range cfg.Fig13Datasets {
					for _, dec := range fig13Decades {
						d.DecadeBanks = append(d.DecadeBanks, DecadeDep{Dataset: name, Decades: dec})
					}
				}
				return d
			}},
		{ID: "figure14", Run: Figure14, Deps: depsAllBanks},
		{ID: "figure15", Run: Figure15, Deps: depsAllBanks},
		{ID: "figure16", Run: Figure16, Deps: depsAllBanks},
	}
}

// JobsByID resolves ids (in the given order) against the registry.
func JobsByID(ids []string) ([]Job, error) {
	byID := map[string]Job{}
	for _, j := range AllJobs() {
		byID[j.ID] = j
	}
	out := make([]Job, 0, len(ids))
	for _, id := range ids {
		j, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("exper: unknown experiment %q", id)
		}
		out = append(out, j)
	}
	return out, nil
}

// AllFigures returns every driver keyed by id (the scheduler-less view of
// the registry; each entry is independent so callers can select subsets).
func AllFigures() map[string]func(*Suite) Result {
	out := map[string]func(*Suite) Result{}
	for _, j := range AllJobs() {
		out[j.ID] = j.Run
	}
	return out
}

// FigureOrder lists driver ids in presentation order.
func FigureOrder() []string {
	jobs := AllJobs()
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}
