package exper

import (
	"testing"

	"noisyeval/internal/stats"
)

// TestCalibrationReport logs the pool error distribution per dataset at
// quick scale (run with -v); used to calibrate task difficulty against the
// paper's reported ranges.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report")
	}
	s := quickSuite(t)
	for _, name := range DatasetNames {
		b := s.Bank(name)
		var errs []float64
		for ci := range b.Configs {
			e, _ := b.ClientErrors(0, ci, b.MaxRounds())
			errs = append(errs, weightedMean(e, b.ExampleCounts[0], true))
		}
		sum := stats.Summarize(errs)
		t.Logf("%-14s best %5.1f%%  q1 %5.1f%%  median %5.1f%%  q3 %5.1f%%  worst %5.1f%%",
			name, stats.Min(errs)*100, sum.Q1*100, sum.Median*100, sum.Q3*100, stats.Max(errs)*100)
	}
}
