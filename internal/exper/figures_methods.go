package exper

import (
	"fmt"
	"math"

	"noisyeval/internal/core"
	"noisyeval/internal/hpo"
	"noisyeval/internal/plot"
	"noisyeval/internal/rng"
	"noisyeval/internal/stats"
)

// methodSet returns the four tuning methods of the study.
func methodSet() []hpo.Method {
	return []hpo.Method{hpo.RandomSearch{}, hpo.TPE{}, hpo.Hyperband{}, hpo.BOHB{}}
}

// noisySetting is the paper's combined-noise configuration for the method
// comparison figures: 1% client subsampling with ε = 100 evaluation privacy.
func noisySetting() core.Noise {
	return core.Noise{SampleFraction: 0.01, Epsilon: 100}
}

// runMethodTrials runs a method for several trials on a bank under a noise
// setting, returning the per-trial histories.
func (s *Suite) runMethodTrials(name string, m hpo.Method, noise core.Noise, seedLabel string) []core.TrialResult {
	bank := s.Bank(name)
	oracle, err := core.NewBankOracle(bank, noise.HeterogeneityP, noise.Scheme(), s.Cfg.Seed)
	if err != nil {
		panic(err)
	}
	tn := core.Tuner{Method: m, Space: hpo.DefaultSpace(), Settings: noise.Settings(s.Cfg.Settings()),
		SequentialTrials: s.Cfg.SequentialTrials}
	return tn.RunTrials(oracle, s.Cfg.MethodTrials, rng.New(s.Cfg.Seed).Split(seedLabel))
}

// Figure8 reproduces the method-comparison budget curves: RS, HB, TPE, BOHB
// under noiseless versus noisy (1% subsample + ε=100) evaluation, median and
// quartiles over trials.
func Figure8(s *Suite) Result {
	res := Result{ID: "figure8", Title: "Figure 8: methods under noiseless vs noisy evaluation"}
	res.CSVHeader = []string{"dataset", "setting", "method", "budget_rounds", "median_err_pct", "q1_pct", "q3_pct"}
	budgets := budgetGrid(s.Cfg)
	for _, name := range DatasetNames {
		for _, setting := range []struct {
			label string
			noise core.Noise
		}{
			{"noiseless", core.Noiseless()},
			{"noisy", noisySetting()},
		} {
			var series []plot.Series
			for _, m := range methodSet() {
				results := s.runMethodTrials(name, m, setting.noise, fmt.Sprintf("fig8-%s-%s-%s", name, setting.label, m.Name()))
				ser := plot.Series{Label: m.Name()}
				for _, b := range budgets {
					vals := core.CurveAt(results, b)
					sum := stats.Summarize(vals)
					ser.X = append(ser.X, float64(b))
					ser.Y = append(ser.Y, sum.Median)
					ser.YLo = append(ser.YLo, sum.Q1)
					ser.YHi = append(ser.YHi, sum.Q3)
					res.CSVRows = append(res.CSVRows, []string{
						name, setting.label, m.Name(), fmt.Sprintf("%d", b),
						plot.F(sum.Median * 100), plot.F(sum.Q1 * 100), plot.F(sum.Q3 * 100),
					})
				}
				series = append(series, ser)
			}
			ch := plot.Chart{
				Title:  fmt.Sprintf("%s (%s)", name, setting.label),
				XLabel: "total training rounds", YLabel: "full validation error",
				Series: series,
			}
			res.Lines = append(res.Lines, ch.Render()...)
			res.Lines = append(res.Lines, "")
		}
	}
	return res
}

// methodBars computes the method-comparison bars at a fixed budget under the
// full-eval and noisy settings (Figures 15/16, and Figure 1's layout).
func (s *Suite) methodBars(name string, budget int, figLabel string) ([]plot.Bar, [][]string) {
	var bars []plot.Bar
	var rows [][]string
	for _, setting := range []struct {
		label string
		noise core.Noise
	}{
		{"full eval, non-private", core.Noiseless()},
		{"1% clients, eps=100", noisySetting()},
	} {
		for _, m := range methodSet() {
			results := s.runMethodTrials(name, m, setting.noise, fmt.Sprintf("%s-%s-%s-%s", figLabel, name, setting.label, m.Name()))
			med := stats.Median(curveAtOrFinal(results, budget))
			bars = append(bars, plot.Bar{Label: m.Name(), Tag: setting.label, Value: med * 100})
			rows = append(rows, []string{name, setting.label, m.Name(), fmt.Sprintf("%d", budget), plot.F(med * 100)})
		}
	}
	return bars, rows
}

func curveAtOrFinal(results []core.TrialResult, budget int) []float64 {
	return core.CurveAt(results, budget)
}

// Figure15 reproduces the method bars at one third of the budget (the paper
// uses 2000 of 6480 rounds).
func Figure15(s *Suite) Result {
	return s.methodBarsFigure("figure15", "Figure 15: methods at 1/3 budget", s.Cfg.K*s.Cfg.MaxRounds/3)
}

// Figure16 reproduces the method bars at the full budget (6480 rounds).
func Figure16(s *Suite) Result {
	return s.methodBarsFigure("figure16", "Figure 16: methods at full budget", s.Cfg.K*s.Cfg.MaxRounds)
}

func (s *Suite) methodBarsFigure(id, title string, budget int) Result {
	res := Result{ID: id, Title: title}
	res.CSVHeader = []string{"dataset", "setting", "method", "budget_rounds", "median_err_pct"}
	for _, name := range DatasetNames {
		bars, rows := s.methodBars(name, budget, id)
		res.CSVRows = append(res.CSVRows, rows...)
		bc := plot.BarChart{Title: fmt.Sprintf("%s @ %d rounds (median %% error)", name, budget), Unit: "%", Bars: bars}
		res.Lines = append(res.Lines, bc.Render()...)
		res.Lines = append(res.Lines, "")
	}
	return res
}

// Figure1 reproduces the headline bar chart: CIFAR10 error of RS, TPE, HB,
// BOHB and proxy RS under noiseless vs noisy evaluation at one third of the
// tuning budget (highlighting the early advantage of HB/BOHB that noise
// destroys).
func Figure1(s *Suite) Result {
	res := Result{ID: "figure1", Title: "Figure 1: CIFAR10 at 1/3 budget, noiseless vs noisy"}
	res.CSVHeader = []string{"method", "setting", "median_err_pct"}
	budget := s.Cfg.K * s.Cfg.MaxRounds / 3
	name := "cifar10"

	var bars []plot.Bar
	for _, setting := range []struct {
		label string
		noise core.Noise
	}{
		{"noiseless", core.Noiseless()},
		{"noisy", noisySetting()},
	} {
		for _, m := range methodSet() {
			results := s.runMethodTrials(name, m, setting.noise, fmt.Sprintf("fig1-%s-%s", setting.label, m.Name()))
			med := stats.Median(core.CurveAt(results, budget))
			bars = append(bars, plot.Bar{Label: m.Name(), Tag: setting.label, Value: med * 100})
			res.CSVRows = append(res.CSVRows, []string{m.Name(), setting.label, plot.F(med * 100)})
		}
	}
	// RS (Proxy): tune on the FEMNIST-like proxy (the matching image task),
	// train the single winner on CIFAR10 — identical in both settings since
	// proxy tuning never touches client evaluations.
	proxyErr := s.oneShotProxyMedian("femnist", name, "fig1-proxy")
	for _, setting := range []string{"noiseless", "noisy"} {
		bars = append(bars, plot.Bar{Label: "RS(Proxy)", Tag: setting, Value: proxyErr * 100})
		res.CSVRows = append(res.CSVRows, []string{"RS(Proxy)", setting, plot.F(proxyErr * 100)})
	}
	bc := plot.BarChart{Title: "CIFAR10 full validation error (median %, 1/3 budget)", Unit: "%", Bars: bars}
	res.Lines = append(res.Lines, bc.Render()...)
	return res
}

// oneShotProxyMedian runs the one-shot proxy RS (tune on proxyName, train on
// clientName) for Trials bootstrap trials and returns the median final true
// error on the client dataset.
func (s *Suite) oneShotProxyMedian(proxyName, clientName, seedLabel string) float64 {
	proxyBank := s.Bank(proxyName)
	clientBank := s.Bank(clientName)
	proxyOracle, err := core.NewBankOracle(proxyBank, 0, core.Noiseless().Scheme(), s.Cfg.Seed)
	if err != nil {
		panic(err)
	}
	clientOracle, err := core.NewBankOracle(clientBank, 0, core.Noiseless().Scheme(), s.Cfg.Seed)
	if err != nil {
		panic(err)
	}
	g := rng.New(s.Cfg.Seed).Split(seedLabel)
	finals := make([]float64, s.Cfg.Trials)
	m := hpo.OneShotProxyRS{Proxy: proxyOracle}
	for t := range finals {
		h := m.Run(clientOracle, hpo.DefaultSpace(), s.Cfg.Settings(), g.Splitf("trial-%d", t))
		rec, ok := h.Recommend()
		if !ok {
			finals[t] = 1
			continue
		}
		finals[t] = rec.True
	}
	return stats.Median(finals)
}

// Figure2Scenario quantifies the schematic of Figure 2: how often noisy
// evaluation (subsampling + DP) flips the ranking of two configurations
// whose true errors differ by the given gap. Returned value is the flip
// probability; the paper's diagram depicts one such flip.
func Figure2Scenario(s *Suite, name string, gap float64, noise core.Noise, trials int) float64 {
	bank := s.Bank(name)
	oracle, err := core.NewBankOracle(bank, 0, noise.Scheme(), s.Cfg.Seed)
	if err != nil {
		panic(err)
	}
	// Pick the pool pair whose true-error difference is closest to gap.
	maxR := bank.MaxRounds()
	bestI, bestJ, bestDiff := -1, -1, math.Inf(1)
	for i := range bank.Configs {
		for j := i + 1; j < len(bank.Configs); j++ {
			ei := oracle.TrueError(bank.Configs[i], maxR)
			ej := oracle.TrueError(bank.Configs[j], maxR)
			if d := math.Abs(math.Abs(ei-ej) - gap); d < bestDiff {
				bestI, bestJ, bestDiff = i, j, d
			}
		}
	}
	better, worse := bank.Configs[bestI], bank.Configs[bestJ]
	if oracle.TrueError(better, maxR) > oracle.TrueError(worse, maxR) {
		better, worse = worse, better
	}
	g := rng.New(s.Cfg.Seed).Split("fig2")
	dpp := noise.Settings(s.Cfg.Settings())
	flips := 0
	for t := 0; t < trials; t++ {
		o := oracle.WithTrial(t)
		eb := o.Evaluate(better, maxR, fmt.Sprintf("t%d", t))
		ew := o.Evaluate(worse, maxR, fmt.Sprintf("t%d", t))
		if noise.Private() {
			scale := dpp.Epsilon // total budget
			_ = scale
			pp := noiseDP(dpp.Epsilon, s.Cfg.K, o.SampleSize())
			eb += g.Splitf("b%d", t).Laplace(0, pp)
			ew += g.Splitf("w%d", t).Laplace(0, pp)
		}
		if eb > ew {
			flips++
		}
	}
	return float64(flips) / float64(trials)
}

// noiseDP returns the per-release Laplace scale M/(ε|S|).
func noiseDP(epsilon float64, m, sampleSize int) float64 {
	if math.IsInf(epsilon, 1) {
		return 0
	}
	return float64(m) / (epsilon * float64(sampleSize))
}
