package exper

import (
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"testing"

	"noisyeval/internal/core"
)

var (
	quickSuiteOnce sync.Once
	quickSuiteVal  *Suite
)

// quickSuite shares one miniature suite across the test binary (banks are
// the expensive part; every driver reuses them). When NOISYEVAL_CACHE_DIR is
// set (CI persists it across runs), banks come from the content-addressed
// store instead of being retrained — cached and fresh banks are identical,
// so test outcomes don't depend on cache state.
func quickSuite(t *testing.T) *Suite {
	t.Helper()
	quickSuiteOnce.Do(func() {
		quickSuiteVal = NewSuite(Quick())
		if dir := os.Getenv("NOISYEVAL_CACHE_DIR"); dir != "" {
			if store, err := core.NewBankStore(dir); err == nil {
				quickSuiteVal.SetStore(store)
			}
		}
	})
	return quickSuiteVal
}

func checkResult(t *testing.T, r Result, wantID string) {
	t.Helper()
	if r.ID != wantID {
		t.Errorf("ID = %q, want %q", r.ID, wantID)
	}
	if len(r.Lines) == 0 {
		t.Error("no rendering")
	}
	if len(r.CSVHeader) == 0 || len(r.CSVRows) == 0 {
		t.Error("no CSV data")
	}
	for i, row := range r.CSVRows {
		if len(row) != len(r.CSVHeader) {
			t.Errorf("CSV row %d has %d cells, header has %d", i, len(row), len(r.CSVHeader))
			break
		}
	}
	if r.Text() == "" {
		t.Error("empty text")
	}
}

func TestQuickConfigShape(t *testing.T) {
	cfg := Quick()
	if cfg.Budget().TotalRounds != cfg.K*cfg.MaxRounds {
		t.Error("budget inconsistent")
	}
	if cfg.Settings().Eta != 3 {
		t.Error("eta default")
	}
}

func TestDefaultConfigMatchesPaperShape(t *testing.T) {
	cfg := Default()
	if cfg.BankConfigs != 128 || cfg.MaxRounds != 405 || cfg.K != 16 || cfg.Trials != 100 || cfg.MethodTrials != 8 {
		t.Errorf("default config diverged from the paper: %+v", cfg)
	}
	if cfg.Budget().TotalRounds != 6480 {
		t.Errorf("budget = %d, want 6480", cfg.Budget().TotalRounds)
	}
}

func TestSubsampleCounts(t *testing.T) {
	full := subsampleCounts("cifar10", 100)
	want := []int{1, 3, 9, 27, 100}
	if len(full) != len(want) {
		t.Fatalf("counts = %v", full)
	}
	for i := range want {
		if full[i] != want[i] {
			t.Fatalf("counts = %v, want %v", full, want)
		}
	}
	// Scaled pools dedup and stay within range.
	scaled := subsampleCounts("femnist", 14)
	prev := 0
	for _, c := range scaled {
		if c <= prev || c > 14 {
			t.Fatalf("scaled counts = %v", scaled)
		}
		prev = c
	}
	if scaled[len(scaled)-1] != 14 {
		t.Errorf("must end at full pool: %v", scaled)
	}
}

func TestSuiteSharedPoolAcrossBanks(t *testing.T) {
	s := quickSuite(t)
	b1 := s.Bank("cifar10")
	b2 := s.Bank("femnist")
	if len(b1.Configs) != len(b2.Configs) {
		t.Fatal("pool sizes differ")
	}
	for i := range b1.Configs {
		if b1.Configs[i] != b2.Configs[i] {
			t.Fatal("banks do not share the config pool")
		}
	}
}

func TestTableDatasets(t *testing.T) {
	r := TableDatasets(quickSuite(t))
	checkResult(t, r, "table1")
	joined := strings.Join(r.Lines, "\n")
	for _, name := range DatasetNames {
		if !strings.Contains(joined, name) {
			t.Errorf("table missing %s", name)
		}
	}
}

func TestFigure3SubsamplingMonotonicity(t *testing.T) {
	s := quickSuite(t)
	r := Figure3(s)
	checkResult(t, r, "figure3")
	// Observation 1: the full-evaluation median should not be worse than
	// the 1-client median on cifar10 (the paper's headline dataset).
	var oneClient, full float64
	for _, row := range r.CSVRows {
		if row[0] != "cifar10" {
			continue
		}
		if row[1] == "1" {
			oneClient = atof(t, row[2])
		}
		full = atof(t, row[2]) // last row wins = largest count
	}
	if oneClient < full-1e-9 {
		t.Errorf("1-client median %.3f better than full %.3f", oneClient, full)
	}
}

func TestFigure4Heterogeneity(t *testing.T) {
	r := Figure4(quickSuite(t))
	checkResult(t, r, "figure4")
	// All three partitions must appear.
	joined := strings.Join(r.Lines, "\n")
	for _, want := range []string{"p=0", "p=0.5", "p=1"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing series %q", want)
		}
	}
}

func TestFigure5BudgetCurves(t *testing.T) {
	cfg := Quick()
	r := Figure5(quickSuite(t))
	checkResult(t, r, "figure5")
	// Budgets must span K checkpoints.
	var budgets []string
	for _, row := range r.CSVRows {
		if row[0] == "cifar10" && row[1] == "1" {
			budgets = append(budgets, row[2])
		}
	}
	if len(budgets) != cfg.K {
		t.Errorf("budget points = %d, want %d", len(budgets), cfg.K)
	}
}

func TestFigure6Bias(t *testing.T) {
	r := Figure6(quickSuite(t))
	checkResult(t, r, "figure6")
	joined := strings.Join(r.Lines, "\n")
	for _, want := range []string{"b=0", "b=1", "b=1.5", "b=3"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing series %q", want)
		}
	}
}

func TestFigure7Scatter(t *testing.T) {
	s := quickSuite(t)
	r := Figure7(s)
	checkResult(t, r, "figure7")
	// One point per config per dataset.
	want := len(s.Bank("cifar10").Configs) * len(DatasetNames)
	if len(r.CSVRows) != want {
		t.Errorf("points = %d, want %d", len(r.CSVRows), want)
	}
	// min client error <= full error always.
	for _, row := range r.CSVRows {
		if atof(t, row[3]) > atof(t, row[2])+1e-9 {
			t.Errorf("min client error exceeds full error: %v", row)
		}
	}
}

func TestFigure8Methods(t *testing.T) {
	r := Figure8(quickSuite(t))
	checkResult(t, r, "figure8")
	joined := strings.Join(r.Lines, "\n")
	for _, m := range []string{"RS", "TPE", "HB", "BOHB"} {
		if !strings.Contains(joined, m) {
			t.Errorf("missing method %s", m)
		}
	}
	for _, setting := range []string{"noiseless", "noisy"} {
		if !strings.Contains(joined, setting) {
			t.Errorf("missing setting %s", setting)
		}
	}
}

func TestFigure9Privacy(t *testing.T) {
	r := Figure9(quickSuite(t))
	checkResult(t, r, "figure9")
	// Observation 5 in aggregate: the strictest privacy should not beat the
	// non-private setting on median error, averaged over datasets/counts.
	sums := map[string][]float64{}
	for _, row := range r.CSVRows {
		sums[row[1]] = append(sums[row[1]], atof(t, row[3]))
	}
	strict, free := meanOf(sums["eps=0.1"]), meanOf(sums["eps=inf"])
	if strict < free-1e-9 {
		t.Errorf("eps=0.1 mean %.2f beats eps=inf mean %.2f", strict, free)
	}
}

func TestFigure10And14Transfer(t *testing.T) {
	s := quickSuite(t)
	r10 := Figure10(s)
	checkResult(t, r10, "figure10")
	r14 := Figure14(s)
	checkResult(t, r14, "figure14")
	if !strings.Contains(strings.Join(r10.Lines, "\n"), "Spearman") {
		t.Error("transfer scatter should report rank correlation")
	}
}

func TestFigure11ProxyMatrix(t *testing.T) {
	r := Figure11(quickSuite(t))
	checkResult(t, r, "figure11")
	if len(r.CSVRows) != len(DatasetNames)*len(DatasetNames) {
		t.Errorf("matrix entries = %d, want %d", len(r.CSVRows), 16)
	}
}

func TestFigure11SelfProxyIsGood(t *testing.T) {
	// Tuning on a dataset's own bank as "proxy" must be close to self-tuned
	// noiseless RS (they are the same procedure up to bootstrap draws).
	r := Figure11(quickSuite(t))
	for _, row := range r.CSVRows {
		if row[0] == row[1] { // client == proxy
			med, self := atof(t, row[2]), atof(t, row[5])
			if math.Abs(med-self) > 25 { // percentage points, quick scale is noisy
				t.Errorf("self-proxy %s: median %.2f vs self-tuned %.2f", row[0], med, self)
			}
		}
	}
}

func TestFigure12ProxyVsNoisy(t *testing.T) {
	r := Figure12(quickSuite(t))
	checkResult(t, r, "figure12")
	joined := strings.Join(r.Lines, "\n")
	for _, want := range []string{"RS eps=1", "RS eps=inf", "proxy=cifar10", "proxy=reddit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing series %q", want)
		}
	}
}

func TestFigure13SearchSpace(t *testing.T) {
	r := Figure13(quickSuite(t))
	checkResult(t, r, "figure13")
	// Four decade points per setting.
	count := 0
	for _, row := range r.CSVRows {
		if row[2] == "noiseless" {
			count++
		}
	}
	if count != 4 {
		t.Errorf("noiseless decade points = %d", count)
	}
}

func TestFigure15And16Bars(t *testing.T) {
	s := quickSuite(t)
	r15 := Figure15(s)
	checkResult(t, r15, "figure15")
	r16 := Figure16(s)
	checkResult(t, r16, "figure16")
}

func TestFigure1Headline(t *testing.T) {
	r := Figure1(quickSuite(t))
	checkResult(t, r, "figure1")
	joined := strings.Join(r.Lines, "\n")
	if !strings.Contains(joined, "RS(Proxy)") {
		t.Error("missing proxy bar")
	}
}

func TestFigure2ScenarioFlipProbability(t *testing.T) {
	s := quickSuite(t)
	// With no noise the better config always ranks first; with severe noise
	// flips must occur.
	clean := Figure2Scenario(s, "cifar10", 0.1, core.Noiseless(), 50)
	if clean != 0 {
		t.Errorf("noiseless flip probability = %.2f, want 0", clean)
	}
	noisy := Figure2Scenario(s, "cifar10", 0.1, core.Noise{SampleCount: 1, Epsilon: 1}, 200)
	if noisy <= 0 {
		t.Error("severe noise never flipped the ranking")
	}
}

func TestAllFiguresRegistryComplete(t *testing.T) {
	reg := AllFigures()
	for _, id := range FigureOrder() {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
	if len(reg) != len(FigureOrder()) {
		t.Errorf("registry has %d entries, order has %d", len(reg), len(FigureOrder()))
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
