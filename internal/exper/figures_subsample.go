package exper

import (
	"fmt"
	"math"

	"noisyeval/internal/core"
	"noisyeval/internal/hpo"
	"noisyeval/internal/plot"
	"noisyeval/internal/rng"
	"noisyeval/internal/stats"
)

// Figure3 reproduces the client-subsampling experiment: RS with K configs at
// several evaluation subsample sizes, median and quartiles of final full
// validation error over bootstrap trials, plus the "Best HPs" reference.
func Figure3(s *Suite) Result {
	res := Result{ID: "figure3", Title: "Figure 3: RS final error vs evaluation subsample size"}
	res.CSVHeader = []string{"dataset", "clients", "median_err_pct", "q1_pct", "q3_pct", "best_hps_pct"}
	for _, name := range DatasetNames {
		bank := s.Bank(name)
		counts := subsampleCounts(name, bank.NumClients())
		series := plot.Series{Label: "RS"}
		best := bestPoolError(bank, true)
		for _, cnt := range counts {
			noise := core.Noise{SampleCount: cnt}
			finals := s.runRSOnBank(name, noise, s.Cfg.Trials, fmt.Sprintf("fig3-%s-%d", name, cnt))
			sum := stats.Summarize(finals)
			series.X = append(series.X, float64(cnt))
			series.Y = append(series.Y, sum.Median)
			series.YLo = append(series.YLo, sum.Q1)
			series.YHi = append(series.YHi, sum.Q3)
			res.CSVRows = append(res.CSVRows, []string{
				name, fmt.Sprintf("%d", cnt), plot.F(sum.Median * 100), plot.F(sum.Q1 * 100), plot.F(sum.Q3 * 100), plot.F(best * 100),
			})
		}
		ch := plot.Chart{
			Title:  fmt.Sprintf("%s (best HPs: %s%% err)", name, pct(best)),
			XLabel: "evaluation clients sampled (log)", YLabel: "full validation error",
			LogX:   true,
			Series: []plot.Series{series},
		}
		res.Lines = append(res.Lines, ch.Render()...)
		tblLines, _, _ := renderSeriesTable("", "clients", []plot.Series{series})
		res.Lines = append(res.Lines, tblLines...)
		res.Lines = append(res.Lines, "")
	}
	return res
}

// Figure4 reproduces the data-heterogeneity experiment: RS at three eval
// partitions p ∈ {0, 0.5, 1} (natural → iid) across subsample sizes.
func Figure4(s *Suite) Result {
	res := Result{ID: "figure4", Title: "Figure 4: data heterogeneity (iid fraction p) x subsampling"}
	res.CSVHeader = []string{"dataset", "p", "clients", "median_err_pct", "q1_pct", "q3_pct"}
	ps := []float64{0, 0.5, 1}
	for _, name := range DatasetNames {
		bank := s.Bank(name)
		counts := subsampleCounts(name, bank.NumClients())
		var series []plot.Series
		for _, p := range ps {
			ser := plot.Series{Label: fmt.Sprintf("p=%g", p)}
			for _, cnt := range counts {
				noise := core.Noise{SampleCount: cnt, HeterogeneityP: p}
				finals := s.runRSOnBank(name, noise, s.Cfg.Trials, fmt.Sprintf("fig4-%s-%g-%d", name, p, cnt))
				sum := stats.Summarize(finals)
				ser.X = append(ser.X, float64(cnt))
				ser.Y = append(ser.Y, sum.Median)
				ser.YLo = append(ser.YLo, sum.Q1)
				ser.YHi = append(ser.YHi, sum.Q3)
				res.CSVRows = append(res.CSVRows, []string{
					name, fmt.Sprintf("%g", p), fmt.Sprintf("%d", cnt),
					plot.F(sum.Median * 100), plot.F(sum.Q1 * 100), plot.F(sum.Q3 * 100),
				})
			}
			series = append(series, ser)
		}
		ch := plot.Chart{
			Title:  name,
			XLabel: "evaluation clients sampled (log)", YLabel: "full validation error",
			LogX:   true,
			Series: series,
		}
		res.Lines = append(res.Lines, ch.Render()...)
		tblLines, _, _ := renderSeriesTable("", "clients", series)
		res.Lines = append(res.Lines, tblLines...)
		res.Lines = append(res.Lines, "")
	}
	return res
}

// Figure5 reproduces the budget-tradeoff experiment: RS true-error curves
// versus cumulative training rounds at several subsample sizes.
func Figure5(s *Suite) Result {
	res := Result{ID: "figure5", Title: "Figure 5: RS error vs training budget under subsampling"}
	res.CSVHeader = []string{"dataset", "clients", "budget_rounds", "median_err_pct", "q1_pct", "q3_pct"}
	for _, name := range DatasetNames {
		bank := s.Bank(name)
		nVal := bank.NumClients()
		counts := figure5Counts(name, nVal)
		budgets := budgetGrid(s.Cfg)
		var series []plot.Series
		for _, cnt := range counts {
			noise := core.Noise{SampleCount: cnt}
			oracle, err := core.NewBankOracle(bank, 0, noise.Scheme(), s.Cfg.Seed)
			if err != nil {
				panic(err)
			}
			tn := s.Cfg.rsTuner()
			results := tn.RunTrials(oracle, s.Cfg.Trials, rng.New(s.Cfg.Seed).Splitf("fig5-%s-%d", name, cnt))
			ser := plot.Series{Label: fmt.Sprintf("%d clients", cnt)}
			for _, b := range budgets {
				vals := core.CurveAt(results, b)
				sum := stats.Summarize(vals)
				ser.X = append(ser.X, float64(b))
				ser.Y = append(ser.Y, sum.Median)
				ser.YLo = append(ser.YLo, sum.Q1)
				ser.YHi = append(ser.YHi, sum.Q3)
				res.CSVRows = append(res.CSVRows, []string{
					name, fmt.Sprintf("%d", cnt), fmt.Sprintf("%d", b),
					plot.F(sum.Median * 100), plot.F(sum.Q1 * 100), plot.F(sum.Q3 * 100),
				})
			}
			series = append(series, ser)
		}
		ch := plot.Chart{
			Title:  name,
			XLabel: "total training rounds", YLabel: "full validation error",
			Series: series,
		}
		res.Lines = append(res.Lines, ch.Render()...)
		res.Lines = append(res.Lines, "")
	}
	return res
}

// figure5Counts mirrors the paper's Figure-5 legend: one client, a small
// cohort, and the full pool.
func figure5Counts(name string, nVal int) []int {
	small := 3
	if name == "stackoverflow" || name == "reddit" {
		small = int(math.Round(0.01 * float64(nVal)))
		if small < 2 {
			small = 2
		}
	}
	counts := []int{1}
	if small > 1 && small < nVal {
		counts = append(counts, small)
	}
	return append(counts, nVal)
}

// budgetGrid returns the x-axis budget points for online-performance curves.
func budgetGrid(cfg Config) []int {
	total := cfg.K * cfg.MaxRounds
	var out []int
	for i := 1; i <= cfg.K; i++ {
		out = append(out, i*cfg.MaxRounds)
	}
	_ = total
	return out
}

// Figure6 reproduces the systems-heterogeneity experiment: biased client
// selection with weight (a+δ)^b for b ∈ {0, 1, 1.5, 3} across subsample
// sizes.
func Figure6(s *Suite) Result {
	res := Result{ID: "figure6", Title: "Figure 6: systems heterogeneity (selection bias b) x subsampling"}
	res.CSVHeader = []string{"dataset", "b", "clients", "median_err_pct", "q1_pct", "q3_pct"}
	biases := []float64{0, 1, 1.5, 3}
	for _, name := range DatasetNames {
		bank := s.Bank(name)
		counts := subsampleCounts(name, bank.NumClients())
		var series []plot.Series
		for _, b := range biases {
			ser := plot.Series{Label: fmt.Sprintf("b=%g", b)}
			for _, cnt := range counts {
				noise := core.Noise{SampleCount: cnt, Bias: b}
				finals := s.runRSOnBank(name, noise, s.Cfg.Trials, fmt.Sprintf("fig6-%s-%g-%d", name, b, cnt))
				sum := stats.Summarize(finals)
				ser.X = append(ser.X, float64(cnt))
				ser.Y = append(ser.Y, sum.Median)
				ser.YLo = append(ser.YLo, sum.Q1)
				ser.YHi = append(ser.YHi, sum.Q3)
				res.CSVRows = append(res.CSVRows, []string{
					name, fmt.Sprintf("%g", b), fmt.Sprintf("%d", cnt),
					plot.F(sum.Median * 100), plot.F(sum.Q1 * 100), plot.F(sum.Q3 * 100),
				})
			}
			series = append(series, ser)
		}
		ch := plot.Chart{
			Title:  name,
			XLabel: "evaluation clients sampled (log)", YLabel: "full validation error",
			LogX:   true,
			Series: series,
		}
		res.Lines = append(res.Lines, ch.Render()...)
		tblLines, _, _ := renderSeriesTable("", "clients", series)
		res.Lines = append(res.Lines, tblLines...)
		res.Lines = append(res.Lines, "")
	}
	return res
}

// Figure9 reproduces the privacy experiment: RS with evaluation privacy
// budgets ε ∈ {0.1, 1, 10, 100, ∞} across subsample sizes.
func Figure9(s *Suite) Result {
	res := Result{ID: "figure9", Title: "Figure 9: privacy budget x subsampling"}
	res.CSVHeader = []string{"dataset", "epsilon", "clients", "median_err_pct", "q1_pct", "q3_pct"}
	epsilons := []float64{0.1, 1, 10, 100, math.Inf(1)}
	for _, name := range DatasetNames {
		bank := s.Bank(name)
		counts := subsampleCounts(name, bank.NumClients())
		var series []plot.Series
		for _, eps := range epsilons {
			label := fmt.Sprintf("eps=%g", eps)
			if math.IsInf(eps, 1) {
				label = "eps=inf"
			}
			ser := plot.Series{Label: label}
			for _, cnt := range counts {
				noise := core.Noise{SampleCount: cnt, Epsilon: eps}
				finals := s.runRSOnBank(name, noise, s.Cfg.Trials, fmt.Sprintf("fig9-%s-%v-%d", name, eps, cnt))
				sum := stats.Summarize(finals)
				ser.X = append(ser.X, float64(cnt))
				ser.Y = append(ser.Y, sum.Median)
				ser.YLo = append(ser.YLo, sum.Q1)
				ser.YHi = append(ser.YHi, sum.Q3)
				res.CSVRows = append(res.CSVRows, []string{
					name, label, fmt.Sprintf("%d", cnt),
					plot.F(sum.Median * 100), plot.F(sum.Q1 * 100), plot.F(sum.Q3 * 100),
				})
			}
			series = append(series, ser)
		}
		ch := plot.Chart{
			Title:  name,
			XLabel: "evaluation clients sampled (log)", YLabel: "full validation error",
			LogX:   true,
			Series: series,
		}
		res.Lines = append(res.Lines, ch.Render()...)
		tblLines, _, _ := renderSeriesTable("", "clients", series)
		res.Lines = append(res.Lines, tblLines...)
		res.Lines = append(res.Lines, "")
	}
	return res
}

// Figure13 reproduces the search-space-width experiment (Appendix C): RS
// with a large budget over nested server-lr ranges spanning 1–4 decades, in
// a noiseless versus a high-noise (1-client, ε=10) setting.
func Figure13(s *Suite) Result {
	res := Result{ID: "figure13", Title: "Figure 13: search-space width vs noise (Appendix C)"}
	res.CSVHeader = []string{"dataset", "decades", "setting", "median_err_pct", "q1_pct", "q3_pct"}
	decades := fig13Decades
	for _, name := range s.Cfg.Fig13Datasets {
		clean := plot.Series{Label: "noiseless"}
		noisy := plot.Series{Label: "noisy (1 client, eps=10)"}
		for _, d := range decades {
			bank := s.DecadeBank(name, d)
			for _, setting := range []struct {
				label string
				noise core.Noise
				ser   *plot.Series
			}{
				{"noiseless", core.Noiseless(), &clean},
				{"noisy", core.Noise{SampleCount: 1, Epsilon: 10}, &noisy},
			} {
				oracle, err := core.NewBankOracle(bank, 0, setting.noise.Scheme(), s.Cfg.Seed)
				if err != nil {
					panic(err)
				}
				// Large-K RS: the paper uses K = 128 (the full pool).
				tn := core.Tuner{Method: hpo.RandomSearch{}, Space: hpo.DefaultSpace().WithServerLRDecades(float64(d)),
					SequentialTrials: s.Cfg.SequentialTrials}
				k := len(bank.Configs)
				tn.Settings = setting.noise.Settings(hpo.Settings{
					Budget: hpo.Budget{TotalRounds: k * s.Cfg.MaxRounds, MaxPerConfig: s.Cfg.MaxRounds, K: k},
				})
				results := tn.RunTrials(oracle, s.Cfg.Trials, rng.New(s.Cfg.Seed).Splitf("fig13-%s-%d-%s", name, d, setting.label))
				sum := stats.Summarize(core.FinalErrors(results))
				setting.ser.X = append(setting.ser.X, float64(d))
				setting.ser.Y = append(setting.ser.Y, sum.Median)
				setting.ser.YLo = append(setting.ser.YLo, sum.Q1)
				setting.ser.YHi = append(setting.ser.YHi, sum.Q3)
				res.CSVRows = append(res.CSVRows, []string{
					name, fmt.Sprintf("%d", d), setting.label,
					plot.F(sum.Median * 100), plot.F(sum.Q1 * 100), plot.F(sum.Q3 * 100),
				})
			}
		}
		ch := plot.Chart{
			Title:  name,
			XLabel: "server-lr range (decades)", YLabel: "full validation error",
			Series: []plot.Series{clean, noisy},
		}
		res.Lines = append(res.Lines, ch.Render()...)
		tblLines, _, _ := renderSeriesTable("", "decades", []plot.Series{clean, noisy})
		res.Lines = append(res.Lines, tblLines...)
		res.Lines = append(res.Lines, "")
	}
	return res
}
