// Package fl implements the cross-device federated training loop of the
// study (Algorithm 2 in the paper's Appendix D): at every round the server
// samples a small client cohort uniformly without replacement, each client
// runs local SGD from the server weights (ClientOPT), and the server applies
// FedAdam (Reddi et al., 2020) to the aggregated pseudo-gradient (ServerOPT).
//
// The hyperparameters tuned by the study enter here: three server FedAdam
// HPs (learning rate, β1, β2, plus the fixed decay γ=0.9999) and client SGD
// HPs (learning rate, momentum, weight decay, batch size, epochs).
package fl

import (
	"fmt"
	"math"

	"noisyeval/internal/data"
	"noisyeval/internal/nn"
	"noisyeval/internal/opt"
	"noisyeval/internal/rng"
	"noisyeval/internal/tensor"
)

// HParams is one hyperparameter configuration θ, shared by all clients
// (the study tunes global HPs only; §2.1). Fields follow Appendix B.
type HParams struct {
	// Server FedAdam.
	ServerLR float64 // log10 lr ~ Unif[-6, -1]
	Beta1    float64 // Unif[0, 0.9]
	Beta2    float64 // Unif[0, 0.999]
	LRDecay  float64 // fixed 0.9999

	// Client SGD.
	ClientLR       float64 // log10 lr ~ Unif[-6, 0]
	ClientMomentum float64 // Unif[0, 0.9]
	WeightDecay    float64 // fixed 5e-5
	BatchSize      int     // {32, 64, 128}
	Epochs         int     // fixed 1
}

// DefaultFixed fills the paper's fixed HPs (γ, weight decay, epochs) into a
// copy of h, leaving tuned fields untouched.
func (h HParams) DefaultFixed() HParams {
	if h.LRDecay == 0 {
		h.LRDecay = 0.9999
	}
	if h.WeightDecay == 0 {
		h.WeightDecay = 5e-5
	}
	if h.Epochs == 0 {
		h.Epochs = 1
	}
	if h.BatchSize == 0 {
		h.BatchSize = 32
	}
	return h
}

// Validate reports structurally invalid configurations.
func (h HParams) Validate() error {
	if h.ServerLR <= 0 || h.ClientLR <= 0 {
		return fmt.Errorf("fl: learning rates must be positive (server %g, client %g)", h.ServerLR, h.ClientLR)
	}
	if h.Beta1 < 0 || h.Beta1 >= 1 || h.Beta2 < 0 || h.Beta2 >= 1 {
		return fmt.Errorf("fl: betas (%g, %g) outside [0, 1)", h.Beta1, h.Beta2)
	}
	if h.ClientMomentum < 0 || h.ClientMomentum >= 1 {
		return fmt.Errorf("fl: client momentum %g outside [0, 1)", h.ClientMomentum)
	}
	if h.BatchSize < 1 || h.Epochs < 1 {
		return fmt.Errorf("fl: batch size %d / epochs %d must be >= 1", h.BatchSize, h.Epochs)
	}
	return nil
}

// Options configures a Trainer beyond the tuned HParams.
type Options struct {
	// ClientsPerRound is the training cohort size (paper: 10).
	ClientsPerRound int
	// WeightedAggregation selects example-count weights p_tr,k (true) or
	// uniform weights (false) when averaging client updates; the paper
	// matches the training scheme to the evaluation scheme (footnote 1).
	WeightedAggregation bool
	// ClipNorm, when > 0, clips each client's local gradient norm. The
	// paper trains without clipping, so aggressive configurations genuinely
	// diverge and collapse to degenerate predictors (the lower-right points
	// of Figure 7); 0 (the default) preserves that behaviour.
	ClipNorm float64
	// BatchEval selects the batched training engine: each minibatch runs as
	// one GEMM forward/backward and client evaluation is batched too. The
	// per-example arithmetic is equivalent but summation order differs, so
	// results are close but not bitwise equal to the per-sample path; banks
	// key on this flag (core.BankKey). false reproduces the original
	// per-sample engine bit for bit.
	BatchEval bool
}

// DefaultOptions returns the paper's settings on the batched engine.
func DefaultOptions() Options {
	return Options{ClientsPerRound: 10, WeightedAggregation: true, BatchEval: true}
}

// Trainer runs federated training of one configuration on one population.
// It is not safe for concurrent use; run one Trainer per goroutine.
//
// The trainer owns every buffer the round loop touches — optimizer state,
// RNG children, cohort/permutation scratch, minibatch assembly — so
// steady-state training performs no per-round heap allocation: client steps
// run in place over the model's contiguous parameter storage (nn.ParamsVec)
// rather than flattening weights and gradients into scratch vectors.
type Trainer struct {
	Pop  *data.Population
	HP   HParams
	Opts Options

	model     *nn.Network
	serverOpt *opt.Adam
	clientOpt *opt.SGD   // reused across clients; Reset starts each local solve
	weights   tensor.Vec // current server weights w
	delta     tensor.Vec // aggregated pseudo-gradient
	sumW      tensor.Vec // weighted sum of client weights
	round     int
	diverged  bool
	rng       *rng.RNG

	roundRNG  *rng.RNG // reusable child stream for cohort sampling
	clientRNG *rng.RNG // reusable child stream for per-client shuffles
	cohortBuf []int    // scratch for cohort sampling (len == #train clients)
	permBuf   []int    // scratch for per-client example permutations

	xBatch   tensor.Mat // minibatch feature assembly (dense tasks)
	ctxBatch [][]int    // minibatch token contexts (text tasks)
	labelBuf []int      // minibatch labels
	predBuf  []int      // batched evaluation predictions
}

// NewTrainer initialises a trainer with model weights drawn from g's
// "init" split and training randomness from its "train" split, so the same
// (population, hp, seed) triple reproduces a run exactly.
func NewTrainer(pop *data.Population, hp HParams, opts Options, g *rng.RNG) (*Trainer, error) {
	hp = hp.DefaultFixed()
	if err := hp.Validate(); err != nil {
		return nil, err
	}
	if opts.ClientsPerRound <= 0 {
		return nil, fmt.Errorf("fl: ClientsPerRound must be positive, got %d", opts.ClientsPerRound)
	}
	if len(pop.Train) == 0 {
		return nil, fmt.Errorf("fl: population has no training clients")
	}
	model := pop.NewModel(g.Split("init"))
	dim := model.NumWeights()
	clientOpt := opt.NewSGD(dim, hp.ClientLR, hp.ClientMomentum, hp.WeightDecay)
	clientOpt.ClipNorm = opts.ClipNorm
	t := &Trainer{
		Pop: pop, HP: hp, Opts: opts,
		model:     model,
		serverOpt: opt.NewAdam(dim, hp.ServerLR, hp.Beta1, hp.Beta2, 1e-8, hp.LRDecay),
		clientOpt: clientOpt,
		weights:   tensor.NewVec(dim),
		delta:     tensor.NewVec(dim),
		sumW:      tensor.NewVec(dim),
		rng:       g.Split("train"),
		roundRNG:  rng.New(0),
		clientRNG: rng.New(0),
		cohortBuf: make([]int, len(pop.Train)),
	}
	t.rng.Path() // materialize once so hot-path splits stay allocation-free
	model.FlattenParams(t.weights)
	return t, nil
}

// Round executes one federated round: sample the cohort, train locally on
// each client, aggregate the weighted pseudo-gradient Δ = w − Σp_k w_k/Σp_k,
// and apply the FedAdam server update. After divergence (NaN weights) the
// trainer freezes; further rounds are no-ops.
func (t *Trainer) Round() {
	if t.diverged {
		t.round++
		return
	}
	cohortSize := t.Opts.ClientsPerRound
	if cohortSize > len(t.Pop.Train) {
		cohortSize = len(t.Pop.Train)
	}
	t.rng.SplitIntInto(t.roundRNG, "round-", t.round)
	cohort := t.roundRNG.SampleWithoutReplacementInto(len(t.Pop.Train), cohortSize, t.cohortBuf)

	t.sumW.Zero()
	totalWeight := 0.0
	for _, idx := range cohort {
		client := t.Pop.Train[idx]
		if len(client.Examples) == 0 {
			continue
		}
		t.localTrain(client)
		weight := 1.0
		if t.Opts.WeightedAggregation {
			weight = float64(len(client.Examples))
		}
		// The client's trained weights live in the model's own storage.
		t.sumW.Axpy(weight, t.model.ParamsVec())
		totalWeight += weight
	}
	if totalWeight == 0 {
		t.round++
		return
	}
	// Δ = w - (Σ p_k w_k) / Σ p_k; server Adam descends along Δ.
	copy(t.delta, t.weights)
	t.delta.Axpy(-1/totalWeight, t.sumW)
	t.serverOpt.Step(t.weights, t.delta)
	t.round++

	if t.weights.HasNaN() {
		t.diverged = true
	}
}

// localTrain runs the client's local solve (ClientOPT): Epochs passes of
// minibatch SGD with momentum and weight decay starting from the server
// weights. The trained weights are left in the model's parameter storage.
//
// Every step runs in place over the model's flat parameter and gradient
// views — the per-step FlattenGrads/FlattenParams/SetParams full-vector
// copies of the original engine are gone on both the batched and the
// per-sample path (the in-place form performs the identical elementwise
// arithmetic, so the per-sample path stays bit-compatible with seed banks).
func (t *Trainer) localTrain(client *data.Client) {
	w, g := t.model.ParamsVec(), t.model.GradsVec()
	copy(w, t.weights)
	t.clientOpt.Reset()

	n := len(client.Examples)
	t.rng.SplitInt2Into(t.clientRNG, "client-", client.ID, "-round-", t.round)
	if cap(t.permBuf) < n {
		t.permBuf = make([]int, n)
	}
	order := t.permBuf[:n]
	t.clientRNG.PermInto(order)

	b := t.HP.BatchSize
	for epoch := 0; epoch < t.HP.Epochs; epoch++ {
		for start := 0; start < n; start += b {
			end := start + b
			if end > n {
				end = n
			}
			t.model.ZeroGrad()
			if t.Opts.BatchEval {
				t.trainStepBatched(client, order[start:end])
			} else {
				for _, i := range order[start:end] {
					ex := client.Examples[i]
					t.model.LossAndBackward(ex.Input(), ex.Label)
				}
			}
			g.Scale(1 / float64(end-start))
			t.clientOpt.Step(w, g)
		}
	}
}

// trainStepBatched assembles one minibatch into the trainer's reused buffers
// and runs a single batched forward/backward over it.
func (t *Trainer) trainStepBatched(client *data.Client, idxs []int) {
	bsz := len(idxs)
	if cap(t.labelBuf) < bsz {
		t.labelBuf = make([]int, bsz)
	}
	labels := t.labelBuf[:bsz]
	if t.model.Embed != nil {
		if cap(t.ctxBatch) < bsz {
			t.ctxBatch = make([][]int, bsz)
		}
		ctx := t.ctxBatch[:bsz]
		for j, i := range idxs {
			ex := &client.Examples[i]
			ctx[j] = ex.Tokens // contexts alias client data; no copy needed
			labels[j] = ex.Label
		}
		t.model.LossAndBackwardBatch(nil, ctx, labels)
		return
	}
	t.xBatch.Resize(bsz, len(client.Examples[idxs[0]].Features))
	for j, i := range idxs {
		ex := &client.Examples[i]
		copy(t.xBatch.Row(j), ex.Features)
		labels[j] = ex.Label
	}
	t.model.LossAndBackwardBatch(&t.xBatch, nil, labels)
}

// TrainTo advances training to the given round (no-op if already there).
func (t *Trainer) TrainTo(round int) {
	for t.round < round {
		t.Round()
	}
}

// Round number completed so far.
func (t *Trainer) RoundNum() int { return t.round }

// Diverged reports whether training hit NaN weights. Such models collapse
// to a degenerate constant predictor (argmax over NaN logits resolves to
// class 0), which is globally terrible yet near-perfect on clients whose
// skewed local data is dominated by that class — the mechanism behind the
// catastrophic systems-heterogeneity results (Figures 6–7 of the paper).
func (t *Trainer) Diverged() bool { return t.diverged }

// Weights returns a copy of the current server weights.
func (t *Trainer) Weights() tensor.Vec { return t.weights.Clone() }

// evalBatch is the chunk size for batched client evaluation.
const evalBatch = 128

// EvalClient returns the current model's error rate on one client's data
// (F_val,k in Eq. 2). A diverged model predicts class 0 on every example.
func (t *Trainer) EvalClient(client *data.Client) float64 {
	if len(client.Examples) == 0 {
		return 0
	}
	if t.diverged {
		wrong := 0
		for _, ex := range client.Examples {
			if ex.Label != 0 {
				wrong++
			}
		}
		return float64(wrong) / float64(len(client.Examples))
	}
	t.model.SetParams(t.weights)
	return t.evalClientErr(client)
}

// evalClientErr evaluates one client assuming the model already holds the
// server weights and training has not diverged.
func (t *Trainer) evalClientErr(client *data.Client) float64 {
	wrong := 0
	if t.Opts.BatchEval {
		wrong = t.evalWrongBatched(client)
	} else {
		for _, ex := range client.Examples {
			if t.model.Predict(ex.Input()) != ex.Label {
				wrong++
			}
		}
	}
	return float64(wrong) / float64(len(client.Examples))
}

// evalWrongBatched counts misclassifications with batched forward passes
// over evalBatch-sized chunks of the client's examples.
func (t *Trainer) evalWrongBatched(client *data.Client) int {
	exs := client.Examples
	wrong := 0
	for start := 0; start < len(exs); start += evalBatch {
		end := start + evalBatch
		if end > len(exs) {
			end = len(exs)
		}
		bsz := end - start
		if cap(t.predBuf) < bsz {
			t.predBuf = make([]int, bsz)
		}
		preds := t.predBuf[:bsz]
		if t.model.Embed != nil {
			if cap(t.ctxBatch) < bsz {
				t.ctxBatch = make([][]int, bsz)
			}
			ctx := t.ctxBatch[:bsz]
			for j := 0; j < bsz; j++ {
				ctx[j] = exs[start+j].Tokens
			}
			t.model.PredictBatch(nil, ctx, preds)
		} else {
			t.xBatch.Resize(bsz, len(exs[start].Features))
			for j := 0; j < bsz; j++ {
				copy(t.xBatch.Row(j), exs[start+j].Features)
			}
			t.model.PredictBatch(&t.xBatch, nil, preds)
		}
		for j := 0; j < bsz; j++ {
			if preds[j] != exs[start+j].Label {
				wrong++
			}
		}
	}
	return wrong
}

// EvalClients returns the per-client error vector over a client pool. This
// vector is the raw material for every noisy-evaluation model in the study
// (subsampling, reweighting, biased selection, DP perturbation). The server
// weights are loaded into the model once for the whole pool.
func (t *Trainer) EvalClients(clients []*data.Client) []float64 {
	errs := make([]float64, len(clients))
	if t.diverged {
		for i, c := range clients {
			errs[i] = t.EvalClient(c)
		}
		return errs
	}
	t.model.SetParams(t.weights)
	for i, c := range clients {
		if len(c.Examples) == 0 {
			continue
		}
		errs[i] = t.evalClientErr(c)
	}
	return errs
}

// FullValidationError evaluates Eq. 2 over the whole validation pool with
// the given weighting scheme — the paper's "full validation error" used for
// reporting final tuning quality.
func (t *Trainer) FullValidationError(weighted bool) float64 {
	errs := t.EvalClients(t.Pop.Val)
	w := data.ClientWeights(t.Pop.Val, weighted)
	return WeightedError(errs, w, nil)
}

// WeightedError computes Eq. 2 over a subset of clients: the weighted sum of
// client errors divided by the total weight. A nil subset means all clients.
// It panics if the subset is empty or the total weight is zero.
func WeightedError(errs, weights []float64, subset []int) float64 {
	if len(errs) != len(weights) {
		panic(fmt.Sprintf("fl: WeightedError lengths differ: %d vs %d", len(errs), len(weights)))
	}
	num, den := 0.0, 0.0
	if subset == nil {
		// All clients: iterate directly instead of materializing an index
		// slice — this sits inside every oracle evaluation.
		if len(errs) == 0 {
			panic("fl: WeightedError over empty subset")
		}
		for k, w := range weights {
			num += w * errs[k]
			den += w
		}
	} else {
		if len(subset) == 0 {
			panic("fl: WeightedError over empty subset")
		}
		for _, k := range subset {
			num += weights[k] * errs[k]
			den += weights[k]
		}
	}
	if den == 0 {
		panic("fl: WeightedError zero total weight")
	}
	v := num / den
	if math.IsNaN(v) {
		panic("fl: WeightedError produced NaN")
	}
	return v
}
