package fl

import (
	"math"
	"testing"

	"noisyeval/internal/data"
	"noisyeval/internal/rng"
)

func tinyPop(t *testing.T, seed uint64) *data.Population {
	t.Helper()
	s := data.CIFAR10Like()
	s.TrainClients, s.EvalClients = 16, 8
	s.MeanExamples, s.MinExamples, s.MaxExamples = 30, 20, 40
	s.Classes, s.FeatureDim, s.Hidden = 4, 8, 16
	s.FeatureNoise = 0.5
	return data.MustGenerate(s, rng.New(seed))
}

func goodHP() HParams {
	return HParams{
		ServerLR: 0.03, Beta1: 0.9, Beta2: 0.99,
		ClientLR: 0.1, ClientMomentum: 0.0, BatchSize: 16,
	}.DefaultFixed()
}

func TestHParamsDefaultFixed(t *testing.T) {
	h := HParams{ServerLR: 1, ClientLR: 1}.DefaultFixed()
	if h.LRDecay != 0.9999 || h.WeightDecay != 5e-5 || h.Epochs != 1 || h.BatchSize != 32 {
		t.Errorf("defaults = %+v", h)
	}
	// Explicit values survive.
	h2 := HParams{ServerLR: 1, ClientLR: 1, LRDecay: 0.5, Epochs: 3, BatchSize: 64, WeightDecay: 0.1}.DefaultFixed()
	if h2.LRDecay != 0.5 || h2.Epochs != 3 || h2.BatchSize != 64 || h2.WeightDecay != 0.1 {
		t.Errorf("explicit values overwritten: %+v", h2)
	}
}

func TestHParamsValidate(t *testing.T) {
	cases := map[string]HParams{
		"no server lr":  {ClientLR: 1, BatchSize: 1, Epochs: 1},
		"beta1 too big": {ServerLR: 1, ClientLR: 1, Beta1: 1, BatchSize: 1, Epochs: 1},
		"neg momentum":  {ServerLR: 1, ClientLR: 1, ClientMomentum: -0.1, BatchSize: 1, Epochs: 1},
		"zero batch":    {ServerLR: 1, ClientLR: 1, BatchSize: 0, Epochs: 1},
	}
	for name, hp := range cases {
		if err := hp.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	if err := goodHP().Validate(); err != nil {
		t.Errorf("good HP rejected: %v", err)
	}
}

func TestTrainerReducesError(t *testing.T) {
	pop := tinyPop(t, 1)
	tr, err := NewTrainer(pop, goodHP(), DefaultOptions(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	before := tr.FullValidationError(true)
	tr.TrainTo(40)
	after := tr.FullValidationError(true)
	if after >= before {
		t.Fatalf("training did not reduce error: %.3f -> %.3f", before, after)
	}
	if after > 0.6 {
		t.Errorf("final error %.3f unexpectedly high for a separable synthetic task", after)
	}
}

func TestTrainerDeterminism(t *testing.T) {
	pop := tinyPop(t, 3)
	run := func() float64 {
		tr, err := NewTrainer(pop, goodHP(), DefaultOptions(), rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		tr.TrainTo(10)
		return tr.FullValidationError(true)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed runs differ: %v vs %v", a, b)
	}
}

func TestTrainerSeedSensitivity(t *testing.T) {
	pop := tinyPop(t, 3)
	errsBySeed := map[float64]bool{}
	for seed := uint64(1); seed <= 3; seed++ {
		tr, _ := NewTrainer(pop, goodHP(), DefaultOptions(), rng.New(seed))
		tr.TrainTo(5)
		errsBySeed[tr.FullValidationError(true)] = true
	}
	if len(errsBySeed) < 2 {
		t.Error("different seeds should give different trajectories")
	}
}

func TestDivergenceDetection(t *testing.T) {
	pop := tinyPop(t, 4)
	hp := goodHP()
	hp.ClientLR = 1e6 // absurd lr
	hp.ServerLR = 10
	tr, err := NewTrainer(pop, hp, DefaultOptions(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainTo(30)
	if !tr.Diverged() {
		t.Skip("did not diverge at this scale; acceptable")
	}
	// A diverged model predicts class 0 everywhere.
	client := pop.Val[0]
	notZero := 0
	for _, ex := range client.Examples {
		if ex.Label != 0 {
			notZero++
		}
	}
	want := float64(notZero) / float64(len(client.Examples))
	if e := tr.EvalClient(client); e != want {
		t.Errorf("diverged eval = %v, want constant-class error %v", e, want)
	}
	// Further rounds are no-ops but still advance the counter.
	r := tr.RoundNum()
	tr.Round()
	if tr.RoundNum() != r+1 {
		t.Error("round counter frozen")
	}
}

func TestBadLRIsWorseThanGoodLR(t *testing.T) {
	pop := tinyPop(t, 6)
	good, _ := NewTrainer(pop, goodHP(), DefaultOptions(), rng.New(8))
	good.TrainTo(30)
	bad := goodHP()
	bad.ClientLR = 1e-6
	bad.ServerLR = 1e-6
	badTr, _ := NewTrainer(pop, bad, DefaultOptions(), rng.New(8))
	badTr.TrainTo(30)
	ge, be := good.FullValidationError(true), badTr.FullValidationError(true)
	if ge >= be {
		t.Errorf("good lr error %.3f should beat tiny lr error %.3f", ge, be)
	}
}

func TestEvalClientsVectorShape(t *testing.T) {
	pop := tinyPop(t, 9)
	tr, _ := NewTrainer(pop, goodHP(), DefaultOptions(), rng.New(10))
	tr.TrainTo(5)
	errs := tr.EvalClients(pop.Val)
	if len(errs) != len(pop.Val) {
		t.Fatalf("got %d errors for %d clients", len(errs), len(pop.Val))
	}
	for i, e := range errs {
		if e < 0 || e > 1 || math.IsNaN(e) {
			t.Fatalf("client %d error %v outside [0,1]", i, e)
		}
	}
}

func TestEvalEmptyClient(t *testing.T) {
	pop := tinyPop(t, 11)
	tr, _ := NewTrainer(pop, goodHP(), DefaultOptions(), rng.New(12))
	if e := tr.EvalClient(&data.Client{ID: 99}); e != 0 {
		t.Errorf("empty client error = %v", e)
	}
}

func TestWeightedError(t *testing.T) {
	errs := []float64{0.1, 0.5, 0.9}
	w := []float64{1, 1, 2}
	if got := WeightedError(errs, w, nil); math.Abs(got-(0.1+0.5+1.8)/4) > 1e-12 {
		t.Errorf("full weighted = %v", got)
	}
	if got := WeightedError(errs, w, []int{0, 2}); math.Abs(got-(0.1+1.8)/3) > 1e-12 {
		t.Errorf("subset weighted = %v", got)
	}
	uniform := []float64{1, 1, 1}
	if got := WeightedError(errs, uniform, nil); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("uniform = %v", got)
	}
}

func TestWeightedErrorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"len mismatch": func() { WeightedError([]float64{1}, []float64{1, 2}, nil) },
		"empty subset": func() { WeightedError([]float64{1}, []float64{1}, []int{}) },
		"zero weight":  func() { WeightedError([]float64{1}, []float64{0}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUniformVsWeightedAggregationDiffer(t *testing.T) {
	pop := tinyPop(t, 13)
	optsW := DefaultOptions()
	optsU := DefaultOptions()
	optsU.WeightedAggregation = false
	a, _ := NewTrainer(pop, goodHP(), optsW, rng.New(14))
	b, _ := NewTrainer(pop, goodHP(), optsU, rng.New(14))
	a.TrainTo(10)
	b.TrainTo(10)
	if a.FullValidationError(true) == b.FullValidationError(true) {
		t.Log("weighted and uniform aggregation coincided (possible but unlikely)")
	}
}

func TestNewTrainerValidation(t *testing.T) {
	pop := tinyPop(t, 15)
	if _, err := NewTrainer(pop, HParams{}, DefaultOptions(), rng.New(1)); err == nil {
		t.Error("expected error for empty HParams")
	}
	opts := DefaultOptions()
	opts.ClientsPerRound = 0
	if _, err := NewTrainer(pop, goodHP(), opts, rng.New(1)); err == nil {
		t.Error("expected error for zero cohort")
	}
	empty := &data.Population{Spec: pop.Spec}
	if _, err := NewTrainer(empty, goodHP(), DefaultOptions(), rng.New(1)); err == nil {
		t.Error("expected error for empty population")
	}
}

func TestCohortLargerThanPopulation(t *testing.T) {
	pop := tinyPop(t, 16)
	opts := DefaultOptions()
	opts.ClientsPerRound = 1000 // > 16 train clients
	tr, err := NewTrainer(pop, goodHP(), opts, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	tr.Round() // must not panic
	if tr.RoundNum() != 1 {
		t.Error("round did not advance")
	}
}

func TestWeightsSnapshotIsCopy(t *testing.T) {
	pop := tinyPop(t, 18)
	tr, _ := NewTrainer(pop, goodHP(), DefaultOptions(), rng.New(19))
	w := tr.Weights()
	w[0] = 12345
	if tr.Weights()[0] == 12345 {
		t.Error("Weights returned a live reference")
	}
}

func TestTextTaskTrains(t *testing.T) {
	s := data.RedditLike()
	s.TrainClients, s.EvalClients = 12, 6
	s.MeanExamples, s.MinExamples, s.MaxExamples = 20, 10, 30
	s.Vocab, s.Topics, s.Hidden, s.EmbedDim = 16, 3, 16, 8
	pop := data.MustGenerate(s, rng.New(20))
	hp := goodHP()
	hp.ClientLR = 0.5
	tr, err := NewTrainer(pop, hp, DefaultOptions(), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	before := tr.FullValidationError(true)
	tr.TrainTo(40)
	after := tr.FullValidationError(true)
	if after >= before {
		t.Errorf("text training did not reduce error: %.3f -> %.3f", before, after)
	}
}
