package fl

import (
	"math"
	"testing"
	"testing/quick"

	"noisyeval/internal/rng"
)

// Property: the weighted error always lies within [min, max] of the
// per-client errors over the chosen subset.
func TestWeightedErrorBoundedProperty(t *testing.T) {
	g := rng.New(100)
	f := func(seed uint8) bool {
		n := int(seed%20) + 1
		errs := make([]float64, n)
		weights := make([]float64, n)
		for i := range errs {
			errs[i] = g.Float64()
			weights[i] = 1 + g.Float64()*10
		}
		k := g.IntN(n) + 1
		subset := g.SampleWithoutReplacement(n, k)
		v := WeightedError(errs, weights, subset)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, idx := range subset {
			lo = math.Min(lo, errs[idx])
			hi = math.Max(hi, errs[idx])
		}
		return v >= lo-1e-12 && v <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all weights by a positive constant leaves the weighted
// error unchanged (Eq. 2 is scale-invariant in p_val).
func TestWeightedErrorScaleInvariantProperty(t *testing.T) {
	g := rng.New(101)
	f := func(seed uint8, rawScale uint8) bool {
		n := int(seed%10) + 1
		scale := 0.5 + float64(rawScale%50)
		errs := make([]float64, n)
		w1 := make([]float64, n)
		w2 := make([]float64, n)
		for i := range errs {
			errs[i] = g.Float64()
			w1[i] = 1 + g.Float64()
			w2[i] = w1[i] * scale
		}
		a := WeightedError(errs, w1, nil)
		b := WeightedError(errs, w2, nil)
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: uniform weights reduce the weighted error to the plain mean.
func TestWeightedErrorUniformIsMeanProperty(t *testing.T) {
	g := rng.New(102)
	f := func(seed uint8) bool {
		n := int(seed%15) + 1
		errs := make([]float64, n)
		w := make([]float64, n)
		sum := 0.0
		for i := range errs {
			errs[i] = g.Float64()
			w[i] = 1
			sum += errs[i]
		}
		return math.Abs(WeightedError(errs, w, nil)-sum/float64(n)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
