package rng

import (
	"fmt"
	"testing"
)

// assertSameStream verifies two streams have identical seed, path, and the
// same next draws — the contract that lets the allocation-free split helpers
// replace Splitf without invalidating any existing bank or experiment output.
func assertSameStream(t *testing.T, want, got *RNG, ctx string) {
	t.Helper()
	if want.Seed() != got.Seed() {
		t.Fatalf("%s: seed %d != %d", ctx, got.Seed(), want.Seed())
	}
	if want.Path() != got.Path() {
		t.Fatalf("%s: path %q != %q", ctx, got.Path(), want.Path())
	}
	for i := 0; i < 16; i++ {
		w, g := want.Uint64(), got.Uint64()
		if w != g {
			t.Fatalf("%s: draw %d: %d != %d", ctx, i, g, w)
		}
	}
}

// TestSplitIntoMatchesSplitf pins the derivation-key equality between the
// fmt-free helpers and the original Splitf paths used by existing banks.
func TestSplitIntoMatchesSplitf(t *testing.T) {
	parents := []*RNG{
		New(0),
		New(42),
		New(42).Split("train"),
		New(7).Split("config-3").Split("train"),
		New(^uint64(0)),
	}
	ints := []int{0, 1, 9, 10, 99, 100, 404, 405, 123456789, -1, -42}
	for pi, parent := range parents {
		dst := New(0)
		for _, n := range ints {
			parent.SplitIntInto(dst, "round-", n)
			assertSameStream(t, parent.Splitf("round-%d", n), dst,
				fmt.Sprintf("parent %d SplitIntInto round-%d", pi, n))
			for _, m := range ints {
				parent.SplitInt2Into(dst, "client-", n, "-round-", m)
				assertSameStream(t, parent.Splitf("client-%d-round-%d", n, m), dst,
					fmt.Sprintf("parent %d SplitInt2Into client-%d-round-%d", pi, n, m))
			}
		}
		for _, label := range []string{"train", "init", "pool", "", "a/b", "répétition"} {
			parent.SplitInto(dst, label)
			assertSameStream(t, parent.Split(label), dst,
				fmt.Sprintf("parent %d SplitInto %q", pi, label))
		}
	}
}

// TestSplitIntoChildSplits verifies a reseeded child derives the same
// grandchildren as a freshly allocated one (the deferred path materializes
// correctly).
func TestSplitIntoChildSplits(t *testing.T) {
	parent := New(11).Split("train")
	dst := New(0)
	parent.SplitIntInto(dst, "round-", 17)
	want := parent.Splitf("round-%d", 17).Split("sub")
	got := dst.Split("sub")
	assertSameStream(t, want, got, "grandchild")
}

// TestSplitIntoReuse checks that reusing one destination across many splits
// leaves no cross-contamination between consecutive streams.
func TestSplitIntoReuse(t *testing.T) {
	parent := New(3)
	dst := New(0)
	for round := 0; round < 50; round++ {
		parent.SplitIntInto(dst, "round-", round)
		want := parent.Splitf("round-%d", round)
		// Interleave draws with the equality check.
		for i := 0; i < 4; i++ {
			if w, g := want.IntN(1000), dst.IntN(1000); w != g {
				t.Fatalf("round %d draw %d: %d != %d", round, i, g, w)
			}
		}
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		a, b := New(5).Split("p"), New(5).Split("p")
		dst := make([]int, n)
		b.PermInto(dst)
		want := a.Perm(n)
		for i := range want {
			if want[i] != dst[i] {
				t.Fatalf("n=%d: PermInto %v != Perm %v", n, dst, want)
			}
		}
		// Both must leave the stream in the same state.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: stream state diverged after PermInto", n)
		}
	}
}

func TestSampleWithoutReplacementIntoMatches(t *testing.T) {
	buf := make([]int, 100)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 3}, {10, 10}, {100, 7}, {1, 1}} {
		a, b := New(9).Split("s"), New(9).Split("s")
		want := a.SampleWithoutReplacement(tc.n, tc.k)
		got := b.SampleWithoutReplacementInto(tc.n, tc.k, buf)
		if len(want) != len(got) {
			t.Fatalf("n=%d k=%d: len %d != %d", tc.n, tc.k, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("n=%d k=%d: %v != %v", tc.n, tc.k, got, want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d k=%d: stream state diverged", tc.n, tc.k)
		}
	}
}

// TestSplitIntoAllocationFree asserts the steady-state allocation contract
// that motivated the helpers: deriving hot-path child streams costs zero
// heap allocations once buffers are warm.
func TestSplitIntoAllocationFree(t *testing.T) {
	parent := New(1).Split("train")
	parent.Path() // materialize once
	dst := New(0)
	perm := make([]int, 40)
	buf := make([]int, 40)
	round := 0
	allocs := testing.AllocsPerRun(200, func() {
		parent.SplitIntInto(dst, "round-", round)
		dst.SampleWithoutReplacementInto(40, 10, buf)
		parent.SplitInt2Into(dst, "client-", round%17, "-round-", round)
		dst.PermInto(perm)
		round++
	})
	if allocs != 0 {
		t.Fatalf("hot-path split helpers allocate %.1f/op, want 0", allocs)
	}
}
