// Package rng provides a deterministic, splittable random number generator
// and the probability distributions used throughout the noisy-evaluation
// study: uniform, log-uniform, normal, Laplace, Dirichlet, Zipf, categorical,
// and sampling with/without replacement.
//
// Every stochastic component in this repository takes an explicit *RNG.
// Experiments derive independent streams with Split so that results are
// reproducible bit-for-bit regardless of goroutine scheduling.
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"strconv"
)

// RNG is a deterministic random number generator. It wraps a PCG source from
// math/rand/v2 and supports deriving independent child streams via Split.
// An RNG is not safe for concurrent use; Split off one stream per goroutine.
type RNG struct {
	// src and r are embedded by value — one RNG is one allocation, which
	// matters when the block scheduler creates two streams per trial. r's
	// Source always points at the sibling src field, so an RNG must never be
	// copied by value (use pointers, as every API here does).
	src  rand.PCG
	r    rand.Rand
	seed uint64
	path string

	// Deferred path representation, used by the allocation-free SplitInto
	// helpers: when deferred is true the logical path is
	// parentPath + "/" + labelBuf and path is materialized lazily by Path().
	// labelBuf aliases labelArr until a label outgrows it, so the first
	// SplitInto against a fresh stream allocates nothing.
	parentPath string
	labelBuf   []byte
	labelArr   [32]byte
	deferred   bool

	// prefixHash caches the label-independent FNV prefix of deriveSeed
	// (hex seed, '/', path, '/'): it changes only when the stream is
	// reseeded, while hot loops derive many sibling labels from one parent.
	prefixHash uint64
	prefixOK   bool
}

// New returns an RNG seeded with seed. The second PCG word is a fixed
// golden-ratio constant so that nearby seeds still give decorrelated streams.
func New(seed uint64) *RNG {
	g := &RNG{seed: seed}
	g.src.Seed(seed, seed^0x9e3779b97f4a7c15)
	g.r = *rand.New(&g.src)
	g.labelBuf = g.labelArr[:0]
	return g
}

// Split derives an independent child stream labelled by label. The child's
// seed is a hash of the parent seed, the parent's path, and the label, so the
// same (seed, path) always yields the same stream and different labels yield
// decorrelated streams. Split does not consume randomness from the parent.
func (g *RNG) Split(label string) *RNG {
	path := g.Path()
	h := fnv.New64a()
	fmt.Fprintf(h, "%016x/%s/%s", g.seed, path, label)
	child := New(h.Sum64())
	child.path = path + "/" + label
	return child
}

// Splitf is Split with a formatted label.
func (g *RNG) Splitf(format string, args ...any) *RNG {
	return g.Split(fmt.Sprintf(format, args...))
}

// The in-place split helpers below produce byte-identical derivation keys to
// Split/Splitf without any heap allocation: the federated hot loop derives two
// child streams per round ("round-N" and "client-K-round-N"), and the
// fmt.Sprintf + hash.Hash + child-RNG allocations of Splitf dominated its
// allocation profile. TestSplitIntoMatchesSplitf pins stream equality.

// fnv64a constants (hash/fnv), inlined so key derivation needs no hash.Hash
// allocation. deriveSeed must hash exactly the bytes Split writes via
// fmt.Fprintf(h, "%016x/%s/%s", seed, path, label).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvBytes(h uint64, bs []byte) uint64 {
	for _, b := range bs {
		h = fnvByte(h, b)
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// FNV64a is the incremental FNV-1a state this package derives split seeds
// with, exported so other hot paths (the bank oracle's evaluation-stream
// seeds) share one canonical implementation instead of re-inlining the
// constants — and fold bytes without allocating a hash.Hash.
type FNV64a uint64

// NewFNV64a returns the FNV-1a offset basis.
func NewFNV64a() FNV64a { return fnvOffset64 }

// Byte folds one byte.
func (h FNV64a) Byte(b byte) FNV64a { return FNV64a(fnvByte(uint64(h), b)) }

// String folds s's bytes.
func (h FNV64a) String(s string) FNV64a { return FNV64a(fnvString(uint64(h), s)) }

// Uint64Decimal folds v's base-10 digits — the bytes fmt's %d would write.
func (h FNV64a) Uint64Decimal(v uint64) FNV64a {
	var buf [20]byte
	return FNV64a(fnvBytes(uint64(h), strconv.AppendUint(buf[:0], v, 10)))
}

// Sum returns the current hash value.
func (h FNV64a) Sum() uint64 { return uint64(h) }

// deriveSeed returns the child seed Split(string(label)) computes.
func (g *RNG) deriveSeed(label []byte) uint64 {
	if !g.prefixOK {
		const hexDigits = "0123456789abcdef"
		h := uint64(fnvOffset64)
		for shift := 60; shift >= 0; shift -= 4 {
			h = fnvByte(h, hexDigits[(g.seed>>uint(shift))&0xf])
		}
		h = fnvByte(h, '/')
		h = g.hashPath(h)
		g.prefixHash, g.prefixOK = fnvByte(h, '/'), true
	}
	return fnvBytes(g.prefixHash, label)
}

// hashPath folds this stream's split-path into h without materializing it:
// a deferred path hashes as parentPath + "/" + labelBuf.
func (g *RNG) hashPath(h uint64) uint64 {
	if !g.deferred {
		return fnvString(h, g.path)
	}
	h = fnvString(h, g.parentPath)
	h = fnvByte(h, '/')
	return fnvBytes(h, g.labelBuf)
}

// reseed points g at the stream New(seed) would produce, reusing g's
// allocated source. rand/v2's Rand holds no state beyond its Source, so the
// resulting stream is byte-identical to a freshly constructed RNG.
func (g *RNG) reseed(seed uint64) {
	g.seed = seed
	g.prefixOK = false
	g.src.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// Reseed reinitializes g in place to the exact stream New(seed) returns
// (root path, identical subsequent Split derivations), reusing g's
// allocations. The hot-path form of "make a fresh RNG per evaluation" used
// by the bank oracle: one RNG per trial, reseeded per evaluation call.
func (g *RNG) Reseed(seed uint64) {
	g.reseed(seed)
	g.path = ""
	g.parentPath = ""
	g.deferred = false
}

// splitLabelInto reseeds dst to the stream g.Split(string(label)) returns,
// with dst's path kept in deferred (unmaterialized) form so the call is
// allocation-free once dst's label buffer is warm. label must alias
// dst.labelBuf (the callers below build it there).
func (g *RNG) splitLabelInto(dst *RNG, label []byte) {
	seed := g.deriveSeed(label)
	dst.parentPath = g.Path()
	dst.deferred = true
	dst.path = ""
	dst.reseed(seed)
}

// SplitInto reseeds dst in place to the exact stream g.Split(label) returns
// (same seed, same split-path, same subsequent Split derivations). dst must
// have been created by New and must not be g itself; its previous stream is
// abandoned.
func (g *RNG) SplitInto(dst *RNG, label string) {
	dst.labelBuf = append(dst.labelBuf[:0], label...)
	g.splitLabelInto(dst, dst.labelBuf)
}

// SplitIntInto is SplitInto with label prefix+itoa(n): it reseeds dst to the
// stream g.Splitf(prefix+"%d", n) returns, without the fmt allocations.
func (g *RNG) SplitIntInto(dst *RNG, prefix string, n int) {
	buf := append(dst.labelBuf[:0], prefix...)
	buf = appendDecimal(buf, n)
	dst.labelBuf = buf
	g.splitLabelInto(dst, buf)
}

// SplitInt2Into is SplitInto with label p1+itoa(a)+p2+itoa(b): it reseeds dst
// to the stream g.Splitf(p1+"%d"+p2+"%d", a, b) returns.
func (g *RNG) SplitInt2Into(dst *RNG, p1 string, a int, p2 string, b int) {
	buf := append(dst.labelBuf[:0], p1...)
	buf = appendDecimal(buf, a)
	buf = append(buf, p2...)
	buf = appendDecimal(buf, b)
	dst.labelBuf = buf
	g.splitLabelInto(dst, buf)
}

// appendDecimal appends the base-10 representation of n (matching %d);
// allocation-free when buf has capacity.
func appendDecimal(buf []byte, n int) []byte {
	return strconv.AppendInt(buf, int64(n), 10)
}

// Seed returns the seed this stream was created with.
func (g *RNG) Seed() uint64 { return g.seed }

// Path returns the split-path of this stream ("" for a root stream),
// materializing a deferred path left by SplitInto and friends.
func (g *RNG) Path() string {
	if g.deferred {
		g.path = g.parentPath + "/" + string(g.labelBuf)
		g.deferred = false
	}
	return g.path
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// LogUniform returns exp of a uniform sample in [log(lo), log(hi)).
// Both bounds must be positive.
func (g *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi <= 0 {
		panic(fmt.Sprintf("rng: LogUniform bounds must be positive, got [%g, %g]", lo, hi))
	}
	return math.Exp(g.Uniform(math.Log(lo), math.Log(hi)))
}

// Normal returns a sample from N(mean, stddev^2).
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Laplace returns a sample from the Laplace distribution with the given mean
// and scale b (density 1/(2b) exp(-|x-mean|/b)). Scale must be positive;
// a scale of +Inf returns ±Inf (used to model a fully exhausted privacy
// budget) and a scale of 0 returns mean exactly.
func (g *RNG) Laplace(mean, scale float64) float64 {
	if scale < 0 {
		panic(fmt.Sprintf("rng: Laplace scale must be non-negative, got %g", scale))
	}
	if scale == 0 {
		return mean
	}
	// Inverse CDF: u in (-1/2, 1/2), x = mean - b*sign(u)*ln(1-2|u|).
	u := g.r.Float64() - 0.5
	return mean - scale*sign(u)*math.Log1p(-2*math.Abs(u))
}

// Exponential returns a sample from Exp(rate) with the given rate λ > 0.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: Exponential rate must be positive, got %g", rate))
	}
	return g.r.ExpFloat64() / rate
}

// Gamma returns a sample from Gamma(shape, 1) using Marsaglia-Tsang for
// shape >= 1 and the boost for shape < 1.
func (g *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic(fmt.Sprintf("rng: Gamma shape must be positive, got %g", shape))
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a).
		return g.Gamma(shape+1) * math.Pow(g.r.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills out with a sample from Dirichlet(alpha, ..., alpha) of the
// given dimension. Used to synthesize non-iid client label distributions
// (Hsu et al., 2019) with alpha = 0.1 for the CIFAR10-like population.
func (g *RNG) Dirichlet(alpha float64, dim int) []float64 {
	if dim <= 0 {
		panic(fmt.Sprintf("rng: Dirichlet dimension must be positive, got %d", dim))
	}
	out := make([]float64, dim)
	sum := 0.0
	for i := range out {
		out[i] = g.Gamma(alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Extremely small alpha can underflow every component; fall back to
		// a one-hot draw, which is the alpha->0 limit of the Dirichlet.
		out[g.IntN(dim)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// DirichletVec is Dirichlet with a per-component concentration vector.
func (g *RNG) DirichletVec(alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	sum := 0.0
	for i, a := range alpha {
		out[i] = g.Gamma(a)
		sum += out[i]
	}
	if sum == 0 {
		out[g.IntN(len(alpha))] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Zipf returns integer samples in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes nothing; for repeated sampling use NewZipf.
func (g *RNG) Zipf(s float64, n int) int {
	return NewZipf(s, n).Sample(g)
}

// Zipf is a reusable sampler over [0, n) with P(i) ∝ 1/(i+1)^s, used to
// synthesize token frequencies for the next-token-prediction populations.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler with exponent s over n ranks.
func NewZipf(s float64, n int) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Zipf needs n > 0, got %d", n))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one rank.
func (z *Zipf) Sample(g *RNG) int {
	u := g.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Categorical draws an index with probability proportional to weights[i].
// Weights must be non-negative with a positive sum.
func (g *RNG) Categorical(weights []float64) int {
	sum := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("rng: Categorical weight must be non-negative, got %g", w))
		}
		sum += w
	}
	if sum <= 0 {
		panic("rng: Categorical weights sum to zero")
	}
	u := g.Float64() * sum
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // float round-off
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// PermInto fills dst with a random permutation of [0, len(dst)). It consumes
// exactly the randomness Perm(len(dst)) consumes and produces the same
// permutation, without allocating (the hot-path form used by local training's
// per-client example shuffles).
func (g *RNG) PermInto(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	g.r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Shuffle shuffles the first n indices using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n or k < 0. The result is in random order.
// This models sampling the client subset S ⊂ [Nval] in Eq. 2 of the paper.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic(fmt.Sprintf("rng: SampleWithoutReplacement k=%d out of range [0, %d]", k, n))
	}
	if k == 0 {
		return nil
	}
	// Partial Fisher-Yates over an index slice; O(n) memory, O(k) swaps.
	return g.SampleWithoutReplacementInto(n, k, make([]int, n))
}

// SampleWithoutReplacementInto is SampleWithoutReplacement with caller-owned
// scratch: buf must have length >= n; the result occupies buf[:k]. It draws
// from the stream identically to SampleWithoutReplacement, so the two forms
// are interchangeable without perturbing reproducibility.
func (g *RNG) SampleWithoutReplacementInto(n, k int, buf []int) []int {
	if k < 0 || k > n {
		panic(fmt.Sprintf("rng: SampleWithoutReplacementInto k=%d out of range [0, %d]", k, n))
	}
	if k == 0 {
		return buf[:0]
	}
	idx := buf[:n]
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + g.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// WeightedSampleWithoutReplacement returns k distinct indices drawn without
// replacement with probability at each step proportional to weights[i] among
// the remaining items. This implements the biased client selection used to
// model systems heterogeneity (weight (a_k + δ)^b in §3.2 of the paper).
// Weights must be non-negative with positive sum; k must be in [0, n].
func (g *RNG) WeightedSampleWithoutReplacement(weights []float64, k int) []int {
	n := len(weights)
	if k < 0 || k > n {
		panic(fmt.Sprintf("rng: WeightedSampleWithoutReplacement k=%d out of range [0, %d]", k, n))
	}
	if k == 0 {
		return nil
	}
	return g.WeightedSampleWithoutReplacementInto(weights, k, make([]float64, n), make([]int, n))
}

// WeightedSampleWithoutReplacementInto is WeightedSampleWithoutReplacement
// with caller-owned scratch: keyBuf and idxBuf must each have length >= n.
// The result occupies idxBuf[:k]. It draws from the stream identically to
// the allocating form (one uniform per positive weight, in index order), so
// the two are interchangeable without perturbing reproducibility — the
// hot-path form used by the evaluator's biased client sampling.
func (g *RNG) WeightedSampleWithoutReplacementInto(weights []float64, k int, keyBuf []float64, idxBuf []int) []int {
	n := len(weights)
	if k < 0 || k > n {
		panic(fmt.Sprintf("rng: WeightedSampleWithoutReplacementInto k=%d out of range [0, %d]", k, n))
	}
	if k == 0 {
		return idxBuf[:0]
	}
	// Efraimidis-Spirakis: key = u^(1/w); take the k largest keys.
	// Zero-weight items get key -inf and are only selected after all
	// positive-weight items are exhausted.
	keys, idx := keyBuf[:n], idxBuf[:n]
	anyPositive := false
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("rng: weight[%d] must be non-negative, got %g", i, w))
		}
		if w > 0 {
			anyPositive = true
			keys[i] = math.Pow(g.Float64(), 1/w)
		} else {
			keys[i] = math.Inf(-1)
		}
		idx[i] = i
	}
	if !anyPositive {
		panic("rng: all weights are zero")
	}
	// Partial selection of the k largest keys (same comparisons and swaps
	// as the historical pair-struct implementation).
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if keys[j] > keys[best] {
				best = j
			}
		}
		keys[i], keys[best] = keys[best], keys[i]
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.Float64() < p }

// Choice returns a uniformly chosen element index of a slice of length n.
func (g *RNG) Choice(n int) int { return g.IntN(n) }

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
