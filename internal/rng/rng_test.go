package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with the same seed diverged at draw %d", i)
		}
	}
}

func TestSplitDeterminismAndIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("alpha")
	c2 := root.Split("alpha")
	c3 := root.Split("beta")
	same, diff := 0, 0
	for i := 0; i < 64; i++ {
		x, y, z := c1.Float64(), c2.Float64(), c3.Float64()
		if x == y {
			same++
		}
		if x != z {
			diff++
		}
	}
	if same != 64 {
		t.Errorf("same-label splits should be identical streams, matched %d/64", same)
	}
	if diff < 60 {
		t.Errorf("different-label splits should be decorrelated, differed only %d/64", diff)
	}
}

func TestSplitDoesNotConsumeParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("child")
	if a.Float64() != b.Float64() {
		t.Fatal("Split consumed randomness from the parent stream")
	}
}

func TestNestedSplitPaths(t *testing.T) {
	root := New(1)
	x := root.Split("a").Split("b")
	y := root.Split("a/b") // different path encoding must not collide trivially
	if x.Path() != "/a/b" {
		t.Errorf("Path = %q, want /a/b", x.Path())
	}
	if x.Float64() == y.Float64() {
		t.Log("warning: nested and flat labels collided on first draw (allowed but unlikely)")
	}
}

func TestUniformBounds(t *testing.T) {
	g := New(3)
	f := func(rawLo, rawSpan float64) bool {
		lo := math.Mod(rawLo, 100)
		span := math.Abs(math.Mod(rawSpan, 100)) + 1e-9
		x := g.Uniform(lo, lo+span)
		return x >= lo && x < lo+span
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogUniformBounds(t *testing.T) {
	g := New(4)
	for i := 0; i < 1000; i++ {
		x := g.LogUniform(1e-6, 1e-1)
		if x < 1e-6 || x >= 1e-1 {
			t.Fatalf("LogUniform out of bounds: %g", x)
		}
	}
}

func TestLogUniformPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive bound")
		}
	}()
	New(1).LogUniform(0, 1)
}

func TestLogUniformIsUniformInLog(t *testing.T) {
	// The fraction of draws below the geometric midpoint should be ~1/2.
	g := New(5)
	lo, hi := 1e-6, 1e-1
	mid := math.Exp((math.Log(lo) + math.Log(hi)) / 2)
	below := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.LogUniform(lo, hi) < mid {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("fraction below geometric midpoint = %.3f, want ~0.5", frac)
	}
}

func TestLaplaceMoments(t *testing.T) {
	g := New(6)
	const n = 200000
	mean, scale := 2.0, 3.0
	sum, sumAbs := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := g.Laplace(mean, scale)
		sum += x
		sumAbs += math.Abs(x - mean)
	}
	if m := sum / n; math.Abs(m-mean) > 0.05 {
		t.Errorf("Laplace sample mean = %.4f, want ~%.1f", m, mean)
	}
	// E|X - mean| = scale for Laplace.
	if mad := sumAbs / n; math.Abs(mad-scale) > 0.05 {
		t.Errorf("Laplace mean abs deviation = %.4f, want ~%.1f", mad, scale)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	g := New(6)
	if x := g.Laplace(1.5, 0); x != 1.5 {
		t.Errorf("Laplace with zero scale = %g, want exactly the mean", x)
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	g := New(8)
	pos := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Laplace(0, 1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("P(X>0) = %.4f, want ~0.5", frac)
	}
}

func TestDirichletSimplex(t *testing.T) {
	g := New(10)
	for _, alpha := range []float64{0.05, 0.1, 1, 10} {
		for trial := 0; trial < 50; trial++ {
			p := g.Dirichlet(alpha, 10)
			sum := 0.0
			for _, v := range p {
				if v < 0 {
					t.Fatalf("Dirichlet produced negative component %g", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("Dirichlet components sum to %g, want 1", sum)
			}
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Small alpha should concentrate mass: max component near 1.
	g := New(11)
	const trials = 200
	sumMaxSmall, sumMaxLarge := 0.0, 0.0
	for i := 0; i < trials; i++ {
		sumMaxSmall += maxOf(g.Dirichlet(0.05, 10))
		sumMaxLarge += maxOf(g.Dirichlet(50, 10))
	}
	if sumMaxSmall/trials < 0.65 {
		t.Errorf("alpha=0.05 mean max component = %.3f, want > 0.65 (highly skewed)", sumMaxSmall/trials)
	}
	if sumMaxLarge/trials > 0.2 {
		t.Errorf("alpha=50 mean max component = %.3f, want < 0.2 (near uniform)", sumMaxLarge/trials)
	}
}

func TestDirichletVec(t *testing.T) {
	g := New(12)
	p := g.DirichletVec([]float64{1, 2, 3})
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("DirichletVec sums to %g", sum)
	}
}

func TestZipfHeadHeavy(t *testing.T) {
	g := New(13)
	z := NewZipf(1.1, 1000)
	counts := make([]int, 1000)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Sample(g)]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("rank 0 count %d should exceed rank 10 count %d", counts[0], counts[10])
	}
	if counts[0] <= counts[500] {
		t.Errorf("rank 0 count %d should exceed rank 500 count %d", counts[0], counts[500])
	}
}

func TestZipfRange(t *testing.T) {
	g := New(14)
	z := NewZipf(1.5, 7)
	for i := 0; i < 1000; i++ {
		s := z.Sample(g)
		if s < 0 || s >= 7 {
			t.Fatalf("Zipf sample %d out of [0,7)", s)
		}
	}
}

func TestCategorical(t *testing.T) {
	g := New(15)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[g.Categorical(w)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("category ratio = %.2f, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"zero-sum": {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestSampleWithoutReplacementProperties(t *testing.T) {
	g := New(16)
	f := func(rawN, rawK uint8) bool {
		n := int(rawN%50) + 1
		k := int(rawK) % (n + 1)
		s := g.SampleWithoutReplacement(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each of 5 items should appear in a 2-subset with probability 2/5.
	g := New(17)
	counts := make([]int, 5)
	const n = 50000
	for i := 0; i < n; i++ {
		for _, v := range g.SampleWithoutReplacement(5, 2) {
			counts[v]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.4) > 0.02 {
			t.Errorf("item %d inclusion rate = %.3f, want ~0.4", i, frac)
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestWeightedSampleWithoutReplacementProperties(t *testing.T) {
	g := New(18)
	f := func(rawN, rawK uint8) bool {
		n := int(rawN%30) + 1
		k := int(rawK) % (n + 1)
		w := make([]float64, n)
		for i := range w {
			w[i] = 1 + float64(i)
		}
		s := g.WeightedSampleWithoutReplacement(w, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWeightedSampleBias(t *testing.T) {
	// With weights [1, 10], item 1 should be first far more often.
	g := New(19)
	first1 := 0
	const n = 20000
	for i := 0; i < n; i++ {
		s := g.WeightedSampleWithoutReplacement([]float64{1, 10}, 1)
		if s[0] == 1 {
			first1++
		}
	}
	frac := float64(first1) / n
	if math.Abs(frac-10.0/11.0) > 0.02 {
		t.Errorf("heavy item selected %.3f of the time, want ~%.3f", frac, 10.0/11.0)
	}
}

func TestWeightedSampleZeroWeightsLast(t *testing.T) {
	g := New(20)
	// One positive weight among zeros: a 1-sample must always pick it.
	w := []float64{0, 0, 5, 0}
	for i := 0; i < 100; i++ {
		s := g.WeightedSampleWithoutReplacement(w, 1)
		if s[0] != 2 {
			t.Fatalf("picked zero-weight item %d", s[0])
		}
	}
	// A full sample includes everything exactly once.
	s := g.WeightedSampleWithoutReplacement(w, 4)
	sort.Ints(s)
	for i, v := range s {
		if v != i {
			t.Fatalf("full weighted sample = %v, want a permutation of 0..3", s)
		}
	}
}

func TestGammaPositive(t *testing.T) {
	g := New(21)
	for _, shape := range []float64{0.05, 0.5, 1, 2, 10} {
		for i := 0; i < 200; i++ {
			if x := g.Gamma(shape); x < 0 || math.IsNaN(x) {
				t.Fatalf("Gamma(%g) produced %g", shape, x)
			}
		}
	}
}

func TestGammaMean(t *testing.T) {
	g := New(22)
	const n = 100000
	shape := 3.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Gamma(shape)
	}
	if m := sum / n; math.Abs(m-shape) > 0.05 {
		t.Errorf("Gamma(3) sample mean = %.3f, want ~3", m)
	}
}

func TestExponentialMean(t *testing.T) {
	g := New(23)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(2)
	}
	if m := sum / n; math.Abs(m-0.5) > 0.02 {
		t.Errorf("Exp(2) sample mean = %.3f, want ~0.5", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(24)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("Perm repeated %d", v)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	g := New(25)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) hit rate = %.3f", frac)
	}
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// TestWeightedSampleIntoMatchesAllocating pins stream and output equality of
// the scratch form against the allocating form (what the evaluator's biased
// hot path relies on).
func TestWeightedSampleIntoMatchesAllocating(t *testing.T) {
	weights := []float64{0.1, 3, 0, 1.2, 0.7, 0, 2.2, 5, 0.01, 1}
	n := len(weights)
	keyBuf, idxBuf := make([]float64, n), make([]int, n)
	for k := 0; k <= n; k++ {
		a := New(77).Split("ws").WeightedSampleWithoutReplacement(weights, k)
		g := New(77).Split("ws")
		b := g.WeightedSampleWithoutReplacementInto(weights, k, keyBuf, idxBuf)
		if len(a) != len(b) {
			t.Fatalf("k=%d: lengths differ: %d vs %d", k, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("k=%d: index %d differs: %d vs %d", k, i, a[i], b[i])
			}
		}
		// Both forms must leave the stream in the same state.
		ref := New(77).Split("ws")
		ref.WeightedSampleWithoutReplacement(weights, k)
		if ref.Float64() != g.Float64() {
			t.Fatalf("k=%d: stream state diverged after sampling", k)
		}
	}
}

// TestReseedMatchesNew pins Reseed's contract: a reseeded generator is
// indistinguishable from a freshly constructed one, including its Split
// derivations.
func TestReseedMatchesNew(t *testing.T) {
	g := New(1)
	g.Float64() // advance
	_ = g.Split("child")
	sub := New(0)
	g.SplitInto(sub, "x") // leave a deferred path behind
	sub.Reseed(42)
	fresh := New(42)
	for i := 0; i < 16; i++ {
		if sub.Uint64() != fresh.Uint64() {
			t.Fatalf("draw %d differs after Reseed", i)
		}
	}
	if sub.Split("lbl").Uint64() != fresh.Split("lbl").Uint64() {
		t.Error("Split derivation differs after Reseed (stale path state)")
	}
	if sub.Path() != fresh.Path() {
		t.Errorf("paths differ: %q vs %q", sub.Path(), fresh.Path())
	}
}
