package core

import (
	"context"

	"noisyeval/internal/data"
)

// BankBuilder abstracts how a bank comes into existence for a given
// (population, options, seed) triple. exper.Suite, serve.Manager, and the
// figure scheduler all build banks exclusively through this interface, so
// swapping the implementation — local training, content-addressed cache,
// peer read-through, or the internal/dist coordinator/worker fleet — changes
// where the training happens without touching any layer above.
//
// ctx carries cancellation and the run's obs.Trace (obs.TraceFrom): builders
// record bank.lookup / bank.build spans on it, and the dist coordinator
// propagates its trace ID to workers over the lease wire so shard spans
// attach to the same timeline.
//
// cached reports that the bank was obtained without training it in this call
// (a store or peer hit); callers use it to count real builds.
type BankBuilder interface {
	BuildBank(ctx context.Context, pop *data.Population, opts BuildOptions, seed uint64) (b *Bank, cached bool, err error)
}

// LocalBuilder is the single-process BankBuilder: BuildBank through an
// optional content-addressed store (exactly the pre-dist BuildBankCached
// behavior). A nil Store degrades to a plain uncached build.
type LocalBuilder struct {
	Store *BankStore
}

// BuildBank implements BankBuilder.
func (l LocalBuilder) BuildBank(ctx context.Context, pop *data.Population, opts BuildOptions, seed uint64) (*Bank, bool, error) {
	return BuildBankCached(ctx, l.Store, pop, opts, seed)
}
