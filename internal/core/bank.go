// Package core implements the paper's experimental protocol: the ConfigBank
// of pre-trained hyperparameter configurations with per-client error records
// (the artifact's fedtrain_simple + analysis methodology — train 128 configs
// once, then bootstrap hundreds of tuning trials from the recorded
// evaluations), the oracles that tuning methods query (bank-backed and
// live), and the Tuner/Trial orchestration used by every experiment.
package core

import (
	"fmt"
	"math"
	"sort"

	"noisyeval/internal/data"
	"noisyeval/internal/fl"
	"noisyeval/internal/hpo"
)

// Bank holds the study's reusable training artifact: for every configuration
// and every checkpoint (SHA rung), the error of the trained model on every
// validation client under every evaluation partition. All noisy-evaluation
// experiments are bootstrap resamples of these records, exactly as in the
// paper's analysis pipeline.
type Bank struct {
	// SpecName identifies the dataset population.
	SpecName string
	// Seed is the RNG seed the bank was built with.
	Seed uint64
	// Configs is the candidate pool (the paper's 128 RS draws).
	Configs []fl.HParams
	// Rounds is the ascending checkpoint grid (SHA rungs, e.g. 5..405).
	Rounds []int
	// Partitions are the iid-repartition fractions p of the validation
	// pool for which errors were recorded (Figure 4); always includes 0
	// (the natural partition) at index 0.
	Partitions []float64
	// Errs is the dense error tensor: Errs.Row(p, c, r) is the per-client
	// error vector of config c at checkpoint r under partition p, a view
	// into one contiguous arena (see ErrMatrix).
	Errs ErrMatrix
	// ExampleCounts[p][k] is validation client k's example count under
	// partition p (weights for Eq. 2; repartitioning preserves sizes, so
	// rows are equal, but they are stored per partition for integrity).
	ExampleCounts [][]int
	// Diverged[c] reports whether config c's training hit NaN.
	Diverged []bool

	index map[fl.HParams]int
	// fastIndex is an open-addressing table keyed by the raw bits of each
	// config, probed before the Go map on the ConfigIndex hot path. Float
	// bits and float equality differ only around NaN and ±0, so the table
	// is disabled (left nil) when any pool config carries such a field —
	// then lookups fall through to the map and semantics are unchanged.
	fastIndex []int32
	fastMask  uint64
}

// BuildOptions configures bank construction.
type BuildOptions struct {
	// NumConfigs is the candidate pool size (paper: 128).
	NumConfigs int
	// MaxRounds is the per-config training budget (paper: 405).
	MaxRounds int
	// Eta and Levels define the checkpoint rung grid (paper: 3, 5).
	Eta, Levels int
	// Partitions lists iid fractions p to record (nil = natural only).
	Partitions []float64
	// Train configures the federated trainer.
	Train fl.Options
	// BatchEval selects the batched training engine (minibatch GEMM
	// forward/backward, batched client evaluation) for every trainer the
	// build runs; it overrides Train.BatchEval. Batched summation order
	// legitimately changes numerics, so the flag participates in the
	// BankStore cache key: a BatchEval=false build reproduces the original
	// per-sample engine bit for bit, under a distinct key.
	BatchEval bool
	// Workers bounds build parallelism (0 = GOMAXPROCS). It never affects
	// bank content, only wall-clock.
	Workers int
	// Space is the sampling space for the pool (zero value = DefaultSpace).
	Space hpo.Space
	// Configs, when non-empty, overrides pool sampling. The transfer
	// experiments (Figures 10/11/12/14) train the SAME pool on every
	// dataset, so their banks share this list.
	Configs []fl.HParams
}

// DefaultBuildOptions returns the paper's bank shape.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		NumConfigs: 128,
		MaxRounds:  405,
		Eta:        3,
		Levels:     5,
		Train:      fl.DefaultOptions(),
		BatchEval:  true,
		Space:      hpo.DefaultSpace(),
	}
}

// BuildBank trains opts.NumConfigs configurations on the population and
// records per-client errors at every checkpoint under every partition.
// Construction is deterministic in (pop, opts, seed) and parallel across
// configurations. It is the single-process composition of the shardable
// pipeline in shard.go: plan, train the full config range, assemble — the
// exact code path internal/dist workers run on their index ranges, which is
// what makes a fleet-assembled bank byte-identical to a local one.
func BuildBank(pop *data.Population, opts BuildOptions, seed uint64) (*Bank, error) {
	plan, err := NewBuildPlan(pop, opts, seed)
	if err != nil {
		return nil, err
	}
	shard, err := plan.TrainRange(0, plan.NumConfigs(), opts.Workers)
	if err != nil {
		return nil, err
	}
	return AssembleBank(plan, []*BankShard{shard})
}

// buildIndex (re)creates the config lookup map (needed after decoding) and,
// when safe, the bit-keyed fast table probed before it.
func (b *Bank) buildIndex() {
	b.index = make(map[fl.HParams]int, len(b.Configs))
	for i, c := range b.Configs {
		b.index[c] = i
	}
	// Bit-hashing is only equivalent to map lookup when bit equality and
	// float equality coincide for every stored key: a NaN field would
	// bit-match yet map-miss, and a ±0 field could alias a map key with the
	// opposite zero. Neither occurs for real banks (configs are log-uniform
	// and uniform draws plus fixed non-zero constants), but a poisoned pool
	// silently falls back to the exact map.
	for _, c := range b.Configs {
		for _, f := range [...]float64{c.ServerLR, c.Beta1, c.Beta2, c.LRDecay, c.ClientLR, c.ClientMomentum, c.WeightDecay} {
			if f != f || f == 0 {
				return
			}
		}
	}
	size := uint64(4)
	for size < uint64(len(b.Configs))*2 {
		size *= 2
	}
	table := make([]int32, size)
	for i := range table {
		table[i] = -1
	}
	mask := size - 1
	for i, c := range b.Configs {
		slot := hashHParams(c) & mask
		for table[slot] >= 0 {
			// Bit-equal duplicates keep the last index, matching the map's
			// overwrite; bit-distinct keys probe onward.
			if b.Configs[table[slot]] == c {
				break
			}
			slot = (slot + 1) & mask
		}
		table[slot] = int32(i)
	}
	b.fastIndex, b.fastMask = table, mask
}

// hashHParams mixes the raw bits of every config field (FNV-1a over 64-bit
// words). Cheaper than the runtime's per-float type hash, which is what makes
// ConfigIndex viable on the per-evaluation hot path.
func hashHParams(c fl.HParams) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ math.Float64bits(c.ServerLR)) * prime
	h = (h ^ math.Float64bits(c.Beta1)) * prime
	h = (h ^ math.Float64bits(c.Beta2)) * prime
	h = (h ^ math.Float64bits(c.LRDecay)) * prime
	h = (h ^ math.Float64bits(c.ClientLR)) * prime
	h = (h ^ math.Float64bits(c.ClientMomentum)) * prime
	h = (h ^ math.Float64bits(c.WeightDecay)) * prime
	h = (h ^ uint64(c.BatchSize)) * prime
	h = (h ^ uint64(c.Epochs)) * prime
	return h ^ h>>32
}

// ConfigIndex returns the pool index of cfg, or an error if the config is
// not a bank member (bank oracles only serve pool configs).
func (b *Bank) ConfigIndex(cfg fl.HParams) (int, error) {
	if b.index == nil {
		b.buildIndex()
	}
	if mask := b.fastMask; mask != 0 {
		for slot := hashHParams(cfg) & mask; ; slot = (slot + 1) & mask {
			i := b.fastIndex[slot]
			if i < 0 {
				break // bit-miss: fall through to the exact map
			}
			if b.Configs[i] == cfg {
				return int(i), nil
			}
		}
	}
	if i, ok := b.index[cfg]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("core: config %+v is not in the bank", cfg)
}

// PartitionIndex returns the index of iid fraction p.
func (b *Bank) PartitionIndex(p float64) (int, error) {
	for i, v := range b.Partitions {
		if v == p {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: partition p=%g not recorded (have %v)", p, b.Partitions)
}

// CheckpointIndex returns the index of the highest checkpoint <= rounds
// (clamped to the first checkpoint for smaller values).
func (b *Bank) CheckpointIndex(rounds int) int {
	idx := sort.SearchInts(b.Rounds, rounds+1) - 1
	if idx < 0 {
		idx = 0
	}
	return idx
}

// MaxRounds returns the highest checkpoint.
func (b *Bank) MaxRounds() int { return b.Rounds[len(b.Rounds)-1] }

// NumClients returns the validation pool size.
func (b *Bank) NumClients() int { return len(b.ExampleCounts[0]) }

// ClientErrors returns the per-client error vector for (partition p, config
// index, rounds). The slice is a view into the bank's arena; callers must not
// modify it.
func (b *Bank) ClientErrors(partition float64, configIdx, rounds int) ([]float64, error) {
	pi, err := b.PartitionIndex(partition)
	if err != nil {
		return nil, err
	}
	if configIdx < 0 || configIdx >= len(b.Configs) {
		return nil, fmt.Errorf("core: config index %d out of range [0, %d)", configIdx, len(b.Configs))
	}
	return b.Errs.Row(pi, configIdx, b.CheckpointIndex(rounds)), nil
}

// Validate checks the bank's structural integrity (used after loading).
func (b *Bank) Validate() error {
	if len(b.Configs) == 0 || len(b.Rounds) == 0 || len(b.Partitions) == 0 {
		return fmt.Errorf("core: bank has empty configs/rounds/partitions")
	}
	if b.Partitions[0] != 0 {
		return fmt.Errorf("core: partition 0 must be the natural split, got %v", b.Partitions)
	}
	if !sort.IntsAreSorted(b.Rounds) {
		return fmt.Errorf("core: checkpoint rounds %v not sorted", b.Rounds)
	}
	if len(b.ExampleCounts) != len(b.Partitions) {
		return fmt.Errorf("core: partition dimension mismatch")
	}
	n := len(b.ExampleCounts[0])
	for pi, row := range b.ExampleCounts {
		if len(row) != n {
			return fmt.Errorf("core: example counts row %d has %d clients, want %d", pi, len(row), n)
		}
	}
	if err := b.Errs.CheckShape(len(b.Partitions), len(b.Configs), len(b.Rounds), n); err != nil {
		return err
	}
	if len(b.Diverged) != len(b.Configs) {
		return fmt.Errorf("core: diverged flags mismatch")
	}
	return nil
}

func exampleCounts(clients []*data.Client) []int {
	out := make([]int, len(clients))
	for i, c := range clients {
		out[i] = c.NumExamples()
	}
	return out
}

func dedupFloats(xs []float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
