package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"noisyeval/internal/core/bankseg"
)

// saveWriterHook, when non-nil, wraps the temp-file writer inside SaveBank.
// It exists so tests can inject mid-encode write failures and assert the
// cleanup contract (no temp file left behind, destination untouched). Always
// nil outside tests.
var saveWriterHook func(io.Writer) io.Writer

// SaveBank writes the bank to path in bankfmt/v3 (see bankfmt.go). Banks are
// the expensive artifact of the study (cmd/bank builds them; cmd/figures
// reuses them), so the write is crash-safe: encode into a temp file in the
// destination directory, fsync, then atomically rename. A failed encode
// removes the temp file and leaves any existing file at path untouched.
func SaveBank(b *Bank, path string) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("core: refusing to save invalid bank: %w", err)
	}
	dir := filepath.Dir(path)
	if dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("core: save bank: %w", err)
		}
	}
	// The temp name must not match the BankStore's *.bank entry glob, so a
	// half-written artifact is never visible as a cache entry.
	f, err := os.CreateTemp(dir, ".banktmp-*")
	if err != nil {
		return fmt.Errorf("core: save bank: %w", err)
	}
	tmpPath := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmpPath)
		return err
	}
	var w io.Writer = f
	if saveWriterHook != nil {
		w = saveWriterHook(w)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := EncodeBank(bw, b); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("core: save bank: %w", err))
	}
	// fsync before rename: the rename must never publish an entry whose
	// bytes could still vanish in a crash (the BankStore would see a
	// truncated artifact and silently retrain).
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("core: save bank: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("core: save bank: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("core: save bank: %w", err)
	}
	return nil
}

// LoadBank reads a bank written by SaveBank (bankfmt/v3) or SaveBankV4
// (segmented bankfmt/v4) and validates it; the version is sniffed from the
// header. v4 loads verify every segment CRC and materialize a canonical
// heap arena — the fully-checked counterpart of OpenBankMapped. Corruption
// surfaces as a *CorruptError naming the failing section or segment and its
// offset.
func LoadBank(path string) (*Bank, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load bank: %w", err)
	}
	defer f.Close()
	b, err := decodeBankAuto(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) && ce.Path == "" {
			ce.Path = path
		}
		return nil, err
	}
	return b, nil
}

// DecodeBank reads one bank encoding (bankfmt/v3 or v4) from r and
// validates it (the internal/dist peer tier decodes banks straight off the
// wire with it, so peers can ship either generation).
func DecodeBank(r io.Reader) (*Bank, error) { return decodeBankAuto(r) }

// decodeBankAuto sniffs the format generation and dispatches: a v4 header
// routes to the segment layer (full payload verification, canonical heap
// arena), anything else to the v3 frame decoder.
func decodeBankAuto(r io.Reader) (*Bank, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64<<10)
	}
	if prefix, err := br.Peek(8); err == nil && bankseg.SniffV4(prefix) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: load bank v4: %w", err)
		}
		sf, err := bankseg.Parse(data)
		if err != nil {
			return nil, wrapSegmentErr("", err)
		}
		b, _, err := assembleBankV4(sf, true, false)
		return b, err
	}
	return decodeBank(br)
}

// decodeBank reads one bank encoding from r and validates it. A non-nil
// error means the content itself is bad (truncation, bit rot, checksum
// mismatch) or in a stale format generation (legacy gob+gzip, future
// version — see IsStaleBankFormat). The BankStore uses this distinction to
// evict corrupt or stale entries and rebuild, never to surface errors for
// transient open failures.
func decodeBank(r io.Reader) (*Bank, error) {
	b, err := decodeBankBinary(r)
	if err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("core: loaded bank invalid: %w", err)
	}
	b.buildIndex()
	return b, nil
}
