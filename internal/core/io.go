package core

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// SaveBank writes the bank to path as gzipped gob. Banks are the expensive
// artifact of the study (cmd/bank builds them; cmd/figures reuses them).
func SaveBank(b *Bank, path string) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("core: refusing to save invalid bank: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("core: save bank: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save bank: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(b); err != nil {
		return fmt.Errorf("core: encode bank: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("core: flush bank: %w", err)
	}
	return f.Close()
}

// LoadBank reads a bank written by SaveBank and validates it.
func LoadBank(path string) (*Bank, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load bank: %w", err)
	}
	defer f.Close()
	return decodeBank(f)
}

// DecodeBank reads one SaveBank encoding from r and validates it (the
// internal/dist peer tier decodes banks straight off the wire with it).
func DecodeBank(r io.Reader) (*Bank, error) { return decodeBank(r) }

// decodeBank reads one SaveBank encoding from r and validates it. A non-nil
// error means the content itself is bad (truncation, bit rot, format drift)
// — the BankStore uses this distinction to evict only genuinely corrupt
// entries, never on transient open failures.
func decodeBank(r io.Reader) (*Bank, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: load bank: %w", err)
	}
	defer zr.Close()
	var b Bank
	if err := gob.NewDecoder(zr).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decode bank: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("core: loaded bank invalid: %w", err)
	}
	b.buildIndex()
	return &b, nil
}
