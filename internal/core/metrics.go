package core

import (
	"sync"

	"noisyeval/internal/obs"
)

// coreInstruments are the package-level metrics observed on core's hot
// paths. They live in one lazily-initialized registry (not per-store or
// per-tuner) because the oracle trial loop is shared by every consumer —
// served runs, figures, CLI tuning — and the interesting question is
// process-wide trial latency. Servers fold this registry into their
// /metrics endpoint with Registry.Attach.
type coreInstruments struct {
	// TrialSeconds tracks wall-clock latency of one tuning-method run over
	// one bootstrap trial (the unit RunTrials parallelizes).
	TrialSeconds *obs.Histogram
	// TrialsTotal counts completed bootstrap trials.
	TrialsTotal *obs.Counter
	// MappedWarmTotal counts mapped bank images pre-touched at open
	// (-mmap-warm): each warm trades open latency for fault-free first
	// sweeps, so operators can see whether slow first runs line up with
	// cold (unwarmed) mappings.
	MappedWarmTotal *obs.Counter
}

var (
	metricsOnce sync.Once
	metricsReg  *obs.Registry
	instruments coreInstruments
)

func initMetrics() {
	metricsReg = obs.NewRegistry()
	instruments = coreInstruments{
		TrialSeconds: metricsReg.Histogram("oracle_trial_seconds",
			"Wall-clock seconds per bootstrap trial of a tuning run.", nil),
		TrialsTotal: metricsReg.Counter("oracle_trials_total",
			"Bootstrap trials completed."),
		MappedWarmTotal: metricsReg.Counter("bank_mapped_warm_total",
			"Mapped bank images pre-touched (madvise + page walk) at open."),
	}
}

// Metrics returns the core package's metrics registry. Attach it to a
// server registry to include oracle trial series in /metrics.
func Metrics() *obs.Registry {
	metricsOnce.Do(initMetrics)
	return metricsReg
}

// metricsInstruments returns the hot-path instruments, initializing on
// first use.
func metricsInstruments() coreInstruments {
	metricsOnce.Do(initMetrics)
	return instruments
}
