package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"noisyeval/internal/eval"
	"noisyeval/internal/fl"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// blockWorkersOverride forces the row-evaluation worker count (tests drive
// the scheduler at high parallelism regardless of GOMAXPROCS). Zero means
// use GOMAXPROCS.
var blockWorkersOverride int

// blockOracle is the oracle the block scheduler hands every trial's method:
// Evaluate and the static facts come from the shared base BankOracle (the
// EvalStream proxy intercepts Evaluate, so it is never called here), while
// TrueError caches the full-pool error per arena row. TrueError is a pure
// function of the row — FullError over read-only bank data — so one cached
// value serves every trial bit-identically; the legacy path recomputed the
// full weighted sum once per observation per trial. All TrueError calls
// happen during the scheduler's serial resume phase, so the cache and the
// cur memo need no locking.
type blockOracle struct {
	*BankOracle
	nCkpt   int
	trueErr []float64
	filled  []bool
	cur     *trialState // the trial the scheduler is currently resuming
}

func (b *blockOracle) TrueError(cfg fl.HParams, rounds int) float64 {
	ts := b.cur
	// Observe loops walk their just-answered batch in ask order, so the row
	// the scheduler resolved for ask teCur is usually the row being asked
	// about; the guard makes the shortcut safe even when it is not (a row is
	// a pure function of (cfg, rounds), and both are compared).
	if ts != nil {
		if lb := ts.lastBatch; lb != nil && ts.teCur < len(ts.rows) &&
			rounds == lb.RoundsAt(ts.teCur) && cfg == lb.Configs[ts.teCur] {
			k := int(ts.rows[ts.teCur])
			ts.teCur++
			return b.rowTrueError(k)
		}
	}
	var ci int
	if ts != nil && ts.hasLast && cfg == ts.lastCfg {
		ci = ts.lastCI // methods usually report the config they just asked about
	} else {
		var err error
		if ci, err = b.bank.ConfigIndex(cfg); err != nil {
			panic(err)
		}
	}
	return b.rowTrueError(ci*b.nCkpt + b.bank.CheckpointIndex(rounds))
}

func (b *blockOracle) rowTrueError(k int) float64 {
	if !b.filled[k] {
		ci, ri := k/b.nCkpt, k%b.nCkpt
		b.trueErr[k] = b.full.FullError(b.bank.Errs.Row(b.pi, ci, ri))
		b.filled[k] = true
	}
	return b.trueErr[k]
}

// trialState is the scheduler's per-trial bookkeeping.
type trialState struct {
	stream  *hpo.EvalStream
	saltPfx rng.FNV64a // evalSeedPrefix("trial-<i>")
	inBatch bool       // the pending asks came from an EvalBatch

	// Row-resolution memo: configs repeat across a trial's consecutive asks
	// (rung ladders) and fidelities repeat almost always.
	lastCfg    fl.HParams
	lastCI     int
	lastRounds int
	lastRI     int
	hasLast    bool

	// lastBatch/rows keep the most recent batch's scheduler-resolved rows so
	// TrueError needs no config lookup while the method's observe loop walks
	// the batch back in ask order (teCur is the walk cursor).
	lastBatch *hpo.EvalBatch
	rows      []int32
	teCur     int
}

// waveAsk is one pending evaluation ask: which arena row it needs, the
// cohort seed, and where the answer goes (a trial's single-answer slot or an
// EvalBatch.Out element).
type waveAsk struct {
	row  int32
	seed uint64
	out  *float64
}

// blockScratch is one row-evaluation worker's private state.
type blockScratch struct {
	ms    eval.MultiScratch
	seeds []uint64
	asks  []int32
}

// runTrialsBlocked is the block-scheduler implementation of
// RunTrialsProgress (DESIGN.md §14). All n trials run concurrently as
// EvalStream coroutines on the scheduler's goroutine; each wave collects
// every live trial's pending asks — a whole EvalBatch at a time for batching
// methods — groups them by (config, checkpoint) arena row, evaluates each
// row once for all cohorts touching it (BankOracle.EvaluateRows), and
// resumes the trials with their answers.
//
// Results are bit-identical to the sequential path: a trial's method runs
// against the same RNG stream (g.Splitf("trial-i")), every ask is answered
// with exactly the value Evaluate would produce — the cohort seed is the
// same pure function of (seed, trial salt, evalID) — and TrueError returns
// the same FullError bits, so no method can observe which path executed it.
func (t Tuner) runTrialsBlocked(oracle *BankOracle, n int, g *rng.RNG, onTrial func(res TrialResult, completed int)) []TrialResult {
	results := make([]TrialResult, n)
	if n == 0 {
		return results
	}
	m := metricsInstruments()
	start := time.Now()

	bank := oracle.bank
	nCkpt := len(bank.Rounds)
	nRows := len(bank.Configs) * nCkpt
	bo := &blockOracle{
		BankOracle: oracle,
		nCkpt:      nCkpt,
		trueErr:    make([]float64, nRows),
		filled:     make([]bool, nRows),
	}

	trials := make([]trialState, n)
	defer func() {
		// Unwind any still-suspended method coroutines if a method panic (or
		// a bad config) aborts the scheduler mid-run.
		for i := range trials {
			if st := trials[i].stream; st != nil {
				st.Close()
			}
		}
	}()
	const rowsCap = 16 // per-trial batch-row memo capacity (appends past it just reallocate)
	rowsBacking := make([]int32, n*rowsCap)
	for i := range trials {
		tg := rng.New(0)
		g.SplitIntInto(tg, "trial-", i) // the sequential path's g.Splitf("trial-%d", i) stream
		trials[i].stream = hpo.NewEvalStream(t.Method, bo, t.Space, t.Settings, tg)
		trials[i].saltPfx = oracle.evalSeedPrefix(trialSalts.ID(i))
		trials[i].lastRounds = -1
		trials[i].rows = rowsBacking[i*rowsCap : i*rowsCap : (i+1)*rowsCap]
	}

	completed := 0
	finalize := func(i int) {
		h := trials[i].stream.History()
		trials[i].stream = nil
		res := TrialResult{Trial: i, History: h, FinalTrue: 1}
		if rec, ok := h.Recommend(); ok {
			res.FinalTrue = rec.True
		}
		results[i] = res
		m.TrialsTotal.Inc()
		completed++
		if onTrial != nil {
			// The scheduler is single-goroutine, so callbacks are serialized
			// and completion-ordered by construction.
			onTrial(res, completed)
		}
	}

	// answers holds single (non-batch) asks' replies, indexed by trial.
	answers := make([]float64, n)
	asks := make([]waveAsk, 0, 2*n)
	nextAsks := make([]waveAsk, 0, 2*n)
	fill := &asks // advance appends the resumed trial's new asks here

	rowOf := func(ts *trialState, cfg fl.HParams, rounds int) int32 {
		if !ts.hasLast || cfg != ts.lastCfg {
			ci, err := bank.ConfigIndex(cfg)
			if err != nil {
				panic(err)
			}
			ts.lastCfg, ts.lastCI, ts.hasLast = cfg, ci, true
		}
		if rounds != ts.lastRounds {
			ts.lastRounds, ts.lastRI = rounds, bank.CheckpointIndex(rounds)
		}
		return int32(ts.lastCI*nCkpt + ts.lastRI)
	}

	// advance resumes trial i (answering its pending asks first) until its
	// next ask or batch of asks, appending them to *fill. It reports false
	// when the trial finished instead.
	advance := func(i int, tell bool) bool {
		ts := &trials[i]
		bo.cur = ts
		if tell {
			if ts.inBatch {
				ts.inBatch = false
				ts.stream.FinishBatch()
			} else {
				ts.stream.Tell(answers[i])
			}
		}
		req, ok := ts.stream.Next()
		if !ok {
			finalize(i)
			return false
		}
		if b := ts.stream.Batch(); b != nil {
			// The method suspended with a whole batch: one wave entry per ask,
			// answered directly into the batch's Out slots.
			ts.inBatch = true
			ts.lastBatch, ts.rows, ts.teCur = b, ts.rows[:0], 0
			for j := range b.Configs {
				row := rowOf(ts, b.Configs[j], b.RoundsAt(j))
				ts.rows = append(ts.rows, row)
				*fill = append(*fill, waveAsk{
					row:  row,
					seed: ts.saltPfx.String(b.EvalIDAt(j)).Sum(),
					out:  &b.Out[j],
				})
			}
			return true
		}
		*fill = append(*fill, waveAsk{
			row:  rowOf(ts, req.Config, req.Rounds),
			seed: ts.saltPfx.String(req.EvalID).Sum(),
			out:  &answers[i],
		})
		return true
	}

	live := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if advance(i, false) {
			live = append(live, i)
		}
	}

	// Row-group linked lists over the wave's asks, keyed ci*nCkpt+ri. head
	// entries are reset via the touched list after each wave, so grouping is
	// O(wave), not O(rows).
	head := make([]int32, nRows)
	for i := range head {
		head[i] = -1
	}
	nextAsk := make([]int32, 0, 2*n)
	touched := make([]int32, 0, n)

	workers := runtime.GOMAXPROCS(0)
	if blockWorkersOverride > 0 {
		workers = blockWorkersOverride
	}
	scratches := make([]blockScratch, workers)

	// evalGroup walks one row group, evaluates the row for all its cohorts
	// in one sweep, and routes the released values back to the asking
	// trials. Cohort order within a group is irrelevant: each cohort's value
	// depends only on (row, seed).
	evalGroup := func(k int32, ws *blockScratch) {
		ci, ri := int(k)/nCkpt, int(k)%nCkpt
		ws.seeds, ws.asks = ws.seeds[:0], ws.asks[:0]
		for a := head[k]; a >= 0; a = nextAsk[a] {
			ws.asks = append(ws.asks, a)
			ws.seeds = append(ws.seeds, asks[a].seed)
		}
		rs := oracle.EvaluateRows(ci, ri, ws.seeds, &ws.ms)
		for j, a := range ws.asks {
			*asks[a].out = rs[j].Observed
		}
	}

	for len(live) > 0 {
		// Group this wave's asks by arena row.
		touched = touched[:0]
		nextAsk = nextAsk[:0]
		for a := range asks {
			k := asks[a].row
			if head[k] < 0 {
				touched = append(touched, k)
			}
			nextAsk = append(nextAsk, head[k])
			head[k] = int32(a)
		}

		// Evaluate each touched row once for all of its cohorts. Groups are
		// independent (disjoint answer slots, read-only bank rows), so they
		// fan out across workers with per-worker scratch.
		if w := min(workers, len(touched)); w > 1 {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for wi := 0; wi < w; wi++ {
				wg.Add(1)
				go func(ws *blockScratch) {
					defer wg.Done()
					for {
						j := cursor.Add(1) - 1
						if j >= int64(len(touched)) {
							return
						}
						evalGroup(touched[j], ws)
					}
				}(&scratches[wi])
			}
			wg.Wait()
		} else {
			for _, k := range touched {
				evalGroup(k, &scratches[0])
			}
		}
		for _, k := range touched {
			head[k] = -1
		}

		// Resume every trial with its answers; survivors form the next wave.
		// New asks land in nextAsks so the grouping above never walks a
		// half-rebuilt slice. Filtering live in place is safe: the write
		// index never passes the read index.
		nextAsks = nextAsks[:0]
		fill = &nextAsks
		nextLive := live[:0]
		for _, i := range live {
			if advance(i, true) {
				nextLive = append(nextLive, i)
			}
		}
		live = nextLive
		asks, nextAsks = nextAsks, asks
		fill = &asks
	}

	// TrialSeconds in blocked mode: trials interleave on one goroutine, so
	// per-trial wall time is not observable; record the batch mean so the
	// histogram's count matches TrialsTotal and its sum stays the batch wall
	// time, like a sequential single-worker run.
	perTrial := time.Since(start).Seconds() / float64(n)
	for i := 0; i < n; i++ {
		m.TrialSeconds.Observe(perTrial)
	}
	return results
}
