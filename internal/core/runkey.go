package core

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"

	"noisyeval/internal/hpo"
)

// runKeyVersion is bumped whenever the run-result encoding or the meaning of
// any hashed field changes, invalidating previously deduplicated runs.
// v2: the bank's in-memory shape moved to the dense ErrMatrix arena, which
// changes BankFingerprint's gob image for identical recorded content.
// v3: ErrMatrix gained a backing-store abstraction and now gob-encodes
// through its canonical arena (GobEncode), so a mapped bank fingerprints
// identically to its heap twin — at the cost of a new gob image.
const runKeyVersion = "runkey-v3"

// RunKey returns the content address of one tuning run: a hex SHA-256 over
// the bank's content address plus everything else that determines the run's
// result (method, noise setting, normalized tuning settings, trial count,
// seed). Tuning from a bank is deterministic in exactly these inputs —
// RunTrials derives every stochastic choice from the seed and the oracle is
// read-only — so equal keys mean identical results, the same discipline
// BankKey applies to banks. noisyevald deduplicates identical POST /v1/runs
// submissions on this key.
func RunKey(bankKey, method string, noise Noise, settings hpo.Settings, trials int, seed uint64) string {
	settings = settings.Normalize()
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", runKeyVersion)
	fmt.Fprintf(h, "bank %s\n", bankKey)
	fmt.Fprintf(h, "method %s\n", method)
	fmt.Fprintf(h, "noise %#v\n", noise)
	fmt.Fprintf(h, "settings %#v\n", settings)
	fmt.Fprintf(h, "trials %d\n", trials)
	fmt.Fprintf(h, "seed %d\n", seed)
	return hex.EncodeToString(h.Sum(nil))
}

// BankFingerprint hashes a bank's in-memory content — the exported fields
// SaveBank persists (the unexported lookup index is derived state). It gives
// external artifacts loaded via LoadBank a content address even though their
// build inputs are unknown, so runs against an installed bank key on what
// the bank actually records rather than on what the suite would have built.
func BankFingerprint(b *Bank) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nbank-content\n", runKeyVersion)
	if err := gob.NewEncoder(h).Encode(b); err != nil {
		// Bank is plain exported slices/scalars; an encode failure is a
		// programming error, never data-dependent.
		panic(fmt.Sprintf("core: bank fingerprint: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}
