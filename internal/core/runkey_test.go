package core

import (
	"testing"

	"noisyeval/internal/hpo"
)

func TestRunKeyDistinguishesEveryInput(t *testing.T) {
	base := func() (string, string, Noise, hpo.Settings, int, uint64) {
		return "bank-a", "rs", Noise{SampleCount: 3}, hpo.Settings{}, 8, 1
	}
	bk, m, n, s, tr, seed := base()
	ref := RunKey(bk, m, n, s, tr, seed)

	if got := RunKey(bk, m, n, s, tr, seed); got != ref {
		t.Fatal("RunKey not deterministic")
	}

	variants := map[string]string{
		"bank":   RunKey("bank-b", m, n, s, tr, seed),
		"method": RunKey(bk, "tpe", n, s, tr, seed),
		"noise":  RunKey(bk, m, Noise{SampleCount: 4}, s, tr, seed),
		"eps":    RunKey(bk, m, Noise{SampleCount: 3, Epsilon: 10}, s, tr, seed),
		"trials": RunKey(bk, m, n, s, 9, seed),
		"seed":   RunKey(bk, m, n, s, tr, 2),
		"budget": RunKey(bk, m, n, hpo.Settings{Budget: hpo.Budget{TotalRounds: 27, MaxPerConfig: 9, K: 3}}, tr, seed),
	}
	seen := map[string]string{ref: "base"}
	for label, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("variant %q collides with %q", label, prev)
		}
		seen[key] = label
	}
}

func TestRunKeyNormalizesSettings(t *testing.T) {
	// The zero settings and the explicitly-defaulted settings describe the
	// same run, so they must hash identically.
	a := RunKey("bank", "rs", Noise{}, hpo.Settings{}, 4, 1)
	b := RunKey("bank", "rs", Noise{}, hpo.DefaultSettings(), 4, 1)
	if a != b {
		t.Fatal("zero settings and DefaultSettings produced different run keys")
	}
}
