package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// blockedTestNoises covers every evaluation-noise family the paper studies:
// full-pool weighted, client subsampling, systems-heterogeneity bias,
// forced-uniform aggregation, and DP releases.
func blockedTestNoises() map[string]Noise {
	return map[string]Noise{
		"full":    {},
		"sampled": {SampleCount: 5},
		"biased":  {SampleCount: 5, Bias: 1},
		"uniform": {SampleCount: 5, Uniform: true},
		"dp":      {SampleCount: 5, Epsilon: 2},
	}
}

func blockedTestSettings(n Noise) hpo.Settings {
	return n.Settings(hpo.Settings{
		Budget:   hpo.Budget{TotalRounds: 8 * 27, MaxPerConfig: 27, K: 8},
		Eta:      3,
		Brackets: 3,
	})
}

// TestRunTrialsBlockedMatchesSequential is the scheduler's central contract:
// for every registered tuning method and every noise family, the block
// scheduler produces results bit-identical to the legacy
// goroutine-per-trial path — same histories, same recommendations, same
// final true errors, observation for observation.
func TestRunTrialsBlockedMatchesSequential(t *testing.T) {
	b, _ := tinyBank(t)
	for _, name := range hpo.Methods() {
		m, err := hpo.MethodByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for noiseName, noise := range blockedTestNoises() {
			t.Run(name+"/"+noiseName, func(t *testing.T) {
				o, err := NewBankOracle(b, 0, noise.Scheme(), 77)
				if err != nil {
					t.Fatal(err)
				}
				tn := Tuner{Method: m, Space: hpo.DefaultSpace(), Settings: blockedTestSettings(noise)}

				seq := tn
				seq.SequentialTrials = true
				want := seq.RunTrials(o, 6, rng.New(5).Split("parity"))
				got := tn.RunTrials(o, 6, rng.New(5).Split("parity"))

				if !reflect.DeepEqual(want, got) {
					for i := range want {
						if !reflect.DeepEqual(want[i], got[i]) {
							t.Fatalf("trial %d diverges: sequential %d obs final %v, blocked %d obs final %v",
								i, len(want[i].History.Observations), want[i].FinalTrue,
								len(got[i].History.Observations), got[i].FinalTrue)
						}
					}
					t.Fatal("results diverge")
				}
			})
		}
	}
}

// TestSchedulerBlockedRace drives the block scheduler's row-group fan-out at
// 64 workers (far above this machine's GOMAXPROCS) under the race detector —
// the name matches the `make race` run filter — and re-checks parity so a
// data race cannot hide behind a lucky schedule.
func TestSchedulerBlockedRace(t *testing.T) {
	b, _ := tinyBank(t)
	noise := Noise{SampleCount: 5, Bias: 1}
	o, err := NewBankOracle(b, 0, noise.Scheme(), 3)
	if err != nil {
		t.Fatal(err)
	}
	tn := Tuner{Method: hpo.RandomSearch{}, Space: hpo.DefaultSpace(), Settings: blockedTestSettings(noise)}

	prev := blockWorkersOverride
	blockWorkersOverride = 64
	defer func() { blockWorkersOverride = prev }()
	got := tn.RunTrials(o, 32, rng.New(11).Split("race"))
	blockWorkersOverride = prev

	seq := tn
	seq.SequentialTrials = true
	want := seq.RunTrials(o, 32, rng.New(11).Split("race"))
	if !reflect.DeepEqual(want, got) {
		t.Fatal("64-worker blocked run diverges from sequential")
	}
}

// TestRunTrialsBlockedProgressOrdering pins the progress contract on the
// blocked path: onTrial fires exactly once per trial with completed counting
// 1..n, callbacks are serialized (no overlap observable), and the callback
// sees the same result the returned slice carries.
func TestRunTrialsBlockedProgressOrdering(t *testing.T) {
	b, _ := tinyBank(t)
	o, err := NewBankOracle(b, 0, Noise{SampleCount: 4}.Scheme(), 21)
	if err != nil {
		t.Fatal(err)
	}
	tn := Tuner{Method: hpo.SuccessiveHalving{N: 6, R0: 3}, Space: hpo.DefaultSpace(), Settings: blockedTestSettings(Noise{})}

	const n = 8
	var mu sync.Mutex
	calls := 0
	seen := make(map[int]TrialResult, n)
	results := tn.RunTrialsProgress(o, n, rng.New(9).Split("progress"), func(res TrialResult, completed int) {
		if !mu.TryLock() {
			t.Error("progress callbacks overlap")
			return
		}
		defer mu.Unlock()
		calls++
		if completed != calls {
			t.Errorf("callback %d reported completed=%d", calls, completed)
		}
		if _, dup := seen[res.Trial]; dup {
			t.Errorf("trial %d reported twice", res.Trial)
		}
		seen[res.Trial] = res
	})
	if calls != n {
		t.Fatalf("onTrial fired %d times, want %d", calls, n)
	}
	for _, res := range results {
		if !reflect.DeepEqual(seen[res.Trial], res) {
			t.Fatalf("callback result for trial %d differs from returned result", res.Trial)
		}
	}
}

// TestWithTrialSaltMatchesLegacy pins the interned per-trial salt byte-equal
// to the historical fmt.Sprintf derivation: the salt feeds the FNV evaluation
// seed, so a single changed byte resamples every recorded cohort.
func TestWithTrialSaltMatchesLegacy(t *testing.T) {
	b, _ := tinyBank(t)
	o, err := NewBankOracle(b, 0, Noise{SampleCount: 3}.Scheme(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, trial := range []int{0, 1, 9, 63, 64, 100, 4097} {
		want := fmt.Sprintf("trial-%d", trial)
		if got := o.WithTrial(trial).trialSalt; got != want {
			t.Fatalf("WithTrial(%d) salt = %q, want %q", trial, got, want)
		}
	}
}
