package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"noisyeval/internal/data"
	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

// The constants below were recorded by running the pre-refactor per-sample
// training engine (the seed code path, before the batched engine landed) on
// the exact populations and options constructed in the tests. They pin the
// BatchEval=false contract: the per-sample engine — including the in-place
// optimizer steps, reused SGD state, and allocation-free RNG splits that
// replaced its internals — must keep producing byte-identical banks, or
// every previously cached artifact silently loses its meaning.
const (
	goldenImageBankHash = "34a46f7f94b37931d5f4d08a3ca9fe4dfb974c6b5a382c8abacf394e6140f333"
	goldenTextBankHash  = "00cb380e80f40ced97ac9a37d84e857dbe6140e1f95cae9073c3d85d541b1b0c"
	goldenTrainerHash   = "903447d28d0ae7adb2b04af6cdc04ca0e1bdc250064c04ab375cd1beee4b8989"
)

func hashFloats(h interface{ Write([]byte) (int, error) }, xs []float64) {
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
}

// hashBankContent hashes every numeric field of the bank in a fixed order.
func hashBankContent(b *Bank) string {
	h := sha256.New()
	var buf [8]byte
	wi := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	for _, c := range b.Configs {
		hashFloats(h, []float64{c.ServerLR, c.Beta1, c.Beta2, c.LRDecay, c.ClientLR, c.ClientMomentum, c.WeightDecay})
		wi(c.BatchSize)
		wi(c.Epochs)
	}
	for _, r := range b.Rounds {
		wi(r)
	}
	hashFloats(h, b.Partitions)
	// The arena is row-major [partition][config][checkpoint][client] — the
	// exact order the pre-arena nested loops hashed — so the golden
	// constants recorded against [][][][]float64 banks still apply.
	// Arena() (not Data) so segment-backed mapped banks hash identically
	// to their heap twins.
	hashFloats(h, b.Errs.Arena())
	for _, d := range b.Diverged {
		if d {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func goldenImagePop(t testing.TB) *data.Population {
	t.Helper()
	spec := data.CIFAR10Like().Scaled(0.06, 0)
	spec.MeanExamples, spec.MinExamples, spec.MaxExamples = 20, 15, 25
	pop, err := data.Generate(spec, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// TestPerSampleBankBitIdentical is the end-to-end byte-identity test: a
// BatchEval=false bank build must reproduce the pre-refactor seed path's
// recorded errors bit for bit, on both task families.
func TestPerSampleBankBitIdentical(t *testing.T) {
	opts := DefaultBuildOptions()
	opts.NumConfigs = 3
	opts.MaxRounds = 9
	opts.Partitions = []float64{0.5}
	opts.BatchEval = false
	b, err := BuildBank(goldenImagePop(t), opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashBankContent(b); got != goldenImageBankHash {
		t.Errorf("image bank content drifted from the pre-refactor engine:\n got %s\nwant %s", got, goldenImageBankHash)
	}

	txt := data.StackOverflowLike().Scaled(0.004, 30)
	popT, err := data.Generate(txt, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	optsT := DefaultBuildOptions()
	optsT.NumConfigs = 2
	optsT.MaxRounds = 9
	optsT.BatchEval = false
	bT, err := BuildBank(popT, optsT, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashBankContent(bT); got != goldenTextBankHash {
		t.Errorf("text bank content drifted from the pre-refactor engine:\n got %s\nwant %s", got, goldenTextBankHash)
	}
}

// TestPerSampleTrainerBitIdentical pins the trainer weights themselves (a
// sharper check than recorded error rates, which could mask compensating
// drift).
func TestPerSampleTrainerBitIdentical(t *testing.T) {
	hp := fl.HParams{ServerLR: 0.01, Beta1: 0.9, Beta2: 0.99, ClientLR: 0.1, ClientMomentum: 0.5, BatchSize: 8}
	opts := fl.DefaultOptions()
	opts.BatchEval = false
	tr, err := fl.NewTrainer(goldenImagePop(t), hp, opts, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainTo(5)
	h := sha256.New()
	hashFloats(h, tr.Weights())
	if got := fmt.Sprintf("%x", h.Sum(nil)); got != goldenTrainerHash {
		t.Errorf("per-sample trainer weights drifted from the pre-refactor engine:\n got %s\nwant %s", got, goldenTrainerHash)
	}
}

// TestBatchEvalChangesCacheKey verifies the knob participates in the bank
// content address (batched numerics must never be served for a per-sample
// request or vice versa), while Workers stays excluded.
func TestBatchEvalChangesCacheKey(t *testing.T) {
	spec := data.CIFAR10Like()
	a := DefaultBuildOptions()
	b := DefaultBuildOptions()
	b.BatchEval = false
	if BankKey(spec, a, 1) == BankKey(spec, b, 1) {
		t.Error("BatchEval flip did not change the bank key")
	}
	c := DefaultBuildOptions()
	c.Workers = 7
	if BankKey(spec, a, 1) != BankKey(spec, c, 1) {
		t.Error("Workers changed the bank key; parallelism must not affect content addressing")
	}
}

// TestBatchedBankDeterministicAcrossWorkers verifies the batched engine
// keeps BuildBank deterministic in (pop, opts, seed) and independent of the
// worker count.
func TestBatchedBankDeterministicAcrossWorkers(t *testing.T) {
	pop := goldenImagePop(t)
	opts := DefaultBuildOptions()
	opts.NumConfigs = 3
	opts.MaxRounds = 9
	build := func(workers int) string {
		o := opts
		o.Workers = workers
		b, err := BuildBank(pop, o, 5)
		if err != nil {
			t.Fatal(err)
		}
		return hashBankContent(b)
	}
	h1, h4 := build(1), build(4)
	if h1 != h4 {
		t.Errorf("batched bank content differs across worker counts: %s vs %s", h1, h4)
	}
	if h1 != build(1) {
		t.Error("batched bank build is not deterministic for a fixed worker count")
	}
}
