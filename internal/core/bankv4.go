package core

// bankfmt/v4: the segmented bank container behind memory-mapped serving and
// incremental growth. Where bankfmt/v3 (bankfmt.go) renders one monolithic
// compressed frame that must be fully decoded onto the heap, v4 stores the
// bank as CRC-framed, 64-byte-aligned segments (internal/core/bankseg):
//
//	file header (64 B, magic "NEBANK", version 4)
//	arena segment    configs [lo,hi): raw little-endian float64s laid out
//	                 [partition][config-lo][checkpoint][client] (BankShard
//	                 order — for the full range this IS the canonical arena)
//	commit segment   segment directory + bank metadata (bankfmt/v3's meta
//	                 encoding, reused verbatim)
//
// The commit segment is written last and names, by sequence number, exactly
// the arena segments that constitute the bank — so growth appends arenas
// then one new commit, and a crash anywhere in between leaves the previous
// commit as the authoritative state (OpenAppend truncates the debris).
// Because arena payloads are raw aligned LE float64s, a v4 file opens via
// mmap and serves oracle reads zero-copy; open cost is O(segment count),
// not O(file size), since mapped opens verify only the header chain.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"slices"

	"noisyeval/internal/core/bankseg"
)

// v4 segment kinds.
const (
	segKindCommit = 1 // segment directory + bank metadata; the commit point
	segKindArena  = 2 // error sub-arena for configs [lo, hi)
)

// CorruptError locates bank-content corruption: which section (v3) or
// segment (v4) of the file failed, and at what byte offset. The BankStore
// counts these under StoreStats.CorruptSegment; cmd/bank -info prints them.
type CorruptError struct {
	Path    string // file path when known
	Section string // "header" | "metadata" | "bulk" (v3) | "segment" (v4)
	Segment int    // v4 segment index; -1 for v3 sections
	Offset  int64  // byte offset of the failing section/segment start
	Err     error
}

func (e *CorruptError) Error() string {
	loc := e.Section
	if e.Section == "segment" {
		loc = fmt.Sprintf("segment %d", e.Segment)
	}
	if e.Path != "" {
		return fmt.Sprintf("core: corrupt bank %s: %s at offset %d: %v", e.Path, loc, e.Offset, e.Err)
	}
	return fmt.Sprintf("core: corrupt bank: %s at offset %d: %v", loc, e.Offset, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// wrapSegmentErr lifts a bankseg structural failure into the coded
// CorruptError callers branch on; other errors pass through.
func wrapSegmentErr(path string, err error) error {
	var se *bankseg.CorruptError
	if errors.As(err, &se) {
		return &CorruptError{Path: path, Section: "segment", Segment: se.Segment, Offset: se.Offset, Err: err}
	}
	return err
}

// v4Corrupt builds a coded corruption error for one v4 segment.
func v4Corrupt(path string, segment int, offset int64, format string, args ...any) *CorruptError {
	return &CorruptError{
		Path: path, Section: "segment", Segment: segment, Offset: offset,
		Err: fmt.Errorf(format, args...),
	}
}

// arenaTag packs an arena segment's config range into its 16-byte tag.
func arenaTag(lo, hi int) (t [16]byte) {
	t[0], t[1], t[2], t[3] = byte(lo), byte(lo>>8), byte(lo>>16), byte(lo>>24)
	t[4], t[5], t[6], t[7] = byte(hi), byte(hi>>8), byte(hi>>16), byte(hi>>24)
	return t
}

func arenaTagRange(t [16]byte) (lo, hi int) {
	lo = int(uint32(t[0]) | uint32(t[1])<<8 | uint32(t[2])<<16 | uint32(t[3])<<24)
	hi = int(uint32(t[4]) | uint32(t[5])<<8 | uint32(t[6])<<16 | uint32(t[7])<<24)
	return lo, hi
}

// v4DirEntry names one arena segment of a committed bank: its sequence
// number and the config range it covers.
type v4DirEntry struct {
	seq    uint64
	lo, hi int
}

// appendV4Commit renders a commit segment payload: the arena directory
// followed by the bank's metadata in the v3 meta encoding.
func appendV4Commit(buf []byte, dir []v4DirEntry, b *Bank) []byte {
	buf = appendU32(buf, uint32(len(dir)))
	for _, e := range dir {
		buf = appendU64(buf, e.seq)
		buf = appendU32(buf, uint32(e.lo))
		buf = appendU32(buf, uint32(e.hi))
	}
	return appendBankMeta(buf, b)
}

func parseV4Commit(payload []byte) ([]v4DirEntry, *Bank, error) {
	r := &metaReader{b: payload}
	n := r.count(16, "segment directory")
	dir := make([]v4DirEntry, n)
	for i := range dir {
		dir[i] = v4DirEntry{
			seq: r.u64("directory seq"),
			lo:  int(r.u32("directory lo")),
			hi:  int(r.u32("directory hi")),
		}
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	b, err := parseBankMeta(payload[r.off:])
	if err != nil {
		return nil, nil, err
	}
	return dir, b, nil
}

// SaveBankV4 writes the bank to path in bankfmt/v4: one full-range arena
// segment plus one commit segment, built behind a temp file and published
// with fsync + atomic rename (the same discipline as SaveBank). The write
// is deterministic — equal bank content yields equal file bytes.
func SaveBankV4(b *Bank, path string) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("core: refusing to save invalid bank: %w", err)
	}
	w, err := bankseg.Create(path)
	if err != nil {
		return fmt.Errorf("core: save bank v4: %w", err)
	}
	n := len(b.Configs)
	arenaSeq, err := w.Append(segKindArena, arenaTag(0, n), bankseg.AppendFloat64s(nil, b.Errs.Arena()))
	if err == nil {
		_, err = w.Append(segKindCommit, [16]byte{}, appendV4Commit(nil, []v4DirEntry{{seq: arenaSeq, lo: 0, hi: n}}, b))
	}
	if err != nil {
		w.Abort()
		return fmt.Errorf("core: save bank v4: %w", err)
	}
	if err := w.Commit(); err != nil {
		return fmt.Errorf("core: save bank v4: %w", err)
	}
	return nil
}

// assembleBankV4 turns a parsed segment container into a Bank. The bank is
// defined by the LAST intact commit segment — anything after it is crash
// debris from an interrupted grow and is ignored. verifyPayloads selects the
// heap-load contract (every payload checksummed; open cost O(file size));
// mapped opens pass false so open cost stays O(segment count). zeroCopy
// backs the matrix with payload views (the caller must then keep f open);
// otherwise float data is copied onto the heap and canonicalized. The
// returned refs reports whether the bank references f's image.
func assembleBankV4(f *bankseg.File, verifyPayloads, zeroCopy bool) (b *Bank, refs bool, err error) {
	path := f.Path()
	segs := f.Segments()
	limit := len(segs)
	if verifyPayloads {
		// A payload CRC failure bounds the intact prefix exactly like a
		// structural failure: nothing at or after it can be trusted.
		for i := range segs {
			if segs[i].VerifyPayload() != nil {
				limit = i
				break
			}
		}
	}
	commitIdx := -1
	for i := limit - 1; i >= 0; i-- {
		if segs[i].Kind == segKindCommit {
			commitIdx = i
			break
		}
	}
	if commitIdx < 0 {
		if torn := f.Torn(); torn != nil && limit == len(segs) {
			return nil, false, wrapSegmentErr(path, torn)
		}
		if limit < len(segs) {
			return nil, false, v4Corrupt(path, limit, segs[limit].Offset, "payload CRC mismatch and no earlier commit segment")
		}
		return nil, false, v4Corrupt(path, 0, bankseg.FileHeaderLen, "no intact commit segment")
	}
	commit := &segs[commitIdx]
	if !verifyPayloads {
		// Even a mapped open must not trust an unchecksummed commit payload:
		// it is one small segment, so verifying it keeps open cost O(header).
		if commit.VerifyPayload() != nil {
			return nil, false, v4Corrupt(path, commitIdx, commit.Offset, "commit segment payload CRC mismatch")
		}
	}
	dir, bank, err := parseV4Commit(commit.Payload)
	if err != nil {
		return nil, false, v4Corrupt(path, commitIdx, commit.Offset, "commit segment: %w", err)
	}
	clients := 0
	if len(bank.ExampleCounts) > 0 {
		clients = len(bank.ExampleCounts[0])
	}
	parts, nConfigs, ckpts := len(bank.Partitions), len(bank.Configs), len(bank.Rounds)
	if _, err := dimsProduct(parts, nConfigs, ckpts, clients); err != nil {
		return nil, false, v4Corrupt(path, commitIdx, commit.Offset, "%w", err)
	}

	bySeq := make(map[uint64]*bankseg.Segment, commitIdx)
	for i := 0; i < commitIdx; i++ {
		bySeq[segs[i].Seq] = &segs[i]
	}
	msegs := make([]errSeg, 0, len(dir))
	for _, e := range dir {
		s := bySeq[e.seq]
		if s == nil || s.Kind != segKindArena {
			return nil, false, v4Corrupt(path, commitIdx, commit.Offset, "directory names missing arena segment seq %d", e.seq)
		}
		if lo, hi := arenaTagRange(s.Tag); lo != e.lo || hi != e.hi {
			return nil, false, v4Corrupt(path, commitIdx, s.Offset, "arena segment seq %d tagged [%d,%d), directory says [%d,%d)", e.seq, lo, hi, e.lo, e.hi)
		}
		if e.lo < 0 || e.hi > nConfigs || e.lo >= e.hi {
			return nil, false, v4Corrupt(path, commitIdx, s.Offset, "arena range [%d,%d) invalid for %d configs", e.lo, e.hi, nConfigs)
		}
		wantFloats := parts * (e.hi - e.lo) * ckpts * clients
		if len(s.Payload) != wantFloats*8 {
			return nil, false, v4Corrupt(path, commitIdx, s.Offset, "arena segment seq %d has %d payload bytes, want %d", e.seq, len(s.Payload), wantFloats*8)
		}
		var data []float64
		if zeroCopy {
			if v, ok := bankseg.Float64s(s.Payload); ok {
				data, refs = v, true
			}
		}
		if data == nil {
			data = bankseg.CopyFloat64s(s.Payload)
		}
		msegs = append(msegs, errSeg{lo: e.lo, hi: e.hi, data: data})
	}
	slices.SortFunc(msegs, func(a, b errSeg) int { return a.lo - b.lo })

	switch {
	case len(msegs) == 1 && msegs[0].lo == 0 && msegs[0].hi == nConfigs:
		// Full-range shard order equals canonical arena order: serve it as a
		// plain heap-shaped matrix (Data set) whether mapped or copied.
		bank.Errs = ErrMatrix{Parts: parts, Configs: nConfigs, Checkpoints: ckpts, Clients: clients, Data: msegs[0].data}
	case !refs:
		// Heap loads canonicalize multi-segment banks into one arena so
		// every existing Data-facing code path sees the v3 shape.
		m := newSegmentedMatrix(parts, nConfigs, ckpts, clients, msegs)
		if err := m.Validate(); err != nil {
			return nil, false, v4Corrupt(path, commitIdx, commit.Offset, "%w", err)
		}
		bank.Errs = ErrMatrix{Parts: parts, Configs: nConfigs, Checkpoints: ckpts, Clients: clients, Data: m.Arena()}
	default:
		bank.Errs = newSegmentedMatrix(parts, nConfigs, ckpts, clients, msegs)
	}
	if err := bank.Validate(); err != nil {
		return nil, false, v4Corrupt(path, commitIdx, commit.Offset, "%w", err)
	}
	bank.buildIndex()
	return bank, refs, nil
}

// nopCloser is the Closer OpenBankMapped returns when the bank holds no
// reference to a mapping (v3 fallback, heap fallback, copied floats).
type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// OpenBankMapped opens a bank file for zero-copy serving: a bankfmt/v4 file
// is mmap'd and its error matrix backed directly by the mapped arena
// segments, so open cost is O(segment count) regardless of bank size. The
// returned Closer owns the mapping — Close only after every reader of the
// bank is done; oracle reads through a closed mapping fault. Non-v4 files
// and platforms without mmap degrade to a heap load with a no-op Closer, so
// call sites need no platform branches.
func OpenBankMapped(path string) (*Bank, io.Closer, error) {
	return openBankMapped(path, false)
}

// OpenBankMappedWarm is OpenBankMapped with the mapping pre-touched
// (bankseg.File.Warm: madvise WILLNEED + one read per page) before the bank
// is returned, so the first row sweep pays no major faults. The trade is
// open latency proportional to file size — daemons opt in with -mmap-warm.
// Each warmed mapping increments bank_mapped_warm_total.
func OpenBankMappedWarm(path string) (*Bank, io.Closer, error) {
	return openBankMapped(path, true)
}

func openBankMapped(path string, warm bool) (*Bank, io.Closer, error) {
	f, err := bankseg.Open(path)
	if errors.Is(err, bankseg.ErrNotSegmented) {
		b, err := LoadBank(path)
		if err != nil {
			return nil, nil, err
		}
		return b, nopCloser{}, nil
	}
	if err != nil {
		return nil, nil, wrapSegmentErr(path, err)
	}
	b, refs, err := assembleBankV4(f, !f.Mapped(), f.Mapped())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if !refs {
		f.Close()
		return b, nopCloser{}, nil
	}
	if warm && f.Warm() > 0 {
		metricsInstruments().MappedWarmTotal.Inc()
	}
	return b, f, nil
}

// Extend returns a new bank covering the plan's full config pool, of which
// this bank must be the prefix: the plan's pool begins with the bank's
// configs, and shards cover exactly the new range [len(b.Configs),
// plan.NumConfigs()). Because per-config training streams derive from
// (seed, "config-i") alone, the result is byte-identical to a cold build
// over the union pool with the same seed — pinned by TestGrownBankMatchesColdBuild.
// The receiver is unchanged (in-flight readers keep a consistent view).
func (b *Bank) Extend(p *BuildPlan, shards []*BankShard) (*Bank, error) {
	n := len(b.Configs)
	if p.NumConfigs() <= n {
		return nil, fmt.Errorf("core: extend: plan has %d configs, bank already has %d", p.NumConfigs(), n)
	}
	if b.SpecName != p.pop.Spec.Name || b.Seed != p.seed {
		return nil, fmt.Errorf("core: extend: plan (%s, seed %d) does not match bank (%s, seed %d)",
			p.pop.Spec.Name, p.seed, b.SpecName, b.Seed)
	}
	for i := 0; i < n; i++ {
		if p.configs[i] != b.Configs[i] {
			return nil, fmt.Errorf("core: extend: plan pool diverges from bank pool at config %d", i)
		}
	}
	if !slices.Equal(p.rounds, b.Rounds) || !slices.Equal(p.parts, b.Partitions) {
		return nil, fmt.Errorf("core: extend: plan checkpoint/partition grid does not match bank")
	}
	for pi, row := range p.counts {
		if pi >= len(b.ExampleCounts) || !slices.Equal(row, b.ExampleCounts[pi]) {
			return nil, fmt.Errorf("core: extend: plan evaluation pools do not match bank (partition %d)", pi)
		}
	}
	prefix := &BankShard{
		Lo: 0, Hi: n,
		Errs: ErrMatrix{
			Parts: b.Errs.Parts, Configs: n, Checkpoints: b.Errs.Checkpoints, Clients: b.Errs.Clients,
			Data: b.Errs.Arena(),
		},
		Diverged: b.Diverged,
	}
	return AssembleBank(p, append([]*BankShard{prefix}, shards...))
}

// extendAbortStage, when non-empty, makes ExtendBankV4 abandon the file
// right after the named append stage without syncing — simulating a crash
// mid-grow. Stages: "arena" (after arena segments, before the commit),
// "commit" (after the commit segment, before fsync). Always empty outside
// tests.
var extendAbortStage string

// ExtendBankV4 grows a v4 bank file in place: it loads the current bank,
// assembles the grown bank in memory (Extend), then appends one arena
// segment per shard followed by a new commit segment naming the union, with
// an fsync between data and commit so the commit is never durable ahead of
// its arenas. Opening for append first truncates any crash debris past the
// last intact commit, so a retried grow after a crash converges to the same
// file bytes. Returns the grown bank.
func ExtendBankV4(path string, p *BuildPlan, shards []*BankShard) (*Bank, error) {
	pf, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: extend bank: %w", err)
	}
	var prefix [8]byte
	pn, _ := io.ReadFull(pf, prefix[:])
	pf.Close()
	if !bankseg.SniffV4(prefix[:pn]) {
		return nil, fmt.Errorf("core: extend bank %s: %w (rewrite it with SaveBankV4 first)", path, bankseg.ErrNotSegmented)
	}
	old, err := LoadBank(path)
	if err != nil {
		return nil, fmt.Errorf("core: extend bank: %w", err)
	}
	grown, err := old.Extend(p, shards)
	if err != nil {
		return nil, err
	}
	w, kept, err := bankseg.OpenAppend(path, func(s *bankseg.Segment) bool { return s.Kind == segKindCommit })
	if err != nil {
		return nil, wrapSegmentErr(path, err)
	}
	// The surviving commit's directory seeds the union directory.
	dir, _, err := parseV4Commit(kept[len(kept)-1].Payload)
	if err != nil {
		w.Abort()
		return nil, v4Corrupt(path, len(kept)-1, kept[len(kept)-1].Offset, "commit segment: %w", err)
	}
	sorted := append([]*BankShard(nil), shards...)
	slices.SortFunc(sorted, func(a, b *BankShard) int { return a.Lo - b.Lo })
	for _, sh := range sorted {
		seq, err := w.Append(segKindArena, arenaTag(sh.Lo, sh.Hi), bankseg.AppendFloat64s(nil, sh.Errs.Data))
		if err != nil {
			w.Abort()
			return nil, fmt.Errorf("core: extend bank: %w", err)
		}
		dir = append(dir, v4DirEntry{seq: seq, lo: sh.Lo, hi: sh.Hi})
	}
	if extendAbortStage == "arena" {
		w.Abort()
		return nil, fmt.Errorf("core: extend bank: aborted after arena append (test hook)")
	}
	// Sync the arenas before the commit lands: a commit segment must never
	// become durable while the data it names could still vanish.
	if err := w.Sync(); err != nil {
		w.Abort()
		return nil, fmt.Errorf("core: extend bank: %w", err)
	}
	if _, err := w.Append(segKindCommit, [16]byte{}, appendV4Commit(nil, dir, grown)); err != nil {
		w.Abort()
		return nil, fmt.Errorf("core: extend bank: %w", err)
	}
	if extendAbortStage == "commit" {
		w.Abort()
		return nil, fmt.Errorf("core: extend bank: aborted before commit sync (test hook)")
	}
	if err := w.Commit(); err != nil {
		return nil, fmt.Errorf("core: extend bank: %w", err)
	}
	return grown, nil
}
