package core

import (
	"testing"

	"noisyeval/internal/eval"
)

// TestEvaluateIndexMatchesEvaluate pins the session-API contract: addressing
// a pool config by index produces exactly the by-value Evaluate result for
// the same (trial, evalID), and the reported true error matches TrueError.
func TestEvaluateIndexMatchesEvaluate(t *testing.T) {
	b, _ := tinyBank(t)
	base, err := NewBankOracle(b, 0, eval.Scheme{Count: 4, Weighted: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []*BankOracle{base, base.WithTrial(2)} {
		for ci := range b.Configs {
			for _, rounds := range []int{1, 5, b.MaxRounds()} {
				ev, err := o.EvaluateIndex(ci, rounds, "cohort-a")
				if err != nil {
					t.Fatalf("EvaluateIndex(%d, %d): %v", ci, rounds, err)
				}
				cfg := b.Configs[ci]
				if want := o.Evaluate(cfg, rounds, "cohort-a"); ev.Observed != want {
					t.Fatalf("EvaluateIndex(%d, %d).Observed = %v, Evaluate = %v", ci, rounds, ev.Observed, want)
				}
				if want := o.TrueError(cfg, rounds); ev.True != want {
					t.Fatalf("EvaluateIndex(%d, %d).True = %v, TrueError = %v", ci, rounds, ev.True, want)
				}
				if ev.ConfigIndex != ci {
					t.Fatalf("ConfigIndex = %d, want %d", ev.ConfigIndex, ci)
				}
				if ev.Rounds > rounds && rounds >= b.Rounds[0] {
					t.Fatalf("snapped rounds %d exceeds requested %d", ev.Rounds, rounds)
				}
			}
		}
	}
}

// TestEvaluateIndexSnapsCheckpoints pins the snapping rule: the highest
// recorded checkpoint not exceeding the request (clamped to the first).
func TestEvaluateIndexSnapsCheckpoints(t *testing.T) {
	b, _ := tinyBank(t) // checkpoints 1, 3, 9, 27
	o, err := NewBankOracle(b, 0, eval.Noiseless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int]int{1: 1, 2: 1, 3: 3, 8: 3, 9: 9, 26: 9, 27: 27, 1000: 27}
	for req, want := range cases {
		ev, err := o.EvaluateIndex(0, req, "x")
		if err != nil {
			t.Fatal(err)
		}
		if ev.Rounds != want {
			t.Errorf("rounds %d snapped to %d, want %d", req, ev.Rounds, want)
		}
	}
}

func TestEvaluateIndexRejectsBadInputs(t *testing.T) {
	b, _ := tinyBank(t)
	o, err := NewBankOracle(b, 0, eval.Noiseless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.EvaluateIndex(-1, 9, "x"); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := o.EvaluateIndex(len(b.Configs), 9, "x"); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := o.EvaluateIndex(0, 0, "x"); err == nil {
		t.Error("zero rounds accepted")
	}
}
