package core

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noisyeval/internal/core/bankseg"
	"noisyeval/internal/data"
	"noisyeval/internal/rng"
)

func storeBank(t *testing.T) *Bank {
	t.Helper()
	b, _ := tinyBank(t)
	return b
}

func TestBankKeyStableAndSensitive(t *testing.T) {
	spec := tinySpec()
	opts := tinyBuildOptions()

	base := BankKey(spec, opts, 7)
	if base != BankKey(spec, opts, 7) {
		t.Fatal("key not deterministic")
	}

	// Workers must not affect the key: bank content is independent of
	// build parallelism (TestBuildBankDeterministicAcrossParallelism).
	par := opts
	par.Workers = 8
	if BankKey(spec, par, 7) != base {
		t.Error("worker count changed the key")
	}

	// Normalization must be applied before hashing: the zero Eta defaults
	// to 3, so both spellings name the same bank.
	norm := opts
	norm.Eta = 0
	if opts.Eta == 3 && BankKey(spec, norm, 7) != base {
		t.Error("normalized and explicit defaults hash differently")
	}

	// Every content-bearing input must perturb the key.
	perturbed := map[string]string{}
	seed := BankKey(spec, opts, 8)
	perturbed["seed"] = seed
	oc := opts
	oc.NumConfigs++
	perturbed["numconfigs"] = BankKey(spec, oc, 7)
	or := opts
	or.MaxRounds++
	perturbed["maxrounds"] = BankKey(spec, or, 7)
	op := opts
	op.Partitions = []float64{1}
	perturbed["partitions"] = BankKey(spec, op, 7)
	osp := opts
	osp.Space.ServerLRMax *= 2
	perturbed["space"] = BankKey(spec, osp, 7)
	opool := opts
	opool.Configs = osp.Space.SampleN(3, rng.New(2))
	perturbed["pool"] = BankKey(spec, opool, 7)
	sp := spec
	sp.EvalClients++
	perturbed["spec"] = BankKey(sp, opts, 7)
	for field, key := range perturbed {
		if key == base {
			t.Errorf("changing %s did not change the key", field)
		}
	}
}

func TestBankKeyDistinguishesPopulations(t *testing.T) {
	// Two populations generated from the SAME spec but different seeds hold
	// different client data; their pop-bound keys must differ even though
	// BankKey(spec, opts, seed) is identical.
	spec := tinySpec()
	opts := tinyBuildOptions()
	popA := data.MustGenerate(spec, rng.New(1))
	popB := data.MustGenerate(spec, rng.New(2))
	keyA := BankKeyForPopulation(popA, opts, 7)
	keyB := BankKeyForPopulation(popB, opts, 7)
	if keyA == keyB {
		t.Error("different populations collide on one cache key")
	}
	if keyA != BankKeyForPopulation(popA, opts, 7) {
		t.Error("population key not deterministic")
	}
	// Regenerating the same population yields the same key (content hash,
	// not pointer identity).
	popA2 := data.MustGenerate(spec, rng.New(1))
	if keyA != BankKeyForPopulation(popA2, opts, 7) {
		t.Error("identical population content hashes differently")
	}
}

func TestBankStoreMissThenHit(t *testing.T) {
	b := storeBank(t)
	store, err := NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := BankKey(tinySpec(), tinyBuildOptions(), 7)

	if got, err := store.Get(key); err != nil || got != nil {
		t.Fatalf("empty store Get = %v, %v; want miss", got, err)
	}
	if err := store.Put(key, b); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(key)
	if err != nil || got == nil {
		t.Fatalf("Get after Put = %v, %v", got, err)
	}
	if got.SpecName != b.SpecName || len(got.Configs) != len(b.Configs) {
		t.Error("round-tripped bank differs")
	}
	for i := range b.Errs.Data {
		if got.Errs.Data[i] != b.Errs.Data[i] {
			t.Fatal("round-tripped errors differ")
		}
	}
	st := store.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestBankStoreCorruptEntryEvicted(t *testing.T) {
	b := storeBank(t)
	store, err := NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := BankKey(tinySpec(), tinyBuildOptions(), 7)
	if err := store.Put(key, b); err != nil {
		t.Fatal(err)
	}

	// Truncate the entry: not valid gzip+gob any more.
	if err := os.WriteFile(store.Path(key), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(key)
	if err != nil || got != nil {
		t.Fatalf("corrupt Get = %v, %v; want clean miss", got, err)
	}
	if _, err := os.Stat(store.Path(key)); !os.IsNotExist(err) {
		t.Error("corrupt entry not evicted")
	}
	if st := store.Stats(); st.Evicted != 1 {
		t.Errorf("evicted = %d, want 1", st.Evicted)
	}

	// GetOrBuild recovers by rebuilding and re-storing.
	builds := 0
	got, err = store.GetOrBuild(key, func() (*Bank, error) {
		builds++
		return b, nil
	})
	if err != nil || got == nil || builds != 1 {
		t.Fatalf("rebuild after corruption: bank=%v err=%v builds=%d", got != nil, err, builds)
	}
	if got, err = store.Get(key); err != nil || got == nil {
		t.Fatal("entry not re-stored after rebuild")
	}
}

func TestBankStoreGetOrBuildSingleflight(t *testing.T) {
	b := storeBank(t)
	store, err := NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := BankKey(tinySpec(), tinyBuildOptions(), 7)

	var builds atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := store.GetOrBuild(key, func() (*Bank, error) {
				builds.Add(1)
				<-release // hold the build so the others must coalesce
				return b, nil
			})
			if err != nil || got == nil {
				t.Errorf("GetOrBuild = %v, %v", got != nil, err)
			}
		}()
	}
	// Wait for the builder to enter (it then blocks on release, so every
	// other goroutine either coalesces on it or, arriving after the write,
	// hits disk — neither path builds again).
	for builds.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
	// A later call hits disk without building.
	got, err := store.GetOrBuild(key, func() (*Bank, error) {
		t.Error("unexpected rebuild")
		return nil, nil
	})
	if err != nil || got == nil {
		t.Fatalf("warm GetOrBuild = %v, %v", got != nil, err)
	}
}

func TestBankStorePutIsAtomic(t *testing.T) {
	b := storeBank(t)
	dir := t.TempDir()
	store, err := NewBankStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("k", b); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0] != store.Path("k") {
		t.Errorf("cache dir = %v, want only the final entry", entries)
	}
}

func TestBuildBankCachedHitSkipsTraining(t *testing.T) {
	pop := tinyPopCache
	if pop == nil {
		_, pop = tinyBank(t)
	}
	opts := tinyBuildOptions()
	opts.NumConfigs = 3
	opts.MaxRounds = 3
	store, err := NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	b1, hit1, err := BuildBankCached(context.Background(), store, pop, opts, 11)
	if err != nil || hit1 {
		t.Fatalf("first build: hit=%v err=%v", hit1, err)
	}
	b2, hit2, err := BuildBankCached(context.Background(), store, pop, opts, 11)
	if err != nil || !hit2 {
		t.Fatalf("second build: hit=%v err=%v", hit2, err)
	}
	if len(b1.Configs) != len(b2.Configs) || b1.Seed != b2.Seed {
		t.Error("cached bank differs from built bank")
	}
	// Nil store degrades to a plain build.
	_, hit3, err := BuildBankCached(context.Background(), nil, pop, opts, 11)
	if err != nil || hit3 {
		t.Fatalf("nil store: hit=%v err=%v", hit3, err)
	}
}

func TestBankStoreMappedMode(t *testing.T) {
	b := storeBank(t)
	st, err := NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetMapped(true)

	if err := st.Put("aaaa", b); err != nil {
		t.Fatal(err)
	}
	// Mapped-mode Put writes bankfmt/v4.
	raw, err := os.ReadFile(st.Path("aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	if !bankseg.SniffV4(raw[:8]) {
		t.Fatal("mapped-mode Put did not write a v4 entry")
	}

	got, err := st.Get("aaaa")
	if err != nil || got == nil {
		t.Fatalf("mapped get: %v, %v", got, err)
	}
	if hashBankContent(got) != hashBankContent(b) {
		t.Fatal("mapped entry content differs")
	}
	// The entry is pinned: repeated Gets serve the same bank.
	again, err := st.Get("aaaa")
	if err != nil || again != got {
		t.Fatal("mapped entry not pinned across Gets")
	}

	// A v3 entry degrades to a heap decode transparently.
	if err := SaveBank(b, st.Path("bbbb")); err != nil {
		t.Fatal(err)
	}
	v3got, err := st.Get("bbbb")
	if err != nil || v3got == nil || hashBankContent(v3got) != hashBankContent(b) {
		t.Fatalf("v3 entry under mapped mode: %v, %v", v3got, err)
	}

	// Prune never unlinks mapped entries, however tight the bound; the
	// cold (never-opened) entry goes first.
	if err := SaveBank(b, st.Path("cold")); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	os.Chtimes(st.Path("cold"), old, old)
	if _, _, err := st.Prune(1); err != nil {
		t.Fatal(err)
	}
	if st.Has("cold") {
		t.Fatal("prune spared the unpinned cold entry")
	}
	if !st.Has("aaaa") || !st.Has("bbbb") {
		t.Fatal("prune unlinked a mapped (pinned) entry")
	}

	// The mapped bank stays readable after pruning around it.
	if hashBankContent(got) != hashBankContent(b) {
		t.Fatal("mapped bank content changed after prune")
	}
}

func TestBankStoreCorruptSegmentCounted(t *testing.T) {
	b := storeBank(t)
	st, err := NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := st.Path("cc")
	if err := SaveBankV4(b, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[bankseg.FileHeaderLen+bankseg.SegmentHeaderLen+8] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("cc")
	if err != nil || got != nil {
		t.Fatalf("corrupt entry must read as a miss: %v, %v", got, err)
	}
	stats := st.Stats()
	if stats.CorruptSegment != 1 {
		t.Errorf("CorruptSegment = %d, want 1", stats.CorruptSegment)
	}
	if stats.Evicted != 1 {
		t.Errorf("Evicted = %d, want 1", stats.Evicted)
	}
	if stats.StaleFormat != 0 {
		t.Errorf("corruption misclassified as stale format")
	}
	if st.Has("cc") {
		t.Error("corrupt entry not evicted")
	}
}

func TestBankStoreAliasResolve(t *testing.T) {
	b := storeBank(t)
	st, err := NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("newkey", b); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteAlias("oldkey", "newkey"); err != nil {
		t.Fatal(err)
	}
	if got := st.Resolve("oldkey"); got != "newkey" {
		t.Fatalf("Resolve(old) = %q", got)
	}
	// A concrete entry resolves to itself even if an alias also exists.
	if err := st.WriteAlias("newkey", "elsewhere"); err != nil {
		t.Fatal(err)
	}
	if got := st.Resolve("newkey"); got != "newkey" {
		t.Fatalf("Resolve(new) = %q", got)
	}
	// Chains follow: older -> oldkey -> newkey.
	if err := st.WriteAlias("older", "oldkey"); err != nil {
		t.Fatal(err)
	}
	if got := st.Resolve("older"); got != "newkey" {
		t.Fatalf("Resolve(older) = %q", got)
	}
	// Unknown keys resolve to themselves.
	if got := st.Resolve("nope"); got != "nope" {
		t.Fatalf("Resolve(nope) = %q", got)
	}
}
