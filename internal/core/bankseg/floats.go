package bankseg

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// nativeLittleEndian reports whether the host's byte order matches the
// on-disk little-endian payload encoding, decided once at init.
var nativeLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// Float64s reinterprets a segment payload as a []float64 view without
// copying. It returns ok=false when the zero-copy cast is unsound — host is
// big-endian, length is not a multiple of 8, or the payload is not 8-byte
// aligned (never the case for aligned segment payloads, but checked anyway).
// Callers fall back to CopyFloat64s.
func Float64s(payload []byte) (vals []float64, ok bool) {
	if !nativeLittleEndian || len(payload)%8 != 0 {
		return nil, false
	}
	if len(payload) == 0 {
		return []float64{}, true
	}
	p := unsafe.Pointer(unsafe.SliceData(payload))
	if uintptr(p)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(p), len(payload)/8), true
}

// CopyFloat64s decodes a little-endian float64 payload into a fresh slice —
// the portable path for big-endian hosts and heap materialization.
func CopyFloat64s(payload []byte) []float64 {
	out := make([]float64, len(payload)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return out
}

// AppendFloat64s encodes vals as the little-endian payload bytes of an
// arena segment. On little-endian hosts this is one reinterpretation and
// copy; elsewhere it encodes element-wise.
func AppendFloat64s(dst []byte, vals []float64) []byte {
	if nativeLittleEndian && len(vals) > 0 {
		raw := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(vals))), len(vals)*8)
		return append(dst, raw...)
	}
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		dst = append(dst, buf[:]...)
	}
	return dst
}
