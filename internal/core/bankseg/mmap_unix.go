//go:build unix

package bankseg

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy open path; on unix it is real mmap(2).
const mmapSupported = true

// mmapFile maps the whole file read-only. MAP_SHARED keeps the pages backed
// by the page cache — many mapped banks share physical memory with each
// other and with any concurrent heap reader of the same file.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) error { return syscall.Munmap(data) }

// advise hints the kernel to read the mapping ahead (madvise WILLNEED), so
// a following pre-touch walk faults pages in batched readahead order rather
// than one synchronous major fault at a time.
func advise(data []byte) error {
	return syscall.Madvise(data, syscall.MADV_WILLNEED)
}
