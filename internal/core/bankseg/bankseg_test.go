package bankseg

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

const kindCommit = 9 // arbitrary commit kind for these tests

func isCommit(s *Segment) bool { return s.Kind == kindCommit }

// writeTestFile creates a committed v4 file with the given payloads; every
// odd segment index gets kindCommit so append tests have commit points.
func writeTestFile(t *testing.T, path string, payloads ...[]byte) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		kind := uint32(1)
		if i%2 == 1 {
			kind = kindCommit
		}
		var tag [16]byte
		tag[0] = byte(i)
		if _, err := w.Append(kind, tag, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.bank")
	payloads := [][]byte{
		bytes.Repeat([]byte{0xAB}, 7),   // forces padding
		bytes.Repeat([]byte{0xCD}, 128), // exactly aligned
		{},                              // empty payload is legal
		bytes.Repeat([]byte{0x01}, 65),
	}
	writeTestFile(t, path, payloads...)

	for _, open := range []struct {
		name string
		fn   func(string) (*File, error)
	}{{"mapped", Open}, {"heap", OpenHeap}} {
		f, err := open.fn(path)
		if err != nil {
			t.Fatalf("%s: %v", open.name, err)
		}
		if f.Torn() != nil {
			t.Fatalf("%s: unexpected torn tail: %v", open.name, f.Torn())
		}
		segs := f.Segments()
		if len(segs) != len(payloads) {
			t.Fatalf("%s: %d segments, want %d", open.name, len(segs), len(payloads))
		}
		for i, s := range segs {
			if !bytes.Equal(s.Payload, payloads[i]) {
				t.Errorf("%s: segment %d payload mismatch", open.name, i)
			}
			if s.Offset%Align != 0 {
				t.Errorf("%s: segment %d header at unaligned offset %d", open.name, i, s.Offset)
			}
			if (s.Offset+SegmentHeaderLen)%Align != 0 {
				t.Errorf("%s: segment %d payload unaligned", open.name, i)
			}
			if s.Seq != uint64(i+1) {
				t.Errorf("%s: segment %d seq = %d", open.name, i, s.Seq)
			}
			if s.Tag[0] != byte(i) {
				t.Errorf("%s: segment %d tag = %d", open.name, i, s.Tag[0])
			}
			if err := s.VerifyPayload(); err != nil {
				t.Errorf("%s: segment %d payload CRC: %v", open.name, i, err)
			}
		}
		f.Close()
	}
}

func TestSniffAndHeaderCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.bank")
	writeTestFile(t, path, []byte("x"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !SniffV4(raw) {
		t.Fatal("fresh file does not sniff as v4")
	}

	// Wrong magic → ErrNotSegmented (a v3 bank, not corruption).
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := Parse(bad); !errors.Is(err, ErrNotSegmented) {
		t.Errorf("bad magic: err = %v, want ErrNotSegmented", err)
	}

	// Damaged reserved header region → CRC mismatch, located at offset 0.
	bad = append([]byte(nil), raw...)
	bad[30] ^= 0xFF
	var ce *CorruptError
	if _, err := Parse(bad); !errors.As(err, &ce) || ce.Offset != 0 {
		t.Errorf("header corruption: err = %v", err)
	}
}

func TestTornTailStopsWalk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.bank")
	writeTestFile(t, path, bytes.Repeat([]byte{1}, 100), bytes.Repeat([]byte{2}, 100))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	seg1 := f.Segments()[1]

	// Truncation anywhere inside segment 1 leaves segment 0 intact and
	// reports the walk as torn at index 1.
	for _, cut := range []int64{seg1.Offset + 1, seg1.Offset + SegmentHeaderLen, seg1.Offset + SegmentHeaderLen + 50} {
		g, err := Parse(raw[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(g.Segments()) != 1 {
			t.Fatalf("cut %d: %d segments survive, want 1", cut, len(g.Segments()))
		}
		torn := g.Torn()
		if torn == nil || torn.Segment != 1 {
			t.Fatalf("cut %d: torn = %v", cut, torn)
		}
	}

	// A flipped bit in segment 1's header stops the walk there too.
	bad := append([]byte(nil), raw...)
	bad[seg1.Offset+10] ^= 1
	g, err := Parse(bad)
	if err != nil || len(g.Segments()) != 1 || g.Torn() == nil {
		t.Fatalf("header flip: segs=%d torn=%v err=%v", len(g.Segments()), g.Torn(), err)
	}

	// Nonzero padding after a payload is misframing.
	bad = append([]byte(nil), raw...)
	pend := f.Segments()[0].Offset + SegmentHeaderLen + 100
	bad[pend] = 0xFF
	g, err = Parse(bad)
	if err != nil || len(g.Segments()) != 0 || g.Torn() == nil {
		t.Fatalf("nonzero padding: segs=%d torn=%v err=%v", len(g.Segments()), g.Torn(), err)
	}
}

func TestDuplicateSequenceRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.bank")
	writeTestFile(t, path, []byte("a"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Replay segment 0's bytes after itself: same seq twice.
	dup := append(append([]byte(nil), raw...), raw[FileHeaderLen:]...)
	f, err := Parse(dup)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Segments()) != 1 || f.Torn() == nil {
		t.Fatalf("duplicate seq: segs=%d torn=%v", len(f.Segments()), f.Torn())
	}
}

func TestOpenAppendTruncatesDebris(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.bank")
	writeTestFile(t, path, []byte("data"), []byte("commit")) // seg 1 is the commit
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Append debris past the commit: a data segment with no commit after it
	// (exactly what a crash between data and commit leaves behind).
	w, kept, err := OpenAppend(path, isCommit)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 || kept[1].Kind != kindCommit {
		t.Fatalf("kept = %d segments", len(kept))
	}
	if _, err := w.Append(1, [16]byte{}, []byte("debris")); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if fi, _ := os.Stat(path); fi.Size() <= int64(len(committed)) {
		t.Fatal("debris did not land on disk")
	}

	// Reopening truncates back to the commit and continues the sequence.
	w, kept, err = OpenAppend(path, isCommit)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Offset(); got != int64(len(committed)) {
		t.Fatalf("append offset = %d, want %d", got, len(committed))
	}
	seq, err := w.Append(kindCommit, [16]byte{}, []byte("next"))
	if err != nil {
		t.Fatal(err)
	}
	if want := kept[1].Seq + 1; seq != want {
		t.Fatalf("next seq = %d, want %d", seq, want)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n := len(f.Segments()); n != 3 {
		t.Fatalf("after retry: %d segments, want 3", n)
	}
	if f.Torn() != nil {
		t.Fatalf("after retry: torn = %v", f.Torn())
	}
}

func TestOpenAppendRequiresCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.bank")
	writeTestFile(t, path, []byte("only-data")) // kind 1, never a commit
	if _, _, err := OpenAppend(path, isCommit); err == nil {
		t.Fatal("OpenAppend succeeded with no commit point")
	}
}

func TestAbortCreateLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.bank")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, [16]byte{}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("abort left %d files behind", len(ents))
	}
}

func TestFloat64sRoundTrip(t *testing.T) {
	want := []float64{0, 1.5, -2.25, 1e308, -1e-300}
	raw := AppendFloat64s(nil, want)
	if len(raw) != len(want)*8 {
		t.Fatalf("encoded %d bytes", len(raw))
	}
	got := CopyFloat64s(raw)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CopyFloat64s[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if zc, ok := Float64s(raw); ok {
		for i := range want {
			if zc[i] != want[i] {
				t.Fatalf("Float64s[%d] = %v, want %v", i, zc[i], want[i])
			}
		}
	}
	// Odd-length payloads can never alias as []float64.
	if _, ok := Float64s(raw[:9]); ok {
		t.Fatal("Float64s accepted a non-multiple-of-8 payload")
	}
}
