// Package bankseg implements the segment layer of bankfmt/v4: an
// append-oriented on-disk container of CRC-framed, 64-byte-aligned segments
// behind a fixed file header. The layer is deliberately bank-agnostic — it
// knows headers, framing, checksums, mmap, append, and torn-tail recovery;
// the bank semantics (which segment kinds exist, what their payloads mean,
// which segment is a commit point) live in internal/core.
//
// Layout (all integers little-endian, CRC-32C/Castagnoli):
//
//	file header   64 B   "NEBANK" magic, version=4, flags, alignment, CRC
//	segment 0     64 B header + payload, zero-padded to a 64 B boundary
//	segment 1     ...
//
// Segment headers carry a strictly increasing sequence number, a kind, a
// 16-byte kind-specific tag, the payload length and CRC, and their own CRC.
// 64-byte alignment of every payload means a raw little-endian float64
// payload can be reinterpreted in place as a []float64 on little-endian
// hosts — the zero-copy mmap serving path.
//
// Durability discipline: fresh files are written to a temp name, fsynced,
// and renamed into place; growth appends in place and fsyncs before
// reporting success. A reader treats everything after the last segment the
// caller recognizes as a commit point as crash debris, and an appending
// writer physically truncates that debris before adding new segments — so a
// crash mid-grow rolls the file back to its last intact commit.
package bankseg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

const (
	// Align is the placement granularity of segment headers and payloads.
	// It is a cache-line (and sufficient float64-alignment) boundary, and is
	// recorded in the file header so future readers can verify it.
	Align = 64
	// FileHeaderLen is the fixed size of the file header.
	FileHeaderLen = 64
	// SegmentHeaderLen is the fixed size of every segment header.
	SegmentHeaderLen = 64
	// Version is the bankfmt generation this layer reads and writes. The
	// magic matches bankfmt/v3 so old decoders fail with their own coded
	// "written by a future version" error instead of a garbage parse.
	Version = 4

	// maxSegmentBytes caps a single segment's payload, bounding allocation
	// from hostile headers (mirrors core's arena cap).
	maxSegmentBytes = 8 << 30
)

var (
	fileMagic  = []byte("NEBANK")
	segMagic   = []byte("SEG1")
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// ErrNotSegmented reports that a file's first bytes are not a bankfmt/v4
// file header (it may be a perfectly valid v3 or legacy bank).
var ErrNotSegmented = errors.New("bankseg: not a bankfmt/v4 segmented bank file")

// SniffV4 reports whether prefix starts with a bankfmt/v4 file header
// (magic + version only; no checksum verification).
func SniffV4(prefix []byte) bool {
	return len(prefix) >= 8 &&
		string(prefix[:6]) == string(fileMagic) &&
		binary.LittleEndian.Uint16(prefix[6:8]) == Version
}

// CorruptError locates a structural failure inside a segmented file: which
// segment index the walk failed on and the file offset of the failing
// header or payload. Callers (BankStore, cmd/bank -info) use it to report
// and count corruption precisely instead of surfacing a bare CRC mismatch.
type CorruptError struct {
	Path    string // file path when known ("" for in-memory parses)
	Segment int    // 0-based index of the segment that failed
	Offset  int64  // file offset of the failing header or payload
	Reason  string // human-readable cause
}

func (e *CorruptError) Error() string {
	where := "segmented bank"
	if e.Path != "" {
		where = e.Path
	}
	return fmt.Sprintf("bankseg: %s: segment %d at offset %d: %s", where, e.Segment, e.Offset, e.Reason)
}

// Segment is one framed unit of a v4 file. Payload is a view into the
// file image (mapped or heap); callers must treat it as read-only.
type Segment struct {
	Kind       uint32
	Seq        uint64
	Tag        [16]byte
	Payload    []byte
	Offset     int64 // file offset of this segment's header
	End        int64 // offset one past the payload padding (next segment start)
	payloadCRC uint32
}

// VerifyPayload checks the payload against its recorded CRC. Mapped opens
// skip this (open cost must stay O(header count)); heap loads and repair
// paths call it per segment.
func (s *Segment) VerifyPayload() error {
	if got := crc32.Checksum(s.Payload, castagnoli); got != s.payloadCRC {
		return &CorruptError{
			Segment: -1, Offset: s.Offset,
			Reason: fmt.Sprintf("payload CRC mismatch (got %08x, want %08x)", got, s.payloadCRC),
		}
	}
	return nil
}

// alignUp rounds n up to the next Align boundary.
func alignUp(n int64) int64 { return (n + Align - 1) &^ (Align - 1) }

// --- file header ---

func encodeFileHeader() []byte {
	h := make([]byte, FileHeaderLen)
	copy(h[0:6], fileMagic)
	binary.LittleEndian.PutUint16(h[6:8], Version)
	binary.LittleEndian.PutUint32(h[8:12], 0) // flags: none defined in v4
	binary.LittleEndian.PutUint32(h[12:16], Align)
	binary.LittleEndian.PutUint32(h[60:64], crc32.Checksum(h[:60], castagnoli))
	return h
}

func parseFileHeader(path string, data []byte) error {
	if len(data) < FileHeaderLen {
		return &CorruptError{Path: path, Segment: -1, Offset: 0, Reason: "file shorter than header"}
	}
	h := data[:FileHeaderLen]
	if !SniffV4(h) {
		return ErrNotSegmented
	}
	if got, want := crc32.Checksum(h[:60], castagnoli), binary.LittleEndian.Uint32(h[60:64]); got != want {
		return &CorruptError{Path: path, Segment: -1, Offset: 0,
			Reason: fmt.Sprintf("file header CRC mismatch (got %08x, want %08x)", got, want)}
	}
	if flags := binary.LittleEndian.Uint32(h[8:12]); flags != 0 {
		return &CorruptError{Path: path, Segment: -1, Offset: 8,
			Reason: fmt.Sprintf("unknown v4 flags %#x", flags)}
	}
	if align := binary.LittleEndian.Uint32(h[12:16]); align != Align {
		return &CorruptError{Path: path, Segment: -1, Offset: 12,
			Reason: fmt.Sprintf("alignment %d, want %d", align, Align)}
	}
	return nil
}

// --- segment header ---

func encodeSegmentHeader(kind uint32, seq uint64, tag [16]byte, payload []byte) []byte {
	h := make([]byte, SegmentHeaderLen)
	copy(h[0:4], segMagic)
	binary.LittleEndian.PutUint32(h[4:8], kind)
	binary.LittleEndian.PutUint64(h[8:16], seq)
	binary.LittleEndian.PutUint64(h[16:24], uint64(len(payload)))
	copy(h[24:40], tag[:])
	binary.LittleEndian.PutUint32(h[40:44], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(h[60:64], crc32.Checksum(h[:60], castagnoli))
	return h
}

// --- reading ---

// File is an opened v4 container: the parsed segment walk over a mapped or
// heap-resident image. Closing a mapped File unmaps it, invalidating every
// Segment.Payload view handed out — the owner must not close while readers
// hold views.
type File struct {
	path   string
	data   []byte
	mapped bool
	segs   []Segment
	torn   *CorruptError // where the walk stopped early, if it did
}

// Open maps path read-only and walks its segment headers (payloads are not
// checksummed — open cost is proportional to the segment count, not the
// file size). On platforms without mmap it falls back to a heap read.
func Open(path string) (*File, error) { return open(path, true) }

// OpenHeap reads path fully onto the heap and walks its segment headers.
// The returned File's payload views are heap-owned and survive Close.
func OpenHeap(path string) (*File, error) { return open(path, false) }

func open(path string, tryMap bool) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size > math.MaxInt {
		return nil, fmt.Errorf("bankseg: %s: file too large (%d bytes)", path, size)
	}
	var data []byte
	mapped := false
	if tryMap && mmapSupported && size >= FileHeaderLen {
		if m, merr := mmapFile(f, size); merr == nil {
			data, mapped = m, true
		}
	}
	if data == nil {
		data, err = io.ReadAll(f)
		if err != nil {
			return nil, fmt.Errorf("bankseg: %s: %w", path, err)
		}
	}
	sf := &File{path: path, data: data, mapped: mapped}
	if err := sf.parse(); err != nil {
		sf.Close()
		return nil, err
	}
	return sf, nil
}

// Parse walks an in-memory v4 image (e.g. bytes received off the wire).
// The returned File is heap-backed; Close is a no-op.
func Parse(data []byte) (*File, error) {
	sf := &File{data: data}
	if err := sf.parse(); err != nil {
		return nil, err
	}
	return sf, nil
}

// parse verifies the file header and walks segment headers until the end of
// file or the first structural failure. A failure after at least the file
// header is recorded as the torn point rather than returned: the caller
// decides whether a torn tail is fatal (no commit point survives) or crash
// debris to ignore/truncate.
func (f *File) parse() error {
	if err := parseFileHeader(f.path, f.data); err != nil {
		return err
	}
	off := int64(FileHeaderLen)
	size := int64(len(f.data))
	var prevSeq uint64
	for off < size {
		idx := len(f.segs)
		fail := func(reason string, at int64) {
			f.torn = &CorruptError{Path: f.path, Segment: idx, Offset: at, Reason: reason}
		}
		if off+SegmentHeaderLen > size {
			fail("truncated segment header", off)
			return nil
		}
		h := f.data[off : off+SegmentHeaderLen]
		if string(h[0:4]) != string(segMagic) {
			fail("bad segment magic", off)
			return nil
		}
		if got, want := crc32.Checksum(h[:60], castagnoli), binary.LittleEndian.Uint32(h[60:64]); got != want {
			fail(fmt.Sprintf("segment header CRC mismatch (got %08x, want %08x)", got, want), off)
			return nil
		}
		seq := binary.LittleEndian.Uint64(h[8:16])
		if seq <= prevSeq {
			fail(fmt.Sprintf("sequence %d not after %d (duplicate or reordered segment)", seq, prevSeq), off)
			return nil
		}
		plen := binary.LittleEndian.Uint64(h[16:24])
		if plen > maxSegmentBytes {
			fail(fmt.Sprintf("payload length %d exceeds cap", plen), off)
			return nil
		}
		pstart := off + SegmentHeaderLen
		pend := pstart + int64(plen)
		if pend > size {
			fail("truncated segment payload", pstart)
			return nil
		}
		s := Segment{
			Kind:       binary.LittleEndian.Uint32(h[4:8]),
			Seq:        seq,
			Payload:    f.data[pstart:pend:pend],
			Offset:     off,
			End:        alignUp(pend),
			payloadCRC: binary.LittleEndian.Uint32(h[40:44]),
		}
		copy(s.Tag[:], h[24:40])
		// Padding between payload end and the next aligned boundary must be
		// zero; nonzero bytes mean an overlapping or misframed write.
		for _, b := range f.data[pend:min(s.End, size)] {
			if b != 0 {
				fail("nonzero padding after payload", pend)
				return nil
			}
		}
		f.segs = append(f.segs, s)
		prevSeq = seq
		off = s.End
	}
	return nil
}

// Segments returns the intact segment walk, in file order.
func (f *File) Segments() []Segment { return f.segs }

// Torn returns where the segment walk stopped early (nil for a clean walk
// to end-of-file). The segments before the torn point are still valid.
func (f *File) Torn() *CorruptError { return f.torn }

// Mapped reports whether the file image is an mmap region (payload views
// are zero-copy file pages) rather than a heap buffer.
func (f *File) Mapped() bool { return f.mapped }

// Size returns the byte length of the file image.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Path returns the file path ("" for Parse'd images).
func (f *File) Path() string { return f.path }

// Warm prepares a mapped file image for latency-sensitive serving: it
// advises the kernel the whole mapping will be needed and then touches one
// byte per page, so first-sweep reads hit resident pages instead of paying
// major faults mid-evaluation. Returns the number of bytes warmed — 0 for
// heap-backed images, which are resident by construction. Warming is purely
// a page-cache hint; the image bytes are unchanged.
func (f *File) Warm() int64 {
	if !f.mapped || len(f.data) == 0 {
		return 0
	}
	_ = advise(f.data) // best-effort: a failed hint only slows the touch walk
	const page = 4096
	var sink byte
	for i := 0; i < len(f.data); i += page {
		sink ^= f.data[i]
	}
	sink ^= f.data[len(f.data)-1]
	warmSink = sink // defeat dead-code elimination of the touch loop
	return int64(len(f.data))
}

// warmSink keeps the Warm page-touch loop observable to the compiler.
var warmSink byte

// Close releases the mapping. For heap-backed files it is a no-op (views
// stay valid under GC). Close is not idempotent-safe against concurrent
// readers of mapped payloads — the owner serializes lifetime.
func (f *File) Close() error {
	if !f.mapped || f.data == nil {
		f.data = nil
		return nil
	}
	data := f.data
	f.data, f.segs, f.mapped = nil, nil, false
	return munmap(data)
}

// --- writing ---

// Writer appends segments to a v4 container. Two construction modes share
// it: Create builds a fresh file behind a temp name (Commit fsyncs and
// renames it into place), OpenAppend extends an existing file in place
// after truncating crash debris (Commit fsyncs).
type Writer struct {
	f       *os.File
	path    string
	tmp     string // non-empty in Create mode until Commit renames
	off     int64
	nextSeq uint64
}

// Create starts a fresh v4 file that will land at path on Commit. The
// in-progress file uses a ".banktmp-" prefixed name so it can never be
// mistaken for a complete store entry.
func Create(path string) (*Writer, error) {
	dir := filepath.Dir(path)
	if dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("bankseg: create %s: %w", path, err)
		}
	}
	f, err := os.CreateTemp(dir, ".banktmp-*")
	if err != nil {
		return nil, fmt.Errorf("bankseg: create %s: %w", path, err)
	}
	w := &Writer{f: f, path: path, tmp: f.Name(), off: FileHeaderLen, nextSeq: 1}
	if _, err := f.Write(encodeFileHeader()); err != nil {
		w.Abort()
		return nil, fmt.Errorf("bankseg: create %s: %w", path, err)
	}
	return w, nil
}

// OpenAppend opens an existing v4 file for growth. It re-verifies every
// segment (headers and payload CRCs), finds the last segment isCommit
// recognizes as a commit point, and physically truncates everything after
// it — crash debris from an interrupted previous append. It returns the
// surviving segments (heap-owned; they outlive the writer) alongside the
// writer, whose next sequence number continues the surviving chain, so a
// retried append after a crash converges to the same bytes.
func OpenAppend(path string, isCommit func(*Segment) bool) (*Writer, []Segment, error) {
	img, err := OpenHeap(path)
	if err != nil {
		return nil, nil, err
	}
	keep := -1
	for i := range img.segs {
		s := &img.segs[i]
		if err := s.VerifyPayload(); err != nil {
			// A payload CRC failure bounds the intact prefix exactly like a
			// header failure: nothing at or after it survives.
			break
		}
		if isCommit(s) {
			keep = i
		}
	}
	if keep < 0 {
		torn := img.torn
		if torn == nil {
			torn = &CorruptError{Path: path, Segment: 0, Offset: FileHeaderLen, Reason: "no intact commit segment"}
		}
		return nil, nil, torn
	}
	kept := img.segs[:keep+1]
	end := kept[keep].End
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("bankseg: append %s: %w", path, err)
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("bankseg: append %s: truncate debris: %w", path, err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("bankseg: append %s: %w", path, err)
	}
	return &Writer{f: f, path: path, off: end, nextSeq: kept[keep].Seq + 1}, kept, nil
}

// Append writes one segment (header, payload, zero padding to the next
// aligned boundary) and returns its sequence number. Nothing is durable
// until Commit.
func (w *Writer) Append(kind uint32, tag [16]byte, payload []byte) (uint64, error) {
	if int64(len(payload)) > maxSegmentBytes {
		return 0, fmt.Errorf("bankseg: segment payload %d bytes exceeds cap", len(payload))
	}
	seq := w.nextSeq
	h := encodeSegmentHeader(kind, seq, tag, payload)
	if _, err := w.f.Write(h); err != nil {
		return 0, fmt.Errorf("bankseg: append segment: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return 0, fmt.Errorf("bankseg: append segment: %w", err)
	}
	end := w.off + SegmentHeaderLen + int64(len(payload))
	if pad := alignUp(end) - end; pad > 0 {
		if _, err := w.f.Write(make([]byte, pad)); err != nil {
			return 0, fmt.Errorf("bankseg: append segment: %w", err)
		}
		end += pad
	}
	w.off = end
	w.nextSeq = seq + 1
	return seq, nil
}

// Offset returns the file offset where the next segment header would land.
func (w *Writer) Offset() int64 { return w.off }

// Sync flushes written segments to stable storage without finishing the
// writer. Growth protocols sync data segments before writing the commit
// segment so the commit can never be durable ahead of its data.
func (w *Writer) Sync() error { return w.f.Sync() }

// Commit makes everything written durable and, in Create mode, atomically
// renames the temp file into place. The writer is spent afterwards.
func (w *Writer) Commit() error {
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return fmt.Errorf("bankseg: commit %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		w.cleanup()
		return fmt.Errorf("bankseg: commit %s: %w", w.path, err)
	}
	w.f = nil
	if w.tmp != "" {
		if err := os.Rename(w.tmp, w.path); err != nil {
			os.Remove(w.tmp)
			return fmt.Errorf("bankseg: commit %s: %w", w.path, err)
		}
		w.tmp = ""
	}
	return nil
}

// Abort discards the writer. In Create mode the temp file is removed; in
// append mode the file keeps whatever was written (un-synced, past the
// last commit — exactly the debris OpenAppend truncates on the next open).
func (w *Writer) Abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.cleanup()
}

func (w *Writer) cleanup() {
	if w.tmp != "" {
		os.Remove(w.tmp)
		w.tmp = ""
	}
}
