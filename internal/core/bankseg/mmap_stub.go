//go:build !unix

package bankseg

import (
	"errors"
	"os"
)

// mmapSupported gates the zero-copy open path; platforms without mmap fall
// back to heap reads (Open degrades to OpenHeap).
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("bankseg: mmap unsupported on this platform")
}

func munmap(data []byte) error { return nil }

func advise(data []byte) error { return nil }
