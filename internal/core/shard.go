package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"noisyeval/internal/data"
	"noisyeval/internal/fl"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// This file splits bank construction into a deterministic skeleton
// (BuildPlan) and range-restricted training (TrainRange → BankShard), so one
// code path serves both the single-process BuildBank and the internal/dist
// coordinator/worker fleet. Determinism rests on the rng package's labelled
// Split: every per-config trainer stream is derived from (seed, "config-i")
// alone, never from execution order, so a worker that trains only configs
// [lo, hi) reproduces exactly the streams a full local build would hand those
// configs. AssembleBank therefore yields a bank byte-identical to BuildBank
// for the same (pop, opts, seed) no matter how the index space was sharded —
// pinned by TestShardedBuildByteIdentical.

// BuildPlan is the precomputed deterministic skeleton of one bank build:
// checkpoint grid, evaluation pools per partition, and the sampled config
// pool. Creating a plan is cheap (no training); it exists so shards and the
// final assembly agree on every build input. Plans are safe for concurrent
// TrainRange calls.
type BuildPlan struct {
	pop     *data.Population
	opts    BuildOptions // normalized; Workers zeroed (content-independent)
	seed    uint64
	rounds  []int
	parts   []float64
	pools   [][]*data.Client
	counts  [][]int
	configs []fl.HParams
	root    *rng.RNG
}

// NewBuildPlan validates the build inputs and derives the skeleton BuildBank
// (local or sharded) trains against.
func NewBuildPlan(pop *data.Population, opts BuildOptions, seed uint64) (*BuildPlan, error) {
	if opts.NumConfigs < 1 {
		return nil, fmt.Errorf("core: NumConfigs %d must be >= 1", opts.NumConfigs)
	}
	if opts.MaxRounds < 1 {
		return nil, fmt.Errorf("core: MaxRounds %d must be >= 1", opts.MaxRounds)
	}
	opts = normalizeBuildOptions(opts)

	root := rng.New(seed)
	p := &BuildPlan{
		pop:    pop,
		opts:   opts,
		seed:   seed,
		rounds: hpo.RungRounds(opts.MaxRounds, opts.Eta, opts.Levels),
		parts:  dedupFloats(append([]float64{0}, opts.Partitions...)),
		root:   root,
	}

	// Evaluation pools: partition 0 is the natural split; others are iid
	// repartitions (sizes preserved). Streams are labelled by the fraction,
	// so every process derives identical pools.
	p.pools = make([][]*data.Client, len(p.parts))
	p.counts = make([][]int, len(p.parts))
	for pi, frac := range p.parts {
		if frac == 0 {
			p.pools[pi] = pop.Val
		} else {
			p.pools[pi] = data.RepartitionIID(pop.Val, frac, root.Splitf("repartition-%.3f", frac))
		}
		p.counts[pi] = exampleCounts(p.pools[pi])
	}

	p.configs = opts.Configs
	if len(p.configs) == 0 {
		p.configs = opts.Space.SampleN(opts.NumConfigs, root.Split("pool"))
	}
	return p, nil
}

// NumConfigs returns the size of the config pool (the shardable dimension).
func (p *BuildPlan) NumConfigs() int { return len(p.configs) }

// BankShard holds the training output for one contiguous config index range
// [Lo, Hi) of a bank build: a dense error tensor over the shard's configs
// (shard-local index) plus divergence flags. Shards are the unit of work the
// dist coordinator leases to workers; because the tensor is arena-backed,
// assembly into the final bank is one bulk copy per partition.
type BankShard struct {
	// Lo and Hi bound the config index range [Lo, Hi).
	Lo, Hi int
	// Errs.Row(pi, ci-Lo, ri) is the per-client error vector of config ci
	// at checkpoint ri under partition pi.
	Errs ErrMatrix
	// Diverged[ci-Lo] reports whether config ci's training hit NaN.
	Diverged []bool
}

// Validate checks the shard's shape against a plan.
func (sh *BankShard) Validate(p *BuildPlan) error {
	if sh.Lo < 0 || sh.Hi > p.NumConfigs() || sh.Lo >= sh.Hi {
		return fmt.Errorf("core: shard range [%d, %d) invalid for %d configs", sh.Lo, sh.Hi, p.NumConfigs())
	}
	n := sh.Hi - sh.Lo
	if len(sh.Diverged) != n {
		return fmt.Errorf("core: shard diverged length %d, want %d", len(sh.Diverged), n)
	}
	if err := sh.Errs.CheckShape(len(p.parts), n, len(p.rounds), len(p.counts[0])); err != nil {
		return fmt.Errorf("core: shard [%d, %d): %w", sh.Lo, sh.Hi, err)
	}
	return nil
}

// TrainRange trains configs [lo, hi) of the plan's pool and records their
// errors at every checkpoint under every partition. workers bounds
// parallelism within the range (0 = GOMAXPROCS); it never affects content.
func (p *BuildPlan) TrainRange(lo, hi, workers int) (*BankShard, error) {
	if lo < 0 || hi > len(p.configs) || lo >= hi {
		return nil, fmt.Errorf("core: train range [%d, %d) invalid for %d configs", lo, hi, len(p.configs))
	}
	n := hi - lo
	sh := &BankShard{
		Lo: lo, Hi: hi,
		Errs:     NewErrMatrix(len(p.parts), n, len(p.rounds), len(p.counts[0])),
		Diverged: make([]bool, n),
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
		firstErr error
		errOnce  sync.Once
	)
	for ci := lo; ci < hi; ci++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(ci int) {
			defer wg.Done()
			defer func() { <-sem }()
			tr, err := fl.NewTrainer(p.pop, p.configs[ci], p.opts.Train, p.root.Splitf("config-%d", ci))
			if err != nil {
				errOnce.Do(func() { firstErr = fmt.Errorf("core: config %d: %w", ci, err) })
				return
			}
			for ri, r := range p.rounds {
				tr.TrainTo(r)
				for pi := range p.parts {
					copy(sh.Errs.Row(pi, ci-lo, ri), tr.EvalClients(p.pools[pi]))
				}
			}
			sh.Diverged[ci-lo] = tr.Diverged()
		}(ci)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sh, nil
}

// ShardRanges splits n configs into contiguous [lo, hi) ranges of at most
// size configs each (size <= 0 means one shard covering everything).
func ShardRanges(n, size int) [][2]int {
	if size <= 0 || size > n {
		size = n
	}
	var out [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// AssembleBank combines shards covering the plan's full config range into a
// validated bank. Every config index must be covered by exactly one shard;
// gaps, overlaps, and shape mismatches are errors. Because shard content
// depends only on (pop, opts, seed, range), the assembled bank is
// byte-identical to a single-process BuildBank of the same inputs. With both
// sides arena-backed, reassembly is one contiguous block copy per
// (partition, shard) — no per-row pointer stitching.
func AssembleBank(p *BuildPlan, shards []*BankShard) (*Bank, error) {
	b := &Bank{
		SpecName:      p.pop.Spec.Name,
		Seed:          p.seed,
		Configs:       p.configs,
		Rounds:        p.rounds,
		Partitions:    p.parts,
		ExampleCounts: p.counts,
		Errs:          NewErrMatrix(len(p.parts), len(p.configs), len(p.rounds), len(p.counts[0])),
		Diverged:      make([]bool, len(p.configs)),
	}

	sorted := append([]*BankShard(nil), shards...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	next := 0
	for _, sh := range sorted {
		if sh.Lo != next {
			if sh.Lo < next {
				return nil, fmt.Errorf("core: assemble: shards overlap at config %d", sh.Lo)
			}
			return nil, fmt.Errorf("core: assemble: configs [%d, %d) uncovered", next, sh.Lo)
		}
		if err := sh.Validate(p); err != nil {
			return nil, fmt.Errorf("core: assemble: %w", err)
		}
		for pi := range p.parts {
			copy(b.Errs.ConfigBlock(pi, sh.Lo, sh.Hi), sh.Errs.ConfigBlock(pi, 0, sh.Hi-sh.Lo))
		}
		copy(b.Diverged[sh.Lo:sh.Hi], sh.Diverged)
		next = sh.Hi
	}
	if next != len(p.configs) {
		return nil, fmt.Errorf("core: assemble: configs [%d, %d) uncovered", next, len(p.configs))
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("core: assemble: %w", err)
	}
	b.buildIndex()
	return b, nil
}
