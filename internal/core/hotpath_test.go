package core

import (
	"fmt"
	"hash/fnv"
	"testing"

	"noisyeval/internal/eval"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// TestEvalSeedMatchesLegacyDerivation pins the oracle's inlined FNV-1a
// evaluation-stream derivation to the historical fmt.Fprintf construction:
// same bytes in, same seed out, or every recorded experiment resamples
// different cohorts.
func TestEvalSeedMatchesLegacyDerivation(t *testing.T) {
	b, _ := tinyBank(t)
	o, err := NewBankOracle(b, 0, eval.Scheme{Count: 3, Weighted: true}, 12345)
	if err != nil {
		t.Fatal(err)
	}
	for _, trial := range []int{0, 7, 341} {
		ot := o.WithTrial(trial)
		for _, evalID := range []string{"", "x", "round-17", "rung-2|cfg-55"} {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d|%s|%s", ot.seed, ot.trialSalt, evalID)
			if got, want := ot.evalSeed(evalID), h.Sum64(); got != want {
				t.Errorf("evalSeed(trial=%d, %q) = %d, want legacy %d", trial, evalID, got, want)
			}
		}
	}
}

// TestOracleScratchPathMatchesAllocatingPath verifies the per-trial scratch
// fast path releases byte-identical evaluations to the allocating base path
// across every noise family, so the perf refactor cannot perturb results.
func TestOracleScratchPathMatchesAllocatingPath(t *testing.T) {
	b, _ := tinyBank(t)
	schemes := map[string]eval.Scheme{
		"full":     eval.Noiseless(),
		"uniform":  {Count: 3, Weighted: true},
		"one":      {Count: 1, Weighted: true},
		"biased":   {Count: 4, Weighted: true, Bias: 2},
		"unweight": {Count: 5},
	}
	for name, scheme := range schemes {
		t.Run(name, func(t *testing.T) {
			o, err := NewBankOracle(b, 0, scheme, 9)
			if err != nil {
				t.Fatal(err)
			}
			fast := o.WithTrial(2)
			slow := o.WithTrial(2)
			slow.scratch = nil // force the historical allocating path
			for i, cfg := range b.Configs[:4] {
				for _, r := range []int{3, 27} {
					id := fmt.Sprintf("e-%d-%d", i, r)
					if f, s := fast.Evaluate(cfg, r, id), slow.Evaluate(cfg, r, id); f != s {
						t.Fatalf("scratch path diverged: %v vs %v (cfg %d, rounds %d)", f, s, i, r)
					}
					if f, s := fast.TrueError(cfg, r), slow.TrueError(cfg, r); f != s {
						t.Fatalf("TrueError diverged: %v vs %v", f, s)
					}
				}
			}
		})
	}
}

// TestOracleTrialEvaluateAllocationFree pins the RunTrials hot path: with a
// warm per-trial scratch, a bank evaluation performs zero allocations.
func TestOracleTrialEvaluateAllocationFree(t *testing.T) {
	b, _ := tinyBank(t)
	for name, scheme := range map[string]eval.Scheme{
		"uniform": {Count: 3, Weighted: true},
		"biased":  {Count: 3, Weighted: true, Bias: 1.5},
		"full":    eval.Noiseless(),
	} {
		t.Run(name, func(t *testing.T) {
			o, err := NewBankOracle(b, 0, scheme, 4)
			if err != nil {
				t.Fatal(err)
			}
			trial := o.WithTrial(1)
			cfg := b.Configs[2]
			trial.Evaluate(cfg, 27, "warm") // warm the scratch buffers
			allocs := testing.AllocsPerRun(100, func() {
				trial.Evaluate(cfg, 27, "warm")
			})
			if allocs != 0 {
				t.Errorf("warm trial evaluation allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestRunTrialsUnchangedByScratchReuse re-pins trial-level determinism from
// the tuner's perspective: per-trial scratch must not leak state between
// evaluations or trials (each trial owns its buffers, results depend only on
// seeds).
func TestRunTrialsUnchangedByScratchReuse(t *testing.T) {
	b, _ := tinyBank(t)
	o, err := NewBankOracle(b, 0, eval.Scheme{Count: 2, Weighted: true, Bias: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tn := Tuner{
		Method:   hpo.SuccessiveHalving{N: 6, R0: 3},
		Space:    hpo.DefaultSpace(),
		Settings: hpo.Settings{Budget: hpo.Budget{TotalRounds: 6 * 27, MaxPerConfig: 27, K: 6}}.Normalize(),
	}
	a := FinalErrors(tn.RunTrials(o, 10, rng.New(3).Split("scratch")))
	c := FinalErrors(tn.RunTrials(o, 10, rng.New(3).Split("scratch")))
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("trial %d differs across identical RunTrials: %v vs %v", i, a[i], c[i])
		}
	}
}
