package core

import (
	"fmt"
	"hash/fnv"
	"sync"

	"noisyeval/internal/data"
	"noisyeval/internal/eval"
	"noisyeval/internal/fl"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// BankOracle serves tuning methods from a pre-trained Bank: evaluations are
// real subsamples/reweightings of recorded per-client errors — contiguous
// arena rows, no pointer chasing — so hundreds of bootstrap trials cost
// nothing beyond the one-time bank build. The base oracle is safe for
// concurrent use (the bank is read-only, and it owns no scratch); each
// WithTrial copy additionally carries private scratch buffers reused across
// that trial's evaluations, making the RunTrials hot path allocation-light.
type BankOracle struct {
	bank      *Bank
	partition float64
	pi        int // cached PartitionIndex(partition)
	evaluator *eval.Evaluator
	full      *eval.Evaluator // full-pool weighted evaluator for TrueError
	seed      uint64
	trialSalt string

	// scratch is per-trial state: nil on the shared base oracle (Evaluate
	// then allocates per call, exactly as before), owned exclusively by one
	// goroutine on a WithTrial copy.
	scratch *oracleScratch
}

// oracleScratch is the reusable per-trial state: the evaluator's sampling
// buffers and one reseedable RNG, so an evaluation allocates nothing.
type oracleScratch struct {
	eval eval.Scratch
	g    *rng.RNG
}

// NewBankOracle builds an oracle over the bank's given partition with the
// evaluation scheme (subsampling, bias; any DP in the scheme is ignored —
// tuning methods privatize their own releases). seed decorrelates
// evaluation subsampling across oracles; use a distinct trial salt per
// bootstrap trial via WithTrial.
func NewBankOracle(b *Bank, partition float64, scheme eval.Scheme, seed uint64) (*BankOracle, error) {
	pi, err := b.PartitionIndex(partition)
	if err != nil {
		return nil, err
	}
	// The oracle never applies DP itself.
	scheme.DP.Epsilon = 0
	scheme.DP.TotalEvals = 0
	ev, err := eval.New(b.ExampleCounts[pi], scheme)
	if err != nil {
		return nil, err
	}
	fullScheme := eval.Noiseless()
	fullScheme.Weighted = scheme.Weighted
	full, err := eval.New(b.ExampleCounts[pi], fullScheme)
	if err != nil {
		return nil, err
	}
	return &BankOracle{bank: b, partition: partition, pi: pi, evaluator: ev, full: full, seed: seed}, nil
}

// trialSalts interns the "trial-<n>" salt strings shared by WithTrial copies
// and the block scheduler, byte-identical to the fmt.Sprintf("trial-%d", n)
// derivation the salts historically used (pinned by
// TestWithTrialSaltMatchesLegacy).
var trialSalts = hpo.NewIDCache("trial-")

// WithTrial returns a copy whose evaluation subsamples are decorrelated from
// other trials (bootstrap trials must observe independent client subsets).
// The copy carries its own scratch buffers, so one trial's evaluations reuse
// memory; use each copy from a single goroutine, as RunTrials does.
func (o *BankOracle) WithTrial(trial int) *BankOracle {
	c := *o
	c.trialSalt = trialSalts.ID(trial)
	c.scratch = &oracleScratch{g: rng.New(0)}
	return &c
}

// row returns the bank's error row for (cfg, rounds) under the oracle's
// partition — a view straight into the arena.
func (o *BankOracle) row(cfg fl.HParams, rounds int) []float64 {
	ci, err := o.bank.ConfigIndex(cfg)
	if err != nil {
		panic(err)
	}
	return o.bank.Errs.Row(o.pi, ci, o.bank.CheckpointIndex(rounds))
}

// Evaluate implements hpo.Oracle.
func (o *BankOracle) Evaluate(cfg fl.HParams, rounds int, evalID string) float64 {
	errs := o.row(cfg, rounds)
	if s := o.scratch; s != nil {
		s.g.Reseed(o.evalSeed(evalID))
		return o.evaluator.EvaluateScratch(errs, s.g, &s.eval).Observed
	}
	return o.evaluator.Evaluate(errs, rng.New(o.evalSeed(evalID))).Observed
}

// TrueError implements hpo.Oracle: the full weighted validation error.
func (o *BankOracle) TrueError(cfg fl.HParams, rounds int) float64 {
	return o.full.FullError(o.row(cfg, rounds))
}

// ConfigEval is the outcome of one single-config evaluation — the session
// API's unit of work (EvaluateIndex).
type ConfigEval struct {
	// ConfigIndex is the evaluated pool index.
	ConfigIndex int
	// Rounds is the checkpoint actually read: the highest recorded
	// checkpoint not exceeding the requested rounds.
	Rounds int
	// Observed is the noisy (subsampled/biased, pre-DP) validation error.
	Observed float64
	// True is the noise-free full weighted validation error at Rounds.
	True float64
}

// EvaluateIndex evaluates pool configuration ci at the checkpoint nearest to
// rounds (not exceeding it) under evalID's cohort, addressing the config by
// index instead of by value — the entry point for ask/tell sessions, where
// external callers speak pool indices. It is exactly Evaluate for
// bank.Configs[ci] with the same evalID (same cohort seed, same scratch
// reuse: zero allocations on a WithTrial copy), plus the true error from the
// same arena row. Out-of-range indices and out-of-range rounds return errors
// instead of panicking, because they arrive from the network.
func (o *BankOracle) EvaluateIndex(ci, rounds int, evalID string) (ConfigEval, error) {
	if ci < 0 || ci >= len(o.bank.Configs) {
		return ConfigEval{}, fmt.Errorf("core: config index %d outside pool [0, %d)", ci, len(o.bank.Configs))
	}
	if rounds < 1 {
		return ConfigEval{}, fmt.Errorf("core: rounds %d must be ≥ 1", rounds)
	}
	ri := o.bank.CheckpointIndex(rounds)
	errs := o.bank.Errs.Row(o.pi, ci, ri)
	var observed float64
	if s := o.scratch; s != nil {
		s.g.Reseed(o.evalSeed(evalID))
		observed = o.evaluator.EvaluateScratch(errs, s.g, &s.eval).Observed
	} else {
		observed = o.evaluator.Evaluate(errs, rng.New(o.evalSeed(evalID))).Observed
	}
	return ConfigEval{
		ConfigIndex: ci,
		Rounds:      o.bank.Rounds[ri],
		Observed:    observed,
		True:        o.full.FullError(errs),
	}, nil
}

// SampleSize implements hpo.Oracle.
func (o *BankOracle) SampleSize() int { return o.evaluator.SampleSize() }

// Pool implements hpo.Oracle: bank mode exposes the candidate pool.
func (o *BankOracle) Pool() []fl.HParams { return o.bank.Configs }

// MaxRounds implements hpo.Oracle.
func (o *BankOracle) MaxRounds() int { return o.bank.MaxRounds() }

// Bank returns the underlying bank.
func (o *BankOracle) Bank() *Bank { return o.bank }

// evalSeed derives the evaluation stream seed for an evaluation round: same
// (seed, trial, evalID) -> same client cohort, so all configurations of a
// rung share a cohort (Figure 2), while distinct rounds/trials draw
// independent cohorts. The hash is FNV-1a (rng.FNV64a, the package's one
// canonical implementation) over the exact byte sequence
// fmt.Fprintf(h, "%d|%s|%s", seed, trialSalt, evalID) historically produced
// — allocation-free — pinned by TestEvalSeedMatchesLegacyDerivation.
func (o *BankOracle) evalSeed(evalID string) uint64 {
	return o.evalSeedFor(o.trialSalt, evalID)
}

// evalSeedFor is evalSeed with an explicit trial salt: the block scheduler
// derives cohort seeds for many trials through one shared base oracle, so
// the salt is a parameter instead of WithTrial copy state. evalSeed is a
// pure function of (seed, trialSalt, evalID) — this is what makes blocked
// execution bit-identical to sequential regardless of scheduling.
func (o *BankOracle) evalSeedFor(trialSalt, evalID string) uint64 {
	return o.evalSeedPrefix(trialSalt).String(evalID).Sum()
}

// evalSeedPrefix is the evalID-independent FNV prefix of evalSeedFor
// ("<seed>|<trialSalt>|"): the scheduler hashes it once per trial and folds
// only the evalID per ask.
func (o *BankOracle) evalSeedPrefix(trialSalt string) rng.FNV64a {
	return rng.NewFNV64a().
		Uint64Decimal(o.seed).Byte('|').
		String(trialSalt).Byte('|')
}

// EvaluateRows is the oracle's row-sweep entry point: it evaluates the arena
// row of pool config ci at checkpoint index ri once for every cohort seed,
// returning one Result per seed (valid until the scratch's next use). Cohort
// c is bit-identical to Evaluate on a WithTrial copy whose evalSeed equals
// seeds[c]; the block scheduler uses this to answer a whole wave of asks
// that share a row with a single walk of it.
func (o *BankOracle) EvaluateRows(ci, ri int, seeds []uint64, ms *eval.MultiScratch) []eval.Result {
	return o.evaluator.EvaluateMulti(o.bank.Errs.Row(o.pi, ci, ri), seeds, ms)
}

// LiveOracle trains configurations on demand with a real federated trainer,
// caching trainers and per-checkpoint error vectors per configuration. It
// exercises the exact production code path (no bank) and is used by the
// examples and live-mode tests. Safe for concurrent use.
type LiveOracle struct {
	pop       *data.Population
	opts      fl.Options
	evaluator *eval.Evaluator
	full      *eval.Evaluator
	rounds    []int
	seed      uint64

	mu    sync.Mutex
	cache map[fl.HParams]*liveEntry
}

type liveEntry struct {
	trainer *fl.Trainer
	errs    map[int][]float64 // checkpoint -> per-client error vector
}

// NewLiveOracle builds a live oracle with checkpoints at the rung grid of
// (maxRounds, eta, levels).
func NewLiveOracle(pop *data.Population, trainOpts fl.Options, scheme eval.Scheme, maxRounds, eta, levels int, seed uint64) (*LiveOracle, error) {
	scheme.DP.Epsilon = 0
	scheme.DP.TotalEvals = 0
	ev, err := eval.New(valCounts(pop), scheme)
	if err != nil {
		return nil, err
	}
	fullScheme := eval.Noiseless()
	fullScheme.Weighted = scheme.Weighted
	full, err := eval.New(valCounts(pop), fullScheme)
	if err != nil {
		return nil, err
	}
	if trainOpts.ClientsPerRound == 0 {
		trainOpts = fl.DefaultOptions()
	}
	return &LiveOracle{
		pop: pop, opts: trainOpts, evaluator: ev, full: full,
		rounds: hpo.RungRounds(maxRounds, eta, levels),
		seed:   seed,
		cache:  map[fl.HParams]*liveEntry{},
	}, nil
}

// Evaluate implements hpo.Oracle.
func (o *LiveOracle) Evaluate(cfg fl.HParams, rounds int, evalID string) float64 {
	errs := o.clientErrors(cfg, rounds)
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", o.seed, evalID)
	return o.evaluator.Evaluate(errs, rng.New(h.Sum64())).Observed
}

// TrueError implements hpo.Oracle.
func (o *LiveOracle) TrueError(cfg fl.HParams, rounds int) float64 {
	return o.full.FullError(o.clientErrors(cfg, rounds))
}

// SampleSize implements hpo.Oracle.
func (o *LiveOracle) SampleSize() int { return o.evaluator.SampleSize() }

// Pool implements hpo.Oracle: live mode searches the continuous space.
func (o *LiveOracle) Pool() []fl.HParams { return nil }

// MaxRounds implements hpo.Oracle.
func (o *LiveOracle) MaxRounds() int { return o.rounds[len(o.rounds)-1] }

// clientErrors trains cfg up to the checkpoint covering rounds (if not yet
// trained) and returns the recorded per-client error vector.
func (o *LiveOracle) clientErrors(cfg fl.HParams, rounds int) []float64 {
	ckpt := o.checkpointFor(rounds)
	o.mu.Lock()
	defer o.mu.Unlock()
	entry, ok := o.cache[cfg]
	if !ok {
		tr, err := fl.NewTrainer(o.pop, cfg, o.opts, rng.New(o.seed).Splitf("cfg-%x", hashConfig(cfg)))
		if err != nil {
			panic(fmt.Sprintf("core: live oracle: %v", err))
		}
		entry = &liveEntry{trainer: tr, errs: map[int][]float64{}}
		o.cache[cfg] = entry
	}
	if errs, ok := entry.errs[ckpt]; ok {
		return errs
	}
	// Train forward through any missing checkpoints so the cache stays
	// consistent with monotone training.
	for _, r := range o.rounds {
		if r > ckpt {
			break
		}
		if _, done := entry.errs[r]; done {
			continue
		}
		entry.trainer.TrainTo(r)
		entry.errs[r] = entry.trainer.EvalClients(o.pop.Val)
	}
	return entry.errs[ckpt]
}

func (o *LiveOracle) checkpointFor(rounds int) int {
	best := o.rounds[0]
	for _, r := range o.rounds {
		if r <= rounds {
			best = r
		}
	}
	return best
}

func hashConfig(cfg fl.HParams) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", cfg)
	return h.Sum64()
}

func valCounts(pop *data.Population) []int {
	out := make([]int, len(pop.Val))
	for i, c := range pop.Val {
		out[i] = c.NumExamples()
	}
	return out
}

// Interface conformance checks.
var (
	_ hpo.Oracle = (*BankOracle)(nil)
	_ hpo.Oracle = (*LiveOracle)(nil)
)
