package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"noisyeval/internal/core/bankseg"
	"noisyeval/internal/data"
	"noisyeval/internal/eval"
	"noisyeval/internal/fl"
	"noisyeval/internal/rng"
)

func TestSaveBankV4RoundTrip(t *testing.T) {
	b, _ := tinyBank(t)
	path := filepath.Join(t.TempDir(), "v4.bank")
	if err := SaveBankV4(b, path); err != nil {
		t.Fatal(err)
	}

	// Heap load (LoadBank auto-detects v4 and verifies every payload CRC).
	heap, err := LoadBank(path)
	if err != nil {
		t.Fatal(err)
	}
	if hashBankContent(heap) != hashBankContent(b) {
		t.Fatal("heap-loaded v4 bank differs from the original")
	}

	// Mapped open serves the same content zero-copy.
	mapped, closer, err := OpenBankMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if hashBankContent(mapped) != hashBankContent(b) {
		t.Fatal("mapped v4 bank differs from the original")
	}
	if BankFingerprint(mapped) != BankFingerprint(heap) {
		t.Fatal("mapped bank fingerprints differently from its heap twin")
	}

	// Determinism: saving the same bank again yields identical bytes.
	path2 := filepath.Join(t.TempDir(), "v4b.bank")
	if err := SaveBankV4(b, path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("SaveBankV4 is not byte-deterministic")
	}
}

func TestOpenBankMappedFallsBackForV3(t *testing.T) {
	b, _ := tinyBank(t)
	path := filepath.Join(t.TempDir(), "v3.bank")
	if err := SaveBank(b, path); err != nil {
		t.Fatal(err)
	}
	got, closer, err := OpenBankMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if hashBankContent(got) != hashBankContent(b) {
		t.Fatal("v3 fallback path corrupted the bank")
	}
}

// TestMappedOracleBitIdentical is the golden mapped-serving test: every
// BankOracle read against the v4-mapped bank must be bit-identical to the
// same read against the heap-decoded v3 bank.
func TestMappedOracleBitIdentical(t *testing.T) {
	b, _ := tinyBank(t)
	dir := t.TempDir()
	p3, p4 := filepath.Join(dir, "v3.bank"), filepath.Join(dir, "v4.bank")
	if err := SaveBank(b, p3); err != nil {
		t.Fatal(err)
	}
	if err := SaveBankV4(b, p4); err != nil {
		t.Fatal(err)
	}
	heap, err := LoadBank(p3)
	if err != nil {
		t.Fatal(err)
	}
	mapped, closer, err := OpenBankMapped(p4)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	scheme := eval.Scheme{Count: 5, Weighted: true}
	oh, err := NewBankOracle(heap, 0.5, scheme, 3)
	if err != nil {
		t.Fatal(err)
	}
	om, err := NewBankOracle(mapped, 0.5, scheme, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		th, tm := oh.WithTrial(trial), om.WithTrial(trial)
		for ci := range heap.Configs {
			for _, r := range heap.Rounds {
				id := "t"
				eh, err1 := th.EvaluateIndex(ci, r, id)
				em, err2 := tm.EvaluateIndex(ci, r, id)
				if err1 != nil || err2 != nil {
					t.Fatalf("evaluate (%d,%d): %v / %v", ci, r, err1, err2)
				}
				if eh.Observed != em.Observed || eh.True != em.True {
					t.Fatalf("trial %d config %d rounds %d: heap (%v,%v) != mapped (%v,%v)",
						trial, ci, r, eh.Observed, eh.True, em.Observed, em.True)
				}
			}
		}
	}
}

// growFixture builds a 4-config bank plus the plan and shard that extend it
// to 6 configs, and the cold-built 6-config reference bank.
func growFixture(t *testing.T) (base, cold *Bank, plan *BuildPlan, shard *BankShard) {
	t.Helper()
	pop := data.MustGenerate(tinySpec(), rng.New(1))
	opts := tinyBuildOptions()
	opts.NumConfigs, opts.MaxRounds = 4, 9
	base, err := BuildBank(pop, opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	extra := opts.Space.SampleN(2, rng.New(7).Splitf("grow-%s-%d", base.SpecName, len(base.Configs)))
	union := append(append([]fl.HParams{}, base.Configs...), extra...)
	optsU := opts
	optsU.Configs = union
	cold, err = BuildBank(pop, optsU, 7)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = NewBuildPlan(pop, optsU, 7)
	if err != nil {
		t.Fatal(err)
	}
	shard, err = plan.TrainRange(len(base.Configs), len(union), 0)
	if err != nil {
		t.Fatal(err)
	}
	return base, cold, plan, shard
}

// TestGrownBankMatchesColdBuild is the golden growth test: extending a bank
// with freshly trained configs must reproduce, content-hash-identical, a
// cold build over the union pool with the same seed.
func TestGrownBankMatchesColdBuild(t *testing.T) {
	base, cold, plan, shard := growFixture(t)
	grown, err := base.Extend(plan, []*BankShard{shard})
	if err != nil {
		t.Fatal(err)
	}
	if hashBankContent(grown) != hashBankContent(cold) {
		t.Fatal("grown bank content differs from cold build over the union pool")
	}
	if len(base.Configs) != 4 {
		t.Fatal("Extend mutated its receiver")
	}
	// And the on-disk grow path reproduces it too, through both load paths.
	path := filepath.Join(t.TempDir(), "grow.bank")
	if err := SaveBankV4(base, path); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtendBankV4(path, plan, []*BankShard{shard}); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadBank(path)
	if err != nil {
		t.Fatal(err)
	}
	if hashBankContent(reloaded) != hashBankContent(cold) {
		t.Fatal("reloaded grown file differs from cold build")
	}
	mapped, closer, err := OpenBankMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if hashBankContent(mapped) != hashBankContent(cold) {
		t.Fatal("mapped grown file differs from cold build")
	}
}

func TestExtendValidatesPlan(t *testing.T) {
	base, _, plan, shard := growFixture(t)
	// Wrong seed → mismatch.
	bad := *base
	bad.Seed = 99
	if _, err := bad.Extend(plan, []*BankShard{shard}); err == nil {
		t.Fatal("Extend accepted a plan with a different seed")
	}
	// Plan no larger than the bank → nothing to extend.
	small := *base
	small.Configs = append([]fl.HParams{}, base.Configs...)
	if _, err := small.Extend(plan, nil); err == nil {
		t.Fatal("Extend accepted missing shards")
	}
}

// TestExtendBankV4CrashMidGrow pins the crash-consistency contract: a grow
// interrupted before its commit segment rolls back to the pre-grow bank on
// the next open, and retrying the grow converges to byte-identical file
// content.
func TestExtendBankV4CrashMidGrow(t *testing.T) {
	base, cold, plan, shard := growFixture(t)
	dir := t.TempDir()

	write := func(name string) string {
		p := filepath.Join(dir, name)
		if err := SaveBankV4(base, p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Control: an uninterrupted grow, the bytes every retry must converge to.
	control := write("control.bank")
	if _, err := ExtendBankV4(control, plan, []*BankShard{shard}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(control)
	if err != nil {
		t.Fatal(err)
	}
	preGrow, err := os.ReadFile(write("pre.bank"))
	if err != nil {
		t.Fatal(err)
	}

	// Crash after the arena segments, before the commit: the debris is
	// invisible to readers and a retry converges.
	p := write("arena-crash.bank")
	extendAbortStage = "arena"
	if _, err := ExtendBankV4(p, plan, []*BankShard{shard}); err == nil {
		t.Fatal("aborted grow reported success")
	}
	extendAbortStage = ""
	got, err := LoadBank(p)
	if err != nil {
		t.Fatalf("reopen after arena crash: %v", err)
	}
	if hashBankContent(got) != hashBankContent(base) {
		t.Fatal("arena crash leaked partial growth to readers")
	}
	if _, err := ExtendBankV4(p, plan, []*BankShard{shard}); err != nil {
		t.Fatalf("retried grow: %v", err)
	}
	if after, _ := os.ReadFile(p); !bytes.Equal(after, want) {
		t.Fatal("retried grow did not converge to the control bytes")
	}

	// Crash with the commit fully written but not yet fsynced: the file
	// content already equals the committed grow, so readers see the grown
	// bank (fsync only narrows the window where the OS could lose it).
	p = write("commit-crash.bank")
	extendAbortStage = "commit"
	if _, err := ExtendBankV4(p, plan, []*BankShard{shard}); err == nil {
		t.Fatal("aborted grow reported success")
	}
	extendAbortStage = ""
	if got, err := LoadBank(p); err != nil || hashBankContent(got) != hashBankContent(cold) {
		t.Fatalf("commit-written crash: err=%v", err)
	}

	// Torn writes at arbitrary points inside the appended region (the OS
	// persisted a prefix): the bank rolls back to pre-grow, and a retried
	// grow converges to the control bytes. The last cut lands inside the
	// union commit's payload — a cut in the trailing alignment padding
	// would leave the commit intact, which is not a torn write.
	sf, err := bankseg.Parse(want)
	if err != nil {
		t.Fatal(err)
	}
	lastSeg := sf.Segments()[len(sf.Segments())-1]
	for _, cut := range []int64{
		int64(len(preGrow)) + 1,
		int64(len(preGrow)) + bankseg.SegmentHeaderLen + 16,
		lastSeg.Offset + bankseg.SegmentHeaderLen + int64(len(lastSeg.Payload)) - 1,
	} {
		p := filepath.Join(dir, "torn.bank")
		if err := os.WriteFile(p, want[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadBank(p)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if hashBankContent(got) != hashBankContent(base) {
			t.Fatalf("cut %d: torn grow leaked partial state", cut)
		}
		if _, err := ExtendBankV4(p, plan, []*BankShard{shard}); err != nil {
			t.Fatalf("cut %d: retried grow: %v", cut, err)
		}
		if after, _ := os.ReadFile(p); !bytes.Equal(after, want) {
			t.Fatalf("cut %d: retry did not converge", cut)
		}
	}
}

// TestLoadBankCorruptionIsLocated pins the error taxonomy: a damaged v4
// file fails with a coded CorruptError naming the segment and offset, never
// with a stale-format classification.
func TestLoadBankCorruptionIsLocated(t *testing.T) {
	b, _ := tinyBank(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "v4.bank")
	if err := SaveBankV4(b, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, img []byte) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, img, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadBank(p)
		if err == nil {
			t.Fatalf("%s: load succeeded on a damaged file", name)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: err = %v, want *CorruptError", name, err)
		}
		if ce.Section != "segment" {
			t.Fatalf("%s: section = %q", name, ce.Section)
		}
		if IsStaleBankFormat(err) {
			t.Fatalf("%s: corruption misclassified as stale format", name)
		}
	}

	// Truncated mid-arena: no commit survives.
	check("trunc.bank", raw[:bankseg.FileHeaderLen+bankseg.SegmentHeaderLen+64])
	// Arena payload bit flip: header chain is fine, payload CRC is not.
	flip := append([]byte(nil), raw...)
	flip[bankseg.FileHeaderLen+bankseg.SegmentHeaderLen+8] ^= 1
	check("flip.bank", flip)
	// Truncated commit segment (cut inside its payload, not the padding).
	sf, err := bankseg.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	commit := sf.Segments()[len(sf.Segments())-1]
	check("shortcommit.bank", raw[:commit.Offset+bankseg.SegmentHeaderLen+int64(len(commit.Payload))-1])
}

// FuzzBankV4 asserts the v4 decode path never panics and only ever returns
// validated banks, whatever bytes arrive. Seeds cover the corpus the crash
// and corruption tests exercise: a valid file, a torn segment, a payload
// CRC flip, and a duplicated (replayed) segment.
func FuzzBankV4(f *testing.F) {
	opts := tinyBuildOptions()
	opts.NumConfigs, opts.MaxRounds = 2, 3
	pop := data.MustGenerate(tinySpec(), rng.New(1))
	b, err := BuildBank(pop, opts, 3)
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(f.TempDir(), "seed.bank")
	if err := SaveBankV4(b, path); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])                                                    // torn segment
	f.Add(raw[:bankseg.FileHeaderLen])                                         // header only
	flip := append([]byte(nil), raw...)                                        //
	flip[bankseg.FileHeaderLen+bankseg.SegmentHeaderLen+4] ^= 0x10             //
	f.Add(flip)                                                                // payload CRC flip
	f.Add(append(append([]byte(nil), raw...), raw[bankseg.FileHeaderLen:]...)) // duplicate segments
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBank(bytes.NewReader(data))
		if err == nil {
			if b == nil {
				t.Fatal("nil bank without error")
			}
			if verr := b.Validate(); verr != nil {
				t.Fatalf("decoded bank fails validation: %v", verr)
			}
		}
	})
}

// TestOpenBankMappedWarm covers the -mmap-warm open path: the warm open
// must serve identical content to the plain mapped open, bump the
// bank_mapped_warm_total counter, and pre-touch only real mappings
// (bankseg.File.Warm reports 0 for an unmapped file).
func TestOpenBankMappedWarm(t *testing.T) {
	b, _ := tinyBank(t)
	path := filepath.Join(t.TempDir(), "warm.bank")
	if err := SaveBankV4(b, path); err != nil {
		t.Fatal(err)
	}

	before := metricsInstruments().MappedWarmTotal.Value()
	warm, closer, err := OpenBankMappedWarm(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if hashBankContent(warm) != hashBankContent(b) {
		t.Fatal("warm-mapped bank differs from the original")
	}
	if got := metricsInstruments().MappedWarmTotal.Value(); got != before+1 {
		t.Fatalf("bank_mapped_warm_total = %d after warm open, want %d", got, before+1)
	}

	// A plain mapped open must not pre-touch (counter unchanged).
	plain, closer2, err := OpenBankMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer2.Close()
	if hashBankContent(plain) != hashBankContent(b) {
		t.Fatal("plain mapped bank differs from the original")
	}
	if got := metricsInstruments().MappedWarmTotal.Value(); got != before+1 {
		t.Fatalf("bank_mapped_warm_total = %d after plain open, want %d", got, before+1)
	}

	// Warm on an unmapped (read-into-heap) segment file is a no-op.
	f, err := bankseg.OpenHeap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n := f.Warm(); n != 0 {
		t.Fatalf("Warm on unmapped file pre-touched %d bytes, want 0", n)
	}
}

// TestBankStoreMappedWarm verifies the store-level knob: with
// SetMappedWarm(true) a mapped cache hit goes through the warm open.
func TestBankStoreMappedWarm(t *testing.T) {
	b, _ := tinyBank(t)
	dir := t.TempDir()
	store, err := NewBankStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetMapped(true)
	store.SetMappedWarm(true)
	key := "warmtest"
	if err := store.Put(key, b); err != nil {
		t.Fatal(err)
	}
	before := metricsInstruments().MappedWarmTotal.Value()
	got, err := store.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if got == nil {
		t.Fatalf("Get(%q) missed a bank just Put", key)
	}
	if hashBankContent(got) != hashBankContent(b) {
		t.Fatal("warm store hit differs from the stored bank")
	}
	if after := metricsInstruments().MappedWarmTotal.Value(); after != before+1 {
		t.Fatalf("bank_mapped_warm_total = %d after warm store hit, want %d", after, before+1)
	}
	store.Close()
}
