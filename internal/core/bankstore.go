package core

import (
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"noisyeval/internal/data"
	"noisyeval/internal/obs"
)

// bankKeyVersion is bumped whenever the meaning of any hashed field changes,
// invalidating all previously cached entries.
// v2: BuildOptions.BatchEval joined the key (the batched engine's summation
// order legitimately changes recorded errors).
// Pure encoding changes do NOT bump the key: the key addresses bank content
// (build inputs), and the on-disk format carries its own version header
// (bankfmt.go), so a stale-format entry under a current key is detected on
// load, evicted, and rebuilt (StoreStats.StaleFormat).
const bankKeyVersion = "bankstore-v2"

// normalizeBuildOptions applies the same defaulting BuildBank performs, so
// that two option values which build identical banks hash identically.
// Workers is zeroed: parallelism does not affect bank content
// (TestBuildBankDeterministicAcrossParallelism). Train.BatchEval is forced
// to the authoritative BuildOptions.BatchEval so the two spellings of the
// knob can never produce distinct keys for the same build.
func normalizeBuildOptions(opts BuildOptions) BuildOptions {
	if opts.Eta < 2 {
		opts.Eta = 3
	}
	if opts.Levels < 1 {
		opts.Levels = 5
	}
	if opts.Train.ClientsPerRound == 0 {
		opts.Train = DefaultBuildOptions().Train
	}
	opts.Train.BatchEval = opts.BatchEval
	if err := opts.Space.Validate(); err != nil {
		opts.Space = DefaultBuildOptions().Space
	}
	opts.Workers = 0
	return opts
}

// BankKey returns the content address of the bank BuildBank(pop, opts, seed)
// would produce for a population generated from spec: a hex SHA-256 over the
// dataset spec, the normalized build options (including an explicit config
// pool, if any), and the seed. Construction is deterministic in exactly these
// inputs, so equal keys mean byte-identical bank content.
func BankKey(spec data.Spec, opts BuildOptions, seed uint64) string {
	opts = normalizeBuildOptions(opts)
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", bankKeyVersion)
	fmt.Fprintf(h, "spec %#v\n", spec)
	fmt.Fprintf(h, "numconfigs %d maxrounds %d eta %d levels %d\n",
		opts.NumConfigs, opts.MaxRounds, opts.Eta, opts.Levels)
	fmt.Fprintf(h, "partitions %v\n", opts.Partitions)
	fmt.Fprintf(h, "train %#v\n", opts.Train)
	fmt.Fprintf(h, "batcheval %v\n", opts.BatchEval)
	fmt.Fprintf(h, "space %#v\n", opts.Space)
	fmt.Fprintf(h, "pool %d\n", len(opts.Configs))
	for _, c := range opts.Configs {
		fmt.Fprintf(h, "%#v\n", c)
	}
	fmt.Fprintf(h, "seed %d\n", seed)
	return hex.EncodeToString(h.Sum(nil))
}

// PopulationFingerprint hashes the population's actual content (spec plus
// every client's examples), so cache keys distinguish populations that share
// a Spec but were generated differently (e.g. different generation seeds).
// Cost is one pass over the raw data — noise next to training a bank.
func PopulationFingerprint(pop *data.Population) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nspec %#v\n", bankKeyVersion, pop.Spec)
	enc := gob.NewEncoder(h)
	for _, pool := range [][]*data.Client{pop.Train, pop.Val} {
		if err := enc.Encode(pool); err != nil {
			// Clients are plain exported slices/scalars; an encode failure
			// is a programming error, never data-dependent.
			panic(fmt.Sprintf("core: population fingerprint: %v", err))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BankKeyForPopulation is BankKey bound to a concrete population: it extends
// the spec/options/seed address with the population's content fingerprint.
// BuildBankCached keys on this, so two different populations generated from
// one Spec can never collide on a cache entry.
func BankKeyForPopulation(pop *data.Population, opts BuildOptions, seed uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", BankKey(pop.Spec, opts, seed), PopulationFingerprint(pop))
	return hex.EncodeToString(h.Sum(nil))
}

// StoreStats reports cache-effectiveness counters for one BankStore.
type StoreStats struct {
	Hits    int64 // entries served from disk
	Misses  int64 // lookups that found no (valid) entry
	Builds  int64 // banks built and written through GetOrBuild
	Evicted int64 // entries removed: corrupt or stale on load, or pruned
	// StaleFormat counts evictions whose cause was a format-generation
	// mismatch (legacy gob+gzip entry, or one written by a future build)
	// rather than corruption. Such entries are valid artifacts in a dead
	// encoding; they rebuild transparently and this counter is the only
	// trace. Included in Evicted.
	StaleFormat int64
	// CorruptSegment counts evictions whose cause was located corruption —
	// the decoder identified the failing section or segment (truncation,
	// CRC mismatch; see CorruptError) rather than a stale format. Included
	// in Evicted.
	CorruptSegment int64
}

// BankStore is a content-addressed on-disk bank cache. Entries are the
// bankfmt/v3 encoding of SaveBank, stored as <dir>/<key>.bank where key comes
// from BankKey. Writes go through a temp file plus fsync plus atomic rename,
// so a crashed or concurrent writer can never leave a partial entry visible;
// corrupt entries (truncation, bit rot) and stale-format entries (a previous
// encoding generation) are detected on load, evicted, and rebuilt. A nil
// *BankStore is valid and behaves as an always-miss cache, so call sites can
// thread an optional store without branching.
type BankStore struct {
	dir string

	// Log, when set, receives operational events (stale-format and
	// corrupt-segment evictions) as structured lines, on the same obs
	// pipeline as serve events — one grep finds every eviction in a
	// process. Set it right after NewBankStore, before concurrent use. A
	// nil logger is a silent no-op.
	Log *obs.Logger

	mu       sync.Mutex
	inflight map[string]*storeCall

	maxBytes atomic.Int64 // size bound enforced after each Put (0 = unlimited)

	// mapMode switches Get/Put onto the bankfmt/v4 mmap path (SetMapped).
	mapMode atomic.Bool
	// mapWarm pre-touches each mapping at open (SetMappedWarm, -mmap-warm).
	mapWarm atomic.Bool
	// mapMu guards the mapped-entry table and the retired mappings.
	mapMu  sync.Mutex
	mapped map[string]*mappedBank
	// retired holds mappings whose key was overwritten by a newer Put.
	// They stay mapped (a reader may still hold the old bank's views) and
	// are only released by Close.
	retired []io.Closer

	hits, misses, builds, evicted, staleFormat, corruptSegment atomic.Int64
}

// mappedBank is one live mmap-served cache entry.
type mappedBank struct {
	bank   *Bank
	closer io.Closer
	bytes  int64 // on-disk (and mapped) size
	zero   bool  // true when actually mmap-backed, false for heap fallback
}

// storeCall deduplicates concurrent GetOrBuild calls for one key
// (singleflight): the first caller builds, the rest wait on done.
type storeCall struct {
	done chan struct{}
	bank *Bank
	err  error
}

// NewBankStore opens (creating if needed) a bank cache rooted at dir.
func NewBankStore(dir string) (*BankStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: bank store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: bank store: %w", err)
	}
	return &BankStore{dir: dir, inflight: map[string]*storeCall{}, mapped: map[string]*mappedBank{}}, nil
}

// Dir returns the cache root.
func (s *BankStore) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Path returns the on-disk location of key's entry.
func (s *BankStore) Path(key string) string {
	return filepath.Join(s.dir, key+".bank")
}

// Has reports whether a non-empty entry for key exists on disk, without
// opening or decoding it. noisyevald's admission control classifies
// submissions as warm or cold with it on the request path, so it must stay
// a single stat. A nil store has nothing.
func (s *BankStore) Has(key string) bool {
	if s == nil {
		return false
	}
	fi, err := os.Stat(s.Path(key))
	return err == nil && fi.Size() > 0
}

// Get returns the cached bank for key, or (nil, nil) on a miss. A corrupt
// entry is evicted and reported as a miss, never as an error: the caller can
// always rebuild. An entry that merely fails to open (transient fd/permission
// trouble) is a plain miss — content that can't be read is not evidence of
// corruption, and eviction would destroy an expensive valid artifact.
func (s *BankStore) Get(key string) (*Bank, error) {
	if s == nil {
		return nil, nil
	}
	if s.mapMode.Load() {
		return s.getMapped(key)
	}
	path := s.Path(key)
	f, err := os.Open(path)
	if err != nil {
		s.misses.Add(1)
		return nil, nil
	}
	defer f.Close()
	b, err := decodeBankAuto(f)
	if err != nil {
		s.evictBroken(key, path, err)
		return nil, nil
	}
	s.hits.Add(1)
	// Touch the entry so Prune's LRU-by-mtime ordering reflects use, not
	// just creation (a hot bank must outlive colder, newer ones).
	now := time.Now()
	os.Chtimes(path, now, now)
	return b, nil
}

// evictBroken drops an entry that failed to decode and classifies the
// failure: stale formats and located corruption each get their own stat and
// a log line (a stale format is an expected lifecycle event; corruption
// names the failing segment/offset so bit rot is diagnosable), everything
// else counts only as a generic eviction.
func (s *BankStore) evictBroken(key, path string, err error) {
	os.Remove(path)
	s.evicted.Add(1)
	s.misses.Add(1)
	var ce *CorruptError
	switch {
	case IsStaleBankFormat(err):
		s.staleFormat.Add(1)
		s.Log.Warn("evicting bank cache entry, will rebuild",
			"event", "bank_evict", "reason", "stale_format", "key", key, "err", err)
	case errors.As(err, &ce):
		s.corruptSegment.Add(1)
		s.Log.Warn("evicting bank cache entry, will rebuild",
			"event", "bank_evict", "reason", "corrupt_segment", "key", key, "err", err)
	}
}

// SetMapped switches the store into memory-mapped serving mode: Put writes
// bankfmt/v4 entries (SaveBankV4) and Get serves them through OpenBankMapped
// — mmap'd, zero-copy, open cost O(segment count). Mapped entries stay
// resident (and Prune never unlinks them) until Close. v3 entries and
// platforms without mmap degrade to a heap decode transparently. Flip the
// mode before concurrent use.
func (s *BankStore) SetMapped(on bool) {
	if s == nil {
		return
	}
	s.mapMode.Store(on)
}

// SetMappedWarm makes mapped opens pre-touch the whole mapping
// (OpenBankMappedWarm) so a bank's first row sweep pays no major faults.
// Only meaningful in mapped mode.
func (s *BankStore) SetMappedWarm(on bool) {
	if s == nil {
		return
	}
	s.mapWarm.Store(on)
}

// MappedStats reports the live mmap-served entries (heap-fallback entries
// are excluded from both counters).
type MappedStats struct {
	Files int64 // entries currently backed by a mapping
	Bytes int64 // total mapped bytes
}

// Mapped returns a snapshot of the store's mapping footprint.
func (s *BankStore) Mapped() MappedStats {
	if s == nil {
		return MappedStats{}
	}
	s.mapMu.Lock()
	defer s.mapMu.Unlock()
	var st MappedStats
	for _, e := range s.mapped {
		if e.zero {
			st.Files++
			st.Bytes += e.bytes
		}
	}
	return st
}

// getMapped serves key from the mapped-entry table, opening (and mapping)
// the on-disk entry on first use. The table pins each opened bank for the
// store's lifetime: oracle readers hold views into the mapping, so the only
// safe unmap point is Close, after all readers are gone.
func (s *BankStore) getMapped(key string) (*Bank, error) {
	s.mapMu.Lock()
	defer s.mapMu.Unlock()
	path := s.Path(key)
	if e, ok := s.mapped[key]; ok {
		s.hits.Add(1)
		now := time.Now()
		os.Chtimes(path, now, now)
		return e.bank, nil
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		s.misses.Add(1)
		return nil, nil
	}
	open := OpenBankMapped
	if s.mapWarm.Load() {
		open = OpenBankMappedWarm
	}
	b, closer, err := open(path)
	if err != nil {
		s.evictBroken(key, path, err)
		return nil, nil
	}
	_, heapBacked := closer.(nopCloser)
	s.mapped[key] = &mappedBank{bank: b, closer: closer, bytes: fi.Size(), zero: !heapBacked}
	s.hits.Add(1)
	now := time.Now()
	os.Chtimes(path, now, now)
	return b, nil
}

// Close releases every mapping the store holds (live and retired). Call it
// only after all bank readers are done — their error-matrix views point
// into the mappings.
func (s *BankStore) Close() error {
	if s == nil {
		return nil
	}
	s.mapMu.Lock()
	defer s.mapMu.Unlock()
	var first error
	for key, e := range s.mapped {
		if err := e.closer.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.mapped, key)
	}
	for _, c := range s.retired {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.retired = nil
	return first
}

// Put writes the bank under key atomically (temp-file + fsync + rename), so
// readers only ever observe complete, durable entries. In mapped mode the
// entry is written in bankfmt/v4 (SaveBankV4) and any previously mapped
// bank for the key is retired: existing readers keep their (old) mapping,
// new Gets map the new file.
func (s *BankStore) Put(key string, b *Bank) error {
	if s == nil {
		return fmt.Errorf("core: Put on nil bank store")
	}
	save := SaveBank
	if s.mapMode.Load() {
		save = SaveBankV4
	}
	if err := save(b, s.Path(key)); err != nil {
		return err
	}
	s.mapMu.Lock()
	if e, ok := s.mapped[key]; ok {
		// The rename replaced the inode, not the mapping: the old mapping
		// stays valid for in-flight readers and is released at Close.
		s.retired = append(s.retired, e.closer)
		delete(s.mapped, key)
	}
	s.mapMu.Unlock()
	if max := s.maxBytes.Load(); max > 0 {
		// Enforce the size bound write-through; the just-written entry has
		// the freshest mtime, so it is pruned last (only when it alone
		// exceeds the bound).
		s.Prune(max)
	}
	return nil
}

// SetMaxBytes bounds the cache's total on-disk size: every Put triggers an
// LRU-by-mtime Prune down to max bytes (0 restores unlimited growth). The
// bound is advisory between writes — a foreign process dropping files into
// the directory is only noticed on the next Put or explicit Prune.
func (s *BankStore) SetMaxBytes(max int64) {
	if s == nil {
		return
	}
	s.maxBytes.Store(max)
}

// Prune evicts least-recently-used entries (by mtime; Get refreshes it) until
// the cache's total size is at most maxBytes, returning how many entries were
// removed and how many bytes were freed. maxBytes <= 0 removes everything.
// Evictions count into the store's Evicted stat. Concurrent readers are safe:
// an evicted entry simply misses and rebuilds — the usual content-addressed
// guarantee that pruning can never corrupt, only cool, the cache.
func (s *BankStore) Prune(maxBytes int64) (evicted int, freed int64, err error) {
	if s == nil {
		return 0, 0, nil
	}
	// Recency needs full-resolution mtimes: StoreEntry rounds to seconds,
	// which would tie a bank written moments ago with colder same-second
	// neighbors — and Put's write-through prune must never evict the entry
	// it just wrote while an older one survives on a key tiebreak.
	names, err := filepath.Glob(filepath.Join(s.dir, "*.bank"))
	if err != nil {
		return 0, 0, fmt.Errorf("core: bank store prune: %w", err)
	}
	type entry struct {
		path string
		size int64
		mod  time.Time
	}
	var entries []entry
	var total int64
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			continue // raced with an eviction; skip
		}
		entries = append(entries, entry{path: name, size: info.Size(), mod: info.ModTime()})
		total += info.Size()
	}
	// Oldest mtime first; ties break by path so eviction order is stable.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mod.Equal(entries[j].mod) {
			return entries[i].mod.Before(entries[j].mod)
		}
		return entries[i].path < entries[j].path
	})
	// Mapped entries are pinned: a reader may hold zero-copy views into the
	// file's pages, so the pruner never unlinks them. The bound can
	// therefore overshoot while many banks are mapped; it re-applies once
	// the store is reopened without them.
	pinned := map[string]bool{}
	s.mapMu.Lock()
	for key := range s.mapped {
		pinned[s.Path(key)] = true
	}
	s.mapMu.Unlock()
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if pinned[e.path] {
			continue
		}
		if rmErr := os.Remove(e.path); rmErr != nil {
			if os.IsNotExist(rmErr) {
				total -= e.size // raced with another pruner/evictor
				continue
			}
			return evicted, freed, fmt.Errorf("core: bank store prune: %w", rmErr)
		}
		total -= e.size
		freed += e.size
		evicted++
		s.evicted.Add(1)
	}
	return evicted, freed, nil
}

// GetOrBuild returns the cached bank for key, building and caching it on a
// miss. Concurrent calls for the same key are coalesced: exactly one caller
// runs build, the rest receive its result. Build errors are not cached.
func (s *BankStore) GetOrBuild(key string, build func() (*Bank, error)) (*Bank, error) {
	if s == nil {
		return build()
	}
	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.bank, c.err
	}
	c := &storeCall{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	defer func() {
		close(c.done)
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
	}()

	if b, err := s.Get(key); err == nil && b != nil {
		c.bank = b
		return b, nil
	}
	b, err := build()
	if err != nil {
		c.err = err
		return nil, err
	}
	s.builds.Add(1)
	if perr := s.Put(key, b); perr != nil {
		// The bank itself is good; a failed cache write (full disk,
		// read-only cache) must not fail the computation.
		c.bank = b
		return b, nil
	}
	c.bank = b
	return b, nil
}

// BoundCache applies a -cache-max-bytes style flag to a store: it installs
// the write-through size bound and prunes immediately, reporting results and
// failures through logf (a log.Printf-shaped sink). maxBytes <= 0 or a nil
// store is a no-op — callers pass the flag through unconditionally. The
// three CLIs (noisyevald, fedtune, figures) share this so prune errors are
// never silently dropped.
func BoundCache(store *BankStore, maxBytes int64, logf func(format string, args ...any)) {
	if store == nil || maxBytes <= 0 {
		return
	}
	store.SetMaxBytes(maxBytes)
	evicted, freed, err := store.Prune(maxBytes)
	switch {
	case err != nil:
		logf("cache prune: %v", err)
	case evicted > 0:
		logf("cache pruned to %d bytes: %d entries (%d bytes) evicted", maxBytes, evicted, freed)
	}
}

// StoreEntry describes one cached bank on disk.
type StoreEntry struct {
	Key     string // content address (BankKeyForPopulation)
	Bytes   int64  // encoded size on disk
	ModTime int64  // unix seconds of the entry file
}

// Entries lists the complete cache entries on disk, sorted by key. In-flight
// temp files are excluded (only atomically renamed `<key>.bank` files are
// visible entries). A nil store has no entries.
func (s *BankStore) Entries() ([]StoreEntry, error) {
	if s == nil {
		return nil, nil
	}
	names, err := filepath.Glob(filepath.Join(s.dir, "*.bank"))
	if err != nil {
		return nil, fmt.Errorf("core: bank store list: %w", err)
	}
	sort.Strings(names)
	out := make([]StoreEntry, 0, len(names))
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			continue // raced with an eviction; skip
		}
		out = append(out, StoreEntry{
			Key:     strings.TrimSuffix(filepath.Base(name), ".bank"),
			Bytes:   info.Size(),
			ModTime: info.ModTime().Unix(),
		})
	}
	return out, nil
}

// Stats returns a snapshot of the cache counters.
func (s *BankStore) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	return StoreStats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Builds:         s.builds.Load(),
		Evicted:        s.evicted.Load(),
		StaleFormat:    s.staleFormat.Load(),
		CorruptSegment: s.corruptSegment.Load(),
	}
}

// WriteAlias records oldKey as an alias of newKey, so lookups that resolve
// aliases (Resolve) find a grown bank under its pre-growth content address.
// Alias files live next to entries as <key>.alias (outside the *.bank entry
// glob) and are written atomically.
func (s *BankStore) WriteAlias(oldKey, newKey string) error {
	if s == nil {
		return fmt.Errorf("core: WriteAlias on nil bank store")
	}
	if oldKey == newKey {
		return nil
	}
	path := filepath.Join(s.dir, oldKey+".alias")
	tmp, err := os.CreateTemp(s.dir, ".aliastmp-*")
	if err != nil {
		return fmt.Errorf("core: bank store alias: %w", err)
	}
	if _, err := tmp.WriteString(newKey + "\n"); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: bank store alias: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: bank store alias: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: bank store alias: %w", err)
	}
	return nil
}

// Resolve follows alias links from key until it reaches a key with a
// concrete entry (bounded hops guard against cycles). Content-addressed
// build paths (GetOrBuild, BuildBankCached) deliberately do NOT resolve:
// an alias points at a superset bank whose content differs from what the
// old address promises. Resolution is for serving paths — peers and clients
// holding a pre-growth key still find the bank.
func (s *BankStore) Resolve(key string) string {
	if s == nil {
		return key
	}
	for hops := 0; hops < 8; hops++ {
		if s.Has(key) {
			return key
		}
		data, err := os.ReadFile(filepath.Join(s.dir, key+".alias"))
		if err != nil {
			return key
		}
		next := strings.TrimSpace(string(data))
		if next == "" || next == key {
			return key
		}
		key = next
	}
	return key
}

// BuildBankCached is BuildBank with a write-through cache: it returns the
// stored bank when the content address (BankKeyForPopulation) hits, and
// builds + stores it otherwise. The returned bool reports a cache hit. A nil
// store degrades to a plain BuildBank.
//
// When ctx carries an obs.Trace, the call records a bank.build span around
// actual training or a bank.lookup span for a cache/coalesced hit.
func BuildBankCached(ctx context.Context, store *BankStore, pop *data.Population, opts BuildOptions, seed uint64) (*Bank, bool, error) {
	tr := obs.TraceFrom(ctx)
	if store == nil {
		sp := tr.StartSpan("bank.build", "source", "local")
		b, err := BuildBank(pop, opts, seed)
		sp.End()
		return b, false, err
	}
	key := BankKeyForPopulation(pop, opts, seed)
	built := false
	start := time.Now()
	b, err := store.GetOrBuild(key, func() (*Bank, error) {
		built = true
		sp := tr.StartSpan("bank.build", "key", ShortKey(key), "source", "local")
		defer sp.End()
		return BuildBank(pop, opts, seed)
	})
	if !built {
		tr.AddSpan("bank.lookup", start, time.Since(start), "key", ShortKey(key), "hit", "true")
	}
	return b, !built && err == nil, err
}

// ShortKey abbreviates a 64-hex content address for log lines and span
// attrs; short keys pass through unchanged.
func ShortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
