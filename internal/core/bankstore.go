package core

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"noisyeval/internal/data"
)

// bankKeyVersion is bumped whenever the bank encoding or the meaning of any
// hashed field changes, invalidating all previously cached entries.
// v2: BuildOptions.BatchEval joined the key (the batched engine's summation
// order legitimately changes recorded errors).
const bankKeyVersion = "bankstore-v2"

// normalizeBuildOptions applies the same defaulting BuildBank performs, so
// that two option values which build identical banks hash identically.
// Workers is zeroed: parallelism does not affect bank content
// (TestBuildBankDeterministicAcrossParallelism). Train.BatchEval is forced
// to the authoritative BuildOptions.BatchEval so the two spellings of the
// knob can never produce distinct keys for the same build.
func normalizeBuildOptions(opts BuildOptions) BuildOptions {
	if opts.Eta < 2 {
		opts.Eta = 3
	}
	if opts.Levels < 1 {
		opts.Levels = 5
	}
	if opts.Train.ClientsPerRound == 0 {
		opts.Train = DefaultBuildOptions().Train
	}
	opts.Train.BatchEval = opts.BatchEval
	if err := opts.Space.Validate(); err != nil {
		opts.Space = DefaultBuildOptions().Space
	}
	opts.Workers = 0
	return opts
}

// BankKey returns the content address of the bank BuildBank(pop, opts, seed)
// would produce for a population generated from spec: a hex SHA-256 over the
// dataset spec, the normalized build options (including an explicit config
// pool, if any), and the seed. Construction is deterministic in exactly these
// inputs, so equal keys mean byte-identical bank content.
func BankKey(spec data.Spec, opts BuildOptions, seed uint64) string {
	opts = normalizeBuildOptions(opts)
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", bankKeyVersion)
	fmt.Fprintf(h, "spec %#v\n", spec)
	fmt.Fprintf(h, "numconfigs %d maxrounds %d eta %d levels %d\n",
		opts.NumConfigs, opts.MaxRounds, opts.Eta, opts.Levels)
	fmt.Fprintf(h, "partitions %v\n", opts.Partitions)
	fmt.Fprintf(h, "train %#v\n", opts.Train)
	fmt.Fprintf(h, "batcheval %v\n", opts.BatchEval)
	fmt.Fprintf(h, "space %#v\n", opts.Space)
	fmt.Fprintf(h, "pool %d\n", len(opts.Configs))
	for _, c := range opts.Configs {
		fmt.Fprintf(h, "%#v\n", c)
	}
	fmt.Fprintf(h, "seed %d\n", seed)
	return hex.EncodeToString(h.Sum(nil))
}

// PopulationFingerprint hashes the population's actual content (spec plus
// every client's examples), so cache keys distinguish populations that share
// a Spec but were generated differently (e.g. different generation seeds).
// Cost is one pass over the raw data — noise next to training a bank.
func PopulationFingerprint(pop *data.Population) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nspec %#v\n", bankKeyVersion, pop.Spec)
	enc := gob.NewEncoder(h)
	for _, pool := range [][]*data.Client{pop.Train, pop.Val} {
		if err := enc.Encode(pool); err != nil {
			// Clients are plain exported slices/scalars; an encode failure
			// is a programming error, never data-dependent.
			panic(fmt.Sprintf("core: population fingerprint: %v", err))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BankKeyForPopulation is BankKey bound to a concrete population: it extends
// the spec/options/seed address with the population's content fingerprint.
// BuildBankCached keys on this, so two different populations generated from
// one Spec can never collide on a cache entry.
func BankKeyForPopulation(pop *data.Population, opts BuildOptions, seed uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", BankKey(pop.Spec, opts, seed), PopulationFingerprint(pop))
	return hex.EncodeToString(h.Sum(nil))
}

// StoreStats reports cache-effectiveness counters for one BankStore.
type StoreStats struct {
	Hits    int64 // entries served from disk
	Misses  int64 // lookups that found no (valid) entry
	Builds  int64 // banks built and written through GetOrBuild
	Evicted int64 // corrupt entries removed during lookup
}

// BankStore is a content-addressed on-disk bank cache. Entries are the
// gob+gzip encoding of SaveBank, stored as <dir>/<key>.bank where key comes
// from BankKey. Writes go through a temp file plus atomic rename, so a
// crashed or concurrent writer can never leave a partial entry visible;
// corrupt entries (truncation, bit rot, format drift) are detected on load,
// evicted, and rebuilt. A nil *BankStore is valid and behaves as an always-
// miss cache, so call sites can thread an optional store without branching.
type BankStore struct {
	dir string

	mu       sync.Mutex
	inflight map[string]*storeCall

	hits, misses, builds, evicted atomic.Int64
}

// storeCall deduplicates concurrent GetOrBuild calls for one key
// (singleflight): the first caller builds, the rest wait on done.
type storeCall struct {
	done chan struct{}
	bank *Bank
	err  error
}

// NewBankStore opens (creating if needed) a bank cache rooted at dir.
func NewBankStore(dir string) (*BankStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: bank store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: bank store: %w", err)
	}
	return &BankStore{dir: dir, inflight: map[string]*storeCall{}}, nil
}

// Dir returns the cache root.
func (s *BankStore) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Path returns the on-disk location of key's entry.
func (s *BankStore) Path(key string) string {
	return filepath.Join(s.dir, key+".bank")
}

// Get returns the cached bank for key, or (nil, nil) on a miss. A corrupt
// entry is evicted and reported as a miss, never as an error: the caller can
// always rebuild. An entry that merely fails to open (transient fd/permission
// trouble) is a plain miss — content that can't be read is not evidence of
// corruption, and eviction would destroy an expensive valid artifact.
func (s *BankStore) Get(key string) (*Bank, error) {
	if s == nil {
		return nil, nil
	}
	path := s.Path(key)
	f, err := os.Open(path)
	if err != nil {
		s.misses.Add(1)
		return nil, nil
	}
	defer f.Close()
	b, err := decodeBank(f)
	if err != nil {
		// Truncated write, bit rot, or encoding drift: drop the entry and
		// treat as a miss so the caller rebuilds it.
		os.Remove(path)
		s.evicted.Add(1)
		s.misses.Add(1)
		return nil, nil
	}
	s.hits.Add(1)
	return b, nil
}

// Put writes the bank under key atomically (temp file in the cache dir, then
// rename), so readers only ever observe complete entries.
func (s *BankStore) Put(key string, b *Bank) error {
	if s == nil {
		return fmt.Errorf("core: Put on nil bank store")
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: bank store put: %w", err)
	}
	tmpPath := tmp.Name()
	tmp.Close()
	if err := SaveBank(b, tmpPath); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, s.Path(key)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("core: bank store put: %w", err)
	}
	return nil
}

// GetOrBuild returns the cached bank for key, building and caching it on a
// miss. Concurrent calls for the same key are coalesced: exactly one caller
// runs build, the rest receive its result. Build errors are not cached.
func (s *BankStore) GetOrBuild(key string, build func() (*Bank, error)) (*Bank, error) {
	if s == nil {
		return build()
	}
	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.bank, c.err
	}
	c := &storeCall{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	defer func() {
		close(c.done)
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
	}()

	if b, err := s.Get(key); err == nil && b != nil {
		c.bank = b
		return b, nil
	}
	b, err := build()
	if err != nil {
		c.err = err
		return nil, err
	}
	s.builds.Add(1)
	if perr := s.Put(key, b); perr != nil {
		// The bank itself is good; a failed cache write (full disk,
		// read-only cache) must not fail the computation.
		c.bank = b
		return b, nil
	}
	c.bank = b
	return b, nil
}

// StoreEntry describes one cached bank on disk.
type StoreEntry struct {
	Key     string // content address (BankKeyForPopulation)
	Bytes   int64  // encoded size on disk
	ModTime int64  // unix seconds of the entry file
}

// Entries lists the complete cache entries on disk, sorted by key. In-flight
// temp files are excluded (only atomically renamed `<key>.bank` files are
// visible entries). A nil store has no entries.
func (s *BankStore) Entries() ([]StoreEntry, error) {
	if s == nil {
		return nil, nil
	}
	names, err := filepath.Glob(filepath.Join(s.dir, "*.bank"))
	if err != nil {
		return nil, fmt.Errorf("core: bank store list: %w", err)
	}
	sort.Strings(names)
	out := make([]StoreEntry, 0, len(names))
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			continue // raced with an eviction; skip
		}
		out = append(out, StoreEntry{
			Key:     strings.TrimSuffix(filepath.Base(name), ".bank"),
			Bytes:   info.Size(),
			ModTime: info.ModTime().Unix(),
		})
	}
	return out, nil
}

// Stats returns a snapshot of the cache counters.
func (s *BankStore) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	return StoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Builds:  s.builds.Load(),
		Evicted: s.evicted.Load(),
	}
}

// BuildBankCached is BuildBank with a write-through cache: it returns the
// stored bank when the content address (BankKeyForPopulation) hits, and
// builds + stores it otherwise. The returned bool reports a cache hit. A nil
// store degrades to a plain BuildBank.
func BuildBankCached(store *BankStore, pop *data.Population, opts BuildOptions, seed uint64) (*Bank, bool, error) {
	if store == nil {
		b, err := BuildBank(pop, opts, seed)
		return b, false, err
	}
	key := BankKeyForPopulation(pop, opts, seed)
	built := false
	b, err := store.GetOrBuild(key, func() (*Bank, error) {
		built = true
		return BuildBank(pop, opts, seed)
	})
	return b, !built && err == nil, err
}
