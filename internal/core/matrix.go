package core

import "fmt"

// ErrMatrix is the dense error tensor at the heart of the bank: one
// contiguous []float64 arena indexed as
//
//	[partition][config][checkpoint][client]   (row-major)
//
// replacing the quadruply-nested [][][][]float64 the bank originally carried.
// Contiguity is what makes every warm path cheap: the codec writes and reads
// the whole tensor as one little-endian byte run straight into the arena,
// shard reassembly is one bulk copy per (partition, shard) block, and oracle
// reads hand out zero-allocation row views over memory the prefetcher likes.
//
// The exported fields exist for encoding; treat a populated matrix as
// immutable and go through Row/At for access.
type ErrMatrix struct {
	// Parts, Configs, Checkpoints, Clients are the tensor dimensions.
	Parts, Configs, Checkpoints, Clients int
	// Data is the arena, len = Parts*Configs*Checkpoints*Clients.
	Data []float64
}

// NewErrMatrix allocates a zeroed dense matrix with the given dimensions.
func NewErrMatrix(parts, configs, checkpoints, clients int) ErrMatrix {
	return ErrMatrix{
		Parts: parts, Configs: configs, Checkpoints: checkpoints, Clients: clients,
		Data: make([]float64, parts*configs*checkpoints*clients),
	}
}

// Row returns the per-client error vector of (partition pi, config ci,
// checkpoint ri) as a view into the arena. The slice is owned by the matrix;
// callers must not modify it.
func (m *ErrMatrix) Row(pi, ci, ri int) []float64 {
	off := ((pi*m.Configs+ci)*m.Checkpoints + ri) * m.Clients
	return m.Data[off : off+m.Clients : off+m.Clients]
}

// At returns one element; the bounds checks are the slice expression's.
func (m *ErrMatrix) At(pi, ci, ri, k int) float64 { return m.Row(pi, ci, ri)[k] }

// ConfigBlock returns the contiguous sub-arena covering configs [lo, hi) of
// partition pi — every checkpoint and client of those configs. Shard
// reassembly copies blocks, never rows.
func (m *ErrMatrix) ConfigBlock(pi, lo, hi int) []float64 {
	stride := m.Checkpoints * m.Clients
	off := (pi*m.Configs + lo) * stride
	end := (pi*m.Configs + hi) * stride
	return m.Data[off:end:end]
}

// Validate checks dimensional integrity: non-negative dims and an arena of
// exactly the implied length.
func (m *ErrMatrix) Validate() error {
	if m.Parts < 0 || m.Configs < 0 || m.Checkpoints < 0 || m.Clients < 0 {
		return fmt.Errorf("core: err matrix has negative dimension %dx%dx%dx%d",
			m.Parts, m.Configs, m.Checkpoints, m.Clients)
	}
	if want := m.Parts * m.Configs * m.Checkpoints * m.Clients; len(m.Data) != want {
		return fmt.Errorf("core: err matrix arena has %d floats, want %d (%dx%dx%dx%d)",
			len(m.Data), want, m.Parts, m.Configs, m.Checkpoints, m.Clients)
	}
	return nil
}

// CheckShape verifies the matrix has exactly the given dimensions (and a
// consistent arena).
func (m *ErrMatrix) CheckShape(parts, configs, checkpoints, clients int) error {
	if m.Parts != parts || m.Configs != configs || m.Checkpoints != checkpoints || m.Clients != clients {
		return fmt.Errorf("core: err matrix is %dx%dx%dx%d, want %dx%dx%dx%d",
			m.Parts, m.Configs, m.Checkpoints, m.Clients, parts, configs, checkpoints, clients)
	}
	return m.Validate()
}
