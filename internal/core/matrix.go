package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ErrMatrix is the dense error tensor at the heart of the bank: one
// contiguous []float64 arena indexed as
//
//	[partition][config][checkpoint][client]   (row-major)
//
// replacing the quadruply-nested [][][][]float64 the bank originally carried.
// Contiguity is what makes every warm path cheap: the codec writes and reads
// the whole tensor as one little-endian byte run straight into the arena,
// shard reassembly is one bulk copy per (partition, shard) block, and oracle
// reads hand out zero-allocation row views over memory the prefetcher likes.
//
// Backing store: a matrix is either heap-backed (Data holds the canonical
// arena, segs nil — every matrix built or decoded before bankfmt/v4) or
// segment-backed (segs cover contiguous config ranges, each a view into an
// mmap'd v4 arena segment laid out [partition][config-lo][checkpoint][client]).
// Row/At/ConfigBlock dispatch on the backing, so oracle reads are
// bit-identical either way; Arena materializes the canonical order when a
// single flat slice is needed (encoding, fingerprinting).
//
// The exported fields exist for encoding; treat a populated matrix as
// immutable and go through Row/At for access.
type ErrMatrix struct {
	// Parts, Configs, Checkpoints, Clients are the tensor dimensions.
	Parts, Configs, Checkpoints, Clients int
	// Data is the arena, len = Parts*Configs*Checkpoints*Clients. Nil when
	// the matrix is segment-backed.
	Data []float64
	// segs, when non-nil, back the matrix with per-config-range blocks
	// (sorted, contiguous from config 0). Set only by the v4 mapped-open
	// path.
	segs []errSeg
}

// errSeg is one config-range backing block of a segment-backed matrix:
// configs [lo, hi) of every partition, laid out [part][config-lo][ckpt][client]
// — the BankShard layout, which for the full range [0, Configs) equals the
// canonical arena order.
type errSeg struct {
	lo, hi int
	data   []float64
}

// NewErrMatrix allocates a zeroed dense matrix with the given dimensions.
func NewErrMatrix(parts, configs, checkpoints, clients int) ErrMatrix {
	return ErrMatrix{
		Parts: parts, Configs: configs, Checkpoints: checkpoints, Clients: clients,
		Data: make([]float64, parts*configs*checkpoints*clients),
	}
}

// newSegmentedMatrix wires a matrix over per-range backing blocks without
// copying them (the v4 mapped-open path). Ranges must be sorted and cover
// [0, configs) contiguously; Validate enforces it.
func newSegmentedMatrix(parts, configs, checkpoints, clients int, segs []errSeg) ErrMatrix {
	return ErrMatrix{
		Parts: parts, Configs: configs, Checkpoints: checkpoints, Clients: clients,
		segs: segs,
	}
}

// Segmented reports whether the matrix is backed by per-range segments
// rather than one canonical heap arena.
func (m *ErrMatrix) Segmented() bool { return m.segs != nil }

// Row returns the per-client error vector of (partition pi, config ci,
// checkpoint ri) as a view into the arena. The slice is owned by the matrix;
// callers must not modify it.
func (m *ErrMatrix) Row(pi, ci, ri int) []float64 {
	if m.segs != nil {
		return m.segRow(pi, ci, ri)
	}
	off := ((pi*m.Configs+ci)*m.Checkpoints + ri) * m.Clients
	return m.Data[off : off+m.Clients : off+m.Clients]
}

// segRow resolves a row in a segment-backed matrix: a linear scan over the
// (few — one per growth step) segments, then the shard-layout offset within
// the owning block. Zero allocations; segments are sorted so the first with
// ci < hi owns the config.
func (m *ErrMatrix) segRow(pi, ci, ri int) []float64 {
	for si := range m.segs {
		s := &m.segs[si]
		if ci < s.hi {
			off := ((pi*(s.hi-s.lo)+(ci-s.lo))*m.Checkpoints + ri) * m.Clients
			return s.data[off : off+m.Clients : off+m.Clients]
		}
	}
	panic(fmt.Sprintf("core: config %d outside segmented matrix of %d configs", ci, m.Configs))
}

// At returns one element; the bounds checks are the slice expression's.
func (m *ErrMatrix) At(pi, ci, ri, k int) float64 { return m.Row(pi, ci, ri)[k] }

// ConfigBlock returns the contiguous sub-arena covering configs [lo, hi) of
// partition pi — every checkpoint and client of those configs. Shard
// reassembly copies blocks, never rows. On a segment-backed matrix the
// requested range must lie within one backing segment (growth ranges are
// segment-granular, so every caller's range does).
func (m *ErrMatrix) ConfigBlock(pi, lo, hi int) []float64 {
	if m.segs != nil {
		for si := range m.segs {
			s := &m.segs[si]
			if lo >= s.lo && hi <= s.hi {
				stride := m.Checkpoints * m.Clients
				n := s.hi - s.lo
				off := (pi*n + (lo - s.lo)) * stride
				end := (pi*n + (hi - s.lo)) * stride
				return s.data[off:end:end]
			}
		}
		panic(fmt.Sprintf("core: config block [%d,%d) spans segment boundaries", lo, hi))
	}
	stride := m.Checkpoints * m.Clients
	off := (pi*m.Configs + lo) * stride
	end := (pi*m.Configs + hi) * stride
	return m.Data[off:end:end]
}

// Arena returns the matrix content as one canonical [part][config][ckpt][client]
// arena. Heap-backed matrices return Data directly (no copy); segment-backed
// ones materialize a fresh canonical copy — encoding and fingerprinting go
// through this, so a mapped bank encodes byte-identically to its heap twin.
func (m *ErrMatrix) Arena() []float64 {
	if m.segs == nil {
		return m.Data
	}
	out := ErrMatrix{
		Parts: m.Parts, Configs: m.Configs, Checkpoints: m.Checkpoints, Clients: m.Clients,
		Data: make([]float64, m.Parts*m.Configs*m.Checkpoints*m.Clients),
	}
	for si := range m.segs {
		s := &m.segs[si]
		for pi := 0; pi < m.Parts; pi++ {
			copy(out.ConfigBlock(pi, s.lo, s.hi), m.ConfigBlock(pi, s.lo, s.hi))
		}
	}
	return out.Data
}

// Validate checks dimensional integrity: non-negative dims and backing of
// exactly the implied length — one canonical arena, or segments that cover
// [0, Configs) contiguously with correctly sized blocks.
func (m *ErrMatrix) Validate() error {
	if m.Parts < 0 || m.Configs < 0 || m.Checkpoints < 0 || m.Clients < 0 {
		return fmt.Errorf("core: err matrix has negative dimension %dx%dx%dx%d",
			m.Parts, m.Configs, m.Checkpoints, m.Clients)
	}
	if m.segs != nil {
		next := 0
		for i, s := range m.segs {
			if s.lo != next || s.hi <= s.lo {
				return fmt.Errorf("core: err matrix segment %d covers [%d,%d), want to start at %d", i, s.lo, s.hi, next)
			}
			if want := m.Parts * (s.hi - s.lo) * m.Checkpoints * m.Clients; len(s.data) != want {
				return fmt.Errorf("core: err matrix segment %d has %d floats, want %d", i, len(s.data), want)
			}
			next = s.hi
		}
		if next != m.Configs {
			return fmt.Errorf("core: err matrix segments cover %d configs, want %d", next, m.Configs)
		}
		return nil
	}
	if want := m.Parts * m.Configs * m.Checkpoints * m.Clients; len(m.Data) != want {
		return fmt.Errorf("core: err matrix arena has %d floats, want %d (%dx%dx%dx%d)",
			len(m.Data), want, m.Parts, m.Configs, m.Checkpoints, m.Clients)
	}
	return nil
}

// GobEncode canonicalizes the backing store for gob (BankFingerprint hashes
// banks through gob): a segment-backed matrix encodes exactly like its
// heap-backed twin — dimensions then the canonical arena, little-endian.
func (m ErrMatrix) GobEncode() ([]byte, error) {
	arena := m.Arena()
	out := make([]byte, 0, 32+8*len(arena))
	var buf [8]byte
	for _, d := range [...]int{m.Parts, m.Configs, m.Checkpoints, m.Clients} {
		binary.LittleEndian.PutUint64(buf[:], uint64(d))
		out = append(out, buf[:]...)
	}
	for _, v := range arena {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		out = append(out, buf[:]...)
	}
	return out, nil
}

// GobDecode is the inverse of GobEncode; decoded matrices are always
// heap-backed.
func (m *ErrMatrix) GobDecode(data []byte) error {
	if len(data) < 32 || (len(data)-32)%8 != 0 {
		return fmt.Errorf("core: gob err matrix has %d bytes", len(data))
	}
	dims := make([]int, 4)
	for i := range dims {
		v := binary.LittleEndian.Uint64(data[i*8:])
		if v > math.MaxInt32 {
			return fmt.Errorf("core: gob err matrix dimension %d overflows", v)
		}
		dims[i] = int(v)
	}
	m.Parts, m.Configs, m.Checkpoints, m.Clients = dims[0], dims[1], dims[2], dims[3]
	m.segs = nil
	m.Data = make([]float64, (len(data)-32)/8)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[32+i*8:]))
	}
	return m.Validate()
}

// CheckShape verifies the matrix has exactly the given dimensions (and a
// consistent arena).
func (m *ErrMatrix) CheckShape(parts, configs, checkpoints, clients int) error {
	if m.Parts != parts || m.Configs != configs || m.Checkpoints != checkpoints || m.Clients != clients {
		return fmt.Errorf("core: err matrix is %dx%dx%dx%d, want %dx%dx%dx%d",
			m.Parts, m.Configs, m.Checkpoints, m.Clients, parts, configs, checkpoints, clients)
	}
	return m.Validate()
}
