package core

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"noisyeval/internal/data"
	"noisyeval/internal/fl"
	"noisyeval/internal/obs"
	"noisyeval/internal/rng"
)

// gobBankV2 mirrors the pre-bankfmt bank layout: nested error slices,
// serialized as gzipped gob. Tests use it to plant legacy cache entries and
// to pin the size and speed comparisons the refactor claims.
type gobBankV2 struct {
	SpecName      string
	Seed          uint64
	Configs       []fl.HParams
	Rounds        []int
	Partitions    []float64
	Errs          [][][][]float64
	ExampleCounts [][]int
	Diverged      []bool
}

// legacyEncode renders b exactly as the old SaveBank did: gob of the
// nested-slice struct, wrapped in one gzip member.
func legacyEncode(t testing.TB, b *Bank) []byte {
	t.Helper()
	lb := gobBankV2{
		SpecName:      b.SpecName,
		Seed:          b.Seed,
		Configs:       b.Configs,
		Rounds:        b.Rounds,
		Partitions:    b.Partitions,
		ExampleCounts: b.ExampleCounts,
		Diverged:      b.Diverged,
	}
	lb.Errs = make([][][][]float64, b.Errs.Parts)
	for pi := range lb.Errs {
		lb.Errs[pi] = make([][][]float64, b.Errs.Configs)
		for ci := range lb.Errs[pi] {
			lb.Errs[pi][ci] = make([][]float64, b.Errs.Checkpoints)
			for ri := range lb.Errs[pi][ci] {
				lb.Errs[pi][ci][ri] = append([]float64(nil), b.Errs.Row(pi, ci, ri)...)
			}
		}
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(&lb); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeBankBytes(t testing.TB, b *Bank) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBank(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBankCodecRoundTrip(t *testing.T) {
	b, _ := tinyBank(t)
	raw := encodeBankBytes(t, b)
	got, err := DecodeBank(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecName != b.SpecName || got.Seed != b.Seed {
		t.Error("metadata lost in round trip")
	}
	if len(got.Configs) != len(b.Configs) || got.Configs[3] != b.Configs[3] {
		t.Error("configs lost in round trip")
	}
	if fmt.Sprint(got.Rounds) != fmt.Sprint(b.Rounds) || fmt.Sprint(got.Partitions) != fmt.Sprint(b.Partitions) {
		t.Error("rounds/partitions lost in round trip")
	}
	if fmt.Sprint(got.ExampleCounts) != fmt.Sprint(b.ExampleCounts) {
		t.Error("example counts lost in round trip")
	}
	if !bytes.Equal(float64Bytes(got.Errs.Data), float64Bytes(b.Errs.Data)) {
		t.Error("error arena changed in round trip")
	}
	// Deterministic: encoding the same content twice yields the same bytes
	// (what byte-identity of sharded vs local builds rests on).
	if !bytes.Equal(raw, encodeBankBytes(t, b)) {
		t.Error("bank encoding is not deterministic")
	}
}

// TestBankCodecRobustness drives every corruption class through DecodeBank
// and requires a clean error — never a panic, never a silently wrong bank.
func TestBankCodecRobustness(t *testing.T) {
	b, _ := tinyBank(t)
	raw := encodeBankBytes(t, b)

	mutate := func(f func(c []byte) []byte) []byte {
		c := append([]byte(nil), raw...)
		return f(c)
	}
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": raw[:bankfmtHeaderLen-7],
		"truncated meta":   raw[:bankfmtHeaderLen+3],
		"truncated floats": raw[:len(raw)-9],
		"wrong magic": mutate(func(c []byte) []byte {
			copy(c[0:6], "XXBANK")
			return c
		}),
		"shard magic on bank path": mutate(func(c []byte) []byte {
			copy(c[0:6], shardMagic[:])
			return c
		}),
		"corrupted header (meta length)": mutate(func(c []byte) []byte {
			binary.LittleEndian.PutUint32(c[12:16], 1<<30)
			return c
		}),
		"corrupted header (float count mismatch)": mutate(func(c []byte) []byte {
			binary.LittleEndian.PutUint64(c[16:24], 7)
			return c
		}),
		"corrupted header (meta CRC)": mutate(func(c []byte) []byte {
			c[25] ^= 0xff
			return c
		}),
		"corrupted payload (early)": mutate(func(c []byte) []byte {
			c[bankfmtHeaderLen+16] ^= 0xff
			return c
		}),
		"corrupted payload (late)": mutate(func(c []byte) []byte {
			c[len(c)-20] ^= 0xff
			return c
		}),
		"trailing truncation to header only": raw[:bankfmtHeaderLen],
	}
	for name, payload := range cases {
		if _, err := DecodeBank(bytes.NewReader(payload)); err == nil {
			t.Errorf("%s: decode accepted corrupt payload", name)
		}
	}
}

func TestBankCodecFormatGenerations(t *testing.T) {
	b, _ := tinyBank(t)

	// Legacy gob+gzip bytes must be recognized as a stale format, not as
	// generic corruption: the BankStore rebuilds them silently.
	if _, err := DecodeBank(bytes.NewReader(legacyEncode(t, b))); !errors.Is(err, ErrLegacyBankFormat) {
		t.Errorf("legacy bytes: err = %v, want ErrLegacyBankFormat", err)
	}
	if !IsStaleBankFormat(ErrLegacyBankFormat) || !IsStaleBankFormat(ErrUnknownBankVersion) {
		t.Error("IsStaleBankFormat must cover both stale generations")
	}
	if IsStaleBankFormat(errors.New("core: bank metadata checksum mismatch")) {
		t.Error("corruption misclassified as stale format")
	}

	raw := encodeBankBytes(t, b)
	// Version 4 is the segmented format (bankv4.go), so the first FUTURE
	// generation is 5: it must classify as stale, not as corruption.
	future := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint16(future[6:8], bankfmtVersion+2)
	if _, err := DecodeBank(bytes.NewReader(future)); !errors.Is(err, ErrUnknownBankVersion) {
		t.Errorf("future version: err = %v, want ErrUnknownBankVersion", err)
	}
	// A v3 frame restamped as v4 routes to the segment layer and fails its
	// header checksum — located corruption, not a stale format.
	fakeV4 := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint16(fakeV4[6:8], bankfmtVersion+1)
	var ce *CorruptError
	if _, err := DecodeBank(bytes.NewReader(fakeV4)); !errors.As(err, &ce) || IsStaleBankFormat(err) {
		t.Errorf("v3 frame restamped v4: err = %v, want CorruptError", err)
	}
	flagged := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(flagged[8:12], knownFlags|0x80)
	if _, err := DecodeBank(bytes.NewReader(flagged)); !errors.Is(err, ErrUnknownBankVersion) {
		t.Errorf("unknown flag: err = %v, want ErrUnknownBankVersion", err)
	}
}

func TestShardCodecRoundTripAndRobustness(t *testing.T) {
	pop, opts, seed := shardTestInputs(t)
	plan, err := NewBuildPlan(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := plan.TrainRange(1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeShard(&buf, sh); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	back, err := DecodeShard(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Lo != sh.Lo || back.Hi != sh.Hi {
		t.Fatalf("range drifted: [%d, %d)", back.Lo, back.Hi)
	}
	if err := back.Validate(plan); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(float64Bytes(back.Errs.Data), float64Bytes(sh.Errs.Data)) {
		t.Error("shard arena changed in round trip")
	}

	if _, err := DecodeShard(bytes.NewReader(raw[:len(raw)-5]), 0); err == nil {
		t.Error("truncated shard accepted")
	}
	small := int64(sh.Errs.Parts*sh.Errs.Configs*sh.Errs.Checkpoints*sh.Errs.Clients*8 - 8)
	if _, err := DecodeShard(bytes.NewReader(raw), small); err == nil {
		t.Error("shard exceeding the arena cap accepted")
	}
	wrongKind := append([]byte(nil), raw...)
	copy(wrongKind[0:6], bankMagic[:])
	if _, err := DecodeShard(bytes.NewReader(wrongKind), 0); err == nil {
		t.Error("bank magic accepted on the shard path")
	}
}

// TestEncodedBankNotLargerThanLegacy pins the size acceptance criterion:
// bankfmt/v3 must not regress the on-disk footprint relative to the gob+gzip
// format it replaces (measured on a real trained bank).
func TestEncodedBankNotLargerThanLegacy(t *testing.T) {
	b, _ := tinyBank(t)
	newLen, oldLen := len(encodeBankBytes(t, b)), len(legacyEncode(t, b))
	t.Logf("bankfmt/v3 %d bytes, legacy gob+gzip %d bytes (%.2fx)", newLen, oldLen, float64(newLen)/float64(oldLen))
	if newLen > oldLen {
		t.Errorf("bankfmt/v3 encoding (%d bytes) larger than legacy gob+gzip (%d bytes)", newLen, oldLen)
	}
}

func TestBankStoreStaleFormatEvictedAndRebuilt(t *testing.T) {
	b := storeBank(t)
	store, err := NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	store.Log = obs.NewLogger(&logBuf, obs.LevelInfo).Named("bankstore")
	key := BankKey(tinySpec(), tinyBuildOptions(), 7)

	// Plant a legacy v2 gob+gzip entry exactly where the current key lives —
	// what a cache dir left over from a pre-refactor build looks like.
	if err := os.WriteFile(store.Path(key), legacyEncode(t, b), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(key)
	if err != nil || got != nil {
		t.Fatalf("stale-format Get = %v, %v; want clean miss", got, err)
	}
	if _, err := os.Stat(store.Path(key)); !os.IsNotExist(err) {
		t.Error("stale-format entry not evicted")
	}
	st := store.Stats()
	if st.StaleFormat != 1 || st.Evicted != 1 {
		t.Errorf("stats = %+v, want StaleFormat=1 Evicted=1", st)
	}
	if logLine := logBuf.String(); strings.Count(logLine, "event=bank_evict") != 1 ||
		!strings.Contains(logLine, "reason=stale_format") {
		t.Errorf("stale eviction not logged: %q", logLine)
	}

	// GetOrBuild transparently rebuilds and re-stores in the new format.
	builds := 0
	got, err = store.GetOrBuild(key, func() (*Bank, error) {
		builds++
		return b, nil
	})
	if err != nil || got == nil || builds != 1 {
		t.Fatalf("rebuild after stale format: bank=%v err=%v builds=%d", got != nil, err, builds)
	}
	raw, err := os.ReadFile(store.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, bankMagic[:]) {
		t.Error("rebuilt entry not in bankfmt/v3")
	}

	// A genuinely corrupt entry still evicts without the stale stat moving.
	if err := os.WriteFile(store.Path(key), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Get(key); err != nil || got != nil {
		t.Fatalf("corrupt Get = %v, %v; want clean miss", got, err)
	}
	if st := store.Stats(); st.StaleFormat != 1 || st.Evicted != 2 {
		t.Errorf("stats after corruption = %+v, want StaleFormat=1 Evicted=2", st)
	}
}

// failAfterWriter passes through n bytes, then fails every write.
type failAfterWriter struct {
	w    io.Writer
	left int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, fmt.Errorf("injected write failure")
	}
	if len(p) > f.left {
		n, _ := f.w.Write(p[:f.left])
		f.left = 0
		return n, fmt.Errorf("injected write failure")
	}
	f.left -= len(p)
	return f.w.Write(p)
}

func TestSaveBankFailureCleansUpTemp(t *testing.T) {
	b := storeBank(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "bank.bank")

	// Establish a good artifact first: a failed re-save must not disturb it.
	if err := SaveBank(b, path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	saveWriterHook = func(w io.Writer) io.Writer { return &failAfterWriter{w: w, left: 100} }
	defer func() { saveWriterHook = nil }()
	if err := SaveBank(b, path); err == nil {
		t.Fatal("SaveBank succeeded through a failing writer")
	}
	saveWriterHook = nil

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "bank.bank" {
			t.Errorf("leftover file after failed save: %s", e.Name())
		}
	}
	after, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(before, after) {
		t.Errorf("failed save disturbed the existing artifact (err=%v)", err)
	}

	// And a clean save still round-trips.
	if err := SaveBank(b, path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBank(path); err != nil {
		t.Fatal(err)
	}
}

// FuzzBankDecode asserts DecodeBank never panics and never returns a bank
// that fails validation, whatever bytes arrive. The seed corpus (testdata)
// covers a valid encoding plus every mutation class the robustness test
// exercises.
func FuzzBankDecode(f *testing.F) {
	opts := tinyBuildOptions()
	opts.NumConfigs, opts.MaxRounds = 2, 3
	// A tiny real bank as the valid seed (fuzzing mutates from here).
	pop := data.MustGenerate(tinySpec(), rng.New(1))
	b, err := BuildBank(pop, opts, 3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeBank(&buf, b); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:bankfmtHeaderLen])
	f.Add(raw[:len(raw)/2])
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00}) // legacy gzip magic
	corrupt := append([]byte(nil), raw...)
	corrupt[9] ^= 0x40
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBank(bytes.NewReader(data))
		if err == nil {
			if b == nil {
				t.Fatal("nil bank without error")
			}
			if verr := b.Validate(); verr != nil {
				t.Fatalf("decoded bank fails validation: %v", verr)
			}
		}
	})
}
