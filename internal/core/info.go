package core

// Bank file inspection: the structured view behind `cmd/bank -info`. It
// reads headers and segment tables without materializing a heap arena, so
// inspecting a large v4 bank costs one mmap plus per-segment CRC sweeps.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"noisyeval/internal/core/bankseg"
)

// SegmentInfo describes one segment of a bankfmt/v4 file.
type SegmentInfo struct {
	Index  int    // position in the file walk
	Kind   string // "arena" | "commit" | "unknown(n)"
	Seq    uint64 // sequence number
	Lo, Hi int    // config range (arena segments; 0,0 otherwise)
	Offset int64  // file offset of the segment header
	Bytes  int64  // payload length
	CRCOK  bool   // payload checksum verified
	Live   bool   // named by the authoritative commit (or is that commit)
}

// BankInfo is the inspection report for one bank file of any generation.
type BankInfo struct {
	Path    string
	Version int      // 0 = legacy gob+gzip, 3, or 4
	Flags   []string // v3 flag names
	Dims    [4]int   // partitions, configs, checkpoints, clients

	SpecName string
	Seed     uint64

	FileBytes  int64 // on-disk size
	ArenaBytes int64 // mapped/decoded error-arena size (dims product × 8)

	MetaBytes  int   // v3: metadata section length
	FloatCount int64 // v3: bulk section float count

	Segments []SegmentInfo // v4: full segment table
	Torn     string        // v4: where the segment walk stopped early, if it did
}

// InspectBank reads path's headers (and, for v4, its segment table with
// per-segment CRC status) without requiring the bank to be loadable — a
// torn or corrupt file still yields a report describing what is intact.
func InspectBank(path string) (*BankInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: inspect bank: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("core: inspect bank: %w", err)
	}
	info := &BankInfo{Path: path, FileBytes: fi.Size()}
	var prefix [8]byte
	n, _ := io.ReadFull(f, prefix[:])
	switch {
	case n >= 2 && prefix[0] == 0x1f && prefix[1] == 0x8b:
		info.Version = 0 // legacy gob+gzip: opaque beyond the magic
		return info, nil
	case bankseg.SniffV4(prefix[:n]):
		f.Close()
		return inspectV4(info)
	default:
		return inspectV3(info, f)
	}
}

func inspectV3(info *BankInfo, f *os.File) (*BankInfo, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("core: inspect bank: %w", err)
	}
	var h [bankfmtHeaderLen]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		return nil, fmt.Errorf("core: inspect bank: header truncated: %w", err)
	}
	if [6]byte(h[0:6]) != bankMagic {
		return nil, fmt.Errorf("core: inspect bank: not a bank file (magic %x)", h[0:6])
	}
	info.Version = int(binary.LittleEndian.Uint16(h[6:8]))
	flags := binary.LittleEndian.Uint32(h[8:12])
	for _, fl := range []struct {
		bit  uint32
		name string
	}{{flagPayloadGzip, "gzip"}, {flagDictFloats, "dict"}, {flagPackedIndices, "packed"}} {
		if flags&fl.bit != 0 {
			info.Flags = append(info.Flags, fl.name)
		}
	}
	info.MetaBytes = int(binary.LittleEndian.Uint32(h[12:16]))
	info.FloatCount = int64(binary.LittleEndian.Uint64(h[16:24]))
	info.ArenaBytes = info.FloatCount * 8
	// Dimensions live in the (possibly compressed) metadata; a full decode
	// is the only honest way to read them, and doubles as a CRC check.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("core: inspect bank: %w", err)
	}
	b, err := decodeBank(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return info, fmt.Errorf("core: inspect bank: %w", err)
	}
	fillBankDims(info, b)
	return info, nil
}

func inspectV4(info *BankInfo) (*BankInfo, error) {
	sf, err := bankseg.Open(info.Path)
	if err != nil {
		return nil, wrapSegmentErr(info.Path, err)
	}
	defer sf.Close()
	info.Version = bankseg.Version
	if torn := sf.Torn(); torn != nil {
		info.Torn = torn.Error()
	}
	segs := sf.Segments()
	commitIdx := -1
	for i := range segs {
		s := &segs[i]
		si := SegmentInfo{
			Index:  i,
			Seq:    s.Seq,
			Offset: s.Offset,
			Bytes:  int64(len(s.Payload)),
			CRCOK:  s.VerifyPayload() == nil,
		}
		switch s.Kind {
		case segKindArena:
			si.Kind = "arena"
			si.Lo, si.Hi = arenaTagRange(s.Tag)
		case segKindCommit:
			si.Kind = "commit"
			if si.CRCOK {
				commitIdx = i
			}
		default:
			si.Kind = fmt.Sprintf("unknown(%d)", s.Kind)
		}
		info.Segments = append(info.Segments, si)
	}
	if commitIdx < 0 {
		return info, v4Corrupt(info.Path, 0, bankseg.FileHeaderLen, "no intact commit segment")
	}
	dir, b, err := parseV4Commit(segs[commitIdx].Payload)
	if err != nil {
		return info, v4Corrupt(info.Path, commitIdx, segs[commitIdx].Offset, "commit segment: %w", err)
	}
	info.Segments[commitIdx].Live = true
	live := map[uint64]bool{}
	for _, e := range dir {
		live[e.seq] = true
	}
	for i := range info.Segments {
		if i < commitIdx && live[info.Segments[i].Seq] {
			info.Segments[i].Live = true
		}
	}
	clients := 0
	if len(b.ExampleCounts) > 0 {
		clients = len(b.ExampleCounts[0])
	}
	info.SpecName, info.Seed = b.SpecName, b.Seed
	info.Dims = [4]int{len(b.Partitions), len(b.Configs), len(b.Rounds), clients}
	info.ArenaBytes = int64(len(b.Partitions)) * int64(len(b.Configs)) * int64(len(b.Rounds)) * int64(clients) * 8
	return info, nil
}

func fillBankDims(info *BankInfo, b *Bank) {
	info.SpecName, info.Seed = b.SpecName, b.Seed
	info.Dims = [4]int{b.Errs.Parts, b.Errs.Configs, b.Errs.Checkpoints, b.Errs.Clients}
}
