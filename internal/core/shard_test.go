package core

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"noisyeval/internal/data"
)

// shardTestInputs returns the miniature build the shard tests share.
func shardTestInputs(t testing.TB) (*data.Population, BuildOptions, uint64) {
	opts := DefaultBuildOptions()
	opts.NumConfigs = 5
	opts.MaxRounds = 9
	opts.Partitions = []float64{0.5}
	return goldenImagePop(t), opts, 7
}

// TestShardedBuildByteIdentical is the dist determinism pin: a bank
// assembled from range shards — trained independently, in scrambled order,
// with uneven split points — must be byte-identical to a single-process
// BuildBank of the same (population, options, seed): same BankKey inputs,
// same content hash, and the same bankfmt/v3 encoding (the acceptance
// criterion of the cluster protocol).
func TestShardedBuildByteIdentical(t *testing.T) {
	pop, opts, seed := shardTestInputs(t)

	local, err := BuildBank(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := NewBuildPlan(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumConfigs() != opts.NumConfigs {
		t.Fatalf("plan has %d configs, want %d", plan.NumConfigs(), opts.NumConfigs)
	}
	// Uneven ranges, trained and assembled out of order — exactly what a
	// fleet with heterogeneous workers produces.
	var shards []*BankShard
	for _, r := range [][2]int{{3, 5}, {0, 2}, {2, 3}} {
		sh, err := plan.TrainRange(r[0], r[1], 2)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sh)
	}
	assembled, err := AssembleBank(plan, shards)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := hashBankContent(assembled), hashBankContent(local); got != want {
		t.Fatalf("assembled bank content differs from local build:\n got %s\nwant %s", got, want)
	}
	if got, want := BankFingerprint(assembled), BankFingerprint(local); got != want {
		t.Fatalf("assembled bank fingerprint differs: %s vs %s", got, want)
	}

	// Encoded-bytes identity: the exact artifact the BankStore persists and
	// peers serve must match, not just the in-memory numbers.
	dir := t.TempDir()
	encode := func(name string, b *Bank) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := SaveBank(b, path); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	lb, ab := encode("local.bank", local), encode("assembled.bank", assembled)
	if !bytes.Equal(lb, ab) {
		t.Fatalf("bankfmt encodings differ: local %x, assembled %x",
			sha256.Sum256(lb), sha256.Sum256(ab))
	}
}

// TestTrainRangeDeterministicPerRange verifies a re-trained range reproduces
// itself exactly (what makes duplicate/late shard completions trivially
// safe to accept from any worker).
func TestTrainRangeDeterministicPerRange(t *testing.T) {
	pop, opts, seed := shardTestInputs(t)
	plan, err := NewBuildPlan(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.TrainRange(1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan.TrainRange(1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Errs.Data {
		if a.Errs.Data[i] != b.Errs.Data[i] {
			t.Fatalf("arena float %d differs across retrains", i)
		}
	}
}

// TestAssembleBankRejectsBadCoverage pins the assembly guards: gaps,
// overlaps, and shape drift must all fail loudly rather than produce a
// silently wrong bank.
func TestAssembleBankRejectsBadCoverage(t *testing.T) {
	pop, opts, seed := shardTestInputs(t)
	plan, err := NewBuildPlan(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := plan.TrainRange(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := plan.TrainRange(2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := plan.TrainRange(4, 5, 0)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		shards []*BankShard
	}{
		{"gap", []*BankShard{lo, hi}},
		{"overlap", []*BankShard{lo, lo, mid, hi}},
		{"missing tail", []*BankShard{lo, mid}},
		{"empty", nil},
	}
	for _, tc := range cases {
		if _, err := AssembleBank(plan, tc.shards); err == nil {
			t.Errorf("%s: AssembleBank accepted invalid coverage", tc.name)
		}
	}

	// Shape drift: a shard claiming the right range with truncated rounds.
	bad := &BankShard{
		Lo: 4, Hi: 5, Diverged: []bool{false},
		Errs: NewErrMatrix(lo.Errs.Parts, 1, 0, lo.Errs.Clients),
	}
	if _, err := AssembleBank(plan, []*BankShard{lo, mid, bad}); err == nil {
		t.Error("AssembleBank accepted a malformed shard")
	}
}

// TestShardRanges pins the shard splitting arithmetic.
func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, size int
		want    [][2]int
	}{
		{5, 2, [][2]int{{0, 2}, {2, 4}, {4, 5}}},
		{4, 2, [][2]int{{0, 2}, {2, 4}}},
		{3, 0, [][2]int{{0, 3}}},
		{3, 10, [][2]int{{0, 3}}},
		{1, 1, [][2]int{{0, 1}}},
	}
	for _, tc := range cases {
		got := ShardRanges(tc.n, tc.size)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("ShardRanges(%d, %d) = %v, want %v", tc.n, tc.size, got, tc.want)
		}
	}
}

// TestNewBuildPlanValidates pins input validation (shared with BuildBank).
func TestNewBuildPlanValidates(t *testing.T) {
	pop, opts, seed := shardTestInputs(t)
	bad := opts
	bad.NumConfigs = 0
	if _, err := NewBuildPlan(pop, bad, seed); err == nil {
		t.Error("NewBuildPlan accepted NumConfigs = 0")
	}
	bad = opts
	bad.MaxRounds = 0
	if _, err := NewBuildPlan(pop, bad, seed); err == nil {
		t.Error("NewBuildPlan accepted MaxRounds = 0")
	}
	plan, err := NewBuildPlan(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 2}, {0, 6}, {3, 3}, {4, 2}} {
		if _, err := plan.TrainRange(r[0], r[1], 0); err == nil {
			t.Errorf("TrainRange(%d, %d) accepted an invalid range", r[0], r[1])
		}
	}
}
