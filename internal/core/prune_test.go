package core

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// pruneStore builds a store holding n tiny banks with strictly increasing
// mtimes (backdated so LRU order is unambiguous regardless of filesystem
// timestamp granularity). Returns the store and the keys oldest-first.
func pruneStore(t *testing.T, n int) (*BankStore, []string) {
	t.Helper()
	store, err := NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pop := goldenImagePop(t)
	opts := DefaultBuildOptions()
	opts.NumConfigs = 1
	opts.MaxRounds = 3
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		b, err := BuildBank(pop, opts, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = fmt.Sprintf("bank%02d", i)
		if err := store.Put(keys[i], b); err != nil {
			t.Fatal(err)
		}
		mtime := time.Now().Add(time.Duration(i-n) * time.Hour)
		if err := os.Chtimes(store.Path(keys[i]), mtime, mtime); err != nil {
			t.Fatal(err)
		}
	}
	return store, keys
}

func storeSize(t *testing.T, s *BankStore) int64 {
	t.Helper()
	entries, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		total += e.Bytes
	}
	return total
}

// TestPruneEvictsOldestFirst pins the LRU-by-mtime policy and the evicted
// stat: pruning to roughly half the cache keeps the newest entries and
// removes exactly the oldest ones.
func TestPruneEvictsOldestFirst(t *testing.T) {
	store, keys := pruneStore(t, 4)
	total := storeSize(t, store)
	entries, _ := store.Entries()
	per := total / int64(len(entries))

	evicted, freed, err := store.Prune(total - per) // must drop exactly one
	if err != nil {
		t.Fatal(err)
	}
	if evicted < 1 {
		t.Fatalf("evicted = %d, want >= 1", evicted)
	}
	if freed <= 0 {
		t.Fatalf("freed = %d, want > 0", freed)
	}
	if got := store.Stats().Evicted; got != int64(evicted) {
		t.Errorf("Evicted stat = %d, want %d", got, evicted)
	}
	// The oldest entries go first; the newest must survive.
	if _, err := os.Stat(store.Path(keys[0])); !os.IsNotExist(err) {
		t.Error("oldest entry survived a prune that evicted entries")
	}
	if _, err := os.Stat(store.Path(keys[len(keys)-1])); err != nil {
		t.Errorf("newest entry was pruned: %v", err)
	}
	if got := storeSize(t, store); got > total-per {
		t.Errorf("size after prune = %d, want <= %d", got, total-per)
	}
}

// TestPruneZeroRemovesEverything: a non-positive bound empties the cache.
func TestPruneZeroRemovesEverything(t *testing.T) {
	store, _ := pruneStore(t, 3)
	evicted, _, err := store.Prune(0)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 3 {
		t.Fatalf("evicted = %d, want 3", evicted)
	}
	if entries, _ := store.Entries(); len(entries) != 0 {
		t.Fatalf("%d entries survived Prune(0)", len(entries))
	}
}

// TestPruneUnderBoundIsNoop: a cache already within budget loses nothing.
func TestPruneUnderBoundIsNoop(t *testing.T) {
	store, _ := pruneStore(t, 2)
	total := storeSize(t, store)
	evicted, freed, err := store.Prune(total + 1)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 0 || freed != 0 {
		t.Fatalf("Prune over budget evicted %d entries (%d bytes)", evicted, freed)
	}
}

// TestGetRefreshesLRU: reading an old entry must move it to the back of the
// eviction order — that is what makes mtime order an LRU, not a FIFO.
func TestGetRefreshesLRU(t *testing.T) {
	store, keys := pruneStore(t, 3)
	if b, err := store.Get(keys[0]); err != nil || b == nil {
		t.Fatalf("Get(%s) = %v, %v", keys[0], b, err)
	}
	total := storeSize(t, store)
	entries, _ := store.Entries()
	per := total / int64(len(entries))
	if _, _, err := store.Prune(total - per); err != nil {
		t.Fatal(err)
	}
	// keys[0] was just read, so keys[1] is now the coldest.
	if _, err := os.Stat(store.Path(keys[0])); err != nil {
		t.Error("recently read entry was pruned (mtime not refreshed on Get)")
	}
	if _, err := os.Stat(store.Path(keys[1])); !os.IsNotExist(err) {
		t.Error("coldest unread entry survived")
	}
}

// TestPutAutoPrunes: with SetMaxBytes, the cache self-bounds on writes and
// a nil store stays inert.
func TestPutAutoPrunes(t *testing.T) {
	store, _ := pruneStore(t, 2)
	total := storeSize(t, store)
	entries, _ := store.Entries()
	per := total / int64(len(entries))
	store.SetMaxBytes(2 * per)

	pop := goldenImagePop(t)
	opts := DefaultBuildOptions()
	opts.NumConfigs = 1
	opts.MaxRounds = 3
	b, err := BuildBank(pop, opts, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("fresh", b); err != nil {
		t.Fatal(err)
	}
	if got := storeSize(t, store); got > 2*per+per/2 {
		t.Errorf("size after auto-pruning Put = %d, want about %d", got, 2*per)
	}
	if _, err := os.Stat(store.Path("fresh")); err != nil {
		t.Errorf("freshly written entry was pruned: %v", err)
	}

	var nilStore *BankStore
	nilStore.SetMaxBytes(1) // must not panic
	if n, _, err := nilStore.Prune(1); n != 0 || err != nil {
		t.Errorf("nil store Prune = %d, %v", n, err)
	}
}
