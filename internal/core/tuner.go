package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"noisyeval/internal/dp"
	"noisyeval/internal/eval"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// Noise is the experiment-facing description of an evaluation-noise setting,
// combining every source the paper studies. The zero value is the noiseless
// reference (full weighted evaluation, no bias, no privacy, natural
// partition).
type Noise struct {
	// SampleCount is the raw number of validation clients per evaluation
	// (0 = full pool). SampleFraction is used when SampleCount == 0.
	SampleCount    int
	SampleFraction float64
	// Bias is the systems-heterogeneity exponent b (0 = uniform).
	Bias float64
	// Epsilon is the total DP budget (0 or +Inf = non-private).
	Epsilon float64
	// HeterogeneityP selects the bank's iid-repartition fraction p
	// (0 = natural non-iid partition).
	HeterogeneityP float64
	// Uniform forces uniform (non-weighted) aggregation even without DP.
	Uniform bool
}

// Noiseless is the reference setting.
func Noiseless() Noise { return Noise{} }

// Scheme converts the noise description to an evaluation scheme. DP is
// handled by tuning methods (hpo.Settings.Epsilon), not the evaluator, so
// the scheme carries subsampling/bias/weighting only.
func (n Noise) Scheme() eval.Scheme {
	weighted := !n.Uniform && !n.Private()
	return eval.Scheme{
		Count:    n.SampleCount,
		Fraction: n.SampleFraction,
		Weighted: weighted,
		Bias:     n.Bias,
	}
}

// Private reports whether DP noise applies.
func (n Noise) Private() bool {
	return n.Epsilon > 0 && n.Epsilon != dp.InfEpsilon
}

// Settings folds the noise's DP budget into tuning settings.
func (n Noise) Settings(base hpo.Settings) hpo.Settings {
	s := base.Normalize()
	if n.Private() {
		s.Epsilon = n.Epsilon
	} else {
		s.Epsilon = dp.InfEpsilon
	}
	return s
}

// String renders the noise setting for experiment logs.
func (n Noise) String() string {
	sample := "full"
	if n.SampleCount > 0 {
		sample = fmt.Sprintf("%d clients", n.SampleCount)
	} else if n.SampleFraction > 0 && n.SampleFraction < 1 {
		sample = fmt.Sprintf("%.2g%% clients", n.SampleFraction*100)
	}
	eps := "inf"
	if n.Private() {
		eps = fmt.Sprintf("%g", n.Epsilon)
	}
	return fmt.Sprintf("sample=%s bias=%g eps=%s p=%g", sample, n.Bias, eps, n.HeterogeneityP)
}

// Tuner runs one tuning method against one oracle — the top-level object a
// downstream user interacts with.
type Tuner struct {
	Method   hpo.Method
	Space    hpo.Space
	Settings hpo.Settings
	// SequentialTrials forces the legacy one-goroutine-per-trial execution
	// of RunTrials instead of the block scheduler (DESIGN.md §14). The two
	// paths produce bit-identical results — this is an operational escape
	// hatch (-blocked-trials=false on the daemons), not a semantic knob.
	SequentialTrials bool
}

// Run executes a single tuning run.
func (t Tuner) Run(oracle hpo.Oracle, g *rng.RNG) *hpo.History {
	return t.Method.Run(oracle, t.Space, t.Settings, g)
}

// TrialResult is the outcome of one bootstrap trial.
type TrialResult struct {
	Trial   int
	History *hpo.History
	// FinalTrue is the true full-validation error of the final
	// recommendation.
	FinalTrue float64
}

// RunTrials runs n independent bootstrap trials of the tuner on a bank
// oracle. Trial i draws its method randomness from the RNG stream
// g.Split("trial-i") and its evaluation cohorts from the "trial-i" salt, so
// results are deterministic and independent of scheduling. By default trials
// execute on the block scheduler (runTrialsBlocked), which drives all n
// method coroutines in waves and evaluates each touched arena row once per
// wave; SequentialTrials selects the legacy per-trial-goroutine path. Both
// produce bit-identical results (TestRunTrialsBlockedMatchesSequential).
func (t Tuner) RunTrials(oracle *BankOracle, n int, g *rng.RNG) []TrialResult {
	return t.RunTrialsProgress(oracle, n, g, nil)
}

// RunTrialsProgress is RunTrials with per-trial progress reporting: onTrial
// (when non-nil) is invoked once per finished trial — in completion order,
// serialized, so the callback needs no synchronization of its own — with
// that trial's result and the number of trials completed so far. The
// returned slice is identical to RunTrials: progress observation never
// perturbs results.
func (t Tuner) RunTrialsProgress(oracle *BankOracle, n int, g *rng.RNG, onTrial func(res TrialResult, completed int)) []TrialResult {
	if !t.SequentialTrials {
		return t.runTrialsBlocked(oracle, n, g, onTrial)
	}
	results := make([]TrialResult, n)
	workers := runtime.GOMAXPROCS(0)
	m := metricsInstruments()
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	var progressMu sync.Mutex
	completed := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			o := oracle.WithTrial(i)
			start := time.Now()
			h := t.Run(o, g.Splitf("trial-%d", i))
			m.TrialSeconds.Observe(time.Since(start).Seconds())
			m.TrialsTotal.Inc()
			res := TrialResult{Trial: i, History: h, FinalTrue: 1}
			if rec, ok := h.Recommend(); ok {
				res.FinalTrue = rec.True
			}
			results[i] = res
			if onTrial != nil {
				progressMu.Lock()
				completed++
				onTrial(res, completed)
				progressMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return results
}

// FinalErrors extracts the per-trial final true errors.
func FinalErrors(results []TrialResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.FinalTrue
	}
	return out
}

// CurveAt extracts the per-trial true-error values at one budget point.
func CurveAt(results []TrialResult, budget int) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.History.TrueErrorCurve([]int{budget})[0]
	}
	return out
}
