package core

import (
	"math"
	"testing"

	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// TestMethodNoiseMatrix is the integration sweep: every tuning method runs
// against the tiny bank under every noise family, and each run must produce
// a valid recommendation within budget. This is the compatibility contract
// between internal/hpo and internal/core.
func TestMethodNoiseMatrix(t *testing.T) {
	b, _ := tinyBank(t)
	methods := map[string]hpo.Method{
		"rs":      hpo.RandomSearch{},
		"grid":    hpo.GridSearch{},
		"tpe":     hpo.TPE{},
		"sha":     hpo.SuccessiveHalving{N: 9, R0: 3},
		"hb":      hpo.Hyperband{},
		"bohb":    hpo.BOHB{},
		"reeval":  hpo.ResampledRS{Reps: 2},
		"noisybo": hpo.NoisyBO{},
	}
	noises := map[string]Noise{
		"noiseless":  {},
		"subsample":  {SampleCount: 1},
		"bias":       {SampleCount: 3, Bias: 3},
		"dp":         {SampleCount: 3, Epsilon: 1},
		"hetero":     {SampleCount: 3, HeterogeneityP: 0.5},
		"everything": {SampleCount: 1, Bias: 1.5, Epsilon: 10, HeterogeneityP: 1},
	}
	budget := hpo.Budget{TotalRounds: 12 * 27, MaxPerConfig: 27, K: 6}
	for mName, m := range methods {
		for nName, noise := range noises {
			t.Run(mName+"/"+nName, func(t *testing.T) {
				oracle, err := NewBankOracle(b, noise.HeterogeneityP, noise.Scheme(), 1)
				if err != nil {
					t.Fatal(err)
				}
				tn := Tuner{Method: m, Space: hpo.DefaultSpace(), Settings: noise.Settings(hpo.Settings{Budget: budget})}
				h := tn.Run(oracle.WithTrial(0), rng.New(11).Split(mName+nName))
				if len(h.Observations) == 0 {
					t.Fatal("no observations")
				}
				if h.RoundsConsumed() > budget.TotalRounds {
					t.Errorf("budget exceeded: %d > %d", h.RoundsConsumed(), budget.TotalRounds)
				}
				rec, ok := h.Recommend()
				if !ok {
					t.Fatal("no recommendation")
				}
				if rec.True < 0 || rec.True > 1 || math.IsNaN(rec.True) {
					t.Errorf("true error = %v", rec.True)
				}
				// Every observed config must be a bank member (bank mode).
				for _, obs := range h.Observations {
					if _, err := b.ConfigIndex(obs.Config); err != nil {
						t.Fatalf("non-pool config proposed: %v", err)
					}
				}
			})
		}
	}
}

// TestProxyMethodOnBanks runs one-shot proxy RS between two partitions of
// the same bank (stand-ins for two datasets sharing a config pool).
func TestProxyMethodOnBanks(t *testing.T) {
	b, _ := tinyBank(t)
	proxyOracle, err := NewBankOracle(b, 1, Noiseless().Scheme(), 1) // iid partition as "proxy"
	if err != nil {
		t.Fatal(err)
	}
	clientOracle, err := NewBankOracle(b, 0, Noiseless().Scheme(), 1)
	if err != nil {
		t.Fatal(err)
	}
	m := hpo.OneShotProxyRS{Proxy: proxyOracle}
	h := m.Run(clientOracle, hpo.DefaultSpace(), hpo.Settings{
		Budget: hpo.Budget{TotalRounds: 27 * 6, MaxPerConfig: 27, K: 6},
	}, rng.New(13))
	rec, ok := h.Recommend()
	if !ok {
		t.Fatal("no recommendation")
	}
	if rec.Rounds != b.MaxRounds() {
		t.Errorf("recommendation fidelity = %d", rec.Rounds)
	}
}

// TestTrialParallelismInvariance verifies trial results do not depend on
// GOMAXPROCS-driven scheduling (regression guard for the worker pool).
func TestTrialParallelismInvariance(t *testing.T) {
	b, _ := tinyBank(t)
	oracle, err := NewBankOracle(b, 0, Noise{SampleCount: 2}.Scheme(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tn := Tuner{
		Method:   hpo.Hyperband{},
		Space:    hpo.DefaultSpace(),
		Settings: hpo.Settings{Budget: hpo.Budget{TotalRounds: 12 * 27, MaxPerConfig: 27, K: 6}}.Normalize(),
	}
	run := func() []float64 {
		return FinalErrors(tn.RunTrials(oracle, 12, rng.New(17).Split("par")))
	}
	a, c := run(), run()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("trial %d differs across runs: %v vs %v", i, a[i], c[i])
		}
	}
}

// TestBankOracleErrorPaths exercises panics on foreign configs.
func TestBankOracleErrorPaths(t *testing.T) {
	b, _ := tinyBank(t)
	oracle, err := NewBankOracle(b, 0, Noiseless().Scheme(), 1)
	if err != nil {
		t.Fatal(err)
	}
	foreign := hpo.DefaultSpace().Sample(rng.New(999))
	for name, fn := range map[string]func(){
		"evaluate":  func() { oracle.Evaluate(foreign, 27, "x") },
		"trueError": func() { oracle.TrueError(foreign, 27) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic for foreign config", name)
				}
			}()
			fn()
		}()
	}
}

// TestNoiseMatrixDegradation spot-checks the headline ordering at tiny
// scale: combined noise should not make tuning better than noiseless,
// measured by median over bootstrap trials.
func TestNoiseMatrixDegradation(t *testing.T) {
	b, _ := tinyBank(t)
	budget := hpo.Budget{TotalRounds: 8 * 27, MaxPerConfig: 27, K: 8}
	med := func(noise Noise) float64 {
		oracle, err := NewBankOracle(b, noise.HeterogeneityP, noise.Scheme(), 1)
		if err != nil {
			t.Fatal(err)
		}
		tn := Tuner{Method: hpo.RandomSearch{}, Space: hpo.DefaultSpace(), Settings: noise.Settings(hpo.Settings{Budget: budget})}
		return median(FinalErrors(tn.RunTrials(oracle, 40, rng.New(19).Splitf("deg-%s", noise))))
	}
	clean := med(Noise{})
	dirty := med(Noise{SampleCount: 1, Epsilon: 1})
	if dirty < clean-1e-9 {
		t.Errorf("combined noise median %.4f beats noiseless %.4f", dirty, clean)
	}
}
