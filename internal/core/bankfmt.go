package core

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"unsafe"

	"noisyeval/internal/fl"
)

// This file implements bankfmt/v3, the versioned binary encoding of banks and
// bank shards. It replaces the original gob+gzip codec on every path a bank
// is stored or shipped: BankStore entries, SaveBank/LoadBank artifacts, the
// dist shard wire format, and peer bank transfers.
//
// Layout (all integers little-endian):
//
//	header (48 bytes, fixed, never compressed):
//	  [ 0: 6]  magic  "NEBANK" (banks) / "NESHRD" (shards)
//	  [ 6: 8]  format version, uint16 (currently 3)
//	  [ 8:12]  flags, uint32 (bits: gzip payload, dict bulk, packed indices)
//	  [12:16]  metadata section length, uint32 (uncompressed bytes)
//	  [16:24]  float count, uint64 (number of float64s in the bulk section)
//	  [24:28]  CRC-32C of the metadata section
//	  [28:32]  CRC-32C of the bulk section's raw little-endian bytes
//	  [32:48]  reserved, must be zero on encode, ignored on decode
//	payload:
//	  metadata section: hand-rolled binary (appendBankMeta/parseBankMeta)
//	  bulk section, one of:
//	    raw:         the ErrMatrix arena as little-endian float64s
//	    dictionary:  u32 table length, the sorted distinct values as
//	                 little-endian float64s, then one index per element —
//	                 uint16 each, or bit-packed at the minimal width when
//	                 the packed flag is set
//	  The gzip flag wraps the payload in one gzip member — except the
//	  packed index stream, which always follows the member raw (its entropy
//	  defeats flate; inflating it would dominate decode for no size win).
//
// The encoder renders the dictionary candidates and keeps the smallest
// encoding, so the artifact is never larger than the old whole-bank gzip.
// Decode is a header parse, a small metadata parse, and a single bulk read
// straight into the arena — near-zero allocations beyond the arena itself.
// On little-endian machines the bulk read lands directly in the arena's
// memory (zero-copy); a portable chunked-conversion path covers big-endian
// hosts.
//
// Version policy: the version field is bumped on any incompatible layout
// change. Decoders reject unknown versions and unknown flag bits with
// ErrUnknownBankVersion, and recognize the old gob+gzip encoding (gzip magic
// in the header position) as ErrLegacyBankFormat; the BankStore treats both
// as stale cache entries to evict and rebuild, never as user-facing errors.

const (
	bankfmtVersion   = 3
	bankfmtHeaderLen = 48

	// flagPayloadGzip marks a gzip-compressed payload (metadata + bulk
	// section in one member). Encoders compress by default: the old
	// whole-artifact gzip must not be beaten on size.
	flagPayloadGzip = 1 << 0
	// flagDictFloats marks a dictionary-coded bulk section: a sorted table
	// of the distinct float64 values followed by one uint16 index per
	// element, instead of raw floats. Recorded errors are small-denominator
	// fractions (k misclassified of n examples), so a whole bank typically
	// holds a few hundred distinct values — the index stream is 4x smaller
	// than the raw image, which makes the decode-side inflate (the dominant
	// warm-path cost) proportionally cheaper. Encoders fall back to raw
	// floats automatically when the value set exceeds the table range.
	flagDictFloats = 1 << 1
	// flagPackedIndices marks dictionary indices bit-packed at the minimal
	// width for the table size, stored raw AFTER the gzip member (packed
	// bits are near-incompressible, and skipping inflate for the dominant
	// section is what makes big-bank decode a bulk memory read).
	flagPackedIndices = 1 << 2
	knownFlags        = flagPayloadGzip | flagDictFloats | flagPackedIndices

	// maxDictSize is the value-table capacity of dictionary mode (uint16
	// index space).
	maxDictSize = 1 << 16

	// maxBankMetaBytes bounds the metadata allocation a hostile or corrupt
	// header can demand. Real metadata is a few KB (configs + rounds +
	// example counts); 64 MB leaves orders of magnitude of headroom.
	maxBankMetaBytes = 64 << 20

	// maxBankFloatBytes bounds the arena allocation for full banks (peer
	// transfers and store entries). A paper-scale bank (3 partitions x 128
	// configs x 6 checkpoints x 10k clients) is ~184 MB; 8 GB is the same
	// two-orders-of-magnitude headroom the dist wire caps use.
	maxBankFloatBytes = 8 << 30
)

var (
	bankMagic  = [6]byte{'N', 'E', 'B', 'A', 'N', 'K'}
	shardMagic = [6]byte{'N', 'E', 'S', 'H', 'R', 'D'}

	castagnoli = crc32.MakeTable(crc32.Castagnoli)

	// ErrLegacyBankFormat reports bytes in the pre-v3 gob+gzip encoding.
	ErrLegacyBankFormat = errors.New("core: legacy bank encoding (pre-bankfmt/v3 gob+gzip)")
	// ErrUnknownBankVersion reports a bankfmt stream from a future (or
	// corrupted-into-unknown) format version or with unknown flag bits.
	ErrUnknownBankVersion = errors.New("core: unknown bank format version")
)

// IsStaleBankFormat reports whether err means "valid artifact, wrong
// encoding generation" — a legacy gob+gzip entry or a future format version.
// The BankStore evicts and rebuilds such entries instead of erroring.
func IsStaleBankFormat(err error) bool {
	return errors.Is(err, ErrLegacyBankFormat) || errors.Is(err, ErrUnknownBankVersion)
}

// nativeLittleEndian selects the zero-copy bulk path: on little-endian hosts
// the arena's memory already is the wire image.
var nativeLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// float64Bytes views a float64 slice as its in-memory bytes (no copy).
func float64Bytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(f))), len(f)*8)
}

// floatConvChunk is the portable path's conversion buffer size, in floats.
const floatConvChunk = 8192

// crcFloats returns the CRC-32C of data's little-endian byte image.
func crcFloats(data []float64) uint32 {
	if nativeLittleEndian {
		return crc32.Update(0, castagnoli, float64Bytes(data))
	}
	var crc uint32
	buf := make([]byte, floatConvChunk*8)
	for len(data) > 0 {
		n := min(floatConvChunk, len(data))
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(data[i]))
		}
		crc = crc32.Update(crc, castagnoli, buf[:n*8])
		data = data[n:]
	}
	return crc
}

// writeFloats writes data to w as little-endian float64s in one run.
func writeFloats(w io.Writer, data []float64) error {
	if nativeLittleEndian {
		_, err := w.Write(float64Bytes(data))
		return err
	}
	buf := make([]byte, floatConvChunk*8)
	for len(data) > 0 {
		n := min(floatConvChunk, len(data))
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(data[i]))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// readFloats fills data from r's little-endian float64 stream in one run.
func readFloats(r io.Reader, data []float64) error {
	if nativeLittleEndian {
		_, err := io.ReadFull(r, float64Bytes(data))
		return err
	}
	buf := make([]byte, floatConvChunk*8)
	for len(data) > 0 {
		n := min(floatConvChunk, len(data))
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		data = data[n:]
	}
	return nil
}

// --- metadata section primitives ---

func appendU32(b []byte, v uint32) []byte  { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte  { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte   { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

// metaReader parses a metadata section with a sticky error: after the first
// truncation every subsequent read returns zero values, and the caller checks
// r.err once at the end. Count fields are validated against the remaining
// bytes BEFORE any allocation, so corrupt lengths fail cleanly instead of
// demanding absurd memory.
type metaReader struct {
	b   []byte
	off int
	err error
}

func (r *metaReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("core: bankfmt metadata truncated at %s (offset %d of %d)", what, r.off, len(r.b))
	}
}

func (r *metaReader) take(n int, what string) []byte {
	if r.err != nil || n < 0 || len(r.b)-r.off < n {
		r.fail(what)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *metaReader) u32(what string) uint32 {
	if b := r.take(4, what); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *metaReader) u64(what string) uint64 {
	if b := r.take(8, what); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *metaReader) i64(what string) int64   { return int64(r.u64(what)) }
func (r *metaReader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

// count reads a u32 element count and verifies the remaining bytes can hold
// it at elemSize bytes per element.
func (r *metaReader) count(elemSize int, what string) int {
	n := int(r.u32(what))
	if r.err == nil && (n < 0 || elemSize > 0 && n > (len(r.b)-r.off)/elemSize) {
		r.fail(what + " length")
	}
	if r.err != nil {
		return 0
	}
	return n
}

func (r *metaReader) str(what string) string {
	n := r.count(1, what)
	return string(r.take(n, what))
}

func (r *metaReader) done() error {
	if r.err == nil && r.off != len(r.b) {
		return fmt.Errorf("core: bankfmt metadata has %d trailing bytes", len(r.b)-r.off)
	}
	return r.err
}

// --- bank metadata ---

// hparamsFloats is the number of float64 fields serialized per config.
const hparamsFloats = 7

func appendHParams(b []byte, c fl.HParams) []byte {
	b = appendF64(b, c.ServerLR)
	b = appendF64(b, c.Beta1)
	b = appendF64(b, c.Beta2)
	b = appendF64(b, c.LRDecay)
	b = appendF64(b, c.ClientLR)
	b = appendF64(b, c.ClientMomentum)
	b = appendF64(b, c.WeightDecay)
	b = appendI64(b, int64(c.BatchSize))
	b = appendI64(b, int64(c.Epochs))
	return b
}

func (r *metaReader) hparams() fl.HParams {
	return fl.HParams{
		ServerLR:       r.f64("config"),
		Beta1:          r.f64("config"),
		Beta2:          r.f64("config"),
		LRDecay:        r.f64("config"),
		ClientLR:       r.f64("config"),
		ClientMomentum: r.f64("config"),
		WeightDecay:    r.f64("config"),
		BatchSize:      int(r.i64("config")),
		Epochs:         int(r.i64("config")),
	}
}

func appendBankMeta(buf []byte, b *Bank) []byte {
	buf = appendU32(buf, uint32(len(b.SpecName)))
	buf = append(buf, b.SpecName...)
	buf = appendU64(buf, b.Seed)
	buf = appendU32(buf, uint32(len(b.Configs)))
	for _, c := range b.Configs {
		buf = appendHParams(buf, c)
	}
	buf = appendU32(buf, uint32(len(b.Rounds)))
	for _, r := range b.Rounds {
		buf = appendI64(buf, int64(r))
	}
	buf = appendU32(buf, uint32(len(b.Partitions)))
	for _, p := range b.Partitions {
		buf = appendF64(buf, p)
	}
	buf = appendU32(buf, uint32(len(b.ExampleCounts)))
	if len(b.ExampleCounts) > 0 {
		buf = appendU32(buf, uint32(len(b.ExampleCounts[0])))
	} else {
		buf = appendU32(buf, 0)
	}
	for _, row := range b.ExampleCounts {
		for _, n := range row {
			buf = appendI64(buf, int64(n))
		}
	}
	buf = appendU32(buf, uint32(len(b.Diverged)))
	for _, d := range b.Diverged {
		if d {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// parseBankMeta rebuilds the bank skeleton (everything but the error arena)
// from a metadata section.
func parseBankMeta(meta []byte) (*Bank, error) {
	r := &metaReader{b: meta}
	b := &Bank{}
	b.SpecName = r.str("spec name")
	b.Seed = r.u64("seed")
	const hparamsBytes = hparamsFloats*8 + 16
	nc := r.count(hparamsBytes, "configs")
	b.Configs = make([]fl.HParams, nc)
	if raw := r.take(nc*hparamsBytes, "configs"); raw != nil {
		for i := range b.Configs {
			f := raw[i*hparamsBytes:]
			b.Configs[i] = fl.HParams{
				ServerLR:       math.Float64frombits(binary.LittleEndian.Uint64(f[0:])),
				Beta1:          math.Float64frombits(binary.LittleEndian.Uint64(f[8:])),
				Beta2:          math.Float64frombits(binary.LittleEndian.Uint64(f[16:])),
				LRDecay:        math.Float64frombits(binary.LittleEndian.Uint64(f[24:])),
				ClientLR:       math.Float64frombits(binary.LittleEndian.Uint64(f[32:])),
				ClientMomentum: math.Float64frombits(binary.LittleEndian.Uint64(f[40:])),
				WeightDecay:    math.Float64frombits(binary.LittleEndian.Uint64(f[48:])),
				BatchSize:      int(int64(binary.LittleEndian.Uint64(f[56:]))),
				Epochs:         int(int64(binary.LittleEndian.Uint64(f[64:]))),
			}
		}
	}
	nr := r.count(8, "rounds")
	b.Rounds = make([]int, nr)
	for i := range b.Rounds {
		b.Rounds[i] = int(r.i64("round"))
	}
	np := r.count(8, "partitions")
	b.Partitions = make([]float64, np)
	for i := range b.Partitions {
		b.Partitions[i] = r.f64("partition")
	}
	rows := r.count(4, "example count rows")
	cols := int(r.u32("example count cols"))
	if r.err == nil && (cols < 0 || rows > 0 && cols > (len(r.b)-r.off)/(8*rows)) {
		r.fail("example count cols")
	}
	if raw := r.take(rows*cols*8, "example counts"); raw != nil {
		b.ExampleCounts = make([][]int, rows)
		flat := make([]int, rows*cols)
		for k := range flat {
			flat[k] = int(int64(binary.LittleEndian.Uint64(raw[k*8:])))
		}
		for i := range b.ExampleCounts {
			b.ExampleCounts[i] = flat[i*cols : (i+1)*cols]
		}
	}
	nd := r.count(1, "diverged")
	b.Diverged = make([]bool, nd)
	for i, v := range r.take(nd, "diverged") {
		b.Diverged[i] = v != 0
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return b, nil
}

// --- shard metadata ---

func appendShardMeta(buf []byte, sh *BankShard) []byte {
	buf = appendI64(buf, int64(sh.Lo))
	buf = appendI64(buf, int64(sh.Hi))
	buf = appendU32(buf, uint32(sh.Errs.Parts))
	buf = appendU32(buf, uint32(sh.Errs.Checkpoints))
	buf = appendU32(buf, uint32(sh.Errs.Clients))
	buf = appendU32(buf, uint32(len(sh.Diverged)))
	for _, d := range sh.Diverged {
		if d {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

func parseShardMeta(meta []byte) (*BankShard, error) {
	r := &metaReader{b: meta}
	sh := &BankShard{}
	sh.Lo = int(r.i64("lo"))
	sh.Hi = int(r.i64("hi"))
	parts := int(r.u32("parts"))
	checkpoints := int(r.u32("checkpoints"))
	clients := int(r.u32("clients"))
	nd := r.count(1, "diverged")
	sh.Diverged = make([]bool, nd)
	for i, v := range r.take(nd, "diverged") {
		sh.Diverged[i] = v != 0
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if sh.Lo < 0 || sh.Hi <= sh.Lo {
		return nil, fmt.Errorf("core: shard range [%d, %d) invalid", sh.Lo, sh.Hi)
	}
	n := sh.Hi - sh.Lo
	if len(sh.Diverged) != n {
		return nil, fmt.Errorf("core: shard diverged length %d, want %d", len(sh.Diverged), n)
	}
	if parts < 0 || checkpoints < 0 || clients < 0 {
		return nil, fmt.Errorf("core: shard dims %dx%dx%dx%d invalid", parts, n, checkpoints, clients)
	}
	sh.Errs = ErrMatrix{Parts: parts, Configs: n, Checkpoints: checkpoints, Clients: clients}
	return sh, nil
}

// --- framing ---

func encodeHeader(magic [6]byte, flags uint32, metaLen int, floatCount int, metaCRC, floatCRC uint32) [bankfmtHeaderLen]byte {
	var h [bankfmtHeaderLen]byte
	copy(h[0:6], magic[:])
	binary.LittleEndian.PutUint16(h[6:8], bankfmtVersion)
	binary.LittleEndian.PutUint32(h[8:12], flags)
	binary.LittleEndian.PutUint32(h[12:16], uint32(metaLen))
	binary.LittleEndian.PutUint64(h[16:24], uint64(floatCount))
	binary.LittleEndian.PutUint32(h[24:28], metaCRC)
	binary.LittleEndian.PutUint32(h[28:32], floatCRC)
	return h
}

// tryBuildDict returns a deterministic sorted value table plus a
// bits-to-index lookup when data holds at most maxDictSize distinct values,
// or (nil, nil) to signal the raw-float fallback. The table is sorted by
// float bit pattern, never by map iteration order, so the encoding stays a
// pure function of content (byte-identity across processes).
func tryBuildDict(data []float64) ([]float64, map[uint64]uint16) {
	lut := make(map[uint64]uint16, 1024)
	for _, v := range data {
		b := math.Float64bits(v)
		if _, ok := lut[b]; !ok {
			if len(lut) >= maxDictSize {
				return nil, nil
			}
			lut[b] = 0
		}
	}
	keys := make([]uint64, 0, len(lut))
	for k := range lut {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	table := make([]float64, len(keys))
	for i, k := range keys {
		table[i] = math.Float64frombits(k)
		lut[k] = uint16(i)
	}
	return table, lut
}

// indexWidth returns the packed bit width for a table of n values: the
// smallest w with 2^w >= n (0 when every element is the single table value).
func indexWidth(n int) int {
	w := 0
	for 1<<w < n {
		w++
	}
	return w
}

// writeU16Indices writes one little-endian uint16 dictionary index per
// element (chunked, no per-element writes).
func writeU16Indices(w io.Writer, data []float64, lut map[uint64]uint16) error {
	buf := make([]byte, floatConvChunk*2)
	for len(data) > 0 {
		c := min(floatConvChunk, len(data))
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint16(buf[i*2:], lut[math.Float64bits(data[i])])
		}
		if _, err := w.Write(buf[:c*2]); err != nil {
			return err
		}
		data = data[c:]
	}
	return nil
}

// readU16Indices expands a uint16 index stream into the arena, bounds-
// checking every index against the table.
func readU16Indices(src io.Reader, arena, table []float64, kind string) error {
	n := uint32(len(table))
	buf := make([]byte, floatConvChunk*2)
	for len(arena) > 0 {
		c := min(floatConvChunk, len(arena))
		if _, err := io.ReadFull(src, buf[:c*2]); err != nil {
			return fmt.Errorf("core: %s index stream truncated: %w", kind, err)
		}
		for i := 0; i < c; i++ {
			ix := binary.LittleEndian.Uint16(buf[i*2:])
			if uint32(ix) >= n {
				return fmt.Errorf("core: %s index %d outside %d-value dictionary", kind, ix, n)
			}
			arena[i] = table[ix]
		}
		arena = arena[c:]
	}
	return nil
}

// appendPackedIndices appends data's dictionary indices bit-packed LSB-first
// at the given width.
func appendPackedIndices(buf []byte, data []float64, lut map[uint64]uint16, width int) []byte {
	if width == 0 {
		return buf
	}
	var acc uint64
	nbits := 0
	for _, v := range data {
		acc |= uint64(lut[math.Float64bits(v)]) << nbits
		nbits += width
		for nbits >= 8 {
			buf = append(buf, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		buf = append(buf, byte(acc))
	}
	return buf
}

// readPackedIndices fills the arena from a bit-packed index stream — the
// big-bank fast path: one bulk read plus shift-mask expansion, no inflate.
func readPackedIndices(r io.Reader, arena, table []float64, kind string) error {
	width := indexWidth(len(table))
	if width == 0 {
		if len(table) == 0 {
			if len(arena) == 0 {
				return nil
			}
			return fmt.Errorf("core: %s dictionary empty for %d elements", kind, len(arena))
		}
		v := table[0]
		for i := range arena {
			arena[i] = v
		}
		return nil
	}
	total := (len(arena)*width + 7) / 8
	buf := make([]byte, min(max(total, 1), floatConvChunk*2))
	var acc uint64
	nbits := 0
	mask := uint64(1)<<width - 1
	ai := 0
	for total > 0 {
		c := min(total, len(buf))
		if _, err := io.ReadFull(r, buf[:c]); err != nil {
			return fmt.Errorf("core: %s index stream truncated: %w", kind, err)
		}
		total -= c
		for _, b := range buf[:c] {
			acc |= uint64(b) << nbits
			nbits += 8
			for nbits >= width && ai < len(arena) {
				ix := acc & mask
				if ix >= uint64(len(table)) {
					return fmt.Errorf("core: %s index %d outside %d-value dictionary", kind, ix, len(table))
				}
				arena[ai] = table[ix]
				ai++
				acc >>= width
				nbits -= width
			}
		}
	}
	if ai != len(arena) {
		return fmt.Errorf("core: %s index stream short: %d of %d elements", kind, ai, len(arena))
	}
	return nil
}

// encodeFrame renders one complete bankfmt stream. When the content is
// dictionary-codable it renders both dictionary variants — packed-raw
// indices and gzipped uint16 indices — and keeps the smaller (ties prefer
// packed, the faster decode); otherwise the raw floats go through the gzip
// member. Pure function of (magic, meta, data): re-encoding identical
// content yields identical bytes.
func encodeFrame(magic [6]byte, meta []byte, data []float64) ([]byte, error) {
	metaCRC := crc32.Checksum(meta, castagnoli)
	floatCRC := crcFloats(data)
	table, lut := tryBuildDict(data)

	render := func(flags uint32) ([]byte, error) {
		var buf bytes.Buffer
		h := encodeHeader(magic, flags, len(meta), len(data), metaCRC, floatCRC)
		buf.Write(h[:])
		var dst io.Writer = &buf
		var zw *gzip.Writer
		if flags&flagPayloadGzip != 0 {
			zw = gzip.NewWriter(&buf)
			dst = zw
		}
		if _, err := dst.Write(meta); err != nil {
			return nil, err
		}
		var err error
		if flags&flagDictFloats != 0 {
			var n [4]byte
			binary.LittleEndian.PutUint32(n[:], uint32(len(table)))
			if _, err = dst.Write(n[:]); err != nil {
				return nil, err
			}
			if err = writeFloats(dst, table); err != nil {
				return nil, err
			}
			if flags&flagPackedIndices == 0 {
				err = writeU16Indices(dst, data, lut)
			}
		} else {
			err = writeFloats(dst, data)
		}
		if err != nil {
			return nil, err
		}
		if zw != nil {
			if err := zw.Close(); err != nil {
				return nil, err
			}
		}
		if flags&flagPackedIndices != 0 {
			// The packed index stream always sits outside the gzip member.
			buf.Write(appendPackedIndices(nil, data, lut, indexWidth(len(table))))
		}
		return buf.Bytes(), nil
	}

	if table == nil {
		return render(flagPayloadGzip)
	}
	packed, err := render(flagPayloadGzip | flagDictFloats | flagPackedIndices)
	if err != nil {
		return nil, err
	}
	zipped, err := render(flagPayloadGzip | flagDictFloats)
	if err != nil {
		return nil, err
	}
	if len(zipped) < len(packed) {
		return zipped, nil
	}
	return packed, nil
}

// writeFrame writes one complete bankfmt stream to w.
func writeFrame(w io.Writer, magic [6]byte, meta []byte, data []float64) error {
	raw, err := encodeFrame(magic, meta, data)
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// frameHeader is the parsed fixed header of one bankfmt stream.
type frameHeader struct {
	flags      uint32
	metaLen    int
	floatCount int
	metaCRC    uint32
	floatCRC   uint32
}

// readHeader parses and validates the fixed header, distinguishing stale
// formats (legacy gob+gzip, future versions) from corruption.
func readHeader(r io.Reader, magic [6]byte, kind string) (frameHeader, error) {
	var h [bankfmtHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if h[0] == 0x1f && h[1] == 0x8b {
			return frameHeader{}, fmt.Errorf("%w (short stream)", ErrLegacyBankFormat)
		}
		return frameHeader{}, fmt.Errorf("core: %s header truncated: %w", kind, err)
	}
	if h[0] == 0x1f && h[1] == 0x8b {
		return frameHeader{}, ErrLegacyBankFormat
	}
	if [6]byte(h[0:6]) != magic {
		return frameHeader{}, fmt.Errorf("core: not a %s stream (magic %x)", kind, h[0:6])
	}
	if v := binary.LittleEndian.Uint16(h[6:8]); v != bankfmtVersion {
		return frameHeader{}, fmt.Errorf("%w: %s v%d (this build reads v%d)", ErrUnknownBankVersion, kind, v, bankfmtVersion)
	}
	fh := frameHeader{
		flags:      binary.LittleEndian.Uint32(h[8:12]),
		metaLen:    int(binary.LittleEndian.Uint32(h[12:16])),
		floatCount: int(binary.LittleEndian.Uint64(h[16:24])),
		metaCRC:    binary.LittleEndian.Uint32(h[24:28]),
		floatCRC:   binary.LittleEndian.Uint32(h[28:32]),
	}
	if fh.flags&^uint32(knownFlags) != 0 {
		return frameHeader{}, fmt.Errorf("%w: %s flags %#x", ErrUnknownBankVersion, kind, fh.flags)
	}
	if fh.metaLen < 0 || fh.metaLen > maxBankMetaBytes {
		return frameHeader{}, fmt.Errorf("core: %s metadata length %d out of range", kind, fh.metaLen)
	}
	if fh.floatCount < 0 {
		return frameHeader{}, fmt.Errorf("core: %s float count %d negative", kind, fh.floatCount)
	}
	return fh, nil
}

// dimsProduct multiplies tensor dimensions with overflow protection, so a
// corrupt metadata section can never wrap the implied arena length around to
// something that accidentally matches the header's float count.
func dimsProduct(dims ...int) (int, error) {
	p := 1
	for _, d := range dims {
		if d < 0 {
			return 0, fmt.Errorf("core: bankfmt dimension %d negative", d)
		}
		if d > 0 && p > (maxBankFloatBytes/8)/d {
			return 0, fmt.Errorf("core: bankfmt dimensions overflow the %d-byte arena cap", int64(maxBankFloatBytes))
		}
		p *= d
	}
	return p, nil
}

// EncodeBank writes b to w in bankfmt/v3 (the encoding SaveBank persists,
// the BankStore caches, and peers serve). The encoding is deterministic in
// the bank's content, which is what keeps sharded-vs-local builds
// byte-identical on disk and on the wire.
func EncodeBank(w io.Writer, b *Bank) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("core: refusing to encode invalid bank: %w", err)
	}
	if err := writeFrame(w, bankMagic, appendBankMeta(nil, b), b.Errs.Arena()); err != nil {
		return fmt.Errorf("core: encode bank: %w", err)
	}
	return nil
}

// v3Corrupt wraps a v3 frame failure into the coded CorruptError, naming
// the section and its starting offset so a truncated or bit-rotted file
// reports where it failed instead of a bare CRC mismatch. Stale-format
// errors (legacy gob+gzip, future version) pass through unwrapped — they
// are lifecycle events, not corruption.
func v3Corrupt(section string, offset int64, err error) error {
	if IsStaleBankFormat(err) {
		return err
	}
	return &CorruptError{Section: section, Segment: -1, Offset: offset, Err: err}
}

// decodeBankBinary reads one EncodeBank stream.
func decodeBankBinary(r io.Reader) (*Bank, error) {
	br := bufio.NewReaderSize(r, 32<<10)
	fh, err := readHeader(br, bankMagic, "bank")
	if err != nil {
		return nil, v3Corrupt("header", 0, err)
	}
	if int64(fh.floatCount) > maxBankFloatBytes/8 {
		return nil, fmt.Errorf("core: bank bulk section of %d floats exceeds the %d-byte cap", fh.floatCount, int64(maxBankFloatBytes))
	}
	p, err := openPayload(br, fh, "bank")
	if err != nil {
		return nil, v3Corrupt("metadata", bankfmtHeaderLen, err)
	}
	meta, err := p.meta()
	if err != nil {
		return nil, v3Corrupt("metadata", bankfmtHeaderLen, err)
	}
	b, err := parseBankMeta(meta)
	if err != nil {
		return nil, v3Corrupt("metadata", bankfmtHeaderLen, err)
	}
	clients := 0
	if len(b.ExampleCounts) > 0 {
		clients = len(b.ExampleCounts[0])
	}
	dims := ErrMatrix{
		Parts:       len(b.Partitions),
		Configs:     len(b.Configs),
		Checkpoints: len(b.Rounds),
		Clients:     clients,
	}
	want, err := dimsProduct(dims.Parts, dims.Configs, dims.Checkpoints, dims.Clients)
	if err != nil {
		return nil, err
	}
	if fh.floatCount != want {
		return nil, fmt.Errorf("core: bank bulk section has %d floats, metadata implies %d", fh.floatCount, want)
	}
	dims.Data = make([]float64, want)
	if err := p.bulk(dims.Data); err != nil {
		return nil, v3Corrupt("bulk", int64(bankfmtHeaderLen+fh.metaLen), err)
	}
	b.Errs = dims
	return b, nil
}

// payloadReader streams one frame's payload section after a validated
// header, transparently inflating when the compression flag is set. raw is
// an io.ByteReader-backed stream (flate then consumes exactly one member,
// leaving raw positioned at any packed index tail).
type payloadReader struct {
	raw  *bufio.Reader
	src  io.Reader
	zr   *gzip.Reader
	fh   frameHeader
	kind string
}

func openPayload(r *bufio.Reader, fh frameHeader, kind string) (*payloadReader, error) {
	p := &payloadReader{raw: r, src: r, fh: fh, kind: kind}
	if fh.flags&flagPayloadGzip != 0 {
		zr, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("core: %s payload: %w", kind, err)
		}
		zr.Multistream(false)
		p.src, p.zr = zr, zr
	}
	return p, nil
}

// finishMember verifies the gzip member (when present) ends exactly where
// the payload says it should — catching both trailing garbage and trailer
// truncation even when every content byte arrived — and positions the raw
// stream just past it.
func (p *payloadReader) finishMember() error {
	if p.zr == nil {
		return nil
	}
	var one [1]byte
	n, err := p.zr.Read(one[:])
	if n != 0 {
		return fmt.Errorf("core: %s payload longer than declared %d floats", p.kind, p.fh.floatCount)
	}
	if err != nil && err != io.EOF {
		return fmt.Errorf("core: %s payload corrupt: %w", p.kind, err)
	}
	if err := p.zr.Close(); err != nil {
		return fmt.Errorf("core: %s payload: %w", p.kind, err)
	}
	return nil
}

// meta reads and checksums the metadata section.
func (p *payloadReader) meta() ([]byte, error) {
	meta := make([]byte, p.fh.metaLen)
	if _, err := io.ReadFull(p.src, meta); err != nil {
		return nil, fmt.Errorf("core: %s metadata truncated: %w", p.kind, err)
	}
	if crc := crc32.Checksum(meta, castagnoli); crc != p.fh.metaCRC {
		return nil, fmt.Errorf("core: %s metadata checksum mismatch (%08x != %08x)", p.kind, crc, p.fh.metaCRC)
	}
	return meta, nil
}

// bulk fills the arena from the bulk section, verifies the payload ends
// exactly where declared, and checks the content CRC.
func (p *payloadReader) bulk(arena []float64) error {
	fl := p.fh.flags
	if fl&flagPackedIndices != 0 && fl&flagDictFloats == 0 {
		return fmt.Errorf("core: %s packed indices without a dictionary", p.kind)
	}
	if fl&flagDictFloats != 0 {
		var nb [4]byte
		if _, err := io.ReadFull(p.src, nb[:]); err != nil {
			return fmt.Errorf("core: %s dictionary truncated: %w", p.kind, err)
		}
		n := binary.LittleEndian.Uint32(nb[:])
		if n > maxDictSize || (n == 0 && len(arena) > 0) {
			return fmt.Errorf("core: %s dictionary has %d values for %d elements", p.kind, n, len(arena))
		}
		table := make([]float64, n)
		if err := readFloats(p.src, table); err != nil {
			return fmt.Errorf("core: %s dictionary truncated: %w", p.kind, err)
		}
		if fl&flagPackedIndices != 0 {
			// The gzip member ends after the table; packed bits follow raw.
			if err := p.finishMember(); err != nil {
				return err
			}
			if err := readPackedIndices(p.raw, arena, table, p.kind); err != nil {
				return err
			}
		} else {
			if err := readU16Indices(p.src, arena, table, p.kind); err != nil {
				return err
			}
			if err := p.finishMember(); err != nil {
				return err
			}
		}
	} else {
		if err := readFloats(p.src, arena); err != nil {
			return fmt.Errorf("core: %s bulk section truncated: %w", p.kind, err)
		}
		if err := p.finishMember(); err != nil {
			return err
		}
	}
	if crc := crcFloats(arena); crc != p.fh.floatCRC {
		return fmt.Errorf("core: %s bulk checksum mismatch (%08x != %08x)", p.kind, crc, p.fh.floatCRC)
	}
	return nil
}

// EncodeShard writes sh to w in bankfmt/v3 shard framing — the dist wire
// format workers upload and coordinators decode straight into an arena the
// assembly step block-copies from.
func EncodeShard(w io.Writer, sh *BankShard) error {
	if err := sh.Errs.Validate(); err != nil {
		return fmt.Errorf("core: encode shard: %w", err)
	}
	if err := writeFrame(w, shardMagic, appendShardMeta(nil, sh), sh.Errs.Data); err != nil {
		return fmt.Errorf("core: encode shard: %w", err)
	}
	return nil
}

// DecodeShard reads one EncodeShard stream. maxFloatBytes bounds the arena a
// hostile length field can demand (<= 0 applies the bank-level default cap).
func DecodeShard(r io.Reader, maxFloatBytes int64) (*BankShard, error) {
	if maxFloatBytes <= 0 {
		maxFloatBytes = maxBankFloatBytes
	}
	br := bufio.NewReaderSize(r, 32<<10)
	fh, err := readHeader(br, shardMagic, "shard")
	if err != nil {
		return nil, err
	}
	if int64(fh.floatCount) > maxFloatBytes/8 {
		return nil, fmt.Errorf("core: shard bulk section of %d floats exceeds the %d-byte cap", fh.floatCount, maxFloatBytes)
	}
	p, err := openPayload(br, fh, "shard")
	if err != nil {
		return nil, err
	}
	meta, err := p.meta()
	if err != nil {
		return nil, err
	}
	sh, err := parseShardMeta(meta)
	if err != nil {
		return nil, err
	}
	want, err := dimsProduct(sh.Errs.Parts, sh.Errs.Configs, sh.Errs.Checkpoints, sh.Errs.Clients)
	if err != nil {
		return nil, err
	}
	if fh.floatCount != want {
		return nil, fmt.Errorf("core: shard bulk section has %d floats, metadata implies %d", fh.floatCount, want)
	}
	sh.Errs.Data = make([]float64, want)
	if err := p.bulk(sh.Errs.Data); err != nil {
		return nil, err
	}
	return sh, nil
}
