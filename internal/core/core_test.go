package core

import (
	"math"
	"path/filepath"
	"testing"

	"noisyeval/internal/data"
	"noisyeval/internal/dp"
	"noisyeval/internal/eval"
	"noisyeval/internal/fl"
	"noisyeval/internal/hpo"
	"noisyeval/internal/rng"
)

// tinyBank builds a small but real bank once per test binary.
var (
	tinyBankCache *Bank
	tinyPopCache  *data.Population
)

func tinySpec() data.Spec {
	s := data.CIFAR10Like()
	s.TrainClients, s.EvalClients = 24, 12
	s.MeanExamples, s.MinExamples, s.MaxExamples = 25, 15, 35
	s.Classes, s.FeatureDim, s.Hidden = 4, 8, 12
	s.FeatureNoise = 0.6
	return s
}

func tinyBuildOptions() BuildOptions {
	o := DefaultBuildOptions()
	o.NumConfigs = 12
	o.MaxRounds = 27
	o.Partitions = []float64{0.5, 1}
	return o
}

func tinyBank(t *testing.T) (*Bank, *data.Population) {
	t.Helper()
	if tinyBankCache == nil {
		tinyPopCache = data.MustGenerate(tinySpec(), rng.New(1))
		b, err := BuildBank(tinyPopCache, tinyBuildOptions(), 7)
		if err != nil {
			t.Fatal(err)
		}
		tinyBankCache = b
	}
	return tinyBankCache, tinyPopCache
}

func TestBuildBankShape(t *testing.T) {
	b, _ := tinyBank(t)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Configs) != 12 {
		t.Errorf("configs = %d", len(b.Configs))
	}
	wantRounds := []int{1, 3, 9, 27}
	if len(b.Rounds) != len(wantRounds) {
		t.Fatalf("rounds = %v", b.Rounds)
	}
	for i, r := range wantRounds {
		if b.Rounds[i] != r {
			t.Fatalf("rounds = %v, want %v", b.Rounds, wantRounds)
		}
	}
	if len(b.Partitions) != 3 || b.Partitions[0] != 0 {
		t.Errorf("partitions = %v", b.Partitions)
	}
	if b.NumClients() != 12 {
		t.Errorf("clients = %d", b.NumClients())
	}
}

func TestBuildBankDeterministicAcrossParallelism(t *testing.T) {
	pop := data.MustGenerate(tinySpec(), rng.New(1))
	opts := tinyBuildOptions()
	opts.NumConfigs = 4
	opts.Workers = 1
	b1, err := BuildBank(pop, opts, 9)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	b2, err := BuildBank(pop, opts, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1.Errs.Data {
		if b1.Errs.Data[i] != b2.Errs.Data[i] {
			t.Fatal("bank depends on worker count")
		}
	}
}

func TestBankErrorsImproveWithRounds(t *testing.T) {
	b, _ := tinyBank(t)
	// The best config's full error at the last checkpoint should beat the
	// first checkpoint (training works through the bank path).
	improved := 0
	for ci := range b.Configs {
		first, _ := b.ClientErrors(0, ci, b.Rounds[0])
		last, _ := b.ClientErrors(0, ci, b.MaxRounds())
		if mean(last) < mean(first) {
			improved++
		}
	}
	if improved < len(b.Configs)/3 {
		t.Errorf("only %d/%d configs improved with training", improved, len(b.Configs))
	}
}

func TestBankConfigIndex(t *testing.T) {
	b, _ := tinyBank(t)
	for i, cfg := range b.Configs {
		idx, err := b.ConfigIndex(cfg)
		if err != nil || idx != i {
			t.Fatalf("ConfigIndex(%d) = %d, %v", i, idx, err)
		}
	}
	if _, err := b.ConfigIndex(hpo.DefaultSpace().Sample(rng.New(99))); err == nil {
		t.Error("foreign config accepted")
	}
}

func TestBankCheckpointIndex(t *testing.T) {
	b, _ := tinyBank(t)
	cases := map[int]int{0: 0, 1: 0, 2: 0, 3: 1, 8: 1, 9: 2, 26: 2, 27: 3, 1000: 3}
	for rounds, want := range cases {
		if got := b.CheckpointIndex(rounds); got != want {
			t.Errorf("CheckpointIndex(%d) = %d, want %d", rounds, got, want)
		}
	}
}

func TestBankPartitionIndex(t *testing.T) {
	b, _ := tinyBank(t)
	if _, err := b.PartitionIndex(0.5); err != nil {
		t.Error(err)
	}
	if _, err := b.PartitionIndex(0.25); err == nil {
		t.Error("unknown partition accepted")
	}
}

func TestBankSaveLoadRoundTrip(t *testing.T) {
	b, _ := tinyBank(t)
	path := filepath.Join(t.TempDir(), "bank.gob.gz")
	if err := SaveBank(b, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBank(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SpecName != b.SpecName || len(loaded.Configs) != len(b.Configs) {
		t.Fatal("metadata lost")
	}
	e1, _ := b.ClientErrors(0.5, 3, 9)
	e2, _ := loaded.ClientErrors(0.5, 3, 9)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("error records corrupted in round trip")
		}
	}
	// Index must work after load.
	if _, err := loaded.ConfigIndex(loaded.Configs[0]); err != nil {
		t.Error(err)
	}
}

func TestLoadBankMissingFile(t *testing.T) {
	if _, err := LoadBank(filepath.Join(t.TempDir(), "nope.gob.gz")); err == nil {
		t.Error("expected error")
	}
}

func TestBuildBankValidation(t *testing.T) {
	pop := data.MustGenerate(tinySpec(), rng.New(2))
	bad := tinyBuildOptions()
	bad.NumConfigs = 0
	if _, err := BuildBank(pop, bad, 1); err == nil {
		t.Error("zero configs accepted")
	}
	bad2 := tinyBuildOptions()
	bad2.MaxRounds = 0
	if _, err := BuildBank(pop, bad2, 1); err == nil {
		t.Error("zero rounds accepted")
	}
}

// --- BankOracle ---

func TestBankOracleFullEvalMatchesTrue(t *testing.T) {
	b, _ := tinyBank(t)
	o, err := NewBankOracle(b, 0, eval.Noiseless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := b.Configs[0]
	if got, want := o.Evaluate(cfg, 27, "x"), o.TrueError(cfg, 27); got != want {
		t.Errorf("full eval %.4f != true %.4f", got, want)
	}
}

func TestBankOracleSubsamplingNoise(t *testing.T) {
	b, _ := tinyBank(t)
	o, err := NewBankOracle(b, 0, eval.Scheme{Count: 1, Weighted: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := b.Configs[0]
	seen := map[float64]bool{}
	for i := 0; i < 20; i++ {
		seen[o.Evaluate(cfg, 27, string(rune('a'+i)))] = true
	}
	if len(seen) < 3 {
		t.Errorf("1-client evals produced only %d distinct values", len(seen))
	}
}

func TestBankOracleSharedCohortPerEvalID(t *testing.T) {
	b, _ := tinyBank(t)
	o, _ := NewBankOracle(b, 0, eval.Scheme{Count: 3, Weighted: true}, 1)
	cfg := b.Configs[1]
	if o.Evaluate(cfg, 27, "round-7") != o.Evaluate(cfg, 27, "round-7") {
		t.Error("same evalID must reproduce the same evaluation")
	}
	if o.Evaluate(cfg, 27, "round-7") == o.Evaluate(cfg, 27, "round-8") {
		t.Log("distinct evalIDs coincided (possible but unlikely)")
	}
}

func TestBankOracleTrialDecorrelation(t *testing.T) {
	b, _ := tinyBank(t)
	o, _ := NewBankOracle(b, 0, eval.Scheme{Count: 2, Weighted: true}, 1)
	a := o.WithTrial(0).Evaluate(b.Configs[2], 27, "e")
	c := o.WithTrial(1).Evaluate(b.Configs[2], 27, "e")
	if a == c {
		t.Log("two trials coincided (possible but unlikely)")
	}
	// Same trial is reproducible.
	if o.WithTrial(0).Evaluate(b.Configs[2], 27, "e") != a {
		t.Error("trial evaluation not reproducible")
	}
}

func TestBankOracleIgnoresSchemeDP(t *testing.T) {
	b, _ := tinyBank(t)
	scheme := eval.Scheme{Count: 3, DP: dp.Params{Epsilon: 0.001, TotalEvals: 1}}
	o, err := NewBankOracle(b, 0, scheme, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With DP stripped, repeated same-ID evals are identical (no Laplace).
	cfg := b.Configs[0]
	if o.Evaluate(cfg, 27, "id") != o.Evaluate(cfg, 27, "id") {
		t.Error("oracle applied DP noise; methods own the DP step")
	}
}

func TestBankOraclePartitions(t *testing.T) {
	b, _ := tinyBank(t)
	nat, err := NewBankOracle(b, 0, eval.Noiseless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	iid, err := NewBankOracle(b, 1, eval.Noiseless(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Full-pool error should be similar but generally not identical between
	// partitions (same pooled data, resampled per client).
	cfg := b.Configs[0]
	a, c := nat.TrueError(cfg, 27), iid.TrueError(cfg, 27)
	if math.Abs(a-c) > 0.3 {
		t.Errorf("partition errors wildly different: %.3f vs %.3f", a, c)
	}
}

// --- Tuner on the bank ---

func TestTunerRunTrials(t *testing.T) {
	b, _ := tinyBank(t)
	o, _ := NewBankOracle(b, 0, eval.Noiseless(), 1)
	tn := Tuner{
		Method:   hpo.RandomSearch{},
		Space:    hpo.DefaultSpace(),
		Settings: hpo.Settings{Budget: hpo.Budget{TotalRounds: 8 * 27, MaxPerConfig: 27, K: 8}},
	}
	results := tn.RunTrials(o, 16, rng.New(3))
	if len(results) != 16 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.FinalTrue < 0 || r.FinalTrue > 1 {
			t.Errorf("trial %d final = %v", r.Trial, r.FinalTrue)
		}
		if len(r.History.Observations) != 8 {
			t.Errorf("trial %d has %d observations", r.Trial, len(r.History.Observations))
		}
	}
	finals := FinalErrors(results)
	if len(finals) != 16 {
		t.Fatal("FinalErrors length")
	}
}

func TestTunerTrialsDeterministicAcrossRuns(t *testing.T) {
	b, _ := tinyBank(t)
	o, _ := NewBankOracle(b, 0, eval.Scheme{Count: 2, Weighted: true}, 1)
	tn := Tuner{
		Method:   hpo.RandomSearch{},
		Space:    hpo.DefaultSpace(),
		Settings: hpo.Settings{Budget: hpo.Budget{TotalRounds: 4 * 27, MaxPerConfig: 27, K: 4}},
	}
	a := FinalErrors(tn.RunTrials(o, 8, rng.New(5)))
	c := FinalErrors(tn.RunTrials(o, 8, rng.New(5)))
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("trials not deterministic across runs")
		}
	}
}

func TestSubsamplingHurtsTuning(t *testing.T) {
	// The paper's core claim at miniature scale: median final error over
	// bootstrap trials should be no better under 1-client evaluation than
	// under full evaluation.
	b, _ := tinyBank(t)
	tn := Tuner{
		Method:   hpo.RandomSearch{},
		Space:    hpo.DefaultSpace(),
		Settings: hpo.Settings{Budget: hpo.Budget{TotalRounds: 8 * 27, MaxPerConfig: 27, K: 8}},
	}
	full, _ := NewBankOracle(b, 0, eval.Noiseless(), 1)
	one, _ := NewBankOracle(b, 0, eval.Scheme{Count: 1, Weighted: true}, 1)
	fullErrs := FinalErrors(tn.RunTrials(full, 30, rng.New(6)))
	oneErrs := FinalErrors(tn.RunTrials(one, 30, rng.New(6)))
	if median(oneErrs) < median(fullErrs)-1e-9 {
		t.Errorf("1-client median %.4f unexpectedly beats full %.4f", median(oneErrs), median(fullErrs))
	}
}

// --- Noise ---

func TestNoiseScheme(t *testing.T) {
	n := Noise{SampleCount: 5, Bias: 1.5}
	s := n.Scheme()
	if s.Count != 5 || s.Bias != 1.5 || !s.Weighted {
		t.Errorf("scheme = %+v", s)
	}
	p := Noise{SampleCount: 5, Epsilon: 1}
	if p.Scheme().Weighted {
		t.Error("private noise must force uniform weighting")
	}
	if !p.Private() {
		t.Error("eps=1 should be private")
	}
	if (Noise{Epsilon: dp.InfEpsilon}).Private() {
		t.Error("inf eps should be non-private")
	}
}

func TestNoiseSettings(t *testing.T) {
	s := Noise{Epsilon: 10}.Settings(hpo.DefaultSettings())
	if s.Epsilon != 10 {
		t.Errorf("epsilon = %v", s.Epsilon)
	}
	s2 := Noiseless().Settings(hpo.DefaultSettings())
	if !math.IsInf(s2.Epsilon, 1) {
		t.Errorf("noiseless epsilon = %v", s2.Epsilon)
	}
}

func TestNoiseString(t *testing.T) {
	if (Noise{}).String() == "" {
		t.Error("empty string")
	}
	if (Noise{SampleCount: 3, Epsilon: 1}).String() == "" {
		t.Error("empty string")
	}
}

// --- LiveOracle ---

func TestLiveOracleBasics(t *testing.T) {
	pop := data.MustGenerate(tinySpec(), rng.New(10))
	o, err := NewLiveOracle(pop, fl.DefaultOptions(), eval.Noiseless(), 9, 3, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hpo.DefaultSpace().Sample(rng.New(12))
	e1 := o.TrueError(cfg, 9)
	e2 := o.TrueError(cfg, 9) // cached
	if e1 != e2 {
		t.Error("live oracle cache broken")
	}
	if o.MaxRounds() != 9 {
		t.Errorf("MaxRounds = %d", o.MaxRounds())
	}
	if o.Pool() != nil {
		t.Error("live oracle should have no pool")
	}
	if got := o.Evaluate(cfg, 9, "e1"); got < 0 || got > 1 {
		t.Errorf("Evaluate = %v", got)
	}
}

func TestLiveOracleWithRandomSearch(t *testing.T) {
	pop := data.MustGenerate(tinySpec(), rng.New(13))
	o, err := NewLiveOracle(pop, fl.DefaultOptions(), eval.Scheme{Count: 3, Weighted: true}, 9, 3, 3, 14)
	if err != nil {
		t.Fatal(err)
	}
	tn := Tuner{
		Method:   hpo.RandomSearch{},
		Space:    hpo.DefaultSpace(),
		Settings: hpo.Settings{Budget: hpo.Budget{TotalRounds: 27, MaxPerConfig: 9, K: 3}},
	}
	h := tn.Run(o, rng.New(15))
	if len(h.Observations) != 3 {
		t.Fatalf("live RS observations = %d", len(h.Observations))
	}
	rec, ok := h.Recommend()
	if !ok || rec.True < 0 || rec.True > 1 {
		t.Errorf("recommendation = %+v", rec)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}
