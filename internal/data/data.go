// Package data synthesizes the federated client populations used in the
// study. The paper evaluates on CIFAR10 (Dirichlet-partitioned), FEMNIST,
// StackOverflow, and Reddit; this package generates populations that mirror
// each dataset's published statistics (Table 1/2 of the paper: client counts,
// per-client example counts including min/max skew, task type) and its
// heterogeneity structure, while replacing pixels/tokens with synthetic
// content:
//
//   - Image-like tasks draw class-conditional Gaussian features with
//     per-client Dirichlet label skew (Hsu et al., 2019) plus a per-client
//     style shift.
//   - Text-like tasks generate next-token-prediction examples from per-client
//     topic mixtures over a Zipf vocabulary.
//
// The phenomena the paper studies — subsampling variance, heterogeneity bias,
// DP sensitivity — are statistical properties of the client population, which
// these generators preserve. See DESIGN.md §2 for the substitution argument.
package data

import (
	"fmt"
	"math"

	"noisyeval/internal/nn"
	"noisyeval/internal/rng"
	"noisyeval/internal/tensor"
)

// TaskKind distinguishes the two task families in the study.
type TaskKind int

const (
	// ImageClassification is dense-feature classification (CIFAR10-like,
	// FEMNIST-like; the paper trains 2-layer CNNs).
	ImageClassification TaskKind = iota
	// NextTokenPrediction is token-context classification over a vocabulary
	// (StackOverflow-like, Reddit-like; the paper trains 2-layer LSTMs).
	NextTokenPrediction
)

// String implements fmt.Stringer.
func (k TaskKind) String() string {
	switch k {
	case ImageClassification:
		return "image classification"
	case NextTokenPrediction:
		return "next token prediction"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// Example is one labelled sample.
type Example struct {
	Features tensor.Vec // dense tasks
	Tokens   []int      // text tasks (context window)
	Label    int
}

// Input converts the example to a model input.
func (e Example) Input() nn.Input { return nn.Input{Features: e.Features, Tokens: e.Tokens} }

// Client is one device with a local dataset.
type Client struct {
	ID       int
	Examples []Example
}

// NumExamples returns the local dataset size.
func (c *Client) NumExamples() int { return len(c.Examples) }

// Spec describes a synthetic federated population. The four constructors
// below mirror the paper's datasets; Scaled derives cheaper variants with the
// same shape.
type Spec struct {
	Name string
	Kind TaskKind

	TrainClients int
	EvalClients  int

	// Per-client example count distribution (log-normal clipped to
	// [MinExamples, MaxExamples] with mean ~MeanExamples).
	MeanExamples int
	MinExamples  int
	MaxExamples  int

	// Image-task shape.
	Classes      int
	FeatureDim   int
	LabelAlpha   float64 // Dirichlet concentration for client label skew
	FeatureNoise float64 // within-class feature stddev
	ClientShift  float64 // per-client style shift stddev

	// Text-task shape.
	Vocab      int
	ContextLen int
	Topics     int
	TopicAlpha float64 // Dirichlet concentration for client topic mixtures
	TopicZipf  float64 // Zipf exponent of each topic's token distribution

	// Model shape used by NewModel.
	Hidden   int
	EmbedDim int
}

// CIFAR10Like mirrors the paper's CIFAR10 setup: 400 train / 100 eval
// clients, ~100 examples each (83–131), 10 classes, Dirichlet α=0.1 label
// partition (strongly non-iid).
func CIFAR10Like() Spec {
	return Spec{
		Name: "cifar10", Kind: ImageClassification,
		TrainClients: 400, EvalClients: 100,
		MeanExamples: 100, MinExamples: 83, MaxExamples: 131,
		Classes: 10, FeatureDim: 24, LabelAlpha: 0.1,
		FeatureNoise: 2.2, ClientShift: 0.5,
		Hidden: 48,
	}
}

// FEMNISTLike mirrors FEMNIST: 3507 train / 360 eval clients, mean 203
// examples (19–393), 62 classes, natural per-writer heterogeneity (moderate
// label skew plus a writer-style shift).
func FEMNISTLike() Spec {
	return Spec{
		Name: "femnist", Kind: ImageClassification,
		TrainClients: 3507, EvalClients: 360,
		MeanExamples: 203, MinExamples: 19, MaxExamples: 393,
		Classes: 62, FeatureDim: 24, LabelAlpha: 1.0,
		FeatureNoise: 0.9, ClientShift: 0.45,
		Hidden: 48,
	}
}

// StackOverflowLike mirrors StackOverflow: 10815 train / 3678 eval clients,
// mean 391 examples with an extreme long tail (1–194167; the tail is capped
// when scaled), next-token prediction.
func StackOverflowLike() Spec {
	return Spec{
		Name: "stackoverflow", Kind: NextTokenPrediction,
		TrainClients: 10815, EvalClients: 3678,
		MeanExamples: 391, MinExamples: 1, MaxExamples: 194167,
		Vocab: 64, ContextLen: 6, Topics: 8, TopicAlpha: 0.5, TopicZipf: 1.3,
		Hidden: 32, EmbedDim: 16,
	}
}

// RedditLike mirrors Reddit (December 2017, pushshift.io): 40000 train /
// 9928 eval clients, mean 19 examples (1–14440), next-token prediction with
// stronger per-client topic concentration than StackOverflow.
func RedditLike() Spec {
	return Spec{
		Name: "reddit", Kind: NextTokenPrediction,
		TrainClients: 40000, EvalClients: 9928,
		MeanExamples: 19, MinExamples: 1, MaxExamples: 14440,
		Vocab: 64, ContextLen: 6, Topics: 8, TopicAlpha: 0.15, TopicZipf: 1.3,
		Hidden: 32, EmbedDim: 16,
	}
}

// AllSpecs returns the four dataset specs in the paper's order.
func AllSpecs() []Spec {
	return []Spec{CIFAR10Like(), FEMNISTLike(), StackOverflowLike(), RedditLike()}
}

// Scaled returns a copy with client counts multiplied by f (minimum 4 train
// / 4 eval clients) and the per-client example tail capped at capExamples
// (0 = no cap). Percent-of-population subsample axes are preserved.
func (s Spec) Scaled(f float64, capExamples int) Spec {
	if f <= 0 {
		panic(fmt.Sprintf("data: scale factor %g must be positive", f))
	}
	out := s
	out.TrainClients = maxInt(4, int(math.Round(float64(s.TrainClients)*f)))
	out.EvalClients = maxInt(4, int(math.Round(float64(s.EvalClients)*f)))
	if capExamples > 0 {
		if out.MaxExamples > capExamples {
			out.MaxExamples = capExamples
		}
		if out.MeanExamples > capExamples {
			out.MeanExamples = capExamples
		}
		if out.MinExamples > out.MaxExamples {
			out.MinExamples = out.MaxExamples
		}
	}
	return out
}

// Validate checks internal consistency.
func (s Spec) Validate() error {
	if s.TrainClients <= 0 || s.EvalClients <= 0 {
		return fmt.Errorf("data: %s: client counts must be positive", s.Name)
	}
	if s.MinExamples < 1 || s.MinExamples > s.MaxExamples || s.MeanExamples < s.MinExamples || s.MeanExamples > s.MaxExamples {
		return fmt.Errorf("data: %s: example counts min=%d mean=%d max=%d inconsistent", s.Name, s.MinExamples, s.MeanExamples, s.MaxExamples)
	}
	switch s.Kind {
	case ImageClassification:
		if s.Classes < 2 || s.FeatureDim < 1 || s.LabelAlpha <= 0 {
			return fmt.Errorf("data: %s: bad image task shape", s.Name)
		}
	case NextTokenPrediction:
		if s.Vocab < 2 || s.ContextLen < 1 || s.Topics < 1 || s.TopicAlpha <= 0 {
			return fmt.Errorf("data: %s: bad text task shape", s.Name)
		}
	default:
		return fmt.Errorf("data: %s: unknown task kind %d", s.Name, int(s.Kind))
	}
	return nil
}

// NumClasses returns the prediction-head width (classes or vocab).
func (s Spec) NumClasses() int {
	if s.Kind == NextTokenPrediction {
		return s.Vocab
	}
	return s.Classes
}

// Population is a generated federated dataset: disjoint train and validation
// client pools (the paper partitions data by client; §2.1).
type Population struct {
	Spec  Spec
	Train []*Client
	Val   []*Client

	// Generator state shared by train and eval clients so that both pools
	// come from the same underlying task.
	protos      []tensor.Vec // image: class prototypes
	topicTokens []*rng.Zipf  // text: per-topic token samplers
	topicPerm   [][]int      // text: per-topic rank->token permutation
}

// Generate synthesizes a population from spec. Generation is deterministic
// in g's stream: the same seed and spec produce the same population.
func Generate(spec Spec, g *rng.RNG) (*Population, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Population{Spec: spec}
	switch spec.Kind {
	case ImageClassification:
		p.genImageTask(g)
	case NextTokenPrediction:
		p.genTextTask(g)
	}
	return p, nil
}

// MustGenerate is Generate that panics on an invalid spec.
func MustGenerate(spec Spec, g *rng.RNG) *Population {
	p, err := Generate(spec, g)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Population) genImageTask(g *rng.RNG) {
	s := p.Spec
	// Class prototypes, shared across all clients.
	protoRNG := g.Split("protos")
	p.protos = make([]tensor.Vec, s.Classes)
	for c := range p.protos {
		v := tensor.NewVec(s.FeatureDim)
		for i := range v {
			v[i] = protoRNG.Normal(0, 1)
		}
		p.protos[c] = v
	}
	p.Train = p.genImageClients("train", s.TrainClients, g)
	p.Val = p.genImageClients("val", s.EvalClients, g)
}

func (p *Population) genImageClients(pool string, n int, g *rng.RNG) []*Client {
	s := p.Spec
	clients := make([]*Client, n)
	for k := 0; k < n; k++ {
		cg := g.Splitf("%s-client-%d", pool, k)
		labelDist := cg.Dirichlet(s.LabelAlpha, s.Classes)
		shift := tensor.NewVec(s.FeatureDim)
		for i := range shift {
			shift[i] = cg.Normal(0, s.ClientShift)
		}
		count := sampleCount(s, cg)
		ex := make([]Example, count)
		for i := range ex {
			label := cg.Categorical(labelDist)
			f := tensor.NewVec(s.FeatureDim)
			proto := p.protos[label]
			for d := range f {
				f[d] = proto[d] + shift[d] + cg.Normal(0, s.FeatureNoise)
			}
			ex[i] = Example{Features: f, Label: label}
		}
		clients[k] = &Client{ID: k, Examples: ex}
	}
	return clients
}

func (p *Population) genTextTask(g *rng.RNG) {
	s := p.Spec
	topicRNG := g.Split("topics")
	p.topicTokens = make([]*rng.Zipf, s.Topics)
	p.topicPerm = make([][]int, s.Topics)
	for t := 0; t < s.Topics; t++ {
		// Each topic is a Zipf distribution over a topic-specific permutation
		// of the vocabulary, so topics share tokens but with different heads.
		p.topicTokens[t] = rng.NewZipf(s.TopicZipf, s.Vocab)
		p.topicPerm[t] = topicRNG.Perm(s.Vocab)
	}
	p.Train = p.genTextClients("train", s.TrainClients, g)
	p.Val = p.genTextClients("val", s.EvalClients, g)
}

func (p *Population) genTextClients(pool string, n int, g *rng.RNG) []*Client {
	s := p.Spec
	clients := make([]*Client, n)
	for k := 0; k < n; k++ {
		cg := g.Splitf("%s-client-%d", pool, k)
		topicMix := cg.Dirichlet(s.TopicAlpha, s.Topics)
		count := sampleCount(s, cg)
		ex := make([]Example, count)
		for i := range ex {
			topic := cg.Categorical(topicMix)
			ctx := make([]int, s.ContextLen)
			for j := range ctx {
				ctx[j] = p.sampleToken(topic, cg)
			}
			ex[i] = Example{Tokens: ctx, Label: p.sampleToken(topic, cg)}
		}
		clients[k] = &Client{ID: k, Examples: ex}
	}
	return clients
}

func (p *Population) sampleToken(topic int, g *rng.RNG) int {
	rank := p.topicTokens[topic].Sample(g)
	return p.topicPerm[topic][rank]
}

// sampleCount draws a per-client example count from a log-normal clipped to
// [MinExamples, MaxExamples], with the log-mean at MeanExamples. This
// reproduces the long-tailed client-size skew of Table 2.
func sampleCount(s Spec, g *rng.RNG) int {
	if s.MinExamples == s.MaxExamples {
		return s.MinExamples
	}
	sigma := math.Log(float64(s.MaxExamples)/float64(s.MeanExamples)) / 3
	if sigma < 0.05 {
		sigma = 0.05
	}
	x := math.Exp(g.Normal(math.Log(float64(s.MeanExamples)), sigma))
	n := int(math.Round(x))
	if n < s.MinExamples {
		n = s.MinExamples
	}
	if n > s.MaxExamples {
		n = s.MaxExamples
	}
	return n
}

// NewModel builds the study's model for this population: a 2-layer MLP for
// image tasks or an EmbeddingBag text network for next-token tasks.
func (p *Population) NewModel(g *rng.RNG) *nn.Network {
	s := p.Spec
	switch s.Kind {
	case ImageClassification:
		return nn.NewMLP(s.FeatureDim, s.Hidden, s.Classes, g)
	case NextTokenPrediction:
		return nn.NewTextNet(s.Vocab, s.EmbedDim, s.Hidden, g)
	default:
		panic(fmt.Sprintf("data: unknown task kind %d", int(s.Kind)))
	}
}

// Stats summarises a client pool (Table 1/2 of the paper).
type Stats struct {
	Clients       int
	TotalExamples int
	MeanExamples  float64
	MinExamples   int
	MaxExamples   int
}

// PoolStats computes example-count statistics over clients.
func PoolStats(clients []*Client) Stats {
	st := Stats{Clients: len(clients)}
	if len(clients) == 0 {
		return st
	}
	st.MinExamples = clients[0].NumExamples()
	for _, c := range clients {
		n := c.NumExamples()
		st.TotalExamples += n
		if n < st.MinExamples {
			st.MinExamples = n
		}
		if n > st.MaxExamples {
			st.MaxExamples = n
		}
	}
	st.MeanExamples = float64(st.TotalExamples) / float64(len(clients))
	return st
}

// RepartitionIID returns a new eval-client pool in which each client has
// resampled a fraction p of its local data uniformly from the pooled
// evaluation data (Caldas et al., 2018, extended with the paper's fractional
// scheme in §3.2): p=0 leaves clients unchanged (natural non-iid), p=1 makes
// every client an iid sample of the pool. Client sizes are preserved.
func RepartitionIID(clients []*Client, p float64, g *rng.RNG) []*Client {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("data: RepartitionIID fraction %g outside [0, 1]", p))
	}
	pool := PooledExamples(clients)
	out := make([]*Client, len(clients))
	for k, c := range clients {
		cg := g.Splitf("repartition-%d", k)
		ex := make([]Example, len(c.Examples))
		copy(ex, c.Examples)
		for i := range ex {
			if cg.Bool(p) {
				ex[i] = pool[cg.IntN(len(pool))]
			}
		}
		out[k] = &Client{ID: c.ID, Examples: ex}
	}
	return out
}

// PooledExamples flattens all clients' examples into one slice (the shared
// distribution used for iid repartitioning and server-side proxy pools).
func PooledExamples(clients []*Client) []Example {
	total := 0
	for _, c := range clients {
		total += len(c.Examples)
	}
	out := make([]Example, 0, total)
	for _, c := range clients {
		out = append(out, c.Examples...)
	}
	return out
}

// ClientWeights returns the evaluation weights p_val,k of Eq. 2: each
// client's example count when weighted is true (the paper's default), or 1
// for every client when weighted is false (used under differential privacy
// to bound sensitivity independently of local dataset sizes; footnote 1).
func ClientWeights(clients []*Client, weighted bool) []float64 {
	w := make([]float64, len(clients))
	for i, c := range clients {
		if weighted {
			w[i] = float64(c.NumExamples())
		} else {
			w[i] = 1
		}
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
