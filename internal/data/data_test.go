package data

import (
	"math"
	"testing"
	"testing/quick"

	"noisyeval/internal/rng"
)

func tinyImageSpec() Spec {
	s := CIFAR10Like()
	s.TrainClients, s.EvalClients = 12, 6
	s.MeanExamples, s.MinExamples, s.MaxExamples = 20, 10, 30
	return s
}

func tinyTextSpec() Spec {
	s := RedditLike()
	s.TrainClients, s.EvalClients = 10, 5
	s.MeanExamples, s.MinExamples, s.MaxExamples = 12, 4, 25
	return s
}

func TestSpecsValidate(t *testing.T) {
	for _, s := range AllSpecs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestSpecsMatchPaperTable(t *testing.T) {
	// Table 2 of the paper.
	want := map[string][5]int{ // train, eval, mean, min, max
		"cifar10":       {400, 100, 100, 83, 131},
		"femnist":       {3507, 360, 203, 19, 393},
		"stackoverflow": {10815, 3678, 391, 1, 194167},
		"reddit":        {40000, 9928, 19, 1, 14440},
	}
	for _, s := range AllSpecs() {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected spec %s", s.Name)
		}
		got := [5]int{s.TrainClients, s.EvalClients, s.MeanExamples, s.MinExamples, s.MaxExamples}
		if got != w {
			t.Errorf("%s stats = %v, want %v", s.Name, got, w)
		}
	}
}

func TestTaskKinds(t *testing.T) {
	if CIFAR10Like().Kind != ImageClassification || FEMNISTLike().Kind != ImageClassification {
		t.Error("image specs mis-kinded")
	}
	if StackOverflowLike().Kind != NextTokenPrediction || RedditLike().Kind != NextTokenPrediction {
		t.Error("text specs mis-kinded")
	}
	if ImageClassification.String() == "" || NextTokenPrediction.String() == "" {
		t.Error("empty kind strings")
	}
}

func TestGenerateImagePopulation(t *testing.T) {
	p := MustGenerate(tinyImageSpec(), rng.New(1))
	if len(p.Train) != 12 || len(p.Val) != 6 {
		t.Fatalf("pools = %d/%d", len(p.Train), len(p.Val))
	}
	for _, c := range append(append([]*Client{}, p.Train...), p.Val...) {
		if len(c.Examples) < 10 || len(c.Examples) > 30 {
			t.Fatalf("client %d has %d examples", c.ID, len(c.Examples))
		}
		for _, ex := range c.Examples {
			if ex.Label < 0 || ex.Label >= 10 {
				t.Fatalf("label %d out of range", ex.Label)
			}
			if len(ex.Features) != p.Spec.FeatureDim {
				t.Fatalf("feature dim %d", len(ex.Features))
			}
			if ex.Tokens != nil {
				t.Fatal("image example has tokens")
			}
		}
	}
}

func TestGenerateTextPopulation(t *testing.T) {
	p := MustGenerate(tinyTextSpec(), rng.New(2))
	for _, c := range p.Train {
		for _, ex := range c.Examples {
			if len(ex.Tokens) != p.Spec.ContextLen {
				t.Fatalf("context len %d", len(ex.Tokens))
			}
			for _, tok := range ex.Tokens {
				if tok < 0 || tok >= p.Spec.Vocab {
					t.Fatalf("token %d out of vocab", tok)
				}
			}
			if ex.Label < 0 || ex.Label >= p.Spec.Vocab {
				t.Fatalf("label %d out of vocab", ex.Label)
			}
			if ex.Features != nil {
				t.Fatal("text example has dense features")
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(tinyImageSpec(), rng.New(9))
	b := MustGenerate(tinyImageSpec(), rng.New(9))
	for k := range a.Train {
		ea, eb := a.Train[k].Examples, b.Train[k].Examples
		if len(ea) != len(eb) {
			t.Fatalf("client %d sizes differ", k)
		}
		for i := range ea {
			if ea[i].Label != eb[i].Label || ea[i].Features[0] != eb[i].Features[0] {
				t.Fatalf("client %d example %d differs", k, i)
			}
		}
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	s := tinyImageSpec()
	s.Classes = 1
	if _, err := Generate(s, rng.New(1)); err == nil {
		t.Fatal("expected error for 1-class spec")
	}
	s2 := tinyImageSpec()
	s2.MinExamples = 50 // > max
	s2.MaxExamples = 30
	if _, err := Generate(s2, rng.New(1)); err == nil {
		t.Fatal("expected error for min > max")
	}
}

func TestDirichletSkewProducesHeterogeneousLabels(t *testing.T) {
	// With alpha=0.1 most clients should be dominated by few classes.
	s := tinyImageSpec()
	s.MeanExamples, s.MinExamples, s.MaxExamples = 100, 100, 100
	p := MustGenerate(s, rng.New(3))
	dominated := 0
	for _, c := range p.Train {
		counts := make([]int, s.Classes)
		for _, ex := range c.Examples {
			counts[ex.Label]++
		}
		maxCount := 0
		for _, n := range counts {
			if n > maxCount {
				maxCount = n
			}
		}
		if float64(maxCount) > 0.5*float64(len(c.Examples)) {
			dominated++
		}
	}
	if frac := float64(dominated) / float64(len(p.Train)); frac < 0.5 {
		t.Errorf("only %.2f of alpha=0.1 clients are label-dominated; want most", frac)
	}
}

func TestScaled(t *testing.T) {
	s := StackOverflowLike().Scaled(0.1, 500)
	if s.TrainClients != 1082 && s.TrainClients != 1081 {
		t.Errorf("scaled train clients = %d", s.TrainClients)
	}
	if s.MaxExamples != 500 {
		t.Errorf("cap not applied: %d", s.MaxExamples)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled spec invalid: %v", err)
	}
	// Scaling never goes below 4 clients.
	tiny := CIFAR10Like().Scaled(1e-9, 0)
	if tiny.TrainClients != 4 || tiny.EvalClients != 4 {
		t.Errorf("floor not applied: %d/%d", tiny.TrainClients, tiny.EvalClients)
	}
}

func TestScaledPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CIFAR10Like().Scaled(0, 0)
}

func TestPoolStats(t *testing.T) {
	clients := []*Client{
		{ID: 0, Examples: make([]Example, 5)},
		{ID: 1, Examples: make([]Example, 15)},
	}
	st := PoolStats(clients)
	if st.Clients != 2 || st.TotalExamples != 20 || st.MeanExamples != 10 || st.MinExamples != 5 || st.MaxExamples != 15 {
		t.Errorf("stats = %+v", st)
	}
	if empty := PoolStats(nil); empty.Clients != 0 || empty.TotalExamples != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestRepartitionIIDPreservesSizes(t *testing.T) {
	p := MustGenerate(tinyImageSpec(), rng.New(4))
	out := RepartitionIID(p.Val, 0.5, rng.New(5))
	if len(out) != len(p.Val) {
		t.Fatalf("client count changed")
	}
	for k := range out {
		if len(out[k].Examples) != len(p.Val[k].Examples) {
			t.Fatalf("client %d size changed", k)
		}
	}
}

func TestRepartitionIIDZeroIsIdentity(t *testing.T) {
	p := MustGenerate(tinyImageSpec(), rng.New(6))
	out := RepartitionIID(p.Val, 0, rng.New(7))
	for k := range out {
		for i := range out[k].Examples {
			if out[k].Examples[i].Label != p.Val[k].Examples[i].Label {
				t.Fatal("p=0 must leave clients unchanged")
			}
		}
	}
}

func TestRepartitionIIDOneHomogenizes(t *testing.T) {
	// After p=1, per-client label distributions should be close to the pool's.
	s := tinyImageSpec()
	s.EvalClients = 8
	s.MeanExamples, s.MinExamples, s.MaxExamples = 200, 200, 200
	p := MustGenerate(s, rng.New(8))
	out := RepartitionIID(p.Val, 1, rng.New(9))

	poolDist := labelDist(PooledExamples(p.Val), s.Classes)
	var worst float64
	for _, c := range out {
		d := labelDist(c.Examples, s.Classes)
		for cls := range d {
			if diff := math.Abs(d[cls] - poolDist[cls]); diff > worst {
				worst = diff
			}
		}
	}
	if worst > 0.15 {
		t.Errorf("p=1 client label dist deviates %.3f from pool; want near-iid", worst)
	}
	// And the natural partition must NOT be near-iid for comparison.
	var worstNat float64
	for _, c := range p.Val {
		d := labelDist(c.Examples, s.Classes)
		for cls := range d {
			if diff := math.Abs(d[cls] - poolDist[cls]); diff > worstNat {
				worstNat = diff
			}
		}
	}
	if worstNat < worst {
		t.Errorf("natural partition (%.3f) should be more skewed than iid (%.3f)", worstNat, worst)
	}
}

func TestRepartitionBadFractionPanics(t *testing.T) {
	p := MustGenerate(tinyImageSpec(), rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RepartitionIID(p.Val, 1.5, rng.New(1))
}

func TestClientWeights(t *testing.T) {
	clients := []*Client{
		{Examples: make([]Example, 3)},
		{Examples: make([]Example, 7)},
	}
	w := ClientWeights(clients, true)
	if w[0] != 3 || w[1] != 7 {
		t.Errorf("weighted = %v", w)
	}
	u := ClientWeights(clients, false)
	if u[0] != 1 || u[1] != 1 {
		t.Errorf("uniform = %v", u)
	}
}

func TestSampleCountBounds(t *testing.T) {
	g := rng.New(10)
	f := func(seed uint8) bool {
		s := StackOverflowLike().Scaled(0.01, 300)
		n := sampleCount(s, g.Splitf("c%d", seed))
		return n >= s.MinExamples && n <= s.MaxExamples
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleCountDegenerate(t *testing.T) {
	s := CIFAR10Like()
	s.MinExamples, s.MeanExamples, s.MaxExamples = 7, 7, 7
	if n := sampleCount(s, rng.New(1)); n != 7 {
		t.Errorf("degenerate count = %d", n)
	}
}

func TestNewModelShapes(t *testing.T) {
	img := MustGenerate(tinyImageSpec(), rng.New(11))
	m := img.NewModel(rng.New(12))
	if m.Classes() != 10 {
		t.Errorf("image model classes = %d", m.Classes())
	}
	txt := MustGenerate(tinyTextSpec(), rng.New(13))
	tm := txt.NewModel(rng.New(14))
	if tm.Classes() != txt.Spec.Vocab {
		t.Errorf("text model classes = %d", tm.Classes())
	}
	// Models must accept the population's own examples.
	_ = m.Predict(img.Train[0].Examples[0].Input())
	_ = tm.Predict(txt.Train[0].Examples[0].Input())
}

func TestPooledExamples(t *testing.T) {
	p := MustGenerate(tinyImageSpec(), rng.New(15))
	pool := PooledExamples(p.Val)
	want := 0
	for _, c := range p.Val {
		want += len(c.Examples)
	}
	if len(pool) != want {
		t.Errorf("pool size = %d, want %d", len(pool), want)
	}
}

func TestNumClasses(t *testing.T) {
	if CIFAR10Like().NumClasses() != 10 {
		t.Error("cifar classes")
	}
	if RedditLike().NumClasses() != RedditLike().Vocab {
		t.Error("reddit classes should equal vocab")
	}
}

func labelDist(ex []Example, classes int) []float64 {
	d := make([]float64, classes)
	for _, e := range ex {
		d[e.Label]++
	}
	for i := range d {
		d[i] /= float64(len(ex))
	}
	return d
}
