package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestVecBasicOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	v.Add(w)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add = %v", v)
	}
	v.Sub(w)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Sub = %v", v)
	}
	v.Scale(2)
	if v[0] != 2 || v[2] != 6 {
		t.Fatalf("Scale = %v", v)
	}
	v.Axpy(0.5, w)
	if v[0] != 4 || v[1] != 6.5 || v[2] != 9 {
		t.Fatalf("Axpy = %v", v)
	}
}

func TestVecDotNormSum(t *testing.T) {
	v := Vec{3, 4}
	if v.Dot(v) != 25 {
		t.Errorf("Dot = %g", v.Dot(v))
	}
	if v.Norm2() != 5 {
		t.Errorf("Norm2 = %g", v.Norm2())
	}
	if v.Sum() != 7 {
		t.Errorf("Sum = %g", v.Sum())
	}
	if v.Mean() != 3.5 {
		t.Errorf("Mean = %g", v.Mean())
	}
	if (Vec{}).Mean() != 0 {
		t.Error("empty Mean should be 0")
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vec{1}.Add(Vec{1, 2})
}

func TestArgMax(t *testing.T) {
	if got := (Vec{1, 5, 5, 2}).ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := (Vec{-3, -1, -2}).ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d", got)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 50)
		}
		v := Vec{clamp(a), clamp(b), clamp(c)}
		v.SoftmaxInPlace()
		sum := v.Sum()
		for _, x := range v {
			if x < 0 || x > 1 {
				return false
			}
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	v := Vec{1000, 1001, 999}
	v.SoftmaxInPlace()
	if v.HasNaN() {
		t.Fatalf("softmax overflowed: %v", v)
	}
	if v.ArgMax() != 1 {
		t.Errorf("ArgMax after softmax = %d", v.ArgMax())
	}
}

func TestLogSumExp(t *testing.T) {
	v := Vec{0, 0}
	if !almostEq(v.LogSumExp(), math.Log(2)) {
		t.Errorf("LogSumExp = %g, want ln 2", v.LogSumExp())
	}
	big := Vec{1000, 1000}
	if got := big.LogSumExp(); math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Errorf("LogSumExp large = %g", got)
	}
}

func TestMatAtSetRow(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At = %g", m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a mutable view")
	}
}

func TestMatOutOfRangePanics(t *testing.T) {
	m := NewMat(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Row(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	out := NewVec(3)
	m.MulVec(Vec{1, 1}, out)
	want := Vec{3, 7, 11}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", out, want)
		}
	}
}

func TestMulVecT(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	out := NewVec(2)
	m.MulVecT(Vec{1, 0, 1}, out)
	if out[0] != 6 || out[1] != 8 {
		t.Fatalf("MulVecT = %v, want [6 8]", out)
	}
}

func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	f := func(seed uint8) bool {
		// Build a 3x4 matrix and a 3-vector from the seed.
		m := NewMat(3, 4)
		x := NewVec(3)
		v := float64(seed)
		for i := range m.Data {
			v = math.Mod(v*1.7+1, 10)
			m.Data[i] = v - 5
		}
		for i := range x {
			v = math.Mod(v*2.3+1, 10)
			x[i] = v - 5
		}
		got := NewVec(4)
		m.MulVecT(x, got)
		// Explicit transpose.
		mt := NewMat(4, 3)
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				mt.Set(j, i, m.At(i, j))
			}
		}
		want := NewVec(4)
		mt.MulVec(x, want)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuter(2, Vec{1, 2}, Vec{3, 4})
	// 2 * [1;2][3 4] = [[6, 8], [12, 16]]
	want := [][]float64{{6, 8}, {12, 16}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("AddOuter = %v", m.Data)
			}
		}
	}
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := NewMat(2, 2)
	MatMul(a, b, c)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("MatMul = %v", c.Data)
			}
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMat(2, 3), NewMat(2, 3), NewMat(2, 3))
}

func TestMatAddScaleAxpy(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{10, 20}})
	a.Add(b)
	if a.At(0, 1) != 22 {
		t.Fatalf("Add = %v", a.Data)
	}
	a.Scale(0.5)
	if a.At(0, 0) != 5.5 {
		t.Fatalf("Scale = %v", a.Data)
	}
	a.Axpy(0.1, b)
	if !almostEq(a.At(0, 1), 13) {
		t.Fatalf("Axpy = %v", a.Data)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	v := Vec{1, 2}
	cv := v.Clone()
	cv[0] = 99
	if v[0] != 1 {
		t.Fatal("Vec Clone shares storage")
	}
}

func TestHasNaN(t *testing.T) {
	if (Vec{1, 2}).HasNaN() {
		t.Error("false positive")
	}
	if !(Vec{1, math.NaN()}).HasNaN() {
		t.Error("missed NaN")
	}
	if !(Vec{math.Inf(1)}).HasNaN() {
		t.Error("missed Inf")
	}
}

func TestFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {1}})
}
