// Package tensor provides the dense float64 linear algebra used by the
// pure-Go neural network substrate: vectors, row-major matrices, GEMM/GEMV,
// elementwise kernels, and numerically stable softmax/log-sum-exp.
//
// The package is deliberately small: it implements exactly what federated
// training of the study's 2-layer models needs, with bounds checks on entry
// and tight inner loops.
package tensor

import (
	"fmt"
	"math"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Fill sets every element to x.
func (v Vec) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every element to 0.
func (v Vec) Zero() { v.Fill(0) }

// Add adds w into v elementwise. Lengths must match.
func (v Vec) Add(w Vec) {
	checkLen("Add", len(v), len(w))
	for i := range v {
		v[i] += w[i]
	}
}

// Sub subtracts w from v elementwise.
func (v Vec) Sub(w Vec) {
	checkLen("Sub", len(v), len(w))
	for i := range v {
		v[i] -= w[i]
	}
}

// Scale multiplies v by a.
func (v Vec) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Axpy computes v += a*w.
func (v Vec) Axpy(a float64, w Vec) {
	checkLen("Axpy", len(v), len(w))
	for i := range v {
		v[i] += a * w[i]
	}
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float64 {
	checkLen("Dot", len(v), len(w))
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Sum returns the sum of elements.
func (v Vec) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the mean of elements; 0 for an empty vector.
func (v Vec) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// ArgMax returns the index of the maximum element (first on ties).
// It panics on an empty vector.
func (v Vec) ArgMax() int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Max returns the maximum element.
func (v Vec) Max() float64 {
	if len(v) == 0 {
		panic("tensor: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// SoftmaxInPlace replaces v with softmax(v), computed stably by subtracting
// the max before exponentiation.
func (v Vec) SoftmaxInPlace() {
	if len(v) == 0 {
		return
	}
	m := v.Max()
	sum := 0.0
	for i := range v {
		v[i] = math.Exp(v[i] - m)
		sum += v[i]
	}
	inv := 1 / sum
	for i := range v {
		v[i] *= inv
	}
}

// LogSumExp returns log(sum(exp(v))) computed stably.
func (v Vec) LogSumExp() float64 {
	if len(v) == 0 {
		panic("tensor: LogSumExp of empty vector")
	}
	m := v.Max()
	sum := 0.0
	for _, x := range v {
		sum += math.Exp(x - m)
	}
	return m + math.Log(sum)
}

// HasNaN reports whether v contains a NaN or Inf.
func (v Vec) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// Mat is a dense row-major matrix with Rows x Cols elements.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMat returns a zero Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMat(%d, %d) with negative dimension", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	cols := len(rows[0])
	m := NewMat(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: FromRows row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set sets element (i, j).
func (m *Mat) Set(i, j int, x float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = x
}

// Row returns row i as a mutable slice view.
func (m *Mat) Row(i int) Vec {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range [0, %d)", i, m.Rows))
	}
	return Vec(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets all elements to 0.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies all elements by a.
func (m *Mat) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Add adds other into m elementwise. Shapes must match.
func (m *Mat) Add(other *Mat) {
	m.checkShape("Add", other)
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
}

// Axpy computes m += a*other elementwise.
func (m *Mat) Axpy(a float64, other *Mat) {
	m.checkShape("Axpy", other)
	for i := range m.Data {
		m.Data[i] += a * other.Data[i]
	}
}

// MulVec computes out = m * x (GEMV). out must have length m.Rows and x
// length m.Cols. out may not alias x.
//
// The inner loop is unrolled with a single accumulator added in index order,
// so results stay bit-identical to the naive loop (a summation-order change
// would perturb every recorded bank; see DESIGN.md "Batched training engine").
func (m *Mat) MulVec(x, out Vec) {
	checkLen("MulVec x", m.Cols, len(x))
	checkLen("MulVec out", m.Rows, len(out))
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*n : (i+1)*n : (i+1)*n]
		s := 0.0
		j := 0
		for ; j+4 <= n; j += 4 {
			s += row[j] * x[j]
			s += row[j+1] * x[j+1]
			s += row[j+2] * x[j+2]
			s += row[j+3] * x[j+3]
		}
		for ; j < n; j++ {
			s += row[j] * x[j]
		}
		out[i] = s
	}
}

// MulVecT computes out = mᵀ * x. out must have length m.Cols and x length
// m.Rows. out may not alias x. out is overwritten.
//
// The xi == 0 skip is load-bearing, not just a fast path: it keeps ReLU-masked
// backward passes cheap AND preserves exact results when weights hold Inf/NaN
// (0*Inf would inject NaN into otherwise-untouched lanes of diverged models,
// whose frozen behaviour the study depends on). The unrolled inner loop writes
// independent elements, so it is bit-identical to the scalar loop.
func (m *Mat) MulVecT(x, out Vec) {
	checkLen("MulVecT x", m.Rows, len(x))
	checkLen("MulVecT out", m.Cols, len(out))
	out.Zero()
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*n : (i+1)*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			out[j] += row[j] * xi
			out[j+1] += row[j+1] * xi
			out[j+2] += row[j+2] * xi
			out[j+3] += row[j+3] * xi
		}
		for ; j < n; j++ {
			out[j] += row[j] * xi
		}
	}
}

// AddOuter accumulates m += a * x yᵀ (rank-1 update), where x has length
// m.Rows and y has length m.Cols. Used for weight gradients. The ax == 0 skip
// and element-independent unroll keep results bit-identical to the scalar
// loop (see MulVecT).
func (m *Mat) AddOuter(a float64, x, y Vec) {
	checkLen("AddOuter x", m.Rows, len(x))
	checkLen("AddOuter y", m.Cols, len(y))
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		ax := a * x[i]
		if ax == 0 {
			continue
		}
		row := m.Data[i*n : (i+1)*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			row[j] += ax * y[j]
			row[j+1] += ax * y[j+1]
			row[j+2] += ax * y[j+2]
			row[j+3] += ax * y[j+3]
		}
		for ; j < n; j++ {
			row[j] += ax * y[j]
		}
	}
}

// MatMul computes c = a * b (GEMM). Shapes: a is n×k, b is k×m, c must be
// n×m and is overwritten. c may not alias a or b. The i-k-j loop order
// streams b and c rows; the av == 0 skip makes ReLU-sparse left operands
// (batched hidden-layer gradients) proportionally cheaper.
func MatMul(a, b, c *Mat) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", a.Cols, b.Rows))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul out shape %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	c.Zero()
	n := c.Cols
	// 2-wide blocking over output rows: each b row is loaded once per row
	// pair. Blocking the output dimension leaves every element's reduction
	// order over k unchanged, so results stay bit-identical to the scalar
	// triple loop.
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		arow0 := a.Data[i*a.Cols : (i+1)*a.Cols]
		arow1 := a.Data[(i+1)*a.Cols : (i+2)*a.Cols]
		crow0 := c.Data[i*n : (i+1)*n : (i+1)*n]
		crow1 := c.Data[(i+1)*n : (i+2)*n : (i+2)*n]
		for k, av0 := range arow0 {
			av1 := arow1[k]
			brow := b.Data[k*n : (k+1)*n : (k+1)*n]
			switch {
			case av0 != 0 && av1 != 0:
				for j := range brow {
					crow0[j] += av0 * brow[j]
					crow1[j] += av1 * brow[j]
				}
			case av0 != 0:
				for j := range brow {
					crow0[j] += av0 * brow[j]
				}
			case av1 != 0:
				for j := range brow {
					crow1[j] += av1 * brow[j]
				}
			}
		}
	}
	for ; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*n : (i+1)*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n : (k+1)*n]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// HasNaN reports whether the matrix contains NaN or Inf.
func (m *Mat) HasNaN() bool { return Vec(m.Data).HasNaN() }

func (m *Mat) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d, %d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

func (m *Mat) checkShape(op string, other *Mat) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

func checkLen(op string, want, got int) {
	if want != got {
		panic(fmt.Sprintf("tensor: %s length mismatch: want %d, got %d", op, want, got))
	}
}
