package tensor

import (
	"math"
	"testing"

	"noisyeval/internal/rng"
)

func randMat(rows, cols int, g *rng.RNG) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = g.Normal(0, 1)
	}
	return m
}

// TestMatMulNT checks c = a·bᵀ against the naive triple loop on random
// shapes, including non-multiple-of-4 inner dimensions that exercise the
// unroll tails.
func TestMatMulNT(t *testing.T) {
	g := rng.New(1)
	for _, shape := range [][3]int{{1, 1, 1}, {2, 3, 5}, {7, 4, 9}, {32, 24, 48}, {5, 10, 3}, {3, 6, 1}} {
		n, k, m := shape[0], shape[1], shape[2]
		a, b := randMat(n, k, g), randMat(m, k, g)
		c := NewMat(n, m)
		MatMulNT(a, b, c)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				want := 0.0
				for l := 0; l < k; l++ {
					want += a.At(i, l) * b.At(j, l)
				}
				if math.Abs(c.At(i, j)-want) > 1e-12 {
					t.Fatalf("shape %v: c[%d][%d] = %g, want %g", shape, i, j, c.At(i, j), want)
				}
			}
		}
	}
}

// TestMatMulTNAcc checks c += aᵀ·b against the naive loop, verifying the
// accumulate semantics and the zero-skip.
func TestMatMulTNAcc(t *testing.T) {
	g := rng.New(2)
	for _, shape := range [][3]int{{1, 1, 1}, {4, 3, 5}, {32, 10, 24}, {9, 7, 6}} {
		n, k, m := shape[0], shape[1], shape[2]
		a, b := randMat(n, k, g), randMat(n, m, g)
		// Sparsify a to exercise the skip.
		for i := range a.Data {
			if g.Bool(0.4) {
				a.Data[i] = 0
			}
		}
		c := randMat(k, m, g)
		want := c.Clone()
		MatMulTNAcc(a, b, c)
		for o := 0; o < k; o++ {
			for j := 0; j < m; j++ {
				w := want.At(o, j)
				for i := 0; i < n; i++ {
					w += a.At(i, o) * b.At(i, j)
				}
				if math.Abs(c.At(o, j)-w) > 1e-12 {
					t.Fatalf("shape %v: c[%d][%d] = %g, want %g", shape, o, j, c.At(o, j), w)
				}
			}
		}
	}
}

func TestAddRowVecAndColSums(t *testing.T) {
	g := rng.New(3)
	m := randMat(7, 5, g)
	orig := m.Clone()
	v := NewVec(5)
	for i := range v {
		v[i] = g.Normal(0, 1)
	}
	m.AddRowVec(v)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != orig.At(i, j)+v[j] {
				t.Fatalf("AddRowVec [%d][%d]", i, j)
			}
		}
	}
	dst := NewVec(5)
	dst[0] = 2
	m.AccumColSums(dst)
	for j := 0; j < 5; j++ {
		want := 0.0
		if j == 0 {
			want = 2
		}
		for i := 0; i < 7; i++ {
			want += m.At(i, j)
		}
		if math.Abs(dst[j]-want) > 1e-12 {
			t.Fatalf("AccumColSums[%d] = %g, want %g", j, dst[j], want)
		}
	}
}

// TestSoftmaxCrossEntropyRows checks the fused loss kernel row-by-row
// against the per-sample SoftmaxInPlace + clamp + onehot-subtract sequence.
func TestSoftmaxCrossEntropyRows(t *testing.T) {
	g := rng.New(4)
	logits := randMat(9, 6, g)
	labels := make([]int, 9)
	for i := range labels {
		labels[i] = g.IntN(6)
	}
	ref := logits.Clone()
	wantLoss := 0.0
	for i := 0; i < ref.Rows; i++ {
		row := ref.Row(i)
		row.SoftmaxInPlace()
		wantLoss += -math.Log(math.Max(row[labels[i]], 1e-12))
		row[labels[i]] -= 1
	}
	gotLoss := SoftmaxCrossEntropyRows(logits, labels)
	if gotLoss != wantLoss {
		t.Fatalf("loss %g, want %g", gotLoss, wantLoss)
	}
	for i := range logits.Data {
		if logits.Data[i] != ref.Data[i] {
			t.Fatalf("grad[%d] = %g, want %g", i, logits.Data[i], ref.Data[i])
		}
	}
}

func TestArgMaxRows(t *testing.T) {
	m := FromRows([][]float64{{1, 3, 2}, {5, 5, 4}, {-1, -2, -0.5}})
	preds := make([]int, 3)
	m.ArgMaxRows(preds)
	for i, want := range []int{1, 0, 2} {
		if preds[i] != want {
			t.Fatalf("preds[%d] = %d, want %d", i, preds[i], want)
		}
	}
}

func TestResize(t *testing.T) {
	m := NewMat(4, 8)
	base := &m.Data[0]
	m.Resize(2, 8)
	if m.Rows != 2 || m.Cols != 8 || len(m.Data) != 16 {
		t.Fatalf("Resize shrink: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if &m.Data[0] != base {
		t.Fatal("Resize shrink reallocated")
	}
	m.Resize(4, 8)
	if &m.Data[0] != base {
		t.Fatal("Resize regrow within capacity reallocated")
	}
	m.Resize(10, 8)
	if m.Rows != 10 || len(m.Data) != 80 {
		t.Fatalf("Resize grow: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
}

// TestUnrolledKernelsBitIdentical pins the bit-exactness contract of the
// unrolled per-sample kernels: for MulVec the unroll must keep a single
// in-order accumulator, and for MulVecT/AddOuter/MatMul the unroll writes
// independent elements, so results equal the naive scalar loops bit for bit.
func TestUnrolledKernelsBitIdentical(t *testing.T) {
	g := rng.New(5)
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {10, 24}, {48, 10}, {7, 7}} {
		r, c := shape[0], shape[1]
		m := randMat(r, c, g)
		x, y := NewVec(c), NewVec(r)
		for i := range x {
			x[i] = g.Normal(0, 1)
		}
		for i := range y {
			if g.Bool(0.3) {
				y[i] = 0 // exercise the zero-skip
			} else {
				y[i] = g.Normal(0, 1)
			}
		}

		out := NewVec(r)
		m.MulVec(x, out)
		for i := 0; i < r; i++ {
			s := 0.0
			row := m.Row(i)
			for j := range row {
				s += row[j] * x[j]
			}
			if out[i] != s {
				t.Fatalf("MulVec %v row %d: %g != %g (not bit-identical)", shape, i, out[i], s)
			}
		}

		outT := NewVec(c)
		m.MulVecT(y, outT)
		ref := NewVec(c)
		for i := 0; i < r; i++ {
			if y[i] == 0 {
				continue
			}
			row := m.Row(i)
			for j := range row {
				ref[j] += row[j] * y[i]
			}
		}
		for j := range ref {
			if outT[j] != ref[j] {
				t.Fatalf("MulVecT %v col %d: %g != %g (not bit-identical)", shape, j, outT[j], ref[j])
			}
		}

		acc := randMat(r, c, g)
		refAcc := acc.Clone()
		acc.AddOuter(1.5, y, x)
		for i := 0; i < r; i++ {
			ax := 1.5 * y[i]
			if ax == 0 {
				continue
			}
			row := refAcc.Row(i)
			for j := range row {
				row[j] += ax * x[j]
			}
		}
		for i := range acc.Data {
			if acc.Data[i] != refAcc.Data[i] {
				t.Fatalf("AddOuter %v elt %d: %g != %g (not bit-identical)", shape, i, acc.Data[i], refAcc.Data[i])
			}
		}
	}
}
