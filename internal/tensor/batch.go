// Batched (minibatch) kernels: the GEMM forms and the row-wise loss kernel
// that the nn batched forward/backward path is built on. These kernels own
// the training hot loop, so their inner loops are unrolled four wide with
// independent accumulators — unlike the per-sample kernels in tensor.go they
// carry no bit-compatibility obligation (the batched path is a different
// summation order by construction, keyed separately in the bank cache).
package tensor

import (
	"fmt"
	"math"
)

// Resize sets m to rows×cols, reusing the backing array when capacity
// allows. Contents are undefined after a resize; callers overwrite or Zero.
// A matrix that cycles through batch sizes (full minibatches plus a smaller
// tail) settles on the largest seen allocation and never reallocates.
func (m *Mat) Resize(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: Resize(%d, %d) with negative dimension", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
}

// MatMulNT computes c = a * bᵀ. Shapes: a is n×k, b is m×k, c must be n×m
// and is overwritten. Both operands stream row-major, which is why the
// batched Linear forward (X·Wᵀ with W stored out×in) uses this form: every
// inner product walks two contiguous rows.
func MatMulNT(a, b, c *Mat) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulNT inner dims %d != %d", a.Cols, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulNT out shape %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Rows))
	}
	k := a.Cols
	// 2×2 register tiling: each pass computes a 2-row × 2-column output
	// tile, so every loaded a-row and b-row element feeds two multiply
	// chains and the four accumulators give the FPU independent work.
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		arow0 := a.Data[i*k : (i+1)*k : (i+1)*k]
		arow1 := a.Data[(i+1)*k : (i+2)*k : (i+2)*k]
		crow0 := c.Data[i*c.Cols : (i+1)*c.Cols]
		crow1 := c.Data[(i+1)*c.Cols : (i+2)*c.Cols]
		o := 0
		for ; o+2 <= b.Rows; o += 2 {
			brow0 := b.Data[o*k : (o+1)*k : (o+1)*k]
			brow1 := b.Data[(o+1)*k : (o+2)*k : (o+2)*k]
			arow1 := arow1[:len(arow0)]
			brow0 = brow0[:len(arow0)]
			brow1 = brow1[:len(arow0)]
			var s00, s01, s10, s11 float64
			for j, a0 := range arow0 {
				a1 := arow1[j]
				b0, b1 := brow0[j], brow1[j]
				s00 += a0 * b0
				s01 += a0 * b1
				s10 += a1 * b0
				s11 += a1 * b1
			}
			crow0[o], crow0[o+1] = s00, s01
			crow1[o], crow1[o+1] = s10, s11
		}
		for ; o < b.Rows; o++ {
			brow := b.Data[o*k : (o+1)*k : (o+1)*k]
			var s0, s1 float64
			for j, bv := range brow {
				s0 += arow0[j] * bv
				s1 += arow1[j] * bv
			}
			crow0[o], crow1[o] = s0, s1
		}
	}
	for ; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k : (i+1)*k]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		o := 0
		for ; o+2 <= b.Rows; o += 2 {
			brow0 := b.Data[o*k : (o+1)*k : (o+1)*k]
			brow1 := b.Data[(o+1)*k : (o+2)*k : (o+2)*k]
			var s0, s1 float64
			for j, av := range arow {
				s0 += av * brow0[j]
				s1 += av * brow1[j]
			}
			crow[o], crow[o+1] = s0, s1
		}
		for ; o < b.Rows; o++ {
			brow := b.Data[o*k : (o+1)*k : (o+1)*k]
			s := 0.0
			for j, av := range arow {
				s += av * brow[j]
			}
			crow[o] = s
		}
	}
}

// MatMulTNAcc accumulates c += aᵀ * b. Shapes: a is n×k, b is n×m, c must be
// k×m. This is the batched weight-gradient form dW += Gᵀ·X (G = n×out
// upstream gradients, X = n×in activations): one call replaces n rank-1
// AddOuter updates. The g == 0 skip keeps ReLU-masked gradient rows cheap.
func MatMulTNAcc(a, b, c *Mat) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTNAcc batch dims %d != %d", a.Rows, b.Rows))
	}
	if c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTNAcc out shape %dx%d, want %dx%d", c.Rows, c.Cols, a.Cols, b.Cols))
	}
	k, m := a.Cols, b.Cols
	// Output-stationary with 4-wide batch blocking: each c row is loaded and
	// stored once per four batch rows, and the four products per element form
	// independent multiply chains. Branching on individual zero gradients
	// (ReLU-masked rows are ~half zeros, sign-random) mispredicts too often
	// to pay for the skipped work, so only the all-four-zero case — rare and
	// cheap to test — short-circuits.
	for o := 0; o < k; o++ {
		crow := c.Data[o*m : (o+1)*m : (o+1)*m]
		i := 0
		for ; i+4 <= a.Rows; i += 4 {
			g0 := a.Data[i*k+o]
			g1 := a.Data[(i+1)*k+o]
			g2 := a.Data[(i+2)*k+o]
			g3 := a.Data[(i+3)*k+o]
			if g0 == 0 && g1 == 0 && g2 == 0 && g3 == 0 {
				continue
			}
			brow0 := b.Data[i*m : (i+1)*m : (i+1)*m]
			brow1 := b.Data[(i+1)*m : (i+2)*m : (i+2)*m]
			brow2 := b.Data[(i+2)*m : (i+3)*m : (i+3)*m]
			brow3 := b.Data[(i+3)*m : (i+4)*m : (i+4)*m]
			brow1 = brow1[:len(brow0)]
			brow2 = brow2[:len(brow0)]
			brow3 = brow3[:len(brow0)]
			crow := crow[:len(brow0)]
			for j := range brow0 {
				crow[j] += g0*brow0[j] + g1*brow1[j] + g2*brow2[j] + g3*brow3[j]
			}
		}
		for ; i < a.Rows; i++ {
			g := a.Data[i*k+o]
			if g == 0 {
				continue
			}
			brow := b.Data[i*m : (i+1)*m : (i+1)*m]
			crow := crow[:len(brow)]
			for j := range brow {
				crow[j] += g * brow[j]
			}
		}
	}
}

// AddRowVec adds v to every row of m (bias broadcast). v must have length
// m.Cols.
func (m *Mat) AddRowVec(v Vec) {
	checkLen("AddRowVec", m.Cols, len(v))
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*n : (i+1)*n : (i+1)*n]
		for j := range row {
			row[j] += v[j]
		}
	}
}

// AccumColSums accumulates dst[j] += Σ_i m[i][j] (batched bias gradient).
// dst must have length m.Cols.
func (m *Mat) AccumColSums(dst Vec) {
	checkLen("AccumColSums", m.Cols, len(dst))
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*n : (i+1)*n : (i+1)*n]
		for j := range row {
			dst[j] += row[j]
		}
	}
}

// ArgMaxRows fills preds[i] with the argmax of row i (first on ties,
// matching Vec.ArgMax). preds must have length m.Rows.
func (m *Mat) ArgMaxRows(preds []int) {
	checkLen("ArgMaxRows", m.Rows, len(preds))
	for i := range preds {
		preds[i] = m.Row(i).ArgMax()
	}
}

// SoftmaxCrossEntropyRows treats each row of logits as one example's class
// logits: it replaces the row in place with the cross-entropy gradient
// softmax(row) − onehot(labels[i]) and returns the summed (not averaged)
// loss, matching the per-sample convention (callers divide by the batch size
// at the optimizer step). Per-row arithmetic is identical to the per-sample
// SoftmaxInPlace + log clamp, so a batch of one reproduces LossAndBackward's
// loss exactly.
func SoftmaxCrossEntropyRows(logits *Mat, labels []int) float64 {
	checkLen("SoftmaxCrossEntropyRows", logits.Rows, len(labels))
	total := 0.0
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		label := labels[i]
		if label < 0 || label >= len(row) {
			panic(fmt.Sprintf("tensor: label %d out of %d classes", label, len(row)))
		}
		row.SoftmaxInPlace()
		total += -math.Log(math.Max(row[label], 1e-12))
		row[label] -= 1
	}
	return total
}
