// Package opt implements the optimizers of the study: client-side SGD with
// momentum and weight decay (ClientOPT in Algorithm 2 of the paper), and the
// server-side Adam applied to pseudo-gradients, i.e. FedAdam (Reddi et al.,
// 2020 — ServerOPT). Both operate on flat weight vectors produced by
// nn.Network.FlattenParams, which is also the representation exchanged
// between server and clients in the federated simulation.
package opt

import (
	"fmt"
	"math"

	"noisyeval/internal/tensor"
)

// SGD is stochastic gradient descent with heavy-ball momentum, decoupled
// weight decay, and optional gradient-norm clipping. The zero value is not
// usable; construct with NewSGD.
type SGD struct {
	LR          float64 // learning rate
	Momentum    float64 // heavy-ball coefficient in [0, 1)
	WeightDecay float64 // L2 coefficient applied to weights each step
	ClipNorm    float64 // if > 0, clip gradient to this L2 norm before the step

	velocity tensor.Vec
}

// NewSGD returns an SGD optimizer for a model with dim weights.
func NewSGD(dim int, lr, momentum, weightDecay float64) *SGD {
	if lr < 0 {
		panic(fmt.Sprintf("opt: negative SGD learning rate %g", lr))
	}
	if momentum < 0 || momentum >= 1 {
		panic(fmt.Sprintf("opt: SGD momentum %g outside [0, 1)", momentum))
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: tensor.NewVec(dim)}
}

// Step applies one update: w <- w - lr * (v_t), where
// v_t = momentum*v_{t-1} + grad + weightDecay*w. grad is not modified unless
// clipping rescales it in place.
func (s *SGD) Step(w, grad tensor.Vec) {
	if len(w) != len(s.velocity) || len(grad) != len(s.velocity) {
		panic(fmt.Sprintf("opt: SGD dim mismatch w=%d grad=%d state=%d", len(w), len(grad), len(s.velocity)))
	}
	if s.ClipNorm > 0 {
		if n := grad.Norm2(); n > s.ClipNorm {
			grad.Scale(s.ClipNorm / n)
		}
	}
	// Slice-length hints let the compiler drop the per-element bounds
	// checks; the arithmetic itself is unchanged (and must stay so — this
	// step is on the bit-compatibility path of recorded banks).
	grad = grad[:len(w)]
	vel := s.velocity[:len(w)]
	for i := range w {
		g := grad[i] + s.WeightDecay*w[i]
		vel[i] = s.Momentum*vel[i] + g
		w[i] -= s.LR * vel[i]
	}
}

// Reset clears the momentum state (used when a client starts a fresh local
// solve from the server weights, as in FedAvg/FedAdam local training).
func (s *SGD) Reset() { s.velocity.Zero() }

// Adam is the Adam optimizer. When driven with pseudo-gradients
// Δ = w_server - w_avg_clients it implements FedAdam's ServerOPT.
type Adam struct {
	LR      float64 // server learning rate η
	Beta1   float64 // 1st-moment decay β1
	Beta2   float64 // 2nd-moment decay β2
	Eps     float64 // adaptivity constant τ
	LRDecay float64 // multiplicative per-step lr decay γ (1 = none)

	m, v tensor.Vec
	t    int
	lr   float64 // current decayed lr
}

// NewAdam returns an Adam optimizer for dim weights. The paper's search
// space draws β1 ∈ [0, 0.9], β2 ∈ [0, 0.999] and fixes γ = 0.9999.
func NewAdam(dim int, lr, beta1, beta2, eps, lrDecay float64) *Adam {
	if lr < 0 {
		panic(fmt.Sprintf("opt: negative Adam learning rate %g", lr))
	}
	if beta1 < 0 || beta1 >= 1 || beta2 < 0 || beta2 >= 1 {
		panic(fmt.Sprintf("opt: Adam betas (%g, %g) outside [0, 1)", beta1, beta2))
	}
	if eps <= 0 {
		eps = 1e-8
	}
	if lrDecay <= 0 {
		lrDecay = 1
	}
	return &Adam{
		LR: lr, Beta1: beta1, Beta2: beta2, Eps: eps, LRDecay: lrDecay,
		m: tensor.NewVec(dim), v: tensor.NewVec(dim), lr: lr,
	}
}

// Step applies one bias-corrected Adam update to w given grad.
func (a *Adam) Step(w, grad tensor.Vec) {
	if len(w) != len(a.m) || len(grad) != len(a.m) {
		panic(fmt.Sprintf("opt: Adam dim mismatch w=%d grad=%d state=%d", len(w), len(grad), len(a.m)))
	}
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range w {
		g := grad[i]
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mhat := a.m[i] / b1c
		vhat := a.v[i] / b2c
		w[i] -= a.lr * mhat / (math.Sqrt(vhat) + a.Eps)
	}
	a.lr *= a.LRDecay
}

// StepCount returns the number of updates applied.
func (a *Adam) StepCount() int { return a.t }

// CurrentLR returns the decayed learning rate that the next step will use.
func (a *Adam) CurrentLR() float64 { return a.lr }

// Reset clears moments, the step counter, and the decayed learning rate.
func (a *Adam) Reset() {
	a.m.Zero()
	a.v.Zero()
	a.t = 0
	a.lr = a.LR
}
