package opt

import (
	"math"
	"testing"

	"noisyeval/internal/tensor"
)

func TestSGDPlainStep(t *testing.T) {
	s := NewSGD(2, 0.1, 0, 0)
	w := tensor.Vec{1, 2}
	s.Step(w, tensor.Vec{10, -10})
	if w[0] != 0 || w[1] != 3 {
		t.Fatalf("w = %v, want [0 3]", w)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	s := NewSGD(1, 0.1, 0.9, 0)
	w := tensor.Vec{0}
	s.Step(w, tensor.Vec{1}) // v=1, w=-0.1
	s.Step(w, tensor.Vec{1}) // v=1.9, w=-0.29
	if math.Abs(w[0]-(-0.29)) > 1e-12 {
		t.Fatalf("w = %v, want -0.29", w[0])
	}
}

func TestSGDWeightDecayPullsTowardZero(t *testing.T) {
	s := NewSGD(1, 0.1, 0, 0.5)
	w := tensor.Vec{2}
	s.Step(w, tensor.Vec{0})
	// g = 0 + 0.5*2 = 1; w = 2 - 0.1 = 1.9
	if math.Abs(w[0]-1.9) > 1e-12 {
		t.Fatalf("w = %v, want 1.9", w[0])
	}
}

func TestSGDClipNorm(t *testing.T) {
	s := NewSGD(2, 1, 0, 0)
	s.ClipNorm = 1
	w := tensor.Vec{0, 0}
	g := tensor.Vec{3, 4} // norm 5, clipped to [0.6, 0.8]
	s.Step(w, g)
	if math.Abs(w[0]+0.6) > 1e-12 || math.Abs(w[1]+0.8) > 1e-12 {
		t.Fatalf("w = %v, want [-0.6 -0.8]", w)
	}
}

func TestSGDClipNoopBelowThreshold(t *testing.T) {
	s := NewSGD(1, 1, 0, 0)
	s.ClipNorm = 100
	w := tensor.Vec{0}
	s.Step(w, tensor.Vec{2})
	if w[0] != -2 {
		t.Fatalf("w = %v", w[0])
	}
}

func TestSGDReset(t *testing.T) {
	s := NewSGD(1, 1, 0.9, 0)
	w := tensor.Vec{0}
	s.Step(w, tensor.Vec{1})
	s.Reset()
	w2 := tensor.Vec{0}
	s.Step(w2, tensor.Vec{1})
	if w2[0] != -1 {
		t.Fatalf("after Reset, step = %v, want -1 (no momentum carryover)", w2[0])
	}
}

func TestSGDValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative lr":  func() { NewSGD(1, -1, 0, 0) },
		"momentum >=1": func() { NewSGD(1, 0.1, 1, 0) },
		"dim mismatch": func() { NewSGD(2, 0.1, 0, 0).Step(tensor.Vec{1}, tensor.Vec{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAdamFirstStepIsSignedLR(t *testing.T) {
	// With bias correction, the first Adam step is approximately
	// -lr * sign(grad) regardless of gradient magnitude.
	a := NewAdam(2, 0.1, 0.9, 0.999, 1e-8, 1)
	w := tensor.Vec{0, 0}
	a.Step(w, tensor.Vec{1000, -0.001})
	if math.Abs(w[0]+0.1) > 1e-3 || math.Abs(w[1]-0.1) > 1e-3 {
		t.Fatalf("first step = %v, want ~[-0.1 0.1]", w)
	}
}

func TestAdamMatchesReferenceTrace(t *testing.T) {
	// Hand-computed two steps with beta1=0.5, beta2=0.5, eps=1e-8, lr=1.
	a := NewAdam(1, 1, 0.5, 0.5, 1e-8, 1)
	w := tensor.Vec{0}
	a.Step(w, tensor.Vec{2})
	// m=1, v=2; mhat=1/0.5=2, vhat=2/0.5=4; w -= 1*2/(2+eps) ≈ -1
	if math.Abs(w[0]+1) > 1e-6 {
		t.Fatalf("step1 w = %v, want ~-1", w[0])
	}
	a.Step(w, tensor.Vec{1})
	// m=0.5*1+0.5*1=1, v=0.5*2+0.5*1=1.5
	// b1c=0.75, b2c=0.75; mhat=4/3, vhat=2; w -= (4/3)/sqrt(2)
	want := -1 - (4.0/3.0)/math.Sqrt(2)
	if math.Abs(w[0]-want) > 1e-6 {
		t.Fatalf("step2 w = %v, want %v", w[0], want)
	}
}

func TestAdamLRDecay(t *testing.T) {
	a := NewAdam(1, 1, 0, 0, 1e-8, 0.5)
	w := tensor.Vec{0}
	a.Step(w, tensor.Vec{1}) // effective lr 1 -> step ~-1
	first := w[0]
	a.Step(w, tensor.Vec{1}) // effective lr 0.5 -> step ~-0.5
	second := w[0] - first
	if math.Abs(first+1) > 1e-6 || math.Abs(second+0.5) > 1e-6 {
		t.Fatalf("decayed steps = %v then %v, want ~-1 then ~-0.5", first, second)
	}
	if math.Abs(a.CurrentLR()-0.25) > 1e-12 {
		t.Fatalf("CurrentLR = %v, want 0.25", a.CurrentLR())
	}
}

func TestAdamZeroBetasIsSignSGD(t *testing.T) {
	// beta1=beta2=0 reduces Adam to signSGD with magnitude lr.
	a := NewAdam(1, 0.3, 0, 0, 1e-12, 1)
	w := tensor.Vec{0}
	a.Step(w, tensor.Vec{-7})
	if math.Abs(w[0]-0.3) > 1e-6 {
		t.Fatalf("signSGD step = %v, want 0.3", w[0])
	}
}

func TestAdamReset(t *testing.T) {
	a := NewAdam(1, 1, 0.9, 0.999, 1e-8, 0.5)
	w := tensor.Vec{0}
	a.Step(w, tensor.Vec{1})
	a.Reset()
	if a.StepCount() != 0 || a.CurrentLR() != 1 {
		t.Fatalf("Reset left t=%d lr=%v", a.StepCount(), a.CurrentLR())
	}
	w2 := tensor.Vec{0}
	a.Step(w2, tensor.Vec{1})
	if math.Abs(w2[0]+1) > 1e-3 {
		t.Fatalf("post-reset first step = %v, want ~-1", w2[0])
	}
}

func TestAdamValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative lr":  func() { NewAdam(1, -1, 0.9, 0.999, 1e-8, 1) },
		"beta1 >= 1":   func() { NewAdam(1, 1, 1, 0.999, 1e-8, 1) },
		"beta2 < 0":    func() { NewAdam(1, 1, 0.9, -0.1, 1e-8, 1) },
		"dim mismatch": func() { NewAdam(2, 1, 0, 0, 1e-8, 1).Step(tensor.Vec{1}, tensor.Vec{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAdamDefaults(t *testing.T) {
	a := NewAdam(1, 1, 0, 0, 0, 0)
	if a.Eps != 1e-8 {
		t.Errorf("default eps = %g", a.Eps)
	}
	if a.LRDecay != 1 {
		t.Errorf("default lr decay = %g", a.LRDecay)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = 0.5*||w - target||^2 with momentum SGD.
	target := tensor.Vec{3, -2, 1}
	w := tensor.Vec{0, 0, 0}
	s := NewSGD(3, 0.1, 0.5, 0)
	g := tensor.NewVec(3)
	for i := 0; i < 200; i++ {
		for j := range g {
			g[j] = w[j] - target[j]
		}
		s.Step(w, g)
	}
	for j := range w {
		if math.Abs(w[j]-target[j]) > 1e-6 {
			t.Fatalf("SGD did not converge: w = %v", w)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	target := tensor.Vec{3, -2, 1}
	w := tensor.Vec{0, 0, 0}
	a := NewAdam(3, 0.1, 0.9, 0.999, 1e-8, 1)
	g := tensor.NewVec(3)
	for i := 0; i < 2000; i++ {
		for j := range g {
			g[j] = w[j] - target[j]
		}
		a.Step(w, g)
	}
	for j := range w {
		if math.Abs(w[j]-target[j]) > 1e-3 {
			t.Fatalf("Adam did not converge: w = %v", w)
		}
	}
}
