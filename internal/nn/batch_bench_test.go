package nn

import (
	"fmt"
	"testing"

	"noisyeval/internal/rng"
	"noisyeval/internal/tensor"
)

// Micro-benchmarks for the batched kernels, swept over the batch sizes the
// study's client HP grid actually uses (plus batch=1, the per-sample
// degenerate case). Run with -benchmem: steady-state allocs/op must be 0,
// and TestBatchSteadyStateAllocs asserts that same number in the regular
// test suite so it is tracked, not just observable.

var benchSink float64

// BenchmarkLinearForwardBatch measures the batched Linear forward (X·Wᵀ+b)
// at the study's MLP shape (24 -> 48).
func BenchmarkLinearForwardBatch(b *testing.B) {
	for _, bsz := range []int{1, 32, 128} {
		b.Run(fmt.Sprintf("batch%d", bsz), func(b *testing.B) {
			g := rng.New(1)
			l := NewLinear(24, 48, g.Split("l"))
			X := tensor.NewMat(bsz, 24)
			for i := range X.Data {
				X.Data[i] = g.Normal(0, 1)
			}
			l.ForwardBatch(X) // warm workspaces
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := l.ForwardBatch(X)
				benchSink = out.Data[0]
			}
		})
	}
}

// BenchmarkLossBackwardBatch measures the full batched training step kernel
// chain — forward, row-wise softmax cross-entropy, backward — on the
// study's 2-layer MLP (24 -> 48 -> 10).
func BenchmarkLossBackwardBatch(b *testing.B) {
	for _, bsz := range []int{1, 32, 128} {
		b.Run(fmt.Sprintf("batch%d", bsz), func(b *testing.B) {
			g := rng.New(2)
			net := NewMLP(24, 48, 10, g.Split("net"))
			X := tensor.NewMat(bsz, 24)
			for i := range X.Data {
				X.Data[i] = g.Normal(0, 1)
			}
			labels := make([]int, bsz)
			for i := range labels {
				labels[i] = g.IntN(10)
			}
			net.ZeroGrad()
			net.LossAndBackwardBatch(X, nil, labels) // warm workspaces
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.ZeroGrad()
				benchSink = net.LossAndBackwardBatch(X, nil, labels)
			}
		})
	}
}

// BenchmarkLossBackwardBatchText is the text-model variant (EmbeddingBag
// front-end), whose backward ends in the embedding scatter-add.
func BenchmarkLossBackwardBatchText(b *testing.B) {
	for _, bsz := range []int{1, 32, 128} {
		b.Run(fmt.Sprintf("batch%d", bsz), func(b *testing.B) {
			g := rng.New(3)
			net := NewTextNet(200, 16, 48, g.Split("net"))
			ctx, labels := tokenBatch(bsz, 200, 8, g)
			net.ZeroGrad()
			net.LossAndBackwardBatch(nil, ctx, labels)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.ZeroGrad()
				benchSink = net.LossAndBackwardBatch(nil, ctx, labels)
			}
		})
	}
}

// BenchmarkPerSampleLossBackward is the per-sample reference at the same
// MLP shape, for direct comparison with BenchmarkLossBackwardBatch/batch1
// and the batched sweep.
func BenchmarkPerSampleLossBackward(b *testing.B) {
	g := rng.New(4)
	net := NewMLP(24, 48, 10, g.Split("net"))
	x := tensor.NewVec(24)
	for i := range x {
		x[i] = g.Normal(0, 1)
	}
	in := Input{Features: x}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		benchSink = net.LossAndBackward(in, 3)
	}
}
