package nn

import (
	"math"
	"testing"
	"testing/quick"

	"noisyeval/internal/rng"
	"noisyeval/internal/tensor"
)

func TestLinearForward(t *testing.T) {
	l := NewLinear(2, 2, rng.New(1))
	// Overwrite weights for a deterministic check.
	copy(l.w.W, []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(l.b.W, []float64{10, 20})
	out := l.Forward(tensor.Vec{1, 1})
	if out[0] != 13 || out[1] != 27 {
		t.Fatalf("Forward = %v, want [13 27]", out)
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU(3)
	out := r.Forward(tensor.Vec{-1, 0, 2})
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Fatalf("ReLU = %v", out)
	}
	gin := r.Backward(tensor.Vec{5, 5, 5})
	if gin[0] != 0 || gin[1] != 0 || gin[2] != 5 {
		t.Fatalf("ReLU backward = %v", gin)
	}
}

func TestTanhBackward(t *testing.T) {
	th := NewTanh(1)
	th.Forward(tensor.Vec{0.5})
	gin := th.Backward(tensor.Vec{1})
	y := math.Tanh(0.5)
	if math.Abs(gin[0]-(1-y*y)) > 1e-12 {
		t.Fatalf("Tanh backward = %v", gin)
	}
}

// numericalGrad estimates dLoss/dw for every weight by central differences.
func numericalGrad(net *Network, in Input, label int) tensor.Vec {
	const h = 1e-5
	n := net.NumWeights()
	w := tensor.NewVec(n)
	net.FlattenParams(w)
	grad := tensor.NewVec(n)
	for i := 0; i < n; i++ {
		orig := w[i]
		w[i] = orig + h
		net.SetParams(w)
		lp := net.Loss(in, label)
		w[i] = orig - h
		net.SetParams(w)
		lm := net.Loss(in, label)
		w[i] = orig
		grad[i] = (lp - lm) / (2 * h)
	}
	net.SetParams(w)
	return grad
}

func TestMLPGradCheck(t *testing.T) {
	net := NewMLP(3, 4, 2, rng.New(7))
	in := Input{Features: tensor.Vec{0.3, -0.8, 1.2}}
	label := 1
	net.ZeroGrad()
	net.LossAndBackward(in, label)
	analytic := tensor.NewVec(net.NumWeights())
	net.FlattenGrads(analytic)
	numeric := numericalGrad(net, in, label)
	for i := range analytic {
		diff := math.Abs(analytic[i] - numeric[i])
		scale := math.Max(1, math.Abs(numeric[i]))
		if diff/scale > 1e-5 {
			t.Fatalf("grad mismatch at weight %d: analytic %g vs numeric %g", i, analytic[i], numeric[i])
		}
	}
}

func TestTextNetGradCheck(t *testing.T) {
	net := NewTextNet(6, 4, 5, rng.New(9))
	in := Input{Tokens: []int{0, 3, 3, 5}}
	label := 2
	net.ZeroGrad()
	net.LossAndBackward(in, label)
	analytic := tensor.NewVec(net.NumWeights())
	net.FlattenGrads(analytic)
	numeric := numericalGrad(net, in, label)
	for i := range analytic {
		diff := math.Abs(analytic[i] - numeric[i])
		scale := math.Max(1, math.Abs(numeric[i]))
		if diff/scale > 1e-5 {
			t.Fatalf("grad mismatch at weight %d: analytic %g vs numeric %g", i, analytic[i], numeric[i])
		}
	}
}

func TestLossMatchesLossAndBackward(t *testing.T) {
	net := NewMLP(2, 3, 2, rng.New(3))
	in := Input{Features: tensor.Vec{1, -1}}
	l1 := net.Loss(in, 0)
	net.ZeroGrad()
	l2 := net.LossAndBackward(in, 0)
	if math.Abs(l1-l2) > 1e-9 {
		t.Fatalf("Loss %g != LossAndBackward %g", l1, l2)
	}
}

func TestGradAccumulation(t *testing.T) {
	// Two backward passes on the same example should double the gradient.
	net := NewMLP(2, 3, 2, rng.New(4))
	in := Input{Features: tensor.Vec{0.5, 0.7}}
	net.ZeroGrad()
	net.LossAndBackward(in, 1)
	g1 := tensor.NewVec(net.NumWeights())
	net.FlattenGrads(g1)
	net.LossAndBackward(in, 1)
	g2 := tensor.NewVec(net.NumWeights())
	net.FlattenGrads(g2)
	for i := range g1 {
		if math.Abs(g2[i]-2*g1[i]) > 1e-9 {
			t.Fatalf("gradient did not accumulate at %d: %g vs 2*%g", i, g2[i], g1[i])
		}
	}
}

func TestFlattenSetRoundTrip(t *testing.T) {
	f := func(seed uint16) bool {
		net := NewMLP(3, 5, 4, rng.New(uint64(seed)+1))
		w := tensor.NewVec(net.NumWeights())
		net.FlattenParams(w)
		mod := w.Clone()
		for i := range mod {
			mod[i] += 0.125
		}
		net.SetParams(mod)
		back := tensor.NewVec(net.NumWeights())
		net.FlattenParams(back)
		for i := range back {
			if back[i] != mod[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReplicaDeterminism(t *testing.T) {
	// Two networks built from the same split label must be weight-identical.
	a := NewMLP(4, 8, 3, rng.New(11).Split("model"))
	b := NewMLP(4, 8, 3, rng.New(11).Split("model"))
	wa := tensor.NewVec(a.NumWeights())
	wb := tensor.NewVec(b.NumWeights())
	a.FlattenParams(wa)
	b.FlattenParams(wb)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same-seed replicas differ")
		}
	}
}

func TestPredictInRange(t *testing.T) {
	net := NewMLP(2, 4, 3, rng.New(5))
	for i := 0; i < 20; i++ {
		p := net.Predict(Input{Features: tensor.Vec{float64(i), -float64(i)}})
		if p < 0 || p >= 3 {
			t.Fatalf("Predict = %d", p)
		}
	}
}

func TestTrainingReducesLossSingleExample(t *testing.T) {
	// Plain gradient descent on one example must drive its loss down.
	net := NewMLP(2, 8, 2, rng.New(6))
	in := Input{Features: tensor.Vec{1, 2}}
	label := 0
	w := tensor.NewVec(net.NumWeights())
	g := tensor.NewVec(net.NumWeights())
	before := net.Loss(in, label)
	for step := 0; step < 50; step++ {
		net.ZeroGrad()
		net.LossAndBackward(in, label)
		net.FlattenParams(w)
		net.FlattenGrads(g)
		w.Axpy(-0.1, g)
		net.SetParams(w)
	}
	after := net.Loss(in, label)
	if after >= before {
		t.Fatalf("loss did not decrease: %g -> %g", before, after)
	}
	if after > 0.1 {
		t.Errorf("single-example loss should be near zero, got %g", after)
	}
}

func TestTextNetTrainingReducesLoss(t *testing.T) {
	net := NewTextNet(8, 6, 10, rng.New(12))
	in := Input{Tokens: []int{1, 2, 3}}
	label := 4
	w := tensor.NewVec(net.NumWeights())
	g := tensor.NewVec(net.NumWeights())
	before := net.Loss(in, label)
	for step := 0; step < 80; step++ {
		net.ZeroGrad()
		net.LossAndBackward(in, label)
		net.FlattenParams(w)
		net.FlattenGrads(g)
		w.Axpy(-0.5, g)
		net.SetParams(w)
	}
	if after := net.Loss(in, label); after >= before {
		t.Fatalf("text loss did not decrease: %g -> %g", before, after)
	}
}

func TestEmbeddingBagMeanPooling(t *testing.T) {
	g := rng.New(13)
	e := NewEmbeddingBag(4, 2, g)
	copy(e.emb.W, []float64{1, 2, 3, 4, 5, 6, 7, 8}) // rows: [1,2],[3,4],[5,6],[7,8]
	out := e.ForwardTokens([]int{0, 2})
	if out[0] != 3 || out[1] != 4 {
		t.Fatalf("mean pool = %v, want [3 4]", out)
	}
}

func TestEmbeddingBagPanics(t *testing.T) {
	e := NewEmbeddingBag(4, 2, rng.New(1))
	for name, fn := range map[string]func(){
		"empty":        func() { e.ForwardTokens(nil) },
		"out-of-vocab": func() { e.ForwardTokens([]int{4}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHasNaNDetectsDivergence(t *testing.T) {
	net := NewMLP(2, 2, 2, rng.New(14))
	if net.HasNaN() {
		t.Fatal("fresh network reports NaN")
	}
	w := tensor.NewVec(net.NumWeights())
	net.FlattenParams(w)
	w[0] = math.NaN()
	net.SetParams(w)
	if !net.HasNaN() {
		t.Fatal("NaN not detected")
	}
}

func TestNumWeightsMatchesArchitecture(t *testing.T) {
	net := NewMLP(10, 16, 4, rng.New(2))
	want := 10*16 + 16 + 16*4 + 4
	if net.NumWeights() != want {
		t.Errorf("NumWeights = %d, want %d", net.NumWeights(), want)
	}
	text := NewTextNet(32, 8, 16, rng.New(2))
	wantText := 32*8 + 8*16 + 16 + 16*32 + 32
	if text.NumWeights() != wantText {
		t.Errorf("text NumWeights = %d, want %d", text.NumWeights(), wantText)
	}
}

func TestInputValidation(t *testing.T) {
	net := NewMLP(2, 2, 2, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing features")
		}
	}()
	net.Logits(Input{})
}

func TestLabelValidation(t *testing.T) {
	net := NewMLP(2, 2, 2, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad label")
		}
	}()
	net.LossAndBackward(Input{Features: tensor.Vec{1, 1}}, 5)
}
