// Package nn implements the small neural networks used as the training
// substrate for the noisy-evaluation study: per-sample forward/backward
// layers, an embedding-bag front-end for next-token-prediction tasks, and a
// softmax cross-entropy loss.
//
// The paper trains 2-layer CNNs (image tasks) and 2-layer LSTMs (text tasks).
// This package substitutes 2-layer MLPs over dense synthetic features and an
// EmbeddingBag + hidden-layer network over token contexts; the tuned
// hyperparameters (client lr/momentum/batch size, server Adam moments) act
// through identical mechanisms, which is what the study measures.
//
// Networks are not safe for concurrent use: each goroutine should own its
// model replica (federated simulation clones server weights per client).
package nn

import (
	"fmt"
	"math"

	"noisyeval/internal/rng"
	"noisyeval/internal/tensor"
)

// Input is one training or evaluation example's features: either a dense
// feature vector (image-like tasks) or a token-id context (text-like tasks).
type Input struct {
	Features tensor.Vec
	Tokens   []int
}

// Param is one trainable tensor with its gradient accumulator. W and G are
// flat storage; Rows/Cols describe the logical matrix shape (Cols == 0 for a
// vector such as a bias). Inside a Network, W and G are subslices of one
// contiguous arena per network (see NewNetwork), which is what lets the
// federated client loop run optimizer steps in place over the model's own
// storage instead of flattening into scratch vectors.
type Param struct {
	Name       string
	Rows, Cols int
	W, G       tensor.Vec

	mat, gmat tensor.Mat // cached views over W/G, refreshed on rebase
}

func newParam(name string, rows, cols int) *Param {
	n := rows
	if cols > 0 {
		n = rows * cols
	}
	p := &Param{Name: name, Rows: rows, Cols: cols, W: tensor.NewVec(n), G: tensor.NewVec(n)}
	p.refreshViews()
	return p
}

// refreshViews rebuilds the cached matrix views after W/G are repointed.
func (p *Param) refreshViews() {
	if p.Cols > 0 {
		p.mat = tensor.Mat{Rows: p.Rows, Cols: p.Cols, Data: p.W}
		p.gmat = tensor.Mat{Rows: p.Rows, Cols: p.Cols, Data: p.G}
	}
}

// Size returns the number of scalar weights in the parameter.
func (p *Param) Size() int { return len(p.W) }

// Mat returns a matrix view over W for a matrix-shaped parameter.
func (p *Param) Mat() *tensor.Mat {
	if p.Cols == 0 {
		panic(fmt.Sprintf("nn: param %s is a vector", p.Name))
	}
	return &p.mat
}

// GradMat returns a matrix view over G.
func (p *Param) GradMat() *tensor.Mat {
	if p.Cols == 0 {
		panic(fmt.Sprintf("nn: param %s is a vector", p.Name))
	}
	return &p.gmat
}

// Layer is a differentiable transform of a dense vector. Forward must be
// called before Backward; Backward accumulates parameter gradients into each
// Param's G and returns the gradient with respect to the layer input.
type Layer interface {
	// OutDim returns the output dimensionality.
	OutDim() int
	// Forward computes the layer output for x, retaining whatever state
	// Backward needs. The returned slice is owned by the layer and valid
	// until the next Forward.
	Forward(x tensor.Vec) tensor.Vec
	// Backward consumes the gradient with respect to the layer output and
	// returns the gradient with respect to the layer input. Parameter
	// gradients accumulate into Params().G.
	Backward(grad tensor.Vec) tensor.Vec
	// Params returns the trainable parameters (possibly none).
	Params() []*Param
}

// Linear is a fully connected layer y = Wx + b.
type Linear struct {
	w, b *Param
	in   tensor.Vec // retained input
	out  tensor.Vec
	gin  tensor.Vec

	inB        *tensor.Mat // retained batch input (caller-owned)
	outB, ginB tensor.Mat  // batch workspaces
}

// NewLinear returns a Linear layer with He-uniform initialised weights.
func NewLinear(inDim, outDim int, g *rng.RNG) *Linear {
	l := &Linear{
		w:   newParam("linear.w", outDim, inDim),
		b:   newParam("linear.b", outDim, 0),
		out: tensor.NewVec(outDim),
		gin: tensor.NewVec(inDim),
	}
	bound := math.Sqrt(6.0 / float64(inDim))
	for i := range l.w.W {
		l.w.W[i] = g.Uniform(-bound, bound)
	}
	return l
}

// OutDim implements Layer.
func (l *Linear) OutDim() int { return l.w.Rows }

// InDim returns the input dimensionality.
func (l *Linear) InDim() int { return l.w.Cols }

// Forward implements Layer.
func (l *Linear) Forward(x tensor.Vec) tensor.Vec {
	l.in = x
	l.w.Mat().MulVec(x, l.out)
	l.out.Add(l.b.W)
	return l.out
}

// Backward implements Layer.
func (l *Linear) Backward(grad tensor.Vec) tensor.Vec {
	l.w.GradMat().AddOuter(1, grad, l.in)
	l.b.G.Add(grad)
	l.w.Mat().MulVecT(grad, l.gin)
	return l.gin
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// ReLU is the rectified linear activation.
type ReLU struct {
	dim  int
	out  tensor.Vec
	mask []bool
	gin  tensor.Vec

	outB, ginB tensor.Mat // batch workspaces
}

// NewReLU returns a ReLU over dim units.
func NewReLU(dim int) *ReLU {
	return &ReLU{dim: dim, out: tensor.NewVec(dim), mask: make([]bool, dim), gin: tensor.NewVec(dim)}
}

// OutDim implements Layer.
func (r *ReLU) OutDim() int { return r.dim }

// Forward implements Layer.
func (r *ReLU) Forward(x tensor.Vec) tensor.Vec {
	if len(x) != r.dim {
		panic(fmt.Sprintf("nn: ReLU dim %d, got %d", r.dim, len(x)))
	}
	for i, v := range x {
		if v > 0 {
			r.out[i], r.mask[i] = v, true
		} else {
			r.out[i], r.mask[i] = 0, false
		}
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad tensor.Vec) tensor.Vec {
	for i, m := range r.mask {
		if m {
			r.gin[i] = grad[i]
		} else {
			r.gin[i] = 0
		}
	}
	return r.gin
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	dim int
	out tensor.Vec
	gin tensor.Vec

	outB, ginB tensor.Mat // batch workspaces
}

// NewTanh returns a Tanh over dim units.
func NewTanh(dim int) *Tanh {
	return &Tanh{dim: dim, out: tensor.NewVec(dim), gin: tensor.NewVec(dim)}
}

// OutDim implements Layer.
func (t *Tanh) OutDim() int { return t.dim }

// Forward implements Layer.
func (t *Tanh) Forward(x tensor.Vec) tensor.Vec {
	for i, v := range x {
		t.out[i] = math.Tanh(v)
	}
	return t.out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad tensor.Vec) tensor.Vec {
	for i, y := range t.out {
		t.gin[i] = grad[i] * (1 - y*y)
	}
	return t.gin
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// EmbeddingBag maps a token-id context to the mean of the tokens' embedding
// vectors. It is the front-end for the next-token-prediction populations,
// standing in for the paper's LSTM input embedding (size 128 in the paper).
type EmbeddingBag struct {
	emb    *Param
	dim    int
	tokens []int // retained context
	out    tensor.Vec

	tokensB [][]int    // retained batch contexts (caller-owned)
	outB    tensor.Mat // batch workspace
}

// NewEmbeddingBag returns an embedding table of vocab x dim.
func NewEmbeddingBag(vocab, dim int, g *rng.RNG) *EmbeddingBag {
	e := &EmbeddingBag{emb: newParam("embed", vocab, dim), dim: dim, out: tensor.NewVec(dim)}
	scale := 1 / math.Sqrt(float64(dim))
	for i := range e.emb.W {
		e.emb.W[i] = g.Normal(0, scale)
	}
	return e
}

// OutDim returns the embedding dimensionality.
func (e *EmbeddingBag) OutDim() int { return e.dim }

// Vocab returns the vocabulary size.
func (e *EmbeddingBag) Vocab() int { return e.emb.Rows }

// ForwardTokens embeds and mean-pools the context tokens.
func (e *EmbeddingBag) ForwardTokens(tokens []int) tensor.Vec {
	if len(tokens) == 0 {
		panic("nn: EmbeddingBag forward with empty context")
	}
	e.tokens = tokens
	e.out.Zero()
	for _, tok := range tokens {
		if tok < 0 || tok >= e.emb.Rows {
			panic(fmt.Sprintf("nn: token %d out of vocab %d", tok, e.emb.Rows))
		}
		row := e.emb.W[tok*e.dim : (tok+1)*e.dim]
		e.out.Add(tensor.Vec(row))
	}
	e.out.Scale(1 / float64(len(e.tokens)))
	return e.out
}

// BackwardTokens accumulates embedding gradients for the retained context.
func (e *EmbeddingBag) BackwardTokens(grad tensor.Vec) {
	inv := 1 / float64(len(e.tokens))
	for _, tok := range e.tokens {
		grow := e.emb.G[tok*e.dim : (tok+1)*e.dim]
		tensor.Vec(grow).Axpy(inv, grad)
	}
}

// Params returns the embedding table parameter.
func (e *EmbeddingBag) Params() []*Param { return []*Param{e.emb} }

// Network is a feed-forward classifier: an optional EmbeddingBag front-end
// (token inputs) or direct dense features, followed by a stack of Layers
// whose final output is class logits.
type Network struct {
	Embed  *EmbeddingBag
	Layers []Layer

	params  []*Param
	classes int
	probs   tensor.Vec // scratch for loss computation

	// flatW/flatG are the contiguous parameter/gradient arenas every
	// Param's W/G is a subslice of; ParamsVec/GradsVec expose them so
	// optimizers can step the live model without flatten/unflatten copies.
	flatW, flatG tensor.Vec

	// batchLayers is the Layers stack seen through BatchLayer; nil when any
	// layer lacks a batched path (the batched entry points then panic).
	batchLayers []BatchLayer
}

// NewNetwork assembles a network. embed may be nil for dense-feature tasks.
// The final layer's OutDim is the number of classes.
//
// Assembly rebases every parameter onto one contiguous weight arena and one
// contiguous gradient arena, in Params() order — the same order FlattenParams
// has always used, so flat-vector semantics are unchanged while ParamsVec,
// GradsVec, and ZeroGrad become single-slice operations.
func NewNetwork(embed *EmbeddingBag, layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: network needs at least one layer")
	}
	n := &Network{Embed: embed, Layers: layers, classes: layers[len(layers)-1].OutDim()}
	if embed != nil {
		n.params = append(n.params, embed.Params()...)
	}
	for _, l := range layers {
		n.params = append(n.params, l.Params()...)
	}
	total := 0
	for _, p := range n.params {
		total += p.Size()
	}
	n.flatW, n.flatG = tensor.NewVec(total), tensor.NewVec(total)
	off := 0
	for _, p := range n.params {
		sz := p.Size()
		copy(n.flatW[off:off+sz], p.W)
		p.W = n.flatW[off : off+sz : off+sz]
		p.G = n.flatG[off : off+sz : off+sz]
		p.refreshViews()
		off += sz
	}
	batch := make([]BatchLayer, 0, len(layers))
	for _, l := range layers {
		bl, ok := l.(BatchLayer)
		if !ok {
			batch = nil
			break
		}
		batch = append(batch, bl)
	}
	n.batchLayers = batch
	n.probs = tensor.NewVec(n.classes)
	return n
}

// NewMLP builds the image-task model: inDim -> hidden(ReLU) -> classes.
// This is the stand-in for the paper's 2-layer CNN.
func NewMLP(inDim, hidden, classes int, g *rng.RNG) *Network {
	return NewNetwork(nil,
		NewLinear(inDim, hidden, g.Split("l1")),
		NewReLU(hidden),
		NewLinear(hidden, classes, g.Split("l2")),
	)
}

// NewTextNet builds the next-token model: EmbeddingBag(vocab, embDim) ->
// hidden(Tanh) -> vocab logits. This is the stand-in for the paper's 2-layer
// LSTM with embedding and hidden size 128.
func NewTextNet(vocab, embDim, hidden int, g *rng.RNG) *Network {
	return NewNetwork(NewEmbeddingBag(vocab, embDim, g.Split("emb")),
		NewLinear(embDim, hidden, g.Split("l1")),
		NewTanh(hidden),
		NewLinear(hidden, vocab, g.Split("l2")),
	)
}

// Classes returns the number of output classes.
func (n *Network) Classes() int { return n.classes }

// Params returns all trainable parameters in a fixed order.
func (n *Network) Params() []*Param { return n.params }

// NumWeights returns the total number of scalar weights.
func (n *Network) NumWeights() int {
	total := 0
	for _, p := range n.params {
		total += p.Size()
	}
	return total
}

// Logits runs a forward pass and returns the class logits. The returned
// slice is owned by the network and valid until the next forward pass.
func (n *Network) Logits(in Input) tensor.Vec {
	var x tensor.Vec
	switch {
	case n.Embed != nil:
		x = n.Embed.ForwardTokens(in.Tokens)
	case in.Features != nil:
		x = in.Features
	default:
		panic("nn: input has neither features nor an embedding front-end")
	}
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Predict returns the argmax class for the input.
func (n *Network) Predict(in Input) int { return n.Logits(in).ArgMax() }

// LossAndBackward runs forward + softmax cross-entropy + backward for one
// example, accumulating parameter gradients. It returns the loss.
func (n *Network) LossAndBackward(in Input, label int) float64 {
	logits := n.Logits(in)
	if label < 0 || label >= n.classes {
		panic(fmt.Sprintf("nn: label %d out of %d classes", label, n.classes))
	}
	copy(n.probs, logits)
	n.probs.SoftmaxInPlace()
	loss := -math.Log(math.Max(n.probs[label], 1e-12))
	// dL/dlogits = p - onehot(label)
	n.probs[label] -= 1
	grad := n.probs
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	if n.Embed != nil {
		n.Embed.BackwardTokens(grad)
	}
	return loss
}

// Loss computes the cross-entropy loss without a backward pass.
func (n *Network) Loss(in Input, label int) float64 {
	logits := n.Logits(in)
	return logits.LogSumExp() - logits[label]
}

// ZeroGrad clears all parameter gradients (one pass over the arena).
func (n *Network) ZeroGrad() { n.flatG.Zero() }

// ParamsVec returns the network's live flat parameter storage — a view, not
// a copy. Writing through it (or stepping an optimizer over it) mutates the
// model directly; the layout matches FlattenParams/SetParams.
func (n *Network) ParamsVec() tensor.Vec { return n.flatW }

// GradsVec returns the live flat gradient storage (view, FlattenGrads
// layout). Valid between ZeroGrad and the next backward pass like any
// gradient accumulator.
func (n *Network) GradsVec() tensor.Vec { return n.flatG }

// FlattenParams copies all weights into dst, which must have length
// NumWeights. The order is stable across calls and across replicas built by
// the same constructor.
func (n *Network) FlattenParams(dst tensor.Vec) {
	if len(dst) != len(n.flatW) {
		panic(fmt.Sprintf("nn: FlattenParams dst length %d, want %d", len(dst), len(n.flatW)))
	}
	copy(dst, n.flatW)
}

// SetParams copies the flat weight vector src into the network parameters.
func (n *Network) SetParams(src tensor.Vec) {
	if len(src) != len(n.flatW) {
		panic(fmt.Sprintf("nn: SetParams src length %d, want %d", len(src), len(n.flatW)))
	}
	copy(n.flatW, src)
}

// FlattenGrads copies all gradients into dst (length NumWeights).
func (n *Network) FlattenGrads(dst tensor.Vec) {
	if len(dst) != len(n.flatG) {
		panic(fmt.Sprintf("nn: FlattenGrads dst length %d, want %d", len(dst), len(n.flatG)))
	}
	copy(dst, n.flatG)
}

// HasNaN reports whether any weight is NaN/Inf (training divergence).
func (n *Network) HasNaN() bool {
	for _, p := range n.params {
		if p.W.HasNaN() {
			return true
		}
	}
	return false
}
