package nn

import (
	"math"
	"testing"

	"noisyeval/internal/rng"
	"noisyeval/internal/tensor"
)

// relClose reports |a-b| <= tol * max(1, |a|, |b|).
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// denseBatch builds a random dense minibatch and its labels.
func denseBatch(bsz, inDim, classes int, g *rng.RNG) (*tensor.Mat, []int) {
	X := tensor.NewMat(bsz, inDim)
	for i := range X.Data {
		X.Data[i] = g.Normal(0, 1)
	}
	labels := make([]int, bsz)
	for i := range labels {
		labels[i] = g.IntN(classes)
	}
	return X, labels
}

// tokenBatch builds random token contexts and labels.
func tokenBatch(bsz, vocab, maxCtx int, g *rng.RNG) ([][]int, []int) {
	ctx := make([][]int, bsz)
	labels := make([]int, bsz)
	for i := range ctx {
		n := 1 + g.IntN(maxCtx)
		toks := make([]int, n)
		for j := range toks {
			toks[j] = g.IntN(vocab)
		}
		ctx[i] = toks
		labels[i] = g.IntN(vocab)
	}
	return ctx, labels
}

// TestBatchParityMLP is the batched-vs-per-sample property test for dense
// networks: on random shapes and batches, ForwardBatch logits, summed loss,
// and accumulated gradients must match the per-sample path within 1e-12
// relative tolerance.
func TestBatchParityMLP(t *testing.T) {
	g := rng.New(101)
	for trial := 0; trial < 20; trial++ {
		inDim := 1 + g.IntN(30)
		hidden := 1 + g.IntN(40)
		classes := 2 + g.IntN(9)
		bsz := 1 + g.IntN(40)
		net := NewMLP(inDim, hidden, classes, g.Split("net"))
		X, labels := denseBatch(bsz, inDim, classes, g)

		// Per-sample reference.
		net.ZeroGrad()
		wantLoss := 0.0
		wantLogits := tensor.NewMat(bsz, classes)
		for i := 0; i < bsz; i++ {
			copy(wantLogits.Row(i), net.Logits(Input{Features: X.Row(i)}))
			wantLoss += net.LossAndBackward(Input{Features: X.Row(i)}, labels[i])
		}
		wantG := tensor.NewVec(net.NumWeights())
		net.FlattenGrads(wantG)

		// Batched path.
		gotLogits := net.LogitsBatch(X, nil)
		for i := 0; i < bsz; i++ {
			for j := 0; j < classes; j++ {
				if !relClose(gotLogits.At(i, j), wantLogits.At(i, j), 1e-12) {
					t.Fatalf("trial %d: logits[%d][%d] %g != %g", trial, i, j, gotLogits.At(i, j), wantLogits.At(i, j))
				}
			}
		}
		net.ZeroGrad()
		gotLoss := net.LossAndBackwardBatch(X, nil, labels)
		if !relClose(gotLoss, wantLoss, 1e-12) {
			t.Fatalf("trial %d: loss %g != %g", trial, gotLoss, wantLoss)
		}
		gotG := net.GradsVec()
		for i := range gotG {
			if !relClose(gotG[i], wantG[i], 1e-12) {
				t.Fatalf("trial %d: grad[%d] %g != %g", trial, i, gotG[i], wantG[i])
			}
		}
	}
}

// TestBatchParityTextNet is the same property test for EmbeddingBag
// networks (token contexts of varying length).
func TestBatchParityTextNet(t *testing.T) {
	g := rng.New(202)
	for trial := 0; trial < 15; trial++ {
		vocab := 5 + g.IntN(40)
		embDim := 1 + g.IntN(16)
		hidden := 1 + g.IntN(24)
		bsz := 1 + g.IntN(24)
		net := NewTextNet(vocab, embDim, hidden, g.Split("net"))
		ctx, labels := tokenBatch(bsz, vocab, 9, g)

		net.ZeroGrad()
		wantLoss := 0.0
		for i := 0; i < bsz; i++ {
			wantLoss += net.LossAndBackward(Input{Tokens: ctx[i]}, labels[i])
		}
		wantG := tensor.NewVec(net.NumWeights())
		net.FlattenGrads(wantG)

		net.ZeroGrad()
		gotLoss := net.LossAndBackwardBatch(nil, ctx, labels)
		if !relClose(gotLoss, wantLoss, 1e-12) {
			t.Fatalf("trial %d: loss %g != %g", trial, gotLoss, wantLoss)
		}
		gotG := net.GradsVec()
		for i := range gotG {
			if !relClose(gotG[i], wantG[i], 1e-12) {
				t.Fatalf("trial %d: grad[%d] %g != %g", trial, i, gotG[i], wantG[i])
			}
		}
	}
}

// TestPredictBatch checks PredictBatch equals the row-argmax of the batched
// logits and (on clearly separated inputs) the per-sample Predict.
func TestPredictBatch(t *testing.T) {
	g := rng.New(303)
	net := NewMLP(12, 20, 5, g.Split("net"))
	X, _ := denseBatch(17, 12, 5, g)
	preds := make([]int, 17)
	net.PredictBatch(X, nil, preds)
	for i := 0; i < 17; i++ {
		if p := net.Predict(Input{Features: X.Row(i)}); p != preds[i] {
			// The two paths may only disagree when the top two logits are
			// within kernel summation-order noise.
			logits := net.Logits(Input{Features: X.Row(i)}).Clone()
			if math.Abs(logits[p]-logits[preds[i]]) > 1e-9 {
				t.Fatalf("row %d: PredictBatch %d vs Predict %d (gap %g)", i, preds[i], p, logits[p]-logits[preds[i]])
			}
		}
	}
}

// TestParamsVecIsLive verifies ParamsVec/GradsVec are true views: writes
// through ParamsVec must change model behaviour, and per-sample gradient
// accumulation must land in GradsVec.
func TestParamsVecIsLive(t *testing.T) {
	g := rng.New(404)
	net := NewMLP(4, 6, 3, g.Split("net"))
	in := Input{Features: tensor.Vec{1, -0.5, 0.25, 2}}
	before := net.Logits(in).Clone()

	w := net.ParamsVec()
	if len(w) != net.NumWeights() {
		t.Fatalf("ParamsVec length %d, want %d", len(w), net.NumWeights())
	}
	// FlattenParams must agree with the view.
	flat := tensor.NewVec(net.NumWeights())
	net.FlattenParams(flat)
	for i := range flat {
		if flat[i] != w[i] {
			t.Fatalf("FlattenParams[%d] %g != ParamsVec %g", i, flat[i], w[i])
		}
	}
	for i := range w {
		w[i] = 0
	}
	after := net.Logits(in)
	for i := range after {
		if after[i] != 0 {
			t.Fatalf("zeroed ParamsVec still produces logit %g", after[i])
		}
	}
	_ = before

	net.SetParams(flat)
	net.ZeroGrad()
	net.LossAndBackward(in, 1)
	gv := net.GradsVec()
	sum := 0.0
	for _, x := range gv {
		sum += math.Abs(x)
	}
	if sum == 0 {
		t.Fatal("GradsVec empty after LossAndBackward")
	}
}

// TestBatchSteadyStateAllocs asserts the batched hot loop's zero-allocation
// contract: after a warm-up pass, forward+backward over a reused minibatch
// performs no heap allocation.
func TestBatchSteadyStateAllocs(t *testing.T) {
	g := rng.New(505)
	net := NewMLP(24, 48, 10, g.Split("net"))
	X, labels := denseBatch(32, 24, 10, g)
	net.ZeroGrad()
	net.LossAndBackwardBatch(X, nil, labels) // warm up workspaces
	allocs := testing.AllocsPerRun(100, func() {
		net.ZeroGrad()
		net.LossAndBackwardBatch(X, nil, labels)
		net.GradsVec().Scale(1.0 / 32)
	})
	if allocs != 0 {
		t.Fatalf("batched train step allocates %.1f/op, want 0", allocs)
	}

	tg := rng.New(506)
	tnet := NewTextNet(50, 8, 16, tg.Split("net"))
	ctx, tlabels := tokenBatch(32, 50, 6, tg)
	tnet.ZeroGrad()
	tnet.LossAndBackwardBatch(nil, ctx, tlabels)
	allocs = testing.AllocsPerRun(100, func() {
		tnet.ZeroGrad()
		tnet.LossAndBackwardBatch(nil, ctx, tlabels)
	})
	if allocs != 0 {
		t.Fatalf("batched text train step allocates %.1f/op, want 0", allocs)
	}
}
