// Batched forward/backward: every built-in layer processes row-major
// example matrices (one example per row) through the GEMM kernels in
// internal/tensor, with per-layer activation/gradient workspaces that are
// resized in place — steady-state training allocates nothing. Parity with
// the per-sample path is pinned to 1e-12 by TestBatchParity; the residual
// difference is summation order inside the dot-product kernels.
package nn

import (
	"fmt"
	"math"

	"noisyeval/internal/tensor"
)

// BatchLayer is a Layer that can also process a minibatch at once. The same
// call ordering rules apply per batch: ForwardBatch before BackwardBatch,
// returned matrices owned by the layer and valid until its next forward.
// Batched and per-sample state are separate; interleaving the two paths
// between a forward and its backward is not supported.
type BatchLayer interface {
	Layer
	// ForwardBatch computes the layer output for each row of x (B×in),
	// returning a B×out matrix.
	ForwardBatch(x *tensor.Mat) *tensor.Mat
	// BackwardBatch consumes the per-row output gradients (B×out),
	// accumulates parameter gradients (summed over rows, matching the
	// per-sample accumulation convention), and returns the per-row input
	// gradients (B×in).
	BackwardBatch(grad *tensor.Mat) *tensor.Mat
}

// ForwardBatch implements BatchLayer: out = X·Wᵀ + b per row.
func (l *Linear) ForwardBatch(x *tensor.Mat) *tensor.Mat {
	if x.Cols != l.w.Cols {
		panic(fmt.Sprintf("nn: Linear batch in dim %d, want %d", x.Cols, l.w.Cols))
	}
	l.inB = x
	l.outB.Resize(x.Rows, l.w.Rows)
	tensor.MatMulNT(x, l.w.Mat(), &l.outB)
	l.outB.AddRowVec(l.b.W)
	return &l.outB
}

// BackwardBatch implements BatchLayer: dW += Gᵀ·X, db += Σ rows(G),
// dX = G·W — three GEMM-shaped calls replacing B rank-1 updates.
func (l *Linear) BackwardBatch(grad *tensor.Mat) *tensor.Mat {
	l.BackwardBatchParams(grad)
	l.ginB.Resize(grad.Rows, l.w.Cols)
	tensor.MatMul(grad, l.w.Mat(), &l.ginB)
	return &l.ginB
}

// BackwardBatchParams accumulates only the parameter gradients, skipping the
// input-gradient GEMM. The network uses it for the first dense layer, whose
// input gradient has no consumer — for the study's 2-layer MLPs that is
// nearly half of the first layer's backward cost.
func (l *Linear) BackwardBatchParams(grad *tensor.Mat) {
	tensor.MatMulTNAcc(grad, l.inB, l.w.GradMat())
	grad.AccumColSums(l.b.G)
}

// ForwardBatch implements BatchLayer.
func (r *ReLU) ForwardBatch(x *tensor.Mat) *tensor.Mat {
	if x.Cols != r.dim {
		panic(fmt.Sprintf("nn: ReLU batch dim %d, want %d", x.Cols, r.dim))
	}
	r.outB.Resize(x.Rows, x.Cols)
	out := r.outB.Data[:len(x.Data)]
	for i, v := range x.Data {
		// Branchless max(v, 0): clear all bits when the sign bit is set.
		// Pre-activations are sign-random, so a compare here mispredicts
		// half the time and costs more than the whole GEMM row it follows.
		b := math.Float64bits(v)
		out[i] = math.Float64frombits(b &^ uint64(int64(b)>>63))
	}
	return &r.outB
}

// BackwardBatch implements BatchLayer; the retained outputs double as the
// activation mask (out > 0 iff the unit fired).
func (r *ReLU) BackwardBatch(grad *tensor.Mat) *tensor.Mat {
	r.ginB.Resize(grad.Rows, grad.Cols)
	out := r.outB.Data[:len(grad.Data)]
	gin := r.ginB.Data[:len(grad.Data)]
	for i, g := range grad.Data {
		// Branchless select: retained outputs are either +0 (unit off) or
		// strictly positive, so bits(out)-1 underflows to sign-set exactly
		// for the off units; that sign masks g to zero.
		mask := uint64(int64(math.Float64bits(out[i])-1) >> 63)
		gin[i] = math.Float64frombits(math.Float64bits(g) &^ mask)
	}
	return &r.ginB
}

// ForwardBatch implements BatchLayer.
func (t *Tanh) ForwardBatch(x *tensor.Mat) *tensor.Mat {
	if x.Cols != t.dim {
		panic(fmt.Sprintf("nn: Tanh batch dim %d, want %d", x.Cols, t.dim))
	}
	t.outB.Resize(x.Rows, x.Cols)
	out := t.outB.Data[:len(x.Data)]
	for i, v := range x.Data {
		out[i] = math.Tanh(v)
	}
	return &t.outB
}

// BackwardBatch implements BatchLayer.
func (t *Tanh) BackwardBatch(grad *tensor.Mat) *tensor.Mat {
	t.ginB.Resize(grad.Rows, grad.Cols)
	out := t.outB.Data[:len(grad.Data)]
	gin := t.ginB.Data[:len(grad.Data)]
	for i, g := range grad.Data {
		y := out[i]
		gin[i] = g * (1 - y*y)
	}
	return &t.ginB
}

// ForwardTokensBatch embeds and mean-pools each context (one per row of the
// returned B×dim matrix). The contexts slice is retained until
// BackwardTokensBatch.
func (e *EmbeddingBag) ForwardTokensBatch(contexts [][]int) *tensor.Mat {
	e.tokensB = contexts
	e.outB.Resize(len(contexts), e.dim)
	for i, tokens := range contexts {
		if len(tokens) == 0 {
			panic("nn: EmbeddingBag batch forward with empty context")
		}
		out := e.outB.Row(i)
		out.Zero()
		for _, tok := range tokens {
			if tok < 0 || tok >= e.emb.Rows {
				panic(fmt.Sprintf("nn: token %d out of vocab %d", tok, e.emb.Rows))
			}
			out.Add(tensor.Vec(e.emb.W[tok*e.dim : (tok+1)*e.dim]))
		}
		out.Scale(1 / float64(len(tokens)))
	}
	return &e.outB
}

// BackwardTokensBatch scatter-adds the per-row gradients into the embedding
// rows of each retained context.
func (e *EmbeddingBag) BackwardTokensBatch(grad *tensor.Mat) {
	for i, tokens := range e.tokensB {
		g := grad.Row(i)
		inv := 1 / float64(len(tokens))
		for _, tok := range tokens {
			tensor.Vec(e.emb.G[tok*e.dim:(tok+1)*e.dim]).Axpy(inv, g)
		}
	}
}

// LogitsBatch runs the batched forward pass: X holds one dense example per
// row (nil for embedding networks), contexts one token context per example
// (nil for dense networks). The returned B×classes matrix is owned by the
// network's last layer and valid until the next forward.
func (n *Network) LogitsBatch(X *tensor.Mat, contexts [][]int) *tensor.Mat {
	if n.batchLayers == nil {
		panic("nn: network contains a layer without a batched path")
	}
	var h *tensor.Mat
	switch {
	case n.Embed != nil:
		h = n.Embed.ForwardTokensBatch(contexts)
	case X != nil:
		h = X
	default:
		panic("nn: batch input has neither features nor an embedding front-end")
	}
	for _, l := range n.batchLayers {
		h = l.ForwardBatch(h)
	}
	return h
}

// LossAndBackwardBatch runs one batched forward + softmax cross-entropy +
// backward over the minibatch, accumulating parameter gradients summed over
// examples (the per-sample convention: callers scale by 1/B at the optimizer
// step). It returns the summed loss.
func (n *Network) LossAndBackwardBatch(X *tensor.Mat, contexts [][]int, labels []int) float64 {
	logits := n.LogitsBatch(X, contexts)
	loss := tensor.SoftmaxCrossEntropyRows(logits, labels) // logits become dL/dlogits in place
	grad := logits
	for i := len(n.batchLayers) - 1; i >= 0; i-- {
		// The first layer's input gradient has a consumer only when an
		// embedding front-end sits below it; otherwise skip that GEMM.
		if i == 0 && n.Embed == nil {
			if po, ok := n.batchLayers[0].(paramOnlyBackward); ok {
				po.BackwardBatchParams(grad)
				return loss
			}
		}
		grad = n.batchLayers[i].BackwardBatch(grad)
	}
	if n.Embed != nil {
		n.Embed.BackwardTokensBatch(grad)
	}
	return loss
}

// paramOnlyBackward is implemented by batch layers that can accumulate
// parameter gradients without producing input gradients.
type paramOnlyBackward interface {
	BackwardBatchParams(grad *tensor.Mat)
}

// PredictBatch fills preds (length B) with the argmax class of each example.
func (n *Network) PredictBatch(X *tensor.Mat, contexts [][]int, preds []int) {
	n.LogitsBatch(X, contexts).ArgMaxRows(preds)
}
