package dp

import (
	"math"
	"testing"
	"testing/quick"

	"noisyeval/internal/rng"
)

// Property: with zero noise scale, OneShotTopK(values, k) extended to
// k+1 always contains the k-selection as a prefix (nested selections).
func TestTopKNestedProperty(t *testing.T) {
	g := rng.New(200)
	f := func(seed uint8) bool {
		n := int(seed%15) + 2
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = g.Float64()
		}
		k := g.IntN(n-1) + 1
		small := OneShotTopK(vals, k, 0, g)
		large := OneShotTopK(vals, k+1, 0, g)
		for i := range small {
			if small[i] != large[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: BottomK of the negated values equals OneShotTopK (no noise) of
// the originals.
func TestBottomKMirrorsTopKProperty(t *testing.T) {
	g := rng.New(201)
	f := func(seed uint8) bool {
		n := int(seed%15) + 1
		vals := make([]float64, n)
		neg := make([]float64, n)
		for i := range vals {
			vals[i] = g.Float64()
			neg[i] = -vals[i]
		}
		k := g.IntN(n) + 1
		top := OneShotTopK(vals, k, 0, g)
		bottom := BottomK(neg, k)
		for i := range top {
			if top[i] != bottom[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: per-eval budgets of a Params split sum to the total under basic
// composition (ε/M times M releases spends exactly ε).
func TestCompositionExactProperty(t *testing.T) {
	f := func(rawEps, rawM uint8) bool {
		eps := 0.1 + float64(rawEps%100)/10
		m := int(rawM%30) + 1
		p := Params{Epsilon: eps, TotalEvals: m}
		acc := NewAccountant(eps)
		for i := 0; i < m; i++ {
			if err := acc.Spend(p.PerEvalEpsilon()); err != nil {
				return false
			}
		}
		return math.Abs(acc.Consumed()-eps) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: NoiseScale is monotone — decreasing in |S| and ε, increasing
// in M.
func TestNoiseScaleMonotoneProperty(t *testing.T) {
	f := func(rawEps, rawM, rawS uint8) bool {
		eps := 0.1 + float64(rawEps%50)/10
		m := int(rawM%20) + 1
		s := int(rawS%50) + 1
		base := Params{Epsilon: eps, TotalEvals: m}.NoiseScale(s)
		moreClients := Params{Epsilon: eps, TotalEvals: m}.NoiseScale(s + 1)
		moreBudget := Params{Epsilon: eps * 2, TotalEvals: m}.NoiseScale(s)
		moreEvals := Params{Epsilon: eps, TotalEvals: m + 1}.NoiseScale(s)
		return moreClients <= base && moreBudget <= base && moreEvals >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
