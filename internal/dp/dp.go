// Package dp implements the differential-privacy machinery the study uses to
// privatize hyperparameter evaluation (§3.3 of the paper):
//
//   - the Laplace mechanism for real-valued queries of bounded sensitivity,
//   - basic-composition budget accounting that splits a total ε across the M
//     evaluations (or T evaluation rounds) a tuning algorithm performs, and
//   - the one-shot Laplace mechanism for top-k selection (Qiao et al., 2021)
//     used by rung eliminations in SHA/Hyperband/BOHB.
//
// Evaluations in the study average client accuracies in [0, 1]; with |S|
// sampled clients a single client changes the average by at most 1/|S|, so
// the sensitivity is 1/|S| and each evaluation is perturbed with
// Lap(M/(ε·|S|)) under basic composition.
package dp

import (
	"fmt"
	"math"
	"sort"

	"noisyeval/internal/rng"
)

// InfEpsilon is the ε value meaning "no privacy" (no noise added).
var InfEpsilon = math.Inf(1)

// Params describes the privacy configuration of one tuning run.
type Params struct {
	// Epsilon is the total privacy budget ε for the entire tuning
	// procedure. +Inf disables noise.
	Epsilon float64
	// TotalEvals is M, the total number of evaluation releases the tuning
	// algorithm will perform; basic composition assigns ε/M to each.
	TotalEvals int
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("dp: epsilon must be positive (or +Inf), got %g", p.Epsilon)
	}
	if !math.IsInf(p.Epsilon, 1) && p.TotalEvals <= 0 {
		return fmt.Errorf("dp: TotalEvals must be positive under finite epsilon, got %d", p.TotalEvals)
	}
	return nil
}

// Private reports whether noise will actually be added.
func (p Params) Private() bool { return !math.IsInf(p.Epsilon, 1) }

// PerEvalEpsilon returns the budget allocated to a single evaluation under
// basic composition: ε/M.
func (p Params) PerEvalEpsilon() float64 {
	if !p.Private() {
		return InfEpsilon
	}
	return p.Epsilon / float64(p.TotalEvals)
}

// NoiseScale returns the Laplace scale for one evaluation over sampleSize
// clients: sensitivity/(ε/M) = M/(ε·|S|). A non-private configuration
// returns 0 (no noise).
func (p Params) NoiseScale(sampleSize int) float64 {
	if !p.Private() {
		return 0
	}
	if sampleSize <= 0 {
		panic(fmt.Sprintf("dp: sample size must be positive, got %d", sampleSize))
	}
	sensitivity := 1 / float64(sampleSize)
	return sensitivity / p.PerEvalEpsilon()
}

// LaplaceScale returns the Laplace scale Δ/ε for a query of the given
// sensitivity under budget epsilon.
func LaplaceScale(sensitivity, epsilon float64) float64 {
	if sensitivity < 0 {
		panic(fmt.Sprintf("dp: negative sensitivity %g", sensitivity))
	}
	if epsilon <= 0 {
		panic(fmt.Sprintf("dp: epsilon must be positive, got %g", epsilon))
	}
	if math.IsInf(epsilon, 1) {
		return 0
	}
	return sensitivity / epsilon
}

// Release perturbs value with Laplace noise calibrated for one evaluation
// over sampleSize clients. The returned value is NOT clamped: the paper's
// mechanism releases the raw noisy statistic (selection among configs only
// needs relative order; clamping would leak information about the true
// value's proximity to the boundary).
func (p Params) Release(value float64, sampleSize int, g *rng.RNG) float64 {
	scale := p.NoiseScale(sampleSize)
	if scale == 0 {
		return value
	}
	return g.Laplace(value, scale)
}

// Accountant tracks budget consumption across releases under basic
// composition (Dwork & Roth, 2013): consumed budgets add up and must not
// exceed the total ε.
type Accountant struct {
	Total    float64
	consumed float64
	releases int
}

// NewAccountant returns an accountant with the given total ε budget.
func NewAccountant(total float64) *Accountant {
	if total <= 0 {
		panic(fmt.Sprintf("dp: accountant budget must be positive, got %g", total))
	}
	return &Accountant{Total: total}
}

// Spend records a release of eps budget. It returns an error if the budget
// would be exceeded (the release must not happen in that case).
func (a *Accountant) Spend(eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("dp: cannot spend non-positive budget %g", eps)
	}
	if math.IsInf(a.Total, 1) {
		a.releases++
		return nil
	}
	if a.consumed+eps > a.Total*(1+1e-12) {
		return fmt.Errorf("dp: budget exceeded: consumed %g + %g > total %g", a.consumed, eps, a.Total)
	}
	a.consumed += eps
	a.releases++
	return nil
}

// Consumed returns the budget spent so far.
func (a *Accountant) Consumed() float64 { return a.consumed }

// Remaining returns the unspent budget.
func (a *Accountant) Remaining() float64 {
	if math.IsInf(a.Total, 1) {
		return InfEpsilon
	}
	return a.Total - a.consumed
}

// Releases returns the number of recorded releases.
func (a *Accountant) Releases() int { return a.releases }

// OneShotNoisy returns a copy of values with iid Laplace noise of the given
// scale added to each entry (scale 0 returns a plain copy). It is the noise
// step of the one-shot top-k mechanism, exposed separately so that callers
// can both select on and record the noisy scores.
func OneShotNoisy(values []float64, scale float64, g *rng.RNG) []float64 {
	if scale < 0 {
		panic(fmt.Sprintf("dp: OneShotNoisy negative scale %g", scale))
	}
	out := make([]float64, len(values))
	for i, v := range values {
		if scale == 0 {
			out[i] = v
		} else {
			out[i] = g.Laplace(v, scale)
		}
	}
	return out
}

// BottomK returns the indices of the k smallest values in ascending order
// of value (ties broken by index). Used to keep the k best (lowest-error)
// configurations from noisy scores.
func BottomK(values []float64, k int) []int {
	if k < 0 || k > len(values) {
		panic(fmt.Sprintf("dp: BottomK k=%d out of range [0, %d]", k, len(values)))
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] < values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// OneShotTopK privately selects the indices of the k largest values using
// the one-shot Laplace mechanism (Qiao et al., 2021): add iid Laplace noise
// of the given scale to every value, then release the identities of the top
// k noisy values. The paper applies it at each evaluation round t of an
// elimination-based tuner with scale 2·T·k_t/(ε·|S|).
//
// The returned indices are ordered by decreasing noisy value. values is not
// modified.
func OneShotTopK(values []float64, k int, scale float64, g *rng.RNG) []int {
	if k < 0 || k > len(values) {
		panic(fmt.Sprintf("dp: OneShotTopK k=%d out of range [0, %d]", k, len(values)))
	}
	if scale < 0 {
		panic(fmt.Sprintf("dp: OneShotTopK negative scale %g", scale))
	}
	type scored struct {
		noisy float64
		idx   int
	}
	s := make([]scored, len(values))
	for i, v := range values {
		noisy := v
		if scale > 0 {
			noisy = g.Laplace(v, scale)
		}
		s[i] = scored{noisy: noisy, idx: i}
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].noisy != s[j].noisy {
			return s[i].noisy > s[j].noisy
		}
		return s[i].idx < s[j].idx // deterministic tie-break
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = s[i].idx
	}
	return out
}

// TopKScale returns the one-shot top-k noise scale 2·T·k/(ε·|S|) for an
// algorithm with T evaluation rounds selecting k of the candidates from
// sampleSize clients per evaluation under total budget ε. Infinite ε gives
// scale 0.
func TopKScale(totalRounds, k, sampleSize int, epsilon float64) float64 {
	if math.IsInf(epsilon, 1) {
		return 0
	}
	if totalRounds <= 0 || k <= 0 || sampleSize <= 0 {
		panic(fmt.Sprintf("dp: TopKScale needs positive arguments, got T=%d k=%d |S|=%d", totalRounds, k, sampleSize))
	}
	if epsilon <= 0 {
		panic(fmt.Sprintf("dp: epsilon must be positive, got %g", epsilon))
	}
	return 2 * float64(totalRounds) * float64(k) / (epsilon * float64(sampleSize))
}

// Clamp01 clips a noisy statistic back to [0, 1] for reporting purposes
// (never for selection).
func Clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
