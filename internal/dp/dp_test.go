package dp

import (
	"math"
	"testing"
	"testing/quick"

	"noisyeval/internal/rng"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{Epsilon: 1, TotalEvals: 16}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{Epsilon: InfEpsilon}).Validate(); err != nil {
		t.Errorf("inf epsilon should not need TotalEvals: %v", err)
	}
	for name, p := range map[string]Params{
		"zero eps":   {Epsilon: 0, TotalEvals: 1},
		"neg eps":    {Epsilon: -1, TotalEvals: 1},
		"zero evals": {Epsilon: 1, TotalEvals: 0},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestNoiseScaleFormula(t *testing.T) {
	// Lap(M/(ε|S|)): M=16, ε=2, |S|=4 -> scale = 16/(2*4) = 2.
	p := Params{Epsilon: 2, TotalEvals: 16}
	if got := p.NoiseScale(4); math.Abs(got-2) > 1e-12 {
		t.Errorf("NoiseScale = %g, want 2", got)
	}
}

func TestNoiseScaleMoreClientsLessNoise(t *testing.T) {
	p := Params{Epsilon: 1, TotalEvals: 10}
	if p.NoiseScale(100) >= p.NoiseScale(1) {
		t.Error("noise scale should shrink as |S| grows")
	}
}

func TestNoiseScaleInfEpsilon(t *testing.T) {
	p := Params{Epsilon: InfEpsilon}
	if p.NoiseScale(1) != 0 {
		t.Error("inf epsilon must give zero noise")
	}
	if p.Private() {
		t.Error("inf epsilon is not private")
	}
}

func TestReleaseNonPrivateIsIdentity(t *testing.T) {
	p := Params{Epsilon: InfEpsilon}
	if got := p.Release(0.42, 10, rng.New(1)); got != 0.42 {
		t.Errorf("Release = %g", got)
	}
}

func TestReleaseNoiseMagnitude(t *testing.T) {
	// Empirical mean abs deviation should approximate the Laplace scale.
	p := Params{Epsilon: 1, TotalEvals: 10}
	g := rng.New(2)
	scale := p.NoiseScale(5) // 10/(1*5) = 2
	const n = 100000
	sumAbs := 0.0
	for i := 0; i < n; i++ {
		sumAbs += math.Abs(p.Release(0.5, 5, g) - 0.5)
	}
	if mad := sumAbs / n; math.Abs(mad-scale) > 0.05 {
		t.Errorf("mean abs deviation %.3f, want ~%.1f", mad, scale)
	}
}

func TestLaplaceScale(t *testing.T) {
	if got := LaplaceScale(0.5, 2); got != 0.25 {
		t.Errorf("LaplaceScale = %g", got)
	}
	if got := LaplaceScale(1, InfEpsilon); got != 0 {
		t.Errorf("inf epsilon scale = %g", got)
	}
}

func TestAccountantComposition(t *testing.T) {
	a := NewAccountant(1.0)
	for i := 0; i < 10; i++ {
		if err := a.Spend(0.1); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	if math.Abs(a.Consumed()-1) > 1e-9 {
		t.Errorf("consumed = %g", a.Consumed())
	}
	if err := a.Spend(0.1); err == nil {
		t.Error("over-budget spend must fail")
	}
	if a.Releases() != 10 {
		t.Errorf("releases = %d", a.Releases())
	}
}

func TestAccountantAdditivityProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		a := NewAccountant(InfEpsilon)
		total := 0.0
		for _, r := range raw {
			eps := float64(r%100+1) / 100
			if err := a.Spend(eps); err != nil {
				return false
			}
			total += eps
		}
		// Under an infinite budget all spends succeed and consumption is
		// additive (stays zero only for the inf account).
		return a.Releases() == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAccountantRemaining(t *testing.T) {
	a := NewAccountant(2)
	_ = a.Spend(0.5)
	if math.Abs(a.Remaining()-1.5) > 1e-12 {
		t.Errorf("remaining = %g", a.Remaining())
	}
	inf := NewAccountant(InfEpsilon)
	if !math.IsInf(inf.Remaining(), 1) {
		t.Error("infinite accountant should have infinite remaining")
	}
}

func TestAccountantRejectsNonPositive(t *testing.T) {
	a := NewAccountant(1)
	if err := a.Spend(0); err == nil {
		t.Error("zero spend must fail")
	}
	if err := a.Spend(-1); err == nil {
		t.Error("negative spend must fail")
	}
}

func TestOneShotTopKNoNoise(t *testing.T) {
	vals := []float64{0.1, 0.9, 0.5, 0.7}
	got := OneShotTopK(vals, 2, 0, rng.New(1))
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("top-2 = %v, want [1 3]", got)
	}
}

func TestOneShotTopKDeterministicTieBreak(t *testing.T) {
	vals := []float64{0.5, 0.5, 0.5}
	got := OneShotTopK(vals, 2, 0, rng.New(1))
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("tie-break = %v, want [0 1]", got)
	}
}

func TestOneShotTopKDistinctIndices(t *testing.T) {
	g := rng.New(3)
	f := func(rawN, rawK uint8) bool {
		n := int(rawN%20) + 1
		k := int(rawK) % (n + 1)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = g.Float64()
		}
		got := OneShotTopK(vals, k, 1.0, g)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, idx := range got {
			if idx < 0 || idx >= n || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOneShotTopKNoiseDegradesSelection(t *testing.T) {
	// With huge noise, the true best should often NOT be selected;
	// with tiny noise it always should. This is Observation 5 in miniature.
	g := rng.New(4)
	vals := []float64{0.2, 0.25, 0.3, 0.9} // index 3 is clearly best
	const trials = 2000
	hitsSmall, hitsHuge := 0, 0
	for i := 0; i < trials; i++ {
		if OneShotTopK(vals, 1, 0.001, g)[0] == 3 {
			hitsSmall++
		}
		if OneShotTopK(vals, 1, 50, g)[0] == 3 {
			hitsHuge++
		}
	}
	if hitsSmall < trials*99/100 {
		t.Errorf("small noise selected best only %d/%d", hitsSmall, trials)
	}
	if hitsHuge > trials*60/100 {
		t.Errorf("huge noise still selected best %d/%d; expected near-random", hitsHuge, trials)
	}
}

func TestOneShotTopKPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"k too large": func() { OneShotTopK([]float64{1}, 2, 0, rng.New(1)) },
		"neg k":       func() { OneShotTopK([]float64{1}, -1, 0, rng.New(1)) },
		"neg scale":   func() { OneShotTopK([]float64{1}, 1, -1, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTopKScaleFormula(t *testing.T) {
	// 2*T*k/(ε|S|): T=10, k=3, |S|=5, ε=4 -> 60/20 = 3.
	if got := TopKScale(10, 3, 5, 4); math.Abs(got-3) > 1e-12 {
		t.Errorf("TopKScale = %g, want 3", got)
	}
	if TopKScale(10, 3, 5, InfEpsilon) != 0 {
		t.Error("inf epsilon top-k scale should be 0")
	}
}

func TestClamp01(t *testing.T) {
	cases := map[float64]float64{-0.5: 0, 0.3: 0.3, 1.7: 1}
	for in, want := range cases {
		if got := Clamp01(in); got != want {
			t.Errorf("Clamp01(%g) = %g, want %g", in, got, want)
		}
	}
}

func TestPerEvalEpsilon(t *testing.T) {
	p := Params{Epsilon: 8, TotalEvals: 16}
	if got := p.PerEvalEpsilon(); got != 0.5 {
		t.Errorf("per-eval epsilon = %g", got)
	}
}
