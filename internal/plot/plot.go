// Package plot renders experiment results as fixed-width text (line charts,
// bar charts, scatter plots, tables) and CSV files. The benchmark harness
// regenerates every figure of the paper as one of these renderings plus a
// CSV with the underlying numbers.
package plot

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Series is one labelled line of (x, y) points with an optional
// interquartile band.
type Series struct {
	Label      string
	X, Y       []float64
	YLo, YHi   []float64 // optional quartile band (may be nil)
	XTickLabel []string  // optional custom tick labels aligned with X
}

// Chart is a renderable line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 60)
	Height int // plot rows (default 16)
	LogX   bool
	Series []Series
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart as text lines.
func (c Chart) Render() []string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x := c.xval(s.X[i])
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			ys := []float64{s.Y[i]}
			if s.YLo != nil {
				ys = append(ys, s.YLo[i], s.YHi[i])
			}
			for _, y := range ys {
				if y < ymin {
					ymin = y
				}
				if y > ymax {
					ymax = y
				}
			}
		}
	}
	if math.IsInf(xmin, 1) {
		return []string{c.Title + " (no data)"}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	pad := (ymax - ymin) * 0.05
	ymin, ymax = ymin-pad, ymax+pad

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int(math.Round((c.xval(s.X[i]) - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((s.Y[i]-ymin)/(ymax-ymin)*float64(h-1)))
			if row >= 0 && row < h && col >= 0 && col < w {
				grid[row][col] = m
			}
			// Connect to the next point with a sparse line.
			if i+1 < len(s.X) {
				col2 := int(math.Round((c.xval(s.X[i+1]) - xmin) / (xmax - xmin) * float64(w-1)))
				row2 := h - 1 - int(math.Round((s.Y[i+1]-ymin)/(ymax-ymin)*float64(h-1)))
				steps := maxInt(absInt(col2-col), absInt(row2-row))
				for t := 1; t < steps; t++ {
					cc := col + (col2-col)*t/steps
					rr := row + (row2-row)*t/steps
					if rr >= 0 && rr < h && cc >= 0 && cc < w && grid[rr][cc] == ' ' {
						grid[rr][cc] = '.'
					}
				}
			}
		}
	}

	var out []string
	if c.Title != "" {
		out = append(out, c.Title)
	}
	for r, rowBytes := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.2f ", ymax)
		} else if r == h-1 {
			label = fmt.Sprintf("%7.2f ", ymin)
		} else if r == h/2 {
			label = fmt.Sprintf("%7.2f ", (ymin+ymax)/2)
		}
		out = append(out, label+"|"+string(rowBytes))
	}
	out = append(out, "        +"+strings.Repeat("-", w))
	xl, xr := xmin, xmax
	if c.LogX {
		xl, xr = math.Pow(10, xmin), math.Pow(10, xmax)
	}
	axis := fmt.Sprintf("         %-12.4g%s%12.4g", xl, strings.Repeat(" ", maxInt(w-24, 1)), xr)
	out = append(out, axis)
	if c.XLabel != "" || c.YLabel != "" {
		out = append(out, fmt.Sprintf("         x: %s   y: %s", c.XLabel, c.YLabel))
	}
	for si, s := range c.Series {
		out = append(out, fmt.Sprintf("         %c %s", markers[si%len(markers)], s.Label))
	}
	return out
}

func (c Chart) xval(x float64) float64 {
	if c.LogX {
		if x <= 0 {
			return math.Log10(1e-12)
		}
		return math.Log10(x)
	}
	return x
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
	Tag   string // grouping annotation (e.g. "noisy")
}

// BarChart renders horizontal bars scaled to the maximum value.
type BarChart struct {
	Title string
	Unit  string
	Width int // bar columns (default 40)
	Bars  []Bar
}

// Render draws the bar chart.
func (b BarChart) Render() []string {
	w := b.Width
	if w <= 0 {
		w = 40
	}
	maxVal := 0.0
	labelW := 0
	for _, bar := range b.Bars {
		if bar.Value > maxVal {
			maxVal = bar.Value
		}
		l := len(bar.Label)
		if bar.Tag != "" {
			l += len(bar.Tag) + 3
		}
		if l > labelW {
			labelW = l
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	var out []string
	if b.Title != "" {
		out = append(out, b.Title)
	}
	for _, bar := range b.Bars {
		label := bar.Label
		if bar.Tag != "" {
			label = fmt.Sprintf("%s [%s]", bar.Label, bar.Tag)
		}
		n := int(math.Round(bar.Value / maxVal * float64(w)))
		if n < 0 {
			n = 0
		}
		out = append(out, fmt.Sprintf("  %-*s |%s %.2f%s", labelW, label, strings.Repeat("#", n), bar.Value, b.Unit))
	}
	return out
}

// ScatterPoint is one scatter sample.
type ScatterPoint struct{ X, Y float64 }

// Scatter renders a point cloud.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Points []ScatterPoint
}

// Render draws the scatter plot.
func (s Scatter) Render() []string {
	ch := Chart{
		Title: s.Title, XLabel: s.XLabel, YLabel: s.YLabel,
		Width: s.Width, Height: s.Height,
	}
	// Represent points as a single series without connecting lines by
	// rendering each point as its own one-point series is wasteful; instead
	// draw on the chart grid directly.
	w, h := s.Width, s.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	if len(s.Points) == 0 {
		return []string{s.Title + " (no data)"}
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
		ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, p := range s.Points {
		col := int(math.Round((p.X - xmin) / (xmax - xmin) * float64(w-1)))
		row := h - 1 - int(math.Round((p.Y-ymin)/(ymax-ymin)*float64(h-1)))
		if row >= 0 && row < h && col >= 0 && col < w {
			grid[row][col] = '*'
		}
	}
	var out []string
	if ch.Title != "" {
		out = append(out, ch.Title)
	}
	for r, rowBytes := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.2f ", ymax)
		} else if r == h-1 {
			label = fmt.Sprintf("%7.2f ", ymin)
		}
		out = append(out, label+"|"+string(rowBytes))
	}
	out = append(out, "        +"+strings.Repeat("-", w))
	out = append(out, fmt.Sprintf("         %-12.4g%s%12.4g", xmin, strings.Repeat(" ", maxInt(w-24, 1)), xmax))
	out = append(out, fmt.Sprintf("         x: %s   y: %s", s.XLabel, s.YLabel))
	return out
}

// Table renders aligned columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render draws the table.
func (t Table) Render() []string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], cell)
			} else {
				sb.WriteString(cell + "  ")
			}
		}
		return strings.TrimRight(sb.String(), " ")
	}
	var out []string
	if t.Title != "" {
		out = append(out, t.Title)
	}
	out = append(out, line(t.Columns))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	out = append(out, line(sep))
	for _, row := range t.Rows {
		out = append(out, line(row))
	}
	return out
}

// WriteCSV writes header + rows to path, creating parent directories.
func WriteCSV(path string, header []string, rows [][]string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("plot: %w", err)
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// F formats a float for CSV/tables.
func F(x float64) string { return fmt.Sprintf("%.4f", x) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
