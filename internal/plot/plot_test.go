package plot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.2, 0.3}},
			{Label: "b", X: []float64{1, 2, 3}, Y: []float64{0.3, 0.2, 0.1}},
		},
	}
	lines := c.Render()
	if len(lines) < 10 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"test chart", "a", "b", "*", "o"} {
		if !strings.Contains(joined, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestChartLogX(t *testing.T) {
	c := Chart{
		LogX:   true,
		Series: []Series{{Label: "s", X: []float64{1, 10, 100}, Y: []float64{1, 2, 3}}},
	}
	lines := c.Render()
	if len(lines) == 0 {
		t.Fatal("no output")
	}
	// Axis labels must show the original (non-log) values.
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "100") {
		t.Error("log-x axis label missing")
	}
}

func TestChartEmpty(t *testing.T) {
	lines := Chart{Title: "empty"}.Render()
	if len(lines) != 1 || !strings.Contains(lines[0], "no data") {
		t.Errorf("empty chart = %v", lines)
	}
}

func TestChartConstantY(t *testing.T) {
	c := Chart{Series: []Series{{Label: "flat", X: []float64{0, 1}, Y: []float64{5, 5}}}}
	if len(c.Render()) == 0 {
		t.Fatal("constant-y chart failed to render")
	}
}

func TestChartQuartileBandExpandsRange(t *testing.T) {
	c := Chart{Series: []Series{{
		Label: "med", X: []float64{0, 1}, Y: []float64{0.5, 0.5},
		YLo: []float64{0.1, 0.1}, YHi: []float64{0.9, 0.9},
	}}}
	joined := strings.Join(c.Render(), "\n")
	if !strings.Contains(joined, "0.9") {
		t.Error("band's upper quartile not reflected in the axis")
	}
}

func TestBarChart(t *testing.T) {
	b := BarChart{
		Title: "bars", Unit: "%",
		Bars: []Bar{
			{Label: "RS", Value: 40, Tag: "noisy"},
			{Label: "HB", Value: 80},
		},
	}
	lines := b.Render()
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"bars", "RS [noisy]", "HB", "80.00%", "40.00%"} {
		if !strings.Contains(joined, want) {
			t.Errorf("bar chart missing %q in:\n%s", want, joined)
		}
	}
	// Larger value must have a longer bar.
	var rsHashes, hbHashes int
	for _, l := range lines {
		if strings.Contains(l, "RS") {
			rsHashes = strings.Count(l, "#")
		}
		if strings.Contains(l, "HB") {
			hbHashes = strings.Count(l, "#")
		}
	}
	if hbHashes <= rsHashes {
		t.Errorf("bar lengths: RS=%d HB=%d", rsHashes, hbHashes)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	b := BarChart{Bars: []Bar{{Label: "z", Value: 0}}}
	if len(b.Render()) == 0 {
		t.Fatal("zero-value bars failed")
	}
}

func TestScatterRender(t *testing.T) {
	s := Scatter{
		Title: "sc", XLabel: "fx", YLabel: "fy",
		Points: []ScatterPoint{{X: 1, Y: 2}, {X: 3, Y: 4}},
	}
	joined := strings.Join(s.Render(), "\n")
	for _, want := range []string{"sc", "*", "fx", "fy"} {
		if !strings.Contains(joined, want) {
			t.Errorf("scatter missing %q", want)
		}
	}
	if empty := (Scatter{Title: "e"}).Render(); !strings.Contains(empty[0], "no data") {
		t.Error("empty scatter")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "tbl",
		Columns: []string{"name", "value"},
		Rows:    [][]string{{"alpha", "1"}, {"b", "22"}},
	}
	lines := tbl.Render()
	if len(lines) != 5 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Error("header missing")
	}
	if !strings.HasPrefix(lines[3], "alpha") {
		t.Errorf("row = %q", lines[3])
	}
}

func TestWriteCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "out.csv")
	err := WriteCSV(path, []string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", `say "hi"`}})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	if !strings.Contains(got, `"x,y"`) {
		t.Errorf("comma not quoted: %q", got)
	}
	if !strings.Contains(got, `"say ""hi"""`) {
		t.Errorf("quote not escaped: %q", got)
	}
	if !strings.HasPrefix(got, "a,b\n") {
		t.Errorf("header = %q", got)
	}
}

func TestF(t *testing.T) {
	if F(0.12345) != "0.1234" && F(0.12345) != "0.1235" {
		t.Errorf("F = %q", F(0.12345))
	}
}
