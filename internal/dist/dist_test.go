package dist

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"noisyeval/internal/core"
	"noisyeval/internal/data"
	"noisyeval/internal/rng"
)

// testPop returns the miniature population the dist tests share.
func testPop(t testing.TB) *data.Population {
	t.Helper()
	spec := data.CIFAR10Like().Scaled(0.06, 0)
	spec.MeanExamples, spec.MinExamples, spec.MaxExamples = 20, 15, 25
	pop, err := data.Generate(spec, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// testOpts returns a bank build small enough to shard in milliseconds.
func testOpts() core.BuildOptions {
	opts := core.DefaultBuildOptions()
	opts.NumConfigs = 4
	opts.MaxRounds = 9
	opts.Partitions = []float64{0.5}
	return opts
}

// newTestCluster boots a coordinator behind an httptest server.
func newTestCluster(t *testing.T, opts CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	if opts.Store == nil {
		store, err := core.NewBankStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts.Store = store
	}
	coord := NewCoordinator(opts)
	mux := http.NewServeMux()
	coord.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		coord.Close()
	})
	return coord, ts
}

// startWorker runs a real lease-loop worker against the cluster until the
// test ends.
func startWorker(t *testing.T, url, name string) *Worker {
	t.Helper()
	w := NewWorker(WorkerOptions{Coordinator: url, Name: name, Poll: 5 * time.Millisecond, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return w
}

// TestClusterBuildByteIdentical is the tentpole acceptance test: a bank
// built by two real workers over HTTP — one config per shard, populations
// fetched by content address, shards gob+gzip round-tripped — must be
// byte-identical to a single-process BuildBank, and must land in the store
// so the warm path never trains again.
func TestClusterBuildByteIdentical(t *testing.T) {
	pop, opts, seed := testPop(t), testOpts(), uint64(7)
	coord, ts := newTestCluster(t, CoordinatorOptions{ShardConfigs: 1})
	w1 := startWorker(t, ts.URL, "w1")
	w2 := startWorker(t, ts.URL, "w2")

	builder := &Builder{Store: coord.Store(), Coord: coord}
	bank, cached, err := builder.BuildBank(context.Background(), pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cold build reported cached")
	}

	local, err := core.BuildBank(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := core.BankFingerprint(bank), core.BankFingerprint(local); got != want {
		t.Fatalf("cluster-built bank differs from local build:\n got %s\nwant %s", got, want)
	}

	// The build finishes inside the last worker's POST handler, before that
	// worker's counter increments — poll briefly for the counters to settle.
	var built int64
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(5 * time.Millisecond) {
		if built = w1.Counters().ShardsBuilt + w2.Counters().ShardsBuilt; built == int64(opts.NumConfigs) {
			break
		}
	}
	if built != int64(opts.NumConfigs) {
		t.Errorf("workers built %d shards, want %d", built, opts.NumConfigs)
	}
	st := coord.Stats()
	if st.BuildsCompleted != 1 || st.ShardsCompleted != int64(opts.NumConfigs) {
		t.Errorf("coordinator stats = %+v, want 1 build / %d shards", st, opts.NumConfigs)
	}

	// Warm path: the assembled bank was persisted; a second build is a pure
	// store hit — no shards scheduled, no training anywhere.
	bank2, cached2, err := builder.BuildBank(context.Background(), pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !cached2 {
		t.Error("second build of a persisted bank was not a cache hit")
	}
	if core.BankFingerprint(bank2) != core.BankFingerprint(local) {
		t.Error("warm bank differs from local build")
	}
	if got := coord.Stats().BuildsStarted; got != 1 {
		t.Errorf("builds started = %d after warm rerun, want 1", got)
	}
}

// TestPeerReadThrough verifies the remote read-through tier: a cold daemon
// pointed at a warm peer pulls the bank over GET /v1/banks/{key}, validates
// it, persists it locally, and never trains.
func TestPeerReadThrough(t *testing.T) {
	pop, opts, seed := testPop(t), testOpts(), uint64(7)

	// Warm peer: a coordinator whose store holds the bank.
	warm, ts := newTestCluster(t, CoordinatorOptions{ShardConfigs: 2, SelfBuild: 1})
	if _, err := warm.BuildSharded(context.Background(), pop, opts, seed); err != nil {
		t.Fatal(err)
	}

	coldStore, err := core.NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := &Builder{
		Store: coldStore,
		Peers: []string{"http://127.0.0.1:1", ts.URL}, // first peer dead: must fail soft
	}
	bank, cached, err := cold.BuildBank(context.Background(), pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("peer fetch not reported as cached (no local training happened)")
	}
	local, err := core.BuildBank(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if core.BankFingerprint(bank) != core.BankFingerprint(local) {
		t.Error("peer-fetched bank differs from local build")
	}
	st := cold.Stats()
	if st.PeerHits != 1 || st.PeerMisses != 1 {
		t.Errorf("builder stats = %+v, want 1 hit / 1 miss", st)
	}
	// Persisted locally: the next build never touches the network.
	key := core.BankKeyForPopulation(pop, opts, seed)
	if b, err := coldStore.Get(key); err != nil || b == nil {
		t.Errorf("peer-fetched bank not persisted locally: %v, %v", b, err)
	}
}

// TestPeerBankAliasMiss: growth moves a bank to a new content address on
// the warm peer, leaving a store alias behind. GET /v1/banks/{key} serves
// through the alias and names the entry actually served (X-Bank-Key); the
// builder's read-through tier must treat the moved bank as a miss — its
// cache key promises an exact config pool — and build the real pool locally.
func TestPeerBankAliasMiss(t *testing.T) {
	pop, opts, seed := testPop(t), testOpts(), uint64(13)
	store, err := core.NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warm, ts := newTestCluster(t, CoordinatorOptions{ShardConfigs: 2, SelfBuild: 1, Store: store})
	if _, err := warm.BuildSharded(context.Background(), pop, opts, seed); err != nil {
		t.Fatal(err)
	}

	// Simulate growth on the peer: a different bank under a new address, an
	// alias at the old address, the old entry pruned.
	key := core.BankKeyForPopulation(pop, opts, seed)
	moved, err := core.BuildBank(pop, opts, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	newKey := core.BankKeyForPopulation(pop, opts, seed+1)
	if err := store.Put(newKey, moved); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(store.Path(key)); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteAlias(key, newKey); err != nil {
		t.Fatal(err)
	}

	// A raw GET through the old key serves the moved bank and says so.
	resp, err := http.Get(ts.URL + "/v1/banks/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alias GET status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Bank-Key"); got != newKey {
		t.Fatalf("X-Bank-Key = %q, want %q", got, newKey)
	}
	served, err := core.DecodeBank(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if core.BankFingerprint(served) != core.BankFingerprint(moved) {
		t.Error("alias GET served the wrong bank")
	}

	// The builder refuses the substitute and produces the exact pool.
	coldStore, err := core.NewBankStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := &Builder{Store: coldStore, Peers: []string{ts.URL}}
	bank, cached, err := cold.BuildBank(context.Background(), pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("moved peer bank was accepted as a cache hit")
	}
	local, err := core.BuildBank(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if core.BankFingerprint(bank) != core.BankFingerprint(local) {
		t.Error("fallback build differs from the exact local build")
	}
	if st := cold.Stats(); st.PeerHits != 0 || st.PeerMisses != 1 {
		t.Errorf("builder stats = %+v, want 0 hits / 1 miss", st)
	}
}

// TestSelfBuildDegradesToLocal: with self-build goroutines and no external
// workers, a cluster-mode build still completes (the operator-safety
// default of noisyevald -cluster).
func TestSelfBuildDegradesToLocal(t *testing.T) {
	pop, opts, seed := testPop(t), testOpts(), uint64(9)
	coord, _ := newTestCluster(t, CoordinatorOptions{ShardConfigs: 2, SelfBuild: 2})
	bank, err := coord.BuildSharded(context.Background(), pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.BuildBank(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if core.BankFingerprint(bank) != core.BankFingerprint(local) {
		t.Error("self-built bank differs from local build")
	}
	if st := coord.Stats(); st.ShardsSelfBuilt != 2 {
		t.Errorf("self-built shards = %d, want 2", st.ShardsSelfBuilt)
	}
}

// TestConcurrentBuildsCoalesce: concurrent BuildSharded calls for one
// content address share one set of shard jobs.
func TestConcurrentBuildsCoalesce(t *testing.T) {
	pop, opts, seed := testPop(t), testOpts(), uint64(3)
	coord, ts := newTestCluster(t, CoordinatorOptions{ShardConfigs: 2})
	startWorker(t, ts.URL, "w1")

	var wg sync.WaitGroup
	banks := make([]*core.Bank, 3)
	for i := range banks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := coord.BuildSharded(context.Background(), pop, opts, seed)
			if err != nil {
				t.Error(err)
				return
			}
			banks[i] = b
		}(i)
	}
	wg.Wait()
	if st := coord.Stats(); st.BuildsStarted != 1 {
		t.Errorf("builds started = %d, want 1 (coalesced)", st.BuildsStarted)
	}
	for i := 1; i < len(banks); i++ {
		if banks[i] != banks[0] {
			t.Error("coalesced builds returned distinct banks")
		}
	}
}

// TestWireRoundTrips pins the gob+gzip wire encodings.
func TestWireRoundTrips(t *testing.T) {
	pop, opts, seed := testPop(t), testOpts(), uint64(5)
	plan, err := core.NewBuildPlan(pop, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := plan.TrainRange(1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeShard(sh)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeShard(bytesReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.Lo != sh.Lo || back.Hi != sh.Hi {
		t.Errorf("shard round trip drifted: %d-%d vs %d-%d", back.Lo, back.Hi, sh.Lo, sh.Hi)
	}
	if err := back.Errs.CheckShape(sh.Errs.Parts, sh.Errs.Configs, sh.Errs.Checkpoints, sh.Errs.Clients); err != nil {
		t.Errorf("shard round trip drifted: %v", err)
	}
	for i := range sh.Errs.Data {
		if back.Errs.Data[i] != sh.Errs.Data[i] {
			t.Fatalf("shard arena float %d changed in round trip", i)
		}
	}

	praw, err := EncodePopulation(pop)
	if err != nil {
		t.Fatal(err)
	}
	pback, err := DecodePopulation(bytesReader(praw))
	if err != nil {
		t.Fatal(err)
	}
	if core.PopulationFingerprint(pback) != core.PopulationFingerprint(pop) {
		t.Error("population round trip changed the content fingerprint")
	}

	oraw, err := encodeOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	oback, err := DecodeOptions(oraw)
	if err != nil {
		t.Fatal(err)
	}
	if core.BankKey(pop.Spec, oback, seed) != core.BankKey(pop.Spec, opts, seed) {
		t.Error("options round trip changed the bank key")
	}
}

// bytesReader adapts a byte slice for the decode helpers.
func bytesReader(b []byte) *bytes.Reader { return bytes.NewReader(b) }
